//! Integration tests for the library surface beyond the paper's headline
//! path: FBP, ordered subsets, regularized/constrained solvers, volume
//! reconstruction, corrections, Joseph projector, and the I/O round trip.

use memxct::{
    cgls_smooth, fbp, Config, FbpConfig, Kernel, OrderedSubsets, Projector, ReconInput,
    ReconRequest, Reconstructor, StopRule,
};
use xct_geometry::{
    correct_center, io, phantom_volume, remove_rings, shepp_logan, shift_sinogram,
    simulate_sinogram, simulate_volume, Grid, NoiseModel, ScanGeometry, Sinogram,
};

fn rel_err(a: &[f32], b: &[f32]) -> f64 {
    let num: f64 = a
        .iter()
        .zip(b)
        .map(|(&x, &y)| ((x - y) as f64).powi(2))
        .sum::<f64>()
        .sqrt();
    let den: f64 = b.iter().map(|&y| (y as f64).powi(2)).sum::<f64>().sqrt();
    num / den
}

fn setup(n: u32, m: u32) -> (Grid, ScanGeometry, Vec<f32>, Sinogram) {
    let grid = Grid::new(n);
    let scan = ScanGeometry::new(m, n);
    let truth = shepp_logan().rasterize(n);
    let sino = simulate_sinogram(&truth, &grid, &scan, NoiseModel::None, 0);
    (grid, scan, truth, sino)
}

#[test]
fn fbp_and_cg_agree_on_clean_dense_data() {
    let (grid, scan, truth, sino) = setup(64, 96);
    let rec = Reconstructor::new(grid, scan);
    let img_fbp = fbp(rec.operators(), &sino, &FbpConfig::default());
    let img_cg = rec
        .run(&ReconRequest::cg(
            ReconInput::Slice(sino),
            StopRule::Fixed(30),
        ))
        .unwrap()
        .images
        .swap_remove(0);
    // On clean dense data both methods produce usable images; CG wins.
    let e_fbp = rel_err(&img_fbp, &truth);
    let e_cg = rel_err(&img_cg, &truth);
    assert!(e_fbp < 0.35, "fbp {e_fbp}");
    assert!(e_cg < e_fbp, "cg {e_cg} vs fbp {e_fbp}");
}

#[test]
fn ordered_subsets_run_through_the_reconstructor_operators() {
    let (grid, scan, truth, sino) = setup(32, 48);
    let rec = Reconstructor::new(grid, scan);
    let os = OrderedSubsets::new(rec.operators(), 6);
    let y = rec.operators().order_sinogram(&sino);
    let (x, recs) = os.solve(&y, 8, 1.0);
    let img = rec.operators().unorder_tomogram(&x);
    assert!(
        rel_err(&img, &truth) < 0.25,
        "err {}",
        rel_err(&img, &truth)
    );
    assert!(recs.last().unwrap().residual_norm < recs[0].residual_norm);
}

#[test]
fn smoothness_regularizer_runs_end_to_end() {
    let n = 32u32;
    let grid = Grid::new(n);
    let scan = ScanGeometry::new(24, n);
    let truth = shepp_logan().rasterize(n);
    let sino = simulate_sinogram(
        &truth,
        &grid,
        &scan,
        NoiseModel::Poisson {
            incident: 5e3,
            scale: 0.05,
        },
        4,
    );
    let rec = Reconstructor::new(grid, scan);
    let y = rec.operators().order_sinogram(&sino);
    let (x, _) = cgls_smooth(
        rec.operators(),
        Kernel::Buffered,
        &y,
        0.5,
        StopRule::Fixed(30),
    );
    let img = rec.operators().unorder_tomogram(&x);
    assert!(rel_err(&img, &truth) < 0.5, "err {}", rel_err(&img, &truth));
}

#[test]
fn volume_reconstruction_reuses_preprocessing() {
    let n = 24u32;
    let m = 36u32;
    let volume = phantom_volume(&shepp_logan(), n, 4);
    let scan = ScanGeometry::new(m, n);
    let sinos = simulate_volume(&volume, &scan, NoiseModel::None, 5);
    let rec = Reconstructor::new(Grid::new(n), scan);
    let out = rec
        .run(&ReconRequest::cg(
            ReconInput::Volume(sinos),
            StopRule::Fixed(20),
        ))
        .unwrap();
    assert_eq!(out.images.len(), 4);
    for (z, img) in out.images.iter().enumerate() {
        let truth = volume.slice(z);
        let mass: f64 = truth.iter().map(|&v| v as f64).sum();
        if mass > 1.0 {
            assert!(
                rel_err(img, truth) < 0.35,
                "slice {z} err {}",
                rel_err(img, truth)
            );
        }
    }
    assert!(out.per_slice_seconds.iter().sum::<f64>() > 0.0);
}

#[test]
fn correction_pipeline_recovers_miscentered_scan() {
    let (grid, scan, truth, sino) = setup(64, 96);
    let displaced = shift_sinogram(&sino, 2.5);
    let (fixed, est) = correct_center(&displaced);
    assert!((est - 2.5).abs() < 0.75, "estimate {est}");
    let rec = Reconstructor::new(grid, scan);
    let bad = rec
        .run(&ReconRequest::cg(
            ReconInput::Slice(displaced),
            StopRule::Fixed(20),
        ))
        .unwrap()
        .images
        .swap_remove(0);
    let good = rec
        .run(&ReconRequest::cg(
            ReconInput::Slice(fixed),
            StopRule::Fixed(20),
        ))
        .unwrap()
        .images
        .swap_remove(0);
    assert!(
        rel_err(&good, &truth) < 0.6 * rel_err(&bad, &truth),
        "correction must help: {} vs {}",
        rel_err(&good, &truth),
        rel_err(&bad, &truth)
    );
}

#[test]
fn ring_removal_composes_with_reconstruction() {
    let n = 128u32;
    let m = 96u32;
    let grid = Grid::new(n);
    let scan = ScanGeometry::new(m, n);
    let truth = shepp_logan().rasterize(n);
    let sino = simulate_sinogram(&truth, &grid, &scan, NoiseModel::None, 0);
    let mut data = sino.data().to_vec();
    for p in 0..m as usize {
        for (c, v) in data
            .iter_mut()
            .skip(p * n as usize)
            .take(n as usize)
            .enumerate()
        {
            *v += match c {
                37 => 8.0,
                90 => -6.0,
                _ => 0.0,
            };
        }
    }
    let corrupted = Sinogram::new(scan, data);
    let cleaned = remove_rings(&corrupted, 2);
    let rec = Reconstructor::new(grid, scan);
    let bad = rec
        .run(&ReconRequest::cg(
            ReconInput::Slice(corrupted),
            StopRule::Fixed(15),
        ))
        .unwrap()
        .images
        .swap_remove(0);
    let good = rec
        .run(&ReconRequest::cg(
            ReconInput::Slice(cleaned),
            StopRule::Fixed(15),
        ))
        .unwrap()
        .images
        .swap_remove(0);
    assert!(
        rel_err(&good, &truth) < rel_err(&bad, &truth),
        "{} vs {}",
        rel_err(&good, &truth),
        rel_err(&bad, &truth)
    );
}

#[test]
fn joseph_projector_pipeline() {
    let n = 32u32;
    let grid = Grid::new(n);
    let scan = ScanGeometry::new(48, n);
    let truth = shepp_logan().rasterize(n);
    let sino = simulate_sinogram(&truth, &grid, &scan, NoiseModel::None, 0);
    let rec = Reconstructor::with_config(
        grid,
        scan,
        &Config {
            projector: Projector::Joseph,
            ..Config::default()
        },
    );
    let out = rec
        .run(&ReconRequest::cg(
            ReconInput::Slice(sino),
            StopRule::Fixed(25),
        ))
        .unwrap();
    assert!(
        rel_err(&out.images[0], &truth) < 0.3,
        "err {}",
        rel_err(&out.images[0], &truth)
    );
}

#[test]
fn pgm_and_raw_io_roundtrip_through_reconstruction() {
    let (grid, scan, _, sino) = setup(24, 16);
    let dir = std::env::temp_dir();
    let raw = dir.join(format!("xct_it_{}.raw", std::process::id()));
    let pgm = dir.join(format!("xct_it_{}.pgm", std::process::id()));

    io::write_raw_f32(&raw, sino.data()).unwrap();
    let loaded = io::read_raw_f32(&raw).unwrap();
    assert_eq!(loaded, sino.data());

    let rec = Reconstructor::new(grid, scan);
    let out = rec
        .run(&ReconRequest::cg(
            ReconInput::Slice(Sinogram::new(scan, loaded)),
            StopRule::Fixed(10),
        ))
        .unwrap();
    io::write_pgm(&pgm, 24, 24, &out.images[0]).unwrap();
    let bytes = std::fs::read(&pgm).unwrap();
    assert!(bytes.starts_with(b"P5\n24 24\n255\n"));

    std::fs::remove_file(&raw).ok();
    std::fs::remove_file(&pgm).ok();
}

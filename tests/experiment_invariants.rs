//! Regression tests pinning the quantitative claims the experiment
//! binaries reproduce: Table 3 footprints, the Fig 6 reuse numbers, the
//! Table 1 communication law, Fig 5's ordering contrast, and the Table 5
//! super-linear speedup mechanism.

use memxct::dist::build_plans;
use memxct::{preprocess, Config, DomainOrdering};
use xct_cachesim::{spmv_irregular_miss_rate, CacheConfig};
use xct_geometry::{ADS1, ADS2, RDS2};
use xct_runtime::{iteration_time, KernelVolumes, BLUE_WATERS, THETA};
use xct_sparse::partition_stats;

#[test]
fn table3_ads1_footprint_matches_paper() {
    let f = ADS1.footprint();
    // Paper: 215 MB regular, 256/360 KB irregular.
    let mb = f.regular_forward as f64 / (1024.0 * 1024.0);
    assert!(
        (200.0..240.0).contains(&mb),
        "ADS1 regular {mb:.1} MB vs paper 215 MB"
    );
    assert_eq!(f.irregular_forward, 256 * 1024);
    assert_eq!(f.irregular_backward, 360 * 256 * 4);
}

#[test]
fn table3_rds2_footprint_matches_paper() {
    let f = RDS2.footprint();
    let tb = f.regular_forward as f64 / 1024f64.powi(4);
    // Paper: 5.1 TB per direction.
    assert!(
        (4.5..5.5).contains(&tb),
        "RDS2 regular {tb:.2} TB vs paper 5.1 TB"
    );
}

#[test]
fn fig6_reuse_numbers_match_paper() {
    // 256x256 domains, 64x64 partitions, 32 KB buffer: paper reports
    // reuse 46.63 (forward) / 64.73 (back) and 4 / 3 stages.
    let ops = preprocess(
        xct_geometry::Grid::new(256),
        xct_geometry::ScanGeometry::new(256, 256),
        &Config {
            build_buffered: false,
            ..Config::default()
        },
    );
    let fwd = partition_stats(&ops.a, 4096, 8192);
    let back = partition_stats(&ops.at, 4096, 8192);
    let mid_f = &fwd[fwd.len() / 2];
    let mid_b = &back[back.len() / 2];
    assert!(
        (40.0..55.0).contains(&mid_f.reuse()),
        "fwd reuse {}",
        mid_f.reuse()
    );
    assert!(
        (58.0..72.0).contains(&mid_b.reuse()),
        "back reuse {}",
        mid_b.reuse()
    );
    assert_eq!(mid_f.stages, 4);
    assert_eq!(mid_b.stages, 3);
}

#[test]
fn table1_comm_scales_as_sqrt_p() {
    let ds = ADS2.scaled(4);
    let ops = preprocess(
        ds.grid(),
        ds.scan(),
        &Config {
            build_buffered: false,
            ..Config::default()
        },
    );
    let total_comm = |p: usize| -> f64 {
        build_plans(&ops, p, false)
            .iter()
            .map(|pl| pl.volumes().comm_bytes)
            .sum()
    };
    let c4 = total_comm(4);
    let c16 = total_comm(16);
    let c64 = total_comm(64);
    // Quadrupling P should roughly double total communication. Allow wide
    // slack for boundary effects on the scaled domain.
    assert!((1.5..3.4).contains(&(c16 / c4)), "c16/c4 = {}", c16 / c4);
    assert!((1.5..3.4).contains(&(c64 / c16)), "c64/c16 = {}", c64 / c16);
}

#[test]
fn fig5_hilbert_halves_the_miss_rate() {
    let ds = ADS1; // full size: footprint 256 KB vs 1 MB L2
    let build = |ordering| {
        preprocess(
            ds.grid(),
            ds.scan(),
            &Config {
                ordering,
                build_buffered: false,
                ..Config::default()
            },
        )
    };
    // Use a small cache so the 256 KB footprint exercises capacity misses.
    let cache = CacheConfig::new(64, 32 * 1024, 8);
    let rm = build(DomainOrdering::RowMajor);
    let hl = build(DomainOrdering::TwoLevelHilbert(None));
    let m_rm = spmv_irregular_miss_rate(rm.a.colind(), cache).miss_rate();
    let m_hl = spmv_irregular_miss_rate(hl.a.colind(), cache).miss_rate();
    assert!(
        m_hl < 0.6 * m_rm,
        "hilbert {m_hl:.3} should be well under row-major {m_rm:.3}"
    );
}

#[test]
fn table5_superlinear_mechanism() {
    // RDS1's 56 GB working set: DRAM-bound on 1 Theta node, MCDRAM-fast
    // once split 8 ways — per-iteration speedup must exceed the 8x node
    // ratio (paper: 19x).
    let mk = |gb: f64| KernelVolumes {
        flops: 0.0,
        regular_bytes: gb * 1e9,
        footprint_bytes: 0.02e9,
        comm_bytes: 1e6,
        comm_peers: 8.0,
        reduce_bytes: 1e6,
    };
    let one = iteration_time(&THETA, &mk(112.0), 1).unwrap();
    let eight = iteration_time(&THETA, &mk(14.0), 8).unwrap();
    assert!(one.ap / eight.ap > 8.0);
}

#[test]
fn paper_fit_constraints_hold() {
    // §4.1.3: RDS1 does not fit on fewer than 32 Blue Waters nodes.
    let per_node_at = |nodes: f64| KernelVolumes {
        regular_bytes: 112e9 / nodes,
        footprint_bytes: 0.02e9,
        ..Default::default()
    };
    assert!(iteration_time(&BLUE_WATERS, &per_node_at(8.0), 8).is_none());
    assert!(iteration_time(&BLUE_WATERS, &per_node_at(32.0), 32).is_some());
    // ...but a single Theta node handles it in DDR.
    assert!(iteration_time(&THETA, &per_node_at(1.0), 1).is_some());
}

#[test]
fn communication_matrix_transposes_between_directions() {
    // §3.4.2: the backprojection communication matrix is the transpose of
    // the forward one. In plan terms: what rank r sends q in forward is
    // exactly what q sends r in backprojection.
    let ds = ADS1.scaled(8);
    let ops = preprocess(ds.grid(), ds.scan(), &Config::default());
    let plans = build_plans(&ops, 6, false);
    for r in &plans {
        for (q, range) in r.dest_ranges.iter().enumerate() {
            // Forward: r -> q sends `range.len()` values. Backward: q -> r
            // sends the same rows back.
            assert_eq!(
                range.len(),
                plans[q].rows_from[r.rank].len(),
                "pair ({}, {q})",
                r.rank
            );
        }
    }
}

//! Cross-crate integration tests: the full reconstruction pipeline from
//! phantom to image, equivalence between the memory-centric and
//! compute-centric implementations, and serial/distributed agreement.

use memxct::{
    Config, DistConfig, DomainOrdering, ExecMode, Kernel, ReconInput, ReconRequest, Reconstructor,
    StopRule,
};
use xct_compxct::CompXct;
use xct_geometry::{
    brain_like, disk, shale_like, shepp_logan, simulate_sinogram, Grid, NoiseModel, Phantom,
    ScanGeometry,
};

fn rel_err(a: &[f32], b: &[f32]) -> f64 {
    let num: f64 = a
        .iter()
        .zip(b)
        .map(|(&x, &y)| ((x - y) as f64).powi(2))
        .sum::<f64>()
        .sqrt();
    let den: f64 = b.iter().map(|&y| (y as f64).powi(2)).sum::<f64>().sqrt();
    num / den
}

fn reconstruct(phantom: &Phantom, n: u32, m: u32, iters: usize) -> (Vec<f32>, Vec<f32>) {
    let grid = Grid::new(n);
    let scan = ScanGeometry::new(m, n);
    let truth = phantom.rasterize(n);
    let sino = simulate_sinogram(&truth, &grid, &scan, NoiseModel::None, 0);
    let rec = Reconstructor::new(grid, scan);
    let mut out = rec
        .run(&ReconRequest::cg(
            ReconInput::Slice(sino),
            StopRule::Fixed(iters),
        ))
        .unwrap();
    (out.images.swap_remove(0), truth)
}

#[test]
fn pipeline_recovers_disk() {
    let (img, truth) = reconstruct(&disk(0.6, 1.0), 32, 48, 30);
    assert!(
        rel_err(&img, &truth) < 0.12,
        "err {}",
        rel_err(&img, &truth)
    );
}

#[test]
fn pipeline_recovers_shepp_logan() {
    let (img, truth) = reconstruct(&shepp_logan(), 48, 72, 40);
    assert!(
        rel_err(&img, &truth) < 0.25,
        "err {}",
        rel_err(&img, &truth)
    );
}

#[test]
fn pipeline_recovers_shale_phantom() {
    let (img, truth) = reconstruct(&shale_like(3), 48, 72, 40);
    assert!(
        rel_err(&img, &truth) < 0.25,
        "err {}",
        rel_err(&img, &truth)
    );
}

#[test]
fn pipeline_recovers_brain_phantom() {
    let (img, truth) = reconstruct(&brain_like(3), 48, 72, 40);
    assert!(
        rel_err(&img, &truth) < 0.30,
        "err {}",
        rel_err(&img, &truth)
    );
}

#[test]
fn memxct_and_compxct_run_the_same_sirt() {
    // The memory-centric and compute-centric implementations execute the
    // same mathematics; their SIRT iterates must agree closely.
    let n = 24u32;
    let m = 36u32;
    let grid = Grid::new(n);
    let scan = ScanGeometry::new(m, n);
    let truth = disk(0.55, 1.5).rasterize(n);
    let sino = simulate_sinogram(&truth, &grid, &scan, NoiseModel::None, 0);

    let cx = CompXct::new(grid, scan);
    let (x_comp, comp_stats) = cx.sirt(&sino, 12);

    let rec = Reconstructor::new(grid, scan);
    let out = rec
        .run(&ReconRequest::sirt(ReconInput::Slice(sino), 12))
        .unwrap();

    assert!(
        rel_err(&out.images[0], &x_comp) < 2e-3,
        "images diverged: {}",
        rel_err(&out.images[0], &x_comp)
    );
    for (mem, comp) in out.slice_records[0].iter().zip(&comp_stats) {
        // CompXct records the residual at iteration start; MemXCT SIRT
        // records the same quantity.
        let rel = (mem.residual_norm - comp.residual_norm).abs() / comp.residual_norm.max(1.0);
        assert!(
            rel < 1e-2,
            "iter {}: {} vs {}",
            mem.iter,
            mem.residual_norm,
            comp.residual_norm
        );
    }
}

#[test]
fn all_kernels_and_orderings_agree_on_the_projection() {
    let n = 20u32;
    let m = 16u32;
    let grid = Grid::new(n);
    let scan = ScanGeometry::new(m, n);
    let truth = shepp_logan().rasterize(n);
    let reference = simulate_sinogram(&truth, &grid, &scan, NoiseModel::None, 0);
    for ordering in [
        DomainOrdering::RowMajor,
        DomainOrdering::Morton,
        DomainOrdering::TwoLevelHilbert(None),
        DomainOrdering::TwoLevelHilbert(Some(2)),
    ] {
        let ops = memxct::preprocess(
            grid,
            scan,
            &Config {
                ordering,
                build_ell: true,
                ..Config::default()
            },
        );
        let x = ops.order_tomogram(&truth);
        for kernel in [
            Kernel::Serial,
            Kernel::Parallel,
            Kernel::Ell,
            Kernel::Buffered,
        ] {
            let y = ops.unorder_sinogram(&ops.forward(kernel, &x));
            for (got, want) in y.iter().zip(reference.data()) {
                assert!(
                    (got - want).abs() < 1e-3,
                    "{ordering:?}/{kernel:?}: {got} vs {want}"
                );
            }
        }
    }
}

#[test]
fn distributed_reconstruction_matches_serial_across_rank_counts() {
    let n = 24u32;
    let m = 36u32;
    let grid = Grid::new(n);
    let scan = ScanGeometry::new(m, n);
    let truth = disk(0.5, 2.0).rasterize(n);
    let sino = simulate_sinogram(&truth, &grid, &scan, NoiseModel::None, 0);
    let rec = Reconstructor::new(grid, scan);
    let serial = rec
        .run(&ReconRequest::cg(
            ReconInput::Slice(sino.clone()),
            StopRule::Fixed(8),
        ))
        .unwrap();
    for ranks in [1, 2, 5, 8] {
        let dist = rec
            .run(
                &ReconRequest::cg(ReconInput::Slice(sino.clone()), StopRule::Fixed(8)).mode(
                    ExecMode::Distributed {
                        config: DistConfig {
                            ranks,
                            use_buffered: false,
                            stop: StopRule::Fixed(8),
                            solver: memxct::dist::DistSolver::Cg,
                        },
                        ft: None,
                    },
                ),
            )
            .unwrap();
        assert!(
            rel_err(&dist.images[0], &serial.images[0]) < 2e-2,
            "ranks {ranks}: err {}",
            rel_err(&dist.images[0], &serial.images[0])
        );
    }
}

#[test]
fn noise_degrades_but_does_not_break_reconstruction() {
    let n = 32u32;
    let grid = Grid::new(n);
    let scan = ScanGeometry::new(48, n);
    let truth = disk(0.6, 1.0).rasterize(n);
    let noisy = simulate_sinogram(
        &truth,
        &grid,
        &scan,
        NoiseModel::Poisson {
            incident: 1e4,
            scale: 0.05,
        },
        9,
    );
    let rec = Reconstructor::new(grid, scan);
    let out = rec
        .run(&ReconRequest::cg(
            ReconInput::Slice(noisy),
            StopRule::EarlyTermination {
                max_iters: 100,
                min_decrease: 0.02,
            },
        ))
        .unwrap();
    let err = rel_err(&out.images[0], &truth);
    assert!(err < 0.30, "too degraded: {err}");
    assert!(
        out.slice_records[0].len() < 100,
        "early termination should engage"
    );
}

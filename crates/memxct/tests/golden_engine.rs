//! Golden-value regression tests for the generic iteration engine.
//!
//! Every pre-refactor solver loop (CGLS, SIRT, Tikhonov CGLS,
//! nonnegative SIRT, smoothed CGLS, OS-SIRT) is copied here verbatim as a
//! reference implementation; the tests assert that the engine-backed
//! entry points reproduce the reference `IterationRecord` sequences
//! **bit-for-bit** (residual and solution norms compared as raw f64
//! bits), plus the distributed-equals-serial checks for both CG and SIRT
//! with early termination.

// Golden-pin suite: the deprecated entry points stay covered (as shims
// over `Reconstructor::run`) until they are removed.
#![allow(deprecated)]

use memxct::{
    cgls, cgls_regularized, cgls_smooth, gradient_operator, preprocess, run_engine, sirt,
    sirt_nonneg, Config, Constraint, DistConfig, DistSolver, IterationRecord, Kernel, Operators,
    OrderedSubsets, Reconstructor, SirtRule, StopRule,
};
use xct_geometry::{disk, simulate_sinogram, Grid, NoiseModel, ScanGeometry, Sinogram};
use xct_sparse::{spmv, CsrMatrix};

/// The pre-refactor solver loops, copied verbatim (timings aside) from the
/// seed's `solvers.rs` / `subsets.rs`.
mod reference {
    use memxct::{IterationRecord, StopRule};

    fn dot(a: &[f32], b: &[f32]) -> f64 {
        a.iter().zip(b).map(|(&x, &y)| x as f64 * y as f64).sum()
    }

    fn norm(a: &[f32]) -> f64 {
        dot(a, a).sqrt()
    }

    fn max_iters(stop: StopRule) -> usize {
        match stop {
            StopRule::Fixed(n) => n,
            StopRule::EarlyTermination { max_iters, .. } => max_iters,
        }
    }

    fn should_stop(stop: StopRule, prev: f64, curr: f64) -> bool {
        match stop {
            StopRule::Fixed(_) => false,
            StopRule::EarlyTermination { min_decrease, .. } => {
                prev.is_finite() && prev > 0.0 && (prev - curr) / prev < min_decrease
            }
        }
    }

    pub fn cgls<F, G>(
        y: &[f32],
        nx: usize,
        mut forward: F,
        mut back: G,
        stop: StopRule,
    ) -> (Vec<f32>, Vec<IterationRecord>)
    where
        F: FnMut(&[f32]) -> Vec<f32>,
        G: FnMut(&[f32]) -> Vec<f32>,
    {
        let mut x = vec![0f32; nx];
        let mut r = y.to_vec();
        let mut s = back(&r);
        let mut p = s.clone();
        let mut gamma = dot(&s, &s);
        let mut records = Vec::new();
        let mut prev_res = f64::INFINITY;
        for iter in 0..max_iters(stop) {
            if gamma == 0.0 {
                break;
            }
            let q = forward(&p);
            let qq = dot(&q, &q);
            if qq == 0.0 {
                break;
            }
            let alpha = (gamma / qq) as f32;
            for (xi, &pi) in x.iter_mut().zip(&p) {
                *xi += alpha * pi;
            }
            for (ri, &qi) in r.iter_mut().zip(&q) {
                *ri -= alpha * qi;
            }
            s = back(&r);
            let gamma_new = dot(&s, &s);
            let beta = (gamma_new / gamma) as f32;
            gamma = gamma_new;
            for (pi, &si) in p.iter_mut().zip(&s) {
                *pi = si + beta * *pi;
            }
            let res = norm(&r);
            records.push(IterationRecord {
                iter,
                residual_norm: res,
                solution_norm: norm(&x),
                seconds: 0.0,
            });
            if should_stop(stop, prev_res, res) {
                break;
            }
            prev_res = res;
        }
        (x, records)
    }

    pub fn cgls_regularized<F, G>(
        y: &[f32],
        nx: usize,
        mut forward: F,
        mut back: G,
        lambda: f32,
        stop: StopRule,
    ) -> (Vec<f32>, Vec<IterationRecord>)
    where
        F: FnMut(&[f32]) -> Vec<f32>,
        G: FnMut(&[f32]) -> Vec<f32>,
    {
        let mut x = vec![0f32; nx];
        let mut r = y.to_vec();
        let mut s = back(&r);
        let mut p = s.clone();
        let mut gamma = dot(&s, &s);
        let mut records = Vec::new();
        let mut prev_res = f64::INFINITY;
        for iter in 0..max_iters(stop) {
            if gamma == 0.0 {
                break;
            }
            let q = forward(&p);
            let qq = dot(&q, &q) + lambda as f64 * dot(&p, &p);
            if qq == 0.0 {
                break;
            }
            let alpha = (gamma / qq) as f32;
            for (xi, &pi) in x.iter_mut().zip(&p) {
                *xi += alpha * pi;
            }
            for (ri, &qi) in r.iter_mut().zip(&q) {
                *ri -= alpha * qi;
            }
            s = back(&r);
            for (si, &xi) in s.iter_mut().zip(&x) {
                *si -= lambda * xi;
            }
            let gamma_new = dot(&s, &s);
            let beta = (gamma_new / gamma) as f32;
            gamma = gamma_new;
            for (pi, &si) in p.iter_mut().zip(&s) {
                *pi = si + beta * *pi;
            }
            let res = norm(&r);
            records.push(IterationRecord {
                iter,
                residual_norm: res,
                solution_norm: norm(&x),
                seconds: 0.0,
            });
            if should_stop(stop, prev_res, res) {
                break;
            }
            prev_res = res;
        }
        (x, records)
    }

    pub fn sirt<F, G>(
        y: &[f32],
        nx: usize,
        mut forward: F,
        mut back: G,
        iters: usize,
        nonneg: bool,
    ) -> (Vec<f32>, Vec<IterationRecord>)
    where
        F: FnMut(&[f32]) -> Vec<f32>,
        G: FnMut(&[f32]) -> Vec<f32>,
    {
        let ny = y.len();
        let row_sum = forward(&vec![1f32; nx]);
        let col_sum = back(&vec![1f32; ny]);
        let inv = |v: f32| if v > 0.0 { 1.0 / v } else { 0.0 };
        let row_w: Vec<f32> = row_sum.into_iter().map(inv).collect();
        let col_w: Vec<f32> = col_sum.into_iter().map(inv).collect();
        let mut x = vec![0f32; nx];
        let mut records = Vec::with_capacity(iters);
        for iter in 0..iters {
            let mut residual = forward(&x);
            for (ri, &yi) in residual.iter_mut().zip(y) {
                *ri = yi - *ri;
            }
            let res_norm = norm(&residual);
            for (ri, &w) in residual.iter_mut().zip(&row_w) {
                *ri *= w;
            }
            let update = back(&residual);
            if nonneg {
                for ((xi, u), &w) in x.iter_mut().zip(update).zip(&col_w) {
                    *xi = (*xi + u * w).max(0.0);
                }
            } else {
                for ((xi, u), &w) in x.iter_mut().zip(update).zip(&col_w) {
                    *xi += u * w;
                }
            }
            records.push(IterationRecord {
                iter,
                residual_norm: res_norm,
                solution_norm: norm(&x),
                seconds: 0.0,
            });
        }
        (x, records)
    }
}

fn setup(n: u32, m: u32) -> (Operators, Vec<f32>) {
    let grid = Grid::new(n);
    let scan = ScanGeometry::new(m, n);
    let img = disk(0.6, 1.0).rasterize(n);
    let sino = simulate_sinogram(&img, &grid, &scan, NoiseModel::None, 0);
    let ops = preprocess(grid, scan, &Config::default());
    let y = ops.order_sinogram(&sino);
    (ops, y)
}

/// Records must agree exactly: same length, same iteration numbers, and
/// bit-identical residual/solution norms (`seconds` is wall clock and
/// excluded).
fn assert_identical_records(got: &[IterationRecord], want: &[IterationRecord]) {
    assert_eq!(got.len(), want.len(), "record count differs");
    for (g, w) in got.iter().zip(want) {
        assert_eq!(g.iter, w.iter);
        assert_eq!(
            g.residual_norm.to_bits(),
            w.residual_norm.to_bits(),
            "residual at iter {}: {} vs {}",
            g.iter,
            g.residual_norm,
            w.residual_norm
        );
        assert_eq!(
            g.solution_norm.to_bits(),
            w.solution_norm.to_bits(),
            "solution at iter {}: {} vs {}",
            g.iter,
            g.solution_norm,
            w.solution_norm
        );
    }
}

fn assert_identical_images(got: &[f32], want: &[f32]) {
    assert_eq!(got.len(), want.len());
    for (i, (g, w)) in got.iter().zip(want).enumerate() {
        assert_eq!(g.to_bits(), w.to_bits(), "pixel {i}: {g} vs {w}");
    }
}

#[test]
fn cgls_matches_reference_loop() {
    let (ops, y) = setup(24, 36);
    for stop in [
        StopRule::Fixed(12),
        StopRule::EarlyTermination {
            max_iters: 40,
            min_decrease: 1e-3,
        },
    ] {
        let (x_ref, r_ref) = reference::cgls(
            &y,
            ops.a.ncols(),
            |p| ops.forward(Kernel::Serial, p),
            |r| ops.back(Kernel::Serial, r),
            stop,
        );
        let (x, r) = cgls(
            &y,
            ops.a.ncols(),
            |p| ops.forward(Kernel::Serial, p),
            |r| ops.back(Kernel::Serial, r),
            stop,
        );
        assert_identical_records(&r, &r_ref);
        assert_identical_images(&x, &x_ref);
    }
}

#[test]
fn sirt_matches_reference_loop() {
    let (ops, y) = setup(24, 36);
    let (x_ref, r_ref) = reference::sirt(
        &y,
        ops.a.ncols(),
        |p| ops.forward(Kernel::Serial, p),
        |r| ops.back(Kernel::Serial, r),
        10,
        false,
    );
    let (x, r) = sirt(
        &y,
        ops.a.ncols(),
        |p| ops.forward(Kernel::Serial, p),
        |r| ops.back(Kernel::Serial, r),
        10,
    );
    assert_identical_records(&r, &r_ref);
    assert_identical_images(&x, &x_ref);
}

#[test]
fn cgls_regularized_matches_reference_loop() {
    let (ops, y) = setup(24, 36);
    let (x_ref, r_ref) = reference::cgls_regularized(
        &y,
        ops.a.ncols(),
        |p| ops.forward(Kernel::Serial, p),
        |r| ops.back(Kernel::Serial, r),
        0.3,
        StopRule::Fixed(15),
    );
    let (x, r) = cgls_regularized(
        &y,
        ops.a.ncols(),
        |p| ops.forward(Kernel::Serial, p),
        |r| ops.back(Kernel::Serial, r),
        0.3,
        StopRule::Fixed(15),
    );
    assert_identical_records(&r, &r_ref);
    assert_identical_images(&x, &x_ref);
}

#[test]
fn sirt_nonneg_matches_reference_loop() {
    let (ops, y) = setup(24, 36);
    let (x_ref, r_ref) = reference::sirt(
        &y,
        ops.a.ncols(),
        |p| ops.forward(Kernel::Serial, p),
        |r| ops.back(Kernel::Serial, r),
        10,
        true,
    );
    let (x, r) = sirt_nonneg(
        &y,
        ops.a.ncols(),
        |p| ops.forward(Kernel::Serial, p),
        |r| ops.back(Kernel::Serial, r),
        10,
    );
    assert_identical_records(&r, &r_ref);
    assert_identical_images(&x, &x_ref);
}

#[test]
fn cgls_smooth_matches_reference_stacked_closures() {
    let (ops, y) = setup(24, 36);
    let lambda = 0.5f32;
    // The pre-refactor implementation: hand-stacked closures over
    // `[A; √λ·D]` fed to the plain CGLS loop.
    let d = gradient_operator(&ops.tomo_ord);
    let dt = d.transpose_scan();
    let sqrt_l = lambda.sqrt();
    let ny = y.len();
    let forward = |x: &[f32]| -> Vec<f32> {
        let mut out = ops.forward(Kernel::Serial, x);
        let g = spmv(&d, x);
        out.extend(g.into_iter().map(|v| v * sqrt_l));
        out
    };
    let back = |r: &[f32]| -> Vec<f32> {
        let mut out = ops.back(Kernel::Serial, &r[..ny]);
        let g = spmv(&dt, &r[ny..]);
        for (o, v) in out.iter_mut().zip(g) {
            *o += sqrt_l * v;
        }
        out
    };
    let mut y_aug = y.clone();
    y_aug.extend(std::iter::repeat_n(0f32, d.nrows()));
    let (x_ref, r_ref) = reference::cgls(&y_aug, ops.a.ncols(), forward, back, StopRule::Fixed(20));

    let (x, r) = cgls_smooth(&ops, Kernel::Serial, &y, lambda, StopRule::Fixed(20));
    assert_identical_records(&r, &r_ref);
    assert_identical_images(&x, &x_ref);
}

#[test]
fn os_sirt_matches_reference_loop() {
    let (ops, y) = setup(24, 36);
    let num_subsets = 6;
    let relaxation = 1.0f32;
    let iters = 6;

    // Pre-refactor OS-SIRT: rebuild the subset blocks exactly as the old
    // `OrderedSubsets::new` did and run the old nested loop.
    let mut rows_by_subset: Vec<Vec<u32>> = vec![Vec::new(); num_subsets];
    for rank in 0..ops.a.nrows() as u32 {
        let (_chan, proj) = ops.sino_ord.cell(rank);
        rows_by_subset[(proj as usize) % num_subsets].push(rank);
    }
    struct RefSubset {
        rows: Vec<u32>,
        block: CsrMatrix,
        block_t: CsrMatrix,
        row_w: Vec<f32>,
        col_w: Vec<f32>,
    }
    let subsets: Vec<RefSubset> = rows_by_subset
        .into_iter()
        .map(|rows| {
            let row_data: Vec<Vec<(u32, f32)>> = rows
                .iter()
                .map(|&r| ops.a.row(r as usize).collect())
                .collect();
            let block = CsrMatrix::from_rows(ops.a.ncols(), &row_data);
            let block_t = block.transpose_scan();
            let inv = |v: f32| if v > 0.0 { 1.0 / v } else { 0.0 };
            let row_w: Vec<f32> = (0..block.nrows())
                .map(|i| inv(block.row(i).map(|(_, v)| v).sum()))
                .collect();
            let mut col_sum = vec![0f32; block.ncols()];
            for i in 0..block.nrows() {
                for (c, v) in block.row(i) {
                    col_sum[c as usize] += v;
                }
            }
            let col_w: Vec<f32> = col_sum.into_iter().map(inv).collect();
            RefSubset {
                rows,
                block,
                block_t,
                row_w,
                col_w,
            }
        })
        .collect();
    let mut x_ref = vec![0f32; ops.a.ncols()];
    let mut r_ref = Vec::with_capacity(iters);
    for iter in 0..iters {
        for sub in &subsets {
            let mut r = spmv(&sub.block, &x_ref);
            for (ri, &row) in r.iter_mut().zip(&sub.rows) {
                *ri = y[row as usize] - *ri;
            }
            for (ri, &w) in r.iter_mut().zip(&sub.row_w) {
                *ri *= w;
            }
            let update = spmv(&sub.block_t, &r);
            for ((xi, u), &w) in x_ref.iter_mut().zip(update).zip(&sub.col_w) {
                *xi += relaxation * u * w;
            }
        }
        let mut res_sq = 0f64;
        for sub in &subsets {
            let r = spmv(&sub.block, &x_ref);
            for (ri, &row) in r.iter().zip(&sub.rows) {
                let d = (y[row as usize] - ri) as f64;
                res_sq += d * d;
            }
        }
        r_ref.push(IterationRecord {
            iter,
            residual_norm: res_sq.sqrt(),
            solution_norm: x_ref
                .iter()
                .map(|&v| (v as f64).powi(2))
                .sum::<f64>()
                .sqrt(),
            seconds: 0.0,
        });
    }

    let os = OrderedSubsets::new(&ops, num_subsets);
    let (x, r) = os.solve(&y, iters, relaxation);
    assert_identical_records(&r, &r_ref);
    assert_identical_images(&x, &x_ref);
}

fn rel_err(a: &[f32], b: &[f32]) -> f64 {
    let num: f64 = a
        .iter()
        .zip(b)
        .map(|(&x, &y)| ((x - y) as f64).powi(2))
        .sum::<f64>()
        .sqrt();
    let den: f64 = b.iter().map(|&y| (y as f64).powi(2)).sum::<f64>().sqrt();
    num / den
}

fn dist_setup(n: u32, m: u32) -> (Reconstructor, Sinogram) {
    let grid = Grid::new(n);
    let scan = ScanGeometry::new(m, n);
    let img = disk(0.5, 2.0).rasterize(n);
    let sino = simulate_sinogram(&img, &grid, &scan, NoiseModel::None, 0);
    (Reconstructor::new(grid, scan), sino)
}

/// Acceptance: the distributed path is the same engine — for both CG and
/// SIRT, with early termination, the distributed reconstruction must stop
/// at the same iteration as the serial one and produce the same image (up
/// to the floating-point reassociation of rank-partitioned reductions).
#[test]
fn distributed_equals_serial_cg_with_early_termination() {
    let (rec, sino) = dist_setup(24, 36);
    // The threshold sits well clear of the per-iteration decrease values
    // on either side, so the stopping decision is robust to the
    // floating-point reassociation of rank-partitioned reductions.
    let stop = StopRule::EarlyTermination {
        max_iters: 40,
        min_decrease: 0.2,
    };
    let serial = rec.reconstruct_cg(&sino, stop);
    assert!(
        serial.records.len() < 40,
        "early termination should trigger, ran {}",
        serial.records.len()
    );
    for ranks in [1usize, 3, 4] {
        let dist = rec.reconstruct_distributed(
            &sino,
            &DistConfig {
                ranks,
                use_buffered: true,
                stop,
                solver: DistSolver::Cg,
            },
        );
        assert_eq!(
            dist.records.len(),
            serial.records.len(),
            "ranks {ranks}: stopped at a different iteration"
        );
        let err = rel_err(&dist.image, &serial.image);
        assert!(err < 5e-3, "ranks {ranks}: err {err}");
    }
}

#[test]
fn distributed_equals_serial_sirt_with_early_termination() {
    let (rec, sino) = dist_setup(24, 36);
    let stop = StopRule::EarlyTermination {
        max_iters: 60,
        min_decrease: 0.02,
    };
    // Serial SIRT with the same stop rule, through the same engine on the
    // buffered operator (the kernel `Reconstructor::new` selects).
    let ops = rec.operators();
    let y = ops.order_sinogram(&sino);
    let op = ops.operator(rec.kernel());
    let (x, serial_records) = run_engine(
        op.as_ref(),
        &y,
        &mut SirtRule::new(1.0),
        Constraint::None,
        stop,
    );
    let serial_image = ops.unorder_tomogram(&x);
    assert!(
        serial_records.len() < 60,
        "early termination should trigger, ran {}",
        serial_records.len()
    );
    for ranks in [1usize, 3, 4] {
        let dist = rec.reconstruct_distributed(
            &sino,
            &DistConfig {
                ranks,
                use_buffered: true,
                stop,
                solver: DistSolver::Sirt,
            },
        );
        assert_eq!(
            dist.records.len(),
            serial_records.len(),
            "ranks {ranks}: stopped at a different iteration"
        );
        let err = rel_err(&dist.image, &serial_image);
        assert!(err < 5e-3, "ranks {ranks}: err {err}");
    }
}

//! Pooled-execution determinism: reconstructions on the persistent
//! worker pool must be **bit-identical for every thread count** (the
//! per-row accumulation order and the fixed-chunk reduction order never
//! depend on how many workers the rows are split across), and must agree
//! with the unpooled path to reduction-reordering tolerance.

// Golden-pin suite: the deprecated entry points stay covered (as shims
// over `Reconstructor::run`) until they are removed.
#![allow(deprecated)]

use memxct::{Kernel, ReconstructorBuilder, StopRule};
use xct_geometry::{disk, simulate_sinogram, Grid, NoiseModel, ScanGeometry, Sinogram};

fn problem(n: u32, m: u32) -> (Grid, ScanGeometry, Sinogram) {
    let grid = Grid::new(n);
    let scan = ScanGeometry::new(m, n);
    let img = disk(0.6, 1.0).rasterize(n);
    let sino = simulate_sinogram(&img, &grid, &scan, NoiseModel::None, 0);
    (grid, scan, sino)
}

fn pooled_image(
    grid: Grid,
    scan: ScanGeometry,
    sino: &Sinogram,
    kernel: Kernel,
    threads: usize,
) -> Vec<f32> {
    let rec = ReconstructorBuilder::new(grid, scan)
        .kernel(kernel)
        .build_ell(kernel == Kernel::Ell)
        .use_pool(true)
        .pool_threads(threads)
        .build()
        .unwrap();
    assert_eq!(rec.pool_threads(), Some(threads));
    rec.reconstruct_cg(sino, StopRule::Fixed(12)).image
}

#[test]
fn pooled_cg_is_bit_identical_across_thread_counts() {
    let (grid, scan, sino) = problem(24, 36);
    for kernel in [Kernel::Parallel, Kernel::Buffered, Kernel::Ell] {
        let want = pooled_image(grid, scan, &sino, kernel, 1);
        for threads in [2, 3, 8] {
            let got = pooled_image(grid, scan, &sino, kernel, threads);
            assert!(
                got.iter()
                    .zip(&want)
                    .all(|(g, w)| g.to_bits() == w.to_bits()),
                "{kernel:?} at {threads} threads diverges from 1 thread"
            );
        }
    }
}

#[test]
fn pooled_kernels_agree_with_each_other_bitwise() {
    // All pooled kernels share the per-row accumulation order of the CSR
    // memoization *and* the same chunked reduction, so they agree exactly
    // — a stronger statement than the unpooled backends' approximate
    // agreement.
    let (grid, scan, sino) = problem(24, 36);
    let csr = pooled_image(grid, scan, &sino, Kernel::Parallel, 2);
    let buffered = pooled_image(grid, scan, &sino, Kernel::Buffered, 2);
    assert!(csr
        .iter()
        .zip(&buffered)
        .all(|(a, b)| a.to_bits() == b.to_bits()));
}

#[test]
fn pooled_matches_unpooled_to_reduction_tolerance() {
    let (grid, scan, sino) = problem(24, 36);
    let unpooled = ReconstructorBuilder::new(grid, scan)
        .build()
        .unwrap()
        .reconstruct_cg(&sino, StopRule::Fixed(12))
        .image;
    let pooled = pooled_image(grid, scan, &sino, Kernel::Buffered, 2);
    // The pooled f64 dot sums chunk partials instead of a single running
    // sum, so the trajectory differs in the last bits only.
    let err: f64 = pooled
        .iter()
        .zip(&unpooled)
        .map(|(&a, &b)| ((a - b) as f64).powi(2))
        .sum::<f64>()
        .sqrt();
    let norm: f64 = unpooled
        .iter()
        .map(|&v| (v as f64).powi(2))
        .sum::<f64>()
        .sqrt();
    assert!(err < 1e-4 * norm.max(1.0), "rel err {}", err / norm);
}

#[test]
fn pooled_reconstructor_reports_pool_metrics_and_validates_plans() {
    let (grid, scan, sino) = problem(24, 36);
    let rec = ReconstructorBuilder::new(grid, scan)
        .use_pool(true)
        .pool_threads(2)
        .validate_plan(true)
        .build()
        .unwrap();
    rec.reconstruct_cg(&sino, StopRule::Fixed(4));
    let snap = rec.metrics();
    // Pool instrumentation: dispatch latency, utilization, worker count.
    assert!(snap.counters[xct_runtime::POOL_DISPATCHES] > 0);
    assert!(snap.timers.contains_key(xct_runtime::POOL_DISPATCH_SECONDS));
    assert_eq!(snap.gauges[xct_runtime::POOL_WORKERS], 2.0);
    // Plan imbalance gauges: ≥ 1 by definition, and the nnz-balanced
    // split should stay close to ideal.
    let imb = snap.gauges[memxct::POOL_IMBALANCE_FORWARD];
    assert!((1.0..2.0).contains(&imb), "imbalance {imb}");
    assert!(snap.gauges.contains_key(memxct::POOL_IMBALANCE_BACK));
    // Pooled SpMV is metered like every other operator.
    assert!(snap.counters["spmv/pooled/calls"] > 0);
    // The validation sweep covers the four execution plans on top of the
    // nine memoized structures.
    let report = rec.validate_plan();
    assert!(report.is_ok(), "{report}");
    let plans = memxct::PooledPlans::new(rec.operators(), rec.kernel(), 2);
    assert_eq!(memxct::exec_checker(&plans).len(), 4);
}

#[test]
fn pooled_sirt_is_bit_identical_across_thread_counts() {
    let (grid, scan, sino) = problem(24, 36);
    let image = |threads: usize| {
        ReconstructorBuilder::new(grid, scan)
            .use_pool(true)
            .pool_threads(threads)
            .build()
            .unwrap()
            .reconstruct_sirt(&sino, 8)
            .image
    };
    let want = image(1);
    for threads in [2, 8] {
        let got = image(threads);
        assert!(got
            .iter()
            .zip(&want)
            .all(|(g, w)| g.to_bits() == w.to_bits()));
    }
}

//! Property tests for the core pipeline: the memoized operators agree
//! with direct ray tracing, the factorized distributed product agrees
//! with the monolithic one, and permutations round-trip — for arbitrary
//! geometries and rank counts.

// Golden-pin suite: the deprecated entry points stay covered (as shims
// over `Reconstructor::run`) until they are removed.
#![allow(deprecated)]

use memxct::{preprocess, Config, Kernel};
use proptest::prelude::*;
use xct_geometry::{disk, Sinogram};
use xct_geometry::{simulate_sinogram, Grid, NoiseModel, ScanGeometry};
use xct_runtime::run_ranks;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    #[test]
    fn forward_equals_direct_simulation(n in 8u32..28, m in 4u32..24) {
        let grid = Grid::new(n);
        let scan = ScanGeometry::new(m, n);
        let img = disk(0.7, 1.0).rasterize(n);
        let direct = simulate_sinogram(&img, &grid, &scan, NoiseModel::None, 0);
        let ops = preprocess(grid, scan, &Config::default());
        let y = ops.forward(Kernel::Buffered, &ops.order_tomogram(&img));
        let y_rm = ops.unorder_sinogram(&y);
        for (got, want) in y_rm.iter().zip(direct.data()) {
            prop_assert!((got - want).abs() < 1e-3, "{got} vs {want}");
        }
    }

    #[test]
    fn distributed_forward_equals_serial(
        n in 8u32..24, m in 4u32..20, ranks in 1usize..6
    ) {
        let grid = Grid::new(n);
        let scan = ScanGeometry::new(m, n);
        let ops = preprocess(grid, scan, &Config::default());
        let x: Vec<f32> = (0..ops.a.ncols()).map(|i| ((i * 13) % 9) as f32 * 0.125).collect();
        let want = ops.forward(Kernel::Serial, &x);
        let plans = memxct::dist::build_plans(&ops, ranks, false);
        let (results, _) = run_ranks(ranks, |comm| {
            let plan = &plans[comm.rank()];
            let lo = plan.tomo_range.start as usize;
            let hi = plan.tomo_range.end as usize;
            let mut kb = memxct::KernelBreakdown::default();
            plan.forward(comm, &x[lo..hi], &mut kb)
        });
        let mut got = vec![0f32; ops.a.nrows()];
        for (plan, block) in plans.iter().zip(results) {
            let lo = plan.sino_range.start as usize;
            got[lo..lo + block.len()].copy_from_slice(&block);
        }
        for (g, w) in got.iter().zip(&want) {
            prop_assert!((g - w).abs() < 1e-3, "{g} vs {w}");
        }
    }

    #[test]
    fn sinogram_permutation_roundtrips(n in 4u32..32, m in 2u32..24) {
        let ops = preprocess(Grid::new(n), ScanGeometry::new(m, n), &Config {
            build_buffered: false,
            ..Config::default()
        });
        let data: Vec<f32> = (0..(m * n)).map(|i| i as f32).collect();
        let sino = Sinogram::new(ScanGeometry::new(m, n), data.clone());
        prop_assert_eq!(ops.unorder_sinogram(&ops.order_sinogram(&sino)), data);
    }

    #[test]
    fn distributed_sirt_early_termination_matches_serial(
        n in 10u32..24, m in 6u32..20, ranks in 1usize..5
    ) {
        let grid = Grid::new(n);
        let scan = ScanGeometry::new(m, n);
        let img = disk(0.5, 2.0).rasterize(n);
        let sino = simulate_sinogram(&img, &grid, &scan, NoiseModel::None, 0);
        let rec = memxct::Reconstructor::new(grid, scan);
        let stop = memxct::StopRule::EarlyTermination {
            max_iters: 50,
            min_decrease: 0.02,
        };
        // Serial: the same engine + SirtRule on the buffered operator.
        let ops = rec.operators();
        let y = ops.order_sinogram(&sino);
        let op = ops.operator(rec.kernel());
        let (x, serial_records) = memxct::run_engine(
            op.as_ref(),
            &y,
            &mut memxct::SirtRule::new(1.0),
            memxct::Constraint::None,
            stop,
        );
        let serial_image = ops.unorder_tomogram(&x);
        let dist = rec.reconstruct_distributed(
            &sino,
            &memxct::DistConfig {
                ranks,
                use_buffered: true,
                stop,
                solver: memxct::DistSolver::Sirt,
            },
        );
        // The allreduced residual is identical on every rank, so the
        // early-termination decision must branch the same way as serial
        // (up to fp reassociation right at the threshold).
        let d = dist.records.len() as i64 - serial_records.len() as i64;
        prop_assert!(d.abs() <= 1, "stopped at {} vs serial {}", dist.records.len(), serial_records.len());
        let num: f64 = dist.image.iter().zip(&serial_image)
            .map(|(&a, &b)| ((a - b) as f64).powi(2)).sum::<f64>().sqrt();
        let den: f64 = serial_image.iter().map(|&v| (v as f64).powi(2)).sum::<f64>().sqrt();
        prop_assert!(num / den.max(1e-12) < 2e-2, "rel err {}", num / den.max(1e-12));
    }

    #[test]
    fn operators_are_adjoint(n in 6u32..24, m in 3u32..18) {
        let ops = preprocess(Grid::new(n), ScanGeometry::new(m, n), &Config {
            build_buffered: false,
            ..Config::default()
        });
        let x: Vec<f32> = (0..ops.a.ncols()).map(|i| ((i * 7) % 11) as f32 - 5.0).collect();
        let y: Vec<f32> = (0..ops.a.nrows()).map(|i| ((i * 3) % 13) as f32 - 6.0).collect();
        let ax = ops.forward(Kernel::Serial, &x);
        let aty = ops.back(Kernel::Serial, &y);
        let lhs: f64 = ax.iter().zip(&y).map(|(&a, &b)| a as f64 * b as f64).sum();
        let rhs: f64 = x.iter().zip(&aty).map(|(&a, &b)| a as f64 * b as f64).sum();
        prop_assert!((lhs - rhs).abs() / lhs.abs().max(1.0) < 1e-3);
    }
}

//! End-to-end observability contracts: one instrumented reconstruction
//! must export every metric family the paper's figures are drawn from
//! (phase timings, SpMV volumes, per-iteration residuals, and the Fig 7
//! communication matrix), the no-op handle must record nothing, and the
//! exported matrix must agree with the runtime's per-pair ledger.

// Golden-pin suite: the deprecated entry points stay covered (as shims
// over `Reconstructor::run`) until they are removed.
#![allow(deprecated)]

use memxct::prelude::*;
use memxct::reconstruct_distributed_with_metrics;
use xct_geometry::{simulate_sinogram, Grid, NoiseModel, ScanGeometry, Sinogram};

fn small_sinogram(n: u32) -> (Grid, ScanGeometry, Sinogram) {
    let grid = Grid::new(n);
    let scan = ScanGeometry::new(n + 5, n);
    let truth = vec![0.5f32; (n * n) as usize];
    let sino = simulate_sinogram(&truth, &grid, &scan, NoiseModel::None, 0xfeed);
    (grid, scan, sino)
}

/// The metrics JSON from a single instrumented run holds all four
/// required families: preprocessing phase timers, per-kernel SpMV
/// counters, the per-iteration residual series, and the per-pair
/// communication matrix.
#[test]
fn one_run_exports_all_required_metric_families() {
    let (grid, scan, sino) = small_sinogram(24);
    let rec = ReconstructorBuilder::new(grid, scan).build().unwrap();
    let _ = rec
        .try_reconstruct_distributed(
            &sino,
            &DistConfig {
                ranks: 3,
                use_buffered: true,
                stop: StopRule::Fixed(6),
                solver: DistSolver::Cg,
            },
        )
        .unwrap();

    let snap = rec.metrics();
    // Preprocessing phases.
    for phase in [
        "preprocess",
        "preprocess/ordering",
        "preprocess/tracing",
        "preprocess/transpose",
        "preprocess/buffers",
    ] {
        assert!(snap.timers.contains_key(phase), "missing timer {phase}");
    }
    // SpMV volume counters for the kernel that ran.
    for counter in ["spmv/dist/calls", "spmv/dist/nnz", "spmv/dist/bytes"] {
        assert!(snap.counters[counter] > 0, "empty counter {counter}");
    }
    // One residual per iteration.
    assert_eq!(snap.series["solver/residual_norm"].len(), 6);
    assert_eq!(snap.counters["solver/iterations"], 6);
    // Per-pair communication matrix, one row/col per rank.
    let mat = &snap.matrices["comm/bytes"];
    assert_eq!(mat.size, 3);
    assert_eq!(mat.data.len(), 9);
    assert!(mat.data.iter().sum::<u64>() > 0);

    // The JSON export carries the same families under the documented keys.
    let json = snap.to_json();
    for key in [
        "\"preprocess/tracing\"",
        "\"spmv/dist/bytes\"",
        "\"solver/residual_norm\"",
        "\"comm/bytes\"",
        "\"total_s\"",
        "\"size\":3",
    ] {
        assert!(json.contains(key), "JSON missing {key}: {json}");
    }
    assert!(json.starts_with("{\"counters\":{"));
}

/// The no-op handle is a true zero-collection path: an entire
/// reconstruction through it leaves the snapshot empty and the JSON at
/// the bare schema skeleton.
#[test]
fn noop_metrics_collect_nothing_end_to_end() {
    let (grid, scan, sino) = small_sinogram(16);
    let rec = ReconstructorBuilder::new(grid, scan)
        .metrics(Metrics::noop())
        .build()
        .unwrap();
    let _ = rec.try_reconstruct_cg(&sino, StopRule::Fixed(4)).unwrap();

    let snap = rec.metrics();
    assert!(snap.is_empty());
    assert_eq!(
        snap.to_json(),
        r#"{"counters":{},"gauges":{},"timers":{},"series":{},"matrices":{}}"#
    );
}

/// Fig 7 path: the exported `comm/bytes` matrix is exactly the
/// communicator ledger's per-pair byte accounting — every (src, dst)
/// entry, not just totals.
#[test]
fn exported_comm_matrix_matches_ledger_per_pair() {
    let (grid, scan, sino) = small_sinogram(32);
    let ops = try_preprocess(grid, scan, &Config::default()).unwrap();
    let y = ops.order_sinogram(&sino);
    let ranks = 4;
    let metrics = Metrics::collecting();
    let out = reconstruct_distributed_with_metrics(
        &ops,
        &y,
        &DistConfig {
            ranks,
            use_buffered: true,
            stop: StopRule::Fixed(5),
            solver: DistSolver::Cg,
        },
        &metrics,
    )
    .unwrap();

    let mat = &metrics.snapshot().matrices["comm/bytes"];
    assert_eq!(mat.size, ranks);
    for src in 0..ranks {
        for dst in 0..ranks {
            assert_eq!(
                mat.get(src, dst),
                out.ledger.bytes(src, dst),
                "pair ({src},{dst})"
            );
        }
    }
    // The sparse structure survives export: the matrix has exactly as
    // many communicating pairs as the ledger counted.
    let nonzero = mat.data.iter().filter(|&&b| b > 0).count();
    assert_eq!(nonzero, out.ledger.nonzero_pairs());
}

/// Builder validation rejects each invalid input with the specific
/// `BuildError` variant instead of panicking.
#[test]
fn builder_surfaces_typed_build_errors() {
    let mk = || ReconstructorBuilder::new(Grid::new(16), ScanGeometry::new(12, 16));

    assert!(matches!(
        mk().partition_size(0).build(),
        Err(BuildError::ZeroPartitionSize)
    ));
    assert!(matches!(
        mk().buffer_size(1 << 20).build(),
        Err(BuildError::InvalidBufferSize { .. })
    ));
    assert!(matches!(
        mk().kernel(Kernel::Ell).build(),
        Err(BuildError::LayoutNotBuilt { .. })
    ));

    // And the sinogram-length check on the built reconstructor.
    let rec = mk().build().unwrap();
    let wrong = Sinogram::new(ScanGeometry::new(7, 16), vec![0.0; 7 * 16]);
    assert!(matches!(
        rec.try_reconstruct_cg(&wrong, StopRule::Fixed(2)),
        Err(BuildError::SinogramLength { .. })
    ));
}

//! Mutation tests on *real* preprocessed plans: corrupt one field of a
//! genuinely traced operator set (not a hand-built specimen) and assert
//! the plan-level sweep pinpoints the corrupted invariant class — plus the
//! golden guarantee that enabling validation changes no bits.

// Golden-pin suite: the deprecated entry points stay covered (as shims
// over `Reconstructor::run`) until they are removed.
#![allow(deprecated)]

use memxct::prelude::*;
use memxct::{dist_checker, Invariant};
use xct_geometry::{disk, simulate_sinogram, Grid, NoiseModel, ScanGeometry};
use xct_sparse::CsrMatrix;

fn setup(n: u32, m: u32) -> (Grid, ScanGeometry, Operators) {
    let grid = Grid::new(n);
    let scan = ScanGeometry::new(m, n);
    let ops = preprocess(grid, scan, &Config::default());
    (grid, scan, ops)
}

#[test]
fn validated_build_is_bit_identical_to_unvalidated() {
    let n = 24u32;
    let grid = Grid::new(n);
    let scan = ScanGeometry::new(36, n);
    let truth = disk(0.6, 1.0).rasterize(n);
    let sino = simulate_sinogram(&truth, &grid, &scan, NoiseModel::None, 0);

    let plain = ReconstructorBuilder::new(grid, scan).build().unwrap();
    let validated = ReconstructorBuilder::new(grid, scan)
        .validate_plan(true)
        .build()
        .unwrap();
    let a = plain.reconstruct_cg(&sino, StopRule::Fixed(8));
    let b = validated.reconstruct_cg(&sino, StopRule::Fixed(8));
    assert_eq!(a.image, b.image, "validation must not perturb the solve");
    for (ra, rb) in a.records.iter().zip(&b.records) {
        assert_eq!(ra.residual_norm.to_bits(), rb.residual_norm.to_bits());
        assert_eq!(ra.solution_norm.to_bits(), rb.solution_norm.to_bits());
    }
    // And the post-build sweep agrees the plan is clean.
    assert!(validated.validate_plan().is_ok());
}

#[test]
fn nan_in_traced_matrix_is_pinpointed() {
    let (_, _, mut ops) = setup(16, 12);
    let mut values = ops.a.values().to_vec();
    values[7] = f32::NAN;
    ops.a = CsrMatrix::from_raw_unchecked(
        ops.a.nrows(),
        ops.a.ncols(),
        ops.a.rowptr().to_vec(),
        ops.a.colind().to_vec(),
        values,
    );
    let report = validate_plan(&ops);
    assert!(report.has(Invariant::ValueFinite), "{report}");
    // The corruption surfaces in every structure derived from A (the
    // transpose pair and the buffered layout disagree with it now), but
    // never as a false structural violation of At itself.
    assert!(!report.has(Invariant::RowPtrShape), "{report}");
    assert!(!report.has(Invariant::PermutationBijection), "{report}");
}

#[test]
fn stale_transpose_is_pinpointed() {
    let (_, _, mut ops) = setup(16, 12);
    // Rebuild At from a truncated A: the pair no longer matches.
    let mut values = ops.at.values().to_vec();
    values[0] += 0.25;
    ops.at = CsrMatrix::from_raw_unchecked(
        ops.at.nrows(),
        ops.at.ncols(),
        ops.at.rowptr().to_vec(),
        ops.at.colind().to_vec(),
        values,
    );
    let report = validate_plan(&ops);
    assert!(report.has(Invariant::TransposeEntries), "{report}");
    // At itself is still a well-formed CSR matrix.
    assert!(!report.has(Invariant::RowPtrMonotone), "{report}");
    assert!(!report.has(Invariant::ColumnBounds), "{report}");
    // The buffered layout of At was built from the old values and now
    // disagrees entry-wise.
    assert!(report.has(Invariant::BufferedEntries), "{report}");
}

#[test]
fn corrupted_rank_plan_schedule_is_pinpointed() {
    let (_, _, ops) = setup(16, 12);
    let mut plans = memxct::dist::build_plans(&ops, 3, false);
    // Rank 1 silently drops the last row it owes rank 0.
    let dropped = plans[1].rows_from[0].pop();
    assert!(
        dropped.is_some(),
        "pair 1<-0 must interact in this geometry"
    );
    let report = dist_checker(&ops, &plans).run();
    assert!(report.has(Invariant::ScheduleSymmetry), "{report}");
    // The domain partitions themselves are untouched.
    assert!(!report.has(Invariant::PartitionCoverage), "{report}");
}

#[test]
fn overlapping_rank_partitions_are_pinpointed() {
    let (_, _, ops) = setup(16, 12);
    let mut plans = memxct::dist::build_plans(&ops, 3, false);
    plans[1].tomo_range.start -= 1; // steal one cell from rank 0
    let report = dist_checker(&ops, &plans).run();
    assert!(report.has(Invariant::PartitionCoverage), "{report}");
}

#[test]
fn clean_plans_validate_across_configurations() {
    for (n, m) in [(16u32, 12u32), (24, 18)] {
        let grid = Grid::new(n);
        let scan = ScanGeometry::new(m, n);
        for ordering in [DomainOrdering::RowMajor, DomainOrdering::HilbertSquare] {
            let config = Config {
                ordering,
                build_ell: true,
                ..Config::default()
            };
            let ops = preprocess(grid, scan, &config);
            let report = validate_plan(&ops);
            assert!(report.is_ok(), "{n}x{m} {ordering:?}: {report}");
        }
    }
}

//! Batched (SpMM) execution tests: every column of a batched solve must
//! be bit-identical to its own single-slice solve — engine-level and
//! through the `Reconstructor` API, serial and pooled, CG and SIRT, with
//! per-slice early termination and mid-batch checkpoint/resume — and the
//! batch-width misuses must surface as typed errors.

// Golden-pin suite: the deprecated entry points stay covered (as shims
// over `Reconstructor::run`) until they are removed.
#![allow(deprecated)]

use std::sync::Arc;

use memxct::prelude::*;
use memxct::Invariant;
use xct_geometry::{disk, simulate_sinogram, Grid, NoiseModel, ScanGeometry, Sinogram};

fn geometry(n: u32, m: u32) -> (Grid, ScanGeometry) {
    (Grid::new(n), ScanGeometry::new(m, n))
}

/// One sinogram per slice, each from a different phantom so the slices
/// converge at different rates (exercising per-slice retirement).
fn sinos(grid: Grid, scan: ScanGeometry, n: u32, k: usize) -> Vec<Sinogram> {
    (0..k)
        .map(|j| {
            let truth = disk(0.3 + 0.1 * j as f64, 1.0 + 0.5 * j as f32).rasterize(n);
            simulate_sinogram(&truth, &grid, &scan, NoiseModel::None, j as u64)
        })
        .collect()
}

fn assert_slice_matches(out: &BatchOutput, j: usize, single: &ReconOutput, ctx: &str) {
    assert_eq!(
        out.slice_records[j].len(),
        single.records.len(),
        "{ctx}: slice {j} iteration count"
    );
    for (a, b) in out.slice_records[j].iter().zip(&single.records) {
        assert_eq!(a.iter, b.iter, "{ctx}: slice {j}");
        assert_eq!(
            a.residual_norm.to_bits(),
            b.residual_norm.to_bits(),
            "{ctx}: slice {j} residual at iter {}",
            a.iter
        );
        assert_eq!(
            a.solution_norm.to_bits(),
            b.solution_norm.to_bits(),
            "{ctx}: slice {j} solution at iter {}",
            a.iter
        );
    }
    let got: Vec<u32> = out.images[j].iter().map(|v| v.to_bits()).collect();
    let want: Vec<u32> = single.image.iter().map(|v| v.to_bits()).collect();
    assert_eq!(got, want, "{ctx}: slice {j} image bits");
}

#[test]
fn engine_batched_columns_equal_looped_single_slice() {
    let (grid, scan) = geometry(24, 36);
    let ops = preprocess(grid, scan, &Config::default());
    let slices = sinos(grid, scan, 24, 3);
    let mut y = Vec::new();
    for s in &slices {
        y.extend_from_slice(&ops.order_sinogram(s));
    }
    let op = ops.operator(Kernel::Serial);
    for stop in [
        StopRule::Fixed(8),
        StopRule::EarlyTermination {
            max_iters: 30,
            min_decrease: 1e-3,
        },
    ] {
        // CG.
        let (images, records) = run_engine_batched(
            op.as_ref(),
            &y,
            &mut CgRule::new(),
            Constraint::None,
            stop,
            3,
        );
        for (j, s) in slices.iter().enumerate() {
            let yj = ops.order_sinogram(s);
            let (x, recs) =
                run_engine(op.as_ref(), &yj, &mut CgRule::new(), Constraint::None, stop);
            assert_eq!(records[j].len(), recs.len(), "cg slice {j} ({stop:?})");
            for (a, b) in records[j].iter().zip(&recs) {
                assert_eq!(a.residual_norm.to_bits(), b.residual_norm.to_bits());
                assert_eq!(a.solution_norm.to_bits(), b.solution_norm.to_bits());
            }
            let got: Vec<u32> = images[j].iter().map(|v| v.to_bits()).collect();
            let want: Vec<u32> = x.iter().map(|v| v.to_bits()).collect();
            assert_eq!(got, want, "cg slice {j} image ({stop:?})");
        }
        // SIRT.
        let (images, records) = run_engine_batched(
            op.as_ref(),
            &y,
            &mut SirtRule::new(1.0),
            Constraint::None,
            stop,
            3,
        );
        for (j, s) in slices.iter().enumerate() {
            let yj = ops.order_sinogram(s);
            let (x, recs) = run_engine(
                op.as_ref(),
                &yj,
                &mut SirtRule::new(1.0),
                Constraint::None,
                stop,
            );
            assert_eq!(records[j].len(), recs.len(), "sirt slice {j} ({stop:?})");
            for (a, b) in records[j].iter().zip(&recs) {
                assert_eq!(a.residual_norm.to_bits(), b.residual_norm.to_bits());
                assert_eq!(a.solution_norm.to_bits(), b.solution_norm.to_bits());
            }
            let got: Vec<u32> = images[j].iter().map(|v| v.to_bits()).collect();
            let want: Vec<u32> = x.iter().map(|v| v.to_bits()).collect();
            assert_eq!(got, want, "sirt slice {j} image ({stop:?})");
        }
    }
}

#[test]
fn reconstructor_batched_columns_equal_single_slice_runs() {
    let (grid, scan) = geometry(24, 36);
    let slices = sinos(grid, scan, 24, 3);
    let stop = StopRule::EarlyTermination {
        max_iters: 30,
        min_decrease: 2e-2,
    };
    for threads in [None, Some(1), Some(2), Some(4)] {
        let mut batched_b = ReconstructorBuilder::new(grid, scan).batch(3);
        let mut single_b = ReconstructorBuilder::new(grid, scan);
        if let Some(t) = threads {
            batched_b = batched_b.use_pool(true).pool_threads(t);
            single_b = single_b.use_pool(true).pool_threads(t);
        }
        let batched = batched_b.build().unwrap();
        let single = single_b.build().unwrap();
        let ctx = format!("pool={threads:?}");

        let out = batched.try_reconstruct_cg_batch(&slices, stop).unwrap();
        let mut lens = Vec::new();
        for (j, s) in slices.iter().enumerate() {
            let want = single.try_reconstruct_cg(s, stop).unwrap();
            lens.push(want.records.len());
            assert_slice_matches(&out, j, &want, &format!("cg {ctx}"));
        }
        // The phantoms differ enough that at least two retirement points
        // differ — per-slice stopping is actually independent.
        lens.dedup();
        assert!(lens.len() > 1, "slices all stopped together: {lens:?}");

        let out = batched.try_reconstruct_sirt_batch(&slices, 10).unwrap();
        for (j, s) in slices.iter().enumerate() {
            let want = single.try_reconstruct_sirt(s, 10).unwrap();
            assert_slice_matches(&out, j, &want, &format!("sirt {ctx}"));
        }
    }
}

#[test]
fn batch_of_one_is_bit_identical_to_single_path() {
    let (grid, scan) = geometry(24, 36);
    let slices = sinos(grid, scan, 24, 1);
    let rec = ReconstructorBuilder::new(grid, scan).build().unwrap();
    let single = rec
        .try_reconstruct_cg(&slices[0], StopRule::Fixed(8))
        .unwrap();
    let batched = rec
        .try_reconstruct_cg_batch(&slices, StopRule::Fixed(8))
        .unwrap();
    assert_slice_matches(&batched, 0, &single, "k=1");
}

#[test]
fn batch_width_misuse_is_a_typed_error() {
    let (grid, scan) = geometry(16, 12);
    assert!(matches!(
        ReconstructorBuilder::new(grid, scan).batch(0).build().err(),
        Some(BuildError::ZeroBatch)
    ));
    let slices = sinos(grid, scan, 16, 3);
    let rec = ReconstructorBuilder::new(grid, scan)
        .batch(3)
        .build()
        .unwrap();
    assert_eq!(rec.batch(), 3);
    // Single-slice entry points on a batched reconstructor.
    assert!(matches!(
        rec.try_reconstruct_cg(&slices[0], StopRule::Fixed(2)).err(),
        Some(BuildError::BatchWidth {
            expected: 3,
            got: 1
        })
    ));
    assert!(matches!(
        rec.try_reconstruct_sirt(&slices[0], 2).err(),
        Some(BuildError::BatchWidth {
            expected: 3,
            got: 1
        })
    ));
    // The distributed path is single-slice only, and says so.
    assert!(matches!(
        rec.try_reconstruct_distributed(&slices[0], &DistConfig::default())
            .err(),
        Some(BuildError::DistributedBatchUnsupported { batch: 3 })
    ));
    // Wrong slice count on the batched entry points.
    assert!(matches!(
        rec.try_reconstruct_cg_batch(&slices[..2], StopRule::Fixed(2))
            .err(),
        Some(BuildError::BatchWidth {
            expected: 3,
            got: 2
        })
    ));
    assert!(matches!(
        rec.try_reconstruct_sirt_batch(&slices[..1], 2).err(),
        Some(BuildError::BatchWidth {
            expected: 3,
            got: 1
        })
    ));
}

#[test]
fn batched_checkpoint_resume_is_bit_identical() {
    let (grid, scan) = geometry(24, 36);
    let slices = sinos(grid, scan, 24, 3);
    // Early termination so a slice retires before the interruption point:
    // the snapshot must carry per-slice activity and record counts.
    let stop = StopRule::EarlyTermination {
        max_iters: 12,
        min_decrease: 5e-3,
    };
    let golden = ReconstructorBuilder::new(grid, scan)
        .batch(3)
        .build()
        .unwrap()
        .try_reconstruct_cg_batch(&slices, stop)
        .unwrap();

    // Interrupt after 4 iterations, snapshotting every boundary…
    let sink = Arc::new(MemoryCheckpointSink::new());
    ReconstructorBuilder::new(grid, scan)
        .batch(3)
        .checkpoint_sink(sink.clone() as Arc<dyn CheckpointSink>)
        .checkpoint_every(1)
        .build()
        .unwrap()
        .try_reconstruct_cg_batch(
            &slices,
            StopRule::EarlyTermination {
                max_iters: 4,
                min_decrease: 5e-3,
            },
        )
        .unwrap();
    // …then resume to the full budget.
    let resumed = ReconstructorBuilder::new(grid, scan)
        .batch(3)
        .checkpoint_sink(sink as Arc<dyn CheckpointSink>)
        .checkpoint_every(1)
        .resume(true)
        .build()
        .unwrap()
        .try_reconstruct_cg_batch(&slices, stop)
        .unwrap();
    for j in 0..3 {
        assert_eq!(
            golden.slice_records[j].len(),
            resumed.slice_records[j].len(),
            "slice {j} iteration count"
        );
        for (a, b) in golden.slice_records[j]
            .iter()
            .zip(&resumed.slice_records[j])
        {
            assert_eq!(a.residual_norm.to_bits(), b.residual_norm.to_bits());
            assert_eq!(a.solution_norm.to_bits(), b.solution_norm.to_bits());
        }
        let ga: Vec<u32> = golden.images[j].iter().map(|v| v.to_bits()).collect();
        let gb: Vec<u32> = resumed.images[j].iter().map(|v| v.to_bits()).collect();
        assert_eq!(ga, gb, "slice {j} image bits");
    }
}

#[test]
fn resuming_across_batch_widths_is_a_typed_error() {
    let (grid, scan) = geometry(16, 12);
    let slices = sinos(grid, scan, 16, 2);
    let sink = Arc::new(MemoryCheckpointSink::new());
    ReconstructorBuilder::new(grid, scan)
        .batch(2)
        .checkpoint_sink(sink.clone() as Arc<dyn CheckpointSink>)
        .checkpoint_every(1)
        .build()
        .unwrap()
        .try_reconstruct_cg_batch(&slices, StopRule::Fixed(3))
        .unwrap();
    // A batch-1 reconstructor must refuse the batch-2 snapshot with the
    // batch invariant, not a shape cascade or a silent partial resume.
    let rec = ReconstructorBuilder::new(grid, scan)
        .checkpoint_sink(sink as Arc<dyn CheckpointSink>)
        .checkpoint_every(1)
        .resume(true)
        .build()
        .unwrap();
    match rec.try_reconstruct_cg(&slices[0], StopRule::Fixed(6)) {
        Err(BuildError::PlanCheck(report)) => {
            assert!(report.has(Invariant::CheckpointBatch), "{report}");
            assert!(
                !report.has(Invariant::CheckpointShape),
                "root cause only: {report}"
            );
        }
        other => panic!("expected PlanCheck, got {:?}", other.err()),
    }
}

#[test]
fn batched_volume_matches_slice_by_slice() {
    let (grid, scan) = geometry(24, 36);
    // 5 slices through a batch-2 reconstructor: two full groups plus a
    // padded tail whose padding output is discarded.
    let slices = sinos(grid, scan, 24, 5);
    let single = ReconstructorBuilder::new(grid, scan).build().unwrap();
    let batched = ReconstructorBuilder::new(grid, scan)
        .batch(2)
        .build()
        .unwrap();
    let vol = batched.reconstruct_volume(&slices, StopRule::Fixed(6));
    assert_eq!(vol.images.len(), 5);
    assert_eq!(vol.per_slice_seconds.len(), 5);
    for (j, s) in slices.iter().enumerate() {
        let want = single.reconstruct_cg(s, StopRule::Fixed(6));
        let got: Vec<u32> = vol.images[j].iter().map(|v| v.to_bits()).collect();
        let bits: Vec<u32> = want.image.iter().map(|v| v.to_bits()).collect();
        assert_eq!(got, bits, "volume slice {j}");
    }
}

#[test]
fn pooled_batched_solve_records_spmm_counters() {
    let (grid, scan) = geometry(24, 36);
    let slices = sinos(grid, scan, 24, 4);
    let rec = ReconstructorBuilder::new(grid, scan)
        .batch(4)
        .use_pool(true)
        .pool_threads(2)
        .build()
        .unwrap();
    rec.try_reconstruct_cg_batch(&slices, StopRule::Fixed(5))
        .unwrap();
    let snap = rec.metrics();
    let calls = snap.counters["spmm/pooled/calls"];
    assert!(calls > 0, "batched solve must go through the SpMM path");
    // The matrix is streamed once per call, for 4 slices' worth of work.
    assert_eq!(snap.counters["spmm/pooled/slices"], calls * 4);
    assert!(snap.counters["spmm/pooled/nnz"] > 0);
    assert!(snap.counters["spmm/pooled/bytes"] > 0);
    // The single-slice counters stay untouched by a batched solve (no
    // spmv/* activity at all).
    assert_eq!(snap.counters.get("spmv/pooled/calls").copied(), None);
}

//! Proof of the allocation-free hot path: after one warmup solve, a
//! steady-state CG solve on the pooled operator performs **zero heap
//! allocations** — counted by a wrapping global allocator across *all*
//! threads. Since `std::thread::spawn` must allocate (the closure box,
//! the JoinHandle packet, the thread stack bookkeeping), zero allocations
//! also proves **zero thread spawns**: only the workers parked at pool
//! construction ever run.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

use memxct::{
    preprocess, run_engine_batched_in, CgRule, Config, Constraint, Kernel, PooledOperator,
    PooledPlans, ProjectionOperator, SolverWorkspace, StopRule,
};
use xct_geometry::{disk, simulate_sinogram, Grid, NoiseModel, ScanGeometry};
use xct_obs::Metrics;
use xct_runtime::WorkerPool;

/// Counts every allocation on every thread; frees are not counted (a
/// steady-state loop that frees without allocating would still shrink,
/// never grow).
struct CountingAllocator;

static ALLOCATIONS: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for CountingAllocator {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.alloc(layout) }
    }
    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }
    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.realloc(ptr, layout, new_size) }
    }
    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.alloc_zeroed(layout) }
    }
}

#[global_allocator]
static GLOBAL: CountingAllocator = CountingAllocator;

#[test]
fn steady_state_cg_solve_allocates_nothing_and_spawns_nothing() {
    let n = 24u32;
    let grid = Grid::new(n);
    let scan = ScanGeometry::new(36, n);
    let img = disk(0.6, 1.0).rasterize(n);
    let sino = simulate_sinogram(&img, &grid, &scan, NoiseModel::None, 0);
    let ops = preprocess(grid, scan, &Config::default());
    let y = ops.order_sinogram(&sino);

    let threads = 2;
    let pool = WorkerPool::new(threads);
    let plans = PooledPlans::new(&ops, Kernel::Buffered, threads);
    let op = PooledOperator::new(&ops, Kernel::Buffered, &plans, &pool);
    let metrics = Metrics::noop();
    let stop = StopRule::Fixed(6);
    let mut ws = SolverWorkspace::for_operator(&op);

    // Warmup: sizes the workspace buffers, grows each worker's persistent
    // scratch to the buffered kernel's footprint, and reserves the record
    // list's capacity.
    memxct::run_engine_in(
        &op,
        &y,
        &mut CgRule::new(),
        Constraint::None,
        stop,
        &metrics,
        &mut ws,
    );
    let warm_records = ws.records().len();
    assert!(warm_records > 0, "warmup must actually iterate");

    // Steady state: a whole fresh solve — same workspace, fresh rule —
    // must not touch the allocator from any thread.
    let before = ALLOCATIONS.load(Ordering::SeqCst);
    memxct::run_engine_in(
        &op,
        &y,
        &mut CgRule::new(),
        Constraint::None,
        stop,
        &metrics,
        &mut ws,
    );
    let delta = ALLOCATIONS.load(Ordering::SeqCst) - before;
    assert_eq!(ws.records().len(), warm_records, "same trajectory");
    assert_eq!(
        delta, 0,
        "steady-state CG solve performed {delta} heap allocation(s)"
    );
}

#[test]
fn steady_state_batched_cg_solve_allocates_nothing() {
    let n = 24u32;
    let batch = 4usize;
    let grid = Grid::new(n);
    let scan = ScanGeometry::new(36, n);
    let img = disk(0.6, 1.0).rasterize(n);
    let sino = simulate_sinogram(&img, &grid, &scan, NoiseModel::None, 0);
    let ops = preprocess(grid, scan, &Config::default());
    let y1 = ops.order_sinogram(&sino);
    let mut y = Vec::with_capacity(batch * y1.len());
    for j in 0..batch {
        // Distinct slices: scaled copies of the measured sinogram.
        y.extend(y1.iter().map(|&v| v * (1.0 + 0.05 * j as f32)));
    }

    let threads = 2;
    let pool = WorkerPool::new(threads);
    let plans = PooledPlans::new_batched(&ops, Kernel::Buffered, threads, batch);
    let op = PooledOperator::new(&ops, Kernel::Buffered, &plans, &pool);
    let metrics = Metrics::noop();
    let stop = StopRule::Fixed(6);
    let mut ws = SolverWorkspace::new_batched(op.nrows(), op.ncols(), batch);

    // Warmup sizes the batched slabs, the per-slice record lists, and the
    // workers' SpMM scratch.
    run_engine_batched_in(
        &op,
        &y,
        &mut CgRule::new(),
        Constraint::None,
        stop,
        &metrics,
        &mut ws,
    );
    let warm: Vec<usize> = ws.slice_records().iter().map(Vec::len).collect();
    assert!(warm.iter().all(|&l| l > 0), "warmup must iterate");

    // Steady state: a fresh batched solve in the warmed workspace must
    // not touch the allocator from any thread.
    let before = ALLOCATIONS.load(Ordering::SeqCst);
    run_engine_batched_in(
        &op,
        &y,
        &mut CgRule::new(),
        Constraint::None,
        stop,
        &metrics,
        &mut ws,
    );
    let delta = ALLOCATIONS.load(Ordering::SeqCst) - before;
    let again: Vec<usize> = ws.slice_records().iter().map(Vec::len).collect();
    assert_eq!(again, warm, "same trajectory");
    assert_eq!(
        delta, 0,
        "steady-state batched CG solve performed {delta} heap allocation(s)"
    );
}

//! Fault-tolerance integration tests: the empty fault plan and the
//! checkpointing machinery are bit-transparent; resume-at-k reproduces
//! the uninterrupted golden run exactly (CG and SIRT, serial and
//! distributed); corrupted snapshots are rejected with typed errors; and
//! a mid-solve rank crash ends in a completed restarted solve or a typed
//! `CommError` — never a hang.

// Golden-pin suite: the deprecated entry points stay covered (as shims
// over `Reconstructor::run`) until they are removed.
#![allow(deprecated)]

use std::sync::Arc;
use std::time::Instant;

use memxct::prelude::*;
use xct_geometry::{disk, simulate_sinogram, Grid, NoiseModel, ScanGeometry, Sinogram};

fn geometry(n: u32, m: u32) -> (Grid, ScanGeometry, Sinogram) {
    let grid = Grid::new(n);
    let scan = ScanGeometry::new(m, n);
    let truth = disk(0.6, 1.0).rasterize(n);
    let sino = simulate_sinogram(&truth, &grid, &scan, NoiseModel::None, 0);
    (grid, scan, sino)
}

fn assert_bits_equal(a: &ReconOutput, b: &ReconOutput) {
    assert_eq!(a.records.len(), b.records.len(), "iteration counts differ");
    for (ra, rb) in a.records.iter().zip(&b.records) {
        assert_eq!(ra.residual_norm.to_bits(), rb.residual_norm.to_bits());
        assert_eq!(ra.solution_norm.to_bits(), rb.solution_norm.to_bits());
    }
    let ia: Vec<u32> = a.image.iter().map(|v| v.to_bits()).collect();
    let ib: Vec<u32> = b.image.iter().map(|v| v.to_bits()).collect();
    assert_eq!(ia, ib, "images differ in bits");
}

fn assert_dist_bits_equal(a: &DistOutput, b: &DistOutput) {
    assert_eq!(a.records.len(), b.records.len(), "iteration counts differ");
    for (ra, rb) in a.records.iter().zip(&b.records) {
        assert_eq!(ra.residual_norm.to_bits(), rb.residual_norm.to_bits());
        assert_eq!(ra.solution_norm.to_bits(), rb.solution_norm.to_bits());
    }
    let ia: Vec<u32> = a.image.iter().map(|v| v.to_bits()).collect();
    let ib: Vec<u32> = b.image.iter().map(|v| v.to_bits()).collect();
    assert_eq!(ia, ib, "images differ in bits");
}

#[test]
fn empty_fault_plan_is_bit_identical_distributed() {
    let (grid, scan, sino) = geometry(24, 36);
    let ops = preprocess(grid, scan, &Config::default());
    let y = ops.order_sinogram(&sino);
    let config = DistConfig {
        ranks: 3,
        use_buffered: true,
        stop: StopRule::Fixed(8),
        solver: DistSolver::Cg,
    };
    // Historical fail-fast path (unbounded waits, no fault machinery in
    // the policy) vs the supervised default (deadlines, retry budget,
    // empty fault plan): both must produce the exact same bits.
    let baseline = try_reconstruct_distributed(&ops, &y, &config).unwrap();
    let supervised = try_reconstruct_distributed_ft(
        &ops,
        &y,
        &config,
        &FaultTolerance::default(),
        &Metrics::noop(),
    )
    .unwrap();
    assert_dist_bits_equal(&baseline, &supervised);
}

#[test]
fn checkpointing_is_bit_transparent_serial() {
    let (grid, scan, sino) = geometry(24, 36);
    let plain = ReconstructorBuilder::new(grid, scan).build().unwrap();
    let sink = Arc::new(MemoryCheckpointSink::new());
    let checkpointed = ReconstructorBuilder::new(grid, scan)
        .checkpoint_sink(sink.clone() as Arc<dyn CheckpointSink>)
        .checkpoint_every(2)
        .build()
        .unwrap();
    let a = plain.try_reconstruct_cg(&sino, StopRule::Fixed(8)).unwrap();
    let b = checkpointed
        .try_reconstruct_cg(&sino, StopRule::Fixed(8))
        .unwrap();
    assert_bits_equal(&a, &b);
    // …and snapshots were actually taken.
    assert!(sink.load(0).unwrap().is_some(), "no snapshot was saved");
}

#[test]
fn serial_cg_resume_is_bit_identical() {
    let (grid, scan, sino) = geometry(24, 36);
    let golden = ReconstructorBuilder::new(grid, scan)
        .build()
        .unwrap()
        .try_reconstruct_cg(&sino, StopRule::Fixed(10))
        .unwrap();

    // Interrupt after 4 iterations, snapshotting every boundary…
    let sink = Arc::new(MemoryCheckpointSink::new());
    ReconstructorBuilder::new(grid, scan)
        .checkpoint_sink(sink.clone() as Arc<dyn CheckpointSink>)
        .checkpoint_every(1)
        .build()
        .unwrap()
        .try_reconstruct_cg(&sino, StopRule::Fixed(4))
        .unwrap();
    // …then resume to the full budget: the restored loop state (x, resid,
    // dir, carried γ, prev_res) must reproduce the golden bits exactly.
    let resumed = ReconstructorBuilder::new(grid, scan)
        .checkpoint_sink(sink as Arc<dyn CheckpointSink>)
        .checkpoint_every(1)
        .resume(true)
        .build()
        .unwrap()
        .try_reconstruct_cg(&sino, StopRule::Fixed(10))
        .unwrap();
    assert_bits_equal(&golden, &resumed);
}

#[test]
fn serial_sirt_resume_is_bit_identical() {
    let (grid, scan, sino) = geometry(24, 36);
    let golden = ReconstructorBuilder::new(grid, scan)
        .build()
        .unwrap()
        .try_reconstruct_sirt(&sino, 10)
        .unwrap();

    let sink = Arc::new(MemoryCheckpointSink::new());
    ReconstructorBuilder::new(grid, scan)
        .checkpoint_sink(sink.clone() as Arc<dyn CheckpointSink>)
        .checkpoint_every(1)
        .build()
        .unwrap()
        .try_reconstruct_sirt(&sino, 4)
        .unwrap();
    // SIRT's weights are not stored in the snapshot — they are recomputed
    // from the operator on resume, bit-identically.
    let resumed = ReconstructorBuilder::new(grid, scan)
        .checkpoint_sink(sink as Arc<dyn CheckpointSink>)
        .checkpoint_every(1)
        .resume(true)
        .build()
        .unwrap()
        .try_reconstruct_sirt(&sino, 10)
        .unwrap();
    assert_bits_equal(&golden, &resumed);
}

#[test]
fn distributed_resume_is_bit_identical() {
    let (grid, scan, sino) = geometry(24, 36);
    let ops = preprocess(grid, scan, &Config::default());
    let y = ops.order_sinogram(&sino);
    let config = |iters| DistConfig {
        ranks: 3,
        use_buffered: true,
        stop: StopRule::Fixed(iters),
        solver: DistSolver::Cg,
    };
    let golden = try_reconstruct_distributed(&ops, &y, &config(8)).unwrap();

    let sink: Arc<dyn CheckpointSink> = Arc::new(MemoryCheckpointSink::new());
    let ft_save = FaultTolerance {
        sink: Some(sink.clone()),
        checkpoint_every: 1,
        ..FaultTolerance::default()
    };
    try_reconstruct_distributed_ft(&ops, &y, &config(3), &ft_save, &Metrics::noop()).unwrap();
    let ft_resume = FaultTolerance {
        sink: Some(sink),
        checkpoint_every: 1,
        resume: true,
        ..FaultTolerance::default()
    };
    let resumed =
        try_reconstruct_distributed_ft(&ops, &y, &config(8), &ft_resume, &Metrics::noop()).unwrap();
    assert_dist_bits_equal(&golden, &resumed);
}

#[test]
fn snapshots_are_rank_count_independent() {
    let (grid, scan, sino) = geometry(24, 36);
    let ops = preprocess(grid, scan, &Config::default());
    let y = ops.order_sinogram(&sino);
    // Snapshot under 3 ranks…
    let sink: Arc<dyn CheckpointSink> = Arc::new(MemoryCheckpointSink::new());
    let ft_save = FaultTolerance {
        sink: Some(sink.clone()),
        checkpoint_every: 1,
        ..FaultTolerance::default()
    };
    let config3 = DistConfig {
        ranks: 3,
        use_buffered: true,
        stop: StopRule::Fixed(3),
        solver: DistSolver::Cg,
    };
    try_reconstruct_distributed_ft(&ops, &y, &config3, &ft_save, &Metrics::noop()).unwrap();
    // …resume under 2: the snapshot stores global ordered vectors, so a
    // different partitioning restores cleanly and runs to the budget.
    let ft_resume = FaultTolerance {
        sink: Some(sink.clone()),
        resume: true,
        ..FaultTolerance::default()
    };
    let config2 = DistConfig {
        ranks: 2,
        stop: StopRule::Fixed(8),
        ..config3
    };
    let out =
        try_reconstruct_distributed_ft(&ops, &y, &config2, &ft_resume, &Metrics::noop()).unwrap();
    assert_eq!(out.records.len(), 8, "resumed run must reach the budget");
    assert!(out.image.iter().all(|v| v.is_finite()));
}

#[test]
fn corrupted_and_truncated_snapshots_are_rejected_typed() {
    let (grid, scan, sino) = geometry(24, 36);

    // Garbage bytes: decoding fails with a typed CheckpointError.
    let garbage = Arc::new(MemoryCheckpointSink::new());
    garbage.save(0, b"not a snapshot at all").unwrap();
    let rec = ReconstructorBuilder::new(grid, scan)
        .checkpoint_sink(garbage as Arc<dyn CheckpointSink>)
        .resume(true)
        .build()
        .unwrap();
    assert!(matches!(
        rec.try_reconstruct_cg(&sino, StopRule::Fixed(4)).err(),
        Some(BuildError::Checkpoint(_))
    ));

    // Truncation: a valid snapshot cut short fails the checksum/length
    // checks, again typed — never deserialized garbage.
    let sink = Arc::new(MemoryCheckpointSink::new());
    ReconstructorBuilder::new(grid, scan)
        .checkpoint_sink(sink.clone() as Arc<dyn CheckpointSink>)
        .checkpoint_every(1)
        .build()
        .unwrap()
        .try_reconstruct_cg(&sino, StopRule::Fixed(3))
        .unwrap();
    let bytes = sink.load(0).unwrap().unwrap();
    sink.save(0, &bytes[..bytes.len() / 2]).unwrap();
    let rec = ReconstructorBuilder::new(grid, scan)
        .checkpoint_sink(sink as Arc<dyn CheckpointSink>)
        .resume(true)
        .build()
        .unwrap();
    assert!(matches!(
        rec.try_reconstruct_cg(&sino, StopRule::Fixed(4)).err(),
        Some(BuildError::Checkpoint(_))
    ));

    // A snapshot from a different geometry: decodes fine but fails the
    // CheckpointHash invariant, surfaced as a PlanCheck report.
    let (grid2, scan2, sino2) = geometry(16, 24);
    let foreign = Arc::new(MemoryCheckpointSink::new());
    ReconstructorBuilder::new(grid2, scan2)
        .checkpoint_sink(foreign.clone() as Arc<dyn CheckpointSink>)
        .checkpoint_every(1)
        .build()
        .unwrap()
        .try_reconstruct_cg(&sino2, StopRule::Fixed(2))
        .unwrap();
    let rec = ReconstructorBuilder::new(grid, scan)
        .checkpoint_sink(foreign as Arc<dyn CheckpointSink>)
        .resume(true)
        .build()
        .unwrap();
    assert!(matches!(
        rec.try_reconstruct_cg(&sino, StopRule::Fixed(4)).err(),
        Some(BuildError::PlanCheck(_))
    ));
}

#[test]
fn rank_crash_restarts_from_checkpoint_and_completes() {
    let (grid, scan, sino) = geometry(24, 36);
    let ops = preprocess(grid, scan, &Config::default());
    let y = ops.order_sinogram(&sino);
    let config = DistConfig {
        ranks: 3,
        use_buffered: true,
        stop: StopRule::Fixed(8),
        solver: DistSolver::Cg,
    };
    let ft = FaultTolerance {
        faults: Arc::new(FaultPlan::new().with(1, 5, FaultKind::Crash)),
        sink: Some(Arc::new(MemoryCheckpointSink::new())),
        checkpoint_every: 1,
        resume: true,
        max_restarts: 1,
        ..FaultTolerance::default()
    };
    let t = Instant::now();
    let metrics = Metrics::collecting();
    let out = try_reconstruct_distributed_ft(&ops, &y, &config, &ft, &metrics).unwrap();
    // The acceptance bound: a mid-solve crash ends in a completed,
    // restarted solve well within the collective deadline — not a hang.
    assert!(
        t.elapsed().as_secs() < 60,
        "restarted solve took {:?}",
        t.elapsed()
    );
    assert_eq!(out.records.len(), 8, "restarted solve must reach budget");
    assert!(out.image.iter().all(|v| v.is_finite()));
    let snap = metrics.snapshot();
    assert!(snap.counters["fault/rank_loss"] >= 1);
    assert!(snap.counters["fault/restarts"] >= 1);
}

#[test]
fn rank_crash_without_restart_budget_is_a_typed_error() {
    let (grid, scan, sino) = geometry(24, 36);
    let ops = preprocess(grid, scan, &Config::default());
    let y = ops.order_sinogram(&sino);
    let config = DistConfig {
        ranks: 2,
        use_buffered: true,
        stop: StopRule::Fixed(8),
        solver: DistSolver::Cg,
    };
    let ft = FaultTolerance {
        faults: Arc::new(FaultPlan::new().with(1, 4, FaultKind::Crash)),
        max_restarts: 0,
        ..FaultTolerance::default()
    };
    let t = Instant::now();
    let err = try_reconstruct_distributed_ft(&ops, &y, &config, &ft, &Metrics::noop())
        .err()
        .expect("crash with no restart budget must fail");
    assert!(
        t.elapsed().as_secs() < 60,
        "failure took {:?} — deadline did not bound the wait",
        t.elapsed()
    );
    match err {
        BuildError::Comm(e) => {
            assert!(
                matches!(e.kind, CommErrorKind::Crash | CommErrorKind::Aborted { .. }),
                "unexpected kind: {e}"
            );
        }
        other => panic!("expected BuildError::Comm, got {other}"),
    }
}

#[test]
fn recoverable_drops_are_retried_transparently() {
    let (grid, scan, sino) = geometry(24, 36);
    let ops = preprocess(grid, scan, &Config::default());
    let y = ops.order_sinogram(&sino);
    let config = DistConfig {
        ranks: 2,
        use_buffered: true,
        stop: StopRule::Fixed(6),
        solver: DistSolver::Cg,
    };
    let baseline = try_reconstruct_distributed(&ops, &y, &config).unwrap();
    let ft = FaultTolerance {
        faults: Arc::new(FaultPlan::new().with(1, 3, FaultKind::Drop { attempts: 1 })),
        ..FaultTolerance::default()
    };
    let metrics = Metrics::collecting();
    let out = try_reconstruct_distributed_ft(&ops, &y, &config, &ft, &metrics).unwrap();
    // A dropped delivery inside the retry budget is invisible to the
    // numerics: the run completes with the exact baseline bits.
    assert_dist_bits_equal(&baseline, &out);
    let snap = metrics.snapshot();
    assert!(snap.counters["fault/injected"] >= 1);
    assert!(snap.counters["fault/retries"] >= 1);
}

//! Spatial regularization (the `R(x)` of the paper's Eq. 1).
//!
//! The paper's formulation `x̂ = argmin ‖y − Ax‖² + R(x)` leaves the
//! regularizer open ("iterative approaches can also involve additional
//! updates due to regularizer R(x)"). We implement the standard quadratic
//! roughness penalty `R(x) = λ‖D·x‖²` where `D` is the discrete gradient
//! over the 2D tomogram — assembled as another memoized sparse matrix in
//! Hilbert-ordered coordinates, so the regularized solve is still nothing
//! but SpMV.

use crate::operator::StackedOperator;
use crate::preprocess::Operators;
use crate::solvers::{run_engine, CgRule, Constraint, IterationRecord, StopRule};
use xct_hilbert::Ordering2D;
use xct_sparse::CsrMatrix;

#[cfg(test)]
use xct_sparse::spmv;

/// The discrete 2D gradient operator `D` over an ordered tomogram:
/// `2·N·(N−1)` rows (horizontal then vertical differences), `N²` columns
/// in the ordering's rank coordinates.
pub fn gradient_operator(ordering: &Ordering2D) -> CsrMatrix {
    let w = ordering.width();
    let h = ordering.height();
    let ncols = (w as usize) * (h as usize);
    let mut rows: Vec<Vec<(u32, f32)>> = Vec::with_capacity(2 * ncols);
    // Horizontal differences x[i+1,j] − x[i,j].
    for j in 0..h {
        for i in 0..w.saturating_sub(1) {
            rows.push(vec![
                (ordering.rank(i + 1, j), 1.0),
                (ordering.rank(i, j), -1.0),
            ]);
        }
    }
    // Vertical differences x[i,j+1] − x[i,j].
    for j in 0..h.saturating_sub(1) {
        for i in 0..w {
            rows.push(vec![
                (ordering.rank(i, j + 1), 1.0),
                (ordering.rank(i, j), -1.0),
            ]);
        }
    }
    CsrMatrix::from_rows(ncols, &rows)
}

/// CGLS with the quadratic roughness penalty: minimize
/// `‖y − A·x‖² + λ‖D·x‖²`, solved as plain CGLS on the stacked operator
/// `[A; √λ·D]`.
pub fn cgls_smooth(
    ops: &Operators,
    kernel: crate::preprocess::Kernel,
    y: &[f32],
    lambda: f32,
    stop: StopRule,
) -> (Vec<f32>, Vec<IterationRecord>) {
    // lint: allow(no-panic) documented parameter precondition
    assert!(lambda >= 0.0);
    let d = gradient_operator(&ops.tomo_ord);
    let dt = d.transpose_scan();
    let primary = ops.operator(kernel);
    let stacked = StackedOperator::new(primary.as_ref(), &d, &dt, lambda.sqrt());

    let mut y_aug = y.to_vec();
    y_aug.extend(std::iter::repeat_n(0f32, d.nrows()));
    run_engine(&stacked, &y_aug, &mut CgRule::new(), Constraint::None, stop)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::preprocess::{preprocess, Config, Kernel};
    use crate::solvers::cgls;
    use xct_geometry::{disk, simulate_sinogram, Grid, NoiseModel, ScanGeometry};

    #[test]
    fn gradient_operator_shape_and_action() {
        let ord = Ordering2D::two_level_hilbert(4, 4, 2);
        let d = gradient_operator(&ord);
        assert_eq!(d.nrows(), 2 * 4 * 3);
        assert_eq!(d.ncols(), 16);
        // Constant image has zero gradient.
        let ones = vec![1f32; 16];
        assert!(spmv(&d, &ones).iter().all(|&v| v == 0.0));
        // A horizontal ramp (in 2D coordinates) has unit horizontal
        // differences and zero vertical ones.
        let mut img = vec![0f32; 16];
        for j in 0..4 {
            for i in 0..4 {
                img[ord.rank(i, j) as usize] = i as f32;
            }
        }
        let g = spmv(&d, &img);
        let (h, v) = g.split_at(12);
        assert!(h.iter().all(|&x| (x - 1.0).abs() < 1e-6), "{h:?}");
        assert!(v.iter().all(|&x| x.abs() < 1e-6), "{v:?}");
    }

    #[test]
    fn gradient_respects_any_ordering() {
        for ord in [
            Ordering2D::row_major(5, 3),
            Ordering2D::morton(5, 3),
            Ordering2D::two_level_hilbert(5, 3, 2),
        ] {
            let d = gradient_operator(&ord);
            assert_eq!(d.nrows(), 4 * 3 + 5 * 2);
            let ones = vec![1f32; 15];
            assert!(spmv(&d, &ones).iter().all(|&v| v == 0.0));
        }
    }

    fn setup_noisy() -> (Operators, Vec<f32>, Vec<f32>) {
        let n = 32u32;
        let grid = Grid::new(n);
        let scan = ScanGeometry::new(24, n); // undersampled
        let img = disk(0.6, 1.0).rasterize(n);
        let sino = simulate_sinogram(
            &img,
            &grid,
            &scan,
            NoiseModel::Poisson {
                incident: 3e3,
                scale: 0.05,
            },
            3,
        );
        let ops = preprocess(grid, scan, &Config::default());
        let y = ops.order_sinogram(&sino);
        let x_true = ops.order_tomogram(&img);
        (ops, y, x_true)
    }

    fn rel_err(a: &[f32], b: &[f32]) -> f64 {
        let num: f64 = a
            .iter()
            .zip(b)
            .map(|(&x, &y)| ((x - y) as f64).powi(2))
            .sum::<f64>()
            .sqrt();
        let den: f64 = b.iter().map(|&y| (y as f64).powi(2)).sum::<f64>().sqrt();
        num / den
    }

    #[test]
    fn smoothing_beats_plain_cg_on_noisy_undersampled_data() {
        let (ops, y, x_true) = setup_noisy();
        let (x_plain, _) = cgls(
            &y,
            ops.a.ncols(),
            |p| ops.forward(Kernel::Serial, p),
            |r| ops.back(Kernel::Serial, r),
            StopRule::Fixed(40),
        );
        let (x_smooth, _) = cgls_smooth(&ops, Kernel::Serial, &y, 0.5, StopRule::Fixed(40));
        let e_plain = rel_err(&x_plain, &x_true);
        let e_smooth = rel_err(&x_smooth, &x_true);
        assert!(
            e_smooth < e_plain,
            "smooth {e_smooth:.4} should beat plain {e_plain:.4} at high noise"
        );
    }

    #[test]
    fn lambda_zero_matches_plain_cgls() {
        let (ops, y, _) = setup_noisy();
        let (x_plain, _) = cgls(
            &y,
            ops.a.ncols(),
            |p| ops.forward(Kernel::Serial, p),
            |r| ops.back(Kernel::Serial, r),
            StopRule::Fixed(10),
        );
        let (x_smooth, _) = cgls_smooth(&ops, Kernel::Serial, &y, 0.0, StopRule::Fixed(10));
        for (a, b) in x_smooth.iter().zip(&x_plain) {
            assert!((a - b).abs() < 1e-5);
        }
    }

    #[test]
    fn larger_lambda_gives_smoother_image() {
        let (ops, y, _) = setup_noisy();
        let d = gradient_operator(&ops.tomo_ord);
        let roughness =
            |x: &[f32]| -> f64 { spmv(&d, x).iter().map(|&v| (v as f64).powi(2)).sum() };
        let (x_lo, _) = cgls_smooth(&ops, Kernel::Serial, &y, 0.1, StopRule::Fixed(25));
        let (x_hi, _) = cgls_smooth(&ops, Kernel::Serial, &y, 5.0, StopRule::Fixed(25));
        assert!(
            roughness(&x_hi) < roughness(&x_lo),
            "{} vs {}",
            roughness(&x_hi),
            roughness(&x_lo)
        );
    }
}

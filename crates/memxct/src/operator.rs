//! The operator layer: every projection path — serial CSR, parallel CSR,
//! multi-stage buffered (16- and 32-bit addressing), ELL, the distributed
//! `RankPlan`/`Communicator` factorization, and the compute-centric
//! CompXCT baseline — behind one [`ProjectionOperator`] trait, so the
//! solver engine in [`crate::solvers`] is written exactly once.
//!
//! The trait contract:
//!
//! - [`forward_into`](ProjectionOperator::forward_into) /
//!   [`back_into`](ProjectionOperator::back_into) fully overwrite their
//!   output slice (`y = A·x`, `x = Aᵀ·y`);
//! - [`reduce_dot`](ProjectionOperator::reduce_dot) combines a locally
//!   accumulated scalar into the global value. Shared-memory operators
//!   return it unchanged; the distributed operator allreduces across
//!   ranks. Solvers route **every** dot product through this hook, which
//!   is what lets one CG/SIRT loop serve both worlds bit-identically;
//! - [`breakdown`](ProjectionOperator::breakdown) optionally exposes
//!   accumulated per-kernel wall-clock time ([`KernelBreakdown`]), so the
//!   serial and distributed reconstruction paths report timings through
//!   one code path (Fig 9 / Fig 11).
//!
//! Combinators: [`StackedOperator`] appends scaled regularization rows
//! (Tikhonov / gradient smoothing) and [`RowSubsetOperator`] restricts to
//! a row subset (ordered-subsets SIRT).

use std::cell::RefCell;
use std::time::Instant;

use xct_compxct::CompXct;
use xct_obs::{Metrics, KERNEL_AP_SECONDS, KERNEL_C_SECONDS, KERNEL_R_SECONDS};
use xct_runtime::{ExecPlan, WorkerPool};
use xct_sparse::{
    spmv_into, spmv_parallel_into, BufferIndex, BufferedCsr, BufferedCsrImpl, CsrMatrix, EllMatrix,
};

use crate::preprocess::{Kernel, Operators};

/// Gauge: forward-plan worker nnz imbalance (max worker weight / ideal).
pub const POOL_IMBALANCE_FORWARD: &str = "pool/imbalance/forward";
/// Gauge: backprojection-plan worker nnz imbalance.
pub const POOL_IMBALANCE_BACK: &str = "pool/imbalance/back";

/// Accumulated per-rank kernel times (seconds) across all iterations.
///
/// For shared-memory operators only `ap_s` is populated (all SpMV time);
/// the distributed operator splits time across all three kernels of the
/// `A = R·C·A_p` factorization.
///
/// This is a *view* over an [`xct_obs`] metrics registry: operators record
/// every kernel invocation into the timers [`KERNEL_AP_SECONDS`],
/// [`KERNEL_C_SECONDS`], and [`KERNEL_R_SECONDS`], and
/// [`ProjectionOperator::breakdown`] reads the accumulated totals back.
/// Operators sharing one registry (via `with_metrics`) therefore report
/// combined totals.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct KernelBreakdown {
    /// Partial projections (A_p and A_pᵀ) — or all SpMV time for
    /// shared-memory operators.
    pub ap_s: f64,
    /// Communication (C, Cᵀ, and scalar allreduces).
    pub c_s: f64,
    /// Overlap reduction / gather assembly (R, Rᵀ).
    pub r_s: f64,
}

impl KernelBreakdown {
    /// Total time.
    pub fn total(&self) -> f64 {
        self.ap_s + self.c_s + self.r_s
    }

    /// Read the three kernel timer totals out of a metrics handle; `None`
    /// for a no-op handle (nothing was recorded).
    pub fn from_metrics(metrics: &Metrics) -> Option<KernelBreakdown> {
        if !metrics.enabled() {
            return None;
        }
        Some(KernelBreakdown {
            ap_s: metrics.timer_total(KERNEL_AP_SECONDS).unwrap_or(0.0),
            c_s: metrics.timer_total(KERNEL_C_SECONDS).unwrap_or(0.0),
            r_s: metrics.timer_total(KERNEL_R_SECONDS).unwrap_or(0.0),
        })
    }
}

/// Per-operator SpMV instrumentation: a timer plus `calls`/`nnz`/`bytes`
/// counters under `spmv/<kernel>/…` — and, for batched applications,
/// `calls`/`nnz`/`bytes`/`slices` under `spmm/<kernel>/…` — with names
/// precomputed so the hot path never allocates.
struct SpmvMeter {
    metrics: Metrics,
    calls: String,
    nnz: String,
    bytes: String,
    spmm_calls: String,
    spmm_nnz: String,
    spmm_bytes: String,
    spmm_slices: String,
}

impl SpmvMeter {
    fn new(metrics: Metrics, kernel: &str) -> Self {
        SpmvMeter {
            metrics,
            calls: format!("spmv/{kernel}/calls"),
            nnz: format!("spmv/{kernel}/nnz"),
            bytes: format!("spmv/{kernel}/bytes"),
            spmm_calls: format!("spmm/{kernel}/calls"),
            spmm_nnz: format!("spmm/{kernel}/nnz"),
            spmm_bytes: format!("spmm/{kernel}/bytes"),
            spmm_slices: format!("spmm/{kernel}/slices"),
        }
    }

    /// Read the clock only when collecting.
    #[inline]
    fn start(&self) -> Option<Instant> {
        self.metrics.enabled().then(Instant::now)
    }

    #[inline]
    fn record(&self, started: Option<Instant>, nnz: u64, bytes: u64) {
        if let Some(t) = started {
            self.metrics
                .timer_observe(KERNEL_AP_SECONDS, t.elapsed().as_secs_f64());
            self.metrics.counter_add(&self.calls, 1);
            self.metrics.counter_add(&self.nnz, nnz);
            self.metrics.counter_add(&self.bytes, bytes);
        }
    }

    /// Record one batched (SpMM) application over `slices` right-hand
    /// sides. `nnz`/`bytes` are counted **once per call**, not per slice
    /// — the kernel streams the matrix once for the whole slab, which is
    /// the point of batching; `spmm/<kernel>/bytes ÷ spmm/<kernel>/slices`
    /// is therefore the matrix traffic amortized per slice.
    #[inline]
    fn record_spmm(&self, started: Option<Instant>, nnz: u64, bytes: u64, slices: usize) {
        if let Some(t) = started {
            self.metrics
                .timer_observe(KERNEL_AP_SECONDS, t.elapsed().as_secs_f64());
            self.metrics.counter_add(&self.spmm_calls, 1);
            self.metrics.counter_add(&self.spmm_nnz, nnz);
            self.metrics.counter_add(&self.spmm_bytes, bytes);
            self.metrics.counter_add(&self.spmm_slices, slices as u64);
        }
    }

    fn breakdown(&self) -> Option<KernelBreakdown> {
        KernelBreakdown::from_metrics(&self.metrics)
    }
}

/// A linear projection pair `A` / `Aᵀ` as seen by the iterative solvers.
///
/// Implementations exist for every kernel variant; see the module docs
/// for the contract. All slices are in *ordered* (Hilbert) coordinates
/// for the memoized operators, and raster coordinates for the
/// compute-centric baseline — the operator is agnostic, callers must be
/// consistent.
pub trait ProjectionOperator {
    /// Rows of `A` (sinogram length this operator produces).
    fn nrows(&self) -> usize;
    /// Columns of `A` (tomogram length this operator consumes).
    fn ncols(&self) -> usize;
    /// Forward projection `y = A·x`; overwrites `y` entirely.
    fn forward_into(&self, x: &[f32], y: &mut [f32]);
    /// Backprojection `x = Aᵀ·y`; overwrites `x` entirely.
    fn back_into(&self, y: &[f32], x: &mut [f32]);
    /// Batched forward projection `Y = A·[x₁ … x_k]` over slice-major
    /// slabs (`x` is `batch × ncols`, `y` is `batch × nrows`). Slice `j`
    /// of the output must be **bit-identical** to
    /// [`forward_into`](ProjectionOperator::forward_into) on slice `j` of
    /// the input — the default delegates per slice, which guarantees it;
    /// memoized backends override with an SpMM that streams the matrix
    /// once for the whole slab.
    fn forward_batch_into(&self, x: &[f32], y: &mut [f32], batch: usize) {
        let n = self.ncols();
        let m = self.nrows();
        for j in 0..batch {
            self.forward_into(&x[j * n..(j + 1) * n], &mut y[j * m..(j + 1) * m]);
        }
    }
    /// Batched backprojection `X = Aᵀ·[y₁ … y_k]`, the slice-major
    /// counterpart of [`back_into`](ProjectionOperator::back_into) with
    /// the same per-slice bit-identity contract as
    /// [`forward_batch_into`](ProjectionOperator::forward_batch_into).
    fn back_batch_into(&self, y: &[f32], x: &mut [f32], batch: usize) {
        let m = self.nrows();
        let n = self.ncols();
        for j in 0..batch {
            self.back_into(&y[j * m..(j + 1) * m], &mut x[j * n..(j + 1) * n]);
        }
    }
    /// Locally accumulate `out.len()` slice-wise dot products over
    /// slice-major slabs: `out[j] = ⟨a_j, b_j⟩`. Each `out[j]` must be
    /// bit-identical to [`local_dot`](ProjectionOperator::local_dot) on
    /// slice `j` (the default delegates per slice); the pooled operator
    /// overrides it with one batched dispatch.
    fn local_dot_batch(&self, a: &[f32], b: &[f32], out: &mut [f64]) {
        let k = out.len();
        if k == 0 || !a.len().is_multiple_of(k) {
            return;
        }
        let len = a.len() / k;
        for (j, o) in out.iter_mut().enumerate() {
            *o = self.local_dot(&a[j * len..(j + 1) * len], &b[j * len..(j + 1) * len]);
        }
    }
    /// Combine a locally accumulated dot product into the global value.
    /// Identity for shared-memory operators; an allreduce across ranks
    /// for distributed ones.
    fn reduce_dot(&self, local: f64) -> f64 {
        local
    }
    /// Locally accumulate `⟨a, b⟩` in f64. The default is the sequential
    /// [`xct_sparse::dot_f64`]; the pooled operator overrides it with the
    /// deterministic fixed-chunk parallel reduction (bit-identical for
    /// every worker count, but a *different* — equally valid — summation
    /// order than the sequential one). Solvers route every dot through
    /// this hook so one engine serves both worlds.
    fn local_dot(&self, a: &[f32], b: &[f32]) -> f64 {
        xct_sparse::dot_f64(a, b)
    }
    /// Accumulated per-kernel timings, if this operator tracks them.
    fn breakdown(&self) -> Option<KernelBreakdown> {
        None
    }
    /// The first communication failure this operator absorbed, if any.
    ///
    /// `forward_into`/`back_into`/`reduce_dot` are infallible by design —
    /// the solver engine's hot loop never branches on errors. A fallible
    /// backend (the distributed operator) instead *poisons* itself on the
    /// first [`xct_runtime::CommError`]: it records the error here,
    /// zero-fills every subsequent output, and skips further
    /// communication, which drives CG to a benign numerical-breakdown
    /// exit within one iteration. Drivers check this hook after the
    /// engine returns and surface the typed error; shared-memory
    /// operators keep the default `None`.
    fn fault(&self) -> Option<xct_runtime::CommError> {
        None
    }
}

/// Sequential CSR operator (the reference kernel).
pub struct SerialOperator<'a> {
    a: &'a CsrMatrix,
    at: &'a CsrMatrix,
    meter: SpmvMeter,
}

impl<'a> SerialOperator<'a> {
    /// Wrap the memoized matrices of `ops`.
    pub fn new(ops: &'a Operators) -> Self {
        Self::from_parts(&ops.a, &ops.at)
    }

    /// Wrap an explicit forward/transpose pair.
    pub fn from_parts(a: &'a CsrMatrix, at: &'a CsrMatrix) -> Self {
        SerialOperator {
            a,
            at,
            meter: SpmvMeter::new(Metrics::collecting(), "serial"),
        }
    }

    /// Record into `metrics` instead of a private registry.
    pub fn with_metrics(mut self, metrics: Metrics) -> Self {
        self.meter.metrics = metrics;
        self
    }
}

impl ProjectionOperator for SerialOperator<'_> {
    fn nrows(&self) -> usize {
        self.a.nrows()
    }
    fn ncols(&self) -> usize {
        self.a.ncols()
    }
    fn forward_into(&self, x: &[f32], y: &mut [f32]) {
        let t = self.meter.start();
        spmv_into(self.a, x, y);
        self.meter
            .record(t, self.a.nnz() as u64, self.a.regular_bytes());
    }
    fn back_into(&self, y: &[f32], x: &mut [f32]) {
        let t = self.meter.start();
        spmv_into(self.at, y, x);
        self.meter
            .record(t, self.at.nnz() as u64, self.at.regular_bytes());
    }
    fn forward_batch_into(&self, x: &[f32], y: &mut [f32], batch: usize) {
        if batch == 1 {
            return self.forward_into(x, y); // keep spmv/* counter parity
        }
        let t = self.meter.start();
        xct_sparse::spmm_into(self.a, x, y, batch);
        self.meter
            .record_spmm(t, self.a.nnz() as u64, self.a.regular_bytes(), batch);
    }
    fn back_batch_into(&self, y: &[f32], x: &mut [f32], batch: usize) {
        if batch == 1 {
            return self.back_into(y, x);
        }
        let t = self.meter.start();
        xct_sparse::spmm_into(self.at, y, x, batch);
        self.meter
            .record_spmm(t, self.at.nnz() as u64, self.at.regular_bytes(), batch);
    }
    fn breakdown(&self) -> Option<KernelBreakdown> {
        self.meter.breakdown()
    }
}

/// Parallel CSR operator with dynamically-scheduled row partitions
/// (Listing 2).
pub struct ParallelOperator<'a> {
    a: &'a CsrMatrix,
    at: &'a CsrMatrix,
    partsize: usize,
    meter: SpmvMeter,
}

impl<'a> ParallelOperator<'a> {
    /// Wrap the memoized matrices of `ops` using its partition size.
    pub fn new(ops: &'a Operators) -> Self {
        Self::from_parts(&ops.a, &ops.at, ops.partsize)
    }

    /// Wrap an explicit pair with a given partition size.
    pub fn from_parts(a: &'a CsrMatrix, at: &'a CsrMatrix, partsize: usize) -> Self {
        ParallelOperator {
            a,
            at,
            partsize,
            meter: SpmvMeter::new(Metrics::collecting(), "parallel"),
        }
    }

    /// Record into `metrics` instead of a private registry.
    pub fn with_metrics(mut self, metrics: Metrics) -> Self {
        self.meter.metrics = metrics;
        self
    }
}

impl ProjectionOperator for ParallelOperator<'_> {
    fn nrows(&self) -> usize {
        self.a.nrows()
    }
    fn ncols(&self) -> usize {
        self.a.ncols()
    }
    fn forward_into(&self, x: &[f32], y: &mut [f32]) {
        let t = self.meter.start();
        spmv_parallel_into(self.a, x, y, self.partsize);
        self.meter
            .record(t, self.a.nnz() as u64, self.a.regular_bytes());
    }
    fn back_into(&self, y: &[f32], x: &mut [f32]) {
        let t = self.meter.start();
        spmv_parallel_into(self.at, y, x, self.partsize);
        self.meter
            .record(t, self.at.nnz() as u64, self.at.regular_bytes());
    }
    fn breakdown(&self) -> Option<KernelBreakdown> {
        self.meter.breakdown()
    }
}

/// Multi-stage buffered operator (Listing 3), generic over the in-buffer
/// index width: `u16` is the paper's kernel, `u32` the addressing
/// ablation.
pub struct BufferedOperator<'a, I: BufferIndex> {
    a: &'a BufferedCsrImpl<I>,
    at: &'a BufferedCsrImpl<I>,
    meter: SpmvMeter,
}

impl<'a, I: BufferIndex> BufferedOperator<'a, I> {
    /// Wrap a buffered forward/transpose pair.
    pub fn from_parts(a: &'a BufferedCsrImpl<I>, at: &'a BufferedCsrImpl<I>) -> Self {
        BufferedOperator {
            a,
            at,
            meter: SpmvMeter::new(Metrics::collecting(), "buffered"),
        }
    }

    /// Record into `metrics` instead of a private registry.
    pub fn with_metrics(mut self, metrics: Metrics) -> Self {
        self.meter.metrics = metrics;
        self
    }
}

impl<'a> BufferedOperator<'a, u16> {
    /// Wrap the buffered layouts of `ops`.
    ///
    /// # Panics
    /// Panics if the buffered layouts were not built
    /// (`Config::build_buffered`).
    pub fn new(ops: &'a Operators) -> Self {
        Self::from_parts(
            ops.a_buf
                .as_ref()
                // lint: allow(no-panic) documented panic; the try_ path returns LayoutNotBuilt
                .expect("buffered layout not built; set Config::build_buffered"),
            ops.at_buf
                .as_ref()
                // lint: allow(no-panic) documented panic; the try_ path returns LayoutNotBuilt
                .expect("buffered layout not built; set Config::build_buffered"),
        )
    }
}

impl<I: BufferIndex> ProjectionOperator for BufferedOperator<'_, I> {
    fn nrows(&self) -> usize {
        self.a.nrows()
    }
    fn ncols(&self) -> usize {
        self.a.ncols()
    }
    fn forward_into(&self, x: &[f32], y: &mut [f32]) {
        let t = self.meter.start();
        self.a.spmv_parallel_into(x, y);
        if t.is_some() {
            self.meter
                .metrics
                .counter_add("spmv/buffered/stages", self.a.num_stages() as u64);
        }
        self.meter
            .record(t, self.a.nnz() as u64, self.a.regular_bytes());
    }
    fn back_into(&self, y: &[f32], x: &mut [f32]) {
        let t = self.meter.start();
        self.at.spmv_parallel_into(y, x);
        if t.is_some() {
            self.meter
                .metrics
                .counter_add("spmv/buffered/stages", self.at.num_stages() as u64);
        }
        self.meter
            .record(t, self.at.nnz() as u64, self.at.regular_bytes());
    }
    fn forward_batch_into(&self, x: &[f32], y: &mut [f32], batch: usize) {
        if batch == 1 {
            return self.forward_into(x, y); // keep spmv/* counter parity
        }
        let t = self.meter.start();
        self.a.spmm_into(x, y, batch);
        self.meter
            .record_spmm(t, self.a.nnz() as u64, self.a.regular_bytes(), batch);
    }
    fn back_batch_into(&self, y: &[f32], x: &mut [f32], batch: usize) {
        if batch == 1 {
            return self.back_into(y, x);
        }
        let t = self.meter.start();
        self.at.spmm_into(y, x, batch);
        self.meter
            .record_spmm(t, self.at.nnz() as u64, self.at.regular_bytes(), batch);
    }
    fn breakdown(&self) -> Option<KernelBreakdown> {
        self.meter.breakdown()
    }
}

/// Column-major ELL operator (the GPU-analog kernel, §3.1.4).
pub struct EllOperator<'a> {
    a: &'a EllMatrix,
    at: &'a EllMatrix,
    meter: SpmvMeter,
}

impl<'a> EllOperator<'a> {
    /// Wrap the ELL layouts of `ops`.
    ///
    /// # Panics
    /// Panics if the ELL layouts were not built (`Config::build_ell`).
    pub fn new(ops: &'a Operators) -> Self {
        Self::from_parts(
            ops.a_ell
                .as_ref()
                // lint: allow(no-panic) documented panic; the try_ path returns LayoutNotBuilt
                .expect("ELL layout not built; set Config::build_ell"),
            ops.at_ell
                .as_ref()
                // lint: allow(no-panic) documented panic; the try_ path returns LayoutNotBuilt
                .expect("ELL layout not built; set Config::build_ell"),
        )
    }

    /// Wrap an explicit ELL pair.
    pub fn from_parts(a: &'a EllMatrix, at: &'a EllMatrix) -> Self {
        EllOperator {
            a,
            at,
            meter: SpmvMeter::new(Metrics::collecting(), "ell"),
        }
    }

    /// Record into `metrics` instead of a private registry.
    pub fn with_metrics(mut self, metrics: Metrics) -> Self {
        self.meter.metrics = metrics;
        self
    }
}

impl ProjectionOperator for EllOperator<'_> {
    fn nrows(&self) -> usize {
        self.a.nrows()
    }
    fn ncols(&self) -> usize {
        self.a.ncols()
    }
    fn forward_into(&self, x: &[f32], y: &mut [f32]) {
        let t = self.meter.start();
        self.a.spmv_into(x, y);
        self.meter
            .record(t, self.a.nnz() as u64, self.a.regular_bytes());
    }
    fn back_into(&self, y: &[f32], x: &mut [f32]) {
        let t = self.meter.start();
        self.at.spmv_into(y, x);
        self.meter
            .record(t, self.at.nnz() as u64, self.at.regular_bytes());
    }
    fn forward_batch_into(&self, x: &[f32], y: &mut [f32], batch: usize) {
        if batch == 1 {
            return self.forward_into(x, y); // keep spmv/* counter parity
        }
        let t = self.meter.start();
        self.a.spmm_into(x, y, batch);
        self.meter
            .record_spmm(t, self.a.nnz() as u64, self.a.regular_bytes(), batch);
    }
    fn back_batch_into(&self, y: &[f32], x: &mut [f32], batch: usize) {
        if batch == 1 {
            return self.back_into(y, x);
        }
        let t = self.meter.start();
        self.at.spmm_into(y, x, batch);
        self.meter
            .record_spmm(t, self.at.nnz() as u64, self.at.regular_bytes(), batch);
    }
    fn breakdown(&self) -> Option<KernelBreakdown> {
        self.meter.breakdown()
    }
}

/// Which memoized layout a [`PooledOperator`] drives through the pool.
enum PooledBackend<'a> {
    /// Plain CSR pair (serves both the serial and parallel kernels).
    Csr {
        /// Forward matrix.
        a: &'a CsrMatrix,
        /// Transpose.
        at: &'a CsrMatrix,
    },
    /// Multi-stage buffered pair (16-bit addressing).
    Buffered {
        /// Forward layout.
        a: &'a BufferedCsr,
        /// Transpose layout.
        at: &'a BufferedCsr,
    },
    /// Column-major ELL pair.
    Ell {
        /// Forward layout.
        a: &'a EllMatrix,
        /// Transpose layout.
        at: &'a EllMatrix,
    },
}

/// The static execution plans one [`PooledOperator`] reuses every
/// iteration: nnz-balanced row partitions for the forward and
/// backprojection SpMVs plus fixed-chunk reduction plans for both vector
/// lengths. Built **once** at plan time (preprocessing / reconstructor
/// build), so the solve loop never re-partitions.
pub struct PooledPlans {
    forward: ExecPlan,
    back: ExecPlan,
    dot_rows: ExecPlan,
    dot_cols: ExecPlan,
    /// Batch width the batched dot plans were built for (1 = none).
    batch: usize,
    /// Chunk-distribution plan for `batch`-wide slice-major dots over
    /// row-length slabs; present only when `batch > 1`. The SpMM reuses
    /// `forward`/`back` unchanged — only the reductions need wider plans.
    dot_rows_batch: Option<ExecPlan>,
    /// Batched dot plan for column-length slabs.
    dot_cols_batch: Option<ExecPlan>,
}

impl PooledPlans {
    /// Build the plans for `kernel` over the memoized layouts of `ops`,
    /// splitting work across `workers` pool threads.
    ///
    /// # Panics
    /// Panics if the requested layout was not built (see `Config`).
    pub fn new(ops: &Operators, kernel: Kernel, workers: usize) -> Self {
        Self::new_batched(ops, kernel, workers, 1)
    }

    /// [`new`](Self::new) plus batched dot plans for `batch`-wide solves.
    /// The row plans (`forward`/`back`) serve both SpMV and SpMM, so only
    /// the fixed-chunk reduction plans gain batched variants.
    ///
    /// # Panics
    /// Panics if the requested layout was not built (see `Config`).
    pub fn new_batched(ops: &Operators, kernel: Kernel, workers: usize, batch: usize) -> Self {
        let (forward, back) = match kernel {
            Kernel::Serial | Kernel::Parallel => (
                xct_sparse::csr_plan(&ops.a, workers),
                xct_sparse::csr_plan(&ops.at, workers),
            ),
            Kernel::Buffered => (
                ops.a_buf
                    .as_ref()
                    // lint: allow(no-panic) documented panic, same contract as BufferedOperator::new
                    .expect("buffered layout not built; set Config::build_buffered")
                    .exec_plan(workers),
                ops.at_buf
                    .as_ref()
                    // lint: allow(no-panic) documented panic, same contract as BufferedOperator::new
                    .expect("buffered layout not built; set Config::build_buffered")
                    .exec_plan(workers),
            ),
            Kernel::Ell => (
                ops.a_ell
                    .as_ref()
                    // lint: allow(no-panic) documented panic, same contract as EllOperator::new
                    .expect("ELL layout not built; set Config::build_ell")
                    .exec_plan(workers),
                ops.at_ell
                    .as_ref()
                    // lint: allow(no-panic) documented panic, same contract as EllOperator::new
                    .expect("ELL layout not built; set Config::build_ell")
                    .exec_plan(workers),
            ),
        };
        let (dot_rows_batch, dot_cols_batch) = if batch > 1 {
            (
                Some(xct_sparse::dot_batch_plan(ops.a.nrows(), batch, workers)),
                Some(xct_sparse::dot_batch_plan(ops.a.ncols(), batch, workers)),
            )
        } else {
            (None, None)
        };
        PooledPlans {
            forward,
            back,
            dot_rows: xct_sparse::dot_plan(ops.a.nrows(), workers),
            dot_cols: xct_sparse::dot_plan(ops.a.ncols(), workers),
            batch,
            dot_rows_batch,
            dot_cols_batch,
        }
    }

    /// The forward-projection row plan.
    pub fn forward(&self) -> &ExecPlan {
        &self.forward
    }

    /// The backprojection row plan.
    pub fn back(&self) -> &ExecPlan {
        &self.back
    }

    /// Batch width the batched dot plans cover (1 = scalar only).
    pub fn batch(&self) -> usize {
        self.batch
    }

    /// Every plan with its name, for validation sweeps.
    pub fn all(&self) -> Vec<(&'static str, &ExecPlan)> {
        let mut plans = vec![
            ("exec(forward)", &self.forward),
            ("exec(back)", &self.back),
            ("exec(dot/rows)", &self.dot_rows),
            ("exec(dot/cols)", &self.dot_cols),
        ];
        if let Some(p) = &self.dot_rows_batch {
            plans.push(("exec(dot/rows/batch)", p));
        }
        if let Some(p) = &self.dot_cols_batch {
            plans.push(("exec(dot/cols/batch)", p));
        }
        plans
    }
}

/// A [`ProjectionOperator`] that drives the memoized layouts through the
/// persistent [`WorkerPool`] over precomputed [`PooledPlans`] — no thread
/// spawns and no partitioning decisions inside the solve loop, and (after
/// construction) no heap allocation per application.
///
/// `local_dot` is overridden with the deterministic fixed-chunk pooled
/// reduction, so reconstructions are bit-identical across worker counts
/// (though the dot's summation order — and hence the trajectory — differs
/// from the sequential default in the last bits).
pub struct PooledOperator<'a> {
    backend: PooledBackend<'a>,
    pool: &'a WorkerPool,
    plans: &'a PooledPlans,
    nrows: usize,
    ncols: usize,
    /// Per-chunk dot partials, sized for the longer vector length.
    dot_scratch: RefCell<Vec<f64>>,
    meter: SpmvMeter,
}

impl<'a> PooledOperator<'a> {
    /// Wrap the `kernel` layouts of `ops`, executing on `pool` over
    /// `plans`. The pool's thread count must match the plans' worker
    /// count.
    ///
    /// # Panics
    /// Panics if the requested layout was not built (see `Config`).
    pub fn new(
        ops: &'a Operators,
        kernel: Kernel,
        plans: &'a PooledPlans,
        pool: &'a WorkerPool,
    ) -> Self {
        let backend = match kernel {
            Kernel::Serial | Kernel::Parallel => PooledBackend::Csr {
                a: &ops.a,
                at: &ops.at,
            },
            Kernel::Buffered => PooledBackend::Buffered {
                a: ops
                    .a_buf
                    .as_ref()
                    // lint: allow(no-panic) documented panic, same contract as BufferedOperator::new
                    .expect("buffered layout not built; set Config::build_buffered"),
                at: ops
                    .at_buf
                    .as_ref()
                    // lint: allow(no-panic) documented panic, same contract as BufferedOperator::new
                    .expect("buffered layout not built; set Config::build_buffered"),
            },
            Kernel::Ell => PooledBackend::Ell {
                a: ops
                    .a_ell
                    .as_ref()
                    // lint: allow(no-panic) documented panic, same contract as EllOperator::new
                    .expect("ELL layout not built; set Config::build_ell"),
                at: ops
                    .at_ell
                    .as_ref()
                    // lint: allow(no-panic) documented panic, same contract as EllOperator::new
                    .expect("ELL layout not built; set Config::build_ell"),
            },
        };
        let nrows = ops.a.nrows();
        let ncols = ops.a.ncols();
        // Scratch sized for the widest dot this operator can run: the
        // batched plans (when present) need `chunks × batch` partials.
        let slots =
            xct_sparse::dot_chunks(nrows).max(xct_sparse::dot_chunks(ncols)) * plans.batch.max(1);
        PooledOperator {
            backend,
            pool,
            plans,
            nrows,
            ncols,
            dot_scratch: RefCell::new(vec![0f64; slots]),
            meter: SpmvMeter::new(Metrics::collecting(), "pooled"),
        }
    }

    /// Record into `metrics` instead of a private registry, and publish
    /// the plan imbalance gauges.
    pub fn with_metrics(mut self, metrics: Metrics) -> Self {
        metrics.gauge_set(POOL_IMBALANCE_FORWARD, self.plans.forward.imbalance());
        metrics.gauge_set(POOL_IMBALANCE_BACK, self.plans.back.imbalance());
        self.meter.metrics = metrics;
        self
    }
}

impl ProjectionOperator for PooledOperator<'_> {
    fn nrows(&self) -> usize {
        self.nrows
    }
    fn ncols(&self) -> usize {
        self.ncols
    }
    fn forward_into(&self, x: &[f32], y: &mut [f32]) {
        let t = self.meter.start();
        let (nnz, bytes) = match self.backend {
            PooledBackend::Csr { a, .. } => {
                xct_sparse::spmv_pooled_into(a, x, y, &self.plans.forward, self.pool);
                (a.nnz() as u64, a.regular_bytes())
            }
            PooledBackend::Buffered { a, .. } => {
                a.spmv_pooled_into(x, y, &self.plans.forward, self.pool);
                (a.nnz() as u64, a.regular_bytes())
            }
            PooledBackend::Ell { a, .. } => {
                a.spmv_pooled_into(x, y, &self.plans.forward, self.pool);
                (a.nnz() as u64, a.regular_bytes())
            }
        };
        self.meter.record(t, nnz, bytes);
    }
    fn back_into(&self, y: &[f32], x: &mut [f32]) {
        let t = self.meter.start();
        let (nnz, bytes) = match self.backend {
            PooledBackend::Csr { at, .. } => {
                xct_sparse::spmv_pooled_into(at, y, x, &self.plans.back, self.pool);
                (at.nnz() as u64, at.regular_bytes())
            }
            PooledBackend::Buffered { at, .. } => {
                at.spmv_pooled_into(y, x, &self.plans.back, self.pool);
                (at.nnz() as u64, at.regular_bytes())
            }
            PooledBackend::Ell { at, .. } => {
                at.spmv_pooled_into(y, x, &self.plans.back, self.pool);
                (at.nnz() as u64, at.regular_bytes())
            }
        };
        self.meter.record(t, nnz, bytes);
    }
    fn forward_batch_into(&self, x: &[f32], y: &mut [f32], batch: usize) {
        if batch == 1 {
            return self.forward_into(x, y); // keep spmv/* counter parity
        }
        let t = self.meter.start();
        let (nnz, bytes) = match self.backend {
            PooledBackend::Csr { a, .. } => {
                xct_sparse::spmm_pooled_into(a, x, y, batch, &self.plans.forward, self.pool);
                (a.nnz() as u64, a.regular_bytes())
            }
            PooledBackend::Buffered { a, .. } => {
                a.spmm_pooled_into(x, y, batch, &self.plans.forward, self.pool);
                (a.nnz() as u64, a.regular_bytes())
            }
            PooledBackend::Ell { a, .. } => {
                a.spmm_pooled_into(x, y, batch, &self.plans.forward, self.pool);
                (a.nnz() as u64, a.regular_bytes())
            }
        };
        self.meter.record_spmm(t, nnz, bytes, batch);
    }
    fn back_batch_into(&self, y: &[f32], x: &mut [f32], batch: usize) {
        if batch == 1 {
            return self.back_into(y, x);
        }
        let t = self.meter.start();
        let (nnz, bytes) = match self.backend {
            PooledBackend::Csr { at, .. } => {
                xct_sparse::spmm_pooled_into(at, y, x, batch, &self.plans.back, self.pool);
                (at.nnz() as u64, at.regular_bytes())
            }
            PooledBackend::Buffered { at, .. } => {
                at.spmm_pooled_into(y, x, batch, &self.plans.back, self.pool);
                (at.nnz() as u64, at.regular_bytes())
            }
            PooledBackend::Ell { at, .. } => {
                at.spmm_pooled_into(y, x, batch, &self.plans.back, self.pool);
                (at.nnz() as u64, at.regular_bytes())
            }
        };
        self.meter.record_spmm(t, nnz, bytes, batch);
    }
    fn local_dot(&self, a: &[f32], b: &[f32]) -> f64 {
        let plan = if a.len() == self.nrows {
            &self.plans.dot_rows
        } else if a.len() == self.ncols {
            &self.plans.dot_cols
        } else {
            // No precomputed plan at this length (only reachable from
            // custom callers) — the sequential sum is still deterministic.
            return xct_sparse::dot_f64(a, b);
        };
        let mut scratch = self.dot_scratch.borrow_mut();
        let slots = xct_sparse::dot_chunks(a.len());
        xct_sparse::dot_f64_pooled(self.pool, plan, a, b, &mut scratch[..slots])
    }
    fn local_dot_batch(&self, a: &[f32], b: &[f32], out: &mut [f64]) {
        let k = out.len();
        if k == 0 || !a.len().is_multiple_of(k) {
            return;
        }
        if k == 1 {
            out[0] = self.local_dot(a, b);
            return;
        }
        let len = a.len() / k;
        let plan = if k == self.plans.batch && len == self.nrows {
            self.plans.dot_rows_batch.as_ref()
        } else if k == self.plans.batch && len == self.ncols {
            self.plans.dot_cols_batch.as_ref()
        } else {
            None
        };
        let Some(plan) = plan else {
            // No precomputed batched plan at this width/length — fall
            // back to the per-slice pooled dots (still deterministic and
            // bit-identical per slice).
            for (j, o) in out.iter_mut().enumerate() {
                *o = self.local_dot(&a[j * len..(j + 1) * len], &b[j * len..(j + 1) * len]);
            }
            return;
        };
        let mut scratch = self.dot_scratch.borrow_mut();
        let slots = xct_sparse::dot_chunks(len) * k;
        xct_sparse::dot_f64_batched_pooled(self.pool, plan, a, b, k, &mut scratch[..slots], out);
    }
    fn breakdown(&self) -> Option<KernelBreakdown> {
        self.meter.breakdown()
    }
}

/// The compute-centric CompXCT baseline (Table 4): no memoized matrix,
/// every application re-traces all rays. Operates in raster coordinates.
pub struct CompOperator<'a> {
    cx: &'a CompXct,
    meter: SpmvMeter,
}

impl<'a> CompOperator<'a> {
    /// Wrap a compute-centric reconstructor.
    pub fn new(cx: &'a CompXct) -> Self {
        CompOperator {
            cx,
            meter: SpmvMeter::new(Metrics::collecting(), "comp"),
        }
    }

    /// Record into `metrics` instead of a private registry.
    pub fn with_metrics(mut self, metrics: Metrics) -> Self {
        self.meter.metrics = metrics;
        self
    }
}

impl ProjectionOperator for CompOperator<'_> {
    fn nrows(&self) -> usize {
        self.cx.scan().num_rays()
    }
    fn ncols(&self) -> usize {
        self.cx.grid().num_pixels()
    }
    fn forward_into(&self, x: &[f32], y: &mut [f32]) {
        let t = self.meter.start();
        y.copy_from_slice(&self.cx.forward(x));
        // Compute-centric: no memoized matrix, so no nnz/bytes to stream.
        self.meter.record(t, 0, 0);
    }
    fn back_into(&self, y: &[f32], x: &mut [f32]) {
        let t = self.meter.start();
        x.copy_from_slice(&self.cx.backproject(y));
        self.meter.record(t, 0, 0);
    }
    fn breakdown(&self) -> Option<KernelBreakdown> {
        self.meter.breakdown()
    }
}

/// Adapter keeping the legacy closure-based solver signatures
/// (`cgls(y, nx, forward, back, ..)`) alive as thin shims over the
/// engine.
pub struct ClosureOperator<F, G> {
    nrows: usize,
    ncols: usize,
    forward: RefCell<F>,
    back: RefCell<G>,
}

impl<F, G> ClosureOperator<F, G>
where
    F: FnMut(&[f32]) -> Vec<f32>,
    G: FnMut(&[f32]) -> Vec<f32>,
{
    /// Wrap forward/backprojection closures with an explicit shape.
    pub fn new(nrows: usize, ncols: usize, forward: F, back: G) -> Self {
        ClosureOperator {
            nrows,
            ncols,
            forward: RefCell::new(forward),
            back: RefCell::new(back),
        }
    }
}

impl<F, G> ProjectionOperator for ClosureOperator<F, G>
where
    F: FnMut(&[f32]) -> Vec<f32>,
    G: FnMut(&[f32]) -> Vec<f32>,
{
    fn nrows(&self) -> usize {
        self.nrows
    }
    fn ncols(&self) -> usize {
        self.ncols
    }
    fn forward_into(&self, x: &[f32], y: &mut [f32]) {
        y.copy_from_slice(&(self.forward.borrow_mut())(x));
    }
    fn back_into(&self, y: &[f32], x: &mut [f32]) {
        x.copy_from_slice(&(self.back.borrow_mut())(y));
    }
}

/// `[A; s·D]` — a primary operator with `s`-scaled regularization rows
/// appended. Running plain CGLS on the stack minimizes
/// `‖y − A·x‖² + s²·‖D·x‖²` (Tikhonov for `D = I`, gradient smoothing
/// for `D` from [`crate::gradient_operator`]).
pub struct StackedOperator<'a> {
    primary: &'a dyn ProjectionOperator,
    d: &'a CsrMatrix,
    dt: &'a CsrMatrix,
    scale: f32,
    scratch: RefCell<Vec<f32>>,
}

impl<'a> StackedOperator<'a> {
    /// Stack `d` (with transpose `dt`) under `primary`, scaled by `scale`.
    ///
    /// # Panics
    /// Panics if `d` does not have the primary operator's column count.
    pub fn new(
        primary: &'a dyn ProjectionOperator,
        d: &'a CsrMatrix,
        dt: &'a CsrMatrix,
        scale: f32,
    ) -> Self {
        // lint: allow(no-panic) documented constructor precondition
        assert_eq!(d.ncols(), primary.ncols(), "regularizer column count");
        // lint: allow(no-panic) documented constructor precondition
        assert_eq!(dt.nrows(), primary.ncols(), "transpose shape");
        // lint: allow(no-panic) documented constructor precondition
        assert_eq!(dt.ncols(), d.nrows(), "transpose shape");
        StackedOperator {
            primary,
            d,
            dt,
            scale,
            scratch: RefCell::new(Vec::new()),
        }
    }
}

impl ProjectionOperator for StackedOperator<'_> {
    fn nrows(&self) -> usize {
        self.primary.nrows() + self.d.nrows()
    }
    fn ncols(&self) -> usize {
        self.primary.ncols()
    }
    fn forward_into(&self, x: &[f32], y: &mut [f32]) {
        let ny = self.primary.nrows();
        let (data, reg) = y.split_at_mut(ny);
        self.primary.forward_into(x, data);
        spmv_into(self.d, x, reg);
        for v in reg.iter_mut() {
            *v *= self.scale;
        }
    }
    fn back_into(&self, y: &[f32], x: &mut [f32]) {
        let ny = self.primary.nrows();
        self.primary.back_into(&y[..ny], x);
        let mut g = self.scratch.borrow_mut();
        g.resize(self.dt.nrows(), 0.0);
        spmv_into(self.dt, &y[ny..], &mut g);
        for (o, &v) in x.iter_mut().zip(g.iter()) {
            *o += self.scale * v;
        }
    }
    fn reduce_dot(&self, local: f64) -> f64 {
        self.primary.reduce_dot(local)
    }
    fn breakdown(&self) -> Option<KernelBreakdown> {
        self.primary.breakdown()
    }
}

/// A row subset of a projection operator: the extracted block `A[rows, :]`
/// and its transpose, plus the global row ids needed to gather the
/// matching slice of a full measurement vector. Ordered-subsets SIRT runs
/// one of these per subset.
pub struct RowSubsetOperator<'a> {
    rows: &'a [u32],
    block: &'a CsrMatrix,
    block_t: &'a CsrMatrix,
    meter: SpmvMeter,
}

impl<'a> RowSubsetOperator<'a> {
    /// Wrap an extracted row block. `rows[i]` is the global row id of the
    /// block's row `i`.
    pub fn new(rows: &'a [u32], block: &'a CsrMatrix, block_t: &'a CsrMatrix) -> Self {
        // lint: allow(no-panic) documented constructor precondition
        assert_eq!(rows.len(), block.nrows(), "row id per block row");
        RowSubsetOperator {
            rows,
            block,
            block_t,
            meter: SpmvMeter::new(Metrics::collecting(), "subset"),
        }
    }

    /// Record into `metrics` instead of a private registry.
    pub fn with_metrics(mut self, metrics: Metrics) -> Self {
        self.meter.metrics = metrics;
        self
    }

    /// Global row ids of this subset.
    pub fn rows(&self) -> &[u32] {
        self.rows
    }

    /// Gather the subset's slice of a full measurement vector.
    pub fn gather(&self, full: &[f32]) -> Vec<f32> {
        self.rows.iter().map(|&r| full[r as usize]).collect()
    }
}

impl ProjectionOperator for RowSubsetOperator<'_> {
    fn nrows(&self) -> usize {
        self.block.nrows()
    }
    fn ncols(&self) -> usize {
        self.block.ncols()
    }
    fn forward_into(&self, x: &[f32], y: &mut [f32]) {
        let t = self.meter.start();
        spmv_into(self.block, x, y);
        self.meter
            .record(t, self.block.nnz() as u64, self.block.regular_bytes());
    }
    fn back_into(&self, y: &[f32], x: &mut [f32]) {
        let t = self.meter.start();
        spmv_into(self.block_t, y, x);
        self.meter
            .record(t, self.block_t.nnz() as u64, self.block_t.regular_bytes());
    }
    fn breakdown(&self) -> Option<KernelBreakdown> {
        self.meter.breakdown()
    }
}

impl Operators {
    /// Build the [`ProjectionOperator`] for the chosen kernel over these
    /// memoized matrices.
    ///
    /// # Panics
    /// Panics if the requested layout was not built (see `Config`).
    pub fn operator(&self, kernel: Kernel) -> Box<dyn ProjectionOperator + '_> {
        self.operator_with_metrics(kernel, Metrics::collecting())
    }

    /// Like [`Operators::operator`], but recording into a caller-supplied
    /// metrics handle (shared registry, or [`Metrics::noop`] for zero-cost
    /// instrumentation).
    ///
    /// # Panics
    /// Panics if the requested layout was not built (see `Config`).
    pub fn operator_with_metrics(
        &self,
        kernel: Kernel,
        metrics: Metrics,
    ) -> Box<dyn ProjectionOperator + '_> {
        match kernel {
            Kernel::Serial => Box::new(SerialOperator::new(self).with_metrics(metrics)),
            Kernel::Parallel => Box::new(ParallelOperator::new(self).with_metrics(metrics)),
            Kernel::Ell => Box::new(EllOperator::new(self).with_metrics(metrics)),
            Kernel::Buffered => Box::new(BufferedOperator::new(self).with_metrics(metrics)),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::preprocess::{preprocess, Config};
    use xct_geometry::{Grid, ScanGeometry};
    use xct_sparse::{dot_f64, BufferedCsr32};

    fn ops(n: u32, m: u32) -> Operators {
        preprocess(
            Grid::new(n),
            ScanGeometry::new(m, n),
            &Config {
                build_ell: true,
                ..Config::default()
            },
        )
    }

    #[test]
    fn all_backends_match_serial() {
        let ops = ops(8, 6);
        let x: Vec<f32> = (0..ops.a.ncols()).map(|i| (i % 7) as f32 * 0.25).collect();
        let y: Vec<f32> = (0..ops.a.nrows()).map(|i| (i % 5) as f32 * 0.5).collect();

        let serial = SerialOperator::new(&ops);
        let mut want_f = vec![0f32; serial.nrows()];
        let mut want_b = vec![0f32; serial.ncols()];
        serial.forward_into(&x, &mut want_f);
        serial.back_into(&y, &mut want_b);

        let a32 = BufferedCsr32::from_csr(&ops.a, ops.partsize, 2048);
        let at32 = BufferedCsr32::from_csr(&ops.at, ops.partsize, 2048);
        let backends: Vec<Box<dyn ProjectionOperator>> = vec![
            Box::new(ParallelOperator::new(&ops)),
            Box::new(BufferedOperator::new(&ops)),
            Box::new(BufferedOperator::from_parts(&a32, &at32)),
            Box::new(EllOperator::new(&ops)),
        ];
        for op in backends {
            assert_eq!(op.nrows(), serial.nrows());
            assert_eq!(op.ncols(), serial.ncols());
            let mut f = vec![1f32; op.nrows()];
            let mut b = vec![1f32; op.ncols()];
            op.forward_into(&x, &mut f);
            op.back_into(&y, &mut b);
            for (g, w) in f.iter().zip(&want_f) {
                assert!((g - w).abs() < 1e-4, "forward mismatch");
            }
            for (g, w) in b.iter().zip(&want_b) {
                assert!((g - w).abs() < 1e-4, "back mismatch");
            }
            // Identity reduction and timing hook.
            assert_eq!(op.reduce_dot(3.25), 3.25);
            let kb = op.breakdown().expect("timed backend");
            assert!(kb.ap_s > 0.0 && kb.c_s == 0.0 && kb.r_s == 0.0);
        }
    }

    #[test]
    fn closure_operator_applies_closures() {
        let op = ClosureOperator::new(
            2,
            3,
            |x: &[f32]| vec![x[0] + x[1], x[2]],
            |y: &[f32]| vec![y[0], y[0], y[1]],
        );
        let mut y = vec![0f32; 2];
        op.forward_into(&[1.0, 2.0, 3.0], &mut y);
        assert_eq!(y, vec![3.0, 3.0]);
        let mut x = vec![0f32; 3];
        op.back_into(&[5.0, 7.0], &mut x);
        assert_eq!(x, vec![5.0, 5.0, 7.0]);
        assert!(op.breakdown().is_none());
    }

    #[test]
    fn stacked_operator_appends_scaled_rows() {
        let ops = ops(6, 4);
        let primary = SerialOperator::new(&ops);
        let d = crate::regularize::gradient_operator(&ops.tomo_ord);
        let dt = d.transpose_scan();
        let s = 0.5f32;
        let stack = StackedOperator::new(&primary, &d, &dt, s);
        assert_eq!(stack.nrows(), primary.nrows() + d.nrows());
        assert_eq!(stack.ncols(), primary.ncols());

        let x: Vec<f32> = (0..stack.ncols()).map(|i| i as f32 * 0.1).collect();
        let mut y = vec![0f32; stack.nrows()];
        stack.forward_into(&x, &mut y);
        let g = xct_sparse::spmv(&d, &x);
        for (i, &gi) in g.iter().enumerate() {
            assert_eq!(y[primary.nrows() + i], gi * s);
        }

        // ⟨A_s·x, y_aug⟩ == ⟨x, A_sᵀ·y_aug⟩ (adjoint consistency).
        let y_aug: Vec<f32> = (0..stack.nrows()).map(|i| ((i % 3) as f32) - 1.0).collect();
        let mut bt = vec![0f32; stack.ncols()];
        stack.back_into(&y_aug, &mut bt);
        let lhs = dot_f64(&y, &y_aug);
        let rhs = dot_f64(&x, &bt);
        assert!((lhs - rhs).abs() < 1e-3 * lhs.abs().max(1.0));
    }

    #[test]
    fn row_subset_gathers_and_projects() {
        let ops = ops(6, 4);
        let rows: Vec<u32> = (0..ops.a.nrows() as u32).step_by(2).collect();
        let block = CsrMatrix::from_rows(
            ops.a.ncols(),
            &rows
                .iter()
                .map(|&r| ops.a.row(r as usize).collect::<Vec<_>>())
                .collect::<Vec<_>>(),
        );
        let block_t = block.transpose_scan();
        let sub = RowSubsetOperator::new(&rows, &block, &block_t);
        assert_eq!(sub.nrows(), rows.len());

        let x: Vec<f32> = (0..sub.ncols()).map(|i| (i % 4) as f32).collect();
        let full = ops.forward(Kernel::Serial, &x);
        let mut part = vec![0f32; sub.nrows()];
        sub.forward_into(&x, &mut part);
        assert_eq!(part, sub.gather(&full));
    }

    #[test]
    fn shared_registry_collects_spmv_counters() {
        let ops = ops(8, 6);
        let m = Metrics::collecting();
        let op = ops.operator_with_metrics(Kernel::Buffered, m.clone());
        let x = vec![1f32; op.ncols()];
        let mut y = vec![0f32; op.nrows()];
        op.forward_into(&x, &mut y);
        op.forward_into(&x, &mut y);
        let snap = m.snapshot();
        assert_eq!(snap.counters["spmv/buffered/calls"], 2);
        assert_eq!(
            snap.counters["spmv/buffered/nnz"],
            2 * ops.a.nnz() as u64,
            "nnz per call"
        );
        assert!(snap.counters["spmv/buffered/bytes"] > 0);
        assert!(snap.counters["spmv/buffered/stages"] >= 2);
        assert_eq!(snap.timers["kernel/ap_s"].count, 2);
        // breakdown() is a view over the same registry.
        let kb = op.breakdown().expect("collecting");
        assert_eq!(kb.ap_s, snap.timers["kernel/ap_s"].total_s);
    }

    #[test]
    fn noop_metrics_record_nothing_and_hide_breakdown() {
        let ops = ops(8, 6);
        let op = ops.operator_with_metrics(Kernel::Serial, Metrics::noop());
        let x = vec![1f32; op.ncols()];
        let mut y = vec![0f32; op.nrows()];
        op.forward_into(&x, &mut y);
        assert!(op.breakdown().is_none(), "noop has no timings to report");
    }

    #[test]
    fn operators_factory_covers_all_kernels() {
        let ops = ops(6, 4);
        let x: Vec<f32> = (0..ops.a.ncols()).map(|i| (i % 3) as f32).collect();
        let want = ops.forward(Kernel::Serial, &x);
        for kernel in [
            Kernel::Serial,
            Kernel::Parallel,
            Kernel::Ell,
            Kernel::Buffered,
        ] {
            let op = ops.operator(kernel);
            let mut y = vec![0f32; op.nrows()];
            op.forward_into(&x, &mut y);
            for (g, w) in y.iter().zip(&want) {
                assert!((g - w).abs() < 1e-4, "{kernel:?}");
            }
        }
    }
}

//! One-stop imports for typical reconstructions:
//! `use memxct::prelude::*;` brings in the builder and high-level API,
//! the operator trait and solver engine, the error and configuration
//! types, and the observability handles (re-exported from [`xct_obs`]).
//!
//! ```
//! use memxct::prelude::*;
//! use xct_geometry::{Grid, ScanGeometry};
//!
//! let rec = ReconstructorBuilder::new(Grid::new(16), ScanGeometry::new(12, 16))
//!     .build()
//!     .unwrap();
//! assert_eq!(rec.kernel(), Kernel::Buffered);
//! ```

pub use crate::checkpoint::{plan_fingerprint, validate_snapshot};
pub use crate::dist::{
    reconstruct_distributed, try_reconstruct_distributed, try_reconstruct_distributed_ft,
    DistConfig, DistOutput, DistSolver, FaultTolerance,
};
pub use crate::errors::BuildError;
pub use crate::fbp::{fbp, FbpConfig};
pub use crate::operator::{KernelBreakdown, ProjectionOperator};
pub use crate::plan_check::{dist_checker, plan_checker, validate_plan};
pub use crate::preprocess::{
    preprocess, try_preprocess, Config, DomainOrdering, Kernel, Operators, Projector,
};
pub use crate::reconstructor::{
    BatchOutput, ReconOutput, Reconstructor, ReconstructorBuilder, VolumeOutput,
};
pub use crate::request::{
    CheckpointPolicy, DistDetail, ExecMode, ReconError, ReconInput, ReconRequest, ReconResponse,
    RunControl, RunOutcome, Solver,
};
pub use crate::solvers::{
    cgls, cgls_regularized, run_engine, run_engine_batched, run_engine_batched_in,
    run_engine_with_metrics, sirt, sirt_nonneg, CgRule, Constraint, IterationRecord, SirtRule,
    StopRule, UpdateRule,
};
pub use crate::subsets::{OrderedSubsets, OsRule};
pub use xct_obs::{Metrics, MetricsSnapshot, TimerSummary};
pub use xct_runtime::{
    CheckpointError, CheckpointSink, CommConfig, CommError, CommErrorKind, FaultKind, FaultPlan,
    FaultSpec, FaultStats, FileCheckpointSink, MemoryCheckpointSink, Snapshot,
};

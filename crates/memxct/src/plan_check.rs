//! Plan-level composition of the `xct-check` invariant analysis.
//!
//! `xct-check` knows how to validate one structure at a time; this module
//! knows which structures a preprocessed plan actually holds and how they
//! relate. [`plan_checker`] sweeps every memoized artifact in an
//! [`Operators`] (matrices, transpose pair, buffered/ELL layouts,
//! orderings); [`dist_checker`] extends the sweep to distributed
//! [`RankPlan`]s (domain partitions, local operators, the alltoallv
//! schedule); [`ledger_check`] reconciles an observed `comm/bytes` matrix
//! (the `xct-obs` export fed by the runtime's `CommLedger`) against the
//! traffic the schedule predicts.
//!
//! Validation is read-only: a validated build is bit-identical to an
//! unvalidated one.

use crate::dist::RankPlan;
use crate::operator::PooledPlans;
use crate::preprocess::Operators;
use xct_check::{
    BufferedCheck, Checker, CsrCheck, EllCheck, ExecPlanCheck, LedgerCheck, PartitionCheck,
    PermutationCheck, Report, ScheduleCheck, TransposeCheck,
};

/// A [`Checker`] over every memoized structure the plan holds: CSR
/// well-formedness of `A` and `At`, the transpose-pair relation, buffered
/// layouts against their sources, ELL layouts against their sources, and
/// both domain orderings as bijections.
pub fn plan_checker(ops: &Operators) -> Checker<'_> {
    let mut c = Checker::new();
    c.add(CsrCheck::new("csr(A)", &ops.a));
    // Transposed rows are sorted by original row index (§3.5.1), so the
    // stronger sortedness invariant holds for At.
    c.add(CsrCheck::new("csr(At)", &ops.at).require_sorted_columns());
    c.add(TransposeCheck::new("pair(A,At)", &ops.a, &ops.at));
    c.add(PermutationCheck::of_ordering(
        "ordering(tomogram)",
        &ops.tomo_ord,
    ));
    c.add(PermutationCheck::of_ordering(
        "ordering(sinogram)",
        &ops.sino_ord,
    ));
    if let Some(b) = &ops.a_buf {
        c.add(BufferedCheck::new("buffered(A)", b).with_source(&ops.a));
    }
    if let Some(b) = &ops.at_buf {
        c.add(BufferedCheck::new("buffered(At)", b).with_source(&ops.at));
    }
    if let Some(e) = &ops.a_ell {
        c.add(EllCheck::new("ell(A)", e, &ops.a, ops.partsize));
    }
    if let Some(e) = &ops.at_ell {
        c.add(EllCheck::new("ell(At)", e, &ops.at, ops.partsize));
    }
    c
}

/// Run [`plan_checker`] into a fresh [`Report`].
pub fn validate_plan(ops: &Operators) -> Report {
    plan_checker(ops).run()
}

/// A [`Checker`] over the static execution plans of a pooled
/// reconstructor: every plan's partition bounds must tile its domain,
/// its `weights`/`assign` arrays must be structurally sound, and every
/// worker's assigned weight must respect the greedy split's balance
/// bound.
pub fn exec_checker(plans: &PooledPlans) -> Checker<'_> {
    let mut c = Checker::new();
    for (name, plan) in plans.all() {
        c.add(ExecPlanCheck::new(
            name,
            plan.rows(),
            plan.bounds().to_vec(),
            plan.weights().to_vec(),
            plan.assign().to_vec(),
            plan.max_unit_weight(),
        ));
    }
    c
}

/// A [`Checker`] over distributed rank plans: both domain partitions cover
/// their domains disjointly, every local operator pair is well-formed, and
/// the alltoallv schedule is pairwise consistent (what the owner of a
/// sinogram block plans to duplicate to rank `s` is exactly what `s`
/// expects, ascending, and owned by the sender).
pub fn dist_checker<'a>(ops: &Operators, plans: &'a [RankPlan]) -> Checker<'a> {
    let mut c = Checker::new();
    c.add(PartitionCheck::new(
        "partition(tomogram)",
        ops.a.ncols(),
        plans
            .iter()
            .map(|p| p.tomo_range.start as usize..p.tomo_range.end as usize)
            .collect(),
    ));
    let sino_owners: Vec<std::ops::Range<usize>> = plans
        .iter()
        .map(|p| p.sino_range.start as usize..p.sino_range.end as usize)
        .collect();
    c.add(PartitionCheck::new(
        "partition(sinogram)",
        ops.a.nrows(),
        sino_owners.clone(),
    ));
    for plan in plans {
        let r = plan.rank;
        c.add(CsrCheck::new(format!("csr(A_p[{r}])"), &plan.a_local));
        c.add(CsrCheck::new(format!("csr(A_p[{r}]^T)"), &plan.at_local).require_sorted_columns());
        c.add(TransposeCheck::new(
            format!("pair(A_p[{r}])"),
            &plan.a_local,
            &plan.at_local,
        ));
        if let Some(b) = &plan.a_local_buf {
            c.add(BufferedCheck::new(format!("buffered(A_p[{r}])"), b).with_source(&plan.a_local));
        }
        if let Some(b) = &plan.at_local_buf {
            c.add(
                BufferedCheck::new(format!("buffered(A_p[{r}]^T)"), b).with_source(&plan.at_local),
            );
        }
    }
    // Backprojection-direction schedule (Rᵀ): the owner of each sinogram
    // block sends `rows_from[dst]` to each peer, and each peer expects its
    // interaction rows back. Both sides must derive the same row lists.
    let sends: Vec<Vec<Vec<u32>>> = plans.iter().map(|p| p.rows_from.clone()).collect();
    let recvs: Vec<Vec<Vec<u32>>> = plans
        .iter()
        .map(|p| {
            (0..plans.len())
                .map(|q| p.inter_rows[p.dest_ranges[q].clone()].to_vec())
                .collect()
        })
        .collect();
    c.add(ScheduleCheck::new(
        "schedule(alltoallv)",
        sino_owners,
        sends,
        recvs,
    ));
    c
}

/// A [`LedgerCheck`] reconciling an observed per-pair byte matrix with the
/// data-plane traffic the plans predict for `forwards` forward and `backs`
/// backprojection applications. Per off-diagonal pair `(s, q)` the schedule
/// predicts `4·|dest_ranges[s][q]|` bytes per forward (partials routed to
/// the owner) and `4·|rows_from[s][q]|` bytes per backprojection (owned
/// values duplicated back); whatever remains must be the uniform 8-byte
/// [`crate::dist::allreduce_f64`] control traffic.
pub fn ledger_check(
    name: impl Into<String>,
    plans: &[RankPlan],
    observed: Vec<u64>,
    forwards: u64,
    backs: u64,
) -> LedgerCheck {
    let n = plans.len();
    let mut predicted = vec![0u64; n * n];
    for (s, plan) in plans.iter().enumerate() {
        for q in 0..n {
            if s == q {
                continue;
            }
            let fwd = plan.dest_ranges[q].len() as u64;
            let back = plan.rows_from[q].len() as u64;
            predicted[s * n + q] = forwards * 4 * fwd + backs * 4 * back;
        }
    }
    LedgerCheck::new(name, n, observed, predicted, 8)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dist::{build_plans, DistConfig, DistSolver};
    use crate::preprocess::{preprocess, Config};
    use crate::solvers::StopRule;
    use xct_geometry::{disk, simulate_sinogram, Grid, NoiseModel, ScanGeometry};

    fn setup(n: u32, m: u32, build_ell: bool) -> (Operators, Vec<f32>) {
        let grid = Grid::new(n);
        let scan = ScanGeometry::new(m, n);
        let img = disk(0.6, 1.0).rasterize(n);
        let sino = simulate_sinogram(&img, &grid, &scan, NoiseModel::None, 0);
        let config = Config {
            build_ell,
            ..Config::default()
        };
        let ops = preprocess(grid, scan, &config);
        let y = ops.order_sinogram(&sino);
        (ops, y)
    }

    #[test]
    fn preprocessed_plan_is_clean() {
        let (ops, _) = setup(16, 12, true);
        let report = validate_plan(&ops);
        assert!(report.is_ok(), "{report}");
        // The sweep actually covered every memoized structure.
        assert_eq!(plan_checker(&ops).len(), 9);
    }

    #[test]
    fn dist_plans_are_clean() {
        let (ops, _) = setup(16, 12, false);
        for ranks in [1, 3] {
            let plans = build_plans(&ops, ranks, true);
            let report = dist_checker(&ops, &plans).run();
            assert!(report.is_ok(), "ranks {ranks}: {report}");
        }
    }

    #[test]
    fn ledger_reconciles_a_real_run() {
        let (ops, y) = setup(16, 12, false);
        let iters = 4;
        let out = crate::dist::reconstruct_distributed(
            &ops,
            &y,
            &DistConfig {
                ranks: 3,
                use_buffered: false,
                stop: StopRule::Fixed(iters),
                solver: DistSolver::Cg,
            },
        );
        let plans = build_plans(&ops, 3, false);
        // CG applies A once per iteration and Aᵀ once per iteration plus
        // once for the initial gradient.
        let check = ledger_check(
            "ledger",
            &plans,
            out.ledger.byte_matrix(),
            iters as u64,
            iters as u64 + 1,
        );
        let mut report = Report::new();
        xct_check::Check::run(&check, &mut report);
        assert!(report.is_ok(), "{report}");
    }

    #[test]
    fn ledger_detects_a_corrupted_schedule() {
        let (ops, y) = setup(16, 12, false);
        let out = crate::dist::reconstruct_distributed(
            &ops,
            &y,
            &DistConfig {
                ranks: 3,
                use_buffered: false,
                stop: StopRule::Fixed(2),
                solver: DistSolver::Cg,
            },
        );
        let mut plans = build_plans(&ops, 3, false);
        // Pretend rank 0 planned to send one fewer row to rank 1: the
        // residual for that pair no longer matches the others.
        let r = plans[0].dest_ranges[1].clone();
        if r.len() > 1 {
            plans[0].dest_ranges[1] = r.start..r.end - 1;
        }
        let check = ledger_check("ledger", &plans, out.ledger.byte_matrix(), 2, 3);
        let mut report = Report::new();
        xct_check::Check::run(&check, &mut report);
        assert!(
            report.has(xct_check::Invariant::LedgerReconciliation),
            "{report}"
        );
    }
}

//! Ordered-subsets solvers over the memoized operators.
//!
//! The paper notes (§3.5.2) that other iteration schemes — SIRT, SGD,
//! ICD — "can be implemented for our proposed memory-centric approach in a
//! plug-and-play manner": any solver that applies row blocks of `A` reuses
//! the memoized matrices. This module demonstrates that with
//! ordered-subsets SIRT / stochastic gradient descent (the scheme of
//! cuMBIR, the paper's GPU-framework comparison): each sub-iteration
//! applies only the rays of one projection-angle subset, converging in
//! far fewer full passes over the data.

use crate::operator::{ProjectionOperator, RowSubsetOperator};
use crate::preprocess::Operators;
use crate::solvers::{
    run_engine, Constraint, IterationRecord, SolverWorkspace, StopRule, UpdateRule,
};
use xct_sparse::{spmv, CsrMatrix};

/// The row blocks of `A` for one angle-interleaved subset.
struct Subset {
    /// Rows of `A` (ordered coordinates) in this subset.
    rows: Vec<u32>,
    /// The row block (rows × full tomogram).
    block: CsrMatrix,
    /// Its transpose.
    block_t: CsrMatrix,
    /// SIRT row weights (1/row sums).
    row_w: Vec<f32>,
    /// SIRT column weights over this block.
    col_w: Vec<f32>,
}

/// Ordered-subsets SIRT (OS-SIRT / SART family) on the memoized operators.
///
/// `num_subsets` angle-interleaved subsets per full iteration; subsets are
/// visited in a fixed bit-reversal-like interleave for better angular
/// coverage. One "iteration" in the returned records is one full pass over
/// all subsets.
pub struct OrderedSubsets {
    subsets: Vec<Subset>,
    nx: usize,
}

impl OrderedSubsets {
    /// Split the memoized forward matrix into `num_subsets` angle
    /// interleaves (subset `k` holds the rays of projections
    /// `p ≡ k (mod num_subsets)`).
    pub fn new(ops: &Operators, num_subsets: usize) -> Self {
        // lint: allow(no-panic) documented parameter precondition
        assert!(num_subsets > 0);
        let m = ops.scan.num_projections() as usize;
        // lint: allow(no-panic) documented parameter precondition
        assert!(
            num_subsets <= m,
            "cannot have more subsets than projections"
        );
        let mut rows_by_subset: Vec<Vec<u32>> = vec![Vec::new(); num_subsets];
        // in-range: row ranks are u32 by the CSR layout
        for rank in 0..ops.a.nrows() as u32 {
            let (_chan, proj) = ops.sino_ord.cell(rank);
            rows_by_subset[(proj as usize) % num_subsets].push(rank);
        }
        let subsets = rows_by_subset
            .into_iter()
            .map(|rows| {
                let row_data: Vec<Vec<(u32, f32)>> = rows
                    .iter()
                    .map(|&r| ops.a.row(r as usize).collect())
                    .collect();
                let block = CsrMatrix::from_rows(ops.a.ncols(), &row_data);
                let block_t = block.transpose_scan();
                let inv = |v: f32| if v > 0.0 { 1.0 / v } else { 0.0 };
                let row_w: Vec<f32> = (0..block.nrows())
                    .map(|i| inv(block.row(i).map(|(_, v)| v).sum()))
                    .collect();
                let mut col_sum = vec![0f32; block.ncols()];
                for i in 0..block.nrows() {
                    for (c, v) in block.row(i) {
                        col_sum[c as usize] += v;
                    }
                }
                let col_w: Vec<f32> = col_sum.into_iter().map(inv).collect();
                Subset {
                    rows,
                    block,
                    block_t,
                    row_w,
                    col_w,
                }
            })
            .collect();
        OrderedSubsets {
            subsets,
            nx: ops.a.ncols(),
        }
    }

    /// Number of subsets.
    pub fn num_subsets(&self) -> usize {
        self.subsets.len()
    }

    /// The OS-SIRT update rule over these subsets; `relaxation` scales
    /// each sub-update (1.0 = plain SART step). Feed it to
    /// [`run_engine`] together with `self` as the operator.
    pub fn rule(&self, relaxation: f32) -> OsRule<'_> {
        // lint: allow(no-panic) documented parameter precondition
        assert!(relaxation > 0.0);
        OsRule {
            subsets: &self.subsets,
            views: self
                .subsets
                .iter()
                .map(|s| RowSubsetOperator::new(&s.rows, &s.block, &s.block_t))
                .collect(),
            relaxation,
        }
    }

    /// Run `iters` full passes of OS-SIRT from zero — a thin shim over
    /// [`run_engine`] with [`OsRule`]. `y_ordered` is the measurement
    /// vector in sinogram-ordered coordinates.
    pub fn solve(
        &self,
        y_ordered: &[f32],
        iters: usize,
        relaxation: f32,
    ) -> (Vec<f32>, Vec<IterationRecord>) {
        let mut rule = self.rule(relaxation);
        run_engine(
            self,
            y_ordered,
            &mut rule,
            Constraint::None,
            StopRule::Fixed(iters),
        )
    }
}

/// The subset decomposition *is* a projection operator: forward scatters
/// each subset's rows into their global positions (the subsets partition
/// the sinogram), backprojection sums the per-subset transposes.
impl ProjectionOperator for OrderedSubsets {
    fn nrows(&self) -> usize {
        self.subsets.iter().map(|s| s.rows.len()).sum()
    }
    fn ncols(&self) -> usize {
        self.nx
    }
    fn forward_into(&self, x: &[f32], y: &mut [f32]) {
        for sub in &self.subsets {
            let r = spmv(&sub.block, x);
            for (&row, v) in sub.rows.iter().zip(r) {
                y[row as usize] = v;
            }
        }
    }
    fn back_into(&self, y: &[f32], x: &mut [f32]) {
        x.fill(0.0);
        for sub in &self.subsets {
            let ys: Vec<f32> = sub.rows.iter().map(|&r| y[r as usize]).collect();
            for (xi, ui) in x.iter_mut().zip(spmv(&sub.block_t, &ys)) {
                *xi += ui;
            }
        }
    }
}

/// One OS-SIRT pass: a relaxed SIRT sub-update per subset (through its
/// [`RowSubsetOperator`] view), then the full residual over all subsets.
pub struct OsRule<'a> {
    subsets: &'a [Subset],
    views: Vec<RowSubsetOperator<'a>>,
    relaxation: f32,
}

impl UpdateRule for OsRule<'_> {
    fn step(
        &mut self,
        _op: &dyn ProjectionOperator,
        y: &[f32],
        ws: &mut SolverWorkspace,
    ) -> Option<f64> {
        let x = ws.x_mut();
        for (sub, view) in self.subsets.iter().zip(&self.views) {
            // Residual restricted to the subset's rays.
            let mut r = vec![0f32; view.nrows()];
            view.forward_into(x, &mut r);
            for (ri, &row) in r.iter_mut().zip(view.rows()) {
                *ri = y[row as usize] - *ri;
            }
            for (ri, &w) in r.iter_mut().zip(&sub.row_w) {
                *ri *= w;
            }
            let mut u = vec![0f32; view.ncols()];
            view.back_into(&r, &mut u);
            for ((xi, &ui), &w) in x.iter_mut().zip(&u).zip(&sub.col_w) {
                *xi += self.relaxation * ui * w;
            }
        }
        // Full residual for the record (over all subsets).
        let mut res_sq = 0f64;
        for view in &self.views {
            let mut r = vec![0f32; view.nrows()];
            view.forward_into(x, &mut r);
            for (ri, &row) in r.iter().zip(view.rows()) {
                let d = (y[row as usize] - ri) as f64;
                res_sq += d * d;
            }
        }
        Some(res_sq.sqrt())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::preprocess::{preprocess, Config, Kernel};
    use crate::solvers::sirt;
    use xct_geometry::{disk, simulate_sinogram, Grid, NoiseModel, ScanGeometry};

    fn setup() -> (Operators, Vec<f32>, Vec<f32>) {
        let n = 24u32;
        let m = 36u32;
        let grid = Grid::new(n);
        let scan = ScanGeometry::new(m, n);
        let img = disk(0.6, 1.0).rasterize(n);
        let sino = simulate_sinogram(&img, &grid, &scan, NoiseModel::None, 0);
        let ops = preprocess(grid, scan, &Config::default());
        let y = ops.order_sinogram(&sino);
        let x_true = ops.order_tomogram(&img);
        (ops, y, x_true)
    }

    fn rel_err(a: &[f32], b: &[f32]) -> f64 {
        let num: f64 = a
            .iter()
            .zip(b)
            .map(|(&x, &y)| ((x - y) as f64).powi(2))
            .sum::<f64>()
            .sqrt();
        let den: f64 = b.iter().map(|&y| (y as f64).powi(2)).sum::<f64>().sqrt();
        num / den
    }

    #[test]
    fn subsets_partition_all_rows() {
        let (ops, _, _) = setup();
        let os = OrderedSubsets::new(&ops, 6);
        let total: usize = os.subsets.iter().map(|s| s.rows.len()).sum();
        assert_eq!(total, ops.a.nrows());
        let total_nnz: usize = os.subsets.iter().map(|s| s.block.nnz()).sum();
        assert_eq!(total_nnz, ops.a.nnz());
    }

    #[test]
    fn one_subset_equals_plain_sirt() {
        let (ops, y, _) = setup();
        let os = OrderedSubsets::new(&ops, 1);
        let (x_os, _) = os.solve(&y, 8, 1.0);
        let (x_plain, _) = sirt(
            &y,
            ops.a.ncols(),
            |p| ops.forward(Kernel::Serial, p),
            |r| ops.back(Kernel::Serial, r),
            8,
        );
        assert!(
            rel_err(&x_os, &x_plain) < 1e-4,
            "err {}",
            rel_err(&x_os, &x_plain)
        );
    }

    #[test]
    fn more_subsets_converge_faster_per_pass() {
        // The whole point of ordered subsets: after the same number of
        // full data passes, more subsets => smaller residual.
        let (ops, y, _) = setup();
        let passes = 4;
        let (_, recs1) = OrderedSubsets::new(&ops, 1).solve(&y, passes, 1.0);
        let (_, recs6) = OrderedSubsets::new(&ops, 6).solve(&y, passes, 1.0);
        assert!(
            recs6.last().unwrap().residual_norm < recs1.last().unwrap().residual_norm,
            "6 subsets {} should beat 1 subset {}",
            recs6.last().unwrap().residual_norm,
            recs1.last().unwrap().residual_norm
        );
    }

    #[test]
    fn os_sirt_recovers_the_disk() {
        let (ops, y, x_true) = setup();
        let os = OrderedSubsets::new(&ops, 6);
        let (x, _) = os.solve(&y, 10, 1.0);
        assert!(rel_err(&x, &x_true) < 0.25, "err {}", rel_err(&x, &x_true));
    }

    #[test]
    #[should_panic(expected = "subsets than projections")]
    fn too_many_subsets_rejected() {
        let (ops, _, _) = setup();
        OrderedSubsets::new(&ops, 10_000);
    }
}

//! The unified reconstruction request API: one value that fully
//! describes a reconstruction job, executed by [`Reconstructor::run`].
//!
//! MemXCT's economics are memoization — preprocessing is paid once per
//! geometry and amortized over every subsequent solve (Table 5's "All
//! Slices"). Lifting that from "per process" to "per fleet" needs a
//! front door that is *one* request type a service can queue, schedule,
//! checkpoint, and replay, instead of the historical method matrix
//! (`reconstruct_cg`, `try_reconstruct_sirt_batch`,
//! `try_reconstruct_distributed_ft`, …). A [`ReconRequest`] names:
//!
//! - **what** to solve: [`Solver`] (CG or relaxed SIRT) under a
//!   [`StopRule`],
//! - **over which data**: a [`ReconInput`] — one slice, a batched group
//!   solved through the SpMM path, or a whole volume chunked by the
//!   reconstructor's batch width,
//! - **how**: an [`ExecMode`] — serial kernels, the persistent worker
//!   pool, or the distributed threads-as-ranks path with an optional
//!   fault-tolerance override,
//! - **with what durability**: an optional [`CheckpointPolicy`]
//!   overriding the builder's checkpoint/resume configuration.
//!
//! [`Reconstructor::run`] is the single entry point; every legacy method
//! is a thin deprecated shim over it. [`Reconstructor::run_controlled`]
//! adds cooperative preemption on top: a scheduler hands in a
//! [`RunControl`], and when preemption is requested the solve checkpoints
//! at the next iteration boundary and returns
//! [`RunOutcome::Preempted`] — resuming the same request later produces
//! bit-identical output (the PR 5 checkpoint guarantee). The `xct-serve`
//! job runtime is built on exactly this mechanism.
//!
//! [`Reconstructor::run`]: crate::Reconstructor::run
//! [`Reconstructor::run_controlled`]: crate::Reconstructor::run_controlled

use std::fmt;
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::Arc;

use crate::dist::{DistConfig, FaultTolerance};
use crate::errors::BuildError;
use crate::operator::KernelBreakdown;
use crate::solvers::{IterationRecord, StopRule};
use xct_geometry::Sinogram;
use xct_runtime::{CheckpointSink, CommLedger, FileCheckpointSink, KernelVolumes};

/// Which update rule drives the solve.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Solver {
    /// Conjugate gradient on the least-squares system (CGLS), the
    /// paper's solver.
    Cg,
    /// SIRT with row/column-sum normalization.
    Sirt {
        /// Relaxation factor (must be positive; 1.0 is the classical
        /// scheme and what the legacy entry points used).
        relax: f32,
    },
}

/// The measurement data a request reconstructs.
#[derive(Debug, Clone)]
pub enum ReconInput {
    /// One sinogram, one image. Requires a reconstructor built with
    /// batch width 1.
    Slice(Sinogram),
    /// Exactly `batch` sinograms solved together in one engine run (every
    /// SpMV becomes an SpMM streaming the matrix once for the group).
    /// Column `j` is bit-identical to solving slice `j` alone.
    Batch(Vec<Sinogram>),
    /// A slice stack of any length, chunked by the reconstructor's batch
    /// width (a short tail group is padded with clones of its last
    /// sinogram and the padded outputs discarded).
    Volume(Vec<Sinogram>),
}

impl ReconInput {
    /// Number of caller-visible slices in this input.
    pub fn num_slices(&self) -> usize {
        match self {
            ReconInput::Slice(_) => 1,
            ReconInput::Batch(s) | ReconInput::Volume(s) => s.len(),
        }
    }

    /// Bytes of measurement data carried by this input (what a serving
    /// layer's admission control accounts against its queue bound).
    pub fn data_bytes(&self) -> usize {
        match self {
            ReconInput::Slice(s) => std::mem::size_of_val(s.data()),
            ReconInput::Batch(s) | ReconInput::Volume(s) => {
                s.iter().map(|s| std::mem::size_of_val(s.data())).sum()
            }
        }
    }
}

/// Where and how a request executes.
#[derive(Clone)]
pub enum ExecMode {
    /// In-process kernels without the worker pool (single-threaded
    /// dispatch; the kernel itself may still be the buffered/ELL layout).
    Serial,
    /// The persistent worker pool over static nnz-balanced partitions.
    /// Requires a reconstructor built with
    /// [`ReconstructorBuilder::use_pool`](crate::ReconstructorBuilder::use_pool);
    /// otherwise `run` fails with [`ReconError::PoolNotBuilt`].
    Pooled,
    /// The distributed (threads-as-ranks) `R·C·A_p` path. Single-slice
    /// only: a batched reconstructor or a non-`Slice` input is rejected
    /// with [`BuildError::DistributedBatchUnsupported`]. The request's
    /// `solver`/`stop` are the source of truth — the `config`'s own
    /// `solver`/`stop` fields are ignored.
    Distributed {
        /// Rank count and local-kernel choice.
        config: DistConfig,
        /// Fault-tolerance override; `None` uses the builder's policy.
        ft: Option<FaultTolerance>,
    },
}

impl fmt::Debug for ExecMode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ExecMode::Serial => write!(f, "Serial"),
            ExecMode::Pooled => write!(f, "Pooled"),
            ExecMode::Distributed { config, ft } => f
                .debug_struct("Distributed")
                .field("ranks", &config.ranks)
                .field("use_buffered", &config.use_buffered)
                .field("ft_override", &ft.is_some())
                .finish(),
        }
    }
}

/// Per-request checkpoint/resume policy, overriding whatever the
/// reconstructor was built with. Also the substrate for preemption: a
/// preempted run snapshots into `sink` regardless of `every`.
#[derive(Clone)]
pub struct CheckpointPolicy {
    /// Snapshot cadence in iterations (0 = only on preemption).
    pub every: usize,
    /// Where snapshots go (slot 0).
    pub sink: Arc<dyn CheckpointSink>,
    /// Resume from the sink's latest snapshot when one exists. A resumed
    /// solve is bit-identical to an uninterrupted one.
    pub resume: bool,
}

impl CheckpointPolicy {
    /// Checkpoint into `sink` every `every` iterations (no resume).
    pub fn new(sink: Arc<dyn CheckpointSink>, every: usize) -> Self {
        CheckpointPolicy {
            every,
            sink,
            resume: false,
        }
    }

    /// Checkpoint into files rooted at `base` (slot 0 lands at
    /// `{base}.0`) every `every` iterations.
    pub fn at_path(base: impl Into<PathBuf>, every: usize) -> Self {
        CheckpointPolicy::new(Arc::new(FileCheckpointSink::new(base)), every)
    }

    /// Enable (or disable) resuming from the sink's latest snapshot.
    pub fn resume(mut self, resume: bool) -> Self {
        self.resume = resume;
        self
    }
}

impl fmt::Debug for CheckpointPolicy {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("CheckpointPolicy")
            .field("every", &self.every)
            .field("resume", &self.resume)
            .finish_non_exhaustive()
    }
}

/// One fully-described reconstruction job: solver × stop rule × input ×
/// execution mode × durability. Build with [`ReconRequest::cg`] /
/// [`ReconRequest::sirt`] and refine with the builder-style setters, or
/// construct the fields directly — they are all public.
#[derive(Debug, Clone)]
pub struct ReconRequest {
    /// Update rule.
    pub solver: Solver,
    /// Termination policy (for SIRT, [`StopRule::Fixed`] reproduces the
    /// legacy `iters` parameter).
    pub stop: StopRule,
    /// Measurement data.
    pub input: ReconInput,
    /// Execution mode.
    pub mode: ExecMode,
    /// Checkpoint/resume override; `None` uses the builder's policy.
    pub checkpoint: Option<CheckpointPolicy>,
}

impl ReconRequest {
    /// A CG request in [`ExecMode::Serial`].
    pub fn cg(input: ReconInput, stop: StopRule) -> Self {
        ReconRequest {
            solver: Solver::Cg,
            stop,
            input,
            mode: ExecMode::Serial,
            checkpoint: None,
        }
    }

    /// A SIRT request (relaxation 1.0, fixed iteration count) in
    /// [`ExecMode::Serial`].
    pub fn sirt(input: ReconInput, iters: usize) -> Self {
        ReconRequest {
            solver: Solver::Sirt { relax: 1.0 },
            stop: StopRule::Fixed(iters),
            input,
            mode: ExecMode::Serial,
            checkpoint: None,
        }
    }

    /// Replace the execution mode.
    pub fn mode(mut self, mode: ExecMode) -> Self {
        self.mode = mode;
        self
    }

    /// Replace the solver.
    pub fn solver(mut self, solver: Solver) -> Self {
        self.solver = solver;
        self
    }

    /// Attach a checkpoint/resume policy.
    pub fn checkpoint(mut self, policy: CheckpointPolicy) -> Self {
        self.checkpoint = Some(policy);
        self
    }
}

/// Distributed-run detail carried by a [`ReconResponse`] when the
/// request ran in [`ExecMode::Distributed`].
#[derive(Debug)]
pub struct DistDetail {
    /// Per-rank kernel breakdowns (`ap_s`/`c_s`/`r_s`).
    pub breakdowns: Vec<KernelBreakdown>,
    /// Communication matrix of the whole run.
    pub ledger: CommLedger,
    /// Per-rank modeled volumes (for the machine-model projections).
    pub volumes: Vec<KernelVolumes>,
}

/// What a [`ReconRequest`] produced: per-slice images and convergence
/// records in input order, plus timing attribution.
#[derive(Debug)]
pub struct ReconResponse {
    /// Reconstructed tomograms, each row-major `n × n`; one per
    /// caller-visible input slice.
    pub images: Vec<Vec<f32>>,
    /// Per-slice iteration records. A slice that terminated early (or hit
    /// a numerical breakdown) has a shorter list than its batch-mates.
    pub slice_records: Vec<Vec<IterationRecord>>,
    /// Per-kernel time inside the projection operator. For shared-memory
    /// runs this is a view over the reconstructor's metrics registry and
    /// accumulates across solves; for distributed runs it is the
    /// rank-summed breakdown (per-rank detail in [`DistDetail`]).
    pub breakdown: KernelBreakdown,
    /// Wall-clock seconds attributed to each slice (batched groups share
    /// their group time equally; preprocessing excluded).
    pub per_slice_seconds: Vec<f64>,
    /// One-time preprocessing cost of the reconstructor serving this
    /// request — the amount a plan-cache hit amortizes away.
    pub preprocess_seconds: f64,
    /// Distributed-run extras ([`ExecMode::Distributed`] only).
    pub dist: Option<DistDetail>,
}

impl ReconResponse {
    /// Total iterations run across all slices.
    pub fn iterations(&self) -> usize {
        self.slice_records.iter().map(Vec::len).sum()
    }
}

/// Why a [`ReconRequest`] could not be executed.
#[derive(Debug)]
#[non_exhaustive]
pub enum ReconError {
    /// [`ExecMode::Pooled`] was requested but the reconstructor was built
    /// without [`ReconstructorBuilder::use_pool`] — the pool and its
    /// static partitions only exist when built up front.
    ///
    /// [`ReconstructorBuilder::use_pool`]: crate::ReconstructorBuilder::use_pool
    PoolNotBuilt,
    /// [`Solver::Sirt`] was given a non-positive (or NaN) relaxation
    /// factor.
    InvalidRelaxation {
        /// The rejected factor.
        relax: f32,
    },
    /// Construction/validation/solve failure (the pre-existing typed
    /// errors: mismatched lengths, batch-width misuse, communication or
    /// checkpoint faults, …).
    Build(BuildError),
}

impl From<BuildError> for ReconError {
    fn from(e: BuildError) -> Self {
        ReconError::Build(e)
    }
}

impl ReconError {
    /// Collapse into the legacy [`BuildError`] for the deprecated shim
    /// entry points (which predate `ReconError`). The request-level
    /// variants cannot arise from the shims; they map onto the nearest
    /// legacy meaning defensively.
    pub(crate) fn into_build(self) -> BuildError {
        match self {
            ReconError::Build(e) => e,
            ReconError::PoolNotBuilt => BuildError::LayoutNotBuilt {
                layout: "worker pool",
            },
            ReconError::InvalidRelaxation { .. } => BuildError::ZeroBatch,
        }
    }
}

impl fmt::Display for ReconError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ReconError::PoolNotBuilt => write!(
                f,
                "ExecMode::Pooled requires a reconstructor built with \
                 use_pool(true)"
            ),
            ReconError::InvalidRelaxation { relax } => {
                write!(f, "SIRT relaxation must be positive, got {relax}")
            }
            ReconError::Build(e) => e.fmt(f),
        }
    }
}

impl std::error::Error for ReconError {}

/// Cooperative preemption handle for [`Reconstructor::run_controlled`].
///
/// A scheduler shares one `RunControl` per running job. Requesting
/// preemption (directly via [`request_preempt`](Self::request_preempt),
/// or armed up front at a deterministic boundary via
/// [`preempt_at`](Self::preempt_at)) makes the solve snapshot into the
/// request's checkpoint sink at the next iteration boundary and return
/// [`RunOutcome::Preempted`]. Re-running the same request with
/// `resume = true` continues from that snapshot, and the final image is
/// bit-identical to an uninterrupted run. A request without a checkpoint
/// policy ignores preemption (there would be nowhere to save the state).
///
/// [`Reconstructor::run_controlled`]: crate::Reconstructor::run_controlled
#[derive(Default)]
pub struct RunControl {
    preempt: AtomicBool,
    /// Iteration boundary to preempt at (0 = disarmed). Boundaries are
    /// the `next_iter` values the engine's between-iteration hook sees,
    /// i.e. `1..=max_iters`.
    preempt_at: AtomicUsize,
    /// Deadline predicate installed by a supervising scheduler: consulted
    /// at every iteration boundary; returning `true` stops the solve like
    /// a preemption but latches [`deadline_exceeded`](Self::deadline_exceeded)
    /// so the supervisor can tell a timeout from an ordinary preempt. The
    /// closure owns its own clock, so a scheduler can use wall time in
    /// production and virtual time under the `xct-model` facade.
    deadline: std::sync::Mutex<Option<Box<dyn Fn() -> bool + Send + Sync>>>,
    /// Latched once the deadline predicate has fired.
    deadline_hit: AtomicBool,
}

impl fmt::Debug for RunControl {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("RunControl")
            .field("preempt", &self.preempt)
            .field("preempt_at", &self.preempt_at)
            .field("deadline_hit", &self.deadline_hit)
            .finish_non_exhaustive()
    }
}

impl RunControl {
    /// A control with no preemption requested.
    pub fn new() -> Self {
        RunControl::default()
    }

    /// Ask the running solve to checkpoint and stop at the next
    /// iteration boundary. Callable from any thread.
    pub fn request_preempt(&self) {
        self.preempt.store(true, Ordering::Release);
    }

    /// Arm a deterministic preemption at iteration boundary `boundary`
    /// (1-based; 0 disarms). Used by scheduling drills and tests that
    /// need a reproducible preemption point.
    pub fn preempt_at(&self, boundary: usize) {
        self.preempt_at.store(boundary, Ordering::Release);
    }

    /// Install a deadline predicate, consulted at every iteration
    /// boundary. When it returns `true` the solve checkpoints and stops
    /// exactly like a preemption, and [`deadline_exceeded`] latches so
    /// the caller can distinguish the two. The deadline fires at most
    /// once; once latched the predicate is no longer consulted.
    ///
    /// [`deadline_exceeded`]: Self::deadline_exceeded
    pub fn set_deadline_check(&self, check: impl Fn() -> bool + Send + Sync + 'static) {
        let mut slot = self.deadline.lock().unwrap_or_else(|p| p.into_inner());
        *slot = Some(Box::new(check));
    }

    /// Whether the installed deadline predicate has fired.
    pub fn deadline_exceeded(&self) -> bool {
        self.deadline_hit.load(Ordering::Acquire)
    }

    /// Whether preemption has been requested (live flag only).
    pub fn preempt_requested(&self) -> bool {
        self.preempt.load(Ordering::Acquire)
    }

    /// Engine-side check at iteration boundary `next_iter`.
    pub(crate) fn should_preempt(&self, next_iter: usize) -> bool {
        if self.deadline_hit.load(Ordering::Acquire) {
            return true;
        }
        {
            let slot = self.deadline.lock().unwrap_or_else(|p| p.into_inner());
            if let Some(check) = slot.as_ref() {
                if check() {
                    self.deadline_hit.store(true, Ordering::Release);
                    return true;
                }
            }
        }
        if self.preempt.load(Ordering::Acquire) {
            return true;
        }
        let at = self.preempt_at.load(Ordering::Acquire);
        at != 0 && next_iter >= at
    }
}

/// How a controlled run ended.
// One RunOutcome exists per job; the size spread is irrelevant.
#[allow(clippy::large_enum_variant)]
#[derive(Debug)]
pub enum RunOutcome {
    /// The solve ran to its stop rule.
    Completed(ReconResponse),
    /// Preemption was honored: the state as of `iteration` is in the
    /// request's checkpoint sink. Re-run the same request with
    /// `resume = true` to continue bit-identically.
    Preempted {
        /// First iteration that did not run.
        iteration: usize,
    },
}

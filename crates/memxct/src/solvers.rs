//! The iterative solver engine (§3.5.2): one iteration loop
//! ([`run_engine`]) parameterized by an update rule (CG on the
//! least-squares normal equations, or SIRT with row/column-sum
//! normalization), an optional constraint projection, and a
//! [`ProjectionOperator`] backend.
//!
//! Every projection path — serial, parallel, buffered, ELL, distributed,
//! and the compute-centric baseline — runs through this single loop; the
//! operator's `reduce_dot` hook is the only place the shared-memory and
//! distributed worlds differ. Each iteration records `‖y − A·x‖` and
//! `‖x‖`, the two axes of the L-curve (Fig 8), and CG supports the
//! paper's heuristic early termination ("practically considered as a
//! regularization method").
//!
//! The closure-based entry points ([`cgls`], [`sirt`],
//! [`cgls_regularized`], [`sirt_nonneg`]) are thin shims over the engine,
//! kept for callers that hold projections as closures.

use crate::operator::{ClosureOperator, ProjectionOperator};
use xct_obs::Metrics;

/// Convergence record of one iteration.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct IterationRecord {
    /// 0-based iteration number.
    pub iter: usize,
    /// Residual norm `‖y − A·x‖₂` after the update.
    pub residual_norm: f64,
    /// Solution norm `‖x‖₂` after the update.
    pub solution_norm: f64,
    /// Wall-clock seconds for the iteration.
    pub seconds: f64,
}

/// Termination policy.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum StopRule {
    /// Run exactly this many iterations.
    Fixed(usize),
    /// Stop when the relative residual decrease falls below `min_decrease`
    /// (overfitting onset), or at `max_iters`, whichever is first.
    EarlyTermination {
        /// Hard iteration cap.
        max_iters: usize,
        /// Minimum relative residual decrease per iteration to continue.
        min_decrease: f64,
    },
}

impl StopRule {
    /// The hard iteration cap of this rule (checkpoint validation bounds
    /// a snapshot's iteration counter against it).
    pub fn max_iters(&self) -> usize {
        match *self {
            StopRule::Fixed(n) => n,
            StopRule::EarlyTermination { max_iters, .. } => max_iters,
        }
    }

    fn should_stop(&self, prev: f64, curr: f64) -> bool {
        match *self {
            StopRule::Fixed(_) => false,
            StopRule::EarlyTermination { min_decrease, .. } => {
                prev.is_finite() && prev > 0.0 && (prev - curr) / prev < min_decrease
            }
        }
    }
}

/// Constraint set `C` of the paper's Eq. 1, enforced by projection after
/// every update.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Constraint {
    /// Unconstrained.
    #[default]
    None,
    /// `C = {x ≥ 0}` — attenuation coefficients are physically
    /// nonnegative.
    NonNegative,
}

/// Preallocated solver state: the iterate, every intermediate vector the
/// update rules need, and the record lists — sized once, reused across
/// iterations (and across solves, via [`run_engine_in`]).
///
/// This is what makes the steady-state iteration loop allocation-free:
/// `q = A·p` and `s = Aᵀ·r` land in preallocated buffers through the
/// operator's `*_into` kernels, vector updates happen in place, and the
/// record lists' capacity is reserved up front from the stop rule's
/// iteration cap.
///
/// A workspace carries a fixed **batch width** `k` (1 by default): every
/// domain buffer is a slice-major slab of `k` contiguous blocks, so slice
/// `j` of the iterate occupies `x[j·ncols .. (j+1)·ncols]`. Batched
/// solves advance all slices together — the operator streams the matrix
/// once per `k` right-hand sides — while convergence records, the
/// early-termination reference residual, and the active flag stay
/// per-slice, so one slice can retire (early termination or numerical
/// breakdown) without stopping the rest of the batch.
pub struct SolverWorkspace {
    /// Batch width `k`, fixed at construction.
    batch: usize,
    /// The iterate (tomogram domain, `k × ncols`, slice-major).
    x: Vec<f32>,
    /// Sinogram-domain residual (`r` in CG, `y − A·x` in SIRT),
    /// `k × nrows`.
    resid: Vec<f32>,
    /// Projection output (`q = A·p` in CG), sinogram domain, `k × nrows`.
    proj: Vec<f32>,
    /// Backprojection output (`s = Aᵀ·r` in CG, the update in SIRT),
    /// `k × ncols`.
    back: Vec<f32>,
    /// Search direction (`p` in CG), tomogram domain, `k × ncols`.
    dir: Vec<f32>,
    /// Per-slice per-iteration convergence records.
    slice_records: Vec<Vec<IterationRecord>>,
    /// Per-slice early-termination reference residuals.
    prev_res: Vec<f64>,
    /// Per-slice activity flags; a retired slice is never updated again.
    active: Vec<bool>,
    /// Per-slice residual returns of the current batched step
    /// (`NaN` = numerical breakdown). Taken/restored by the engine around
    /// each `step_batch` call so the rule can borrow the workspace too.
    step_res: Vec<f64>,
    /// `3·k` slots of per-slice f64 scratch: `[..k]` is shared by the
    /// engine (solution norms) and the update rules (step-size
    /// reductions), `[k..2k]` is rule auxiliary space, and `[2k..3k]`
    /// holds CG's carried per-slice `γ` so a steady-state batched solve
    /// never touches the allocator.
    scratch: Vec<f64>,
}

impl SolverWorkspace {
    /// A workspace for an `nrows × ncols` operator, all buffers
    /// allocated up front (batch width 1).
    pub fn new(nrows: usize, ncols: usize) -> Self {
        SolverWorkspace::new_batched(nrows, ncols, 1)
    }

    /// A workspace solving `batch` right-hand sides together, slice-major.
    ///
    /// # Panics
    /// Panics if `batch` is zero.
    pub fn new_batched(nrows: usize, ncols: usize, batch: usize) -> Self {
        // lint: allow(no-panic) documented parameter precondition
        assert!(batch > 0, "batch width must be positive");
        let mut ws = SolverWorkspace {
            batch,
            x: Vec::new(),
            resid: Vec::new(),
            proj: Vec::new(),
            back: Vec::new(),
            dir: Vec::new(),
            slice_records: Vec::new(),
            prev_res: Vec::new(),
            active: Vec::new(),
            step_res: Vec::new(),
            scratch: Vec::new(),
        };
        ws.begin(nrows, ncols, 0);
        ws
    }

    /// A workspace sized for `op` (batch width 1).
    pub fn for_operator(op: &dyn ProjectionOperator) -> Self {
        SolverWorkspace::new(op.nrows(), op.ncols())
    }

    /// The batch width this workspace was built for.
    pub fn batch(&self) -> usize {
        self.batch
    }

    /// The solution slab after a solve: `batch` slice-major blocks of
    /// `ncols` elements each.
    pub fn x(&self) -> &[f32] {
        &self.x
    }

    /// Mutable access to the iterate, for update rules that manage their
    /// own intermediate state (e.g. ordered subsets).
    pub fn x_mut(&mut self) -> &mut [f32] {
        &mut self.x
    }

    /// The per-iteration records of the last solve (slice 0 of a batched
    /// solve).
    pub fn records(&self) -> &[IterationRecord] {
        self.slice_records.first().map(Vec::as_slice).unwrap_or(&[])
    }

    /// Per-slice per-iteration records of the last solve; a slice retired
    /// early has fewer entries than the others.
    pub fn slice_records(&self) -> &[Vec<IterationRecord>] {
        &self.slice_records
    }

    /// The sinogram-domain residual slab (`r` in CG) — part of the state
    /// a checkpoint must capture for a bit-identical resume.
    pub(crate) fn resid(&self) -> &[f32] {
        &self.resid
    }

    /// The search direction slab (`p` in CG) — the other carried CG
    /// vector.
    pub(crate) fn dir(&self) -> &[f32] {
        &self.dir
    }

    /// Per-slice early-termination reference residuals.
    pub(crate) fn prev_res(&self) -> &[f64] {
        &self.prev_res
    }

    /// Per-slice activity flags.
    pub(crate) fn active(&self) -> &[bool] {
        &self.active
    }

    /// Restore the workspace to a mid-solve state loaded from a
    /// checkpoint: size every buffer like [`begin`](Self::begin), then
    /// overwrite the carried vectors (`x`, `resid`, `dir`), the record
    /// list, and the early-termination reference. `proj`/`back` are
    /// scratch — both update rules overwrite them before reading — so
    /// zeroing them preserves bit-identity.
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn resume(
        &mut self,
        nrows: usize,
        ncols: usize,
        cap: usize,
        x: &[f32],
        resid: &[f32],
        dir: &[f32],
        records: Vec<IterationRecord>,
        prev_res: f64,
    ) {
        self.resume_batched(
            nrows,
            ncols,
            cap,
            x,
            resid,
            dir,
            vec![records],
            &[prev_res],
            &[true],
        );
    }

    /// Batched [`resume`](Self::resume): restore the slice-major slabs
    /// plus the per-slice record lists, reference residuals, and activity
    /// flags. Slices beyond the supplied lists stay at their `begin`
    /// defaults.
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn resume_batched(
        &mut self,
        nrows: usize,
        ncols: usize,
        cap: usize,
        x: &[f32],
        resid: &[f32],
        dir: &[f32],
        slice_records: Vec<Vec<IterationRecord>>,
        prev_res: &[f64],
        active: &[bool],
    ) {
        self.begin(nrows, ncols, cap);
        self.x.copy_from_slice(x);
        self.resid.copy_from_slice(resid);
        self.dir.copy_from_slice(dir);
        for (j, recs) in slice_records.into_iter().enumerate().take(self.batch) {
            self.slice_records[j] = recs;
            if self.slice_records[j].capacity() < cap {
                let extra = cap - self.slice_records[j].capacity();
                self.slice_records[j].reserve(extra);
            }
        }
        for (dst, &src) in self.prev_res.iter_mut().zip(prev_res) {
            *dst = src;
        }
        for (dst, &src) in self.active.iter_mut().zip(active) {
            *dst = src;
        }
    }

    /// Reset for a solve against an `nrows × ncols` operator running at
    /// most `cap` iterations: zero the iterate, (re)size buffers, clear
    /// records and reserve their capacity. After the first solve at a
    /// given size this performs no allocation.
    fn begin(&mut self, nrows: usize, ncols: usize, cap: usize) {
        let k = self.batch;
        self.x.clear();
        self.x.resize(ncols * k, 0.0);
        self.resid.clear();
        self.resid.resize(nrows * k, 0.0);
        self.proj.clear();
        self.proj.resize(nrows * k, 0.0);
        self.back.clear();
        self.back.resize(ncols * k, 0.0);
        self.dir.clear();
        self.dir.resize(ncols * k, 0.0);
        self.slice_records.resize_with(k, Vec::new);
        for recs in self.slice_records.iter_mut() {
            recs.clear();
            if recs.capacity() < cap {
                recs.reserve(cap - recs.capacity());
            }
        }
        self.prev_res.clear();
        self.prev_res.resize(k, f64::INFINITY);
        self.active.clear();
        self.active.resize(k, true);
        self.step_res.clear();
        self.step_res.resize(k, f64::NAN);
        self.scratch.clear();
        self.scratch.resize(3 * k, 0.0);
    }
}

/// One iteration of an iterative reconstruction scheme.
///
/// A rule owns its scalar solver state (step scalars, normalization
/// weights, …), lazily initialized on the first
/// [`step`](UpdateRule::step) so construction stays trivially cheap; all
/// iteration vectors live in the shared [`SolverWorkspace`]. Because
/// initialization is lazy, **one rule instance drives one solve** — use
/// a fresh rule per solve. All scalar reductions must go through the
/// operator's `reduce_dot` hook so the rule works unchanged on
/// distributed operators.
pub trait UpdateRule {
    /// Advance `ws.x` by one iteration against measurements `y`. Returns
    /// the residual norm `‖y − A·x‖` to record, or `None` on numerical
    /// breakdown (the solve ends without recording the iteration).
    fn step(
        &mut self,
        op: &dyn ProjectionOperator,
        y: &[f32],
        ws: &mut SolverWorkspace,
    ) -> Option<f64>;

    /// Scalar state carried between iterations, for checkpointing. Rules
    /// whose carried state is either empty or recomputable from the
    /// operator (SIRT's weights are a pure function of `A`) keep the
    /// default empty vector; CG returns `γ`.
    fn carried_scalars(&self) -> Vec<f64> {
        Vec::new()
    }

    /// [`carried_scalars`](Self::carried_scalars) with access to the
    /// workspace, for rules whose batched carried state lives in the
    /// workspace scratch rather than in the rule (keeping the batched
    /// steady state allocation-free). Checkpoint writers call this
    /// variant; the default ignores the workspace.
    fn carried_scalars_in(&self, ws: &SolverWorkspace) -> Vec<f64> {
        let _ = ws;
        self.carried_scalars()
    }

    /// Advance every active slice of a batched workspace by one
    /// iteration against the slice-major measurement slab `y`
    /// (`ws.batch() × nrows`). `res` has `ws.batch()` slots pre-filled
    /// with NaN; the rule writes the residual norm of each slice it
    /// successfully advanced and leaves NaN where a slice broke down
    /// numerically (the engine retires that slice without recording the
    /// iteration). Retired slices (`ws.active()[j] == false`) must not be
    /// advanced.
    ///
    /// The default implementation only supports batch width 1, where it
    /// delegates to [`step`](UpdateRule::step); rules that support wider
    /// batches override it. The engine only calls this for workspaces
    /// with `batch() > 1`.
    fn step_batch(
        &mut self,
        op: &dyn ProjectionOperator,
        y: &[f32],
        ws: &mut SolverWorkspace,
        res: &mut [f64],
    ) {
        if res.len() != 1 {
            return; // unsupported width: every slot stays NaN → all retire
        }
        if let (Some(r), Some(slot)) = (self.step(op, y, ws), res.first_mut()) {
            *slot = r;
        }
    }

    /// Restore the scalars of [`carried_scalars`](Self::carried_scalars)
    /// when resuming from a checkpoint. An empty slice means the snapshot
    /// was taken before the rule's lazy initialization ran (or the rule
    /// carries nothing) — the rule stays fresh.
    fn restore_scalars(&mut self, _scalars: &[f64]) {}
}

/// Run `rule` against `op` until `stop` says otherwise, from `x = 0`.
///
/// The engine owns the shared skeleton every solver loop previously
/// duplicated: iteration timing, the L-curve record
/// (`residual_norm`/`solution_norm`), constraint projection, and
/// early-termination bookkeeping. On distributed operators all
/// participating ranks observe identical (allreduced) residuals, so they
/// take the same early-termination branch and collectives stay aligned.
pub fn run_engine<R: UpdateRule + ?Sized>(
    op: &dyn ProjectionOperator,
    y: &[f32],
    rule: &mut R,
    constraint: Constraint,
    stop: StopRule,
) -> (Vec<f32>, Vec<IterationRecord>) {
    run_engine_with_metrics(op, y, rule, constraint, stop, &Metrics::noop())
}

/// [`run_engine`] with observability: per-iteration residual/solution
/// norms and wall-clock go into the series `solver/residual_norm`,
/// `solver/solution_norm`, and `solver/iter_seconds`; the solution-norm
/// allreduce is timed into `solver/dot_s`; the iteration count lands in
/// the counter `solver/iterations` and the early-termination decision in
/// the gauge `solver/early_terminated` (1 = stopped before the cap).
///
/// Instrumentation only *observes* — the iterate trajectory is
/// bit-identical to the uninstrumented engine (the golden tests pin this).
pub fn run_engine_with_metrics<R: UpdateRule + ?Sized>(
    op: &dyn ProjectionOperator,
    y: &[f32],
    rule: &mut R,
    constraint: Constraint,
    stop: StopRule,
    metrics: &Metrics,
) -> (Vec<f32>, Vec<IterationRecord>) {
    let mut ws = SolverWorkspace::for_operator(op);
    run_engine_in(op, y, rule, constraint, stop, metrics, &mut ws);
    let records = ws.slice_records.pop().unwrap_or_default();
    (ws.x, records)
}

/// The allocation-free engine entry point: run a solve inside a
/// caller-owned [`SolverWorkspace`]. The solution and records are left
/// in the workspace ([`SolverWorkspace::x`],
/// [`SolverWorkspace::records`]).
///
/// After the workspace has been warmed at the operator's dimensions
/// (one prior solve, or construction via
/// [`SolverWorkspace::for_operator`] plus a first iteration), the whole
/// loop performs zero heap allocations: update rules write into
/// workspace buffers via `*_into` kernels, and records land in reserved
/// capacity. Combined with a pooled operator (whose workers are spawned
/// once at plan time) a steady-state iteration also performs zero thread
/// spawns.
pub fn run_engine_in<R: UpdateRule + ?Sized>(
    op: &dyn ProjectionOperator,
    y: &[f32],
    rule: &mut R,
    constraint: Constraint,
    stop: StopRule,
    metrics: &Metrics,
    ws: &mut SolverWorkspace,
) {
    // Infallible: the no-op observer never errors.
    let _ = run_engine_core(
        op,
        y,
        rule,
        constraint,
        stop,
        metrics,
        ws,
        None,
        |_, _, _| Ok(EngineSignal::Continue),
    );
}

/// Batched [`run_engine_in`]: the workspace's batch width picks the
/// batched loop, `y` is the slice-major measurement slab
/// (`ws.batch() × nrows`). Identical to [`run_engine_in`] — the alias
/// exists so batched call sites say what they mean.
pub fn run_engine_batched_in<R: UpdateRule + ?Sized>(
    op: &dyn ProjectionOperator,
    y: &[f32],
    rule: &mut R,
    constraint: Constraint,
    stop: StopRule,
    metrics: &Metrics,
    ws: &mut SolverWorkspace,
) {
    run_engine_in(op, y, rule, constraint, stop, metrics, ws);
}

/// Allocating convenience over [`run_engine_batched_in`]: solve `batch`
/// right-hand sides together (slice-major slab `y`) and return per-slice
/// images and convergence records. A slice that terminates early (or
/// breaks down) retires without stopping the rest of the batch, so its
/// record list may be shorter than the others.
pub fn run_engine_batched<R: UpdateRule + ?Sized>(
    op: &dyn ProjectionOperator,
    y: &[f32],
    rule: &mut R,
    constraint: Constraint,
    stop: StopRule,
    batch: usize,
) -> (Vec<Vec<f32>>, Vec<Vec<IterationRecord>>) {
    let mut ws = SolverWorkspace::new_batched(op.nrows(), op.ncols(), batch);
    run_engine_batched_in(op, y, rule, constraint, stop, &Metrics::noop(), &mut ws);
    let n = op.ncols();
    let images = (0..batch)
        .map(|j| ws.x[j * n..(j + 1) * n].to_vec())
        .collect();
    (images, ws.slice_records)
}

/// What the between-iterations hook tells the engine to do next.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum EngineSignal {
    /// Keep iterating.
    Continue,
    /// Stop at this iteration boundary (the workspace holds a consistent
    /// state for iteration `next_iter`; the hook has typically just
    /// checkpointed it). Used for cooperative preemption.
    Stop,
}

/// How an engine run ended.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum EngineExit {
    /// The stop rule (or breakdown/retirement) ended the solve normally.
    Completed,
    /// The hook requested a stop; the solve would have continued from
    /// `next_iter`.
    Stopped {
        /// First iteration that did NOT run.
        next_iter: usize,
    },
}

/// The engine loop shared by the plain and the checkpointing entry
/// points. `resume` carries the start iteration when the caller
/// pre-restored the workspace (including per-slice `prev_res`/activity)
/// and the rule from a snapshot; `after` runs between iterations (after
/// iteration `next_iter − 1` committed its records) and is where
/// checkpoints are taken — its error aborts the solve, and returning
/// [`EngineSignal::Stop`] ends it cleanly at the boundary (cooperative
/// preemption). With `resume = None` and a no-op observer the batch-1
/// branch is bit-identical to the historical scalar loop.
///
/// The batched branch (`ws.batch() > 1`) advances all active slices per
/// iteration via [`UpdateRule::step_batch`], retires slices individually
/// on early termination (record kept) or numerical breakdown (NaN
/// residual, no record), and stops when every slice has retired or the
/// cap is reached. The gauge `solver/early_terminated` then carries the
/// *count* of early-terminated slices.
#[allow(clippy::too_many_arguments)]
pub(crate) fn run_engine_core<R, F>(
    op: &dyn ProjectionOperator,
    y: &[f32],
    rule: &mut R,
    constraint: Constraint,
    stop: StopRule,
    metrics: &Metrics,
    ws: &mut SolverWorkspace,
    resume: Option<usize>,
    mut after: F,
) -> Result<EngineExit, xct_runtime::CheckpointError>
where
    R: UpdateRule + ?Sized,
    F: FnMut(usize, &SolverWorkspace, &R) -> Result<EngineSignal, xct_runtime::CheckpointError>,
{
    let start = match resume {
        // The caller restored ws (including records) and the rule.
        Some(iteration) => iteration,
        None => {
            ws.begin(op.nrows(), op.ncols(), stop.max_iters());
            0
        }
    };
    if ws.batch == 1 {
        let mut early = false;
        for iter in start..stop.max_iters() {
            let t0 = std::time::Instant::now();
            let Some(res) = rule.step(op, y, ws) else {
                break; // numerical breakdown (exact solution reached)
            };
            if constraint == Constraint::NonNegative {
                for xi in ws.x.iter_mut() {
                    *xi = xi.max(0.0);
                }
            }
            let t_dot = metrics.enabled().then(std::time::Instant::now);
            let sol = op.reduce_dot(op.local_dot(&ws.x, &ws.x)).sqrt();
            if let Some(t) = t_dot {
                metrics.timer_observe("solver/dot_s", t.elapsed().as_secs_f64());
            }
            let seconds = t0.elapsed().as_secs_f64();
            metrics.series_push("solver/residual_norm", res);
            metrics.series_push("solver/solution_norm", sol);
            metrics.series_push("solver/iter_seconds", seconds);
            metrics.counter_add("solver/iterations", 1);
            ws.slice_records[0].push(IterationRecord {
                iter,
                residual_norm: res,
                solution_norm: sol,
                seconds,
            });
            if stop.should_stop(ws.prev_res[0], res) {
                early = true;
                break;
            }
            ws.prev_res[0] = res;
            if after(iter + 1, ws, &*rule)? == EngineSignal::Stop {
                metrics.gauge_set("solver/early_terminated", early as u64 as f64);
                return Ok(EngineExit::Stopped {
                    next_iter: iter + 1,
                });
            }
        }
        metrics.gauge_set("solver/early_terminated", early as u64 as f64);
        return Ok(EngineExit::Completed);
    }

    let k = ws.batch;
    let n = op.ncols();
    let mut early_slices = 0usize;
    for iter in start..stop.max_iters() {
        if !ws.active.iter().any(|&a| a) {
            break; // every slice retired (e.g. resumed a finished batch)
        }
        let t0 = std::time::Instant::now();
        // Take `step_res` out so the rule can borrow the workspace; NaN
        // marks per-slice numerical breakdown.
        let mut res = std::mem::take(&mut ws.step_res);
        for r in res.iter_mut() {
            *r = f64::NAN;
        }
        rule.step_batch(op, y, ws, &mut res);
        ws.step_res = res;
        if constraint == Constraint::NonNegative {
            for j in 0..k {
                if !ws.active[j] || ws.step_res[j].is_nan() {
                    continue;
                }
                for xi in ws.x[j * n..(j + 1) * n].iter_mut() {
                    *xi = xi.max(0.0);
                }
            }
        }
        let t_dot = metrics.enabled().then(std::time::Instant::now);
        let (sol2, _) = ws.scratch.split_at_mut(k);
        op.local_dot_batch(&ws.x, &ws.x, sol2);
        if let Some(t) = t_dot {
            metrics.timer_observe("solver/dot_s", t.elapsed().as_secs_f64());
        }
        let seconds = t0.elapsed().as_secs_f64();
        metrics.counter_add("solver/iterations", 1);
        let mut any_active = false;
        for (j, &s2) in sol2.iter().enumerate() {
            if !ws.active[j] {
                continue;
            }
            let res = ws.step_res[j];
            if res.is_nan() {
                // Breakdown: exact solution reached; retire without a
                // record, matching the scalar loop's break-before-record.
                ws.active[j] = false;
                continue;
            }
            let sol = op.reduce_dot(s2).sqrt();
            metrics.series_push("solver/residual_norm", res);
            metrics.series_push("solver/solution_norm", sol);
            metrics.series_push("solver/iter_seconds", seconds);
            ws.slice_records[j].push(IterationRecord {
                iter,
                residual_norm: res,
                solution_norm: sol,
                seconds,
            });
            if stop.should_stop(ws.prev_res[j], res) {
                ws.active[j] = false;
                early_slices += 1;
                continue;
            }
            ws.prev_res[j] = res;
            any_active = true;
        }
        if !any_active {
            break; // matches the scalar loop: no checkpoint after the end
        }
        if after(iter + 1, ws, &*rule)? == EngineSignal::Stop {
            metrics.gauge_set("solver/early_terminated", early_slices as f64);
            return Ok(EngineExit::Stopped {
                next_iter: iter + 1,
            });
        }
    }
    metrics.gauge_set("solver/early_terminated", early_slices as f64);
    Ok(EngineExit::Completed)
}

/// CGLS: minimize `‖y − A·x‖₂²` (plus `λ‖x‖₂²` when regularized).
///
/// Per iteration: one forward projection (`q = A·p`), one backprojection
/// (`s = Aᵀ·r`), and vector updates — plus the step size found
/// analytically, matching the paper's description of CG's per-iteration
/// cost. Tikhonov regularization is the augmented system `[A; √λ·I]`,
/// which only changes the normal-equation residual to `s = Aᵀr − λx` and
/// the curvature term to `‖q‖² + λ‖p‖²`.
pub struct CgRule {
    lambda: f32,
    /// `γ = ⟨s, s⟩` carried between iterations; `None` until the first
    /// step initializes the residual/direction vectors in the workspace.
    gamma: Option<f64>,
    /// Per-slice `γ` restored from a checkpoint, staged here until the
    /// first [`step_batch`](UpdateRule::step_batch) moves it into the
    /// workspace scratch (`[2k..3k]`), where the live values stay so the
    /// batched steady state never allocates. A scalar solve uses `gamma`.
    gammas: Vec<f64>,
    /// Whether the batched `γ` slots in the workspace scratch are live
    /// (set by the first `step_batch`). A fresh rule must not trust the
    /// stale scratch of a previously used workspace.
    batched_started: bool,
}

impl CgRule {
    /// Plain CGLS.
    pub fn new() -> Self {
        CgRule {
            lambda: 0.0,
            gamma: None,
            gammas: Vec::new(),
            batched_started: false,
        }
    }

    /// Tikhonov-regularized CGLS with weight `lambda ≥ 0` (the
    /// regularizer `R(x)` of the paper's Eq. 1 with `R = λ‖·‖²`).
    pub fn regularized(lambda: f32) -> Self {
        // lint: allow(no-panic) documented parameter precondition
        assert!(lambda >= 0.0);
        CgRule {
            lambda,
            gamma: None,
            gammas: Vec::new(),
            batched_started: false,
        }
    }
}

impl Default for CgRule {
    fn default() -> Self {
        CgRule::new()
    }
}

impl UpdateRule for CgRule {
    fn step(
        &mut self,
        op: &dyn ProjectionOperator,
        y: &[f32],
        ws: &mut SolverWorkspace,
    ) -> Option<f64> {
        // Workspace roles: resid = r, back = s, dir = p, proj = q.
        let gamma = match self.gamma {
            Some(g) => g,
            None => {
                // x = 0: residual is y, and the − λ·x term vanishes.
                ws.resid.copy_from_slice(y);
                op.back_into(&ws.resid, &mut ws.back);
                let g = op.reduce_dot(op.local_dot(&ws.back, &ws.back));
                ws.dir.copy_from_slice(&ws.back);
                self.gamma = Some(g);
                g
            }
        };
        if gamma == 0.0 {
            return None; // exact solution reached
        }
        op.forward_into(&ws.dir, &mut ws.proj);
        let mut qq = op.reduce_dot(op.local_dot(&ws.proj, &ws.proj));
        if self.lambda != 0.0 {
            qq += self.lambda as f64 * op.reduce_dot(op.local_dot(&ws.dir, &ws.dir));
        }
        if qq == 0.0 {
            return None;
        }
        let alpha = (gamma / qq) as f32;
        for (xi, &pi) in ws.x.iter_mut().zip(&ws.dir) {
            *xi += alpha * pi;
        }
        for (ri, &qi) in ws.resid.iter_mut().zip(&ws.proj) {
            *ri -= alpha * qi;
        }
        op.back_into(&ws.resid, &mut ws.back);
        if self.lambda != 0.0 {
            for (si, &xi) in ws.back.iter_mut().zip(ws.x.iter()) {
                *si -= self.lambda * xi;
            }
        }
        let gamma_new = op.reduce_dot(op.local_dot(&ws.back, &ws.back));
        let beta = (gamma_new / gamma) as f32;
        self.gamma = Some(gamma_new);
        for (pi, &si) in ws.dir.iter_mut().zip(&ws.back) {
            *pi = si + beta * *pi;
        }
        Some(op.reduce_dot(op.local_dot(&ws.resid, &ws.resid)).sqrt())
    }

    fn step_batch(
        &mut self,
        op: &dyn ProjectionOperator,
        y: &[f32],
        ws: &mut SolverWorkspace,
        res: &mut [f64],
    ) {
        // Workspace roles match the scalar step: resid = r, back = s,
        // dir = p, proj = q — each a slice-major slab. Retired and
        // broken-down slices keep their vectors frozen; the matrix passes
        // still cover their blocks (the SpMM streams the matrix once for
        // the whole slab either way) and their results are ignored.
        let k = ws.batch;
        if res.len() != k {
            return;
        }
        let n = op.ncols();
        let m = op.nrows();
        // Live per-slice state splits out of the workspace scratch:
        // `qq`/`aux` are per-step temporaries, `gammas` persists across
        // iterations (no rule-owned heap buffer → no steady-state
        // allocation).
        let (qq, rest) = ws.scratch.split_at_mut(k);
        let (aux, gammas) = rest.split_at_mut(k);
        if !self.batched_started {
            if self.gammas.is_empty() {
                // x = 0: residual is y, and the − λ·x term vanishes.
                ws.resid.copy_from_slice(y);
                op.back_batch_into(&ws.resid, &mut ws.back, k);
                op.local_dot_batch(&ws.back, &ws.back, gammas);
                for g in gammas.iter_mut() {
                    *g = op.reduce_dot(*g);
                }
                ws.dir.copy_from_slice(&ws.back);
            } else {
                // Resuming: move the checkpointed γ into the live slots.
                for (dst, &src) in gammas.iter_mut().zip(self.gammas.iter()) {
                    *dst = src;
                }
            }
            self.batched_started = true;
        }
        op.forward_batch_into(&ws.dir, &mut ws.proj, k);
        op.local_dot_batch(&ws.proj, &ws.proj, qq);
        if self.lambda != 0.0 {
            op.local_dot_batch(&ws.dir, &ws.dir, aux);
        }
        // After this loop `qq[j]` holds the fully reduced curvature of
        // slice j, or 0.0 for slices that are retired or broke down — the
        // marker the remaining loops use to skip them.
        for j in 0..k {
            if !ws.active[j] || gammas[j] == 0.0 {
                qq[j] = 0.0; // γ = 0: exact solution reached
                continue;
            }
            let mut qqj = op.reduce_dot(qq[j]);
            if self.lambda != 0.0 {
                qqj += self.lambda as f64 * op.reduce_dot(aux[j]);
            }
            qq[j] = qqj;
            if qqj == 0.0 {
                continue;
            }
            let alpha = (gammas[j] / qqj) as f32;
            for (xi, &pi) in ws.x[j * n..(j + 1) * n]
                .iter_mut()
                .zip(&ws.dir[j * n..(j + 1) * n])
            {
                *xi += alpha * pi;
            }
            for (ri, &qi) in ws.resid[j * m..(j + 1) * m]
                .iter_mut()
                .zip(&ws.proj[j * m..(j + 1) * m])
            {
                *ri -= alpha * qi;
            }
        }
        op.back_batch_into(&ws.resid, &mut ws.back, k);
        if self.lambda != 0.0 {
            for (j, &qqj) in qq.iter().enumerate() {
                if !ws.active[j] || qqj == 0.0 {
                    continue;
                }
                for (si, &xi) in ws.back[j * n..(j + 1) * n]
                    .iter_mut()
                    .zip(&ws.x[j * n..(j + 1) * n])
                {
                    *si -= self.lambda * xi;
                }
            }
        }
        op.local_dot_batch(&ws.back, &ws.back, aux);
        for j in 0..k {
            if !ws.active[j] || qq[j] == 0.0 {
                continue;
            }
            let gamma_new = op.reduce_dot(aux[j]);
            let beta = (gamma_new / gammas[j]) as f32;
            gammas[j] = gamma_new;
            for (pi, &si) in ws.dir[j * n..(j + 1) * n]
                .iter_mut()
                .zip(&ws.back[j * n..(j + 1) * n])
            {
                *pi = si + beta * *pi;
            }
        }
        op.local_dot_batch(&ws.resid, &ws.resid, aux);
        for j in 0..k {
            if !ws.active[j] || qq[j] == 0.0 {
                continue;
            }
            res[j] = op.reduce_dot(aux[j]).sqrt();
        }
    }

    fn carried_scalars(&self) -> Vec<f64> {
        // γ is the one scalar CG carries across iterations (per slice in
        // a batched solve); it is allreduced, so every distributed rank
        // holds the same value.
        if !self.gammas.is_empty() {
            return self.gammas.clone();
        }
        self.gamma.map(|g| vec![g]).unwrap_or_default()
    }

    fn carried_scalars_in(&self, ws: &SolverWorkspace) -> Vec<f64> {
        // A batched solve keeps the live γ slots in the workspace
        // scratch; `batched_started` guards against reading the stale
        // scratch of a workspace this rule never stepped.
        if self.batched_started {
            let k = ws.batch;
            return ws.scratch[2 * k..3 * k].to_vec();
        }
        self.carried_scalars()
    }

    fn restore_scalars(&mut self, scalars: &[f64]) {
        match scalars {
            [] => {}
            [g] => self.gamma = Some(*g),
            gs => self.gammas = gs.to_vec(),
        }
    }
}

/// SIRT: `x ← x + ω·C·Aᵀ·R·(y − A·x)` with `R`/`C` the inverse
/// row/column sums, computed on the first step with two extra operator
/// applications on all-ones vectors (no extra tracing pass needed — the
/// matrices are memoized), and `ω` a relaxation factor (1 for plain
/// SIRT).
pub struct SirtRule {
    relaxation: f32,
    weights: Option<(Vec<f32>, Vec<f32>)>,
}

impl SirtRule {
    /// SIRT with relaxation factor `relaxation > 0`.
    pub fn new(relaxation: f32) -> Self {
        // lint: allow(no-panic) documented parameter precondition
        assert!(relaxation > 0.0, "relaxation must be positive");
        SirtRule {
            relaxation,
            weights: None,
        }
    }
}

impl UpdateRule for SirtRule {
    fn step(
        &mut self,
        op: &dyn ProjectionOperator,
        y: &[f32],
        ws: &mut SolverWorkspace,
    ) -> Option<f64> {
        // Workspace roles: resid = weighted residual, back = Aᵀ·R·r.
        if self.weights.is_none() {
            // Weight setup borrows ws.dir/ws.resid as the all-ones probe
            // vectors, so the only allocations live in the one-time
            // weights themselves (steady-state steps are allocation-free).
            let inv = |v: f32| if v > 0.0 { 1.0 / v } else { 0.0 };
            let mut row_w = vec![0f32; op.nrows()];
            ws.dir.fill(1.0);
            op.forward_into(&ws.dir, &mut row_w);
            for v in row_w.iter_mut() {
                *v = inv(*v);
            }
            let mut col_w = vec![0f32; op.ncols()];
            ws.resid.fill(1.0);
            op.back_into(&ws.resid, &mut col_w);
            for v in col_w.iter_mut() {
                *v = inv(*v);
            }
            self.weights = Some((row_w, col_w));
        }
        // lint: allow(no-panic) weights are initialized earlier in this method
        let (row_w, col_w) = self.weights.as_ref().expect("initialized above");
        op.forward_into(&ws.x, &mut ws.resid);
        for (ri, &yi) in ws.resid.iter_mut().zip(y) {
            *ri = yi - *ri;
        }
        let res = op.reduce_dot(op.local_dot(&ws.resid, &ws.resid)).sqrt();
        for (ri, &w) in ws.resid.iter_mut().zip(row_w) {
            *ri *= w;
        }
        op.back_into(&ws.resid, &mut ws.back);
        for ((xi, &ui), &w) in ws.x.iter_mut().zip(&ws.back).zip(col_w) {
            *xi += self.relaxation * ui * w;
        }
        Some(res)
    }

    fn step_batch(
        &mut self,
        op: &dyn ProjectionOperator,
        y: &[f32],
        ws: &mut SolverWorkspace,
        res: &mut [f64],
    ) {
        let k = ws.batch;
        if res.len() != k {
            return;
        }
        let n = op.ncols();
        let m = op.nrows();
        if self.weights.is_none() {
            // The weights are a pure function of `A`, shared by every
            // slice; probe them once with slice 0's blocks as the
            // all-ones vectors — bit-identical to the scalar setup.
            let inv = |v: f32| if v > 0.0 { 1.0 / v } else { 0.0 };
            let mut row_w = vec![0f32; m];
            ws.dir[..n].fill(1.0);
            op.forward_into(&ws.dir[..n], &mut row_w);
            for v in row_w.iter_mut() {
                *v = inv(*v);
            }
            let mut col_w = vec![0f32; n];
            ws.resid[..m].fill(1.0);
            op.back_into(&ws.resid[..m], &mut col_w);
            for v in col_w.iter_mut() {
                *v = inv(*v);
            }
            self.weights = Some((row_w, col_w));
        }
        // lint: allow(no-panic) weights are initialized earlier in this method
        let (row_w, col_w) = self.weights.as_ref().expect("initialized above");
        // The forward pass covers every slice (the SpMM streams the
        // matrix once for the slab); retired slices' residual blocks
        // receive A·x but are never read again this step.
        op.forward_batch_into(&ws.x, &mut ws.resid, k);
        for j in 0..k {
            if !ws.active[j] {
                continue;
            }
            for (ri, &yi) in ws.resid[j * m..(j + 1) * m]
                .iter_mut()
                .zip(&y[j * m..(j + 1) * m])
            {
                *ri = yi - *ri;
            }
        }
        // Residual norms are taken before row-weighting, as in the
        // scalar step.
        let (rr, _) = ws.scratch.split_at_mut(k);
        op.local_dot_batch(&ws.resid, &ws.resid, rr);
        for j in 0..k {
            if !ws.active[j] {
                continue;
            }
            res[j] = op.reduce_dot(rr[j]).sqrt();
            for (ri, &w) in ws.resid[j * m..(j + 1) * m].iter_mut().zip(row_w) {
                *ri *= w;
            }
        }
        op.back_batch_into(&ws.resid, &mut ws.back, k);
        for j in 0..k {
            if !ws.active[j] {
                continue;
            }
            for ((xi, &ui), &w) in ws.x[j * n..(j + 1) * n]
                .iter_mut()
                .zip(&ws.back[j * n..(j + 1) * n])
                .zip(col_w)
            {
                *xi += self.relaxation * ui * w;
            }
        }
    }
}

/// CGLS over forward/backprojection closures — a thin shim over
/// [`run_engine`] with [`CgRule`]. Returns the solution and per-iteration
/// records.
pub fn cgls<F, G>(
    y: &[f32],
    nx: usize,
    forward: F,
    back: G,
    stop: StopRule,
) -> (Vec<f32>, Vec<IterationRecord>)
where
    F: FnMut(&[f32]) -> Vec<f32>,
    G: FnMut(&[f32]) -> Vec<f32>,
{
    let op = ClosureOperator::new(y.len(), nx, forward, back);
    run_engine(&op, y, &mut CgRule::new(), Constraint::None, stop)
}

/// SIRT over forward/backprojection closures — a thin shim over
/// [`run_engine`] with [`SirtRule`].
pub fn sirt<F, G>(
    y: &[f32],
    nx: usize,
    forward: F,
    back: G,
    iters: usize,
) -> (Vec<f32>, Vec<IterationRecord>)
where
    F: FnMut(&[f32]) -> Vec<f32>,
    G: FnMut(&[f32]) -> Vec<f32>,
{
    let op = ClosureOperator::new(y.len(), nx, forward, back);
    run_engine(
        &op,
        y,
        &mut SirtRule::new(1.0),
        Constraint::None,
        StopRule::Fixed(iters),
    )
}

/// Tikhonov-regularized CGLS: minimize `‖y − A·x‖² + λ‖x‖²` — a thin
/// shim over [`run_engine`] with [`CgRule::regularized`].
pub fn cgls_regularized<F, G>(
    y: &[f32],
    nx: usize,
    forward: F,
    back: G,
    lambda: f32,
    stop: StopRule,
) -> (Vec<f32>, Vec<IterationRecord>)
where
    F: FnMut(&[f32]) -> Vec<f32>,
    G: FnMut(&[f32]) -> Vec<f32>,
{
    let op = ClosureOperator::new(y.len(), nx, forward, back);
    run_engine(
        &op,
        y,
        &mut CgRule::regularized(lambda),
        Constraint::None,
        stop,
    )
}

/// Nonnegativity-constrained SIRT — a thin shim over [`run_engine`] with
/// [`SirtRule`] and [`Constraint::NonNegative`].
pub fn sirt_nonneg<F, G>(
    y: &[f32],
    nx: usize,
    forward: F,
    back: G,
    iters: usize,
) -> (Vec<f32>, Vec<IterationRecord>)
where
    F: FnMut(&[f32]) -> Vec<f32>,
    G: FnMut(&[f32]) -> Vec<f32>,
{
    let op = ClosureOperator::new(y.len(), nx, forward, back);
    run_engine(
        &op,
        y,
        &mut SirtRule::new(1.0),
        Constraint::NonNegative,
        StopRule::Fixed(iters),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::preprocess::{preprocess, Config, Kernel};
    use xct_geometry::{disk, simulate_sinogram, Grid, NoiseModel, ScanGeometry};

    fn setup(n: u32, m: u32) -> (crate::preprocess::Operators, Vec<f32>, Vec<f32>) {
        let grid = Grid::new(n);
        let scan = ScanGeometry::new(m, n);
        let img = disk(0.6, 1.0).rasterize(n);
        let sino = simulate_sinogram(&img, &grid, &scan, NoiseModel::None, 0);
        let ops = preprocess(grid, scan, &Config::default());
        let y = ops.order_sinogram(&sino);
        let x_true = ops.order_tomogram(&img);
        (ops, y, x_true)
    }

    fn rel_err(a: &[f32], b: &[f32]) -> f64 {
        let num: f64 = a
            .iter()
            .zip(b)
            .map(|(&x, &y)| ((x - y) as f64).powi(2))
            .sum::<f64>()
            .sqrt();
        let den: f64 = b.iter().map(|&y| (y as f64).powi(2)).sum::<f64>().sqrt();
        num / den
    }

    #[test]
    fn cgls_converges_on_clean_data() {
        let (ops, y, x_true) = setup(24, 36);
        let (x, recs) = cgls(
            &y,
            ops.a.ncols(),
            |p| ops.forward(Kernel::Serial, p),
            |r| ops.back(Kernel::Serial, r),
            StopRule::Fixed(30),
        );
        assert!(rel_err(&x, &x_true) < 0.15, "err {}", rel_err(&x, &x_true));
        // Residual decreases monotonically for CGLS.
        for w in recs.windows(2) {
            assert!(w[1].residual_norm <= w[0].residual_norm * 1.0001);
        }
    }

    #[test]
    fn cgls_beats_sirt_per_iteration() {
        // §3.5.2: CG converges faster than SIRT. After 10 iterations each,
        // CG's residual must be smaller.
        let (ops, y, _) = setup(24, 36);
        let fwd = |p: &[f32]| ops.forward(Kernel::Serial, p);
        let bck = |r: &[f32]| ops.back(Kernel::Serial, r);
        let (_, cg) = cgls(&y, ops.a.ncols(), fwd, bck, StopRule::Fixed(10));
        let (_, si) = sirt(&y, ops.a.ncols(), fwd, bck, 10);
        assert!(
            cg.last().unwrap().residual_norm < si.last().unwrap().residual_norm,
            "cg {} vs sirt {}",
            cg.last().unwrap().residual_norm,
            si.last().unwrap().residual_norm
        );
    }

    #[test]
    fn early_termination_stops_before_cap() {
        let (ops, y, _) = setup(16, 24);
        let (_, recs) = cgls(
            &y,
            ops.a.ncols(),
            |p| ops.forward(Kernel::Serial, p),
            |r| ops.back(Kernel::Serial, r),
            StopRule::EarlyTermination {
                max_iters: 500,
                min_decrease: 1e-3,
            },
        );
        assert!(recs.len() < 500, "should stop early, ran {}", recs.len());
        assert!(recs.len() > 3, "should run a few iterations");
    }

    #[test]
    fn solvers_record_lcurve_axes() {
        let (ops, y, _) = setup(16, 24);
        let (_, recs) = sirt(
            &y,
            ops.a.ncols(),
            |p| ops.forward(Kernel::Serial, p),
            |r| ops.back(Kernel::Serial, r),
            5,
        );
        assert_eq!(recs.len(), 5);
        // Solution norm grows from zero; residual shrinks.
        assert!(recs[4].solution_norm > recs[0].solution_norm * 0.99);
        assert!(recs[4].residual_norm < recs[0].residual_norm);
    }

    #[test]
    fn zero_rhs_returns_zero() {
        let (ops, y, _) = setup(16, 24);
        let zeros = vec![0f32; y.len()];
        let (x, recs) = cgls(
            &zeros,
            ops.a.ncols(),
            |p| ops.forward(Kernel::Serial, p),
            |r| ops.back(Kernel::Serial, r),
            StopRule::Fixed(5),
        );
        assert!(x.iter().all(|&v| v == 0.0));
        assert!(recs.is_empty(), "gamma == 0 at start");
    }

    #[test]
    fn regularization_shrinks_the_solution_norm() {
        let (ops, y, _) = setup(24, 36);
        let fwd = |p: &[f32]| ops.forward(Kernel::Serial, p);
        let bck = |r: &[f32]| ops.back(Kernel::Serial, r);
        let (_, plain) = cgls(&y, ops.a.ncols(), fwd, bck, StopRule::Fixed(15));
        let (_, reg) = cgls_regularized(&y, ops.a.ncols(), fwd, bck, 5.0, StopRule::Fixed(15));
        let np = plain.last().unwrap().solution_norm;
        let nr = reg.last().unwrap().solution_norm;
        assert!(nr < np, "regularized norm {nr} should be below {np}");
        // λ = 0 must reproduce plain CGLS exactly.
        let (_, zero) = cgls_regularized(&y, ops.a.ncols(), fwd, bck, 0.0, StopRule::Fixed(15));
        for (a, b) in zero.iter().zip(&plain) {
            assert!((a.residual_norm - b.residual_norm).abs() < 1e-9);
        }
    }

    #[test]
    fn nonneg_sirt_produces_nonnegative_images() {
        let (ops, y, x_true) = setup(24, 36);
        let fwd = |p: &[f32]| ops.forward(Kernel::Serial, p);
        let bck = |r: &[f32]| ops.back(Kernel::Serial, r);
        let (x, recs) = sirt_nonneg(&y, ops.a.ncols(), fwd, bck, 25);
        assert!(x.iter().all(|&v| v >= 0.0));
        assert_eq!(recs.len(), 25);
        // Still converges toward the (nonnegative) truth.
        assert!(rel_err(&x, &x_true) < 0.5, "err {}", rel_err(&x, &x_true));
        // Residual decreases overall.
        assert!(recs.last().unwrap().residual_norm < recs[0].residual_norm);
    }

    #[test]
    fn buffered_kernel_solves_identically_enough() {
        let (ops, y, _) = setup(24, 36);
        let (xs, _) = cgls(
            &y,
            ops.a.ncols(),
            |p| ops.forward(Kernel::Serial, p),
            |r| ops.back(Kernel::Serial, r),
            StopRule::Fixed(10),
        );
        let (xb, _) = cgls(
            &y,
            ops.a.ncols(),
            |p| ops.forward(Kernel::Buffered, p),
            |r| ops.back(Kernel::Buffered, r),
            StopRule::Fixed(10),
        );
        assert!(
            rel_err(&xb, &xs) < 1e-3,
            "kernels diverged: {}",
            rel_err(&xb, &xs)
        );
    }

    #[test]
    fn instrumented_engine_is_bit_identical_and_records() {
        let (ops, y, _) = setup(16, 24);
        let plain_op = crate::operator::SerialOperator::new(&ops);
        let (x_plain, recs_plain) = run_engine(
            &plain_op,
            &y,
            &mut CgRule::new(),
            Constraint::None,
            StopRule::Fixed(6),
        );
        let m = Metrics::collecting();
        let inst_op = crate::operator::SerialOperator::new(&ops).with_metrics(m.clone());
        let (x_inst, recs_inst) = run_engine_with_metrics(
            &inst_op,
            &y,
            &mut CgRule::new(),
            Constraint::None,
            StopRule::Fixed(6),
            &m,
        );
        assert_eq!(x_plain, x_inst, "instrumentation must not perturb x");
        for (a, b) in recs_plain.iter().zip(&recs_inst) {
            assert_eq!(a.residual_norm.to_bits(), b.residual_norm.to_bits());
            assert_eq!(a.solution_norm.to_bits(), b.solution_norm.to_bits());
        }
        let snap = m.snapshot();
        assert_eq!(snap.counters["solver/iterations"], 6);
        assert_eq!(snap.series["solver/residual_norm"].len(), 6);
        assert_eq!(
            snap.series["solver/residual_norm"][3],
            recs_inst[3].residual_norm
        );
        assert_eq!(snap.series["solver/solution_norm"].len(), 6);
        assert_eq!(snap.series["solver/iter_seconds"].len(), 6);
        assert_eq!(snap.gauges["solver/early_terminated"], 0.0);
        assert_eq!(snap.timers["solver/dot_s"].count, 6);
    }

    #[test]
    fn early_termination_sets_the_gauge() {
        let (ops, y, _) = setup(16, 24);
        let m = Metrics::collecting();
        let op = crate::operator::SerialOperator::new(&ops);
        let (_, recs) = run_engine_with_metrics(
            &op,
            &y,
            &mut CgRule::new(),
            Constraint::None,
            StopRule::EarlyTermination {
                max_iters: 500,
                min_decrease: 1e-3,
            },
            &m,
        );
        assert!(recs.len() < 500);
        assert_eq!(m.snapshot().gauges["solver/early_terminated"], 1.0);
    }

    #[test]
    fn engine_runs_directly_on_operators() {
        // The engine API itself (no closure shim): CG over the serial
        // operator equals the closure-based entry point record-for-record.
        let (ops, y, _) = setup(16, 24);
        let op = crate::operator::SerialOperator::new(&ops);
        let (x_engine, recs_engine) = run_engine(
            &op,
            &y,
            &mut CgRule::new(),
            Constraint::None,
            StopRule::Fixed(8),
        );
        let (x_shim, recs_shim) = cgls(
            &y,
            ops.a.ncols(),
            |p| ops.forward(Kernel::Serial, p),
            |r| ops.back(Kernel::Serial, r),
            StopRule::Fixed(8),
        );
        assert_eq!(x_engine, x_shim);
        for (a, b) in recs_engine.iter().zip(&recs_shim) {
            assert_eq!(a.residual_norm, b.residual_norm);
            assert_eq!(a.solution_norm, b.solution_norm);
        }
        let kb = op.breakdown().expect("serial operator is timed");
        assert!(kb.ap_s > 0.0);
    }
}

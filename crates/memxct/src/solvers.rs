//! Iterative solvers (§3.5.2): conjugate gradient on the least-squares
//! normal equations (CGLS), and SIRT for baseline comparisons.
//!
//! Both are expressed over abstract forward/backprojection closures so the
//! same code drives the serial kernels, the buffered kernels, and the
//! distributed operators. Each iteration records `‖y − A·x‖` and `‖x‖`,
//! the two axes of the L-curve (Fig 8), and CG supports the paper's
//! heuristic early termination ("practically considered as a
//! regularization method").

/// Convergence record of one iteration.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct IterationRecord {
    /// 0-based iteration number.
    pub iter: usize,
    /// Residual norm `‖y − A·x‖₂` after the update.
    pub residual_norm: f64,
    /// Solution norm `‖x‖₂` after the update.
    pub solution_norm: f64,
    /// Wall-clock seconds for the iteration.
    pub seconds: f64,
}

/// Termination policy.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum StopRule {
    /// Run exactly this many iterations.
    Fixed(usize),
    /// Stop when the relative residual decrease falls below `min_decrease`
    /// (overfitting onset), or at `max_iters`, whichever is first.
    EarlyTermination {
        /// Hard iteration cap.
        max_iters: usize,
        /// Minimum relative residual decrease per iteration to continue.
        min_decrease: f64,
    },
}

impl StopRule {
    fn max_iters(&self) -> usize {
        match *self {
            StopRule::Fixed(n) => n,
            StopRule::EarlyTermination { max_iters, .. } => max_iters,
        }
    }

    fn should_stop(&self, prev: f64, curr: f64) -> bool {
        match *self {
            StopRule::Fixed(_) => false,
            StopRule::EarlyTermination { min_decrease, .. } => {
                prev.is_finite() && prev > 0.0 && (prev - curr) / prev < min_decrease
            }
        }
    }
}

fn dot(a: &[f32], b: &[f32]) -> f64 {
    a.iter().zip(b).map(|(&x, &y)| x as f64 * y as f64).sum()
}

fn norm(a: &[f32]) -> f64 {
    dot(a, a).sqrt()
}

/// CGLS: minimize `‖y − A·x‖₂²` from `x = 0`.
///
/// Per iteration: one forward projection (`q = A·p`), one backprojection
/// (`s = Aᵀ·r`), and vector updates — plus the step size found
/// analytically, matching the paper's description of CG's per-iteration
/// cost. Returns the solution and the per-iteration records.
pub fn cgls<F, G>(
    y: &[f32],
    nx: usize,
    mut forward: F,
    mut back: G,
    stop: StopRule,
) -> (Vec<f32>, Vec<IterationRecord>)
where
    F: FnMut(&[f32]) -> Vec<f32>,
    G: FnMut(&[f32]) -> Vec<f32>,
{
    let mut x = vec![0f32; nx];
    let mut r = y.to_vec(); // residual y − A·x (x = 0)
    let mut s = back(&r);
    let mut p = s.clone();
    let mut gamma = dot(&s, &s);
    let mut records = Vec::new();
    let mut prev_res = f64::INFINITY;

    for iter in 0..stop.max_iters() {
        let t0 = std::time::Instant::now();
        if gamma == 0.0 {
            break; // exact solution reached
        }
        let q = forward(&p);
        let qq = dot(&q, &q);
        if qq == 0.0 {
            break;
        }
        let alpha = (gamma / qq) as f32;
        for (xi, &pi) in x.iter_mut().zip(&p) {
            *xi += alpha * pi;
        }
        for (ri, &qi) in r.iter_mut().zip(&q) {
            *ri -= alpha * qi;
        }
        s = back(&r);
        let gamma_new = dot(&s, &s);
        let beta = (gamma_new / gamma) as f32;
        gamma = gamma_new;
        for (pi, &si) in p.iter_mut().zip(&s) {
            *pi = si + beta * *pi;
        }
        let res = norm(&r);
        records.push(IterationRecord {
            iter,
            residual_norm: res,
            solution_norm: norm(&x),
            seconds: t0.elapsed().as_secs_f64(),
        });
        if stop.should_stop(prev_res, res) {
            break;
        }
        prev_res = res;
    }
    (x, records)
}

/// SIRT: `x ← x + C·Aᵀ·R·(y − A·x)` with `R`/`C` the inverse row/column
/// sums, computed with two extra operator applications on all-ones vectors
/// (no extra tracing pass needed — the matrices are memoized).
pub fn sirt<F, G>(
    y: &[f32],
    nx: usize,
    mut forward: F,
    mut back: G,
    iters: usize,
) -> (Vec<f32>, Vec<IterationRecord>)
where
    F: FnMut(&[f32]) -> Vec<f32>,
    G: FnMut(&[f32]) -> Vec<f32>,
{
    let ny = y.len();
    let row_sum = forward(&vec![1f32; nx]);
    let col_sum = back(&vec![1f32; ny]);
    let inv = |v: f32| if v > 0.0 { 1.0 / v } else { 0.0 };
    let row_w: Vec<f32> = row_sum.into_iter().map(inv).collect();
    let col_w: Vec<f32> = col_sum.into_iter().map(inv).collect();

    let mut x = vec![0f32; nx];
    let mut records = Vec::with_capacity(iters);
    for iter in 0..iters {
        let t0 = std::time::Instant::now();
        let mut residual = forward(&x);
        for (ri, &yi) in residual.iter_mut().zip(y) {
            *ri = yi - *ri;
        }
        let res_norm = norm(&residual);
        for (ri, &w) in residual.iter_mut().zip(&row_w) {
            *ri *= w;
        }
        let update = back(&residual);
        for ((xi, u), &w) in x.iter_mut().zip(update).zip(&col_w) {
            *xi += u * w;
        }
        records.push(IterationRecord {
            iter,
            residual_norm: res_norm,
            solution_norm: norm(&x),
            seconds: t0.elapsed().as_secs_f64(),
        });
    }
    (x, records)
}

/// Tikhonov-regularized CGLS: minimize `‖y − A·x‖² + λ‖x‖²` (the
/// regularizer `R(x)` of the paper's Eq. 1 with `R = λ‖·‖²`).
///
/// Implemented as CGLS on the augmented system `[A; √λ·I]`, which only
/// changes the normal-equation residual to `s = Aᵀr − λx` and the
/// curvature term to `‖q‖² + λ‖p‖²`.
pub fn cgls_regularized<F, G>(
    y: &[f32],
    nx: usize,
    mut forward: F,
    mut back: G,
    lambda: f32,
    stop: StopRule,
) -> (Vec<f32>, Vec<IterationRecord>)
where
    F: FnMut(&[f32]) -> Vec<f32>,
    G: FnMut(&[f32]) -> Vec<f32>,
{
    assert!(lambda >= 0.0);
    let mut x = vec![0f32; nx];
    let mut r = y.to_vec();
    let mut s = back(&r); // − λ·x term vanishes at x = 0
    let mut p = s.clone();
    let mut gamma = dot(&s, &s);
    let mut records = Vec::new();
    let mut prev_res = f64::INFINITY;

    for iter in 0..stop.max_iters() {
        let t0 = std::time::Instant::now();
        if gamma == 0.0 {
            break;
        }
        let q = forward(&p);
        let qq = dot(&q, &q) + lambda as f64 * dot(&p, &p);
        if qq == 0.0 {
            break;
        }
        let alpha = (gamma / qq) as f32;
        for (xi, &pi) in x.iter_mut().zip(&p) {
            *xi += alpha * pi;
        }
        for (ri, &qi) in r.iter_mut().zip(&q) {
            *ri -= alpha * qi;
        }
        s = back(&r);
        for (si, &xi) in s.iter_mut().zip(&x) {
            *si -= lambda * xi;
        }
        let gamma_new = dot(&s, &s);
        let beta = (gamma_new / gamma) as f32;
        gamma = gamma_new;
        for (pi, &si) in p.iter_mut().zip(&s) {
            *pi = si + beta * *pi;
        }
        let res = norm(&r);
        records.push(IterationRecord {
            iter,
            residual_norm: res,
            solution_norm: norm(&x),
            seconds: t0.elapsed().as_secs_f64(),
        });
        if stop.should_stop(prev_res, res) {
            break;
        }
        prev_res = res;
    }
    (x, records)
}

/// Nonnegativity-constrained SIRT: the constraint set `C = {x ≥ 0}` of the
/// paper's Eq. 1, enforced by projection after every update (attenuation
/// coefficients are physically nonnegative).
pub fn sirt_nonneg<F, G>(
    y: &[f32],
    nx: usize,
    mut forward: F,
    mut back: G,
    iters: usize,
) -> (Vec<f32>, Vec<IterationRecord>)
where
    F: FnMut(&[f32]) -> Vec<f32>,
    G: FnMut(&[f32]) -> Vec<f32>,
{
    let ny = y.len();
    let row_sum = forward(&vec![1f32; nx]);
    let col_sum = back(&vec![1f32; ny]);
    let inv = |v: f32| if v > 0.0 { 1.0 / v } else { 0.0 };
    let row_w: Vec<f32> = row_sum.into_iter().map(inv).collect();
    let col_w: Vec<f32> = col_sum.into_iter().map(inv).collect();

    let mut x = vec![0f32; nx];
    let mut records = Vec::with_capacity(iters);
    for iter in 0..iters {
        let t0 = std::time::Instant::now();
        let mut residual = forward(&x);
        for (ri, &yi) in residual.iter_mut().zip(y) {
            *ri = yi - *ri;
        }
        let res_norm = norm(&residual);
        for (ri, &w) in residual.iter_mut().zip(&row_w) {
            *ri *= w;
        }
        let update = back(&residual);
        for ((xi, u), &w) in x.iter_mut().zip(update).zip(&col_w) {
            *xi = (*xi + u * w).max(0.0); // projection onto C
        }
        records.push(IterationRecord {
            iter,
            residual_norm: res_norm,
            solution_norm: norm(&x),
            seconds: t0.elapsed().as_secs_f64(),
        });
    }
    (x, records)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::preprocess::{preprocess, Config, Kernel};
    use xct_geometry::{disk, simulate_sinogram, Grid, NoiseModel, ScanGeometry};

    fn setup(n: u32, m: u32) -> (crate::preprocess::Operators, Vec<f32>, Vec<f32>) {
        let grid = Grid::new(n);
        let scan = ScanGeometry::new(m, n);
        let img = disk(0.6, 1.0).rasterize(n);
        let sino = simulate_sinogram(&img, &grid, &scan, NoiseModel::None, 0);
        let ops = preprocess(grid, scan, &Config::default());
        let y = ops.order_sinogram(&sino);
        let x_true = ops.order_tomogram(&img);
        (ops, y, x_true)
    }

    fn rel_err(a: &[f32], b: &[f32]) -> f64 {
        let num: f64 = a
            .iter()
            .zip(b)
            .map(|(&x, &y)| ((x - y) as f64).powi(2))
            .sum::<f64>()
            .sqrt();
        let den: f64 = b.iter().map(|&y| (y as f64).powi(2)).sum::<f64>().sqrt();
        num / den
    }

    #[test]
    fn cgls_converges_on_clean_data() {
        let (ops, y, x_true) = setup(24, 36);
        let (x, recs) = cgls(
            &y,
            ops.a.ncols(),
            |p| ops.forward(Kernel::Serial, p),
            |r| ops.back(Kernel::Serial, r),
            StopRule::Fixed(30),
        );
        assert!(rel_err(&x, &x_true) < 0.15, "err {}", rel_err(&x, &x_true));
        // Residual decreases monotonically for CGLS.
        for w in recs.windows(2) {
            assert!(w[1].residual_norm <= w[0].residual_norm * 1.0001);
        }
    }

    #[test]
    fn cgls_beats_sirt_per_iteration() {
        // §3.5.2: CG converges faster than SIRT. After 10 iterations each,
        // CG's residual must be smaller.
        let (ops, y, _) = setup(24, 36);
        let fwd = |p: &[f32]| ops.forward(Kernel::Serial, p);
        let bck = |r: &[f32]| ops.back(Kernel::Serial, r);
        let (_, cg) = cgls(&y, ops.a.ncols(), fwd, bck, StopRule::Fixed(10));
        let (_, si) = sirt(&y, ops.a.ncols(), fwd, bck, 10);
        assert!(
            cg.last().unwrap().residual_norm < si.last().unwrap().residual_norm,
            "cg {} vs sirt {}",
            cg.last().unwrap().residual_norm,
            si.last().unwrap().residual_norm
        );
    }

    #[test]
    fn early_termination_stops_before_cap() {
        let (ops, y, _) = setup(16, 24);
        let (_, recs) = cgls(
            &y,
            ops.a.ncols(),
            |p| ops.forward(Kernel::Serial, p),
            |r| ops.back(Kernel::Serial, r),
            StopRule::EarlyTermination {
                max_iters: 500,
                min_decrease: 1e-3,
            },
        );
        assert!(recs.len() < 500, "should stop early, ran {}", recs.len());
        assert!(recs.len() > 3, "should run a few iterations");
    }

    #[test]
    fn solvers_record_lcurve_axes() {
        let (ops, y, _) = setup(16, 24);
        let (_, recs) = sirt(
            &y,
            ops.a.ncols(),
            |p| ops.forward(Kernel::Serial, p),
            |r| ops.back(Kernel::Serial, r),
            5,
        );
        assert_eq!(recs.len(), 5);
        // Solution norm grows from zero; residual shrinks.
        assert!(recs[4].solution_norm > recs[0].solution_norm * 0.99);
        assert!(recs[4].residual_norm < recs[0].residual_norm);
    }

    #[test]
    fn zero_rhs_returns_zero() {
        let (ops, y, _) = setup(16, 24);
        let zeros = vec![0f32; y.len()];
        let (x, recs) = cgls(
            &zeros,
            ops.a.ncols(),
            |p| ops.forward(Kernel::Serial, p),
            |r| ops.back(Kernel::Serial, r),
            StopRule::Fixed(5),
        );
        assert!(x.iter().all(|&v| v == 0.0));
        assert!(recs.is_empty(), "gamma == 0 at start");
    }

    #[test]
    fn regularization_shrinks_the_solution_norm() {
        let (ops, y, _) = setup(24, 36);
        let fwd = |p: &[f32]| ops.forward(Kernel::Serial, p);
        let bck = |r: &[f32]| ops.back(Kernel::Serial, r);
        let (_, plain) = cgls(&y, ops.a.ncols(), fwd, bck, StopRule::Fixed(15));
        let (_, reg) = cgls_regularized(&y, ops.a.ncols(), fwd, bck, 5.0, StopRule::Fixed(15));
        let np = plain.last().unwrap().solution_norm;
        let nr = reg.last().unwrap().solution_norm;
        assert!(nr < np, "regularized norm {nr} should be below {np}");
        // λ = 0 must reproduce plain CGLS exactly.
        let (_, zero) = cgls_regularized(&y, ops.a.ncols(), fwd, bck, 0.0, StopRule::Fixed(15));
        for (a, b) in zero.iter().zip(&plain) {
            assert!((a.residual_norm - b.residual_norm).abs() < 1e-9);
        }
    }

    #[test]
    fn nonneg_sirt_produces_nonnegative_images() {
        let (ops, y, x_true) = setup(24, 36);
        let fwd = |p: &[f32]| ops.forward(Kernel::Serial, p);
        let bck = |r: &[f32]| ops.back(Kernel::Serial, r);
        let (x, recs) = sirt_nonneg(&y, ops.a.ncols(), fwd, bck, 25);
        assert!(x.iter().all(|&v| v >= 0.0));
        assert_eq!(recs.len(), 25);
        // Still converges toward the (nonnegative) truth.
        assert!(rel_err(&x, &x_true) < 0.5, "err {}", rel_err(&x, &x_true));
        // Residual decreases overall.
        assert!(recs.last().unwrap().residual_norm < recs[0].residual_norm);
    }

    #[test]
    fn buffered_kernel_solves_identically_enough() {
        let (ops, y, _) = setup(24, 36);
        let (xs, _) = cgls(
            &y,
            ops.a.ncols(),
            |p| ops.forward(Kernel::Serial, p),
            |r| ops.back(Kernel::Serial, r),
            StopRule::Fixed(10),
        );
        let (xb, _) = cgls(
            &y,
            ops.a.ncols(),
            |p| ops.forward(Kernel::Buffered, p),
            |r| ops.back(Kernel::Buffered, r),
            StopRule::Fixed(10),
        );
        assert!(rel_err(&xb, &xs) < 1e-3, "kernels diverged: {}", rel_err(&xb, &xs));
    }
}

//! The iterative solver engine (§3.5.2): one iteration loop
//! ([`run_engine`]) parameterized by an update rule (CG on the
//! least-squares normal equations, or SIRT with row/column-sum
//! normalization), an optional constraint projection, and a
//! [`ProjectionOperator`] backend.
//!
//! Every projection path — serial, parallel, buffered, ELL, distributed,
//! and the compute-centric baseline — runs through this single loop; the
//! operator's `reduce_dot` hook is the only place the shared-memory and
//! distributed worlds differ. Each iteration records `‖y − A·x‖` and
//! `‖x‖`, the two axes of the L-curve (Fig 8), and CG supports the
//! paper's heuristic early termination ("practically considered as a
//! regularization method").
//!
//! The closure-based entry points ([`cgls`], [`sirt`],
//! [`cgls_regularized`], [`sirt_nonneg`]) are thin shims over the engine,
//! kept for callers that hold projections as closures.

use crate::operator::{ClosureOperator, ProjectionOperator};
use xct_obs::Metrics;

/// Convergence record of one iteration.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct IterationRecord {
    /// 0-based iteration number.
    pub iter: usize,
    /// Residual norm `‖y − A·x‖₂` after the update.
    pub residual_norm: f64,
    /// Solution norm `‖x‖₂` after the update.
    pub solution_norm: f64,
    /// Wall-clock seconds for the iteration.
    pub seconds: f64,
}

/// Termination policy.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum StopRule {
    /// Run exactly this many iterations.
    Fixed(usize),
    /// Stop when the relative residual decrease falls below `min_decrease`
    /// (overfitting onset), or at `max_iters`, whichever is first.
    EarlyTermination {
        /// Hard iteration cap.
        max_iters: usize,
        /// Minimum relative residual decrease per iteration to continue.
        min_decrease: f64,
    },
}

impl StopRule {
    /// The hard iteration cap of this rule (checkpoint validation bounds
    /// a snapshot's iteration counter against it).
    pub fn max_iters(&self) -> usize {
        match *self {
            StopRule::Fixed(n) => n,
            StopRule::EarlyTermination { max_iters, .. } => max_iters,
        }
    }

    fn should_stop(&self, prev: f64, curr: f64) -> bool {
        match *self {
            StopRule::Fixed(_) => false,
            StopRule::EarlyTermination { min_decrease, .. } => {
                prev.is_finite() && prev > 0.0 && (prev - curr) / prev < min_decrease
            }
        }
    }
}

/// Constraint set `C` of the paper's Eq. 1, enforced by projection after
/// every update.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Constraint {
    /// Unconstrained.
    #[default]
    None,
    /// `C = {x ≥ 0}` — attenuation coefficients are physically
    /// nonnegative.
    NonNegative,
}

/// Preallocated solver state: the iterate, every intermediate vector the
/// update rules need, and the record list — sized once, reused across
/// iterations (and across solves, via [`run_engine_in`]).
///
/// This is what makes the steady-state iteration loop allocation-free:
/// `q = A·p` and `s = Aᵀ·r` land in preallocated buffers through the
/// operator's `*_into` kernels, vector updates happen in place, and the
/// record list's capacity is reserved up front from the stop rule's
/// iteration cap.
pub struct SolverWorkspace {
    /// The iterate (tomogram domain, `ncols`).
    x: Vec<f32>,
    /// Sinogram-domain residual (`r` in CG, `y − A·x` in SIRT).
    resid: Vec<f32>,
    /// Projection output (`q = A·p` in CG), sinogram domain.
    proj: Vec<f32>,
    /// Backprojection output (`s = Aᵀ·r` in CG, the update in SIRT).
    back: Vec<f32>,
    /// Search direction (`p` in CG), tomogram domain.
    dir: Vec<f32>,
    /// Per-iteration convergence records.
    records: Vec<IterationRecord>,
}

impl SolverWorkspace {
    /// A workspace for an `nrows × ncols` operator, all buffers
    /// allocated up front.
    pub fn new(nrows: usize, ncols: usize) -> Self {
        SolverWorkspace {
            x: vec![0f32; ncols],
            resid: vec![0f32; nrows],
            proj: vec![0f32; nrows],
            back: vec![0f32; ncols],
            dir: vec![0f32; ncols],
            records: Vec::new(),
        }
    }

    /// A workspace sized for `op`.
    pub fn for_operator(op: &dyn ProjectionOperator) -> Self {
        SolverWorkspace::new(op.nrows(), op.ncols())
    }

    /// The solution after a solve.
    pub fn x(&self) -> &[f32] {
        &self.x
    }

    /// Mutable access to the iterate, for update rules that manage their
    /// own intermediate state (e.g. ordered subsets).
    pub fn x_mut(&mut self) -> &mut [f32] {
        &mut self.x
    }

    /// The per-iteration records of the last solve.
    pub fn records(&self) -> &[IterationRecord] {
        &self.records
    }

    /// The sinogram-domain residual (`r` in CG) — part of the state a
    /// checkpoint must capture for a bit-identical resume.
    pub(crate) fn resid(&self) -> &[f32] {
        &self.resid
    }

    /// The search direction (`p` in CG) — the other carried CG vector.
    pub(crate) fn dir(&self) -> &[f32] {
        &self.dir
    }

    /// Restore the workspace to a mid-solve state loaded from a
    /// checkpoint: size every buffer like [`begin`](Self::begin), then
    /// overwrite the carried vectors (`x`, `resid`, `dir`) and the record
    /// list. `proj`/`back` are scratch — both update rules overwrite them
    /// before reading — so zeroing them preserves bit-identity.
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn resume(
        &mut self,
        nrows: usize,
        ncols: usize,
        cap: usize,
        x: &[f32],
        resid: &[f32],
        dir: &[f32],
        records: Vec<IterationRecord>,
    ) {
        self.begin(nrows, ncols, cap);
        self.x.copy_from_slice(x);
        self.resid.copy_from_slice(resid);
        self.dir.copy_from_slice(dir);
        self.records = records;
        if self.records.capacity() < cap {
            let extra = cap - self.records.capacity();
            self.records.reserve(extra);
        }
    }

    /// Reset for a solve against an `nrows × ncols` operator running at
    /// most `cap` iterations: zero the iterate, (re)size buffers, clear
    /// records and reserve their capacity. After the first solve at a
    /// given size this performs no allocation.
    fn begin(&mut self, nrows: usize, ncols: usize, cap: usize) {
        self.x.clear();
        self.x.resize(ncols, 0.0);
        self.resid.clear();
        self.resid.resize(nrows, 0.0);
        self.proj.clear();
        self.proj.resize(nrows, 0.0);
        self.back.clear();
        self.back.resize(ncols, 0.0);
        self.dir.clear();
        self.dir.resize(ncols, 0.0);
        self.records.clear();
        if self.records.capacity() < cap {
            self.records.reserve(cap - self.records.capacity());
        }
    }
}

/// One iteration of an iterative reconstruction scheme.
///
/// A rule owns its scalar solver state (step scalars, normalization
/// weights, …), lazily initialized on the first
/// [`step`](UpdateRule::step) so construction stays trivially cheap; all
/// iteration vectors live in the shared [`SolverWorkspace`]. Because
/// initialization is lazy, **one rule instance drives one solve** — use
/// a fresh rule per solve. All scalar reductions must go through the
/// operator's `reduce_dot` hook so the rule works unchanged on
/// distributed operators.
pub trait UpdateRule {
    /// Advance `ws.x` by one iteration against measurements `y`. Returns
    /// the residual norm `‖y − A·x‖` to record, or `None` on numerical
    /// breakdown (the solve ends without recording the iteration).
    fn step(
        &mut self,
        op: &dyn ProjectionOperator,
        y: &[f32],
        ws: &mut SolverWorkspace,
    ) -> Option<f64>;

    /// Scalar state carried between iterations, for checkpointing. Rules
    /// whose carried state is either empty or recomputable from the
    /// operator (SIRT's weights are a pure function of `A`) keep the
    /// default empty vector; CG returns `γ`.
    fn carried_scalars(&self) -> Vec<f64> {
        Vec::new()
    }

    /// Restore the scalars of [`carried_scalars`](Self::carried_scalars)
    /// when resuming from a checkpoint. An empty slice means the snapshot
    /// was taken before the rule's lazy initialization ran (or the rule
    /// carries nothing) — the rule stays fresh.
    fn restore_scalars(&mut self, _scalars: &[f64]) {}
}

/// Run `rule` against `op` until `stop` says otherwise, from `x = 0`.
///
/// The engine owns the shared skeleton every solver loop previously
/// duplicated: iteration timing, the L-curve record
/// (`residual_norm`/`solution_norm`), constraint projection, and
/// early-termination bookkeeping. On distributed operators all
/// participating ranks observe identical (allreduced) residuals, so they
/// take the same early-termination branch and collectives stay aligned.
pub fn run_engine<R: UpdateRule + ?Sized>(
    op: &dyn ProjectionOperator,
    y: &[f32],
    rule: &mut R,
    constraint: Constraint,
    stop: StopRule,
) -> (Vec<f32>, Vec<IterationRecord>) {
    run_engine_with_metrics(op, y, rule, constraint, stop, &Metrics::noop())
}

/// [`run_engine`] with observability: per-iteration residual/solution
/// norms and wall-clock go into the series `solver/residual_norm`,
/// `solver/solution_norm`, and `solver/iter_seconds`; the solution-norm
/// allreduce is timed into `solver/dot_s`; the iteration count lands in
/// the counter `solver/iterations` and the early-termination decision in
/// the gauge `solver/early_terminated` (1 = stopped before the cap).
///
/// Instrumentation only *observes* — the iterate trajectory is
/// bit-identical to the uninstrumented engine (the golden tests pin this).
pub fn run_engine_with_metrics<R: UpdateRule + ?Sized>(
    op: &dyn ProjectionOperator,
    y: &[f32],
    rule: &mut R,
    constraint: Constraint,
    stop: StopRule,
    metrics: &Metrics,
) -> (Vec<f32>, Vec<IterationRecord>) {
    let mut ws = SolverWorkspace::for_operator(op);
    run_engine_in(op, y, rule, constraint, stop, metrics, &mut ws);
    (ws.x, ws.records)
}

/// The allocation-free engine entry point: run a solve inside a
/// caller-owned [`SolverWorkspace`]. The solution and records are left
/// in the workspace ([`SolverWorkspace::x`],
/// [`SolverWorkspace::records`]).
///
/// After the workspace has been warmed at the operator's dimensions
/// (one prior solve, or construction via
/// [`SolverWorkspace::for_operator`] plus a first iteration), the whole
/// loop performs zero heap allocations: update rules write into
/// workspace buffers via `*_into` kernels, and records land in reserved
/// capacity. Combined with a pooled operator (whose workers are spawned
/// once at plan time) a steady-state iteration also performs zero thread
/// spawns.
pub fn run_engine_in<R: UpdateRule + ?Sized>(
    op: &dyn ProjectionOperator,
    y: &[f32],
    rule: &mut R,
    constraint: Constraint,
    stop: StopRule,
    metrics: &Metrics,
    ws: &mut SolverWorkspace,
) {
    // Infallible: the no-op observer never errors.
    let _ = run_engine_core(
        op,
        y,
        rule,
        constraint,
        stop,
        metrics,
        ws,
        None,
        |_, _, _, _| Ok(()),
    );
}

/// The engine loop shared by the plain and the checkpointing entry
/// points. `resume` carries `(start_iteration, prev_res)` when the caller
/// pre-restored the workspace and rule from a snapshot; `after` runs
/// between iterations (after iteration `next_iter − 1` committed its
/// record) and is where checkpoints are taken — its error aborts the
/// solve. With `resume = None` and a no-op observer this is bit-identical
/// to the historical loop.
#[allow(clippy::too_many_arguments)]
pub(crate) fn run_engine_core<R, F>(
    op: &dyn ProjectionOperator,
    y: &[f32],
    rule: &mut R,
    constraint: Constraint,
    stop: StopRule,
    metrics: &Metrics,
    ws: &mut SolverWorkspace,
    resume: Option<(usize, f64)>,
    mut after: F,
) -> Result<(), xct_runtime::CheckpointError>
where
    R: UpdateRule + ?Sized,
    F: FnMut(usize, f64, &SolverWorkspace, &R) -> Result<(), xct_runtime::CheckpointError>,
{
    let (start, mut prev_res) = match resume {
        // The caller restored ws (including records) and the rule.
        Some((iteration, prev_res)) => (iteration, prev_res),
        None => {
            ws.begin(op.nrows(), op.ncols(), stop.max_iters());
            (0, f64::INFINITY)
        }
    };
    let mut early = false;
    for iter in start..stop.max_iters() {
        let t0 = std::time::Instant::now();
        let Some(res) = rule.step(op, y, ws) else {
            break; // numerical breakdown (exact solution reached)
        };
        if constraint == Constraint::NonNegative {
            for xi in ws.x.iter_mut() {
                *xi = xi.max(0.0);
            }
        }
        let t_dot = metrics.enabled().then(std::time::Instant::now);
        let sol = op.reduce_dot(op.local_dot(&ws.x, &ws.x)).sqrt();
        if let Some(t) = t_dot {
            metrics.timer_observe("solver/dot_s", t.elapsed().as_secs_f64());
        }
        let seconds = t0.elapsed().as_secs_f64();
        metrics.series_push("solver/residual_norm", res);
        metrics.series_push("solver/solution_norm", sol);
        metrics.series_push("solver/iter_seconds", seconds);
        metrics.counter_add("solver/iterations", 1);
        ws.records.push(IterationRecord {
            iter,
            residual_norm: res,
            solution_norm: sol,
            seconds,
        });
        if stop.should_stop(prev_res, res) {
            early = true;
            break;
        }
        prev_res = res;
        after(iter + 1, prev_res, ws, &*rule)?;
    }
    metrics.gauge_set("solver/early_terminated", early as u64 as f64);
    Ok(())
}

/// CGLS: minimize `‖y − A·x‖₂²` (plus `λ‖x‖₂²` when regularized).
///
/// Per iteration: one forward projection (`q = A·p`), one backprojection
/// (`s = Aᵀ·r`), and vector updates — plus the step size found
/// analytically, matching the paper's description of CG's per-iteration
/// cost. Tikhonov regularization is the augmented system `[A; √λ·I]`,
/// which only changes the normal-equation residual to `s = Aᵀr − λx` and
/// the curvature term to `‖q‖² + λ‖p‖²`.
pub struct CgRule {
    lambda: f32,
    /// `γ = ⟨s, s⟩` carried between iterations; `None` until the first
    /// step initializes the residual/direction vectors in the workspace.
    gamma: Option<f64>,
}

impl CgRule {
    /// Plain CGLS.
    pub fn new() -> Self {
        CgRule {
            lambda: 0.0,
            gamma: None,
        }
    }

    /// Tikhonov-regularized CGLS with weight `lambda ≥ 0` (the
    /// regularizer `R(x)` of the paper's Eq. 1 with `R = λ‖·‖²`).
    pub fn regularized(lambda: f32) -> Self {
        // lint: allow(no-panic) documented parameter precondition
        assert!(lambda >= 0.0);
        CgRule {
            lambda,
            gamma: None,
        }
    }
}

impl Default for CgRule {
    fn default() -> Self {
        CgRule::new()
    }
}

impl UpdateRule for CgRule {
    fn step(
        &mut self,
        op: &dyn ProjectionOperator,
        y: &[f32],
        ws: &mut SolverWorkspace,
    ) -> Option<f64> {
        // Workspace roles: resid = r, back = s, dir = p, proj = q.
        let gamma = match self.gamma {
            Some(g) => g,
            None => {
                // x = 0: residual is y, and the − λ·x term vanishes.
                ws.resid.copy_from_slice(y);
                op.back_into(&ws.resid, &mut ws.back);
                let g = op.reduce_dot(op.local_dot(&ws.back, &ws.back));
                ws.dir.copy_from_slice(&ws.back);
                self.gamma = Some(g);
                g
            }
        };
        if gamma == 0.0 {
            return None; // exact solution reached
        }
        op.forward_into(&ws.dir, &mut ws.proj);
        let mut qq = op.reduce_dot(op.local_dot(&ws.proj, &ws.proj));
        if self.lambda != 0.0 {
            qq += self.lambda as f64 * op.reduce_dot(op.local_dot(&ws.dir, &ws.dir));
        }
        if qq == 0.0 {
            return None;
        }
        let alpha = (gamma / qq) as f32;
        for (xi, &pi) in ws.x.iter_mut().zip(&ws.dir) {
            *xi += alpha * pi;
        }
        for (ri, &qi) in ws.resid.iter_mut().zip(&ws.proj) {
            *ri -= alpha * qi;
        }
        op.back_into(&ws.resid, &mut ws.back);
        if self.lambda != 0.0 {
            for (si, &xi) in ws.back.iter_mut().zip(ws.x.iter()) {
                *si -= self.lambda * xi;
            }
        }
        let gamma_new = op.reduce_dot(op.local_dot(&ws.back, &ws.back));
        let beta = (gamma_new / gamma) as f32;
        self.gamma = Some(gamma_new);
        for (pi, &si) in ws.dir.iter_mut().zip(&ws.back) {
            *pi = si + beta * *pi;
        }
        Some(op.reduce_dot(op.local_dot(&ws.resid, &ws.resid)).sqrt())
    }

    fn carried_scalars(&self) -> Vec<f64> {
        // γ is the one scalar CG carries across iterations; it is
        // allreduced, so every distributed rank holds the same value.
        self.gamma.map(|g| vec![g]).unwrap_or_default()
    }

    fn restore_scalars(&mut self, scalars: &[f64]) {
        if let [g] = scalars {
            self.gamma = Some(*g);
        }
    }
}

/// SIRT: `x ← x + ω·C·Aᵀ·R·(y − A·x)` with `R`/`C` the inverse
/// row/column sums, computed on the first step with two extra operator
/// applications on all-ones vectors (no extra tracing pass needed — the
/// matrices are memoized), and `ω` a relaxation factor (1 for plain
/// SIRT).
pub struct SirtRule {
    relaxation: f32,
    weights: Option<(Vec<f32>, Vec<f32>)>,
}

impl SirtRule {
    /// SIRT with relaxation factor `relaxation > 0`.
    pub fn new(relaxation: f32) -> Self {
        // lint: allow(no-panic) documented parameter precondition
        assert!(relaxation > 0.0, "relaxation must be positive");
        SirtRule {
            relaxation,
            weights: None,
        }
    }
}

impl UpdateRule for SirtRule {
    fn step(
        &mut self,
        op: &dyn ProjectionOperator,
        y: &[f32],
        ws: &mut SolverWorkspace,
    ) -> Option<f64> {
        // Workspace roles: resid = weighted residual, back = Aᵀ·R·r.
        if self.weights.is_none() {
            // Weight setup borrows ws.dir/ws.resid as the all-ones probe
            // vectors, so the only allocations live in the one-time
            // weights themselves (steady-state steps are allocation-free).
            let inv = |v: f32| if v > 0.0 { 1.0 / v } else { 0.0 };
            let mut row_w = vec![0f32; op.nrows()];
            ws.dir.fill(1.0);
            op.forward_into(&ws.dir, &mut row_w);
            for v in row_w.iter_mut() {
                *v = inv(*v);
            }
            let mut col_w = vec![0f32; op.ncols()];
            ws.resid.fill(1.0);
            op.back_into(&ws.resid, &mut col_w);
            for v in col_w.iter_mut() {
                *v = inv(*v);
            }
            self.weights = Some((row_w, col_w));
        }
        // lint: allow(no-panic) weights are initialized earlier in this method
        let (row_w, col_w) = self.weights.as_ref().expect("initialized above");
        op.forward_into(&ws.x, &mut ws.resid);
        for (ri, &yi) in ws.resid.iter_mut().zip(y) {
            *ri = yi - *ri;
        }
        let res = op.reduce_dot(op.local_dot(&ws.resid, &ws.resid)).sqrt();
        for (ri, &w) in ws.resid.iter_mut().zip(row_w) {
            *ri *= w;
        }
        op.back_into(&ws.resid, &mut ws.back);
        for ((xi, &ui), &w) in ws.x.iter_mut().zip(&ws.back).zip(col_w) {
            *xi += self.relaxation * ui * w;
        }
        Some(res)
    }
}

/// CGLS over forward/backprojection closures — a thin shim over
/// [`run_engine`] with [`CgRule`]. Returns the solution and per-iteration
/// records.
pub fn cgls<F, G>(
    y: &[f32],
    nx: usize,
    forward: F,
    back: G,
    stop: StopRule,
) -> (Vec<f32>, Vec<IterationRecord>)
where
    F: FnMut(&[f32]) -> Vec<f32>,
    G: FnMut(&[f32]) -> Vec<f32>,
{
    let op = ClosureOperator::new(y.len(), nx, forward, back);
    run_engine(&op, y, &mut CgRule::new(), Constraint::None, stop)
}

/// SIRT over forward/backprojection closures — a thin shim over
/// [`run_engine`] with [`SirtRule`].
pub fn sirt<F, G>(
    y: &[f32],
    nx: usize,
    forward: F,
    back: G,
    iters: usize,
) -> (Vec<f32>, Vec<IterationRecord>)
where
    F: FnMut(&[f32]) -> Vec<f32>,
    G: FnMut(&[f32]) -> Vec<f32>,
{
    let op = ClosureOperator::new(y.len(), nx, forward, back);
    run_engine(
        &op,
        y,
        &mut SirtRule::new(1.0),
        Constraint::None,
        StopRule::Fixed(iters),
    )
}

/// Tikhonov-regularized CGLS: minimize `‖y − A·x‖² + λ‖x‖²` — a thin
/// shim over [`run_engine`] with [`CgRule::regularized`].
pub fn cgls_regularized<F, G>(
    y: &[f32],
    nx: usize,
    forward: F,
    back: G,
    lambda: f32,
    stop: StopRule,
) -> (Vec<f32>, Vec<IterationRecord>)
where
    F: FnMut(&[f32]) -> Vec<f32>,
    G: FnMut(&[f32]) -> Vec<f32>,
{
    let op = ClosureOperator::new(y.len(), nx, forward, back);
    run_engine(
        &op,
        y,
        &mut CgRule::regularized(lambda),
        Constraint::None,
        stop,
    )
}

/// Nonnegativity-constrained SIRT — a thin shim over [`run_engine`] with
/// [`SirtRule`] and [`Constraint::NonNegative`].
pub fn sirt_nonneg<F, G>(
    y: &[f32],
    nx: usize,
    forward: F,
    back: G,
    iters: usize,
) -> (Vec<f32>, Vec<IterationRecord>)
where
    F: FnMut(&[f32]) -> Vec<f32>,
    G: FnMut(&[f32]) -> Vec<f32>,
{
    let op = ClosureOperator::new(y.len(), nx, forward, back);
    run_engine(
        &op,
        y,
        &mut SirtRule::new(1.0),
        Constraint::NonNegative,
        StopRule::Fixed(iters),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::preprocess::{preprocess, Config, Kernel};
    use xct_geometry::{disk, simulate_sinogram, Grid, NoiseModel, ScanGeometry};

    fn setup(n: u32, m: u32) -> (crate::preprocess::Operators, Vec<f32>, Vec<f32>) {
        let grid = Grid::new(n);
        let scan = ScanGeometry::new(m, n);
        let img = disk(0.6, 1.0).rasterize(n);
        let sino = simulate_sinogram(&img, &grid, &scan, NoiseModel::None, 0);
        let ops = preprocess(grid, scan, &Config::default());
        let y = ops.order_sinogram(&sino);
        let x_true = ops.order_tomogram(&img);
        (ops, y, x_true)
    }

    fn rel_err(a: &[f32], b: &[f32]) -> f64 {
        let num: f64 = a
            .iter()
            .zip(b)
            .map(|(&x, &y)| ((x - y) as f64).powi(2))
            .sum::<f64>()
            .sqrt();
        let den: f64 = b.iter().map(|&y| (y as f64).powi(2)).sum::<f64>().sqrt();
        num / den
    }

    #[test]
    fn cgls_converges_on_clean_data() {
        let (ops, y, x_true) = setup(24, 36);
        let (x, recs) = cgls(
            &y,
            ops.a.ncols(),
            |p| ops.forward(Kernel::Serial, p),
            |r| ops.back(Kernel::Serial, r),
            StopRule::Fixed(30),
        );
        assert!(rel_err(&x, &x_true) < 0.15, "err {}", rel_err(&x, &x_true));
        // Residual decreases monotonically for CGLS.
        for w in recs.windows(2) {
            assert!(w[1].residual_norm <= w[0].residual_norm * 1.0001);
        }
    }

    #[test]
    fn cgls_beats_sirt_per_iteration() {
        // §3.5.2: CG converges faster than SIRT. After 10 iterations each,
        // CG's residual must be smaller.
        let (ops, y, _) = setup(24, 36);
        let fwd = |p: &[f32]| ops.forward(Kernel::Serial, p);
        let bck = |r: &[f32]| ops.back(Kernel::Serial, r);
        let (_, cg) = cgls(&y, ops.a.ncols(), fwd, bck, StopRule::Fixed(10));
        let (_, si) = sirt(&y, ops.a.ncols(), fwd, bck, 10);
        assert!(
            cg.last().unwrap().residual_norm < si.last().unwrap().residual_norm,
            "cg {} vs sirt {}",
            cg.last().unwrap().residual_norm,
            si.last().unwrap().residual_norm
        );
    }

    #[test]
    fn early_termination_stops_before_cap() {
        let (ops, y, _) = setup(16, 24);
        let (_, recs) = cgls(
            &y,
            ops.a.ncols(),
            |p| ops.forward(Kernel::Serial, p),
            |r| ops.back(Kernel::Serial, r),
            StopRule::EarlyTermination {
                max_iters: 500,
                min_decrease: 1e-3,
            },
        );
        assert!(recs.len() < 500, "should stop early, ran {}", recs.len());
        assert!(recs.len() > 3, "should run a few iterations");
    }

    #[test]
    fn solvers_record_lcurve_axes() {
        let (ops, y, _) = setup(16, 24);
        let (_, recs) = sirt(
            &y,
            ops.a.ncols(),
            |p| ops.forward(Kernel::Serial, p),
            |r| ops.back(Kernel::Serial, r),
            5,
        );
        assert_eq!(recs.len(), 5);
        // Solution norm grows from zero; residual shrinks.
        assert!(recs[4].solution_norm > recs[0].solution_norm * 0.99);
        assert!(recs[4].residual_norm < recs[0].residual_norm);
    }

    #[test]
    fn zero_rhs_returns_zero() {
        let (ops, y, _) = setup(16, 24);
        let zeros = vec![0f32; y.len()];
        let (x, recs) = cgls(
            &zeros,
            ops.a.ncols(),
            |p| ops.forward(Kernel::Serial, p),
            |r| ops.back(Kernel::Serial, r),
            StopRule::Fixed(5),
        );
        assert!(x.iter().all(|&v| v == 0.0));
        assert!(recs.is_empty(), "gamma == 0 at start");
    }

    #[test]
    fn regularization_shrinks_the_solution_norm() {
        let (ops, y, _) = setup(24, 36);
        let fwd = |p: &[f32]| ops.forward(Kernel::Serial, p);
        let bck = |r: &[f32]| ops.back(Kernel::Serial, r);
        let (_, plain) = cgls(&y, ops.a.ncols(), fwd, bck, StopRule::Fixed(15));
        let (_, reg) = cgls_regularized(&y, ops.a.ncols(), fwd, bck, 5.0, StopRule::Fixed(15));
        let np = plain.last().unwrap().solution_norm;
        let nr = reg.last().unwrap().solution_norm;
        assert!(nr < np, "regularized norm {nr} should be below {np}");
        // λ = 0 must reproduce plain CGLS exactly.
        let (_, zero) = cgls_regularized(&y, ops.a.ncols(), fwd, bck, 0.0, StopRule::Fixed(15));
        for (a, b) in zero.iter().zip(&plain) {
            assert!((a.residual_norm - b.residual_norm).abs() < 1e-9);
        }
    }

    #[test]
    fn nonneg_sirt_produces_nonnegative_images() {
        let (ops, y, x_true) = setup(24, 36);
        let fwd = |p: &[f32]| ops.forward(Kernel::Serial, p);
        let bck = |r: &[f32]| ops.back(Kernel::Serial, r);
        let (x, recs) = sirt_nonneg(&y, ops.a.ncols(), fwd, bck, 25);
        assert!(x.iter().all(|&v| v >= 0.0));
        assert_eq!(recs.len(), 25);
        // Still converges toward the (nonnegative) truth.
        assert!(rel_err(&x, &x_true) < 0.5, "err {}", rel_err(&x, &x_true));
        // Residual decreases overall.
        assert!(recs.last().unwrap().residual_norm < recs[0].residual_norm);
    }

    #[test]
    fn buffered_kernel_solves_identically_enough() {
        let (ops, y, _) = setup(24, 36);
        let (xs, _) = cgls(
            &y,
            ops.a.ncols(),
            |p| ops.forward(Kernel::Serial, p),
            |r| ops.back(Kernel::Serial, r),
            StopRule::Fixed(10),
        );
        let (xb, _) = cgls(
            &y,
            ops.a.ncols(),
            |p| ops.forward(Kernel::Buffered, p),
            |r| ops.back(Kernel::Buffered, r),
            StopRule::Fixed(10),
        );
        assert!(
            rel_err(&xb, &xs) < 1e-3,
            "kernels diverged: {}",
            rel_err(&xb, &xs)
        );
    }

    #[test]
    fn instrumented_engine_is_bit_identical_and_records() {
        let (ops, y, _) = setup(16, 24);
        let plain_op = crate::operator::SerialOperator::new(&ops);
        let (x_plain, recs_plain) = run_engine(
            &plain_op,
            &y,
            &mut CgRule::new(),
            Constraint::None,
            StopRule::Fixed(6),
        );
        let m = Metrics::collecting();
        let inst_op = crate::operator::SerialOperator::new(&ops).with_metrics(m.clone());
        let (x_inst, recs_inst) = run_engine_with_metrics(
            &inst_op,
            &y,
            &mut CgRule::new(),
            Constraint::None,
            StopRule::Fixed(6),
            &m,
        );
        assert_eq!(x_plain, x_inst, "instrumentation must not perturb x");
        for (a, b) in recs_plain.iter().zip(&recs_inst) {
            assert_eq!(a.residual_norm.to_bits(), b.residual_norm.to_bits());
            assert_eq!(a.solution_norm.to_bits(), b.solution_norm.to_bits());
        }
        let snap = m.snapshot();
        assert_eq!(snap.counters["solver/iterations"], 6);
        assert_eq!(snap.series["solver/residual_norm"].len(), 6);
        assert_eq!(
            snap.series["solver/residual_norm"][3],
            recs_inst[3].residual_norm
        );
        assert_eq!(snap.series["solver/solution_norm"].len(), 6);
        assert_eq!(snap.series["solver/iter_seconds"].len(), 6);
        assert_eq!(snap.gauges["solver/early_terminated"], 0.0);
        assert_eq!(snap.timers["solver/dot_s"].count, 6);
    }

    #[test]
    fn early_termination_sets_the_gauge() {
        let (ops, y, _) = setup(16, 24);
        let m = Metrics::collecting();
        let op = crate::operator::SerialOperator::new(&ops);
        let (_, recs) = run_engine_with_metrics(
            &op,
            &y,
            &mut CgRule::new(),
            Constraint::None,
            StopRule::EarlyTermination {
                max_iters: 500,
                min_decrease: 1e-3,
            },
            &m,
        );
        assert!(recs.len() < 500);
        assert_eq!(m.snapshot().gauges["solver/early_terminated"], 1.0);
    }

    #[test]
    fn engine_runs_directly_on_operators() {
        // The engine API itself (no closure shim): CG over the serial
        // operator equals the closure-based entry point record-for-record.
        let (ops, y, _) = setup(16, 24);
        let op = crate::operator::SerialOperator::new(&ops);
        let (x_engine, recs_engine) = run_engine(
            &op,
            &y,
            &mut CgRule::new(),
            Constraint::None,
            StopRule::Fixed(8),
        );
        let (x_shim, recs_shim) = cgls(
            &y,
            ops.a.ncols(),
            |p| ops.forward(Kernel::Serial, p),
            |r| ops.back(Kernel::Serial, r),
            StopRule::Fixed(8),
        );
        assert_eq!(x_engine, x_shim);
        for (a, b) in recs_engine.iter().zip(&recs_shim) {
            assert_eq!(a.residual_norm, b.residual_norm);
            assert_eq!(a.solution_norm, b.solution_norm);
        }
        let kb = op.breakdown().expect("serial operator is timed");
        assert!(kb.ap_s > 0.0);
    }
}

//! Structured errors for the fallible construction entry points
//! ([`crate::preprocess::try_preprocess`], `ReconstructorBuilder::build`,
//! and the `try_reconstruct_*` methods), replacing the panicking asserts
//! the original entry points used. The panicking entry points remain as
//! thin shims for callers that prefer crashing on misconfiguration.

use std::fmt;

use xct_runtime::{CheckpointError, CommError};

/// Why an operator/reconstructor could not be built or applied.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum BuildError {
    /// `Config::partsize` was zero; row partitioning needs at least one
    /// row per partition.
    ZeroPartitionSize,
    /// `Config::buffsize` was zero or exceeds what the buffered kernel's
    /// index width can address (`u16` addressing caps buffers at 65536
    /// f32 elements).
    InvalidBufferSize {
        /// The rejected buffer capacity (f32 elements).
        buffsize: usize,
        /// Largest capacity the in-buffer index width can address.
        max: usize,
    },
    /// A distributed run was asked for zero ranks.
    ZeroRanks,
    /// `ReconstructorBuilder::batch` was given zero; batched solves need
    /// at least one slice.
    ZeroBatch,
    /// The number of sinograms handed to a solve does not match the
    /// batch width the reconstructor was built with, or a single-slice /
    /// distributed entry point was used on a batched reconstructor.
    BatchWidth {
        /// Batch width the reconstructor was configured for.
        expected: usize,
        /// Number of slices actually supplied.
        got: usize,
    },
    /// A distributed solve was requested on a reconstructor built with
    /// `ReconstructorBuilder::batch > 1`. The distributed halo-exchange
    /// path is single-slice; rebuild with `batch(1)` (or drop the batch)
    /// to run distributed, or use the shared-memory batched path.
    DistributedBatchUnsupported {
        /// Batch width the reconstructor was configured for.
        batch: usize,
    },
    /// A measurement vector's length does not match the operator's rows.
    SinogramLength {
        /// Rows of the projection matrix (expected sinogram length).
        expected: usize,
        /// Length actually supplied.
        got: usize,
    },
    /// The requested kernel layout was not built during preprocessing
    /// (e.g. `Kernel::Ell` without `Config::build_ell`).
    LayoutNotBuilt {
        /// Name of the missing layout.
        layout: &'static str,
    },
    /// Plan validation (`ReconstructorBuilder::validate_plan`) found
    /// invariant violations in the memoized structures; the report lists
    /// every one.
    PlanCheck(xct_check::Report),
    /// A distributed collective failed beyond recovery: a rank crashed or
    /// panicked, a peer timed out past its deadline, a message stayed
    /// corrupt after the retry budget, or a channel disconnected. The
    /// payload identifies the origin rank, peer, and collective.
    Comm(CommError),
    /// A solver checkpoint could not be saved, loaded, or decoded
    /// (truncated file, checksum mismatch, unsupported version, I/O).
    Checkpoint(CheckpointError),
}

impl fmt::Display for BuildError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BuildError::ZeroPartitionSize => {
                write!(f, "partition size must be positive")
            }
            BuildError::InvalidBufferSize { buffsize, max } => {
                write!(
                    f,
                    "buffer size {buffsize} invalid: must be in 1..={max} f32 elements"
                )
            }
            BuildError::ZeroRanks => write!(f, "distributed run needs at least one rank"),
            BuildError::ZeroBatch => write!(f, "batch width must be positive"),
            BuildError::BatchWidth { expected, got } => {
                write!(
                    f,
                    "got {got} slices but the reconstructor was built for a batch of {expected}"
                )
            }
            BuildError::DistributedBatchUnsupported { batch } => {
                write!(
                    f,
                    "distributed reconstruction is single-slice but this \
                     reconstructor was built for a batch of {batch}; rebuild \
                     with batch(1) or use the shared-memory batched path"
                )
            }
            BuildError::SinogramLength { expected, got } => {
                write!(
                    f,
                    "sinogram length {got} does not match matrix rows {expected}"
                )
            }
            BuildError::LayoutNotBuilt { layout } => {
                write!(f, "{layout} layout was not built during preprocessing")
            }
            BuildError::PlanCheck(report) => {
                write!(f, "plan validation failed: {report}")
            }
            BuildError::Comm(e) => write!(f, "distributed run failed: {e}"),
            BuildError::Checkpoint(e) => write!(f, "checkpoint failed: {e}"),
        }
    }
}

impl std::error::Error for BuildError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_are_specific() {
        assert!(BuildError::ZeroPartitionSize
            .to_string()
            .contains("partition"));
        let e = BuildError::InvalidBufferSize {
            buffsize: 0,
            max: 65536,
        };
        assert!(e.to_string().contains("65536"));
        let e = BuildError::SinogramLength {
            expected: 10,
            got: 7,
        };
        assert!(e.to_string().contains('7') && e.to_string().contains("10"));
    }
}

//! High-level single-call reconstruction API.

use crate::dist::{reconstruct_distributed, DistConfig, DistOutput};
use crate::operator::KernelBreakdown;
use crate::preprocess::{preprocess, Config, Kernel, Operators};
use crate::solvers::{run_engine, CgRule, Constraint, IterationRecord, SirtRule, StopRule};
use xct_geometry::{Grid, ScanGeometry, Sinogram};

/// Result of a reconstruction: the image plus convergence records.
pub struct ReconOutput {
    /// Reconstructed tomogram, row-major `n × n`.
    pub image: Vec<f32>,
    /// Per-iteration records (residual/solution norms, timings).
    pub records: Vec<IterationRecord>,
    /// Per-kernel time spent inside the projection operator. Shared-memory
    /// kernels attribute all SpMV time to `ap_s`; the distributed path
    /// splits it across `ap_s`/`c_s`/`r_s` (same schema as [`DistOutput`]).
    pub breakdown: KernelBreakdown,
}

/// A preprocessed reconstructor bound to one geometry. Preprocessing cost
/// is paid once in [`Reconstructor::new`] and amortized over every slice
/// reconstructed afterwards (Table 5's "All Slices" economics).
///
/// ```
/// use memxct::{Reconstructor, StopRule};
/// use xct_geometry::{disk, simulate_sinogram, Grid, NoiseModel, ScanGeometry};
///
/// let grid = Grid::new(32);
/// let scan = ScanGeometry::new(48, 32);
/// let truth = disk(0.6, 1.0).rasterize(32);
/// let sino = simulate_sinogram(&truth, &grid, &scan, NoiseModel::None, 0);
///
/// let rec = Reconstructor::new(grid, scan); // preprocess once
/// let out = rec.reconstruct_cg(&sino, StopRule::Fixed(30));
/// assert_eq!(out.image.len(), 32 * 32);
/// assert!(out.records.last().unwrap().residual_norm < 1.0);
/// // Per-kernel timings come from the same operator layer the
/// // distributed path uses (all SpMV time in `ap_s` here).
/// assert!(out.breakdown.ap_s > 0.0);
/// ```
pub struct Reconstructor {
    ops: Operators,
    kernel: Kernel,
}

impl Reconstructor {
    /// Preprocess with the default configuration (two-level pseudo-Hilbert
    /// ordering, buffered kernels).
    pub fn new(grid: Grid, scan: ScanGeometry) -> Self {
        Self::with_config(grid, scan, &Config::default())
    }

    /// Preprocess with an explicit configuration.
    pub fn with_config(grid: Grid, scan: ScanGeometry, config: &Config) -> Self {
        let ops = preprocess(grid, scan, config);
        let kernel = if config.build_buffered {
            Kernel::Buffered
        } else {
            Kernel::Parallel
        };
        Reconstructor { ops, kernel }
    }

    /// The memoized operators (for custom solver loops).
    pub fn operators(&self) -> &Operators {
        &self.ops
    }

    /// Which kernel this reconstructor applies.
    pub fn kernel(&self) -> Kernel {
        self.kernel
    }

    /// Reconstruct one slice with CG and the given stopping rule.
    pub fn reconstruct_cg(&self, sino: &Sinogram, stop: StopRule) -> ReconOutput {
        let y = self.ops.order_sinogram(sino);
        let op = self.ops.operator(self.kernel);
        let (x, records) = run_engine(op.as_ref(), &y, &mut CgRule::new(), Constraint::None, stop);
        ReconOutput {
            image: self.ops.unorder_tomogram(&x),
            records,
            breakdown: op.breakdown().unwrap_or_default(),
        }
    }

    /// Reconstruct one slice with SIRT (for baseline comparisons).
    pub fn reconstruct_sirt(&self, sino: &Sinogram, iters: usize) -> ReconOutput {
        let y = self.ops.order_sinogram(sino);
        let op = self.ops.operator(self.kernel);
        let (x, records) = run_engine(
            op.as_ref(),
            &y,
            &mut SirtRule::new(1.0),
            Constraint::None,
            StopRule::Fixed(iters),
        );
        ReconOutput {
            image: self.ops.unorder_tomogram(&x),
            records,
            breakdown: op.breakdown().unwrap_or_default(),
        }
    }

    /// Reconstruct one slice with the distributed (threads-as-ranks) CG
    /// path.
    pub fn reconstruct_distributed(&self, sino: &Sinogram, config: &DistConfig) -> DistOutput {
        let y = self.ops.order_sinogram(sino);
        reconstruct_distributed(&self.ops, &y, config)
    }

    /// Reconstruct a whole slice stack with CG, reusing the preprocessed
    /// operators for every slice — the amortization that makes Table 5's
    /// "All Slices" economics work ("the preprocessing cost is paid only
    /// once for the first slice").
    pub fn reconstruct_volume(&self, sinos: &[Sinogram], stop: StopRule) -> VolumeOutput {
        let mut images = Vec::with_capacity(sinos.len());
        let mut per_slice_seconds = Vec::with_capacity(sinos.len());
        for sino in sinos {
            let t = std::time::Instant::now();
            let out = self.reconstruct_cg(sino, stop);
            per_slice_seconds.push(t.elapsed().as_secs_f64());
            images.push(out.image);
        }
        VolumeOutput {
            images,
            per_slice_seconds,
            preprocess_seconds: self.ops.timings.total(),
        }
    }
}

/// Result of a multi-slice reconstruction.
pub struct VolumeOutput {
    /// One row-major image per input sinogram.
    pub images: Vec<Vec<f32>>,
    /// Wall-clock seconds per slice (preprocessing excluded).
    pub per_slice_seconds: Vec<f64>,
    /// One-time preprocessing cost being amortized.
    pub preprocess_seconds: f64,
}

impl VolumeOutput {
    /// Mean per-slice reconstruction time.
    pub fn mean_slice_seconds(&self) -> f64 {
        if self.per_slice_seconds.is_empty() {
            0.0
        } else {
            self.per_slice_seconds.iter().sum::<f64>() / self.per_slice_seconds.len() as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use xct_geometry::{disk, shepp_logan, simulate_sinogram, NoiseModel};

    fn rel_err(a: &[f32], b: &[f32]) -> f64 {
        let num: f64 = a
            .iter()
            .zip(b)
            .map(|(&x, &y)| ((x - y) as f64).powi(2))
            .sum::<f64>()
            .sqrt();
        let den: f64 = b.iter().map(|&y| (y as f64).powi(2)).sum::<f64>().sqrt();
        num / den
    }

    #[test]
    fn end_to_end_disk_reconstruction() {
        let n = 32u32;
        let grid = Grid::new(n);
        let scan = ScanGeometry::new(48, n);
        let img = disk(0.6, 1.0).rasterize(n);
        let sino = simulate_sinogram(&img, &grid, &scan, NoiseModel::None, 0);
        let rec = Reconstructor::new(grid, scan);
        let out = rec.reconstruct_cg(&sino, StopRule::Fixed(30));
        assert!(
            rel_err(&out.image, &img) < 0.15,
            "err {}",
            rel_err(&out.image, &img)
        );
    }

    #[test]
    fn shepp_logan_reconstruction_with_noise() {
        let n = 48u32;
        let grid = Grid::new(n);
        let scan = ScanGeometry::new(72, n);
        let img = shepp_logan().rasterize(n);
        let sino = simulate_sinogram(
            &img,
            &grid,
            &scan,
            NoiseModel::Poisson {
                incident: 1e6,
                scale: 0.02,
            },
            7,
        );
        let rec = Reconstructor::new(grid, scan);
        let out = rec.reconstruct_cg(
            &sino,
            StopRule::EarlyTermination {
                max_iters: 60,
                min_decrease: 1e-3,
            },
        );
        assert!(
            rel_err(&out.image, &img) < 0.35,
            "err {}",
            rel_err(&out.image, &img)
        );
    }

    #[test]
    fn distributed_equals_single_node() {
        let n = 24u32;
        let grid = Grid::new(n);
        let scan = ScanGeometry::new(36, n);
        let img = disk(0.5, 2.0).rasterize(n);
        let sino = simulate_sinogram(&img, &grid, &scan, NoiseModel::None, 0);
        let rec = Reconstructor::new(grid, scan);
        let single = rec.reconstruct_cg(&sino, StopRule::Fixed(10));
        let dist = rec.reconstruct_distributed(
            &sino,
            &crate::dist::DistConfig {
                ranks: 4,
                use_buffered: true,
                stop: StopRule::Fixed(10),
                solver: crate::dist::DistSolver::Cg,
            },
        );
        assert!(
            rel_err(&dist.image, &single.image) < 5e-3,
            "err {}",
            rel_err(&dist.image, &single.image)
        );
    }
}

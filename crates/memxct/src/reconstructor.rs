//! High-level single-call reconstruction API, built through
//! [`ReconstructorBuilder`].

use std::path::PathBuf;
use std::sync::{Arc, Mutex};

use crate::checkpoint;
use crate::dist::{
    try_reconstruct_distributed_ft, DistConfig, DistOutput, DistSolver, FaultTolerance,
};
use crate::errors::BuildError;
use crate::operator::{
    KernelBreakdown, PooledOperator, PooledPlans, ProjectionOperator, POOL_IMBALANCE_BACK,
    POOL_IMBALANCE_FORWARD,
};
use crate::preprocess::{
    try_preprocess_with_metrics, Config, DomainOrdering, Kernel, Operators, Projector,
};
use crate::request::{
    CheckpointPolicy, DistDetail, ExecMode, ReconError, ReconInput, ReconRequest, ReconResponse,
    RunControl, RunOutcome, Solver,
};
use crate::solvers::{
    run_engine_core, CgRule, Constraint, EngineExit, EngineSignal, IterationRecord, SirtRule,
    SolverWorkspace, StopRule, UpdateRule,
};
use xct_geometry::{Grid, ScanGeometry, Sinogram};
use xct_obs::{Metrics, MetricsSnapshot};
use xct_runtime::{CheckpointSink, CommConfig, FaultPlan, FileCheckpointSink, WorkerPool};

/// Result of a batched reconstruction: one image and record list per
/// slice, in the order the sinograms were supplied.
pub struct BatchOutput {
    /// Reconstructed tomograms, each row-major `n × n`.
    pub images: Vec<Vec<f32>>,
    /// Per-slice iteration records. A slice that terminated early (or
    /// hit a CG breakdown) has a shorter list than its batch-mates.
    pub slice_records: Vec<Vec<IterationRecord>>,
    /// Per-kernel time spent inside the projection operator, shared
    /// across the whole batch (the matrix is streamed once per SpMM).
    pub breakdown: KernelBreakdown,
}

/// Result of a reconstruction: the image plus convergence records.
pub struct ReconOutput {
    /// Reconstructed tomogram, row-major `n × n`.
    pub image: Vec<f32>,
    /// Per-iteration records (residual/solution norms, timings).
    pub records: Vec<IterationRecord>,
    /// Per-kernel time spent inside the projection operator. Shared-memory
    /// kernels attribute all SpMV time to `ap_s`; the distributed path
    /// splits it across `ap_s`/`c_s`/`r_s` (same schema as [`DistOutput`]).
    /// A view over the reconstructor's metrics registry — it accumulates
    /// across every solve the reconstructor runs.
    pub breakdown: KernelBreakdown,
}

/// Step-by-step construction of a [`Reconstructor`] with validated
/// defaults: geometry in, then optional ordering/projector/partition/
/// buffer/kernel/metrics overrides, then [`build`](Self::build).
///
/// ```
/// use memxct::{Kernel, ReconInput, ReconRequest, ReconstructorBuilder, StopRule};
/// use xct_geometry::{disk, simulate_sinogram, Grid, NoiseModel, ScanGeometry};
///
/// let grid = Grid::new(32);
/// let scan = ScanGeometry::new(48, 32);
/// let rec = ReconstructorBuilder::new(grid, scan)
///     .partition_size(64)
///     .kernel(Kernel::Parallel)
///     .build()
///     .unwrap();
/// let truth = disk(0.6, 1.0).rasterize(32);
/// let sino = simulate_sinogram(&truth, &grid, &scan, NoiseModel::None, 0);
/// let req = ReconRequest::cg(ReconInput::Slice(sino), StopRule::Fixed(10));
/// let out = rec.run(&req).unwrap();
/// assert_eq!(out.images[0].len(), 32 * 32);
/// // Everything the run recorded is one snapshot away.
/// let snap = rec.metrics();
/// assert_eq!(snap.counters["solver/iterations"], 10);
/// ```
pub struct ReconstructorBuilder {
    grid: Grid,
    scan: ScanGeometry,
    config: Config,
    kernel: Option<Kernel>,
    metrics: Option<Metrics>,
    validate: bool,
    use_pool: bool,
    pool_threads: Option<usize>,
    batch: usize,
    ft: FaultTolerance,
}

impl ReconstructorBuilder {
    /// Start from a geometry with the default configuration (two-level
    /// pseudo-Hilbert ordering, Siddon projector, buffered kernels).
    pub fn new(grid: Grid, scan: ScanGeometry) -> Self {
        ReconstructorBuilder {
            grid,
            scan,
            config: Config::default(),
            kernel: None,
            metrics: None,
            validate: false,
            use_pool: false,
            pool_threads: None,
            batch: 1,
            ft: FaultTolerance::disabled(),
        }
    }

    /// Replace the whole preprocessing configuration at once.
    pub fn config(mut self, config: Config) -> Self {
        self.config = config;
        self
    }

    /// Domain ordering (default: two-level pseudo-Hilbert).
    pub fn ordering(mut self, ordering: DomainOrdering) -> Self {
        self.config.ordering = ordering;
        self
    }

    /// Ray-discretization model (default: Siddon).
    pub fn projector(mut self, projector: Projector) -> Self {
        self.config.projector = projector;
        self
    }

    /// Row-partition size (default 128; must be positive).
    pub fn partition_size(mut self, partsize: usize) -> Self {
        self.config.partsize = partsize;
        self
    }

    /// Input-buffer capacity in f32 elements (default 2048; must fit the
    /// buffered kernel's 16-bit addressing when buffered layouts are
    /// built).
    pub fn buffer_size(mut self, buffsize: usize) -> Self {
        self.config.buffsize = buffsize;
        self
    }

    /// Whether to build the multi-stage buffered layouts (default true).
    pub fn build_buffered(mut self, build: bool) -> Self {
        self.config.build_buffered = build;
        self
    }

    /// Whether to build the ELL (GPU-style) layouts (default false).
    pub fn build_ell(mut self, build: bool) -> Self {
        self.config.build_ell = build;
        self
    }

    /// Which SpMV kernel the reconstructor applies. Default: buffered if
    /// buffered layouts are built, else parallel CSR.
    pub fn kernel(mut self, kernel: Kernel) -> Self {
        self.kernel = Some(kernel);
        self
    }

    /// Where to record observability data. Default: a fresh private
    /// collecting registry; pass a shared handle to aggregate across
    /// components, or [`Metrics::noop`] to disable collection entirely.
    pub fn metrics(mut self, metrics: Metrics) -> Self {
        self.metrics = Some(metrics);
        self
    }

    /// Execute solves on a persistent worker pool over static
    /// nnz-balanced partitions (default false). The pool's threads are
    /// spawned once at [`build`](Self::build) and parked between
    /// dispatches; the row partitions and reduction plans are precomputed
    /// there too, so steady-state solver iterations perform no thread
    /// spawns and no heap allocations. Results are deterministic: bit
    /// identical for every thread count (though the pooled reduction
    /// order differs from the unpooled path in the last bits).
    pub fn use_pool(mut self, use_pool: bool) -> Self {
        self.use_pool = use_pool;
        self
    }

    /// Worker count for [`use_pool`](Self::use_pool). Default: the
    /// `RAYON_NUM_THREADS` environment variable, else available
    /// parallelism.
    pub fn pool_threads(mut self, threads: usize) -> Self {
        self.pool_threads = Some(threads);
        self
    }

    /// Solve `batch` slices per engine run (default 1). Each SpMV becomes
    /// an SpMM that streams the matrix once for all `batch` right-hand
    /// sides, amortizing the memory traffic that dominates the kernels.
    /// Batched reconstructors solve through
    /// [`Reconstructor::try_reconstruct_cg_batch`] /
    /// [`Reconstructor::try_reconstruct_sirt_batch`] (the single-slice
    /// entry points return [`BuildError::BatchWidth`]); column `j` of a
    /// batched solve is bit-identical to solving slice `j` alone.
    pub fn batch(mut self, batch: usize) -> Self {
        self.batch = batch;
        self
    }

    /// Run the `xct-check` invariant sweep ([`crate::plan_check`]) over
    /// every memoized structure after preprocessing (default false).
    /// [`build`](Self::build) then fails with [`BuildError::PlanCheck`] if
    /// any invariant is violated. Validation is read-only — a validated
    /// build is bit-identical to an unvalidated one.
    pub fn validate_plan(mut self, validate: bool) -> Self {
        self.validate = validate;
        self
    }

    /// Replace the whole fault-tolerance policy at once (see
    /// [`FaultTolerance`]). The builder default is
    /// [`FaultTolerance::disabled`] — the historical fail-fast behaviour.
    pub fn fault_tolerance(mut self, ft: FaultTolerance) -> Self {
        self.ft = ft;
        self
    }

    /// Take a snapshot of the solver state after every `every` iterations
    /// (0 = never). Applies to the serial solves and to the distributed
    /// path; needs a sink ([`checkpoint_path`](Self::checkpoint_path) or
    /// [`checkpoint_sink`](Self::checkpoint_sink)) to have any effect.
    pub fn checkpoint_every(mut self, every: usize) -> Self {
        self.ft.checkpoint_every = every;
        self
    }

    /// Store snapshots in files rooted at `base` (slot 0 lands at
    /// `{base}.0`), written atomically via a temp file and a rename.
    pub fn checkpoint_path(self, base: impl Into<PathBuf>) -> Self {
        self.checkpoint_sink(Arc::new(FileCheckpointSink::new(base)))
    }

    /// Store snapshots in an arbitrary [`CheckpointSink`].
    pub fn checkpoint_sink(mut self, sink: Arc<dyn CheckpointSink>) -> Self {
        self.ft.sink = Some(sink);
        self
    }

    /// Resume solves from the sink's latest snapshot when one exists
    /// (default false). A resumed solve is bit-identical to an
    /// uninterrupted one.
    pub fn resume(mut self, resume: bool) -> Self {
        self.ft.resume = resume;
        self
    }

    /// Deterministic chaos plan consulted by every distributed collective
    /// (default empty — injects nothing). Also switches the distributed
    /// path onto the supervised runtime with the default collective
    /// deadline; see [`comm_config`](Self::comm_config) to tune it.
    pub fn fault_plan(mut self, plan: FaultPlan) -> Self {
        self.ft.faults = Arc::new(plan);
        if self.ft.comm.deadline.is_none() {
            self.ft.comm = CommConfig::default();
        }
        self
    }

    /// Deadline/retry/backoff configuration for the distributed
    /// collectives (default: unbounded waits, matching the historical
    /// behaviour).
    pub fn comm_config(mut self, comm: CommConfig) -> Self {
        self.ft.comm = comm;
        self
    }

    /// How many degraded restarts (each over one rank fewer) a distributed
    /// solve attempts after an unrecoverable rank loss (default 0).
    pub fn max_restarts(mut self, restarts: usize) -> Self {
        self.ft.max_restarts = restarts;
        self
    }

    /// Validate, preprocess, and produce the [`Reconstructor`].
    ///
    /// Rejects zero partition sizes, out-of-range buffer sizes, and kernel
    /// choices whose layout is not being built ([`Kernel::Buffered`]
    /// without buffered layouts, [`Kernel::Ell`] without ELL layouts).
    pub fn build(self) -> Result<Reconstructor, BuildError> {
        let kernel = match self.kernel {
            Some(k) => {
                match k {
                    Kernel::Buffered if !self.config.build_buffered => {
                        return Err(BuildError::LayoutNotBuilt { layout: "buffered" })
                    }
                    Kernel::Ell if !self.config.build_ell => {
                        return Err(BuildError::LayoutNotBuilt { layout: "ELL" })
                    }
                    _ => {}
                }
                k
            }
            None if self.config.build_buffered => Kernel::Buffered,
            None => Kernel::Parallel,
        };
        if self.batch == 0 {
            return Err(BuildError::ZeroBatch);
        }
        let metrics = self.metrics.unwrap_or_else(Metrics::collecting);
        let ops = try_preprocess_with_metrics(self.grid, self.scan, &self.config, &metrics)?;
        let exec = if self.use_pool {
            let threads = self.pool_threads.unwrap_or_else(xct_runtime::env_threads);
            let plans = PooledPlans::new_batched(&ops, kernel, threads, self.batch);
            metrics.gauge_set(POOL_IMBALANCE_FORWARD, plans.forward().imbalance());
            metrics.gauge_set(POOL_IMBALANCE_BACK, plans.back().imbalance());
            Some(ExecContext {
                pool: WorkerPool::with_metrics(threads, metrics.clone()),
                plans,
            })
        } else {
            None
        };
        if self.validate {
            let mut report = crate::plan_check::validate_plan(&ops);
            if let Some(exec) = &exec {
                crate::plan_check::exec_checker(&exec.plans).run_into(&mut report);
            }
            if !report.is_ok() {
                return Err(BuildError::PlanCheck(report));
            }
        }
        Ok(Reconstructor {
            ops,
            kernel,
            metrics,
            exec,
            batch: self.batch,
            ft: self.ft,
            workspace: Mutex::new(SolverWorkspace::new_batched(0, 0, self.batch)),
        })
    }
}

/// The execution context of a pooled reconstructor: the persistent
/// worker pool and the static partition/reduction plans, both built once
/// at [`ReconstructorBuilder::build`] and reused by every solve.
struct ExecContext {
    pool: WorkerPool,
    plans: PooledPlans,
}

/// How one engine run ended: to its stop rule, or preempted at an
/// iteration boundary with its state checkpointed.
enum SolveExit {
    Done(BatchOutput),
    Preempted { iteration: usize },
}

/// A preprocessed reconstructor bound to one geometry. Preprocessing cost
/// is paid once at construction and amortized over every slice
/// reconstructed afterwards (Table 5's "All Slices" economics).
///
/// ```
/// use memxct::{ReconInput, ReconRequest, Reconstructor, StopRule};
/// use xct_geometry::{disk, simulate_sinogram, Grid, NoiseModel, ScanGeometry};
///
/// let grid = Grid::new(32);
/// let scan = ScanGeometry::new(48, 32);
/// let truth = disk(0.6, 1.0).rasterize(32);
/// let sino = simulate_sinogram(&truth, &grid, &scan, NoiseModel::None, 0);
///
/// let rec = Reconstructor::new(grid, scan); // preprocess once
/// let req = ReconRequest::cg(ReconInput::Slice(sino), StopRule::Fixed(30));
/// let out = rec.run(&req).unwrap();
/// assert_eq!(out.images[0].len(), 32 * 32);
/// assert!(out.slice_records[0].last().unwrap().residual_norm < 1.0);
/// // Per-kernel timings come from the same operator layer the
/// // distributed path uses (all SpMV time in `ap_s` here).
/// assert!(out.breakdown.ap_s > 0.0);
/// ```
pub struct Reconstructor {
    ops: Operators,
    kernel: Kernel,
    metrics: Metrics,
    /// Persistent pool + static plans when built with `use_pool(true)`.
    exec: Option<ExecContext>,
    /// Slices per engine run (SpMM width); 1 = the single-slice paths.
    batch: usize,
    /// Fault-tolerance policy: checkpoint cadence/sink, resume, chaos
    /// plan, collective deadlines, restart budget.
    ft: FaultTolerance,
    /// Solver buffers reused across solves — after the first solve at
    /// this geometry, steady-state iterations allocate nothing.
    workspace: Mutex<SolverWorkspace>,
}

impl Reconstructor {
    /// Preprocess with the default configuration (two-level pseudo-Hilbert
    /// ordering, buffered kernels). Thin shim over
    /// [`ReconstructorBuilder`].
    pub fn new(grid: Grid, scan: ScanGeometry) -> Self {
        match ReconstructorBuilder::new(grid, scan).build() {
            Ok(rec) => rec,
            // lint: allow(no-panic) documented panicking shim over the try_ API
            Err(e) => panic!("invalid reconstructor config: {e}"),
        }
    }

    /// Preprocess with an explicit configuration. Thin shim over
    /// [`ReconstructorBuilder::config`].
    ///
    /// # Panics
    /// Panics on an invalid configuration; use the builder to get a
    /// [`BuildError`] instead.
    pub fn with_config(grid: Grid, scan: ScanGeometry, config: &Config) -> Self {
        match ReconstructorBuilder::new(grid, scan)
            .config(*config)
            .build()
        {
            Ok(rec) => rec,
            // lint: allow(no-panic) documented panicking shim over the try_ API
            Err(e) => panic!("invalid reconstructor config: {e}"),
        }
    }

    /// Start building a reconstructor for this geometry.
    pub fn builder(grid: Grid, scan: ScanGeometry) -> ReconstructorBuilder {
        ReconstructorBuilder::new(grid, scan)
    }

    /// The memoized operators (for custom solver loops).
    pub fn operators(&self) -> &Operators {
        &self.ops
    }

    /// Re-run the `xct-check` invariant sweep over the memoized structures
    /// at any time (see [`crate::plan_check::validate_plan`]); for a
    /// pooled reconstructor the sweep also covers the execution plans
    /// ([`crate::plan_check::exec_checker`]).
    pub fn validate_plan(&self) -> xct_check::Report {
        let mut report = crate::plan_check::validate_plan(&self.ops);
        if let Some(exec) = &self.exec {
            crate::plan_check::exec_checker(&exec.plans).run_into(&mut report);
        }
        report
    }

    /// Whether solves run on the persistent worker pool (and with how
    /// many threads).
    pub fn pool_threads(&self) -> Option<usize> {
        self.exec.as_ref().map(|e| e.pool.num_threads())
    }

    /// Which kernel this reconstructor applies.
    pub fn kernel(&self) -> Kernel {
        self.kernel
    }

    /// How many slices each engine run solves (the SpMM width).
    pub fn batch(&self) -> usize {
        self.batch
    }

    /// Snapshot of everything recorded so far: preprocessing phase
    /// timings, per-kernel SpMV counters, per-iteration solver series, and
    /// (after distributed runs) the communication matrix. Empty when the
    /// builder was given [`Metrics::noop`].
    pub fn metrics(&self) -> MetricsSnapshot {
        self.metrics.snapshot()
    }

    /// The live metrics handle (e.g. to share with other components).
    pub fn metrics_handle(&self) -> &Metrics {
        &self.metrics
    }

    fn check_sinogram(&self, sino: &Sinogram) -> Result<(), BuildError> {
        if sino.data().len() != self.ops.a.nrows() {
            return Err(BuildError::SinogramLength {
                expected: self.ops.a.nrows(),
                got: sino.data().len(),
            });
        }
        Ok(())
    }

    /// Reconstruct one slice with CG and the given stopping rule.
    ///
    /// # Panics
    /// Panics if the sinogram length does not match the geometry; use
    /// [`Reconstructor::run`] for a typed error.
    #[deprecated(
        note = "build `ReconRequest::cg(ReconInput::Slice(..), stop)` and call `Reconstructor::run`"
    )]
    #[allow(deprecated)]
    pub fn reconstruct_cg(&self, sino: &Sinogram, stop: StopRule) -> ReconOutput {
        match self.try_reconstruct_cg(sino, stop) {
            Ok(out) => out,
            // lint: allow(no-panic) documented panicking shim over the try_ API
            Err(e) => panic!("invalid reconstruction input: {e}"),
        }
    }

    /// Run one solve through the engine: pooled operator when `pooled`
    /// (the caller has verified the pool exists), plain kernel operator
    /// otherwise, always inside the persistent workspace. The
    /// measurement slab `y` holds `batch` slice-major blocks of ordered
    /// sinogram data. With a checkpoint policy the solve resumes from
    /// the sink's latest snapshot (when the policy's `resume` is on) and
    /// saves one at the policy's cadence; a preemption request from
    /// `ctrl` saves a snapshot at the next iteration boundary regardless
    /// of cadence and stops the engine.
    #[allow(clippy::too_many_arguments)]
    fn run_solver(
        &self,
        y: &[f32],
        rule: &mut dyn UpdateRule,
        constraint: Constraint,
        stop: StopRule,
        pooled: bool,
        ckpt: Option<&CheckpointPolicy>,
        ctrl: Option<&RunControl>,
    ) -> Result<SolveExit, BuildError> {
        let op: Box<dyn ProjectionOperator + '_> = match (&self.exec, pooled) {
            (Some(exec), true) => Box::new(
                PooledOperator::new(&self.ops, self.kernel, &exec.plans, &exec.pool)
                    .with_metrics(self.metrics.clone()),
            ),
            _ => self
                .ops
                .operator_with_metrics(self.kernel, self.metrics.clone()),
        };
        let mut ws = self.workspace.lock().unwrap_or_else(|p| p.into_inner());
        let nrows = self.ops.a.nrows();
        let ncols = self.ops.a.ncols();
        let plan_hash = checkpoint::plan_fingerprint(&self.ops);
        let resume_point = match ckpt {
            Some(p) if p.resume => checkpoint::load_state(
                p.sink.as_ref(),
                0,
                plan_hash,
                stop.max_iters(),
                nrows,
                ncols,
                self.batch,
            )?
            .map(|st| {
                // validate_snapshot already rejected any width mismatch.
                debug_assert_eq!(st.batch, self.batch);
                ws.resume_batched(
                    nrows,
                    ncols,
                    stop.max_iters(),
                    &st.x,
                    &st.resid,
                    &st.dir,
                    st.slice_records,
                    &st.prev_res,
                    &st.active,
                );
                rule.restore_scalars(&st.scalars);
                st.iteration
            }),
            _ => None,
        };
        let every = ckpt.map_or(0, |p| p.every);
        let exit = run_engine_core(
            op.as_ref(),
            y,
            rule,
            constraint,
            stop,
            &self.metrics,
            &mut ws,
            resume_point,
            |next_iter, ws, rule| {
                let preempt = ctrl.is_some_and(|c| c.should_preempt(next_iter));
                let cadence = every != 0 && next_iter % every == 0;
                let (Some(p), true) = (ckpt, preempt || cadence) else {
                    return Ok(EngineSignal::Continue);
                };
                let snap = checkpoint::encode_state_batched(
                    plan_hash,
                    next_iter,
                    ws.batch(),
                    ws.prev_res(),
                    ws.x(),
                    ws.resid(),
                    ws.dir(),
                    ws.active(),
                    ws.slice_records(),
                    &rule.carried_scalars_in(ws),
                );
                p.sink.save(0, &snap.encode())?;
                Ok(if preempt {
                    EngineSignal::Stop
                } else {
                    EngineSignal::Continue
                })
            },
        )
        .map_err(BuildError::Checkpoint)?;
        if let EngineExit::Stopped { next_iter } = exit {
            return Ok(SolveExit::Preempted {
                iteration: next_iter,
            });
        }
        let images = ws
            .x()
            .chunks_exact(ncols.max(1))
            .map(|slice| self.ops.unorder_tomogram(slice))
            .collect();
        Ok(SolveExit::Done(BatchOutput {
            images,
            slice_records: ws.slice_records().to_vec(),
            breakdown: op.breakdown().unwrap_or_default(),
        }))
    }

    /// The builder's fault-tolerance policy viewed as a request-level
    /// checkpoint policy (`None` when no sink was configured).
    fn builder_checkpoint(&self) -> Option<CheckpointPolicy> {
        self.ft.sink.as_ref().map(|sink| CheckpointPolicy {
            every: self.ft.checkpoint_every,
            sink: sink.clone(),
            resume: self.ft.resume,
        })
    }

    /// The mode the legacy entry points implicitly ran in: pooled when
    /// the reconstructor was built with a pool, serial otherwise.
    fn native_mode(&self) -> ExecMode {
        if self.exec.is_some() {
            ExecMode::Pooled
        } else {
            ExecMode::Serial
        }
    }

    fn make_rule(&self, solver: Solver) -> Box<dyn UpdateRule> {
        match solver {
            Solver::Cg => Box::new(CgRule::new()),
            Solver::Sirt { relax } => Box::new(SirtRule::new(relax)),
        }
    }

    /// Execute one [`ReconRequest`]. The single front door: every legacy
    /// entry point is a deprecated shim over this, and the `xct-serve`
    /// job runtime submits exactly these requests. See [`ReconRequest`]
    /// for the request model.
    pub fn run(&self, req: &ReconRequest) -> Result<ReconResponse, ReconError> {
        match self.run_controlled(req, &RunControl::new())? {
            RunOutcome::Completed(resp) => Ok(resp),
            RunOutcome::Preempted { .. } => {
                // lint: allow(no-panic) an inert control never preempts
                unreachable!("an inert RunControl cannot request preemption")
            }
        }
    }

    /// Execute one [`ReconRequest`] under cooperative preemption: when
    /// `ctrl` requests preemption, the solve snapshots into the request's
    /// checkpoint sink at the next iteration boundary and returns
    /// [`RunOutcome::Preempted`]; re-running the same request with
    /// `resume = true` continues bit-identically. Preemption is honored
    /// for [`ReconInput::Slice`]/[`ReconInput::Batch`] under
    /// [`ExecMode::Serial`]/[`ExecMode::Pooled`]; volume and distributed
    /// requests run to completion (a volume yields between chunks only at
    /// the request level, and the distributed path owns its own
    /// checkpoint protocol).
    pub fn run_controlled(
        &self,
        req: &ReconRequest,
        ctrl: &RunControl,
    ) -> Result<RunOutcome, ReconError> {
        if let Solver::Sirt { relax } = req.solver {
            if relax.is_nan() || relax <= 0.0 {
                return Err(ReconError::InvalidRelaxation { relax });
            }
        }
        if let ExecMode::Distributed { config, ft } = &req.mode {
            return self
                .run_distributed(req, config, ft.as_ref())
                .map(RunOutcome::Completed);
        }
        let pooled = match req.mode {
            ExecMode::Pooled => {
                if self.exec.is_none() {
                    return Err(ReconError::PoolNotBuilt);
                }
                true
            }
            _ => false,
        };
        // Effective durability: request override, else the builder's
        // checkpoint configuration.
        let builder_ckpt = self.builder_checkpoint();
        let ckpt = req.checkpoint.as_ref().or(builder_ckpt.as_ref());
        match &req.input {
            ReconInput::Slice(sino) => {
                if self.batch != 1 {
                    return Err(BuildError::BatchWidth {
                        expected: self.batch,
                        got: 1,
                    }
                    .into());
                }
                self.check_sinogram(sino)?;
                let y = self.ops.order_sinogram(sino);
                self.run_group(&y, 1, req.solver, req.stop, pooled, ckpt, Some(ctrl))
            }
            ReconInput::Batch(sinos) => {
                let y = self.order_batch(sinos)?;
                self.run_group(
                    &y,
                    sinos.len(),
                    req.solver,
                    req.stop,
                    pooled,
                    ckpt,
                    Some(ctrl),
                )
            }
            ReconInput::Volume(sinos) => self
                .run_volume_request(sinos, req.solver, req.stop, pooled)
                .map(RunOutcome::Completed),
        }
    }

    /// One engine run over an ordered measurement slab covering `visible`
    /// caller slices (a padded tail group solves extra columns that are
    /// dropped here), wrapped into a response.
    #[allow(clippy::too_many_arguments)]
    fn run_group(
        &self,
        y: &[f32],
        visible: usize,
        solver: Solver,
        stop: StopRule,
        pooled: bool,
        ckpt: Option<&CheckpointPolicy>,
        ctrl: Option<&RunControl>,
    ) -> Result<RunOutcome, ReconError> {
        let mut rule = self.make_rule(solver);
        let t = std::time::Instant::now();
        match self.run_solver(y, rule.as_mut(), Constraint::None, stop, pooled, ckpt, ctrl)? {
            SolveExit::Preempted { iteration } => Ok(RunOutcome::Preempted { iteration }),
            SolveExit::Done(out) => {
                let share = t.elapsed().as_secs_f64() / visible.max(1) as f64;
                Ok(RunOutcome::Completed(ReconResponse {
                    images: out.images.into_iter().take(visible).collect(),
                    slice_records: out.slice_records.into_iter().take(visible).collect(),
                    breakdown: out.breakdown,
                    per_slice_seconds: vec![share; visible],
                    preprocess_seconds: self.ops.timings.total(),
                    dist: None,
                }))
            }
        }
    }

    /// Chunked volume execution: groups of `batch` slices per engine run,
    /// a short tail group padded with clones of its last sinogram and the
    /// padded outputs discarded. Runs without checkpointing (the
    /// per-chunk solves would alias snapshot slot 0) and to completion.
    fn run_volume_request(
        &self,
        sinos: &[Sinogram],
        solver: Solver,
        stop: StopRule,
        pooled: bool,
    ) -> Result<ReconResponse, ReconError> {
        let mut images = Vec::with_capacity(sinos.len());
        let mut slice_records = Vec::with_capacity(sinos.len());
        let mut per_slice_seconds = Vec::with_capacity(sinos.len());
        let mut breakdown = KernelBreakdown::default();
        for group in sinos.chunks(self.batch.max(1)) {
            let y = if group.len() == self.batch {
                self.order_batch(group)?
            } else {
                let mut padded: Vec<Sinogram> = group.to_vec();
                while padded.len() < self.batch {
                    // lint: allow(no-panic) chunks() yields non-empty groups
                    padded.push(padded.last().unwrap().clone());
                }
                self.order_batch(&padded)?
            };
            match self.run_group(&y, group.len(), solver, stop, pooled, None, None)? {
                RunOutcome::Completed(resp) => {
                    images.extend(resp.images);
                    slice_records.extend(resp.slice_records);
                    per_slice_seconds.extend(resp.per_slice_seconds);
                    breakdown = resp.breakdown;
                }
                RunOutcome::Preempted { .. } => {
                    // lint: allow(no-panic) chunk solves get no control, so they cannot preempt
                    unreachable!("volume chunks run without a preemption control")
                }
            }
        }
        Ok(ReconResponse {
            images,
            slice_records,
            breakdown,
            per_slice_seconds,
            preprocess_seconds: self.ops.timings.total(),
            dist: None,
        })
    }

    /// Distributed execution of a request. Single-slice only; the
    /// request's `solver`/`stop` override the `config`'s, and a request
    /// checkpoint policy overrides the fault-tolerance policy's
    /// sink/cadence/resume.
    fn run_distributed(
        &self,
        req: &ReconRequest,
        config: &DistConfig,
        ft_override: Option<&FaultTolerance>,
    ) -> Result<ReconResponse, ReconError> {
        // The distributed halo-exchange path is single-slice; a batched
        // reconstructor must not silently solve one slice of its batch.
        if self.batch != 1 {
            return Err(BuildError::DistributedBatchUnsupported { batch: self.batch }.into());
        }
        let ReconInput::Slice(sino) = &req.input else {
            return Err(BuildError::DistributedBatchUnsupported {
                batch: req.input.num_slices(),
            }
            .into());
        };
        self.check_sinogram(sino)?;
        let mut ft = ft_override.unwrap_or(&self.ft).clone();
        if let Some(p) = &req.checkpoint {
            ft.sink = Some(p.sink.clone());
            ft.checkpoint_every = p.every;
            ft.resume = p.resume;
        }
        let dconf = DistConfig {
            ranks: config.ranks,
            use_buffered: config.use_buffered,
            stop: req.stop,
            solver: match req.solver {
                Solver::Cg => DistSolver::Cg,
                Solver::Sirt { .. } => DistSolver::Sirt,
            },
        };
        let y = self.ops.order_sinogram(sino);
        let t = std::time::Instant::now();
        let out = try_reconstruct_distributed_ft(&self.ops, &y, &dconf, &ft, &self.metrics)?;
        let elapsed = t.elapsed().as_secs_f64();
        let mut total = KernelBreakdown::default();
        for b in &out.breakdown {
            total.ap_s += b.ap_s;
            total.c_s += b.c_s;
            total.r_s += b.r_s;
        }
        Ok(ReconResponse {
            images: vec![out.image],
            slice_records: vec![out.records],
            breakdown: total,
            per_slice_seconds: vec![elapsed],
            preprocess_seconds: self.ops.timings.total(),
            dist: Some(DistDetail {
                breakdowns: out.breakdown,
                ledger: out.ledger,
                volumes: out.volumes,
            }),
        })
    }

    /// Order a batch of sinograms into one slice-major measurement slab.
    fn order_batch(&self, sinos: &[Sinogram]) -> Result<Vec<f32>, BuildError> {
        if sinos.len() != self.batch {
            return Err(BuildError::BatchWidth {
                expected: self.batch,
                got: sinos.len(),
            });
        }
        let nrows = self.ops.a.nrows();
        let mut y = Vec::with_capacity(self.batch * nrows);
        for sino in sinos {
            self.check_sinogram(sino)?;
            y.extend_from_slice(&self.ops.order_sinogram(sino));
        }
        Ok(y)
    }

    /// Fallible [`Reconstructor::reconstruct_cg`].
    #[deprecated(
        note = "build `ReconRequest::cg(ReconInput::Slice(..), stop)` and call `Reconstructor::run`"
    )]
    pub fn try_reconstruct_cg(
        &self,
        sino: &Sinogram,
        stop: StopRule,
    ) -> Result<ReconOutput, BuildError> {
        let req = ReconRequest::cg(ReconInput::Slice(sino.clone()), stop).mode(self.native_mode());
        self.run(&req)
            .map(single_output)
            .map_err(ReconError::into_build)
    }

    /// Reconstruct `batch` slices in one engine run with CG. Requires the
    /// reconstructor to have been built with
    /// [`ReconstructorBuilder::batch`] matching `sinos.len()`; every SpMV
    /// becomes an SpMM streaming the matrix once for the whole batch.
    /// Column `j` of the result is bit-identical to reconstructing
    /// `sinos[j]` alone, and per-slice stopping rules retire converged
    /// slices while the rest keep iterating.
    #[deprecated(
        note = "build `ReconRequest::cg(ReconInput::Batch(..), stop)` and call `Reconstructor::run`"
    )]
    pub fn try_reconstruct_cg_batch(
        &self,
        sinos: &[Sinogram],
        stop: StopRule,
    ) -> Result<BatchOutput, BuildError> {
        let req =
            ReconRequest::cg(ReconInput::Batch(sinos.to_vec()), stop).mode(self.native_mode());
        self.run(&req)
            .map(batch_output)
            .map_err(ReconError::into_build)
    }

    /// Batched [`Reconstructor::try_reconstruct_sirt`]; see
    /// [`Reconstructor::try_reconstruct_cg_batch`] for the batch
    /// semantics.
    #[deprecated(
        note = "build `ReconRequest::sirt(ReconInput::Batch(..), iters)` and call `Reconstructor::run`"
    )]
    pub fn try_reconstruct_sirt_batch(
        &self,
        sinos: &[Sinogram],
        iters: usize,
    ) -> Result<BatchOutput, BuildError> {
        let req =
            ReconRequest::sirt(ReconInput::Batch(sinos.to_vec()), iters).mode(self.native_mode());
        self.run(&req)
            .map(batch_output)
            .map_err(ReconError::into_build)
    }

    /// Reconstruct one slice with SIRT (for baseline comparisons).
    ///
    /// # Panics
    /// Panics if the sinogram length does not match the geometry; use
    /// [`Reconstructor::run`] for a typed error.
    #[deprecated(
        note = "build `ReconRequest::sirt(ReconInput::Slice(..), iters)` and call `Reconstructor::run`"
    )]
    #[allow(deprecated)]
    pub fn reconstruct_sirt(&self, sino: &Sinogram, iters: usize) -> ReconOutput {
        match self.try_reconstruct_sirt(sino, iters) {
            Ok(out) => out,
            // lint: allow(no-panic) documented panicking shim over the try_ API
            Err(e) => panic!("invalid reconstruction input: {e}"),
        }
    }

    /// Fallible [`Reconstructor::reconstruct_sirt`].
    #[deprecated(
        note = "build `ReconRequest::sirt(ReconInput::Slice(..), iters)` and call `Reconstructor::run`"
    )]
    pub fn try_reconstruct_sirt(
        &self,
        sino: &Sinogram,
        iters: usize,
    ) -> Result<ReconOutput, BuildError> {
        let req =
            ReconRequest::sirt(ReconInput::Slice(sino.clone()), iters).mode(self.native_mode());
        self.run(&req)
            .map(single_output)
            .map_err(ReconError::into_build)
    }

    /// Reconstruct one slice with the distributed (threads-as-ranks) CG
    /// path.
    ///
    /// # Panics
    /// Panics on a zero rank count or mismatched sinogram; use
    /// [`Reconstructor::run`] with [`ExecMode::Distributed`] for a typed
    /// error.
    #[deprecated(
        note = "build a `ReconRequest` with `ExecMode::Distributed` and call `Reconstructor::run`"
    )]
    #[allow(deprecated)]
    pub fn reconstruct_distributed(&self, sino: &Sinogram, config: &DistConfig) -> DistOutput {
        match self.try_reconstruct_distributed(sino, config) {
            Ok(out) => out,
            // lint: allow(no-panic) documented panicking shim over the try_ API
            Err(e) => panic!("invalid distributed run: {e}"),
        }
    }

    /// Fallible [`Reconstructor::reconstruct_distributed`]. The run's
    /// kernel breakdown, convergence series, and communication matrix are
    /// recorded into this reconstructor's metrics registry. Runs under the
    /// builder's fault-tolerance policy — with the default
    /// ([`FaultTolerance::disabled`]) this is the historical fail-fast
    /// path, bit-identically.
    #[deprecated(
        note = "build a `ReconRequest` with `ExecMode::Distributed` and call `Reconstructor::run`"
    )]
    #[allow(deprecated)]
    pub fn try_reconstruct_distributed(
        &self,
        sino: &Sinogram,
        config: &DistConfig,
    ) -> Result<DistOutput, BuildError> {
        self.try_reconstruct_distributed_ft(sino, config, &self.ft)
    }

    /// [`Reconstructor::try_reconstruct_distributed`] under an explicit
    /// fault-tolerance policy (overriding the builder's).
    #[deprecated(
        note = "build a `ReconRequest` with `ExecMode::Distributed { ft: Some(..) }` and call `Reconstructor::run`"
    )]
    pub fn try_reconstruct_distributed_ft(
        &self,
        sino: &Sinogram,
        config: &DistConfig,
        ft: &FaultTolerance,
    ) -> Result<DistOutput, BuildError> {
        let req = ReconRequest {
            solver: match config.solver {
                DistSolver::Cg => Solver::Cg,
                DistSolver::Sirt => Solver::Sirt { relax: 1.0 },
            },
            stop: config.stop,
            input: ReconInput::Slice(sino.clone()),
            mode: ExecMode::Distributed {
                config: *config,
                ft: Some(ft.clone()),
            },
            checkpoint: None,
        };
        let mut resp = self.run(&req).map_err(ReconError::into_build)?;
        let image = if resp.images.is_empty() {
            Vec::new()
        } else {
            resp.images.swap_remove(0)
        };
        let records = if resp.slice_records.is_empty() {
            Vec::new()
        } else {
            resp.slice_records.swap_remove(0)
        };
        match resp.dist {
            Some(d) => Ok(DistOutput {
                image,
                records,
                breakdown: d.breakdowns,
                ledger: d.ledger,
                volumes: d.volumes,
            }),
            // Defensive: a distributed run always carries its detail.
            None => Err(BuildError::LayoutNotBuilt {
                layout: "distributed detail",
            }),
        }
    }

    /// The fault-tolerance policy this reconstructor runs under.
    pub fn fault_tolerance(&self) -> &FaultTolerance {
        &self.ft
    }

    /// Reconstruct a whole slice stack with CG, reusing the preprocessed
    /// operators for every slice — the amortization that makes Table 5's
    /// "All Slices" economics work ("the preprocessing cost is paid only
    /// once for the first slice"). A reconstructor built with
    /// [`ReconstructorBuilder::batch`] `> 1` solves the stack in groups
    /// of `batch` slices per engine run (SpMM), padding a short tail
    /// group with clones of its last sinogram and discarding the padded
    /// outputs; each slice in a group is attributed an equal share of the
    /// group's wall-clock time.
    #[deprecated(
        note = "build `ReconRequest::cg(ReconInput::Volume(..), stop)` and call `Reconstructor::run`"
    )]
    pub fn reconstruct_volume(&self, sinos: &[Sinogram], stop: StopRule) -> VolumeOutput {
        let req =
            ReconRequest::cg(ReconInput::Volume(sinos.to_vec()), stop).mode(self.native_mode());
        match self.run(&req) {
            Ok(resp) => VolumeOutput {
                images: resp.images,
                per_slice_seconds: resp.per_slice_seconds,
                preprocess_seconds: resp.preprocess_seconds,
            },
            // lint: allow(no-panic) documented panicking shim over the run API
            Err(e) => panic!("invalid reconstruction input: {e}"),
        }
    }
}

/// Unwrap a single-slice response into the legacy [`ReconOutput`].
fn single_output(mut resp: ReconResponse) -> ReconOutput {
    ReconOutput {
        image: if resp.images.is_empty() {
            Vec::new()
        } else {
            resp.images.swap_remove(0)
        },
        records: if resp.slice_records.is_empty() {
            Vec::new()
        } else {
            resp.slice_records.swap_remove(0)
        },
        breakdown: resp.breakdown,
    }
}

/// Repackage a batched response into the legacy [`BatchOutput`].
fn batch_output(resp: ReconResponse) -> BatchOutput {
    BatchOutput {
        images: resp.images,
        slice_records: resp.slice_records,
        breakdown: resp.breakdown,
    }
}

/// Result of a multi-slice reconstruction.
pub struct VolumeOutput {
    /// One row-major image per input sinogram.
    pub images: Vec<Vec<f32>>,
    /// Wall-clock seconds per slice (preprocessing excluded).
    pub per_slice_seconds: Vec<f64>,
    /// One-time preprocessing cost being amortized.
    pub preprocess_seconds: f64,
}

impl VolumeOutput {
    /// Mean per-slice reconstruction time.
    pub fn mean_slice_seconds(&self) -> f64 {
        if self.per_slice_seconds.is_empty() {
            0.0
        } else {
            self.per_slice_seconds.iter().sum::<f64>() / self.per_slice_seconds.len() as f64
        }
    }
}

#[cfg(test)]
mod tests {
    // The legacy entry points stay covered until they are removed.
    #![allow(deprecated)]

    use super::*;
    use xct_geometry::{disk, shepp_logan, simulate_sinogram, NoiseModel};

    fn rel_err(a: &[f32], b: &[f32]) -> f64 {
        let num: f64 = a
            .iter()
            .zip(b)
            .map(|(&x, &y)| ((x - y) as f64).powi(2))
            .sum::<f64>()
            .sqrt();
        let den: f64 = b.iter().map(|&y| (y as f64).powi(2)).sum::<f64>().sqrt();
        num / den
    }

    #[test]
    fn end_to_end_disk_reconstruction() {
        let n = 32u32;
        let grid = Grid::new(n);
        let scan = ScanGeometry::new(48, n);
        let img = disk(0.6, 1.0).rasterize(n);
        let sino = simulate_sinogram(&img, &grid, &scan, NoiseModel::None, 0);
        let rec = Reconstructor::new(grid, scan);
        let out = rec.reconstruct_cg(&sino, StopRule::Fixed(30));
        assert!(
            rel_err(&out.image, &img) < 0.15,
            "err {}",
            rel_err(&out.image, &img)
        );
    }

    #[test]
    fn shepp_logan_reconstruction_with_noise() {
        let n = 48u32;
        let grid = Grid::new(n);
        let scan = ScanGeometry::new(72, n);
        let img = shepp_logan().rasterize(n);
        let sino = simulate_sinogram(
            &img,
            &grid,
            &scan,
            NoiseModel::Poisson {
                incident: 1e6,
                scale: 0.02,
            },
            7,
        );
        let rec = Reconstructor::new(grid, scan);
        let out = rec.reconstruct_cg(
            &sino,
            StopRule::EarlyTermination {
                max_iters: 60,
                min_decrease: 1e-3,
            },
        );
        assert!(
            rel_err(&out.image, &img) < 0.35,
            "err {}",
            rel_err(&out.image, &img)
        );
    }

    #[test]
    fn distributed_equals_single_node() {
        let n = 24u32;
        let grid = Grid::new(n);
        let scan = ScanGeometry::new(36, n);
        let img = disk(0.5, 2.0).rasterize(n);
        let sino = simulate_sinogram(&img, &grid, &scan, NoiseModel::None, 0);
        let rec = Reconstructor::new(grid, scan);
        let single = rec.reconstruct_cg(&sino, StopRule::Fixed(10));
        let dist = rec.reconstruct_distributed(
            &sino,
            &crate::dist::DistConfig {
                ranks: 4,
                use_buffered: true,
                stop: StopRule::Fixed(10),
                solver: crate::dist::DistSolver::Cg,
            },
        );
        assert!(
            rel_err(&dist.image, &single.image) < 5e-3,
            "err {}",
            rel_err(&dist.image, &single.image)
        );
    }

    #[test]
    fn builder_validates_kernel_layout_choices() {
        let grid = Grid::new(16);
        let scan = ScanGeometry::new(12, 16);
        assert!(matches!(
            ReconstructorBuilder::new(grid, scan)
                .build_buffered(false)
                .kernel(Kernel::Buffered)
                .build()
                .err(),
            Some(BuildError::LayoutNotBuilt { layout: "buffered" })
        ));
        assert!(matches!(
            ReconstructorBuilder::new(grid, scan)
                .kernel(Kernel::Ell)
                .build()
                .err(),
            Some(BuildError::LayoutNotBuilt { layout: "ELL" })
        ));
        assert!(matches!(
            ReconstructorBuilder::new(grid, scan)
                .partition_size(0)
                .build()
                .err(),
            Some(BuildError::ZeroPartitionSize)
        ));
        assert!(matches!(
            ReconstructorBuilder::new(grid, scan)
                .buffer_size(1 << 20)
                .build()
                .err(),
            Some(BuildError::InvalidBufferSize { .. })
        ));
        // Defaults pick the buffered kernel; disabling buffered layouts
        // falls back to parallel CSR.
        let rec = ReconstructorBuilder::new(grid, scan).build().unwrap();
        assert_eq!(rec.kernel(), Kernel::Buffered);
        let rec = ReconstructorBuilder::new(grid, scan)
            .build_buffered(false)
            .build()
            .unwrap();
        assert_eq!(rec.kernel(), Kernel::Parallel);
    }

    #[test]
    fn try_reconstruct_rejects_wrong_sinogram_length() {
        let grid = Grid::new(16);
        let scan = ScanGeometry::new(12, 16);
        let rec = Reconstructor::new(grid, scan);
        let short = Sinogram::new(ScanGeometry::new(6, 16), vec![0.0; 6 * 16]);
        assert!(matches!(
            rec.try_reconstruct_cg(&short, StopRule::Fixed(2)).err(),
            Some(BuildError::SinogramLength { .. })
        ));
        assert!(matches!(
            rec.try_reconstruct_sirt(&short, 2).err(),
            Some(BuildError::SinogramLength { .. })
        ));
        assert!(matches!(
            rec.try_reconstruct_distributed(&short, &DistConfig::default())
                .err(),
            Some(BuildError::SinogramLength { .. })
        ));
    }

    #[test]
    fn metrics_snapshot_spans_the_whole_pipeline() {
        let n = 24u32;
        let grid = Grid::new(n);
        let scan = ScanGeometry::new(36, n);
        let img = disk(0.5, 1.0).rasterize(n);
        let sino = simulate_sinogram(&img, &grid, &scan, NoiseModel::None, 0);
        let rec = ReconstructorBuilder::new(grid, scan).build().unwrap();
        rec.reconstruct_cg(&sino, StopRule::Fixed(5));
        rec.reconstruct_distributed(
            &sino,
            &DistConfig {
                ranks: 2,
                use_buffered: false,
                stop: StopRule::Fixed(3),
                solver: crate::dist::DistSolver::Cg,
            },
        );
        let snap = rec.metrics();
        // Preprocessing phases.
        assert!(snap.timers.contains_key("preprocess/tracing"));
        // Shared-memory kernel counters + timer.
        assert!(snap.counters["spmv/buffered/calls"] > 0);
        assert!(snap.timers["kernel/ap_s"].total_s > 0.0);
        // Solver series accumulate across both runs (5 serial + 3 dist).
        assert_eq!(snap.series["solver/residual_norm"].len(), 8);
        assert_eq!(snap.counters["solver/iterations"], 8);
        // Distributed comm matrix.
        assert_eq!(snap.matrices["comm/bytes"].size, 2);
    }

    #[test]
    fn noop_metrics_disable_collection() {
        let grid = Grid::new(16);
        let scan = ScanGeometry::new(12, 16);
        let img = disk(0.5, 1.0).rasterize(16);
        let sino = simulate_sinogram(&img, &grid, &scan, NoiseModel::None, 0);
        let rec = ReconstructorBuilder::new(grid, scan)
            .metrics(Metrics::noop())
            .build()
            .unwrap();
        let out = rec.reconstruct_cg(&sino, StopRule::Fixed(3));
        assert!(rec.metrics().is_empty(), "noop records nothing");
        assert_eq!(out.breakdown, KernelBreakdown::default());
        assert_eq!(out.records.len(), 3, "solve itself unaffected");
    }
}

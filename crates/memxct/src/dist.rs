//! Distributed reconstruction (§3.4): both-domain partitioning and the
//! `A = R·C·A_p` factorization.
//!
//! Every rank owns one contiguous run of Hilbert-ordered tomogram tiles
//! and one contiguous run of sinogram tiles (Fig 4(b)). Forward projection
//! decomposes into three kernels, timed separately as in Fig 11:
//!
//! - **A_p** — partial forward projection: rank `r` applies the column
//!   block of `A` belonging to its tomogram subdomain, producing partial
//!   sinogram values for every ray that intersects the subdomain;
//! - **C** — sparse communication: partial values travel to the rank that
//!   owns each sinogram row (`MPI_Alltoallv`; only interacting pairs
//!   exchange data);
//! - **R** — reduction: the owner sums overlapping partials.
//!
//! Backprojection is the exact transpose, `Aᵀ = A_pᵀ·Cᵀ·Rᵀ`: owners
//! duplicate the overlapped sinogram data back to the interacting ranks,
//! which apply their local `A_pᵀ`. No tomogram is ever replicated and no
//! atomic update is ever issued.

use crate::checkpoint::{self, SolveState};
use crate::errors::BuildError;
use crate::operator::{KernelBreakdown, ProjectionOperator};
use crate::preprocess::Operators;
use crate::solvers::{
    run_engine_core, CgRule, Constraint, EngineSignal, IterationRecord, SirtRule, SolverWorkspace,
    StopRule, UpdateRule,
};
use std::cell::RefCell;
use std::ops::Range;
use std::sync::Arc;
use std::time::Instant;
use xct_hilbert::TileLayout;
use xct_obs::{
    Metrics, FAULT_ABORTS, FAULT_INJECTED, FAULT_RANK_LOSS, FAULT_RESTARTS, FAULT_RETRIES,
    FAULT_TIMEOUTS, KERNEL_AP_SECONDS, KERNEL_C_SECONDS, KERNEL_R_SECONDS,
};
use xct_runtime::{
    run_ranks_with, CheckpointError, CheckpointSink, CommConfig, CommError, CommErrorKind,
    CommLedger, Communicator, FaultPlan, KernelVolumes,
};
use xct_sparse::{BufferedCsr, CsrMatrix};

/// Which solver the distributed path runs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DistSolver {
    /// Conjugate gradient (CGLS), the paper's solver.
    Cg,
    /// SIRT with row/column-sum normalization (the Trace baseline's
    /// scheme, here on the factorized operators).
    Sirt,
}

/// Distributed-run configuration.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DistConfig {
    /// Number of ranks (threads standing in for MPI processes).
    pub ranks: usize,
    /// Use the multi-stage buffered kernel for the local SpMVs
    /// (falls back to parallel CSR when `false`).
    pub use_buffered: bool,
    /// Termination policy — including early termination, which works
    /// because every rank observes the same allreduced residuals.
    pub stop: StopRule,
    /// Solver choice.
    pub solver: DistSolver,
}

impl Default for DistConfig {
    fn default() -> Self {
        DistConfig {
            ranks: 4,
            use_buffered: true,
            stop: StopRule::Fixed(30),
            solver: DistSolver::Cg,
        }
    }
}

/// Everything one rank needs to execute its share of the factorized
/// projections. Plans are constructed from the globally preprocessed
/// operators; a production MPI deployment would exchange the interaction
/// footprints with `alltoallv_u32` instead (the collective exists and is
/// tested), but building centrally keeps the threads-as-ranks harness
/// deterministic.
pub struct RankPlan {
    /// This rank.
    pub rank: usize,
    /// Total ranks.
    pub ranks: usize,
    /// Owned tomogram ranks (ordered coordinates).
    pub tomo_range: Range<u32>,
    /// Owned sinogram ranks (ordered coordinates).
    pub sino_range: Range<u32>,
    /// Column block of `A` for this tomogram subdomain: rows are the
    /// interaction rows (compacted), columns are local tomogram indices.
    pub a_local: CsrMatrix,
    /// Transpose of `a_local` (backprojection).
    pub at_local: CsrMatrix,
    /// Buffered layouts (when enabled).
    pub a_local_buf: Option<BufferedCsr>,
    /// Buffered transpose.
    pub at_local_buf: Option<BufferedCsr>,
    /// Global sinogram rank of each interaction row, ascending.
    pub inter_rows: Vec<u32>,
    /// For each owner rank `q`: the sub-range of `inter_rows` lying in
    /// `q`'s sinogram range (possibly empty).
    pub dest_ranges: Vec<Range<usize>>,
    /// For each source rank `s`: the global sinogram rows `s` contributes
    /// to this rank (ascending; computed from `s`'s `dest_ranges`).
    pub rows_from: Vec<Vec<u32>>,
}

/// Split `0..total` into per-rank ranges: by whole tiles when a tile
/// layout exists (the paper's decomposition), else near-equal splits.
fn partition_domain(total: u32, tiles: Option<&TileLayout>, ranks: usize) -> Vec<Range<u32>> {
    match tiles {
        Some(layout) => layout.partition_ranks(ranks),
        None => (0..ranks)
            .map(|p| {
                // in-range: proportional split of a u32-sized domain, so lo <= total
                let lo = (total as u64 * p as u64 / ranks as u64) as u32;
                // in-range: proportional split of a u32-sized domain, so hi <= total
                let hi = (total as u64 * (p + 1) as u64 / ranks as u64) as u32;
                lo..hi
            })
            .collect(),
    }
}

/// Build all rank plans from globally preprocessed operators.
pub fn build_plans(ops: &Operators, ranks: usize, use_buffered: bool) -> Vec<RankPlan> {
    // lint: allow(no-panic) documented precondition; BuildError::ZeroRanks is the checked path
    assert!(ranks > 0);
    // in-range: domain sizes are u32 column/row counts of the CSR layout
    let tomo_ranges = partition_domain(ops.a.ncols() as u32, ops.tomo_tiles.as_ref(), ranks);
    // in-range: domain sizes are u32 column/row counts of the CSR layout
    let sino_ranges = partition_domain(ops.a.nrows() as u32, ops.sino_tiles.as_ref(), ranks);

    // One sweep over the global matrix buckets every entry by the rank
    // owning its column (O(nnz·log P), not O(nnz·P)).
    let boundaries: Vec<u32> = tomo_ranges.iter().map(|r| r.end).collect();
    let mut rank_rows: Vec<Vec<Vec<(u32, f32)>>> = (0..ranks).map(|_| Vec::new()).collect();
    let mut rank_inter: Vec<Vec<u32>> = (0..ranks).map(|_| Vec::new()).collect();
    {
        // Scratch row buffers, one per rank, reused across rows.
        let mut scratch: Vec<Vec<(u32, f32)>> = (0..ranks).map(|_| Vec::new()).collect();
        let mut touched: Vec<usize> = Vec::new();
        for i in 0..ops.a.nrows() {
            for (c, v) in ops.a.row(i) {
                let owner = boundaries.partition_point(|&b| b <= c);
                if scratch[owner].is_empty() {
                    touched.push(owner);
                }
                scratch[owner].push((c - tomo_ranges[owner].start, v));
            }
            for &owner in &touched {
                // in-range: i indexes CSR rows, which are u32 by layout
                rank_inter[owner].push(i as u32);
                rank_rows[owner].push(std::mem::take(&mut scratch[owner]));
            }
            touched.clear();
        }
    }

    let mut plans: Vec<RankPlan> = (0..ranks)
        .map(|rank| {
            let tomo_range = tomo_ranges[rank].clone();
            let (tlo, thi) = (tomo_range.start, tomo_range.end);
            let rows = std::mem::take(&mut rank_rows[rank]);
            let inter_rows = std::mem::take(&mut rank_inter[rank]);
            let a_local = CsrMatrix::from_rows((thi - tlo) as usize, &rows);
            let at_local = a_local.transpose_scan();
            let (a_local_buf, at_local_buf) = if use_buffered {
                let partsize = ops.partsize;
                // The buffer must address the largest local footprint the
                // 16-bit indices allow; reuse the preprocessing default.
                (
                    Some(BufferedCsr::from_csr(&a_local, partsize, 2048)),
                    Some(BufferedCsr::from_csr(&at_local, partsize, 2048)),
                )
            } else {
                (None, None)
            };
            // Destination sub-ranges by owner.
            let dest_ranges: Vec<Range<usize>> = sino_ranges
                .iter()
                .map(|r| {
                    let lo = inter_rows.partition_point(|&row| row < r.start);
                    let hi = inter_rows.partition_point(|&row| row < r.end);
                    lo..hi
                })
                .collect();
            RankPlan {
                rank,
                ranks,
                tomo_range,
                sino_range: sino_ranges[rank].clone(),
                a_local,
                at_local,
                a_local_buf,
                at_local_buf,
                inter_rows,
                dest_ranges,
                rows_from: Vec::new(),
            }
        })
        .collect();

    // rows_from[q][s] = inter_rows of s within q's sinogram range.
    for q in 0..ranks {
        let mut rows_from = Vec::with_capacity(ranks);
        for plan in plans.iter() {
            let r = plan.dest_ranges[q].clone();
            rows_from.push(plan.inter_rows[r].to_vec());
        }
        plans[q].rows_from = rows_from;
    }
    plans
}

impl RankPlan {
    /// Local forward SpMV (A_p).
    fn apply_a(&self, x_local: &[f32]) -> Vec<f32> {
        match &self.a_local_buf {
            Some(b) => b.spmv_parallel(x_local),
            None => xct_sparse::spmv(&self.a_local, x_local),
        }
    }

    /// Local backprojection SpMV (A_pᵀ).
    fn apply_at(&self, y_gather: &[f32]) -> Vec<f32> {
        match &self.at_local_buf {
            Some(b) => b.spmv_parallel(y_gather),
            None => xct_sparse::spmv(&self.at_local, y_gather),
        }
    }

    /// Local forward SpMM (A_p across `batch` slices, matrix streamed
    /// once). Column `j` is bit-identical to [`RankPlan::apply_a`] on
    /// slice `j` alone.
    fn apply_a_batch(&self, x_local: &[f32], batch: usize) -> Vec<f32> {
        match &self.a_local_buf {
            Some(b) => {
                let mut y = vec![0f32; self.a_local.nrows() * batch];
                b.spmm_into(x_local, &mut y, batch);
                y
            }
            None => xct_sparse::spmm(&self.a_local, x_local, batch),
        }
    }

    /// Local backprojection SpMM (A_pᵀ across `batch` slices).
    fn apply_at_batch(&self, y_gather: &[f32], batch: usize) -> Vec<f32> {
        match &self.at_local_buf {
            Some(b) => {
                let mut x = vec![0f32; self.at_local.nrows() * batch];
                b.spmm_into(y_gather, &mut x, batch);
                x
            }
            None => xct_sparse::spmm(&self.at_local, y_gather, batch),
        }
    }

    /// Distributed forward projection: returns this rank's owned block of
    /// `y = A·x`, adding kernel times into `kb`.
    ///
    /// # Panics
    /// Panics on a communication failure; use [`RankPlan::try_forward`]
    /// for a typed [`CommError`].
    pub fn forward(
        &self,
        comm: &Communicator,
        x_local: &[f32],
        kb: &mut KernelBreakdown,
    ) -> Vec<f32> {
        match self.try_forward(comm, x_local, kb) {
            Ok(y) => y,
            // lint: allow(no-panic) documented panicking shim over the try_ API
            Err(e) => panic!("distributed forward failed: {e}"),
        }
    }

    /// Fallible [`RankPlan::forward`]: a peer crash, timeout, or corrupt
    /// frame surfaces as a typed [`CommError`] instead of a panic.
    pub fn try_forward(
        &self,
        comm: &Communicator,
        x_local: &[f32],
        kb: &mut KernelBreakdown,
    ) -> Result<Vec<f32>, CommError> {
        // A_p: partial projection over the interaction rows.
        let t = Instant::now();
        let y_part = self.apply_a(x_local);
        kb.ap_s += t.elapsed().as_secs_f64();

        // C: route each owner its partials.
        let t = Instant::now();
        let send: Vec<Vec<f32>> = self
            .dest_ranges
            .iter()
            .map(|r| y_part[r.clone()].to_vec())
            .collect();
        let recv = comm.try_alltoallv(send)?;
        kb.c_s += t.elapsed().as_secs_f64();

        // R: reduce overlapping partials into the owned block.
        let t = Instant::now();
        let slo = self.sino_range.start;
        let mut y_local = vec![0f32; (self.sino_range.end - slo) as usize];
        for (src, vals) in recv.into_iter().enumerate() {
            let rows = &self.rows_from[src];
            debug_assert_eq!(rows.len(), vals.len());
            for (&row, v) in rows.iter().zip(vals) {
                y_local[(row - slo) as usize] += v;
            }
        }
        kb.r_s += t.elapsed().as_secs_f64();
        Ok(y_local)
    }

    /// Distributed backprojection: returns this rank's owned block of
    /// `x = Aᵀ·y` given the distributed `y`.
    ///
    /// # Panics
    /// Panics on a communication failure; use [`RankPlan::try_back`] for
    /// a typed [`CommError`].
    pub fn back(&self, comm: &Communicator, y_local: &[f32], kb: &mut KernelBreakdown) -> Vec<f32> {
        match self.try_back(comm, y_local, kb) {
            Ok(x) => x,
            // lint: allow(no-panic) documented panicking shim over the try_ API
            Err(e) => panic!("distributed backprojection failed: {e}"),
        }
    }

    /// Fallible [`RankPlan::back`]: a peer crash, timeout, or corrupt
    /// frame surfaces as a typed [`CommError`] instead of a panic.
    pub fn try_back(
        &self,
        comm: &Communicator,
        y_local: &[f32],
        kb: &mut KernelBreakdown,
    ) -> Result<Vec<f32>, CommError> {
        // Rᵀ: owners duplicate the overlapped sinogram values per peer.
        let t = Instant::now();
        let slo = self.sino_range.start;
        let send: Vec<Vec<f32>> = self
            .rows_from
            .iter()
            .map(|rows| {
                rows.iter()
                    .map(|&row| y_local[(row - slo) as usize])
                    .collect()
            })
            .collect();
        kb.r_s += t.elapsed().as_secs_f64();

        // Cᵀ: the transpose communication pattern.
        let t = Instant::now();
        let recv = comm.try_alltoallv(send)?;
        kb.c_s += t.elapsed().as_secs_f64();

        // Assemble the gathered interaction-row values, then A_pᵀ.
        let t = Instant::now();
        let mut y_gather = vec![0f32; self.inter_rows.len()];
        for (q, vals) in recv.into_iter().enumerate() {
            let range = self.dest_ranges[q].clone();
            debug_assert_eq!(range.len(), vals.len());
            y_gather[range].copy_from_slice(&vals);
        }
        kb.r_s += t.elapsed().as_secs_f64();

        let t = Instant::now();
        let x_local = self.apply_at(&y_gather);
        kb.ap_s += t.elapsed().as_secs_f64();
        Ok(x_local)
    }

    /// Batched [`RankPlan::try_forward`]: `x_local` holds `batch`
    /// slice-major blocks of this rank's tomogram subdomain, and the
    /// returned slab holds `batch` blocks of the owned sinogram range.
    /// The alltoallv *schedule* (which rows go to which peer) is the
    /// single-slice one reused verbatim — each scheduled row just carries
    /// `batch` f32 values (slice-major within each peer's payload) — so
    /// one communication round serves the whole batch. Slice `j` of the
    /// result is bit-identical to [`RankPlan::try_forward`] on slice `j`.
    pub fn try_forward_batch(
        &self,
        comm: &Communicator,
        x_local: &[f32],
        batch: usize,
        kb: &mut KernelBreakdown,
    ) -> Result<Vec<f32>, CommError> {
        if batch == 1 {
            return self.try_forward(comm, x_local, kb);
        }
        // A_p: partial projection over the interaction rows, all slices.
        let t = Instant::now();
        let y_part = self.apply_a_batch(x_local, batch);
        kb.ap_s += t.elapsed().as_secs_f64();
        let inter = self.inter_rows.len();

        // C: one collective routes every slice's partials to the owners.
        let t = Instant::now();
        let send: Vec<Vec<f32>> = self
            .dest_ranges
            .iter()
            .map(|r| {
                let mut payload = Vec::with_capacity(r.len() * batch);
                for j in 0..batch {
                    payload.extend_from_slice(&y_part[j * inter + r.start..j * inter + r.end]);
                }
                payload
            })
            .collect();
        let recv = comm.try_alltoallv(send)?;
        kb.c_s += t.elapsed().as_secs_f64();

        // R: reduce overlapping partials into the owned blocks, in the
        // same source order per slice as the single-slice reduction.
        let t = Instant::now();
        let slo = self.sino_range.start;
        let own = (self.sino_range.end - slo) as usize;
        let mut y_local = vec![0f32; own * batch];
        for (src, vals) in recv.into_iter().enumerate() {
            let rows = &self.rows_from[src];
            debug_assert_eq!(rows.len() * batch, vals.len());
            for j in 0..batch {
                let block = &vals[j * rows.len()..(j + 1) * rows.len()];
                for (&row, v) in rows.iter().zip(block) {
                    y_local[j * own + (row - slo) as usize] += v;
                }
            }
        }
        kb.r_s += t.elapsed().as_secs_f64();
        Ok(y_local)
    }

    /// Batched [`RankPlan::try_back`]: the transpose of
    /// [`RankPlan::try_forward_batch`], reusing the single-slice
    /// duplication schedule with `batch` f32 values per scheduled row.
    pub fn try_back_batch(
        &self,
        comm: &Communicator,
        y_local: &[f32],
        batch: usize,
        kb: &mut KernelBreakdown,
    ) -> Result<Vec<f32>, CommError> {
        if batch == 1 {
            return self.try_back(comm, y_local, kb);
        }
        // Rᵀ: owners duplicate every slice's overlapped values per peer.
        let t = Instant::now();
        let slo = self.sino_range.start;
        let own = (self.sino_range.end - slo) as usize;
        let send: Vec<Vec<f32>> = self
            .rows_from
            .iter()
            .map(|rows| {
                let mut payload = Vec::with_capacity(rows.len() * batch);
                for j in 0..batch {
                    payload.extend(
                        rows.iter()
                            .map(|&row| y_local[j * own + (row - slo) as usize]),
                    );
                }
                payload
            })
            .collect();
        kb.r_s += t.elapsed().as_secs_f64();

        // Cᵀ: the transpose communication pattern, one round.
        let t = Instant::now();
        let recv = comm.try_alltoallv(send)?;
        kb.c_s += t.elapsed().as_secs_f64();

        // Assemble the gathered interaction-row slabs, then A_pᵀ.
        let t = Instant::now();
        let inter = self.inter_rows.len();
        let mut y_gather = vec![0f32; inter * batch];
        for (q, vals) in recv.into_iter().enumerate() {
            let range = self.dest_ranges[q].clone();
            debug_assert_eq!(range.len() * batch, vals.len());
            for j in 0..batch {
                y_gather[j * inter + range.start..j * inter + range.end]
                    .copy_from_slice(&vals[j * range.len()..(j + 1) * range.len()]);
            }
        }
        kb.r_s += t.elapsed().as_secs_f64();

        let t = Instant::now();
        let x_local = self.apply_at_batch(&y_gather, batch);
        kb.ap_s += t.elapsed().as_secs_f64();
        Ok(x_local)
    }

    /// Per-iteration work volumes of this rank for the machine model
    /// (one forward + one backprojection).
    pub fn volumes(&self) -> KernelVolumes {
        let nnz = self.a_local.nnz() as f64;
        let regular_bytes = match &self.a_local_buf {
            Some(b) => {
                // lint: allow(no-panic) a_local_buf and at_local_buf are built together when use_buffered
                (b.regular_bytes() + self.at_local_buf.as_ref().unwrap().regular_bytes()) as f64
            }
            None => 2.0 * nnz * 8.0,
        };
        let sent_fwd: usize = self
            .dest_ranges
            .iter()
            .enumerate()
            .filter(|(q, _)| *q != self.rank)
            .map(|(_, r)| r.len())
            .sum();
        let sent_back: usize = self
            .rows_from
            .iter()
            .enumerate()
            .filter(|(s, _)| *s != self.rank)
            .map(|(_, rows)| rows.len())
            .sum();
        let peers_fwd = self
            .dest_ranges
            .iter()
            .enumerate()
            .filter(|(q, r)| *q != self.rank && !r.is_empty())
            .count();
        let peers_back = self
            .rows_from
            .iter()
            .enumerate()
            .filter(|(s, rows)| *s != self.rank && !rows.is_empty())
            .count();
        let recv_fwd: usize = self.rows_from.iter().map(|r| r.len()).sum();
        KernelVolumes {
            flops: 4.0 * nnz,
            regular_bytes,
            footprint_bytes: 4.0
                * (self.a_local.ncols() + self.inter_rows.len() + self.sino_range.len()) as f64,
            comm_bytes: 4.0 * (sent_fwd + sent_back) as f64,
            comm_peers: (peers_fwd + peers_back) as f64,
            reduce_bytes: 4.0 * (recv_fwd + self.inter_rows.len()) as f64,
        }
    }
}

/// Result of a distributed reconstruction.
pub struct DistOutput {
    /// Reconstructed image, row-major `n × n`.
    pub image: Vec<f32>,
    /// Per-iteration convergence records (identical on every rank).
    pub records: Vec<IterationRecord>,
    /// Per-rank kernel breakdowns.
    pub breakdown: Vec<KernelBreakdown>,
    /// Communication matrix of the whole run.
    pub ledger: CommLedger,
    /// Per-rank modeled volumes.
    pub volumes: Vec<KernelVolumes>,
}

/// Deterministic scalar allreduce: every rank receives every rank's
/// value (exchanged bit-exactly as `u64`) and sums them in rank order,
/// so all ranks compute the identical f64 result.
///
/// # Panics
/// Panics on a communication failure; use [`try_allreduce_f64`] for a
/// typed [`CommError`].
pub fn allreduce_f64(comm: &Communicator, v: f64) -> f64 {
    match try_allreduce_f64(comm, v) {
        Ok(sum) => sum,
        // lint: allow(no-panic) documented panicking shim over the try_ API
        Err(e) => panic!("allreduce failed: {e}"),
    }
}

/// Fallible [`allreduce_f64`].
pub fn try_allreduce_f64(comm: &Communicator, v: f64) -> Result<f64, CommError> {
    let gathered = comm.try_alltoall_counts(vec![v.to_bits(); comm.size()])?;
    Ok(gathered.into_iter().map(f64::from_bits).sum())
}

/// One rank's view of the factorized operator `A = R·C·A_p` as a
/// [`ProjectionOperator`]: `forward_into`/`back_into` run the three-kernel
/// pipelines of [`RankPlan`], and `reduce_dot` is the rank-ordered
/// allreduce — which is all the generic solver engine needs to run CG or
/// SIRT distributed, early termination included.
pub struct DistOperator<'a> {
    plan: &'a RankPlan,
    comm: &'a Communicator,
    kb: RefCell<KernelBreakdown>,
    calls: std::cell::Cell<(u64, u64)>,
    /// First communication failure absorbed by this operator. Once set,
    /// every projection zero-fills its output without communicating and
    /// `reduce_dot` returns the local value, so the solver loop winds
    /// down deterministically (CG hits `qq == 0` within one iteration)
    /// while the origin error stays available via
    /// [`ProjectionOperator::fault`].
    fault: RefCell<Option<CommError>>,
}

impl<'a> DistOperator<'a> {
    /// Wrap one rank's plan and communicator.
    pub fn new(plan: &'a RankPlan, comm: &'a Communicator) -> Self {
        DistOperator {
            plan,
            comm,
            kb: RefCell::new(KernelBreakdown::default()),
            calls: std::cell::Cell::new((0, 0)),
            fault: RefCell::new(None),
        }
    }

    /// Keep the first (origin) failure; later errors are consequences.
    fn poison(&self, e: CommError) {
        let mut fault = self.fault.borrow_mut();
        if fault.is_none() {
            *fault = Some(e);
        }
    }

    fn poisoned(&self) -> bool {
        self.fault.borrow().is_some()
    }

    /// The accumulated kernel breakdown (also available via the trait's
    /// [`ProjectionOperator::breakdown`]).
    pub fn take_breakdown(&self) -> KernelBreakdown {
        *self.kb.borrow()
    }

    /// How many (forward, backprojection) applications ran so far.
    pub fn call_counts(&self) -> (u64, u64) {
        self.calls.get()
    }
}

impl ProjectionOperator for DistOperator<'_> {
    fn nrows(&self) -> usize {
        self.plan.sino_range.len()
    }
    fn ncols(&self) -> usize {
        self.plan.tomo_range.len()
    }
    fn forward_into(&self, x: &[f32], y: &mut [f32]) {
        let (f, b) = self.calls.get();
        self.calls.set((f + 1, b));
        if self.poisoned() {
            y.fill(0.0);
            return;
        }
        let mut kb = self.kb.borrow_mut();
        match self.plan.try_forward(self.comm, x, &mut kb) {
            Ok(v) => y.copy_from_slice(&v),
            Err(e) => {
                drop(kb);
                self.poison(e);
                y.fill(0.0);
            }
        }
    }
    fn back_into(&self, y: &[f32], x: &mut [f32]) {
        let (f, b) = self.calls.get();
        self.calls.set((f, b + 1));
        if self.poisoned() {
            x.fill(0.0);
            return;
        }
        let mut kb = self.kb.borrow_mut();
        match self.plan.try_back(self.comm, y, &mut kb) {
            Ok(v) => x.copy_from_slice(&v),
            Err(e) => {
                drop(kb);
                self.poison(e);
                x.fill(0.0);
            }
        }
    }
    fn reduce_dot(&self, local: f64) -> f64 {
        if self.poisoned() {
            return local;
        }
        let t = Instant::now();
        match try_allreduce_f64(self.comm, local) {
            Ok(v) => {
                self.kb.borrow_mut().c_s += t.elapsed().as_secs_f64();
                v
            }
            Err(e) => {
                self.poison(e);
                local
            }
        }
    }
    fn breakdown(&self) -> Option<KernelBreakdown> {
        Some(*self.kb.borrow())
    }
    fn fault(&self) -> Option<CommError> {
        self.fault.borrow().clone()
    }
}

/// Fault-tolerance policy for a distributed reconstruction.
///
/// The default policy enables the runtime's supervised execution (30 s
/// collective deadline, bounded delivery retries) with no chaos, no
/// checkpointing, and one degraded restart; [`FaultTolerance::disabled`]
/// reproduces the historical fail-fast behaviour (unbounded waits, zero
/// restarts) and is what the legacy entry points use.
#[derive(Clone)]
pub struct FaultTolerance {
    /// Deadline/retry/backoff configuration for every collective.
    pub comm: CommConfig,
    /// Deterministic chaos plan consulted by every collective. The empty
    /// plan injects nothing and is bit-identical to no fault machinery.
    pub faults: Arc<FaultPlan>,
    /// Where snapshots go. `None` disables checkpointing entirely.
    pub sink: Option<Arc<dyn CheckpointSink>>,
    /// Take a snapshot after every `checkpoint_every` iterations
    /// (0 = never, even with a sink configured).
    pub checkpoint_every: usize,
    /// Resume from the sink's slot-0 snapshot when one exists.
    pub resume: bool,
    /// How many degraded restarts (each over one rank fewer) the
    /// coordinator attempts after an unrecoverable rank loss.
    pub max_restarts: usize,
}

impl Default for FaultTolerance {
    fn default() -> Self {
        FaultTolerance {
            comm: CommConfig::default(),
            faults: Arc::new(FaultPlan::new()),
            sink: None,
            checkpoint_every: 0,
            resume: false,
            max_restarts: 1,
        }
    }
}

impl FaultTolerance {
    /// The historical fail-fast policy: unbounded collective waits, no
    /// chaos, no checkpoints, no restarts.
    pub fn disabled() -> Self {
        FaultTolerance {
            comm: CommConfig::unbounded(),
            max_restarts: 0,
            ..FaultTolerance::default()
        }
    }
}

/// What can go wrong while taking a global checkpoint: a communication
/// failure during the gather (recoverable — the restart loop handles it)
/// or a snapshot encode/persist failure (unrecoverable).
enum SaveError {
    Comm(CommError),
    Checkpoint(CheckpointError),
}

/// Gather `[x ‖ resid ‖ dir]` from every rank at rank 0 with one
/// collective and persist one *global* snapshot into slot 0. Running the
/// gather as a collective keeps snapshots globally consistent (every rank
/// contributes the state of the same iteration boundary), and assembling
/// in global ordered coordinates makes the snapshot rank-count
/// independent: a degraded restart over fewer ranks — or a serial resume
/// — reads the same file.
#[allow(clippy::too_many_arguments)]
fn save_global_checkpoint(
    comm: &Communicator,
    plans: &[RankPlan],
    sink: &dyn CheckpointSink,
    plan_hash: u64,
    next_iter: usize,
    prev_res: f64,
    ws: &SolverWorkspace,
    rule: &dyn UpdateRule,
) -> Result<(), SaveError> {
    let mut mine = Vec::with_capacity(ws.x().len() + ws.resid().len() + ws.dir().len());
    mine.extend_from_slice(ws.x());
    mine.extend_from_slice(ws.resid());
    mine.extend_from_slice(ws.dir());
    let mut send: Vec<Vec<f32>> = vec![Vec::new(); comm.size()];
    send[0] = mine;
    let recv = comm.try_alltoallv(send).map_err(SaveError::Comm)?;
    if comm.rank() != 0 {
        return Ok(());
    }
    let last = &plans[plans.len() - 1];
    let ncols = last.tomo_range.end as usize;
    let nrows = last.sino_range.end as usize;
    let mut gx = vec![0f32; ncols];
    let mut gresid = vec![0f32; nrows];
    let mut gdir = vec![0f32; ncols];
    for (src, payload) in recv.iter().enumerate() {
        let plan = &plans[src];
        let tlo = plan.tomo_range.start as usize;
        let thi = plan.tomo_range.end as usize;
        let slo = plan.sino_range.start as usize;
        let shi = plan.sino_range.end as usize;
        let (tn, sn) = (thi - tlo, shi - slo);
        if payload.len() != 2 * tn + sn {
            return Err(SaveError::Checkpoint(CheckpointError::Io {
                message: format!(
                    "checkpoint gather: rank {src} sent {} values, expected {}",
                    payload.len(),
                    2 * tn + sn
                ),
            }));
        }
        gx[tlo..thi].copy_from_slice(&payload[..tn]);
        gresid[slo..shi].copy_from_slice(&payload[tn..tn + sn]);
        gdir[tlo..thi].copy_from_slice(&payload[tn + sn..]);
    }
    let snap = checkpoint::encode_state(
        plan_hash,
        next_iter,
        prev_res,
        &gx,
        &gresid,
        &gdir,
        ws.records(),
        &rule.carried_scalars(),
    );
    sink.save(0, &snap.encode()).map_err(SaveError::Checkpoint)
}

/// One rank's share of a supervised solve: run the generic engine over the
/// rank's [`DistOperator`], checkpointing at the configured cadence, and
/// convert an absorbed communication fault back into a typed error after
/// the engine winds down.
fn solve_rank(
    comm: &Communicator,
    plans: &[RankPlan],
    sino_ordered: &[f32],
    config: &DistConfig,
    ft: &FaultTolerance,
    plan_hash: u64,
    resume: Option<&SolveState>,
) -> Result<RankResult, CommError> {
    let plan = &plans[comm.rank()];
    let slo = plan.sino_range.start as usize;
    let shi = plan.sino_range.end as usize;
    let tlo = plan.tomo_range.start as usize;
    let thi = plan.tomo_range.end as usize;
    let y = &sino_ordered[slo..shi];
    let op = DistOperator::new(plan, comm);
    let mut cg = CgRule::new();
    let mut sirt = SirtRule::new(1.0);
    let rule: &mut dyn UpdateRule = match config.solver {
        DistSolver::Cg => &mut cg,
        DistSolver::Sirt => &mut sirt,
    };
    let mut ws = SolverWorkspace::new(op.nrows(), op.ncols());
    let resume_point = resume.map(|st| {
        ws.resume(
            op.nrows(),
            op.ncols(),
            config.stop.max_iters(),
            &st.x[tlo..thi],
            &st.resid[slo..shi],
            &st.dir[tlo..thi],
            st.slice_records.first().cloned().unwrap_or_default(),
            st.prev_res.first().copied().unwrap_or(f64::INFINITY),
        );
        rule.restore_scalars(&st.scalars);
        st.iteration
    });
    let every = if ft.sink.is_some() {
        ft.checkpoint_every
    } else {
        0
    };
    // Each rank's inner solve runs unmetered (see the coordinator docs).
    let engine = run_engine_core(
        &op,
        y,
        rule,
        Constraint::None,
        config.stop,
        &Metrics::noop(),
        &mut ws,
        resume_point,
        |next_iter, ws, rule| {
            // A poisoned rank skips the gather: the abort flag is already
            // set, so peers fail fast instead of blocking on it.
            if every == 0 || next_iter % every != 0 || op.fault().is_some() {
                return Ok(EngineSignal::Continue);
            }
            let Some(sink) = &ft.sink else {
                return Ok(EngineSignal::Continue);
            };
            let prev_res = ws.prev_res().first().copied().unwrap_or(f64::INFINITY);
            match save_global_checkpoint(
                comm,
                plans,
                sink.as_ref(),
                plan_hash,
                next_iter,
                prev_res,
                ws,
                rule,
            ) {
                Ok(()) => Ok(EngineSignal::Continue),
                // A comm failure during the gather poisons the solve like
                // any other collective failure — recoverable by restart.
                Err(SaveError::Comm(e)) => {
                    op.poison(e);
                    Ok(EngineSignal::Continue)
                }
                Err(SaveError::Checkpoint(ck)) => Err(ck),
            }
        },
    );
    if let Some(e) = op.fault() {
        return Err(e);
    }
    if let Err(ck) = engine {
        return Err(CommError {
            rank: comm.rank(),
            peer: None,
            collective: "checkpoint",
            kind: CommErrorKind::Checkpoint {
                message: ck.to_string(),
            },
        });
    }
    Ok((
        ws.x().to_vec(),
        ws.records().to_vec(),
        op.take_breakdown(),
        op.call_counts(),
    ))
}

/// What each rank hands back to the coordinator: its tomogram block, the
/// (rank-identical) convergence records, and its kernel diagnostics.
type RankResult = (Vec<f32>, Vec<IterationRecord>, KernelBreakdown, (u64, u64));

/// Assemble the coordinator-side [`DistOutput`] from the per-rank results
/// and record the run's observability (kernel timers, convergence series,
/// communication matrix, fault counters).
fn assemble_output(
    ops: &Operators,
    plans: &[RankPlan],
    rank_results: Vec<RankResult>,
    ledger: CommLedger,
    volumes: Vec<KernelVolumes>,
    metrics: &Metrics,
) -> DistOutput {
    let ranks = plans.len();
    let mut ordered = vec![0f32; ops.a.ncols()];
    let mut records = Vec::new();
    let mut breakdown = Vec::with_capacity(ranks);
    let mut call_counts = Vec::with_capacity(ranks);
    for (plan, (x_local, recs, kb, calls)) in plans.iter().zip(rank_results) {
        let lo = plan.tomo_range.start as usize;
        ordered[lo..lo + x_local.len()].copy_from_slice(&x_local);
        if records.is_empty() {
            records = recs;
        }
        breakdown.push(kb);
        call_counts.push(calls);
    }
    if metrics.enabled() {
        // Per-rank local SpMV volumes (the A_p / A_pᵀ kernel).
        for (plan, &(fwd, back)) in plans.iter().zip(&call_counts) {
            let fwd_bytes = match &plan.a_local_buf {
                Some(b) => b.regular_bytes(),
                None => plan.a_local.nnz() as u64 * 8,
            };
            let back_bytes = match &plan.at_local_buf {
                Some(b) => b.regular_bytes(),
                None => plan.at_local.nnz() as u64 * 8,
            };
            metrics.counter_add("spmv/dist/calls", fwd + back);
            metrics.counter_add("spmv/dist/nnz", (fwd + back) * plan.a_local.nnz() as u64);
            metrics.counter_add("spmv/dist/bytes", fwd * fwd_bytes + back * back_bytes);
        }
        for kb in &breakdown {
            metrics.timer_observe(KERNEL_AP_SECONDS, kb.ap_s);
            metrics.timer_observe(KERNEL_C_SECONDS, kb.c_s);
            metrics.timer_observe(KERNEL_R_SECONDS, kb.r_s);
        }
        for r in &records {
            metrics.series_push("solver/residual_norm", r.residual_norm);
            metrics.series_push("solver/solution_norm", r.solution_norm);
            metrics.series_push("solver/iter_seconds", r.seconds);
        }
        metrics.counter_add("solver/iterations", records.len() as u64);
        metrics.matrix_set("comm/bytes", ranks, ledger.byte_matrix());
        for rank in 0..ranks {
            let s = ledger.collectives(rank);
            metrics.counter_add("comm/collective_calls", s.calls);
            metrics.timer_observe("comm/collective_s", s.seconds);
        }
        let fs = ledger.fault_stats();
        metrics.counter_add(FAULT_INJECTED, fs.injected);
        metrics.counter_add(FAULT_RETRIES, fs.retries);
        metrics.counter_add(FAULT_TIMEOUTS, fs.timeouts);
        metrics.counter_add(FAULT_ABORTS, fs.aborts);
    }
    DistOutput {
        image: ops.unorder_tomogram(&ordered),
        records,
        breakdown,
        ledger,
        volumes,
    }
}

/// Supervised distributed reconstruction: [`try_reconstruct_distributed`]
/// plus the full fault-tolerance policy of [`FaultTolerance`].
///
/// - Every collective runs under `ft.comm`'s deadline/retry budget and
///   consults `ft.faults` for deterministic chaos injection; failures
///   surface as [`BuildError::Comm`] with the origin rank, peer, and
///   collective — never a hang or a panic.
/// - With a sink configured and `ft.checkpoint_every > 0`, the ranks
///   gather a *global* snapshot into slot 0 at every boundary (see
///   [`crate::checkpoint`]); `ft.resume` restarts mid-solve from the
///   latest snapshot, bit-identically to an uninterrupted run.
/// - On an unrecoverable rank loss the coordinator degrades: it rebuilds
///   the plans over one rank fewer, reloads the latest snapshot (or
///   restarts from scratch without a sink), and reruns — up to
///   `ft.max_restarts` times and never below one rank. Snapshot
///   validation failures ([`CommErrorKind::Checkpoint`]) are not retried.
pub fn try_reconstruct_distributed_ft(
    ops: &Operators,
    sino_ordered: &[f32],
    config: &DistConfig,
    ft: &FaultTolerance,
    metrics: &Metrics,
) -> Result<DistOutput, BuildError> {
    if config.ranks == 0 {
        return Err(BuildError::ZeroRanks);
    }
    if sino_ordered.len() != ops.a.nrows() {
        return Err(BuildError::SinogramLength {
            expected: ops.a.nrows(),
            got: sino_ordered.len(),
        });
    }
    let plan_hash = checkpoint::plan_fingerprint(ops);
    let max_iters = config.stop.max_iters();
    let load = |sink: &Arc<dyn CheckpointSink>| {
        // The distributed path solves one slice per run; a batched
        // snapshot is rejected up front as a batch-width mismatch.
        checkpoint::load_state(
            sink.as_ref(),
            0,
            plan_hash,
            max_iters,
            ops.a.nrows(),
            ops.a.ncols(),
            1,
        )
    };
    let mut resume_state = match &ft.sink {
        Some(sink) if ft.resume => load(sink)?,
        _ => None,
    };
    let mut ranks = config.ranks;
    let mut restarts = 0usize;
    loop {
        let plans = build_plans(ops, ranks, config.use_buffered);
        let volumes: Vec<KernelVolumes> = plans.iter().map(|p| p.volumes()).collect();
        let run = run_ranks_with(ranks, ft.comm, Arc::clone(&ft.faults), |comm| {
            solve_rank(
                comm,
                &plans,
                sino_ordered,
                config,
                ft,
                plan_hash,
                resume_state.as_ref(),
            )
        });
        match run {
            Ok((rank_results, ledger)) => {
                return Ok(assemble_output(
                    ops,
                    &plans,
                    rank_results,
                    ledger,
                    volumes,
                    metrics,
                ));
            }
            Err(err) => {
                metrics.counter_add(FAULT_RANK_LOSS, 1);
                let unrecoverable = matches!(err.kind, CommErrorKind::Checkpoint { .. });
                if unrecoverable || restarts >= ft.max_restarts || ranks <= 1 {
                    return Err(BuildError::Comm(err));
                }
                restarts += 1;
                ranks -= 1;
                metrics.counter_add(FAULT_RESTARTS, 1);
                // Degrade: resume the survivors from the latest snapshot
                // (the snapshot is rank-count independent), or from
                // scratch when checkpointing is off.
                resume_state = match &ft.sink {
                    Some(sink) => load(sink)?,
                    None => None,
                };
            }
        }
    }
}

/// Run a distributed reconstruction with threads as ranks.
///
/// `sino_ordered` is the measurement vector in sinogram-ordered
/// coordinates (see [`Operators::order_sinogram`]). Each rank builds a
/// [`DistOperator`] over its plan and runs the same generic engine as the
/// serial path ([`crate::solvers::run_engine`]); there is no
/// distributed-specific solver loop. Returns the assembled row-major
/// image plus all diagnostics.
pub fn reconstruct_distributed(
    ops: &Operators,
    sino_ordered: &[f32],
    config: &DistConfig,
) -> DistOutput {
    match try_reconstruct_distributed(ops, sino_ordered, config) {
        Ok(out) => out,
        // lint: allow(no-panic) documented panicking shim over the try_ API
        Err(e) => panic!("invalid distributed run: {e}"),
    }
}

/// Fallible [`reconstruct_distributed`]: returns a [`BuildError`] for a
/// zero rank count or a mismatched sinogram length instead of panicking.
pub fn try_reconstruct_distributed(
    ops: &Operators,
    sino_ordered: &[f32],
    config: &DistConfig,
) -> Result<DistOutput, BuildError> {
    reconstruct_distributed_with_metrics(ops, sino_ordered, config, &Metrics::noop())
}

/// [`try_reconstruct_distributed`] with observability. After the ranks
/// join, the coordinator records into `metrics`:
///
/// - the per-rank kernel breakdowns as observations of the shared
///   [`KERNEL_AP_SECONDS`] / [`KERNEL_C_SECONDS`] / [`KERNEL_R_SECONDS`]
///   timers (one observation per rank — `count` is the rank count);
/// - the (rank-identical) convergence trajectory as the
///   `solver/residual_norm` / `solver/solution_norm` /
///   `solver/iter_seconds` series plus the `solver/iterations` counter;
/// - the per-pair communication matrix as `comm/bytes` (Fig 7(c)) and the
///   per-rank collective call counts/latencies as `comm/collective_calls`
///   and `comm/collective_s`.
///
/// Each rank's inner solver runs unmetered — series from P concurrent
/// ranks would interleave nondeterministically; recording once at the
/// coordinator keeps snapshots reproducible and the solve bit-identical.
pub fn reconstruct_distributed_with_metrics(
    ops: &Operators,
    sino_ordered: &[f32],
    config: &DistConfig,
    metrics: &Metrics,
) -> Result<DistOutput, BuildError> {
    // The disabled policy reproduces the historical fail-fast behaviour
    // (unbounded waits, empty fault plan, no checkpoints, no restarts)
    // bit-identically.
    try_reconstruct_distributed_ft(
        ops,
        sino_ordered,
        config,
        &FaultTolerance::disabled(),
        metrics,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::preprocess::{preprocess, Config, Kernel};
    use crate::solvers::{cgls, StopRule};
    use xct_geometry::{disk, simulate_sinogram, Grid, NoiseModel, ScanGeometry};
    use xct_runtime::run_ranks;

    fn setup(n: u32, m: u32) -> (Operators, Vec<f32>) {
        let grid = Grid::new(n);
        let scan = ScanGeometry::new(m, n);
        let img = disk(0.6, 1.0).rasterize(n);
        let sino = simulate_sinogram(&img, &grid, &scan, NoiseModel::None, 0);
        let ops = preprocess(grid, scan, &Config::default());
        let y = ops.order_sinogram(&sino);
        (ops, y)
    }

    #[test]
    fn plans_partition_both_domains() {
        let (ops, _) = setup(16, 12);
        let plans = build_plans(&ops, 4, false);
        assert_eq!(plans.len(), 4);
        assert_eq!(plans[0].tomo_range.start, 0);
        assert_eq!(plans[3].tomo_range.end as usize, ops.a.ncols());
        assert_eq!(plans[3].sino_range.end as usize, ops.a.nrows());
        for w in plans.windows(2) {
            assert_eq!(w[0].tomo_range.end, w[1].tomo_range.start);
            assert_eq!(w[0].sino_range.end, w[1].sino_range.start);
        }
        // Column blocks partition the nonzeroes.
        let total: usize = plans.iter().map(|p| p.a_local.nnz()).sum();
        assert_eq!(total, ops.a.nnz());
    }

    #[test]
    fn distributed_forward_matches_serial() {
        let (ops, _) = setup(16, 12);
        let x: Vec<f32> = (0..ops.a.ncols()).map(|i| (i % 7) as f32 * 0.25).collect();
        let want = ops.forward(Kernel::Serial, &x);
        for ranks in [1, 2, 3, 5] {
            let plans = build_plans(&ops, ranks, false);
            let (results, _) = run_ranks(ranks, |comm| {
                let plan = &plans[comm.rank()];
                let lo = plan.tomo_range.start as usize;
                let hi = plan.tomo_range.end as usize;
                let mut kb = KernelBreakdown::default();
                plan.forward(comm, &x[lo..hi], &mut kb)
            });
            let mut got = vec![0f32; ops.a.nrows()];
            for (plan, block) in plans.iter().zip(results) {
                let lo = plan.sino_range.start as usize;
                got[lo..lo + block.len()].copy_from_slice(&block);
            }
            for (g, w) in got.iter().zip(&want) {
                assert!((g - w).abs() < 1e-3, "ranks {ranks}: {g} vs {w}");
            }
        }
    }

    #[test]
    fn distributed_back_matches_serial() {
        let (ops, _) = setup(16, 12);
        let y: Vec<f32> = (0..ops.a.nrows()).map(|i| ((i % 5) as f32) - 2.0).collect();
        let want = ops.back(Kernel::Serial, &y);
        for ranks in [1, 2, 4] {
            let plans = build_plans(&ops, ranks, false);
            let (results, _) = run_ranks(ranks, |comm| {
                let plan = &plans[comm.rank()];
                let lo = plan.sino_range.start as usize;
                let hi = plan.sino_range.end as usize;
                let mut kb = KernelBreakdown::default();
                plan.back(comm, &y[lo..hi], &mut kb)
            });
            let mut got = vec![0f32; ops.a.ncols()];
            for (plan, block) in plans.iter().zip(results) {
                let lo = plan.tomo_range.start as usize;
                got[lo..lo + block.len()].copy_from_slice(&block);
            }
            for (g, w) in got.iter().zip(&want) {
                assert!((g - w).abs() < 1e-3, "ranks {ranks}: {g} vs {w}");
            }
        }
    }

    #[test]
    fn batched_halo_exchange_is_bitwise_single_slice() {
        // One alltoallv round carries all k slices; every slice must be
        // bit-identical to its own single-slice collective.
        let (ops, _) = setup(16, 12);
        let batch = 3usize;
        for use_buffered in [false, true] {
            for ranks in [1usize, 2, 4] {
                let plans = build_plans(&ops, ranks, use_buffered);
                // Forward: slab of k tomogram slices per rank.
                let (batched, _) = run_ranks(ranks, |comm| {
                    let plan = &plans[comm.rank()];
                    let lo = plan.tomo_range.start as usize;
                    let hi = plan.tomo_range.end as usize;
                    let x: Vec<f32> = (0..batch * (hi - lo))
                        .map(|i| ((lo + i) % 11) as f32 * 0.5 - 2.0)
                        .collect();
                    let mut kb = KernelBreakdown::default();
                    let y = plan.try_forward_batch(comm, &x, batch, &mut kb).unwrap();
                    (x, y)
                });
                for j in 0..batch {
                    let (single, _) = run_ranks(ranks, |comm| {
                        let plan = &plans[comm.rank()];
                        let n = plan.tomo_range.len();
                        let xj = &batched[comm.rank()].0[j * n..(j + 1) * n];
                        let mut kb = KernelBreakdown::default();
                        plan.try_forward(comm, xj, &mut kb).unwrap()
                    });
                    for (rank, want) in single.iter().enumerate() {
                        let m = plans[rank].sino_range.len();
                        let got = &batched[rank].1[j * m..(j + 1) * m];
                        assert!(
                            got.iter()
                                .zip(want)
                                .all(|(a, b)| a.to_bits() == b.to_bits()),
                            "forward slice {j} rank {rank} ranks={ranks} buffered={use_buffered}"
                        );
                    }
                }
                // Backprojection: slab of k sinogram slices per rank.
                let (batched, _) = run_ranks(ranks, |comm| {
                    let plan = &plans[comm.rank()];
                    let lo = plan.sino_range.start as usize;
                    let hi = plan.sino_range.end as usize;
                    let y: Vec<f32> = (0..batch * (hi - lo))
                        .map(|i| ((lo + i) % 7) as f32 * 0.25 - 1.0)
                        .collect();
                    let mut kb = KernelBreakdown::default();
                    let x = plan.try_back_batch(comm, &y, batch, &mut kb).unwrap();
                    (y, x)
                });
                for j in 0..batch {
                    let (single, _) = run_ranks(ranks, |comm| {
                        let plan = &plans[comm.rank()];
                        let m = plan.sino_range.len();
                        let yj = &batched[comm.rank()].0[j * m..(j + 1) * m];
                        let mut kb = KernelBreakdown::default();
                        plan.try_back(comm, yj, &mut kb).unwrap()
                    });
                    for (rank, want) in single.iter().enumerate() {
                        let n = plans[rank].tomo_range.len();
                        let got = &batched[rank].1[j * n..(j + 1) * n];
                        assert!(
                            got.iter()
                                .zip(want)
                                .all(|(a, b)| a.to_bits() == b.to_bits()),
                            "back slice {j} rank {rank} ranks={ranks} buffered={use_buffered}"
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn distributed_cg_matches_serial_cg() {
        let (ops, y) = setup(16, 12);
        let (x_serial, recs_serial) = cgls(
            &y,
            ops.a.ncols(),
            |p| ops.forward(Kernel::Serial, p),
            |r| ops.back(Kernel::Serial, r),
            StopRule::Fixed(8),
        );
        let out = reconstruct_distributed(
            &ops,
            &y,
            &DistConfig {
                ranks: 3,
                use_buffered: false,
                stop: StopRule::Fixed(8),
                solver: DistSolver::Cg,
            },
        );
        let img_serial = ops.unorder_tomogram(&x_serial);
        let num: f64 = out
            .image
            .iter()
            .zip(&img_serial)
            .map(|(&a, &b)| ((a - b) as f64).powi(2))
            .sum::<f64>()
            .sqrt();
        let den: f64 = img_serial
            .iter()
            .map(|&b| (b as f64).powi(2))
            .sum::<f64>()
            .sqrt();
        // CG amplifies f32 summation-order differences between the
        // factorized (A = R·C·A_p) and monolithic products, so agreement
        // is to a few parts in a thousand, not bitwise.
        assert!(num / den < 2e-2, "distributed diverged: {}", num / den);
        for (a, b) in out.records.iter().zip(&recs_serial) {
            let rel = (a.residual_norm - b.residual_norm).abs() / b.residual_norm.max(1.0);
            assert!(
                rel < 5e-2,
                "iter {}: {} vs {}",
                a.iter,
                a.residual_norm,
                b.residual_norm
            );
        }
    }

    #[test]
    fn distributed_sirt_matches_serial_sirt() {
        let (ops, y) = setup(16, 12);
        let (x_serial, _) = crate::solvers::sirt(
            &y,
            ops.a.ncols(),
            |p| ops.forward(Kernel::Serial, p),
            |r| ops.back(Kernel::Serial, r),
            10,
        );
        let out = reconstruct_distributed(
            &ops,
            &y,
            &DistConfig {
                ranks: 3,
                use_buffered: false,
                stop: StopRule::Fixed(10),
                solver: DistSolver::Sirt,
            },
        );
        let img_serial = ops.unorder_tomogram(&x_serial);
        let num: f64 = out
            .image
            .iter()
            .zip(&img_serial)
            .map(|(&a, &b)| ((a - b) as f64).powi(2))
            .sum::<f64>()
            .sqrt();
        let den: f64 = img_serial
            .iter()
            .map(|&b| (b as f64).powi(2))
            .sum::<f64>()
            .sqrt();
        assert!(num / den < 1e-3, "distributed SIRT diverged: {}", num / den);
        assert_eq!(out.records.len(), 10);
    }

    #[test]
    fn buffered_distributed_matches_unbuffered() {
        let (ops, y) = setup(16, 12);
        let a = reconstruct_distributed(
            &ops,
            &y,
            &DistConfig {
                ranks: 2,
                use_buffered: true,
                stop: StopRule::Fixed(5),
                solver: DistSolver::Cg,
            },
        );
        let b = reconstruct_distributed(
            &ops,
            &y,
            &DistConfig {
                ranks: 2,
                use_buffered: false,
                stop: StopRule::Fixed(5),
                solver: DistSolver::Cg,
            },
        );
        for (x, z) in a.image.iter().zip(&b.image) {
            assert!((x - z).abs() < 1e-3);
        }
    }

    #[test]
    fn communication_is_sparse() {
        // With enough ranks, not every pair interacts (Fig 7(c)).
        let (ops, y) = setup(32, 16);
        let out = reconstruct_distributed(
            &ops,
            &y,
            &DistConfig {
                ranks: 8,
                use_buffered: false,
                stop: StopRule::Fixed(2),
                solver: DistSolver::Cg,
            },
        );
        let pairs = out.ledger.nonzero_pairs();
        assert!(pairs > 0);
        // Scalar allreduces touch all pairs, so just check the volumes are
        // unequal across pairs (sparsity of the data exchange shows up in
        // the byte counts).
        let mut bytes: Vec<u64> = (0..8)
            .flat_map(|s| (0..8).map(move |d| (s, d)))
            .filter(|(s, d)| s != d)
            .map(|(s, d)| out.ledger.bytes(s, d))
            .collect();
        bytes.sort_unstable();
        assert!(
            bytes[0] < bytes[bytes.len() - 1],
            "expected skewed comm volumes"
        );
    }

    #[test]
    fn volumes_shrink_with_more_ranks() {
        let (ops, _) = setup(32, 16);
        let v2 = build_plans(&ops, 2, false)
            .iter()
            .map(|p| p.volumes().regular_bytes)
            .fold(0f64, f64::max);
        let v8 = build_plans(&ops, 8, false)
            .iter()
            .map(|p| p.volumes().regular_bytes)
            .fold(0f64, f64::max);
        assert!(v8 < v2, "per-rank regular bytes must shrink: {v8} vs {v2}");
    }

    #[test]
    fn try_variant_rejects_bad_inputs() {
        let (ops, y) = setup(16, 12);
        let zero_ranks = DistConfig {
            ranks: 0,
            ..DistConfig::default()
        };
        assert_eq!(
            try_reconstruct_distributed(&ops, &y, &zero_ranks).err(),
            Some(BuildError::ZeroRanks)
        );
        let cfg = DistConfig {
            ranks: 2,
            stop: StopRule::Fixed(1),
            ..DistConfig::default()
        };
        assert!(matches!(
            try_reconstruct_distributed(&ops, &y[..y.len() - 1], &cfg).err(),
            Some(BuildError::SinogramLength { .. })
        ));
    }

    #[test]
    fn instrumented_distributed_records_comm_matrix() {
        let (ops, y) = setup(16, 12);
        let m = Metrics::collecting();
        let cfg = DistConfig {
            ranks: 3,
            use_buffered: false,
            stop: StopRule::Fixed(4),
            solver: DistSolver::Cg,
        };
        let out = reconstruct_distributed_with_metrics(&ops, &y, &cfg, &m).unwrap();
        let snap = m.snapshot();
        // The exported matrix equals the ledger's per-pair accounting.
        let mat = &snap.matrices["comm/bytes"];
        assert_eq!(mat.size, 3);
        for src in 0..3 {
            for dst in 0..3 {
                assert_eq!(mat.get(src, dst), out.ledger.bytes(src, dst));
            }
        }
        // Kernel timers: one observation per rank.
        assert_eq!(snap.timers["kernel/ap_s"].count, 3);
        assert_eq!(snap.timers["kernel/c_s"].count, 3);
        assert_eq!(snap.timers["kernel/r_s"].count, 3);
        // Convergence series mirror the records.
        assert_eq!(snap.counters["solver/iterations"], out.records.len() as u64);
        assert_eq!(
            snap.series["solver/residual_norm"],
            out.records
                .iter()
                .map(|r| r.residual_norm)
                .collect::<Vec<_>>()
        );
        // Local SpMV volumes: CG does one back (init) + per-iter fwd+back.
        assert_eq!(snap.counters["spmv/dist/calls"], 3 * (1 + 2 * 4));
        assert!(snap.counters["spmv/dist/nnz"] > 0);
        assert!(snap.counters["spmv/dist/bytes"] > 0);
        // Collectives were timed on every rank.
        assert!(snap.counters["comm/collective_calls"] > 0);
        assert_eq!(snap.timers["comm/collective_s"].count, 3);
        // And the numerics are untouched by instrumentation.
        let plain = try_reconstruct_distributed(&ops, &y, &cfg).unwrap();
        assert_eq!(plain.image, out.image);
    }

    #[test]
    fn kernel_breakdown_accumulates() {
        let (ops, y) = setup(16, 12);
        let out = reconstruct_distributed(
            &ops,
            &y,
            &DistConfig {
                ranks: 2,
                use_buffered: false,
                stop: StopRule::Fixed(3),
                solver: DistSolver::Cg,
            },
        );
        for kb in &out.breakdown {
            assert!(kb.ap_s > 0.0);
            assert!(kb.total() >= kb.ap_s);
        }
    }
}

//! Filtered backprojection (FBP): the *analytical* reconstruction method
//! MemXCT's introduction argues against for noisy/undersampled data.
//!
//! "Analytical methods such as the filtered backprojection (FBP) algorithm
//! are computationally efficient, but reconstruction quality is often poor
//! when measurements are noisy or undersampled" (§1). We implement FBP to
//! make that comparison runnable: each sinogram row is ramp-filtered in
//! the frequency domain ([`xct_fft`]), and the filtered sinogram is
//! backprojected through the *memoized* `Aᵀ` — so FBP here is literally
//! one filtered SpMV, demonstrating that the memory-centric machinery
//! serves direct solvers too.

use crate::preprocess::{Kernel, Operators};
use xct_fft::{FilterKind, ProjectionFilter};
use xct_geometry::Sinogram;

/// FBP configuration.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FbpConfig {
    /// Apodization window.
    pub filter: FilterKind,
    /// Kernel used for the backprojection SpMV.
    pub kernel: Kernel,
}

impl Default for FbpConfig {
    fn default() -> Self {
        FbpConfig {
            filter: FilterKind::SheppLogan,
            kernel: Kernel::Parallel,
        }
    }
}

/// Reconstruct one slice with filtered backprojection. Returns the
/// row-major image.
pub fn fbp(ops: &Operators, sino: &Sinogram, config: &FbpConfig) -> Vec<f32> {
    let m = ops.scan.num_projections() as usize;
    let n = ops.scan.num_channels() as usize;
    // lint: allow(no-panic) documented shape precondition
    assert_eq!(sino.data().len(), m * n);

    // Filter each projection row (row-major sinogram layout).
    let filter = ProjectionFilter::new(n, config.filter);
    let mut filtered = sino.data().to_vec();
    for row in filtered.chunks_exact_mut(n) {
        filter.apply(row);
    }

    // Backproject through the memoized A^T (needs ordered coordinates).
    let sino_f = Sinogram::new(ops.scan, filtered);
    let y = ops.order_sinogram(&sino_f);
    let x = ops.back(config.kernel, &y);

    // Radon inversion scale: our ramp is 2|f| on unit-pitch samples and
    // angles cover [0, π) in M steps.
    let scale = std::f32::consts::PI / (2.0 * m as f32);
    let scaled: Vec<f32> = x.iter().map(|&v| v * scale).collect();
    ops.unorder_tomogram(&scaled)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::preprocess::{preprocess, Config};
    use crate::solvers::{cgls, StopRule};
    use xct_geometry::{disk, shepp_logan, simulate_sinogram, Grid, NoiseModel, ScanGeometry};

    fn rel_err(a: &[f32], b: &[f32]) -> f64 {
        let num: f64 = a
            .iter()
            .zip(b)
            .map(|(&x, &y)| ((x - y) as f64).powi(2))
            .sum::<f64>()
            .sqrt();
        let den: f64 = b.iter().map(|&y| (y as f64).powi(2)).sum::<f64>().sqrt();
        num / den
    }

    #[test]
    fn fbp_recovers_disk_from_clean_dense_data() {
        let n = 64u32;
        let grid = Grid::new(n);
        let scan = ScanGeometry::new(96, n); // densely sampled
        let truth = disk(0.5, 1.0).rasterize(n);
        let sino = simulate_sinogram(&truth, &grid, &scan, NoiseModel::None, 0);
        let ops = preprocess(grid, scan, &Config::default());
        let img = fbp(&ops, &sino, &FbpConfig::default());
        let err = rel_err(&img, &truth);
        assert!(err < 0.25, "FBP error {err}");
        // Interior amplitude roughly right (scale constant sanity check).
        let centre = img[(n / 2 * n + n / 2) as usize];
        assert!(
            (0.7..1.3).contains(&centre),
            "centre value {centre}, expected ~1.0"
        );
    }

    #[test]
    fn cg_beats_fbp_on_noisy_undersampled_data() {
        // The paper's motivating claim (§1): iterative solvers win when
        // data is noisy or undersampled.
        let n = 64u32;
        let grid = Grid::new(n);
        let scan = ScanGeometry::new(24, n); // heavily undersampled
        let truth = shepp_logan().rasterize(n);
        let sino = simulate_sinogram(
            &truth,
            &grid,
            &scan,
            NoiseModel::Poisson {
                incident: 5e3, // very noisy
                scale: 0.05,
            },
            5,
        );
        let ops = preprocess(grid, scan, &Config::default());
        let img_fbp = fbp(&ops, &sino, &FbpConfig::default());
        let y = ops.order_sinogram(&sino);
        let (x_cg, _) = cgls(
            &y,
            ops.a.ncols(),
            |p| ops.forward(Kernel::Parallel, p),
            |r| ops.back(Kernel::Parallel, r),
            StopRule::EarlyTermination {
                max_iters: 30,
                min_decrease: 0.02,
            },
        );
        let img_cg = ops.unorder_tomogram(&x_cg);
        let e_fbp = rel_err(&img_fbp, &truth);
        let e_cg = rel_err(&img_cg, &truth);
        assert!(
            e_cg < e_fbp,
            "CG ({e_cg:.3}) should beat FBP ({e_fbp:.3}) on noisy undersampled data"
        );
    }

    #[test]
    fn filter_choice_changes_noise_behaviour() {
        let n = 48u32;
        let grid = Grid::new(n);
        let scan = ScanGeometry::new(72, n);
        let truth = disk(0.5, 1.0).rasterize(n);
        let sino = simulate_sinogram(
            &truth,
            &grid,
            &scan,
            NoiseModel::Poisson {
                incident: 1e4,
                scale: 0.05,
            },
            11,
        );
        let ops = preprocess(grid, scan, &Config::default());
        let ramlak = fbp(
            &ops,
            &sino,
            &FbpConfig {
                filter: FilterKind::RamLak,
                ..Default::default()
            },
        );
        let hann = fbp(
            &ops,
            &sino,
            &FbpConfig {
                filter: FilterKind::Hann,
                ..Default::default()
            },
        );
        // Hann smooths: background (outside the disk) variance drops.
        let bg_var = |img: &[f32]| {
            let corner: Vec<f32> = (0..8)
                .flat_map(|j| (0..8).map(move |i| (i, j)))
                .map(|(i, j)| img[(j * n + i) as usize])
                .collect();
            let mean: f32 = corner.iter().sum::<f32>() / corner.len() as f32;
            corner.iter().map(|v| (v - mean).powi(2)).sum::<f32>() / corner.len() as f32
        };
        assert!(
            bg_var(&hann) < bg_var(&ramlak),
            "hann {} vs ramlak {}",
            bg_var(&hann),
            bg_var(&ramlak)
        );
    }
}

//! Solver checkpoint/resume: serialize a mid-solve engine state into the
//! versioned, checksummed [`Snapshot`] container of `xct-runtime`, and
//! validate + restore it for a **bit-identical** continuation.
//!
//! A snapshot captures everything iteration `k+1` reads from iteration
//! `k`: the carried vectors (`x`, `resid`, `dir`), the rule's carried
//! scalars (CG's `γ`; SIRT's weights are a pure function of the operator
//! and are recomputed on resume), the early-termination reference
//! `prev_res`, and the committed [`IterationRecord`]s. The layout is the
//! same for serial and distributed solves — the distributed driver
//! gathers per-rank blocks into the global ordered domain before saving —
//! so a snapshot taken at one rank count can seed a solve at another
//! (the graceful-degradation path).
//!
//! **Batched solves** extend the layout rather than fork it: the carried
//! vectors become slice-major slabs (`batch × ncols` / `batch × nrows`),
//! `prev_res` becomes a per-slice vector, and three sections are added —
//! the batch width, the per-slice activity flags, and the per-slice
//! record counts (the record arrays are the per-slice lists
//! concatenated). A batch-1 snapshot written by the current code carries
//! all of these; snapshots from the pre-batch format (no batch section,
//! scalar `prev_res`) still decode as batch 1.
//!
//! Snapshots are validated before use through [`xct_check::CheckpointCheck`]:
//! plan-hash match ([`Invariant::CheckpointHash`]), batch-width match
//! ([`Invariant::CheckpointBatch`]), vector lengths
//! ([`Invariant::CheckpointShape`]), and iteration consistency
//! ([`Invariant::CheckpointMonotone`]).
//!
//! [`Invariant::CheckpointHash`]: xct_check::Invariant
//! [`Invariant::CheckpointBatch`]: xct_check::Invariant
//! [`Invariant::CheckpointShape`]: xct_check::Invariant
//! [`Invariant::CheckpointMonotone`]: xct_check::Invariant

use crate::errors::BuildError;
use crate::preprocess::Operators;
use crate::solvers::IterationRecord;
use xct_check::{Check, CheckpointCheck, Report};
use xct_runtime::{fnv1a64, CheckpointError, CheckpointSink, Snapshot};

/// Section name of the iterate `x` (tomogram domain).
pub const SECTION_X: &str = "solve/x";
/// Section name of the residual `r` (sinogram domain).
pub const SECTION_RESID: &str = "solve/resid";
/// Section name of the search direction `p` (tomogram domain).
pub const SECTION_DIR: &str = "solve/dir";
/// Section name of the early-termination reference residual.
pub const SECTION_PREV_RES: &str = "solve/prev_res";
/// Section name of the update rule's carried scalars (CG's `γ`).
pub const SECTION_RULE: &str = "solve/rule_scalars";
/// Section name of the per-iteration residual norms.
pub const SECTION_REC_RESIDUAL: &str = "records/residual";
/// Section name of the per-iteration solution norms.
pub const SECTION_REC_SOLUTION: &str = "records/solution";
/// Section name of the per-iteration wall-clock seconds.
pub const SECTION_REC_SECONDS: &str = "records/seconds";
/// Section name of the batch width (one `u64`); absent in pre-batch
/// snapshots, which are read as batch 1.
pub const SECTION_BATCH: &str = "solve/batch";
/// Section name of the per-slice activity flags (`u64` 0/1 per slice).
pub const SECTION_ACTIVE: &str = "solve/active";
/// Section name of the per-slice record counts; the `records/*` arrays
/// are the per-slice lists concatenated in slice order.
pub const SECTION_REC_COUNTS: &str = "records/counts";

/// Deterministic fingerprint of the preprocessed plan a snapshot belongs
/// to. Any geometry or configuration change that alters the projection
/// matrix's shape, population, or partitioning changes the fingerprint,
/// so a stale snapshot is rejected at [`Invariant::CheckpointHash`]
/// validation instead of silently resuming into the wrong plan.
///
/// [`Invariant::CheckpointHash`]: xct_check::Invariant
pub fn plan_fingerprint(ops: &Operators) -> u64 {
    let mut bytes = [0u8; 32];
    bytes[..8].copy_from_slice(&(ops.a.nrows() as u64).to_le_bytes());
    bytes[8..16].copy_from_slice(&(ops.a.ncols() as u64).to_le_bytes());
    bytes[16..24].copy_from_slice(&(ops.a.nnz() as u64).to_le_bytes());
    bytes[24..].copy_from_slice(&(ops.partsize as u64).to_le_bytes());
    fnv1a64(&bytes)
}

/// A decoded, validated mid-solve state ready to restore into a
/// workspace and rule.
pub(crate) struct SolveState {
    /// The iteration the resumed loop starts at (iterations `0..iteration`
    /// are committed in `slice_records`).
    pub(crate) iteration: usize,
    /// Batch width the solve was running at (1 for pre-batch snapshots).
    pub(crate) batch: usize,
    /// Per-slice `prev_res` as of the last committed iteration.
    pub(crate) prev_res: Vec<f64>,
    /// Global ordered iterate slab (`batch × ncols`, slice-major).
    pub(crate) x: Vec<f32>,
    /// Global ordered residual slab.
    pub(crate) resid: Vec<f32>,
    /// Global ordered search-direction slab.
    pub(crate) dir: Vec<f32>,
    /// Per-slice activity flags.
    pub(crate) active: Vec<bool>,
    /// Committed per-slice per-iteration records.
    pub(crate) slice_records: Vec<Vec<IterationRecord>>,
    /// The update rule's carried scalars.
    pub(crate) scalars: Vec<f64>,
}

/// Build the snapshot for a batch-1 solve paused before `next_iter` (the
/// distributed driver's entry point — thin wrapper over
/// [`encode_state_batched`]).
#[allow(clippy::too_many_arguments)]
pub(crate) fn encode_state(
    plan_hash: u64,
    next_iter: usize,
    prev_res: f64,
    x: &[f32],
    resid: &[f32],
    dir: &[f32],
    records: &[IterationRecord],
    rule_scalars: &[f64],
) -> Snapshot {
    let slice_records = [records.to_vec()];
    encode_state_batched(
        plan_hash,
        next_iter,
        1,
        &[prev_res],
        x,
        resid,
        dir,
        &[true],
        &slice_records,
        rule_scalars,
    )
}

/// Build the snapshot for a batched solve paused before `next_iter`. The
/// carried slabs are slice-major; the per-slice record lists are
/// concatenated into the `records/*` arrays with their lengths in
/// [`SECTION_REC_COUNTS`].
#[allow(clippy::too_many_arguments)]
pub(crate) fn encode_state_batched(
    plan_hash: u64,
    next_iter: usize,
    batch: usize,
    prev_res: &[f64],
    x: &[f32],
    resid: &[f32],
    dir: &[f32],
    active: &[bool],
    slice_records: &[Vec<IterationRecord>],
    rule_scalars: &[f64],
) -> Snapshot {
    let mut snap = Snapshot::new(plan_hash, next_iter as u64);
    snap.push_u64s(SECTION_BATCH, &[batch as u64]);
    snap.push_f32s(SECTION_X, x);
    snap.push_f32s(SECTION_RESID, resid);
    snap.push_f32s(SECTION_DIR, dir);
    snap.push_f64s(SECTION_PREV_RES, prev_res);
    let flags: Vec<u64> = active.iter().map(|&a| a as u64).collect();
    snap.push_u64s(SECTION_ACTIVE, &flags);
    snap.push_f64s(SECTION_RULE, rule_scalars);
    let counts: Vec<u64> = slice_records.iter().map(|r| r.len() as u64).collect();
    snap.push_u64s(SECTION_REC_COUNTS, &counts);
    let all = slice_records.iter().flatten();
    let residuals: Vec<f64> = all.clone().map(|r| r.residual_norm).collect();
    let solutions: Vec<f64> = all.clone().map(|r| r.solution_norm).collect();
    let seconds: Vec<f64> = all.map(|r| r.seconds).collect();
    snap.push_f64s(SECTION_REC_RESIDUAL, &residuals);
    snap.push_f64s(SECTION_REC_SOLUTION, &solutions);
    snap.push_f64s(SECTION_REC_SECONDS, &seconds);
    snap
}

/// Validate a decoded snapshot against the plan it will resume into:
/// plan-hash match, batch width against the resuming configuration,
/// vector lengths against the operator's dimensions scaled by the batch
/// width, iteration counter within the stop rule's cap and consistent
/// with the record sections. Returns the (possibly empty) violation
/// report.
///
/// A pre-batch snapshot (no [`SECTION_BATCH`]) is treated as batch 1 and
/// skips the batch-only section checks, so old checkpoints remain
/// resumable.
pub fn validate_snapshot(
    snap: &Snapshot,
    expected_plan_hash: u64,
    max_iters: usize,
    nrows: usize,
    ncols: usize,
    expected_batch: usize,
) -> Report {
    let found = |name: &str| snap.f32s(name).ok().map(<[f32]>::len);
    let found64 = |name: &str| snap.f64s(name).ok().map(<[f64]>::len);
    let found_u64 = |name: &str| snap.u64s(name).ok().map(<[u64]>::len);
    let iteration = snap.iteration();
    let batched = snap.has(SECTION_BATCH);
    let found_batch = snap
        .u64s(SECTION_BATCH)
        .ok()
        .and_then(|v| v.first().copied())
        .unwrap_or(1);
    let counts: Option<Vec<u64>> = snap.u64s(SECTION_REC_COUNTS).ok().map(<[u64]>::to_vec);
    // At checkpoint time every still-active slice has one record per
    // committed iteration, so the longest per-slice list must equal the
    // iteration counter (retired slices may be shorter). Pre-batch
    // snapshots have a single implicit slice: the array length itself.
    let records_len = match &counts {
        Some(c) => c.iter().copied().max().unwrap_or(0),
        None => found64(SECTION_REC_RESIDUAL).unwrap_or(0) as u64,
    };
    // The concatenated record arrays carry sum(counts) entries; saturate
    // rather than truncate if a corrupt header claims more iterations
    // than usize holds.
    let rec_expect = match &counts {
        Some(c) => usize::try_from(c.iter().sum::<u64>()).unwrap_or(usize::MAX),
        None => usize::try_from(iteration).unwrap_or(usize::MAX),
    };
    let b = expected_batch.max(1);
    let mut check = CheckpointCheck::new(
        "solve checkpoint",
        expected_plan_hash,
        snap.plan_hash(),
        max_iters as u64,
        iteration,
        records_len,
    )
    .batch(b as u64, found_batch)
    .section(SECTION_X, ncols * b, found(SECTION_X))
    .section(SECTION_RESID, nrows * b, found(SECTION_RESID))
    .section(SECTION_DIR, ncols * b, found(SECTION_DIR))
    .section(
        SECTION_REC_RESIDUAL,
        rec_expect,
        found64(SECTION_REC_RESIDUAL),
    )
    .section(
        SECTION_REC_SOLUTION,
        rec_expect,
        found64(SECTION_REC_SOLUTION),
    )
    .section(
        SECTION_REC_SECONDS,
        rec_expect,
        found64(SECTION_REC_SECONDS),
    );
    if batched {
        check = check
            .section(SECTION_PREV_RES, b, found64(SECTION_PREV_RES))
            .section(SECTION_ACTIVE, b, found_u64(SECTION_ACTIVE))
            .section(SECTION_REC_COUNTS, b, found_u64(SECTION_REC_COUNTS));
    }
    let mut report = Report::new();
    check.run(&mut report);
    report
}

/// Decode a validated snapshot into a [`SolveState`]. Pre-batch
/// snapshots (no batch section, scalar `prev_res`) decode as batch 1
/// with every slice active.
pub(crate) fn decode_state(snap: &Snapshot) -> Result<SolveState, CheckpointError> {
    // in-range: validate_snapshot bounded iteration by the stop rule's cap
    let iteration = snap.iteration() as usize;
    let batch = snap
        .u64s(SECTION_BATCH)
        .ok()
        .and_then(|v| v.first().copied())
        .unwrap_or(1) as usize;
    let residuals = snap.f64s(SECTION_REC_RESIDUAL)?;
    let solutions = snap.f64s(SECTION_REC_SOLUTION)?;
    let seconds = snap.f64s(SECTION_REC_SECONDS)?;
    let counts: Vec<usize> = match snap.u64s(SECTION_REC_COUNTS) {
        Ok(c) => c.iter().map(|&v| v as usize).collect(),
        Err(_) => vec![residuals.len()],
    };
    let mut slice_records = Vec::with_capacity(counts.len());
    let mut off = 0usize;
    for &count in &counts {
        // in-range: validate_snapshot pinned the record arrays to
        // sum(counts) entries
        let recs = (0..count)
            .map(|i| IterationRecord {
                iter: i,
                residual_norm: residuals[off + i],
                solution_norm: solutions[off + i],
                seconds: seconds[off + i],
            })
            .collect();
        off += count;
        slice_records.push(recs);
    }
    let prev_res: Vec<f64> = match snap.f64s(SECTION_PREV_RES) {
        Ok(v) => v.to_vec(),
        // Pre-batch snapshots stored prev_res as a scalar section.
        Err(_) => vec![snap.f64_scalar(SECTION_PREV_RES)?],
    };
    let active: Vec<bool> = match snap.u64s(SECTION_ACTIVE) {
        Ok(v) => v.iter().map(|&f| f != 0).collect(),
        Err(_) => vec![true; batch],
    };
    Ok(SolveState {
        iteration,
        batch,
        prev_res,
        x: snap.f32s(SECTION_X)?.to_vec(),
        resid: snap.f32s(SECTION_RESID)?.to_vec(),
        dir: snap.f32s(SECTION_DIR)?.to_vec(),
        active,
        slice_records,
        scalars: snap.f64s(SECTION_RULE)?.to_vec(),
    })
}

/// Load and fully validate a snapshot from `sink`'s slot `slot`.
///
/// Returns `Ok(None)` when the slot holds no snapshot (a resume request
/// before any checkpoint was written starts from scratch), a typed
/// [`BuildError::Checkpoint`] for container-level corruption (bad magic,
/// checksum mismatch, truncation), and [`BuildError::PlanCheck`] when the
/// container is intact but inconsistent with the plan being resumed.
pub(crate) fn load_state(
    sink: &dyn CheckpointSink,
    slot: usize,
    expected_plan_hash: u64,
    max_iters: usize,
    nrows: usize,
    ncols: usize,
    expected_batch: usize,
) -> Result<Option<SolveState>, BuildError> {
    let Some(bytes) = sink.load(slot).map_err(BuildError::Checkpoint)? else {
        return Ok(None);
    };
    let snap = Snapshot::decode(&bytes).map_err(BuildError::Checkpoint)?;
    let report = validate_snapshot(
        &snap,
        expected_plan_hash,
        max_iters,
        nrows,
        ncols,
        expected_batch,
    );
    if !report.is_ok() {
        return Err(BuildError::PlanCheck(report));
    }
    let state = decode_state(&snap).map_err(BuildError::Checkpoint)?;
    Ok(Some(state))
}

#[cfg(test)]
mod tests {
    use super::*;
    use xct_check::Invariant;
    use xct_runtime::MemoryCheckpointSink;

    fn records(n: usize) -> Vec<IterationRecord> {
        (0..n)
            .map(|iter| IterationRecord {
                iter,
                residual_norm: 10.0 / (iter + 1) as f64,
                solution_norm: iter as f64,
                seconds: 0.25,
            })
            .collect()
    }

    #[test]
    fn encode_decode_round_trips_the_state() {
        let recs = records(3);
        let snap = encode_state(
            0xFEED,
            3,
            10.0 / 3.0,
            &[1.0, 2.0],
            &[3.0, 4.0, 5.0],
            &[6.0, 7.0],
            &recs,
            &[0.125],
        );
        assert!(validate_snapshot(&snap, 0xFEED, 10, 3, 2, 1).is_ok());
        let st = decode_state(&snap).unwrap();
        assert_eq!(st.iteration, 3);
        assert_eq!(st.batch, 1);
        assert_eq!(st.prev_res, vec![10.0 / 3.0]);
        assert_eq!(st.x, vec![1.0, 2.0]);
        assert_eq!(st.resid, vec![3.0, 4.0, 5.0]);
        assert_eq!(st.dir, vec![6.0, 7.0]);
        assert_eq!(st.active, vec![true]);
        assert_eq!(st.scalars, vec![0.125]);
        assert_eq!(st.slice_records, vec![recs]);
    }

    #[test]
    fn batched_encode_decode_round_trips_per_slice_state() {
        // Slice 0 ran 3 iterations, slice 1 retired after 2.
        let slice_records = vec![records(3), records(2)];
        let snap = encode_state_batched(
            0xFEED,
            3,
            2,
            &[0.5, 0.25],
            &[1.0; 4],
            &[2.0; 6],
            &[3.0; 4],
            &[true, false],
            &slice_records,
            &[0.125, 0.5],
        );
        let r = validate_snapshot(&snap, 0xFEED, 10, 3, 2, 2);
        assert!(r.is_ok(), "{r}");
        let st = decode_state(&snap).unwrap();
        assert_eq!(st.batch, 2);
        assert_eq!(st.prev_res, vec![0.5, 0.25]);
        assert_eq!(st.active, vec![true, false]);
        assert_eq!(st.slice_records, slice_records);
        assert_eq!(st.scalars, vec![0.125, 0.5]);
    }

    #[test]
    fn validation_pinpoints_each_mismatch() {
        let snap = encode_state(
            0xFEED,
            3,
            1.0,
            &[0.0; 2],
            &[0.0; 3],
            &[0.0; 2],
            &records(3),
            &[],
        );
        // Wrong plan hash.
        let r = validate_snapshot(&snap, 0xBEEF, 10, 3, 2, 1);
        assert!(r.has(Invariant::CheckpointHash), "{r}");
        // Wrong vector lengths (snapshot from a different geometry).
        let r = validate_snapshot(&snap, 0xFEED, 10, 4, 5, 1);
        assert!(r.has(Invariant::CheckpointShape), "{r}");
        // Iteration past the run's cap.
        let r = validate_snapshot(&snap, 0xFEED, 2, 3, 2, 1);
        assert!(r.has(Invariant::CheckpointMonotone), "{r}");
    }

    #[test]
    fn batch_width_mismatch_is_a_typed_violation() {
        let slice_records = vec![records(1), records(1)];
        let snap = encode_state_batched(
            7,
            1,
            2,
            &[1.0, 1.0],
            &[0.0; 4],
            &[0.0; 6],
            &[0.0; 4],
            &[true, true],
            &slice_records,
            &[],
        );
        // Resuming a batch-2 snapshot at batch 4: the batch invariant
        // fires as the root cause, not a cascade of shape violations.
        let r = validate_snapshot(&snap, 7, 10, 3, 2, 4);
        assert!(r.has(Invariant::CheckpointBatch), "{r}");
        assert!(!r.has(Invariant::CheckpointShape), "root cause only: {r}");
        // The matching width validates cleanly.
        assert!(validate_snapshot(&snap, 7, 10, 3, 2, 2).is_ok());
    }

    #[test]
    fn records_disagreeing_with_iteration_are_rejected() {
        let snap = encode_state(1, 5, 1.0, &[0.0; 2], &[0.0; 3], &[0.0; 2], &records(3), &[]);
        let r = validate_snapshot(&snap, 1, 10, 3, 2, 1);
        assert!(r.has(Invariant::CheckpointMonotone), "{r}");
    }

    #[test]
    fn load_state_surfaces_typed_errors() {
        let sink = MemoryCheckpointSink::new();
        // Empty slot: clean None.
        assert!(load_state(&sink, 0, 1, 10, 3, 2, 1).unwrap().is_none());
        // Garbage bytes: container-level checkpoint error.
        sink.save(0, b"not a snapshot").unwrap();
        assert!(matches!(
            load_state(&sink, 0, 1, 10, 3, 2, 1),
            Err(BuildError::Checkpoint(_))
        ));
        // Intact container, mismatched plan: invariant report.
        let snap = encode_state(2, 1, 1.0, &[0.0; 2], &[0.0; 3], &[0.0; 2], &records(1), &[]);
        sink.save(0, &snap.encode()).unwrap();
        match load_state(&sink, 0, 1, 10, 3, 2, 1) {
            Err(BuildError::PlanCheck(r)) => assert!(r.has(Invariant::CheckpointHash)),
            other => panic!("expected PlanCheck, got {:?}", other.map(|_| ())),
        }
        // Mismatched batch width: typed CheckpointBatch violation.
        match load_state(&sink, 0, 2, 10, 3, 2, 4) {
            Err(BuildError::PlanCheck(r)) => assert!(r.has(Invariant::CheckpointBatch), "{r}"),
            other => panic!("expected PlanCheck, got {:?}", other.map(|_| ())),
        }
        // Matching plan loads.
        let st = load_state(&sink, 0, 2, 10, 3, 2, 1).unwrap().unwrap();
        assert_eq!(st.iteration, 1);
    }

    #[test]
    fn fingerprint_tracks_plan_shape() {
        use crate::preprocess::{preprocess, Config};
        use xct_geometry::{Grid, ScanGeometry};
        let a = preprocess(Grid::new(16), ScanGeometry::new(12, 16), &Config::default());
        let b = preprocess(Grid::new(16), ScanGeometry::new(12, 16), &Config::default());
        assert_eq!(plan_fingerprint(&a), plan_fingerprint(&b), "deterministic");
        let c = preprocess(Grid::new(24), ScanGeometry::new(12, 24), &Config::default());
        assert_ne!(plan_fingerprint(&a), plan_fingerprint(&c));
    }
}

//! Solver checkpoint/resume: serialize a mid-solve engine state into the
//! versioned, checksummed [`Snapshot`] container of `xct-runtime`, and
//! validate + restore it for a **bit-identical** continuation.
//!
//! A snapshot captures everything iteration `k+1` reads from iteration
//! `k`: the carried vectors (`x`, `resid`, `dir`), the rule's carried
//! scalars (CG's `γ`; SIRT's weights are a pure function of the operator
//! and are recomputed on resume), the early-termination reference
//! `prev_res`, and the committed [`IterationRecord`]s. The layout is the
//! same for serial and distributed solves — the distributed driver
//! gathers per-rank blocks into the global ordered domain before saving —
//! so a snapshot taken at one rank count can seed a solve at another
//! (the graceful-degradation path).
//!
//! Snapshots are validated before use through [`xct_check::CheckpointCheck`]:
//! plan-hash match ([`Invariant::CheckpointHash`]), vector lengths
//! ([`Invariant::CheckpointShape`]), and iteration consistency
//! ([`Invariant::CheckpointMonotone`]).
//!
//! [`Invariant::CheckpointHash`]: xct_check::Invariant
//! [`Invariant::CheckpointShape`]: xct_check::Invariant
//! [`Invariant::CheckpointMonotone`]: xct_check::Invariant

use crate::errors::BuildError;
use crate::preprocess::Operators;
use crate::solvers::IterationRecord;
use xct_check::{Check, CheckpointCheck, Report};
use xct_runtime::{fnv1a64, CheckpointError, CheckpointSink, Snapshot};

/// Section name of the iterate `x` (tomogram domain).
pub const SECTION_X: &str = "solve/x";
/// Section name of the residual `r` (sinogram domain).
pub const SECTION_RESID: &str = "solve/resid";
/// Section name of the search direction `p` (tomogram domain).
pub const SECTION_DIR: &str = "solve/dir";
/// Section name of the early-termination reference residual.
pub const SECTION_PREV_RES: &str = "solve/prev_res";
/// Section name of the update rule's carried scalars (CG's `γ`).
pub const SECTION_RULE: &str = "solve/rule_scalars";
/// Section name of the per-iteration residual norms.
pub const SECTION_REC_RESIDUAL: &str = "records/residual";
/// Section name of the per-iteration solution norms.
pub const SECTION_REC_SOLUTION: &str = "records/solution";
/// Section name of the per-iteration wall-clock seconds.
pub const SECTION_REC_SECONDS: &str = "records/seconds";

/// Deterministic fingerprint of the preprocessed plan a snapshot belongs
/// to. Any geometry or configuration change that alters the projection
/// matrix's shape, population, or partitioning changes the fingerprint,
/// so a stale snapshot is rejected at [`Invariant::CheckpointHash`]
/// validation instead of silently resuming into the wrong plan.
///
/// [`Invariant::CheckpointHash`]: xct_check::Invariant
pub fn plan_fingerprint(ops: &Operators) -> u64 {
    let mut bytes = [0u8; 32];
    bytes[..8].copy_from_slice(&(ops.a.nrows() as u64).to_le_bytes());
    bytes[8..16].copy_from_slice(&(ops.a.ncols() as u64).to_le_bytes());
    bytes[16..24].copy_from_slice(&(ops.a.nnz() as u64).to_le_bytes());
    bytes[24..].copy_from_slice(&(ops.partsize as u64).to_le_bytes());
    fnv1a64(&bytes)
}

/// A decoded, validated mid-solve state ready to restore into a
/// workspace and rule.
pub(crate) struct SolveState {
    /// The iteration the resumed loop starts at (iterations `0..iteration`
    /// are committed in `records`).
    pub(crate) iteration: usize,
    /// `prev_res` as of the last committed iteration.
    pub(crate) prev_res: f64,
    /// Global ordered iterate.
    pub(crate) x: Vec<f32>,
    /// Global ordered residual.
    pub(crate) resid: Vec<f32>,
    /// Global ordered search direction.
    pub(crate) dir: Vec<f32>,
    /// Committed per-iteration records.
    pub(crate) records: Vec<IterationRecord>,
    /// The update rule's carried scalars.
    pub(crate) scalars: Vec<f64>,
}

/// Build the snapshot for a solve paused before `next_iter`.
#[allow(clippy::too_many_arguments)]
pub(crate) fn encode_state(
    plan_hash: u64,
    next_iter: usize,
    prev_res: f64,
    x: &[f32],
    resid: &[f32],
    dir: &[f32],
    records: &[IterationRecord],
    rule_scalars: &[f64],
) -> Snapshot {
    let mut snap = Snapshot::new(plan_hash, next_iter as u64);
    snap.push_f32s(SECTION_X, x);
    snap.push_f32s(SECTION_RESID, resid);
    snap.push_f32s(SECTION_DIR, dir);
    snap.push_f64(SECTION_PREV_RES, prev_res);
    snap.push_f64s(SECTION_RULE, rule_scalars);
    let residuals: Vec<f64> = records.iter().map(|r| r.residual_norm).collect();
    let solutions: Vec<f64> = records.iter().map(|r| r.solution_norm).collect();
    let seconds: Vec<f64> = records.iter().map(|r| r.seconds).collect();
    snap.push_f64s(SECTION_REC_RESIDUAL, &residuals);
    snap.push_f64s(SECTION_REC_SOLUTION, &solutions);
    snap.push_f64s(SECTION_REC_SECONDS, &seconds);
    snap
}

/// Validate a decoded snapshot against the plan it will resume into:
/// plan-hash match, vector lengths against the operator's dimensions,
/// iteration counter within the stop rule's cap and consistent with the
/// record sections. Returns the (possibly empty) violation report.
pub fn validate_snapshot(
    snap: &Snapshot,
    expected_plan_hash: u64,
    max_iters: usize,
    nrows: usize,
    ncols: usize,
) -> Report {
    let found = |name: &str| snap.f32s(name).ok().map(<[f32]>::len);
    let found64 = |name: &str| snap.f64s(name).ok().map(<[f64]>::len);
    let iteration = snap.iteration();
    let records_len = found64(SECTION_REC_RESIDUAL).unwrap_or(0) as u64;
    // One record per committed iteration; saturate rather than truncate if
    // a corrupt header claims more iterations than usize holds.
    let rec_expect = usize::try_from(iteration).unwrap_or(usize::MAX);
    let check = CheckpointCheck::new(
        "solve checkpoint",
        expected_plan_hash,
        snap.plan_hash(),
        max_iters as u64,
        iteration,
        records_len,
    )
    .section(SECTION_X, ncols, found(SECTION_X))
    .section(SECTION_RESID, nrows, found(SECTION_RESID))
    .section(SECTION_DIR, ncols, found(SECTION_DIR))
    .section(
        SECTION_REC_RESIDUAL,
        rec_expect,
        found64(SECTION_REC_RESIDUAL),
    )
    .section(
        SECTION_REC_SOLUTION,
        rec_expect,
        found64(SECTION_REC_SOLUTION),
    )
    .section(
        SECTION_REC_SECONDS,
        rec_expect,
        found64(SECTION_REC_SECONDS),
    );
    let mut report = Report::new();
    check.run(&mut report);
    report
}

/// Decode a validated snapshot into a [`SolveState`].
pub(crate) fn decode_state(snap: &Snapshot) -> Result<SolveState, CheckpointError> {
    // in-range: validate_snapshot bounded iteration by the stop rule's cap
    let iteration = snap.iteration() as usize;
    let residuals = snap.f64s(SECTION_REC_RESIDUAL)?;
    let solutions = snap.f64s(SECTION_REC_SOLUTION)?;
    let seconds = snap.f64s(SECTION_REC_SECONDS)?;
    let records = residuals
        .iter()
        .zip(solutions)
        .zip(seconds)
        .enumerate()
        .map(
            |(iter, ((&residual_norm, &solution_norm), &secs))| IterationRecord {
                iter,
                residual_norm,
                solution_norm,
                seconds: secs,
            },
        )
        .collect();
    Ok(SolveState {
        iteration,
        prev_res: snap.f64_scalar(SECTION_PREV_RES)?,
        x: snap.f32s(SECTION_X)?.to_vec(),
        resid: snap.f32s(SECTION_RESID)?.to_vec(),
        dir: snap.f32s(SECTION_DIR)?.to_vec(),
        records,
        scalars: snap.f64s(SECTION_RULE)?.to_vec(),
    })
}

/// Load and fully validate a snapshot from `sink`'s slot `slot`.
///
/// Returns `Ok(None)` when the slot holds no snapshot (a resume request
/// before any checkpoint was written starts from scratch), a typed
/// [`BuildError::Checkpoint`] for container-level corruption (bad magic,
/// checksum mismatch, truncation), and [`BuildError::PlanCheck`] when the
/// container is intact but inconsistent with the plan being resumed.
pub(crate) fn load_state(
    sink: &dyn CheckpointSink,
    slot: usize,
    expected_plan_hash: u64,
    max_iters: usize,
    nrows: usize,
    ncols: usize,
) -> Result<Option<SolveState>, BuildError> {
    let Some(bytes) = sink.load(slot).map_err(BuildError::Checkpoint)? else {
        return Ok(None);
    };
    let snap = Snapshot::decode(&bytes).map_err(BuildError::Checkpoint)?;
    let report = validate_snapshot(&snap, expected_plan_hash, max_iters, nrows, ncols);
    if !report.is_ok() {
        return Err(BuildError::PlanCheck(report));
    }
    let state = decode_state(&snap).map_err(BuildError::Checkpoint)?;
    Ok(Some(state))
}

#[cfg(test)]
mod tests {
    use super::*;
    use xct_check::Invariant;
    use xct_runtime::MemoryCheckpointSink;

    fn records(n: usize) -> Vec<IterationRecord> {
        (0..n)
            .map(|iter| IterationRecord {
                iter,
                residual_norm: 10.0 / (iter + 1) as f64,
                solution_norm: iter as f64,
                seconds: 0.25,
            })
            .collect()
    }

    #[test]
    fn encode_decode_round_trips_the_state() {
        let recs = records(3);
        let snap = encode_state(
            0xFEED,
            3,
            10.0 / 3.0,
            &[1.0, 2.0],
            &[3.0, 4.0, 5.0],
            &[6.0, 7.0],
            &recs,
            &[0.125],
        );
        assert!(validate_snapshot(&snap, 0xFEED, 10, 3, 2).is_ok());
        let st = decode_state(&snap).unwrap();
        assert_eq!(st.iteration, 3);
        assert_eq!(st.prev_res, 10.0 / 3.0);
        assert_eq!(st.x, vec![1.0, 2.0]);
        assert_eq!(st.resid, vec![3.0, 4.0, 5.0]);
        assert_eq!(st.dir, vec![6.0, 7.0]);
        assert_eq!(st.scalars, vec![0.125]);
        assert_eq!(st.records, recs);
    }

    #[test]
    fn validation_pinpoints_each_mismatch() {
        let snap = encode_state(
            0xFEED,
            3,
            1.0,
            &[0.0; 2],
            &[0.0; 3],
            &[0.0; 2],
            &records(3),
            &[],
        );
        // Wrong plan hash.
        let r = validate_snapshot(&snap, 0xBEEF, 10, 3, 2);
        assert!(r.has(Invariant::CheckpointHash), "{r}");
        // Wrong vector lengths (snapshot from a different geometry).
        let r = validate_snapshot(&snap, 0xFEED, 10, 4, 5);
        assert!(r.has(Invariant::CheckpointShape), "{r}");
        // Iteration past the run's cap.
        let r = validate_snapshot(&snap, 0xFEED, 2, 3, 2);
        assert!(r.has(Invariant::CheckpointMonotone), "{r}");
    }

    #[test]
    fn records_disagreeing_with_iteration_are_rejected() {
        let snap = encode_state(1, 5, 1.0, &[0.0; 2], &[0.0; 3], &[0.0; 2], &records(3), &[]);
        let r = validate_snapshot(&snap, 1, 10, 3, 2);
        assert!(r.has(Invariant::CheckpointMonotone), "{r}");
    }

    #[test]
    fn load_state_surfaces_typed_errors() {
        let sink = MemoryCheckpointSink::new();
        // Empty slot: clean None.
        assert!(load_state(&sink, 0, 1, 10, 3, 2).unwrap().is_none());
        // Garbage bytes: container-level checkpoint error.
        sink.save(0, b"not a snapshot").unwrap();
        assert!(matches!(
            load_state(&sink, 0, 1, 10, 3, 2),
            Err(BuildError::Checkpoint(_))
        ));
        // Intact container, mismatched plan: invariant report.
        let snap = encode_state(2, 1, 1.0, &[0.0; 2], &[0.0; 3], &[0.0; 2], &records(1), &[]);
        sink.save(0, &snap.encode()).unwrap();
        match load_state(&sink, 0, 1, 10, 3, 2) {
            Err(BuildError::PlanCheck(r)) => assert!(r.has(Invariant::CheckpointHash)),
            other => panic!("expected PlanCheck, got {:?}", other.map(|_| ())),
        }
        // Matching plan loads.
        let st = load_state(&sink, 0, 2, 10, 3, 2).unwrap().unwrap();
        assert_eq!(st.iteration, 1);
    }

    #[test]
    fn fingerprint_tracks_plan_shape() {
        use crate::preprocess::{preprocess, Config};
        use xct_geometry::{Grid, ScanGeometry};
        let a = preprocess(Grid::new(16), ScanGeometry::new(12, 16), &Config::default());
        let b = preprocess(Grid::new(16), ScanGeometry::new(12, 16), &Config::default());
        assert_eq!(plan_fingerprint(&a), plan_fingerprint(&b), "deterministic");
        let c = preprocess(Grid::new(24), ScanGeometry::new(12, 24), &Config::default());
        assert_ne!(plan_fingerprint(&a), plan_fingerprint(&c));
    }
}

//! The MemXCT preprocessing pipeline (§3.5): ordering, ray tracing into
//! CSR, scan transposition, and kernel-layout construction.
//!
//! Preprocessing runs once; its cost is amortized over all iterations and
//! all slices (Table 4/5). All matrix manipulations preserve data
//! locality (§3.5.1).

use rayon::prelude::*;
use std::time::Instant;
use xct_geometry::{trace_ray, trace_ray_joseph, Grid, ScanGeometry, Sinogram};
use xct_hilbert::{Ordering2D, TwoLevelOrdering};
use xct_obs::Metrics;
use xct_sparse::{spmv, spmv_parallel, BufferIndex, BufferedCsr, CsrMatrix, EllMatrix};

use crate::errors::BuildError;

/// Which ordering to apply to the 2D domains.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DomainOrdering {
    /// Naive row-major layout (the "baseline" of Fig 9).
    RowMajor,
    /// Column-major layout.
    ColumnMajor,
    /// Single-level Hilbert curve over the padded power-of-two square.
    HilbertSquare,
    /// Generalized Hilbert curve directly on the rectangle (continuous,
    /// but no tile structure for process decomposition).
    Gilbert,
    /// MemXCT's two-level pseudo-Hilbert ordering; `None` tile size uses
    /// the built-in heuristic.
    TwoLevelHilbert(Option<u32>),
    /// Morton order (for the partition-connectivity comparisons).
    Morton,
}

/// Which ray-discretization model builds the projection matrix.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Projector {
    /// Siddon's exact intersection lengths (the paper's model, §2.3).
    Siddon,
    /// Joseph's linear interpolation (TomoPy's default projector).
    Joseph,
}

/// Preprocessing configuration.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Config {
    /// Ordering applied to both domains.
    pub ordering: DomainOrdering,
    /// Ray-discretization model.
    pub projector: Projector,
    /// Row-partition size (the paper tunes 128 on KNL, 512–1024 on GPU).
    pub partsize: usize,
    /// Input-buffer capacity in f32 elements (the paper tunes 2K f32 =
    /// 8 KB on KNL, 12K–24K f32 = 48–96 KB on GPU).
    pub buffsize: usize,
    /// Also build the buffered kernel layouts.
    pub build_buffered: bool,
    /// Also build the ELL (GPU-style) layouts.
    pub build_ell: bool,
}

impl Default for Config {
    fn default() -> Self {
        Config {
            ordering: DomainOrdering::TwoLevelHilbert(None),
            projector: Projector::Siddon,
            partsize: 128,
            buffsize: 2048,
            build_buffered: true,
            build_ell: false,
        }
    }
}

/// Which SpMV kernel executes the projections.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Kernel {
    /// Sequential CSR (reference).
    Serial,
    /// Parallel CSR with dynamically-scheduled row partitions (Listing 2).
    Parallel,
    /// Column-major ELL with partition-level padding (GPU analog).
    Ell,
    /// Multi-stage input-buffered kernel (Listing 3).
    Buffered,
}

/// Wall-clock cost of each preprocessing step (§3.5's four steps).
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct PreprocessTimings {
    /// (1) Hilbert ordering and domain decomposition.
    pub ordering_s: f64,
    /// (2) Ray tracing, building the forward matrix.
    pub tracing_s: f64,
    /// (3) Scan-based sparse transposition.
    pub transpose_s: f64,
    /// (4) Row partitioning and buffer construction.
    pub buffers_s: f64,
}

impl PreprocessTimings {
    /// Total preprocessing time.
    pub fn total(&self) -> f64 {
        self.ordering_s + self.tracing_s + self.transpose_s + self.buffers_s
    }
}

/// The memoized operators produced by preprocessing.
pub struct Operators {
    /// Tomogram grid.
    pub grid: Grid,
    /// Scan geometry.
    pub scan: ScanGeometry,
    /// Forward-projection matrix: sinogram-ordered rows × tomogram-ordered
    /// columns.
    pub a: CsrMatrix,
    /// Backprojection matrix (scan transpose of `a`).
    pub at: CsrMatrix,
    /// Buffered layout of `a` (if configured).
    pub a_buf: Option<BufferedCsr>,
    /// Buffered layout of `at` (if configured).
    pub at_buf: Option<BufferedCsr>,
    /// ELL layout of `a` (if configured).
    pub a_ell: Option<EllMatrix>,
    /// ELL layout of `at` (if configured).
    pub at_ell: Option<EllMatrix>,
    /// Tomogram-domain ordering (N × N).
    pub tomo_ord: Ordering2D,
    /// Sinogram-domain ordering (channels × projections).
    pub sino_ord: Ordering2D,
    /// Tomogram tile layout (two-level orderings only) for process-level
    /// decomposition.
    pub tomo_tiles: Option<xct_hilbert::TileLayout>,
    /// Sinogram tile layout.
    pub sino_tiles: Option<xct_hilbert::TileLayout>,
    /// Partition size used for parallel kernels.
    pub partsize: usize,
    /// Step timings.
    pub timings: PreprocessTimings,
}

impl Operators {
    /// Forward projection `y = A·x` (ordered coordinates) with the chosen
    /// kernel.
    pub fn forward(&self, kernel: Kernel, x: &[f32]) -> Vec<f32> {
        self.apply(kernel, &self.a, self.a_buf.as_ref(), self.a_ell.as_ref(), x)
    }

    /// Backprojection `x = Aᵀ·y` (ordered coordinates).
    pub fn back(&self, kernel: Kernel, y: &[f32]) -> Vec<f32> {
        self.apply(
            kernel,
            &self.at,
            self.at_buf.as_ref(),
            self.at_ell.as_ref(),
            y,
        )
    }

    fn apply(
        &self,
        kernel: Kernel,
        csr: &CsrMatrix,
        buf: Option<&BufferedCsr>,
        ell: Option<&EllMatrix>,
        x: &[f32],
    ) -> Vec<f32> {
        match kernel {
            Kernel::Serial => spmv(csr, x),
            Kernel::Parallel => spmv_parallel(csr, x, self.partsize),
            Kernel::Ell => ell
                // lint: allow(no-panic) documented panic; the try_ path returns LayoutNotBuilt
                .expect("ELL layout not built; set Config::build_ell")
                .spmv(x),
            Kernel::Buffered => buf
                // lint: allow(no-panic) documented panic; the try_ path returns LayoutNotBuilt
                .expect("buffered layout not built; set Config::build_buffered")
                .spmv_parallel(x),
        }
    }

    /// Permute a row-major sinogram into ordered coordinates.
    pub fn order_sinogram(&self, sino: &Sinogram) -> Vec<f32> {
        // The sinogram domain is channels (x) × projections (y); flat
        // row-major sinogram data is projection-major, matching
        // `y * width + x` with width = channels.
        self.sino_ord.gather(sino.data())
    }

    /// Permute an ordered tomogram back to a row-major image.
    pub fn unorder_tomogram(&self, ordered: &[f32]) -> Vec<f32> {
        self.tomo_ord.scatter(ordered)
    }

    /// Permute a row-major image into ordered tomogram coordinates.
    pub fn order_tomogram(&self, row_major: &[f32]) -> Vec<f32> {
        self.tomo_ord.gather(row_major)
    }

    /// Permute an ordered sinogram vector back to row-major layout.
    pub fn unorder_sinogram(&self, ordered: &[f32]) -> Vec<f32> {
        self.sino_ord.scatter(ordered)
    }
}

fn build_ordering(
    ordering: DomainOrdering,
    width: u32,
    height: u32,
) -> (Ordering2D, Option<xct_hilbert::TileLayout>) {
    match ordering {
        DomainOrdering::RowMajor => (Ordering2D::row_major(width, height), None),
        DomainOrdering::ColumnMajor => (Ordering2D::column_major(width, height), None),
        DomainOrdering::HilbertSquare => (Ordering2D::hilbert_square(width, height), None),
        DomainOrdering::Gilbert => (Ordering2D::gilbert(width, height), None),
        DomainOrdering::Morton => (Ordering2D::morton(width, height), None),
        DomainOrdering::TwoLevelHilbert(tile) => {
            let tile = tile.unwrap_or_else(|| xct_hilbert::default_tile_size(width, height));
            let two = TwoLevelOrdering::new(width, height, tile);
            let layout = two.layout().clone();
            (two.into_ordering(), Some(layout))
        }
    }
}

impl Config {
    /// Check the sizes this configuration would feed into the kernel
    /// builders, returning the first violation instead of panicking
    /// downstream.
    pub fn validate(&self) -> Result<(), BuildError> {
        if self.partsize == 0 {
            return Err(BuildError::ZeroPartitionSize);
        }
        let max = <u16 as BufferIndex>::MAX_BUFFER;
        if self.buffsize == 0 || (self.build_buffered && self.buffsize > max) {
            return Err(BuildError::InvalidBufferSize {
                buffsize: self.buffsize,
                max,
            });
        }
        Ok(())
    }
}

/// Run the full preprocessing pipeline.
///
/// # Panics
/// Panics on an invalid [`Config`] (zero partition size, out-of-range
/// buffer size); use [`try_preprocess`] to get a [`BuildError`] instead.
pub fn preprocess(grid: Grid, scan: ScanGeometry, config: &Config) -> Operators {
    match try_preprocess(grid, scan, config) {
        Ok(ops) => ops,
        // lint: allow(no-panic) documented panicking shim over try_preprocess
        Err(e) => panic!("invalid preprocessing config: {e}"),
    }
}

/// Fallible [`preprocess`]: validates the configuration up front and
/// returns a [`BuildError`] instead of panicking.
pub fn try_preprocess(
    grid: Grid,
    scan: ScanGeometry,
    config: &Config,
) -> Result<Operators, BuildError> {
    try_preprocess_with_metrics(grid, scan, config, &Metrics::noop())
}

/// [`try_preprocess`] with observability: each pipeline phase records its
/// wall-clock into the timers `preprocess/ordering`, `preprocess/tracing`,
/// `preprocess/transpose`, and `preprocess/buffers` (plus a `preprocess`
/// total), and the memoized matrix shape lands in the counters
/// `preprocess/rows`, `preprocess/cols`, and `preprocess/nnz`.
pub fn try_preprocess_with_metrics(
    grid: Grid,
    scan: ScanGeometry,
    config: &Config,
    metrics: &Metrics,
) -> Result<Operators, BuildError> {
    config.validate()?;
    let _total = metrics.span("preprocess");
    let mut timings = PreprocessTimings::default();

    // (1) Orderings for both domains.
    let t = Instant::now();
    let (tomo_ord, tomo_tiles) = build_ordering(config.ordering, grid.n(), grid.n());
    let (sino_ord, sino_tiles) =
        build_ordering(config.ordering, scan.num_channels(), scan.num_projections());
    timings.ordering_s = t.elapsed().as_secs_f64();
    metrics.timer_observe("preprocess/ordering", timings.ordering_s);

    // (2) Ray tracing into CSR, directly in ordered coordinates: row r of
    // A is the sinogram entry stored at rank r; its columns are tomogram
    // ranks. Parallel over sinogram ranks (each row independent).
    let t = Instant::now();
    let num_rays = scan.num_rays();
    // in-range: ray count is bounded by the u32 scan geometry
    let rows: Vec<Vec<(u32, f32)>> = (0..num_rays as u32)
        .into_par_iter()
        .map(|rank| {
            let (chan, proj) = sino_ord.cell(rank);
            let ray = scan.ray(proj, chan);
            let mut row = Vec::new();
            let mut emit = |pixel: u32, len: f32| {
                let (i, j) = grid.pixel_coords(pixel);
                row.push((tomo_ord.rank(i, j), len));
            };
            match config.projector {
                Projector::Siddon => trace_ray(&grid, &ray, &mut emit),
                Projector::Joseph => trace_ray_joseph(&grid, &ray, &mut emit),
            }
            row
        })
        .collect();
    let a = CsrMatrix::from_rows(grid.num_pixels(), &rows);
    drop(rows);
    timings.tracing_s = t.elapsed().as_secs_f64();
    metrics.timer_observe("preprocess/tracing", timings.tracing_s);
    metrics.counter_add("preprocess/rows", a.nrows() as u64);
    metrics.counter_add("preprocess/cols", a.ncols() as u64);
    metrics.counter_add("preprocess/nnz", a.nnz() as u64);

    // (3) Locality-preserving transpose for backprojection.
    let t = Instant::now();
    let at = a.transpose_scan();
    timings.transpose_s = t.elapsed().as_secs_f64();
    metrics.timer_observe("preprocess/transpose", timings.transpose_s);

    // (4) Partitioning and buffer construction.
    let t = Instant::now();
    let (a_buf, at_buf) = if config.build_buffered {
        (
            Some(BufferedCsr::from_csr(&a, config.partsize, config.buffsize)),
            Some(BufferedCsr::from_csr(&at, config.partsize, config.buffsize)),
        )
    } else {
        (None, None)
    };
    let (a_ell, at_ell) = if config.build_ell {
        (
            Some(EllMatrix::from_csr(&a, config.partsize)),
            Some(EllMatrix::from_csr(&at, config.partsize)),
        )
    } else {
        (None, None)
    };
    timings.buffers_s = t.elapsed().as_secs_f64();
    metrics.timer_observe("preprocess/buffers", timings.buffers_s);

    Ok(Operators {
        grid,
        scan,
        a,
        at,
        a_buf,
        at_buf,
        a_ell,
        at_ell,
        tomo_ord,
        sino_ord,
        tomo_tiles,
        sino_tiles,
        partsize: config.partsize,
        timings,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use xct_geometry::{disk, simulate_sinogram, NoiseModel};

    fn ops(n: u32, m: u32, config: &Config) -> Operators {
        preprocess(Grid::new(n), ScanGeometry::new(m, n), config)
    }

    #[test]
    fn matrix_shapes() {
        let o = ops(16, 12, &Config::default());
        assert_eq!(o.a.nrows(), 12 * 16);
        assert_eq!(o.a.ncols(), 16 * 16);
        assert_eq!(o.at.nrows(), 16 * 16);
        assert_eq!(o.at.ncols(), 12 * 16);
        assert_eq!(o.a.nnz(), o.at.nnz());
        assert!(o.a.nnz() > 0);
    }

    #[test]
    fn forward_matches_direct_simulation() {
        // A·x in ordered coordinates must equal the on-the-fly simulated
        // sinogram after permutation, for every ordering choice.
        let n = 24u32;
        let m = 18u32;
        let grid = Grid::new(n);
        let scan = ScanGeometry::new(m, n);
        let img = disk(0.7, 1.0).rasterize(n);
        let direct = simulate_sinogram(&img, &grid, &scan, NoiseModel::None, 0);
        for ordering in [
            DomainOrdering::RowMajor,
            DomainOrdering::Morton,
            DomainOrdering::TwoLevelHilbert(Some(4)),
        ] {
            let config = Config {
                ordering,
                build_ell: true,
                ..Config::default()
            };
            let o = preprocess(grid, scan, &config);
            let x = o.order_tomogram(&img);
            for kernel in [
                Kernel::Serial,
                Kernel::Parallel,
                Kernel::Ell,
                Kernel::Buffered,
            ] {
                let y = o.forward(kernel, &x);
                let y_rm = o.unorder_sinogram(&y);
                for (got, want) in y_rm.iter().zip(direct.data()) {
                    assert!(
                        (got - want).abs() < 1e-3,
                        "{ordering:?} {kernel:?}: {got} vs {want}"
                    );
                }
            }
        }
    }

    #[test]
    fn back_is_adjoint_of_forward() {
        let o = ops(16, 12, &Config::default());
        let x: Vec<f32> = (0..o.a.ncols())
            .map(|i| ((i * 7) % 5) as f32 - 2.0)
            .collect();
        let y: Vec<f32> = (0..o.a.nrows())
            .map(|i| ((i * 3) % 7) as f32 - 3.0)
            .collect();
        let ax = o.forward(Kernel::Serial, &x);
        let aty = o.back(Kernel::Serial, &y);
        let lhs: f64 = ax.iter().zip(&y).map(|(&a, &b)| a as f64 * b as f64).sum();
        let rhs: f64 = x.iter().zip(&aty).map(|(&a, &b)| a as f64 * b as f64).sum();
        assert!((lhs - rhs).abs() / lhs.abs().max(1.0) < 1e-4);
    }

    #[test]
    fn order_unorder_roundtrip() {
        let o = ops(13, 9, &Config::default());
        let img: Vec<f32> = (0..13 * 13).map(|i| i as f32).collect();
        assert_eq!(o.unorder_tomogram(&o.order_tomogram(&img)), img);
        let sino: Vec<f32> = (0..9 * 13).map(|i| i as f32 * 0.5).collect();
        let s = Sinogram::new(ScanGeometry::new(9, 13), sino.clone());
        assert_eq!(o.unorder_sinogram(&o.order_sinogram(&s)), sino);
    }

    #[test]
    fn tile_layouts_present_only_for_two_level() {
        let two = ops(16, 8, &Config::default());
        assert!(two.tomo_tiles.is_some());
        assert!(two.sino_tiles.is_some());
        let rm = ops(
            16,
            8,
            &Config {
                ordering: DomainOrdering::RowMajor,
                ..Config::default()
            },
        );
        assert!(rm.tomo_tiles.is_none());
    }

    #[test]
    fn joseph_projector_reconstructs_comparably() {
        use crate::solvers::{cgls, StopRule};
        use xct_geometry::{disk, simulate_sinogram, NoiseModel};
        let n = 32u32;
        let grid = Grid::new(n);
        let scan = ScanGeometry::new(48, n);
        let img = disk(0.6, 1.0).rasterize(n);
        let sino = simulate_sinogram(&img, &grid, &scan, NoiseModel::None, 0);
        let ops = preprocess(
            grid,
            scan,
            &Config {
                projector: crate::preprocess::Projector::Joseph,
                ..Config::default()
            },
        );
        let y = ops.order_sinogram(&sino);
        let (x, _) = cgls(
            &y,
            ops.a.ncols(),
            |p| ops.forward(Kernel::Buffered, p),
            |r| ops.back(Kernel::Buffered, r),
            StopRule::Fixed(25),
        );
        let rec = ops.unorder_tomogram(&x);
        let num: f64 = rec
            .iter()
            .zip(&img)
            .map(|(&a, &b)| ((a - b) as f64).powi(2))
            .sum::<f64>()
            .sqrt();
        let den: f64 = img.iter().map(|&b| (b as f64).powi(2)).sum::<f64>().sqrt();
        // Joseph reconstructs against Siddon-simulated data: model
        // mismatch keeps this above the matched case but still solid.
        assert!(num / den < 0.2, "joseph error {}", num / den);
    }

    #[test]
    fn timings_are_recorded() {
        let o = ops(32, 24, &Config::default());
        assert!(o.timings.tracing_s > 0.0);
        assert!(o.timings.total() >= o.timings.tracing_s);
    }

    #[test]
    fn try_preprocess_rejects_bad_configs() {
        let grid = Grid::new(8);
        let scan = ScanGeometry::new(6, 8);
        let bad_part = Config {
            partsize: 0,
            ..Config::default()
        };
        assert_eq!(
            try_preprocess(grid, scan, &bad_part).err(),
            Some(BuildError::ZeroPartitionSize)
        );
        let bad_buf = Config {
            buffsize: 0,
            ..Config::default()
        };
        assert!(matches!(
            try_preprocess(grid, scan, &bad_buf).err(),
            Some(BuildError::InvalidBufferSize { buffsize: 0, .. })
        ));
        let too_big = Config {
            buffsize: 70_000,
            ..Config::default()
        };
        assert!(matches!(
            try_preprocess(grid, scan, &too_big).err(),
            Some(BuildError::InvalidBufferSize {
                buffsize: 70_000,
                max: 65536,
            })
        ));
        // Oversized buffers are fine when the buffered layout is skipped
        // (nothing u16-addressed gets built).
        let skipped = Config {
            buffsize: 70_000,
            build_buffered: false,
            ..Config::default()
        };
        assert!(try_preprocess(grid, scan, &skipped).is_ok());
    }

    #[test]
    #[should_panic(expected = "partition size")]
    fn panicking_shim_reports_the_build_error() {
        preprocess(
            Grid::new(8),
            ScanGeometry::new(6, 8),
            &Config {
                partsize: 0,
                ..Config::default()
            },
        );
    }

    #[test]
    fn instrumented_preprocess_records_phases() {
        let m = Metrics::collecting();
        let o = try_preprocess_with_metrics(
            Grid::new(16),
            ScanGeometry::new(12, 16),
            &Config::default(),
            &m,
        )
        .unwrap();
        let snap = m.snapshot();
        for phase in [
            "preprocess",
            "preprocess/ordering",
            "preprocess/tracing",
            "preprocess/transpose",
            "preprocess/buffers",
        ] {
            assert!(snap.timers.contains_key(phase), "missing {phase}");
        }
        assert_eq!(snap.counters["preprocess/nnz"], o.a.nnz() as u64);
        assert_eq!(snap.counters["preprocess/rows"], o.a.nrows() as u64);
        assert_eq!(snap.counters["preprocess/cols"], o.a.ncols() as u64);
        // The phase timers match the timings struct (same measurements).
        assert_eq!(
            snap.timers["preprocess/tracing"].total_s,
            o.timings.tracing_s
        );
    }

    #[test]
    fn hilbert_ordering_reduces_column_span() {
        // The mean per-row column span (a locality proxy) must shrink
        // with Hilbert ordering compared to row-major.
        fn mean_span(o: &Operators) -> f64 {
            let mut total = 0f64;
            let mut rows = 0usize;
            for i in 0..o.a.nrows() {
                let cols: Vec<u32> = o.a.row(i).map(|(c, _)| c).collect();
                if cols.len() > 1 {
                    let min = *cols.iter().min().unwrap() as f64;
                    let max = *cols.iter().max().unwrap() as f64;
                    total += max - min;
                    rows += 1;
                }
            }
            total / rows as f64
        }
        let rm = ops(
            32,
            24,
            &Config {
                ordering: DomainOrdering::RowMajor,
                build_buffered: false,
                ..Config::default()
            },
        );
        let hil = ops(
            32,
            24,
            &Config {
                build_buffered: false,
                ..Config::default()
            },
        );
        // Row-major: a diagonal ray spans nearly the whole domain.
        // Hilbert: rays cross tiles, span shrinks substantially on average.
        assert!(
            mean_span(&hil) < mean_span(&rm),
            "hilbert {} vs row-major {}",
            mean_span(&hil),
            mean_span(&rm)
        );
    }
}

//! MemXCT: memory-centric X-ray CT reconstruction (SC '19).
//!
//! The memory-centric approach memoizes ray tracing into explicit sparse
//! matrices once, then runs every solver iteration as optimized SpMV:
//!
//! 1. **Preprocessing** ([`preprocess()`], §3.5): order both the tomogram
//!    and the sinogram domain with the two-level pseudo-Hilbert ordering,
//!    trace every ray to build the forward-projection CSR matrix directly
//!    in ordered coordinates, scan-transpose it for backprojection, and
//!    build the partitioned/buffered kernel layouts.
//! 2. **Solvers** ([`solvers`], §3.5.2): conjugate gradient (CGLS) with
//!    early termination, and SIRT for baseline comparisons, both recording
//!    the per-iteration residual/solution norms of the L-curve (Fig 8).
//! 3. **Distributed execution** ([`dist`], §3.4): both domains are
//!    partitioned across ranks by contiguous tile runs; forward projection
//!    is factored `A = R·C·A_p` (partial projection, sparse all-to-all,
//!    overlap reduction) and backprojection is its transpose — no domain
//!    duplication, no atomics.
//!
//! Use [`Reconstructor`] for the high-level single-call API.

#![warn(missing_docs)]

pub mod dist;
pub mod fbp;
pub mod preprocess;
pub mod reconstructor;
pub mod regularize;
pub mod solvers;
pub mod subsets;

pub use fbp::{fbp, FbpConfig};
pub use dist::{reconstruct_distributed, DistConfig, DistOutput, DistSolver, KernelBreakdown, RankPlan};
pub use preprocess::{preprocess, Config, DomainOrdering, Kernel, Operators, PreprocessTimings, Projector};
pub use reconstructor::{ReconOutput, Reconstructor, VolumeOutput};
pub use regularize::{cgls_smooth, gradient_operator};
pub use solvers::{cgls, cgls_regularized, sirt, sirt_nonneg, IterationRecord, StopRule};
pub use subsets::OrderedSubsets;

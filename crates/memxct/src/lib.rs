//! MemXCT: memory-centric X-ray CT reconstruction (SC '19).
//!
//! The memory-centric approach memoizes ray tracing into explicit sparse
//! matrices once, then runs every solver iteration as optimized SpMV:
//!
//! 1. **Preprocessing** ([`preprocess()`], §3.5): order both the tomogram
//!    and the sinogram domain with the two-level pseudo-Hilbert ordering,
//!    trace every ray to build the forward-projection CSR matrix directly
//!    in ordered coordinates, scan-transpose it for backprojection, and
//!    build the partitioned/buffered kernel layouts.
//! 2. **Solvers** ([`solvers`], §3.5.2): conjugate gradient (CGLS) with
//!    early termination, and SIRT for baseline comparisons, both recording
//!    the per-iteration residual/solution norms of the L-curve (Fig 8).
//! 3. **Distributed execution** ([`dist`], §3.4): both domains are
//!    partitioned across ranks by contiguous tile runs; forward projection
//!    is factored `A = R·C·A_p` (partial projection, sparse all-to-all,
//!    overlap reduction) and backprojection is its transpose — no domain
//!    duplication, no atomics.
//!
//! Every projection path — serial/parallel/buffered/ELL CSR, the
//! distributed `R·C·A_p` factorization, and the CompXCT baseline —
//! implements the [`ProjectionOperator`] trait ([`operator`]), and every
//! solver is the single generic engine [`run_engine`] parameterized by an
//! [`UpdateRule`] (CG, SIRT, OS-SIRT) plus optional constraints.
//!
//! Use [`Reconstructor`] for the high-level single-call API.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod checkpoint;
pub mod dist;
pub mod errors;
pub mod fbp;
pub mod operator;
pub mod plan_check;
pub mod prelude;
pub mod preprocess;
pub mod reconstructor;
pub mod regularize;
pub mod request;
pub mod solvers;
pub mod subsets;

pub use checkpoint::{plan_fingerprint, validate_snapshot};
pub use dist::{
    allreduce_f64, reconstruct_distributed, reconstruct_distributed_with_metrics,
    try_allreduce_f64, try_reconstruct_distributed, try_reconstruct_distributed_ft, DistConfig,
    DistOperator, DistOutput, DistSolver, FaultTolerance, RankPlan,
};
pub use errors::BuildError;
pub use fbp::{fbp, FbpConfig};
pub use operator::{
    BufferedOperator, ClosureOperator, CompOperator, EllOperator, KernelBreakdown,
    ParallelOperator, PooledOperator, PooledPlans, ProjectionOperator, RowSubsetOperator,
    SerialOperator, StackedOperator, POOL_IMBALANCE_BACK, POOL_IMBALANCE_FORWARD,
};
pub use plan_check::{dist_checker, exec_checker, ledger_check, plan_checker, validate_plan};
pub use preprocess::{
    preprocess, try_preprocess, try_preprocess_with_metrics, Config, DomainOrdering, Kernel,
    Operators, PreprocessTimings, Projector,
};
pub use reconstructor::{
    BatchOutput, ReconOutput, Reconstructor, ReconstructorBuilder, VolumeOutput,
};
pub use regularize::{cgls_smooth, gradient_operator};
pub use request::{
    CheckpointPolicy, DistDetail, ExecMode, ReconError, ReconInput, ReconRequest, ReconResponse,
    RunControl, RunOutcome, Solver,
};
pub use solvers::{
    cgls, cgls_regularized, run_engine, run_engine_batched, run_engine_batched_in, run_engine_in,
    run_engine_with_metrics, sirt, sirt_nonneg, CgRule, Constraint, IterationRecord, SirtRule,
    SolverWorkspace, StopRule, UpdateRule,
};
pub use subsets::{OrderedSubsets, OsRule};
pub use xct_check::{CheckViolation, Invariant, Report as CheckReport};

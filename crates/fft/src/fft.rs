//! Iterative radix-2 Cooley–Tukey FFT.

/// A complex number in rectangular form (f32, matching the pipeline's
/// data type).
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct Complex {
    /// Real part.
    pub re: f32,
    /// Imaginary part.
    pub im: f32,
}

impl Complex {
    /// Construct from parts.
    #[inline]
    pub fn new(re: f32, im: f32) -> Self {
        Complex { re, im }
    }

    /// Squared magnitude.
    #[inline]
    pub fn norm_sqr(self) -> f32 {
        self.re * self.re + self.im * self.im
    }

    /// Scale by a real factor.
    #[inline]
    pub fn scale(self, s: f32) -> Complex {
        Complex {
            re: self.re * s,
            im: self.im * s,
        }
    }
}

impl std::ops::Add for Complex {
    type Output = Complex;
    #[inline]
    fn add(self, o: Complex) -> Complex {
        Complex::new(self.re + o.re, self.im + o.im)
    }
}

impl std::ops::Sub for Complex {
    type Output = Complex;
    #[inline]
    fn sub(self, o: Complex) -> Complex {
        Complex::new(self.re - o.re, self.im - o.im)
    }
}

impl std::ops::Mul for Complex {
    type Output = Complex;
    #[inline]
    fn mul(self, o: Complex) -> Complex {
        Complex {
            re: self.re * o.re - self.im * o.im,
            im: self.re * o.im + self.im * o.re,
        }
    }
}

/// In-place forward FFT.
///
/// # Panics
/// Panics if the length is not a power of two.
///
/// ```
/// use xct_fft::{fft_inplace, ifft_inplace, Complex};
/// let mut data: Vec<Complex> = (0..8).map(|i| Complex::new(i as f32, 0.0)).collect();
/// let original = data.clone();
/// fft_inplace(&mut data);
/// ifft_inplace(&mut data);
/// for (a, b) in data.iter().zip(&original) {
///     assert!((a.re - b.re).abs() < 1e-4);
/// }
/// ```
pub fn fft_inplace(data: &mut [Complex]) {
    transform(data, false);
}

/// In-place inverse FFT (includes the 1/N normalization).
///
/// # Panics
/// Panics if the length is not a power of two.
pub fn ifft_inplace(data: &mut [Complex]) {
    transform(data, true);
    let scale = 1.0 / data.len() as f32;
    for v in data.iter_mut() {
        *v = v.scale(scale);
    }
}

fn transform(data: &mut [Complex], inverse: bool) {
    let n = data.len();
    assert!(n.is_power_of_two(), "FFT length must be a power of two");
    if n <= 1 {
        return;
    }

    // Bit-reversal permutation.
    let bits = n.trailing_zeros();
    for i in 0..n {
        let j = (i.reverse_bits() >> (usize::BITS - bits)) & (n - 1);
        if j > i {
            data.swap(i, j);
        }
    }

    // Butterflies: stage sizes 2, 4, ..., n. Twiddles in f64 for accuracy.
    let sign = if inverse { 1.0f64 } else { -1.0f64 };
    let mut len = 2;
    while len <= n {
        let ang = sign * std::f64::consts::TAU / len as f64;
        let (w_im, w_re) = ang.sin_cos();
        let wlen = Complex::new(w_re as f32, w_im as f32);
        for start in (0..n).step_by(len) {
            let mut w = Complex::new(1.0, 0.0);
            for k in 0..len / 2 {
                let a = data[start + k];
                let b = data[start + k + len / 2] * w;
                data[start + k] = a + b;
                data[start + k + len / 2] = a - b;
                w = w * wlen;
            }
        }
        len <<= 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn dft_reference(x: &[Complex]) -> Vec<Complex> {
        let n = x.len();
        (0..n)
            .map(|k| {
                let mut acc = Complex::default();
                for (j, &v) in x.iter().enumerate() {
                    let ang = -std::f64::consts::TAU * (k * j) as f64 / n as f64;
                    let w = Complex::new(ang.cos() as f32, ang.sin() as f32);
                    acc = acc + v * w;
                }
                acc
            })
            .collect()
    }

    #[test]
    fn matches_naive_dft() {
        for k in 1..8u32 {
            let n = 1usize << k;
            let x: Vec<Complex> = (0..n)
                .map(|i| Complex::new((i as f32 * 0.7).sin(), (i as f32 * 0.3).cos()))
                .collect();
            let want = dft_reference(&x);
            let mut got = x.clone();
            fft_inplace(&mut got);
            for (g, w) in got.iter().zip(&want) {
                assert!((g.re - w.re).abs() < 1e-2, "{g:?} vs {w:?} at n={n}");
                assert!((g.im - w.im).abs() < 1e-2);
            }
        }
    }

    #[test]
    fn roundtrip_identity() {
        let n = 256;
        let x: Vec<Complex> = (0..n)
            .map(|i| Complex::new((i as f32).sqrt(), -(i as f32) * 0.1))
            .collect();
        let mut y = x.clone();
        fft_inplace(&mut y);
        ifft_inplace(&mut y);
        for (a, b) in y.iter().zip(&x) {
            assert!((a.re - b.re).abs() < 1e-3);
            assert!((a.im - b.im).abs() < 1e-3);
        }
    }

    #[test]
    fn impulse_has_flat_spectrum() {
        let mut x = vec![Complex::default(); 16];
        x[0] = Complex::new(1.0, 0.0);
        fft_inplace(&mut x);
        for v in &x {
            assert!((v.re - 1.0).abs() < 1e-5);
            assert!(v.im.abs() < 1e-5);
        }
    }

    #[test]
    fn parseval_holds() {
        let n = 128;
        let x: Vec<Complex> = (0..n)
            .map(|i| Complex::new((i as f32 * 1.3).sin(), 0.0))
            .collect();
        let time_energy: f64 = x.iter().map(|v| v.norm_sqr() as f64).sum();
        let mut y = x.clone();
        fft_inplace(&mut y);
        let freq_energy: f64 = y.iter().map(|v| v.norm_sqr() as f64).sum::<f64>() / n as f64;
        assert!((time_energy - freq_energy).abs() / time_energy < 1e-4);
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn non_pow2_rejected() {
        fft_inplace(&mut [Complex::default(); 3]);
    }
}

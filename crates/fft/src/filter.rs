//! Frequency-domain projection filters for filtered backprojection.

use crate::fft::{fft_inplace, ifft_inplace, Complex};

/// Apodization window applied on top of the ramp |ω|.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FilterKind {
    /// Pure ramp (Ram-Lak): sharpest, noisiest.
    RamLak,
    /// Ramp × sinc (Shepp–Logan): the classic compromise.
    SheppLogan,
    /// Ramp × cosine: stronger noise suppression.
    Cosine,
    /// Ramp × Hann window: strongest smoothing.
    Hann,
}

/// A precomputed projection filter for rows of a given length.
///
/// The row is zero-padded to at least 2× its length (next power of two) to
/// avoid interperiod artifacts, filtered in the frequency domain, and
/// cropped back.
#[derive(Debug, Clone)]
pub struct ProjectionFilter {
    row_len: usize,
    padded: usize,
    /// Real frequency response at each FFT bin.
    response: Vec<f32>,
}

impl ProjectionFilter {
    /// Build a filter for projection rows of `row_len` samples.
    pub fn new(row_len: usize, kind: FilterKind) -> Self {
        assert!(row_len > 0);
        let padded = (2 * row_len).next_power_of_two();
        let response = (0..padded)
            .map(|k| {
                // Signed frequency in cycles/sample, in [-0.5, 0.5).
                let f = if k <= padded / 2 {
                    k as f64 / padded as f64
                } else {
                    (k as f64 - padded as f64) / padded as f64
                };
                let a = f.abs();
                let ramp = 2.0 * a; // normalized |ω| ramp
                let window = match kind {
                    FilterKind::RamLak => 1.0,
                    FilterKind::SheppLogan => {
                        if a == 0.0 {
                            1.0
                        } else {
                            let x = std::f64::consts::PI * a;
                            x.sin() / x
                        }
                    }
                    FilterKind::Cosine => (std::f64::consts::PI * a).cos(),
                    FilterKind::Hann => 0.5 * (1.0 + (std::f64::consts::TAU * a).cos()),
                };
                (ramp * window) as f32
            })
            .collect();
        ProjectionFilter {
            row_len,
            padded,
            response,
        }
    }

    /// Row length this filter was built for.
    pub fn row_len(&self) -> usize {
        self.row_len
    }

    /// Padded FFT length.
    pub fn padded_len(&self) -> usize {
        self.padded
    }

    /// Filter one projection row in place.
    pub fn apply(&self, row: &mut [f32]) {
        assert_eq!(row.len(), self.row_len, "row length");
        let mut buf: Vec<Complex> = (0..self.padded)
            .map(|i| {
                if i < self.row_len {
                    Complex::new(row[i], 0.0)
                } else {
                    Complex::default()
                }
            })
            .collect();
        fft_inplace(&mut buf);
        for (v, &r) in buf.iter_mut().zip(&self.response) {
            *v = v.scale(r);
        }
        ifft_inplace(&mut buf);
        for (out, v) in row.iter_mut().zip(&buf) {
            *out = v.re;
        }
    }
}

/// Convenience: filter a row with a throwaway filter.
pub fn filter_projection(row: &mut [f32], kind: FilterKind) {
    ProjectionFilter::new(row.len(), kind).apply(row);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dc_component_is_removed() {
        // The ramp zeroes the DC bin. Zero-padding turns a constant row
        // into a rect pulse whose edges ring, but the interior — far from
        // the pad boundary — must be driven toward zero.
        let mut row = vec![3.0f32; 256];
        filter_projection(&mut row, FilterKind::RamLak);
        for (i, v) in row.iter().enumerate().take(192).skip(64) {
            assert!(
                v.abs() < 0.15,
                "interior sample {i} should be small, got {v}"
            );
        }
        // And the overall energy drops far below the input's.
        let energy: f64 = row.iter().map(|&v| (v * v) as f64).sum();
        assert!(energy < 0.05 * 256.0 * 9.0, "energy {energy}");
    }

    #[test]
    fn filters_preserve_length() {
        for kind in [
            FilterKind::RamLak,
            FilterKind::SheppLogan,
            FilterKind::Cosine,
            FilterKind::Hann,
        ] {
            let mut row: Vec<f32> = (0..50).map(|i| (i as f32 * 0.2).sin()).collect();
            filter_projection(&mut row, kind);
            assert_eq!(row.len(), 50);
            assert!(row.iter().all(|v| v.is_finite()));
        }
    }

    #[test]
    fn ramp_amplifies_high_frequencies() {
        // A high-frequency alternating row should come through stronger
        // than a low-frequency one of equal amplitude.
        let n = 128;
        let mut low: Vec<f32> = (0..n)
            .map(|i| (std::f32::consts::TAU * i as f32 / n as f32).sin())
            .collect();
        let mut high: Vec<f32> = (0..n)
            .map(|i| if i % 2 == 0 { 1.0 } else { -1.0 })
            .collect();
        filter_projection(&mut low, FilterKind::RamLak);
        filter_projection(&mut high, FilterKind::RamLak);
        let e = |v: &[f32]| v.iter().map(|x| (x * x) as f64).sum::<f64>();
        assert!(e(&high) > 10.0 * e(&low));
    }

    #[test]
    fn hann_suppresses_more_than_ramlak() {
        let n = 128;
        let mk = || -> Vec<f32> {
            (0..n)
                .map(|i| if i % 2 == 0 { 1.0 } else { -1.0 })
                .collect()
        };
        let mut a = mk();
        let mut b = mk();
        filter_projection(&mut a, FilterKind::RamLak);
        filter_projection(&mut b, FilterKind::Hann);
        let e = |v: &[f32]| v.iter().map(|x| (x * x) as f64).sum::<f64>();
        assert!(e(&b) < 0.5 * e(&a));
    }

    #[test]
    fn padding_is_at_least_double() {
        let f = ProjectionFilter::new(100, FilterKind::SheppLogan);
        assert!(f.padded_len() >= 200);
        assert!(f.padded_len().is_power_of_two());
    }
}

//! Minimal FFT substrate for filtered backprojection.
//!
//! The paper motivates MemXCT against *analytical* reconstruction:
//! "Analytical methods such as the filtered backprojection (FBP) algorithm
//! are computationally efficient, but reconstruction quality is often poor
//! when measurements are noisy or undersampled" (§1). To reproduce that
//! comparison we need FBP, and FBP needs frequency-domain ramp filtering —
//! this crate provides the radix-2 complex FFT and the standard projection
//! filters, built from scratch (no external FFT dependency).

#![warn(missing_docs)]
#![forbid(unsafe_code)]

mod fft;
mod filter;

pub use fft::{fft_inplace, ifft_inplace, Complex};
pub use filter::{filter_projection, FilterKind, ProjectionFilter};

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn crate_level_smoke() {
        let mut data: Vec<Complex> = (0..8).map(|i| Complex::new(i as f32, 0.0)).collect();
        let orig = data.clone();
        fft_inplace(&mut data);
        ifft_inplace(&mut data);
        for (a, b) in data.iter().zip(&orig) {
            assert!((a.re - b.re).abs() < 1e-4);
            assert!((a.im - b.im).abs() < 1e-4);
        }
    }
}

//! The cache model: set-associative, LRU replacement, byte-addressed.

/// Geometry of a simulated cache.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CacheConfig {
    /// Line size in bytes (power of two).
    pub line_size: usize,
    /// Total capacity in bytes.
    pub capacity: usize,
    /// Ways per set.
    pub associativity: usize,
}

impl CacheConfig {
    /// Create a config, checking consistency.
    ///
    /// # Panics
    /// Panics unless `line_size` is a power of two and the capacity is an
    /// exact multiple of `line_size × associativity`.
    pub fn new(line_size: usize, capacity: usize, associativity: usize) -> Self {
        assert!(
            line_size.is_power_of_two(),
            "line size must be a power of two"
        );
        assert!(associativity > 0);
        let set_bytes = line_size * associativity;
        assert!(
            capacity >= set_bytes && capacity.is_multiple_of(set_bytes),
            "capacity must be a multiple of line_size * associativity"
        );
        CacheConfig {
            line_size,
            capacity,
            associativity,
        }
    }

    /// Number of sets.
    pub fn num_sets(&self) -> usize {
        self.capacity / (self.line_size * self.associativity)
    }

    /// KNL L1 data cache: 32 KB, 64 B lines, 8-way.
    pub fn knl_l1() -> Self {
        Self::new(64, 32 * 1024, 8)
    }

    /// KNL L2 (per-tile share): 1 MB, 64 B lines, 16-way.
    pub fn knl_l2() -> Self {
        Self::new(64, 1024 * 1024, 16)
    }

    /// K80 L2: 1.5 MB, 128 B lines (32 B sectors modeled as 128 B lines),
    /// 16-way.
    pub fn k80_l2() -> Self {
        Self::new(128, 1536 * 1024, 16)
    }

    /// P100 L2: 4 MB, 128 B lines, 16-way.
    pub fn p100_l2() -> Self {
        Self::new(128, 4 * 1024 * 1024, 16)
    }

    /// V100 L2: 6 MB, 128 B lines, 16-way (6 MB = 768 sets × 16 × 128 B
    /// does not divide evenly into powers of two; 768 sets is fine).
    pub fn v100_l2() -> Self {
        Self::new(128, 6 * 1024 * 1024, 16)
    }
}

/// Hit/miss counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Total accesses.
    pub accesses: u64,
    /// Misses (compulsory + capacity + conflict).
    pub misses: u64,
}

impl CacheStats {
    /// Miss rate in `[0, 1]`; zero for an empty trace.
    pub fn miss_rate(&self) -> f64 {
        if self.accesses == 0 {
            0.0
        } else {
            self.misses as f64 / self.accesses as f64
        }
    }
}

/// A set-associative LRU cache simulator.
///
/// Each set keeps its resident line tags in recency order (most recent
/// last). Associativity is small (8–16), so linear scans beat fancier
/// structures.
#[derive(Debug, Clone)]
pub struct CacheSim {
    config: CacheConfig,
    /// `sets[s]` = tags resident in set `s`, LRU first.
    sets: Vec<Vec<u64>>,
    stats: CacheStats,
    line_shift: u32,
    set_mask: u64,
}

impl CacheSim {
    /// A cold cache with the given geometry.
    ///
    /// ```
    /// use xct_cachesim::{CacheConfig, CacheSim};
    /// let mut sim = CacheSim::new(CacheConfig::knl_l2());
    /// assert!(!sim.access(0));     // cold miss
    /// assert!(sim.access(4));      // same 64-byte line: hit
    /// assert_eq!(sim.stats().misses, 1);
    /// ```
    pub fn new(config: CacheConfig) -> Self {
        let num_sets = config.num_sets();
        CacheSim {
            config,
            sets: vec![Vec::with_capacity(config.associativity); num_sets],
            stats: CacheStats::default(),
            line_shift: config.line_size.trailing_zeros(),
            set_mask: (num_sets as u64) - 1,
        }
    }

    /// The configured geometry.
    pub fn config(&self) -> CacheConfig {
        self.config
    }

    /// Access one byte address; returns `true` on hit.
    pub fn access(&mut self, addr: u64) -> bool {
        self.stats.accesses += 1;
        let line = addr >> self.line_shift;
        let num_sets = self.sets.len() as u64;
        // Power-of-two set counts use the mask; odd counts (V100) use mod.
        let set = if num_sets.is_power_of_two() {
            (line & self.set_mask) as usize
        } else {
            (line % num_sets) as usize
        };
        let ways = &mut self.sets[set];
        if let Some(pos) = ways.iter().position(|&t| t == line) {
            // Hit: move to most-recently-used position.
            let tag = ways.remove(pos);
            ways.push(tag);
            true
        } else {
            self.stats.misses += 1;
            if ways.len() == self.config.associativity {
                ways.remove(0); // evict LRU
            }
            ways.push(line);
            false
        }
    }

    /// Access a run of `len` consecutive bytes starting at `addr`
    /// (counts one access per touched line).
    pub fn access_range(&mut self, addr: u64, len: u64) {
        let first = addr >> self.line_shift;
        let last = (addr + len.saturating_sub(1)) >> self.line_shift;
        for line in first..=last {
            self.access(line << self.line_shift);
        }
    }

    /// Counters so far.
    pub fn stats(&self) -> CacheStats {
        self.stats
    }

    /// Empty the cache and zero the counters.
    pub fn reset(&mut self) {
        for s in &mut self.sets {
            s.clear();
        }
        self.stats = CacheStats::default();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> CacheSim {
        // 2 sets × 2 ways × 16 B lines = 64 B.
        CacheSim::new(CacheConfig::new(16, 64, 2))
    }

    #[test]
    fn repeated_access_hits() {
        let mut c = tiny();
        assert!(!c.access(0)); // compulsory miss
        assert!(c.access(4)); // same line
        assert!(c.access(15));
        assert_eq!(c.stats().misses, 1);
        assert_eq!(c.stats().accesses, 3);
    }

    #[test]
    fn set_mapping_separates_lines() {
        let mut c = tiny();
        // Lines 0 and 1 map to sets 0 and 1.
        c.access(0);
        c.access(16);
        assert!(c.access(0));
        assert!(c.access(16));
        assert_eq!(c.stats().misses, 2);
    }

    #[test]
    fn lru_eviction_order() {
        let mut c = tiny();
        // Set 0 holds lines {0, 2} (addresses 0, 32); both even lines.
        c.access(0); // line 0 -> set 0
        c.access(32); // line 2 -> set 0
        c.access(0); // touch line 0: now line 2 is LRU
        c.access(64); // line 4 -> set 0, evicts line 2
        assert!(c.access(0), "line 0 should still be resident");
        assert!(!c.access(32), "line 2 should have been evicted");
    }

    #[test]
    fn capacity_misses_on_streaming() {
        // Stream 4 KB through a 64 B cache: all misses after warmup reuse.
        let mut c = tiny();
        for addr in (0..4096u64).step_by(16) {
            c.access(addr);
        }
        assert_eq!(c.stats().miss_rate(), 1.0);
    }

    #[test]
    fn full_reuse_when_working_set_fits() {
        let mut c = CacheSim::new(CacheConfig::new(64, 4096, 4));
        for _ in 0..4 {
            for addr in (0..2048u64).step_by(4) {
                c.access(addr);
            }
        }
        // 32 lines compulsory misses, everything else hits.
        assert_eq!(c.stats().misses, 32);
    }

    #[test]
    fn access_range_touches_every_line() {
        let mut c = CacheSim::new(CacheConfig::new(64, 4096, 4));
        c.access_range(0, 256);
        assert_eq!(c.stats().accesses, 4);
        c.access_range(60, 8); // straddles a line boundary
        assert_eq!(c.stats().accesses, 6);
    }

    #[test]
    fn reset_clears_everything() {
        let mut c = tiny();
        c.access(0);
        c.reset();
        assert_eq!(c.stats(), CacheStats::default());
        assert!(!c.access(0));
    }

    #[test]
    fn presets_have_sane_geometry() {
        assert_eq!(CacheConfig::knl_l1().num_sets(), 64);
        assert_eq!(CacheConfig::knl_l2().num_sets(), 1024);
        assert_eq!(CacheConfig::v100_l2().num_sets(), 3072);
    }

    #[test]
    fn non_pow2_set_count_works() {
        let mut c = CacheSim::new(CacheConfig::v100_l2());
        for addr in (0..(1u64 << 20)).step_by(128) {
            c.access(addr);
        }
        assert_eq!(c.stats().miss_rate(), 1.0); // cold streaming
        for addr in (0..(1u64 << 20)).step_by(128) {
            assert!(c.access(addr), "fits in 6 MB, must hit");
        }
    }
}

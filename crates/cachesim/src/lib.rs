//! Trace-driven set-associative LRU cache simulator.
//!
//! The paper measures L2 miss rates with Intel VTune (§4.2, Fig 9(b)) and
//! illustrates cache behaviour of the two orderings with a worked example
//! (Fig 5). We have no VTune, so we model the caches explicitly: the miss
//! rate of an access sequence against a set-associative LRU cache is a
//! well-defined quantity this simulator computes exactly.
//!
//! Presets match the machines of Table 2: KNL (32 KB L1, 1 MB L2 per
//! tile), K80 (1.5 MB L2), P100 (4 MB L2), V100 (6 MB L2).

#![warn(missing_docs)]
#![forbid(unsafe_code)]

mod cache;
mod trace;

pub use cache::{CacheConfig, CacheSim, CacheStats};
pub use trace::{
    spmv_irregular_miss_rate, spmv_irregular_trace, spmv_tiled_miss_rate, spmv_tiled_trace,
};

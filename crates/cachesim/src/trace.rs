//! SpMV access-trace generation.
//!
//! In the baseline kernel (paper Listing 2) the only irregular stream is
//! `x[ind[j]]`: 4-byte reads at `4 * column` for every nonzero, in row
//! order. The miss rate of that stream against an L2-sized cache is what
//! Fig 9(b) reports, and what distinguishes row-major from Hilbert-ordered
//! domains (Fig 5).

use crate::cache::{CacheConfig, CacheSim, CacheStats};

/// Byte addresses of the irregular (`x`) accesses of `y = A·x`, row by
/// row. The matrix is given as CSR arrays so the crate stays independent
/// of `xct-sparse` (callers pass `colind` grouped by row, which is exactly
/// the stored order).
pub fn spmv_irregular_trace<'a>(colind: &'a [u32]) -> impl Iterator<Item = u64> + 'a {
    colind.iter().map(|&c| c as u64 * 4)
}

/// Miss rate of the irregular stream of one SpMV pass over a cold cache.
pub fn spmv_irregular_miss_rate(colind: &[u32], config: CacheConfig) -> CacheStats {
    let mut sim = CacheSim::new(config);
    for addr in spmv_irregular_trace(colind) {
        sim.access(addr);
    }
    sim.stats()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn trace_addresses_are_scaled_indices() {
        let cols = [0u32, 3, 7];
        let addrs: Vec<u64> = spmv_irregular_trace(&cols).collect();
        assert_eq!(addrs, vec![0, 12, 28]);
    }

    #[test]
    fn sequential_columns_have_low_miss_rate() {
        // 16 f32 per 64 B line: sequential access misses 1/16 of the time.
        let cols: Vec<u32> = (0..4096).collect();
        let stats = spmv_irregular_miss_rate(&cols, CacheConfig::new(64, 32 * 1024, 8));
        assert!((stats.miss_rate() - 1.0 / 16.0).abs() < 1e-9);
    }

    #[test]
    fn strided_columns_have_full_miss_rate() {
        // Stride 16 = one access per line, no reuse, footprint >> cache.
        let cols: Vec<u32> = (0..65536u32).step_by(16).collect();
        let stats = spmv_irregular_miss_rate(&cols, CacheConfig::new(64, 4096, 4));
        assert_eq!(stats.miss_rate(), 1.0);
    }

    #[test]
    fn repeated_block_hits_after_warmup() {
        let block: Vec<u32> = (0..256).collect();
        let mut cols = block.clone();
        cols.extend(&block);
        let stats = spmv_irregular_miss_rate(&cols, CacheConfig::new(64, 32 * 1024, 8));
        // First pass: 16 compulsory misses; second pass: all hits.
        assert_eq!(stats.misses, 16);
        assert_eq!(stats.accesses, 512);
    }
}

//! SpMV access-trace generation.
//!
//! In the baseline kernel (paper Listing 2) the only irregular stream is
//! `x[ind[j]]`: 4-byte reads at `4 * column` for every nonzero, in row
//! order. The miss rate of that stream against an L2-sized cache is what
//! Fig 9(b) reports, and what distinguishes row-major from Hilbert-ordered
//! domains (Fig 5).

use crate::cache::{CacheConfig, CacheSim, CacheStats};

/// Byte addresses of the irregular (`x`) accesses of `y = A·x`, row by
/// row. The matrix is given as CSR arrays so the crate stays independent
/// of `xct-sparse` (callers pass `colind` grouped by row, which is exactly
/// the stored order).
pub fn spmv_irregular_trace<'a>(colind: &'a [u32]) -> impl Iterator<Item = u64> + 'a {
    colind.iter().map(|&c| c as u64 * 4)
}

/// Miss rate of the irregular stream of one SpMV pass over a cold cache.
pub fn spmv_irregular_miss_rate(colind: &[u32], config: CacheConfig) -> CacheStats {
    let mut sim = CacheSim::new(config);
    for addr in spmv_irregular_trace(colind) {
        sim.access(addr);
    }
    sim.stats()
}

/// Byte addresses of the irregular (`x`) accesses of the **tile-blocked**
/// SpMV: rows are processed in blocks of `row_block`, and within a block
/// the entries are regrouped by column tile (`col / col_tile`, ascending,
/// original order within a `(row, tile)` pair — exactly the execution
/// order of `xct-sparse`'s `TiledCsr`). Each tile's `x` range is at most
/// `col_tile * 4` bytes, so consecutive gathers stay inside one
/// cache-sized window instead of sweeping the whole domain per row.
pub fn spmv_tiled_trace(
    rowptr: &[usize],
    colind: &[u32],
    row_block: usize,
    col_tile: usize,
) -> Vec<u64> {
    assert!(row_block > 0, "row block must be positive");
    assert!(col_tile > 0, "column tile must be positive");
    let nrows = rowptr.len().saturating_sub(1);
    let mut trace = Vec::with_capacity(colind.len());
    let mut bucket: Vec<(usize, u32)> = Vec::new();
    for b0 in (0..nrows).step_by(row_block) {
        let b1 = (b0 + row_block).min(nrows);
        bucket.clear();
        for i in b0..b1 {
            for &c in &colind[rowptr[i]..rowptr[i + 1]] {
                bucket.push((c as usize / col_tile, c));
            }
        }
        // Stable regrouping by tile: entries were pushed in (row, entry)
        // order, so a stable sort by tile keeps that order within a tile.
        bucket.sort_by_key(|&(t, _)| t);
        trace.extend(bucket.iter().map(|&(_, c)| c as u64 * 4));
    }
    trace
}

/// Miss rate of the tile-blocked irregular stream over a cold cache; the
/// companion of [`spmv_irregular_miss_rate`] for before/after blocking
/// comparisons.
pub fn spmv_tiled_miss_rate(
    rowptr: &[usize],
    colind: &[u32],
    row_block: usize,
    col_tile: usize,
    config: CacheConfig,
) -> CacheStats {
    let mut sim = CacheSim::new(config);
    for addr in spmv_tiled_trace(rowptr, colind, row_block, col_tile) {
        sim.access(addr);
    }
    sim.stats()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn trace_addresses_are_scaled_indices() {
        let cols = [0u32, 3, 7];
        let addrs: Vec<u64> = spmv_irregular_trace(&cols).collect();
        assert_eq!(addrs, vec![0, 12, 28]);
    }

    #[test]
    fn sequential_columns_have_low_miss_rate() {
        // 16 f32 per 64 B line: sequential access misses 1/16 of the time.
        let cols: Vec<u32> = (0..4096).collect();
        let stats = spmv_irregular_miss_rate(&cols, CacheConfig::new(64, 32 * 1024, 8));
        assert!((stats.miss_rate() - 1.0 / 16.0).abs() < 1e-9);
    }

    #[test]
    fn strided_columns_have_full_miss_rate() {
        // Stride 16 = one access per line, no reuse, footprint >> cache.
        let cols: Vec<u32> = (0..65536u32).step_by(16).collect();
        let stats = spmv_irregular_miss_rate(&cols, CacheConfig::new(64, 4096, 4));
        assert_eq!(stats.miss_rate(), 1.0);
    }

    #[test]
    fn tiled_trace_regroups_by_tile_and_preserves_row_order() {
        // Two rows in one block, columns spanning two tiles of 4.
        let rowptr = [0usize, 3, 5];
        let colind = [6u32, 1, 2, 5, 0];
        let trace = spmv_tiled_trace(&rowptr, &colind, 2, 4);
        // Tile 0 first (row 0's 1, 2 then row 1's 0), then tile 1 (6, 5).
        assert_eq!(trace, vec![4, 8, 0, 24, 20]);
        // A block boundary between the rows keeps each row's order intact.
        let per_row = spmv_tiled_trace(&rowptr, &colind, 1, 4);
        assert_eq!(per_row, vec![4, 8, 24, 0, 20]);
    }
    #[test]
    fn tiled_trace_is_a_permutation_of_the_plain_trace() {
        let rowptr: Vec<usize> = (0..=40).map(|i| i * 7).collect();
        let colind: Vec<u32> = (0..280u32).map(|k| (k * 97) % 1024).collect();
        let mut plain: Vec<u64> = spmv_irregular_trace(&colind).collect();
        let mut tiled = spmv_tiled_trace(&rowptr, &colind, 8, 64);
        plain.sort_unstable();
        tiled.sort_unstable();
        assert_eq!(plain, tiled);
    }

    #[test]
    fn tile_blocking_reduces_misses_on_scattered_rows() {
        // Each row sweeps the whole domain with a large stride: the plain
        // row-order trace thrashes a small cache, while regrouping by tile
        // turns it into per-tile sequential sweeps.
        let nrows = 64usize;
        let per_row = 128usize;
        let mut rowptr = vec![0usize];
        let mut colind = Vec::new();
        for i in 0..nrows {
            for e in 0..per_row {
                colind.push(((e * 512 + i * 16) % 65536) as u32);
            }
            rowptr.push(colind.len());
        }
        let config = CacheConfig::new(64, 16 * 1024, 8);
        let plain = spmv_irregular_miss_rate(&colind, config);
        let tiled = spmv_tiled_miss_rate(&rowptr, &colind, nrows, 2048, config);
        assert!(
            tiled.miss_rate() < plain.miss_rate(),
            "tiled {} vs plain {}",
            tiled.miss_rate(),
            plain.miss_rate()
        );
    }

    #[test]
    fn repeated_block_hits_after_warmup() {
        let block: Vec<u32> = (0..256).collect();
        let mut cols = block.clone();
        cols.extend(&block);
        let stats = spmv_irregular_miss_rate(&cols, CacheConfig::new(64, 32 * 1024, 8));
        // First pass: 16 compulsory misses; second pass: all hits.
        assert_eq!(stats.misses, 16);
        assert_eq!(stats.accesses, 512);
    }
}

//! Property tests for the cache simulator: fundamental cache laws must
//! hold for arbitrary geometries and access sequences.

use proptest::prelude::*;
use xct_cachesim::{CacheConfig, CacheSim};

fn arb_config() -> impl Strategy<Value = CacheConfig> {
    (4u32..9, 0u32..4, 1u32..5).prop_map(|(line_pow, assoc_pow, sets_pow)| {
        let line = 1usize << line_pow;
        let assoc = 1usize << assoc_pow;
        let sets = 1usize << sets_pow;
        CacheConfig::new(line, line * assoc * sets, assoc)
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn misses_never_exceed_accesses(
        config in arb_config(),
        addrs in prop::collection::vec(0u64..100_000, 1..300),
    ) {
        let mut sim = CacheSim::new(config);
        for &a in &addrs {
            sim.access(a);
        }
        let s = sim.stats();
        prop_assert_eq!(s.accesses, addrs.len() as u64);
        prop_assert!(s.misses <= s.accesses);
        // Compulsory misses: a line's first access always misses, so
        // misses ≥ distinct lines touched.
        let distinct: std::collections::HashSet<u64> =
            addrs.iter().map(|&a| a / config.line_size as u64).collect();
        prop_assert!(s.misses >= distinct.len() as u64);
    }

    #[test]
    fn immediate_rereference_always_hits(
        config in arb_config(),
        addrs in prop::collection::vec(0u64..100_000, 1..100),
    ) {
        let mut sim = CacheSim::new(config);
        for &a in &addrs {
            sim.access(a);
            prop_assert!(sim.access(a), "immediate re-access of {a} must hit");
        }
    }

    #[test]
    fn working_set_within_one_way_never_conflicts(
        line_pow in 4u32..8,
        sets_pow in 1u32..4,
    ) {
        // Touching exactly one line per set repeatedly: after the first
        // pass everything hits, regardless of associativity 1.
        let line = 1usize << line_pow;
        let sets = 1usize << sets_pow;
        let config = CacheConfig::new(line, line * sets, 1);
        let mut sim = CacheSim::new(config);
        for pass in 0..3 {
            for s in 0..sets as u64 {
                let hit = sim.access(s * line as u64);
                if pass > 0 {
                    prop_assert!(hit);
                }
            }
        }
        prop_assert_eq!(sim.stats().misses, sets as u64);
    }

    #[test]
    fn higher_associativity_never_increases_lru_misses_on_single_set(
        addrs in prop::collection::vec(0u64..16, 1..200),
        line_pow in 2u32..6,
    ) {
        // For a fixed number of lines mapping to one set, LRU with more
        // ways is at least as good (inclusion property holds per set).
        let line = 1usize << line_pow;
        let mut misses = Vec::new();
        for assoc in [1usize, 2, 4, 8] {
            let config = CacheConfig::new(line, line * assoc, assoc); // 1 set
            let mut sim = CacheSim::new(config);
            for &a in &addrs {
                sim.access(a * line as u64); // one address per line
            }
            misses.push(sim.stats().misses);
        }
        for w in misses.windows(2) {
            prop_assert!(w[1] <= w[0], "misses must not grow with ways: {misses:?}");
        }
    }

    #[test]
    fn reset_restores_cold_state(
        config in arb_config(),
        addrs in prop::collection::vec(0u64..10_000, 1..100),
    ) {
        let mut sim = CacheSim::new(config);
        for &a in &addrs {
            sim.access(a);
        }
        let first = sim.stats();
        sim.reset();
        for &a in &addrs {
            sim.access(a);
        }
        prop_assert_eq!(sim.stats(), first);
    }
}

//! `memxct-cli`: simulate scans and reconstruct slices from the command
//! line, writing viewable PGM images and raw f32 data.
//!
//! ```text
//! memxct-cli info
//! memxct-cli simulate    --dataset rds1 --scale 16 --out sino.raw [--noise 1e5]
//! memxct-cli reconstruct --dataset rds1 --scale 16 --solver cg --iters 30 \
//!                        [--sino sino.raw] [--ranks 4] [--out slice.pgm] \
//!                        [--metrics metrics.json]
//! memxct-cli serve       --jobs jobs.txt [--cache N] [--outdir DIR] \
//!                        [--metrics metrics.json]
//! ```

#![forbid(unsafe_code)]

use std::path::PathBuf;
use std::process::exit;

use memxct::prelude::*;
use xct_geometry::{
    io, simulate_sinogram, Dataset, NoiseModel, SampleKind, Sinogram, ALL_DATASETS,
};
use xct_serve::{JobError, JobRuntime, JobSpec, PlanSpec, RetryPolicy, RuntimeConfig};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some(cmd) = args.first() else {
        usage_and_exit();
    };
    let opts = Options::parse(&args[1..]);
    match cmd.as_str() {
        "info" => info(),
        "simulate" => simulate(&opts),
        "reconstruct" => reconstruct(&opts),
        "serve" => serve(&opts),
        "check" => check(&opts),
        "help" | "--help" | "-h" => usage_and_exit(),
        other => {
            eprintln!("unknown command `{other}`");
            usage_and_exit();
        }
    }
}

fn usage_and_exit() -> ! {
    eprintln!(
        "memxct-cli — memory-centric XCT reconstruction

USAGE:
  memxct-cli info
  memxct-cli simulate    --dataset <name> [--scale N] [--noise I0] --out FILE
  memxct-cli reconstruct --dataset <name> [--scale N] [--sino FILE]
                         [--solver cg|sirt|os-sirt|fbp] [--iters N]
                         [--ranks N] [--noise I0] [--out FILE.pgm]
                         [--metrics FILE.json] [--check]
                         [--pool] [--pool-threads N] [--batch K]
                         [--checkpoint FILE] [--checkpoint-every N]
                         [--resume] [--chaos KIND@rank:index]...
  memxct-cli serve       --jobs FILE [--cache N] [--outdir DIR]
                         [--metrics FILE.json]
  memxct-cli check       --dataset <name> [--scale N] [--ranks N]
                         [--corrupt KIND]

DATASETS: ads1 ads2 ads3 ads4 rds1 rds2 (see `info`)
  --scale N      divide both sinogram dimensions by N (default 16)
  --noise I0     Poisson photon count per ray (default: noise-free)
  --solver       cg (default), sirt, os-sirt (8 subsets), fbp
  --ranks N      run the distributed CG path on N thread-ranks
  --out FILE     .pgm for images, .raw for sinograms
  --metrics FILE write the run's metrics snapshot as JSON
  --check        validate every memoized structure before reconstructing
                 (exit 3 if any invariant is violated)
  --pool         run SpMV on the persistent worker pool with nnz-balanced
                 static partitions (threads from RAYON_NUM_THREADS)
  --pool-threads N  pool size override (implies --pool)
  --batch K      solve K slices together through the SpMM path (cg/sirt,
                 single-process; the written image is slice 0, extra
                 slices are scaled copies of the measurement)
  --checkpoint FILE  snapshot the solver state to FILE.0 (versioned,
                 checksummed) every --checkpoint-every iterations
  --checkpoint-every N  checkpoint cadence in iterations (default 1)
  --resume       resume from the latest snapshot under --checkpoint;
                 a resumed solve is bit-identical to an uninterrupted one
  --chaos SPEC   inject one deterministic fault (repeatable; cg/sirt/os-
                 sirt with --ranks): KIND@rank:index with KIND one of
                 crash, drop, delay, bitflip — e.g. crash@1:3
  --corrupt KIND inject one fault before checking (check only):
                 rowptr | nan | transpose | permutation | stage-oversize
  --jobs FILE    serve: job file, one job per line (# comments allowed):
                   NAME DATASET SCALE cg|sirt ITERS PRIORITY
                        [batch=K] [preempt@N] [pool]
                        [deadline=SECS] [retries=N]
                 higher priority runs first; preempt@N checkpoints the job
                 at iteration boundary N and requeues it (resume is
                 bit-identical to an uninterrupted run); deadline=SECS
                 bounds the job's wall clock from submission (overruns
                 stop at an iteration boundary, keep their checkpoint,
                 and exit 5); retries=N re-runs transient communication
                 failures up to N times with deterministic seeded
                 backoff, resuming from checkpoint (a retried job's
                 output is bit-identical to an unfaulted run)
  --cache N      serve: plan-cache capacity (default 8); jobs whose plan
                 is cached skip preprocessing entirely
  --outdir DIR   serve: write each job's slice-0 image to DIR/NAME.pgm

EXIT CODES
  0  success
  1  I/O error (unreadable/unwritable file)
  2  usage or configuration error
  3  invariant violation (plan --check or snapshot validation)
  4  unrecovered communication or checkpoint fault, or a contained
     job panic (serve)
  5  serve: a job exceeded its deadline= budget
  6  serve: a job was stopped or shed by runtime degradation"
    );
    exit(2);
}

/// Map a reconstruction failure to the documented exit code: typed
/// communication/checkpoint faults exit 4, invariant violations exit 3,
/// everything else is a configuration error (2).
fn die(context: &str, e: BuildError) -> ! {
    eprintln!("{context}: {e}");
    match e {
        BuildError::Comm(_) | BuildError::Checkpoint(_) => exit(4),
        BuildError::PlanCheck(report) => {
            for v in report.violations() {
                eprintln!("  {v}");
            }
            exit(3);
        }
        _ => exit(2),
    }
}

/// [`die`] for the request API: unwrap the underlying build error when
/// there is one, otherwise report the request-level failure directly.
fn die_run(context: &str, e: ReconError) -> ! {
    match e {
        ReconError::Build(b) => die(context, b),
        other => {
            eprintln!("{context}: {other}");
            exit(2);
        }
    }
}

/// Exit code for a failed serve job, matching the documented mapping:
/// deadline overruns exit 5, shutdown-stopped jobs exit 6, contained
/// panics exit 4 alongside communication/checkpoint faults.
fn run_exit_code(e: &JobError) -> i32 {
    match e {
        JobError::TimedOut { .. } => 5,
        JobError::Stopped { .. } => 6,
        JobError::Panicked { .. } => 4,
        JobError::Recon(ReconError::Build(BuildError::Comm(_) | BuildError::Checkpoint(_))) => 4,
        JobError::Recon(ReconError::Build(BuildError::PlanCheck(_))) => 3,
        JobError::Recon(_) => 2,
    }
}

struct Options {
    dataset: Option<Dataset>,
    scale: u32,
    noise: Option<f64>,
    solver: String,
    iters: usize,
    ranks: Option<usize>,
    sino: Option<PathBuf>,
    out: Option<PathBuf>,
    metrics: Option<PathBuf>,
    check: bool,
    corrupt: Option<String>,
    pool: bool,
    pool_threads: Option<usize>,
    batch: usize,
    checkpoint: Option<PathBuf>,
    checkpoint_every: usize,
    resume: bool,
    chaos: Vec<FaultSpec>,
    jobs: Option<PathBuf>,
    outdir: Option<PathBuf>,
    cache: usize,
}

impl Options {
    fn parse(args: &[String]) -> Options {
        let mut o = Options {
            dataset: None,
            scale: 16,
            noise: None,
            solver: "cg".into(),
            iters: 30,
            ranks: None,
            sino: None,
            out: None,
            metrics: None,
            check: false,
            corrupt: None,
            pool: false,
            pool_threads: None,
            batch: 1,
            checkpoint: None,
            checkpoint_every: 1,
            resume: false,
            chaos: Vec::new(),
            jobs: None,
            outdir: None,
            cache: 8,
        };
        let mut it = args.iter();
        while let Some(flag) = it.next() {
            let mut value = |name: &str| -> String {
                it.next()
                    .unwrap_or_else(|| {
                        eprintln!("missing value for {name}");
                        exit(2);
                    })
                    .clone()
            };
            match flag.as_str() {
                "--dataset" => {
                    let name = value("--dataset").to_uppercase();
                    o.dataset = ALL_DATASETS.iter().find(|d| d.name == name).copied();
                    if o.dataset.is_none() {
                        eprintln!("unknown dataset `{name}`; see `memxct-cli info`");
                        exit(2);
                    }
                }
                "--scale" => o.scale = value("--scale").parse().unwrap_or(16).max(1),
                "--noise" => o.noise = value("--noise").parse().ok(),
                "--solver" => o.solver = value("--solver"),
                "--iters" => o.iters = value("--iters").parse().unwrap_or(30).max(1),
                "--ranks" => o.ranks = value("--ranks").parse().ok(),
                "--sino" => o.sino = Some(PathBuf::from(value("--sino"))),
                "--out" => o.out = Some(PathBuf::from(value("--out"))),
                "--metrics" => o.metrics = Some(PathBuf::from(value("--metrics"))),
                "--check" => o.check = true,
                "--corrupt" => o.corrupt = Some(value("--corrupt")),
                "--checkpoint" => o.checkpoint = Some(PathBuf::from(value("--checkpoint"))),
                "--checkpoint-every" => {
                    let v = value("--checkpoint-every");
                    o.checkpoint_every = match v.parse() {
                        Ok(n) if n > 0 => n,
                        _ => {
                            eprintln!("--checkpoint-every expects a positive integer, got `{v}`");
                            exit(2);
                        }
                    };
                }
                "--resume" => o.resume = true,
                "--chaos" => match FaultPlan::parse_spec(&value("--chaos")) {
                    Ok(spec) => o.chaos.push(spec),
                    Err(e) => {
                        eprintln!("invalid --chaos spec: {e}");
                        exit(2);
                    }
                },
                "--pool" => o.pool = true,
                "--jobs" => o.jobs = Some(PathBuf::from(value("--jobs"))),
                "--outdir" => o.outdir = Some(PathBuf::from(value("--outdir"))),
                "--cache" => {
                    let v = value("--cache");
                    o.cache = match v.parse() {
                        Ok(n) if n > 0 => n,
                        _ => {
                            eprintln!("--cache expects a positive integer, got `{v}`");
                            exit(2);
                        }
                    };
                }
                "--batch" => {
                    let v = value("--batch");
                    o.batch = match v.parse() {
                        Ok(n) if n > 0 => n,
                        _ => {
                            eprintln!("--batch expects a positive integer, got `{v}`");
                            exit(2);
                        }
                    };
                }
                "--pool-threads" => {
                    o.pool = true;
                    let v = value("--pool-threads");
                    o.pool_threads = match v.parse() {
                        Ok(n) if n > 0 => Some(n),
                        _ => {
                            eprintln!("--pool-threads expects a positive integer, got `{v}`");
                            exit(2);
                        }
                    };
                }
                other => {
                    eprintln!("unknown flag `{other}`");
                    exit(2);
                }
            }
        }
        o
    }

    fn dataset_scaled(&self) -> Dataset {
        let ds = self.dataset.unwrap_or_else(|| {
            eprintln!("--dataset is required");
            exit(2);
        });
        ds.scaled(self.scale)
    }

    fn noise_model(&self) -> NoiseModel {
        match self.noise {
            Some(incident) => NoiseModel::Poisson {
                incident,
                scale: 0.02,
            },
            None => NoiseModel::None,
        }
    }
}

fn info() {
    println!(
        "{:<6} {:>12} {:<12} {:>14} {:>14}",
        "name", "sinogram", "sample", "nnz", "regular data"
    );
    for ds in ALL_DATASETS {
        let f = ds.footprint();
        let sample = match ds.sample {
            SampleKind::Artificial => "artificial",
            SampleKind::ShaleRock => "shale rock",
            SampleKind::MouseBrain => "mouse brain",
        };
        println!(
            "{:<6} {:>5}x{:<6} {:<12} {:>13.1}M {:>11.2} GB",
            ds.name,
            ds.projections,
            ds.channels,
            sample,
            f.nnz as f64 / 1e6,
            f.regular_forward as f64 / 1e9
        );
    }
}

fn simulate(opts: &Options) {
    let ds = opts.dataset_scaled();
    let out = opts.out.clone().unwrap_or_else(|| {
        eprintln!("--out is required for simulate");
        exit(2);
    });
    println!(
        "simulating {} at scale 1/{}: {}x{} sinogram",
        ds.name, opts.scale, ds.projections, ds.channels
    );
    let truth = ds.phantom().rasterize(ds.channels);
    let sino = simulate_sinogram(&truth, &ds.grid(), &ds.scan(), opts.noise_model(), 0xc11);
    io::write_raw_f32(&out, sino.data()).unwrap_or_else(|e| {
        eprintln!("cannot write {}: {e}", out.display());
        exit(1);
    });
    println!("wrote {} ({} f32 values)", out.display(), sino.data().len());
}

fn reconstruct(opts: &Options) {
    let ds = opts.dataset_scaled();
    let scan = ds.scan();
    let grid = ds.grid();
    println!(
        "reconstructing {} at scale 1/{}: {}x{} -> {n}x{n}, solver {}",
        ds.name,
        opts.scale,
        ds.projections,
        ds.channels,
        opts.solver,
        n = ds.channels
    );

    // Measurement: from file if given, else simulate the phantom.
    let sino = match &opts.sino {
        Some(path) => {
            let data = io::read_raw_f32(path).unwrap_or_else(|e| {
                eprintln!("cannot read {}: {e}", path.display());
                exit(1);
            });
            if data.len() != scan.num_rays() {
                eprintln!(
                    "{} holds {} values; {}x{} needs {}",
                    path.display(),
                    data.len(),
                    ds.projections,
                    ds.channels,
                    scan.num_rays()
                );
                exit(1);
            }
            Sinogram::new(scan, data)
        }
        None => {
            let truth = ds.phantom().rasterize(ds.channels);
            simulate_sinogram(&truth, &grid, &scan, opts.noise_model(), 0xc11)
        }
    };

    if opts.resume && opts.checkpoint.is_none() {
        eprintln!("--resume requires --checkpoint FILE");
        exit(2);
    }
    if !opts.chaos.is_empty() && opts.ranks.is_none() {
        eprintln!("--chaos requires --ranks N (faults target distributed collectives)");
        exit(2);
    }
    if opts.batch > 1 {
        if opts.ranks.is_some() {
            eprintln!("--batch is single-process; it cannot combine with --ranks");
            exit(2);
        }
        if !matches!(opts.solver.as_str(), "cg" | "sirt") {
            eprintln!("--batch supports the cg and sirt solvers");
            exit(2);
        }
    }
    let t = std::time::Instant::now();
    let mut builder = ReconstructorBuilder::new(grid, scan)
        .validate_plan(opts.check)
        .use_pool(opts.pool)
        .batch(opts.batch);
    if let Some(n) = opts.pool_threads {
        builder = builder.pool_threads(n);
    }
    if let Some(path) = &opts.checkpoint {
        builder = builder
            .checkpoint_path(path)
            .checkpoint_every(opts.checkpoint_every)
            .resume(opts.resume);
    }
    if !opts.chaos.is_empty() {
        let mut plan = FaultPlan::new();
        for spec in &opts.chaos {
            plan.push(*spec);
        }
        builder = builder.fault_plan(plan).max_restarts(1);
    }
    let rec = builder.build().unwrap_or_else(|e| {
        if let BuildError::PlanCheck(report) = &e {
            eprintln!("plan validation failed:");
            for v in report.violations() {
                eprintln!("  {v}");
            }
            exit(3);
        }
        eprintln!("cannot build reconstructor: {e}");
        exit(2);
    });
    if opts.check {
        println!(
            "preprocessing: {:.2}s (all invariants hold)",
            t.elapsed().as_secs_f64()
        );
    } else {
        println!("preprocessing: {:.2}s", t.elapsed().as_secs_f64());
    }
    if let Some(threads) = rec.pool_threads() {
        println!("worker pool: {threads} persistent threads, nnz-balanced partitions");
    }
    if let Some(path) = &opts.checkpoint {
        println!(
            "checkpoint: {} every {} iteration(s){}",
            path.display(),
            opts.checkpoint_every,
            if opts.resume { ", resume enabled" } else { "" }
        );
    }
    if !opts.chaos.is_empty() {
        println!("chaos: {} deterministic fault(s) armed", opts.chaos.len());
    }
    if opts.batch > 1 {
        println!(
            "batch: {} slices solved together through the SpMM path",
            opts.batch
        );
    }

    // Batched runs widen the measurement into `batch` distinct slices:
    // slice 0 is the measurement itself (so the written image is
    // comparable to an unbatched run), the rest are scaled copies.
    let batch_slices: Vec<Sinogram> = (0..opts.batch)
        .map(|j| {
            let scale = 1.0 + 0.05 * j as f32;
            Sinogram::new(scan, sino.data().iter().map(|&v| v * scale).collect())
        })
        .collect();

    let t = std::time::Instant::now();
    let (image, iters_run) = match (opts.solver.as_str(), opts.ranks) {
        ("cg", Some(ranks)) => {
            let req = ReconRequest::cg(ReconInput::Slice(sino), StopRule::Fixed(opts.iters)).mode(
                ExecMode::Distributed {
                    config: DistConfig {
                        ranks,
                        use_buffered: true,
                        stop: StopRule::Fixed(opts.iters),
                        solver: DistSolver::Cg,
                    },
                    ft: None,
                },
            );
            let mut resp = rec
                .run(&req)
                .unwrap_or_else(|e| die_run("distributed reconstruction failed", e));
            let n = resp.slice_records.first().map(Vec::len).unwrap_or(0);
            (resp.images.swap_remove(0), n)
        }
        ("cg" | "sirt", _) => {
            let input = if opts.batch > 1 {
                ReconInput::Batch(batch_slices)
            } else {
                ReconInput::Slice(sino)
            };
            let req = if opts.solver == "cg" {
                ReconRequest::cg(input, StopRule::Fixed(opts.iters))
            } else {
                ReconRequest::sirt(input, opts.iters)
            };
            let req = req.mode(if opts.pool {
                ExecMode::Pooled
            } else {
                ExecMode::Serial
            });
            let mut resp = rec
                .run(&req)
                .unwrap_or_else(|e| die_run("reconstruction failed", e));
            let n = resp.slice_records.first().map(Vec::len).unwrap_or(0);
            (resp.images.swap_remove(0), n)
        }
        ("os-sirt", _) => {
            let os = OrderedSubsets::new(rec.operators(), 8.min(ds.projections as usize));
            let y = rec.operators().order_sinogram(&sino);
            let (x, recs) = os.solve(&y, opts.iters, 1.0);
            (rec.operators().unorder_tomogram(&x), recs.len())
        }
        ("fbp", _) => (fbp(rec.operators(), &sino, &FbpConfig::default()), 1),
        (other, _) => {
            eprintln!("unknown solver `{other}`");
            exit(2);
        }
    };
    println!(
        "reconstruction: {:.2}s ({} iterations)",
        t.elapsed().as_secs_f64(),
        iters_run
    );

    if let Some(path) = &opts.metrics {
        let snap = rec.metrics();
        std::fs::write(path, snap.to_json()).unwrap_or_else(|e| {
            eprintln!("cannot write {}: {e}", path.display());
            exit(1);
        });
        println!("wrote {}", path.display());
    }

    if let Some(out) = &opts.out {
        let n = ds.channels as usize;
        io::write_pgm(out, n, n, &image).unwrap_or_else(|e| {
            eprintln!("cannot write {}: {e}", out.display());
            exit(1);
        });
        println!("wrote {}", out.display());
    }
    let max = image.iter().cloned().fold(f32::MIN, f32::max);
    let min = image.iter().cloned().fold(f32::MAX, f32::min);
    println!("image range: [{min:.4}, {max:.4}]");
}

/// Parse one job-file line (`NAME DATASET SCALE cg|sirt ITERS PRIORITY
/// [batch=K] [preempt@N] [pool] [deadline=SECS] [retries=N]`) into a job
/// plus the image side length its outputs will have.
fn parse_job_line(line: &str) -> Result<(JobSpec, u32), String> {
    let mut tok = line.split_whitespace();
    let mut field = |name: &str| tok.next().ok_or_else(|| format!("missing {name}"));
    let name = field("job NAME")?.to_string();
    let ds_name = field("DATASET")?.to_uppercase();
    let ds = ALL_DATASETS
        .iter()
        .find(|d| d.name == ds_name)
        .copied()
        .ok_or_else(|| format!("unknown dataset `{ds_name}`"))?;
    let scale: u32 = field("SCALE")?
        .parse()
        .map_err(|_| "SCALE expects a positive integer".to_string())?;
    let solver = field("SOLVER")?.to_string();
    let iters: usize = field("ITERS")?
        .parse()
        .map_err(|_| "ITERS expects a positive integer".to_string())?;
    let priority: u8 = field("PRIORITY")?
        .parse()
        .map_err(|_| "PRIORITY expects an integer in 0..=255".to_string())?;
    let mut batch = 1usize;
    let mut preempt = None;
    let mut pool = false;
    let mut deadline = None;
    let mut retries = None;
    for extra in tok {
        if let Some(v) = extra.strip_prefix("batch=") {
            batch = v
                .parse()
                .ok()
                .filter(|&n| n > 0)
                .ok_or_else(|| format!("batch= expects a positive integer, got `{v}`"))?;
        } else if let Some(v) = extra.strip_prefix("preempt@") {
            let b: usize = v
                .parse()
                .ok()
                .filter(|&n| n > 0)
                .ok_or_else(|| format!("preempt@ expects a positive iteration, got `{v}`"))?;
            preempt = Some(b);
        } else if let Some(v) = extra.strip_prefix("deadline=") {
            let secs: f64 = v
                .parse()
                .ok()
                .filter(|s: &f64| s.is_finite() && *s > 0.0)
                .ok_or_else(|| format!("deadline= expects positive seconds, got `{v}`"))?;
            deadline = Some(std::time::Duration::from_secs_f64(secs));
        } else if let Some(v) = extra.strip_prefix("retries=") {
            let n: u32 = v
                .parse()
                .map_err(|_| format!("retries= expects a non-negative integer, got `{v}`"))?;
            retries = Some(n);
        } else if extra == "pool" {
            pool = true;
        } else {
            return Err(format!("unknown token `{extra}`"));
        }
    }
    if iters == 0 {
        return Err("ITERS must be positive".to_string());
    }

    // The measurement mirrors `reconstruct` without --sino: the dataset
    // phantom simulated noise-free with the fixed seed, extra batch
    // slices scaled copies — so serve outputs are bit-comparable to
    // direct `reconstruct` runs.
    let ds = ds.scaled(scale.max(1));
    let grid = ds.grid();
    let scan = ds.scan();
    let truth = ds.phantom().rasterize(ds.channels);
    let sino = simulate_sinogram(&truth, &grid, &scan, NoiseModel::None, 0xc11);
    let input = if batch > 1 {
        ReconInput::Batch(
            (0..batch)
                .map(|j| {
                    let s = 1.0 + 0.05 * j as f32;
                    Sinogram::new(scan, sino.data().iter().map(|&v| v * s).collect())
                })
                .collect(),
        )
    } else {
        ReconInput::Slice(sino)
    };
    let request = match solver.as_str() {
        "cg" => ReconRequest::cg(input, StopRule::Fixed(iters)),
        "sirt" => ReconRequest::sirt(input, iters),
        other => return Err(format!("serve supports cg and sirt, got `{other}`")),
    };
    let request = request.mode(if pool {
        ExecMode::Pooled
    } else {
        ExecMode::Serial
    });
    let mut plan = PlanSpec::new(grid, scan);
    plan.use_pool = pool;
    plan.batch = batch;
    let mut spec = JobSpec::new(name, plan, request).priority(priority);
    if let Some(b) = preempt {
        spec = spec.preempt_at(b);
    }
    if let Some(d) = deadline {
        spec = spec.deadline(d);
    }
    if let Some(n) = retries {
        spec = spec.retry(RetryPolicy::retries(n));
    }
    Ok((spec, ds.channels))
}

/// `memxct-cli serve`: drain a job file through the serving runtime —
/// priority scheduling with checkpoint preemption, plans shared through
/// the keyed cache — and report per-job accounting.
fn serve(opts: &Options) {
    let path = opts.jobs.clone().unwrap_or_else(|| {
        eprintln!("--jobs FILE is required for serve");
        exit(2);
    });
    let text = std::fs::read_to_string(&path).unwrap_or_else(|e| {
        eprintln!("cannot read {}: {e}", path.display());
        exit(1);
    });
    if let Some(dir) = &opts.outdir {
        std::fs::create_dir_all(dir).unwrap_or_else(|e| {
            eprintln!("cannot create {}: {e}", dir.display());
            exit(1);
        });
    }

    let runtime = JobRuntime::new(RuntimeConfig {
        cache_capacity: opts.cache,
        ..RuntimeConfig::default()
    });
    let mut jobs = Vec::new();
    for (lineno, raw) in text.lines().enumerate() {
        let line = raw.split('#').next().unwrap_or("").trim();
        if line.is_empty() {
            continue;
        }
        let (spec, side) = parse_job_line(line).unwrap_or_else(|e| {
            eprintln!("{}:{}: {e}", path.display(), lineno + 1);
            exit(2);
        });
        let id = runtime.submit(spec).unwrap_or_else(|e| {
            eprintln!("{}:{}: submission refused: {e}", path.display(), lineno + 1);
            exit(2);
        });
        jobs.push((id, side));
    }
    println!(
        "serve: {} job(s) queued, plan cache capacity {}",
        jobs.len(),
        opts.cache
    );

    let mut exit_code = 0;
    for (id, side) in &jobs {
        let Some(result) = runtime.wait(*id) else {
            continue;
        };
        let r = &result.report;
        match &result.outcome {
            Ok(resp) => {
                println!(
                    "job {:>3} {:<16} ok     priority={} cache_hit={} preemptions={} \
                     retries={} iters={} queue={:.3}s run={:.3}s preprocess={:.3}s plan={:016x}",
                    r.id.0,
                    r.name,
                    r.priority,
                    r.cache_hit,
                    r.preemptions,
                    r.retries,
                    r.iterations,
                    r.queue_seconds,
                    r.run_seconds,
                    r.preprocess_seconds,
                    r.plan_fingerprint
                );
                if let Some(dir) = &opts.outdir {
                    let out = dir.join(format!("{}.pgm", r.name));
                    let n = *side as usize;
                    io::write_pgm(&out, n, n, &resp.images[0]).unwrap_or_else(|e| {
                        eprintln!("cannot write {}: {e}", out.display());
                        exit(1);
                    });
                }
            }
            Err(e) => {
                let word = match e {
                    JobError::TimedOut { .. } => "timeout",
                    JobError::Stopped { .. } => "stopped",
                    JobError::Panicked { .. } => "panic",
                    JobError::Recon(_) => "failed",
                };
                eprintln!(
                    "job {:>3} {:<16} {word} priority={} retries={}: {e}",
                    r.id.0, r.name, r.priority, r.retries
                );
                exit_code = exit_code.max(run_exit_code(e));
            }
        }
    }

    let snap = runtime.metrics();
    let c = |k: &str| snap.counters.get(k).copied().unwrap_or(0);
    println!(
        "cache: {} hit / {} miss / {} evict; jobs: {} completed, {} failed, \
         {} preempted, {} resumed, {} timed out, {} retried, {} panicked",
        c(xct_obs::CACHE_HIT),
        c(xct_obs::CACHE_MISS),
        c(xct_obs::CACHE_EVICT),
        c(xct_obs::JOB_COMPLETED),
        c(xct_obs::JOB_FAILED),
        c(xct_obs::JOB_PREEMPTED),
        c(xct_obs::JOB_RESUMED),
        c(xct_obs::JOB_TIMEOUTS),
        c(xct_obs::JOB_RETRIES),
        c(xct_obs::JOB_PANICS)
    );
    if let Some(path) = &opts.metrics {
        std::fs::write(path, snap.to_json()).unwrap_or_else(|e| {
            eprintln!("cannot write {}: {e}", path.display());
            exit(1);
        });
        println!("wrote {}", path.display());
    }
    if exit_code != 0 {
        exit(exit_code);
    }
}

/// Inject one deliberate fault into the memoized structures so the check
/// sweep (and CI) can prove corruption is caught, not silently computed
/// with. Each kind corrupts exactly one field.
fn inject_corruption(ops: &mut Operators, kind: &str) {
    use xct_sparse::{BufferedCsrImpl, CsrMatrix};
    match kind {
        "rowptr" => {
            // Raise one interior row pointer above its successor.
            let mut rowptr = ops.a.rowptr().to_vec();
            let mid = rowptr.len() / 2;
            rowptr[mid] = rowptr[mid + 1] + 1;
            ops.a = CsrMatrix::from_raw_unchecked(
                ops.a.nrows(),
                ops.a.ncols(),
                rowptr,
                ops.a.colind().to_vec(),
                ops.a.values().to_vec(),
            );
        }
        "nan" => {
            let mut values = ops.a.values().to_vec();
            values[0] = f32::NAN;
            ops.a = CsrMatrix::from_raw_unchecked(
                ops.a.nrows(),
                ops.a.ncols(),
                ops.a.rowptr().to_vec(),
                ops.a.colind().to_vec(),
                values,
            );
        }
        "transpose" => {
            // Perturb one backprojection weight: At is no longer the scan
            // transpose of A.
            let mut values = ops.at.values().to_vec();
            values[0] += 1.0;
            ops.at = CsrMatrix::from_raw_unchecked(
                ops.at.nrows(),
                ops.at.ncols(),
                ops.at.rowptr().to_vec(),
                ops.at.colind().to_vec(),
                values,
            );
        }
        "permutation" => {
            // Point two tomogram cells at the same rank.
            let ord = &ops.tomo_ord;
            let mut rank_of = ord.rank_of().to_vec();
            rank_of[0] = rank_of[1];
            ops.tomo_ord = xct_hilbert::Ordering2D::from_raw_tables_unchecked(
                ord.width(),
                ord.height(),
                ord.kind(),
                rank_of,
                ord.pos_of().to_vec(),
            );
        }
        "stage-oversize" => {
            // Claim a buffer capacity the 16-bit indices cannot address.
            let Some(b) = ops.a_buf.take() else {
                eprintln!("stage-oversize needs buffered layouts");
                exit(2);
            };
            ops.a_buf = Some(BufferedCsrImpl::from_raw_parts_unchecked(
                b.nrows(),
                b.ncols(),
                b.partsize(),
                u16::MAX as usize + 2,
                b.nnz(),
                b.partdispl().to_vec(),
                b.stagedispl().to_vec(),
                b.stage_map().to_vec(),
                b.entry_displ().to_vec(),
                b.entry_ind().to_vec(),
                b.entry_val().to_vec(),
            ));
        }
        other => {
            eprintln!(
                "unknown corruption `{other}`; kinds: rowptr nan transpose permutation stage-oversize"
            );
            exit(2);
        }
    }
    println!("injected corruption: {kind}");
}

/// `memxct-cli check`: preprocess, optionally inject one fault, and run
/// the full static invariant sweep plus the lock-order (lockdep) pass over
/// the sync facade's recorded acquisition graph. Exits 0 when every
/// invariant holds and 3 when any is violated (2 for usage errors).
fn check(opts: &Options) {
    let ds = opts.dataset_scaled();
    println!(
        "checking {} at scale 1/{}: {}x{} sinogram",
        ds.name, opts.scale, ds.projections, ds.channels
    );
    let config = Config {
        build_ell: true,
        ..Config::default()
    };
    let t = std::time::Instant::now();
    let mut ops = try_preprocess(ds.grid(), ds.scan(), &config).unwrap_or_else(|e| {
        eprintln!("cannot preprocess: {e}");
        exit(2);
    });
    println!("preprocessing: {:.2}s", t.elapsed().as_secs_f64());

    // Rank plans are derived before the fault is injected (deriving them
    // from corrupted structures could crash instead of reporting).
    let plans = opts.ranks.map(|ranks| {
        if ranks == 0 {
            eprintln!("--ranks must be positive");
            exit(2);
        }
        memxct::dist::build_plans(&ops, ranks, true)
    });

    if let Some(kind) = &opts.corrupt {
        inject_corruption(&mut ops, kind);
    }

    let t = std::time::Instant::now();
    let checker = plan_checker(&ops);
    let mut names = checker.names();
    let mut report = checker.run();
    if let Some(plans) = &plans {
        let dist = dist_checker(&ops, plans);
        names.extend(dist.names());
        dist.run_into(&mut report);
    }

    // Lock-order pass: exercise the model-checked concurrency paths once
    // so the sync facade records its acquisition graph (debug builds; the
    // recording is compiled out in release, leaving an empty — trivially
    // acyclic — graph), then check the graph for ABBA cycles.
    {
        let pool = xct_runtime::WorkerPool::new(2);
        let plan = xct_runtime::ExecPlan::equal_rows(4, 2);
        let mut scratch = vec![0u8; 4];
        pool.run(&plan, &mut scratch, |_parts, _rows, _slice| {});
        let _ = xct_runtime::run_ranks(2, |comm| {
            comm.barrier();
            comm.rank()
        });
        let edges = xct_model::lockdep::edges();
        println!(
            "lockdep: {} lock classes, {} acquisition edges",
            xct_model::lockdep::classes().len(),
            edges.len()
        );
        let lock = xct_check::LockOrderCheck::new("lockdep", edges);
        names.push(xct_check::Check::name(&lock));
        xct_check::Check::run(&lock, &mut report);
    }
    println!(
        "ran {} checks in {:.2}s: {}",
        names.len(),
        t.elapsed().as_secs_f64(),
        names.join(", ")
    );
    if report.is_ok() {
        println!("all invariants hold");
        return;
    }
    eprintln!("{} invariant violation(s):", report.len());
    for v in report.violations() {
        eprintln!("  {v}");
    }
    exit(3);
}

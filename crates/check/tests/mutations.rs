//! Mutation-style property tests: every invariant class must be
//! *pinpointable*. Each mutation takes a valid memoized structure, corrupts
//! exactly one field through the `*_unchecked` constructors, and asserts the
//! checker for that structure reports exactly the corrupted invariant class
//! — no more, no less. A final test proves the table covers every class in
//! [`Invariant::ALL`].

use xct_check::{
    BufferedCheck, Check, CheckpointCheck, CsrCheck, EllCheck, ExecPlanCheck, Invariant,
    LedgerCheck, LockOrderCheck, PartitionCheck, PermutationCheck, Report, ScheduleCheck,
    TransposeCheck,
};
use xct_sparse::{BufferedCsr, BufferedCsrImpl, CsrMatrix, EllMatrix};

/// Owned form of one ELL partition: (rows, width, colind, values).
type EllPart = (usize, usize, Vec<u32>, Vec<f32>);
/// Per-rank × per-peer row-index tables of a communication schedule.
type RowTables = Vec<Vec<Vec<u32>>>;

/// The shared specimen: 5x6, 9 nnz, with an empty row and an unsorted row
/// (row 4 stores column 2 before column 1 — ray-traversal order).
fn specimen() -> CsrMatrix {
    CsrMatrix::from_rows(
        6,
        &[
            vec![(0, 1.0), (3, 2.0), (5, 1.5)],
            vec![(1, -1.0)],
            vec![],
            vec![(0, 0.5), (2, 0.5), (4, 0.5)],
            vec![(2, 3.0), (1, 1.0)],
        ],
    )
}

fn run(check: impl Check) -> Report {
    let mut report = Report::new();
    check.run(&mut report);
    report
}

/// Rebuild the specimen CSR with one array swapped out.
fn csr_with(mutate: impl FnOnce(&mut Vec<usize>, &mut Vec<u32>, &mut Vec<f32>)) -> CsrMatrix {
    let a = specimen();
    let (mut rowptr, mut colind, mut values) = (
        a.rowptr().to_vec(),
        a.colind().to_vec(),
        a.values().to_vec(),
    );
    mutate(&mut rowptr, &mut colind, &mut values);
    CsrMatrix::from_raw_unchecked(a.nrows(), a.ncols(), rowptr, colind, values)
}

/// All eleven raw fields of the specimen's buffered layout
/// (partsize 2, buffsize 4: three partitions, one stage each).
struct BufParts {
    nrows: usize,
    ncols: usize,
    partsize: usize,
    buffsize: usize,
    nnz: usize,
    partdispl: Vec<u32>,
    stagedispl: Vec<usize>,
    map: Vec<u32>,
    displ: Vec<usize>,
    ind: Vec<u16>,
    val: Vec<f32>,
}

fn buf_parts() -> (CsrMatrix, BufParts) {
    let a = specimen();
    let b = BufferedCsr::from_csr(&a, 2, 4);
    let parts = BufParts {
        nrows: b.nrows(),
        ncols: b.ncols(),
        partsize: b.partsize(),
        buffsize: b.buffsize(),
        nnz: b.nnz(),
        partdispl: b.partdispl().to_vec(),
        stagedispl: b.stagedispl().to_vec(),
        map: b.stage_map().to_vec(),
        displ: b.entry_displ().to_vec(),
        ind: b.entry_ind().to_vec(),
        val: b.entry_val().to_vec(),
    };
    (a, parts)
}

fn buffered_report(mutate: impl FnOnce(&mut BufParts)) -> Report {
    let (a, mut p) = buf_parts();
    mutate(&mut p);
    let b: BufferedCsr = BufferedCsrImpl::from_raw_parts_unchecked(
        p.nrows,
        p.ncols,
        p.partsize,
        p.buffsize,
        p.nnz,
        p.partdispl,
        p.stagedispl,
        p.map,
        p.displ,
        p.ind,
        p.val,
    );
    run(BufferedCheck::new("buffered(A)", &b).with_source(&a))
}

/// Owned partition triples of the specimen's ELL layout (partsize 2).
fn ell_parts() -> (CsrMatrix, Vec<EllPart>) {
    let a = specimen();
    let ell = EllMatrix::from_csr(&a, 2);
    let parts = (0..ell.num_partitions())
        .map(|p| {
            let v = ell.partition_view(p);
            (v.rows, v.width, v.colind.to_vec(), v.values.to_vec())
        })
        .collect();
    (a, parts)
}

fn ell_report(mutate: impl FnOnce(&mut Vec<EllPart>)) -> Report {
    let (a, mut parts) = ell_parts();
    mutate(&mut parts);
    let ell = EllMatrix::from_raw_parts_unchecked(a.nrows(), a.ncols(), a.nnz(), parts);
    run(EllCheck::new("ell(A)", &ell, &a, 2))
}

/// Consistent 2-rank schedule tables over a 6-row sinogram.
fn schedule_tables() -> (Vec<std::ops::Range<usize>>, RowTables, RowTables) {
    let owners = vec![0..3, 3..6];
    let sends = vec![vec![vec![], vec![0, 2]], vec![vec![4], vec![]]];
    let recvs = vec![vec![vec![], vec![4]], vec![vec![0, 2], vec![]]];
    (owners, sends, recvs)
}

// ---------------------------------------------------------------------------
// One mutation per invariant class.
// ---------------------------------------------------------------------------

fn m_rowptr_shape() -> Report {
    // Drop the last rowptr entry: len != nrows + 1.
    let a = csr_with(|rowptr, _, _| {
        rowptr.pop();
    });
    run(CsrCheck::new("csr(A)", &a))
}

fn m_rowptr_monotone() -> Report {
    // rowptr [0,3,4,4,7,9] -> [0,3,5,4,7,9]: one interior descent.
    let a = csr_with(|rowptr, _, _| rowptr[2] = 5);
    run(CsrCheck::new("csr(A)", &a))
}

fn m_column_bounds() -> Report {
    // Row 0's second column (3) escapes the 0..6 domain.
    let a = csr_with(|_, colind, _| colind[1] = 6);
    run(CsrCheck::new("csr(A)", &a))
}

fn m_column_sorted() -> Report {
    // The scan transpose guarantees sorted rows; un-sort one.
    let at = specimen().transpose_scan();
    let mut colind = at.colind().to_vec();
    colind.swap(0, 1);
    let at = CsrMatrix::from_raw_unchecked(
        at.nrows(),
        at.ncols(),
        at.rowptr().to_vec(),
        colind,
        at.values().to_vec(),
    );
    run(CsrCheck::new("csr(At)", &at).require_sorted_columns())
}

fn m_duplicate_column() -> Report {
    // Row 0 stores column 0 twice.
    let a = csr_with(|_, colind, _| colind[1] = 0);
    run(CsrCheck::new("csr(A)", &a))
}

fn m_value_finite() -> Report {
    let a = csr_with(|_, _, values| values[0] = f32::NAN);
    run(CsrCheck::new("csr(A)", &a))
}

fn m_transpose_shape() -> Report {
    // Append a phantom empty transposed row: At gains a row A never had.
    let a = specimen();
    let at = a.transpose_scan();
    let mut rowptr = at.rowptr().to_vec();
    rowptr.push(*rowptr.last().unwrap());
    let at = CsrMatrix::from_raw_unchecked(
        at.nrows() + 1,
        at.ncols(),
        rowptr,
        at.colind().to_vec(),
        at.values().to_vec(),
    );
    run(TransposeCheck::new("pair(A,At)", &a, &at))
}

fn m_transpose_entries() -> Report {
    // Perturb one transposed value: still finite, but no longer the scan
    // transpose of A.
    let a = specimen();
    let at = a.transpose_scan();
    let mut values = at.values().to_vec();
    values[0] += 1.0;
    let at = CsrMatrix::from_raw_unchecked(
        at.nrows(),
        at.ncols(),
        at.rowptr().to_vec(),
        at.colind().to_vec(),
        values,
    );
    run(TransposeCheck::new("pair(A,At)", &a, &at))
}

fn m_permutation_bijection() -> Report {
    // Swap two ranks without updating the inverse table.
    let mut rank_of: Vec<u32> = (0..8).collect();
    let pos_of: Vec<u32> = (0..8).collect();
    rank_of.swap(1, 2);
    run(PermutationCheck::new("ordering", &rank_of, &pos_of))
}

fn m_buffered_shape() -> Report {
    // Truncate the stage map: stagedispl no longer covers it.
    buffered_report(|p| {
        p.map.pop();
    })
}

fn m_partition_displ() -> Report {
    // partdispl [0,1,2,3] -> [0,3,2,3]: stage ranges go non-monotone.
    buffered_report(|p| p.partdispl[1] = 3)
}

fn m_stage_footprint() -> Report {
    // A buffer capacity the u16 index width cannot address (§3.3.5).
    buffered_report(|p| p.buffsize = u16::MAX as usize + 2)
}

fn m_stage_map_sorted() -> Report {
    // Partition 0's footprint [0,1,3,5] -> [1,0,3,5].
    buffered_report(|p| p.map.swap(0, 1))
}

fn m_stage_map_bounds() -> Report {
    // Last footprint slot of partition 0 (column 5) escapes 0..6 while
    // staying ascending.
    buffered_report(|p| p.map[3] = 6)
}

fn m_buffer_local_bounds() -> Report {
    // A buffer-local index far outside its stage's 4-column footprint —
    // the silent-truncation class BufferIndex::try_from_usize guards.
    buffered_report(|p| p.ind[0] = 200)
}

fn m_buffered_entries() -> Report {
    // Structurally sound, numerically wrong: one stored value drifts.
    buffered_report(|p| p.val[0] += 1.0)
}

fn m_ell_shape() -> Report {
    // Claim partition 0 is one slot wider than its source rows imply.
    ell_report(|parts| parts[0].1 += 1)
}

fn m_ell_padding() -> Report {
    // Partition 0, row 1 has width 3 but one entry; poison a padding slot
    // (column-major slot s=1, row j=1 -> index s*rows+j = 3).
    ell_report(|parts| parts[0].3[3] = 1.0)
}

fn m_ell_entries() -> Report {
    // Perturb a payload slot (s=0, j=0).
    ell_report(|parts| parts[0].3[0] += 1.0)
}

fn m_partition_coverage() -> Report {
    // Rank 1 starts at 4, leaving cell 3 unowned.
    run(PartitionCheck::new("partition", 6, vec![0..3, 4..6]))
}

fn m_schedule_symmetry() -> Report {
    // Rank 1 expects one row from rank 0 but rank 0 plans to send two.
    let (owners, sends, mut recvs) = schedule_tables();
    recvs[1][0].pop();
    run(ScheduleCheck::new("schedule", owners, sends, recvs))
}

fn m_schedule_rows() -> Report {
    // Counts agree, rows do not: rank 1 expects row 1 instead of row 2.
    let (owners, sends, mut recvs) = schedule_tables();
    recvs[1][0][1] = 1;
    run(ScheduleCheck::new("schedule", owners, sends, recvs))
}

fn m_ledger_reconciliation() -> Report {
    // A nonzero diagonal: self-sends must be local copies, never recorded.
    let observed = vec![8, 124, 84, 0];
    let predicted = vec![0, 100, 60, 0];
    run(LedgerCheck::new("ledger", 2, observed, predicted, 8))
}

/// A valid 2-worker execution plan over 6 rows: four partitions of
/// weight 5 each, two per worker (balance bound 20/2 + 5 + 1 = 16).
fn exec_plan_arrays() -> (usize, Vec<usize>, Vec<u64>, Vec<usize>, u64) {
    (6, vec![0, 1, 2, 4, 6], vec![5, 5, 5, 5], vec![0, 2, 4], 5)
}

fn m_exec_plan_shape() -> Report {
    // Truncate the worker assignment: its last run no longer reaches the
    // final partition (bounds still tile, so coverage stays clean).
    let (rows, bounds, weights, _, max_unit) = exec_plan_arrays();
    run(ExecPlanCheck::new(
        "exec(forward)",
        rows,
        bounds,
        weights,
        vec![0, 2],
        max_unit,
    ))
}

fn m_exec_plan_balance() -> Report {
    // Pile every partition onto worker 0: 20 > the greedy bound 16.
    let (rows, bounds, weights, _, max_unit) = exec_plan_arrays();
    run(ExecPlanCheck::new(
        "exec(forward)",
        rows,
        bounds,
        weights,
        vec![0, 4, 4],
        max_unit,
    ))
}

/// A consistent checkpoint header for a 12-voxel, 8-row solve saved at
/// iteration 3 of a 10-iteration run, resumed under plan hash 0xAB.
fn checkpoint_check(
    snapshot_plan_hash: u64,
    snapshot_iteration: u64,
    records_len: u64,
    x_len: usize,
) -> CheckpointCheck {
    CheckpointCheck::new(
        "checkpoint",
        0xAB,
        snapshot_plan_hash,
        10,
        snapshot_iteration,
        records_len,
    )
    .section("x", 12, Some(x_len))
    .section("resid", 8, Some(8))
}

fn m_checkpoint_hash() -> Report {
    // Snapshot taken under a different plan hash.
    run(checkpoint_check(0xCD, 3, 3, 12))
}

fn m_checkpoint_shape() -> Report {
    // The stored image vector shrank: it no longer fits the workspace.
    run(checkpoint_check(0xAB, 3, 3, 11))
}

fn m_checkpoint_monotone() -> Report {
    // Iteration counter claims 3 but only 2 records were written.
    run(checkpoint_check(0xAB, 3, 2, 12))
}

fn m_checkpoint_batch() -> Report {
    // Snapshot written at batch width 2, resumed by a width-4 config;
    // sections are otherwise consistent, so the width mismatch is the
    // only root cause (section shapes are skipped, not re-reported).
    run(checkpoint_check(0xAB, 3, 3, 12).batch(4, 2))
}

/// The lock-order graph the model-checked crates actually record,
/// acyclic by construction (dispatch is taken under the pool state's
/// critical sections, never the other way around).
fn lock_edges() -> Vec<(String, String)> {
    [
        ("pool/dispatch", "pool/state"),
        ("serve/job/state", "serve/cache/state"),
        ("comm/barrier", "comm/failure"),
    ]
    .iter()
    .map(|(a, b)| (a.to_string(), b.to_string()))
    .collect()
}

fn m_lock_order_acyclic() -> Report {
    // One inverted acquisition turns the ordered graph into an ABBA pair.
    let mut edges = lock_edges();
    edges.push(("pool/state".to_string(), "pool/dispatch".to_string()));
    run(LockOrderCheck::new("lockdep", edges))
}

/// The full table: (name, the invariant the mutation must pinpoint, the
/// mutation itself).
type Mutation = (&'static str, Invariant, fn() -> Report);
static MUTATIONS: &[Mutation] = &[
    ("rowptr truncated", Invariant::RowPtrShape, m_rowptr_shape),
    (
        "rowptr descends",
        Invariant::RowPtrMonotone,
        m_rowptr_monotone,
    ),
    (
        "column escapes domain",
        Invariant::ColumnBounds,
        m_column_bounds,
    ),
    (
        "sorted row un-sorted",
        Invariant::ColumnSorted,
        m_column_sorted,
    ),
    (
        "column stored twice",
        Invariant::DuplicateColumn,
        m_duplicate_column,
    ),
    ("value goes NaN", Invariant::ValueFinite, m_value_finite),
    (
        "transpose gains a row",
        Invariant::TransposeShape,
        m_transpose_shape,
    ),
    (
        "transpose value drifts",
        Invariant::TransposeEntries,
        m_transpose_entries,
    ),
    (
        "rank table un-inverted",
        Invariant::PermutationBijection,
        m_permutation_bijection,
    ),
    (
        "stage map truncated",
        Invariant::BufferedShape,
        m_buffered_shape,
    ),
    (
        "partdispl descends",
        Invariant::PartitionDispl,
        m_partition_displ,
    ),
    (
        "buffer exceeds u16 reach",
        Invariant::StageFootprint,
        m_stage_footprint,
    ),
    (
        "footprint un-sorted",
        Invariant::StageMapSorted,
        m_stage_map_sorted,
    ),
    (
        "footprint escapes domain",
        Invariant::StageMapBounds,
        m_stage_map_bounds,
    ),
    (
        "local index oversizes stage",
        Invariant::BufferLocalBounds,
        m_buffer_local_bounds,
    ),
    (
        "buffered value drifts",
        Invariant::BufferedEntries,
        m_buffered_entries,
    ),
    ("ELL width inflated", Invariant::EllShape, m_ell_shape),
    (
        "padding slot poisoned",
        Invariant::EllPadding,
        m_ell_padding,
    ),
    ("payload slot drifts", Invariant::EllEntries, m_ell_entries),
    (
        "partition gap",
        Invariant::PartitionCoverage,
        m_partition_coverage,
    ),
    (
        "recv count short",
        Invariant::ScheduleSymmetry,
        m_schedule_symmetry,
    ),
    (
        "recv rows disagree",
        Invariant::ScheduleRows,
        m_schedule_rows,
    ),
    (
        "diagonal self-bytes",
        Invariant::LedgerReconciliation,
        m_ledger_reconciliation,
    ),
    (
        "worker assignment truncated",
        Invariant::ExecPlanShape,
        m_exec_plan_shape,
    ),
    (
        "all partitions on one worker",
        Invariant::ExecPlanBalance,
        m_exec_plan_balance,
    ),
    (
        "snapshot from another plan",
        Invariant::CheckpointHash,
        m_checkpoint_hash,
    ),
    (
        "stored vector shrank",
        Invariant::CheckpointShape,
        m_checkpoint_shape,
    ),
    (
        "iteration outruns records",
        Invariant::CheckpointMonotone,
        m_checkpoint_monotone,
    ),
    (
        "batch width disagrees",
        Invariant::CheckpointBatch,
        m_checkpoint_batch,
    ),
    (
        "lock acquisition inverted",
        Invariant::LockOrderAcyclic,
        m_lock_order_acyclic,
    ),
];

#[test]
fn each_mutation_pinpoints_exactly_its_invariant() {
    for (name, expect, mutation) in MUTATIONS {
        let report = mutation();
        assert_eq!(
            report.invariant_classes(),
            vec![*expect],
            "mutation `{name}` must pinpoint {expect}; got:\n{report}"
        );
    }
}

#[test]
fn mutations_cover_every_invariant_class() {
    let covered: Vec<Invariant> = MUTATIONS.iter().map(|(_, inv, _)| *inv).collect();
    for inv in Invariant::ALL {
        assert!(
            covered.contains(inv),
            "invariant class {inv} has no mutation exercising it"
        );
    }
    assert_eq!(covered.len(), Invariant::ALL.len(), "duplicate mutations");
}

#[test]
fn unmutated_specimens_are_clean() {
    let a = specimen();
    let at = a.transpose_scan();
    let buf = BufferedCsr::from_csr(&a, 2, 4);
    let ell = EllMatrix::from_csr(&a, 2);
    let (owners, sends, recvs) = schedule_tables();
    let mut report = Report::new();
    CsrCheck::new("csr(A)", &a).run(&mut report);
    CsrCheck::new("csr(At)", &at)
        .require_sorted_columns()
        .run(&mut report);
    TransposeCheck::new("pair(A,At)", &a, &at).run(&mut report);
    BufferedCheck::new("buffered(A)", &buf)
        .with_source(&a)
        .run(&mut report);
    EllCheck::new("ell(A)", &ell, &a, 2).run(&mut report);
    PartitionCheck::new("partition", 6, owners.clone()).run(&mut report);
    ScheduleCheck::new("schedule", owners, sends, recvs).run(&mut report);
    LedgerCheck::new("ledger", 2, vec![0, 124, 84, 0], vec![0, 100, 60, 0], 8).run(&mut report);
    let (rows, bounds, weights, assign, max_unit) = exec_plan_arrays();
    ExecPlanCheck::new("exec(forward)", rows, bounds, weights, assign, max_unit).run(&mut report);
    checkpoint_check(0xAB, 3, 3, 12)
        .batch(4, 4)
        .run(&mut report);
    LockOrderCheck::new("lockdep", lock_edges()).run(&mut report);
    assert!(report.is_ok(), "{report}");
}

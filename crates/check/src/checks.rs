//! Concrete invariant checks over MemXCT's memoized structures.
//!
//! Each check borrows a structure (and, where relevant, the source it was
//! derived from) and appends [`CheckViolation`]s to a [`Report`]. A
//! [`Checker`] composes them so a whole plan is validated in one sweep.

use crate::violation::{Invariant, Report};
use std::ops::Range;
use xct_hilbert::Ordering2D;
use xct_sparse::{BufferIndex, BufferedCsrImpl, CsrMatrix, EllMatrix};

/// One static invariant check.
pub trait Check {
    /// Human-readable name (shown in `memxct-cli check` progress output).
    fn name(&self) -> String;
    /// Run the check, appending any violations to `report`.
    fn run(&self, report: &mut Report);
}

/// A composable collection of checks.
#[derive(Default)]
pub struct Checker<'a> {
    checks: Vec<Box<dyn Check + 'a>>,
}

impl<'a> Checker<'a> {
    /// An empty checker.
    pub fn new() -> Self {
        Checker { checks: Vec::new() }
    }

    /// Add a check (builder style).
    pub fn with(mut self, check: impl Check + 'a) -> Self {
        self.checks.push(Box::new(check));
        self
    }

    /// Add a check in place.
    pub fn add(&mut self, check: impl Check + 'a) {
        self.checks.push(Box::new(check));
    }

    /// Names of the registered checks, in execution order.
    pub fn names(&self) -> Vec<String> {
        self.checks.iter().map(|c| c.name()).collect()
    }

    /// Number of registered checks.
    pub fn len(&self) -> usize {
        self.checks.len()
    }

    /// True when no checks are registered.
    pub fn is_empty(&self) -> bool {
        self.checks.is_empty()
    }

    /// Run every check into a fresh report.
    pub fn run(&self) -> Report {
        let mut report = Report::new();
        self.run_into(&mut report);
        report
    }

    /// Run every check, appending to an existing report.
    pub fn run_into(&self, report: &mut Report) {
        for check in &self.checks {
            check.run(report);
        }
    }
}

// ---------------------------------------------------------------------------
// CSR well-formedness
// ---------------------------------------------------------------------------

/// CSR well-formedness: array shapes, monotone `rowptr`, in-bounds columns,
/// finite values, no duplicate column within a row.
///
/// `require_sorted_columns` additionally demands strictly ascending columns
/// per row. MemXCT's projection matrices keep *ray-traversal* order (which
/// the buffered layout and the order-preserving transpose rely on), so they
/// set this to `false`; enable it for structures that do guarantee
/// sortedness.
pub struct CsrCheck<'a> {
    name: String,
    a: &'a CsrMatrix,
    require_sorted_columns: bool,
}

impl<'a> CsrCheck<'a> {
    /// Check `a` under the given display name (e.g. `"csr(A)"`).
    pub fn new(name: impl Into<String>, a: &'a CsrMatrix) -> Self {
        CsrCheck {
            name: name.into(),
            a,
            require_sorted_columns: false,
        }
    }

    /// Also require strictly ascending columns within each row.
    pub fn require_sorted_columns(mut self) -> Self {
        self.require_sorted_columns = true;
        self
    }
}

impl Check for CsrCheck<'_> {
    fn name(&self) -> String {
        self.name.clone()
    }

    fn run(&self, report: &mut Report) {
        let a = self.a;
        let name = &self.name;
        let rowptr = a.rowptr();
        if rowptr.len() != a.nrows() + 1 {
            report.violation(
                name,
                Invariant::RowPtrShape,
                "rowptr",
                format!("len {} != nrows+1 = {}", rowptr.len(), a.nrows() + 1),
                "rebuild with CsrMatrix::from_raw",
            );
            return; // row iteration below would index out of bounds
        }
        if rowptr.first() != Some(&0) {
            report.violation(
                name,
                Invariant::RowPtrShape,
                "rowptr[0]",
                format!("{} != 0", rowptr[0]),
                "rebuild with CsrMatrix::from_raw",
            );
        }
        if a.colind().len() != a.values().len() {
            report.violation(
                name,
                Invariant::RowPtrShape,
                "colind/values",
                format!(
                    "{} columns vs {} values",
                    a.colind().len(),
                    a.values().len()
                ),
                "rebuild with CsrMatrix::from_raw",
            );
            return;
        }
        if *rowptr.last().unwrap_or(&0) != a.colind().len() {
            report.violation(
                name,
                Invariant::RowPtrShape,
                "rowptr end",
                format!(
                    "rowptr[{}]={} != nnz {}",
                    rowptr.len() - 1,
                    rowptr.last().unwrap_or(&0),
                    a.colind().len()
                ),
                "rebuild with CsrMatrix::from_raw",
            );
        }
        let mut monotone = true;
        for (i, w) in rowptr.windows(2).enumerate() {
            if w[0] > w[1] {
                report.violation(
                    name,
                    Invariant::RowPtrMonotone,
                    format!("row {i}"),
                    format!("rowptr[{i}]={} > rowptr[{}]={}", w[0], i + 1, w[1]),
                    "recompute the row pointer prefix sums",
                );
                monotone = false;
            }
        }
        for (k, &c) in a.colind().iter().enumerate() {
            if (c as usize) >= a.ncols() {
                report.violation(
                    name,
                    Invariant::ColumnBounds,
                    format!("entry {k}"),
                    format!("column {} out of 0..{}", c, a.ncols()),
                    "re-trace the geometry; columns must index the input domain",
                );
            }
        }
        for (k, &v) in a.values().iter().enumerate() {
            if !v.is_finite() {
                report.violation(
                    name,
                    Invariant::ValueFinite,
                    format!("entry {k}"),
                    format!("value {v} is not finite"),
                    "check intersection-length computation for degenerate rays",
                );
            }
        }
        if !monotone || rowptr.last().copied().unwrap_or(0) > a.colind().len() {
            return; // per-row slicing below would be out of bounds
        }
        // Per-row duplicate / sortedness scan.
        let mut seen: Vec<u32> = Vec::new();
        for i in 0..a.nrows() {
            let cols = &a.colind()[rowptr[i]..rowptr[i + 1]];
            if self.require_sorted_columns {
                if let Some(j) = cols.windows(2).position(|w| w[0] >= w[1]) {
                    report.violation(
                        name,
                        Invariant::ColumnSorted,
                        format!("row {i}"),
                        format!("columns {} then {} at slot {j}", cols[j], cols[j + 1]),
                        "sort row entries by column",
                    );
                }
            }
            seen.clear();
            seen.extend_from_slice(cols);
            seen.sort_unstable();
            if let Some(w) = seen.windows(2).find(|w| w[0] == w[1]) {
                report.violation(
                    name,
                    Invariant::DuplicateColumn,
                    format!("row {i}"),
                    format!("column {} stored twice", w[0]),
                    "merge duplicate entries during tracing",
                );
            }
        }
    }
}

/// Whether `a`'s structural arrays are sound enough to iterate rows
/// without panicking. Relation checks (transpose pair, buffered/ELL
/// sources) skip their entry comparisons for non-traversable matrices —
/// the [`CsrCheck`] that every plan sweep also runs pinpoints the
/// structural breakage instead.
fn csr_traversable(a: &CsrMatrix) -> bool {
    let rowptr = a.rowptr();
    rowptr.len() == a.nrows() + 1
        && rowptr.first() == Some(&0)
        && rowptr.windows(2).all(|w| w[0] <= w[1])
        && rowptr.last().copied().unwrap_or(0) == a.colind().len()
        && a.colind().len() == a.values().len()
}

// ---------------------------------------------------------------------------
// Transpose-pair consistency
// ---------------------------------------------------------------------------

/// `At` must be exactly the order-preserving scan transpose of `A`
/// (§3.5.1): same shapes transposed, same nnz, and bit-identical entry
/// order (backprojection correctness and Hilbert locality both depend on
/// the stable order).
pub struct TransposeCheck<'a> {
    name: String,
    a: &'a CsrMatrix,
    at: &'a CsrMatrix,
}

impl<'a> TransposeCheck<'a> {
    /// Check the pair under the given display name (e.g. `"pair(A,At)"`).
    pub fn new(name: impl Into<String>, a: &'a CsrMatrix, at: &'a CsrMatrix) -> Self {
        TransposeCheck {
            name: name.into(),
            a,
            at,
        }
    }
}

impl Check for TransposeCheck<'_> {
    fn name(&self) -> String {
        self.name.clone()
    }

    fn run(&self, report: &mut Report) {
        let (a, at) = (self.a, self.at);
        if !csr_traversable(a) || !csr_traversable(at) {
            return; // CsrCheck pinpoints the structural breakage
        }
        if at.nrows() != a.ncols() || at.ncols() != a.nrows() || at.nnz() != a.nnz() {
            report.violation(
                &self.name,
                Invariant::TransposeShape,
                "shape",
                format!(
                    "A is {}x{} ({} nnz) but At is {}x{} ({} nnz)",
                    a.nrows(),
                    a.ncols(),
                    a.nnz(),
                    at.nrows(),
                    at.ncols(),
                    at.nnz()
                ),
                "rebuild At with CsrMatrix::transpose_scan",
            );
            return;
        }
        let expected = a.transpose_scan();
        if *at != expected {
            // Locate the first differing transposed row for the report.
            let mut loc = "unknown".to_string();
            for i in 0..at.nrows() {
                let got: Vec<(u32, f32)> = at.row(i).collect();
                let want: Vec<(u32, f32)> = expected.row(i).collect();
                if got != want {
                    loc = format!("transposed row {i}");
                    break;
                }
            }
            report.violation(
                &self.name,
                Invariant::TransposeEntries,
                loc,
                "At differs from the scan transpose of A",
                "rebuild At with CsrMatrix::transpose_scan",
            );
        }
    }
}

// ---------------------------------------------------------------------------
// Permutation bijection
// ---------------------------------------------------------------------------

/// An ordering's `rank_of` / `pos_of` tables must be mutually inverse
/// bijections on `0..n` — otherwise gather/scatter silently drops or
/// duplicates cells.
pub struct PermutationCheck<'a> {
    name: String,
    rank_of: &'a [u32],
    pos_of: &'a [u32],
}

impl<'a> PermutationCheck<'a> {
    /// Check raw permutation tables.
    pub fn new(name: impl Into<String>, rank_of: &'a [u32], pos_of: &'a [u32]) -> Self {
        PermutationCheck {
            name: name.into(),
            rank_of,
            pos_of,
        }
    }

    /// Check the tables of an [`Ordering2D`].
    pub fn of_ordering(name: impl Into<String>, ord: &'a Ordering2D) -> Self {
        Self::new(name, ord.rank_of(), ord.pos_of())
    }
}

impl Check for PermutationCheck<'_> {
    fn name(&self) -> String {
        self.name.clone()
    }

    fn run(&self, report: &mut Report) {
        let n = self.rank_of.len();
        if self.pos_of.len() != n {
            report.violation(
                &self.name,
                Invariant::PermutationBijection,
                "tables",
                format!("rank_of has {n} cells but pos_of has {}", self.pos_of.len()),
                "rebuild the ordering from its visit sequence",
            );
            return;
        }
        for (pos, &rank) in self.rank_of.iter().enumerate() {
            if (rank as usize) >= n {
                report.violation(
                    &self.name,
                    Invariant::PermutationBijection,
                    format!("cell {pos}"),
                    format!("rank {rank} out of 0..{n}"),
                    "rebuild the ordering from its visit sequence",
                );
            } else if self.pos_of[rank as usize] as usize != pos {
                report.violation(
                    &self.name,
                    Invariant::PermutationBijection,
                    format!("cell {pos}"),
                    format!(
                        "rank_of[{pos}]={rank} but pos_of[{rank}]={}",
                        self.pos_of[rank as usize]
                    ),
                    "rebuild the ordering from its visit sequence",
                );
            }
        }
    }
}

// ---------------------------------------------------------------------------
// Buffered-SpMV layout
// ---------------------------------------------------------------------------

/// The multi-stage buffered layout (§3.3): stage footprints must fit the
/// buffer, buffer-local indices must fit the index width and stay inside
/// their stage's occupied footprint, stage maps must be the sorted distinct
/// footprint of their partition, and the layout must reproduce exactly the
/// source matrix's entries.
pub struct BufferedCheck<'a, I: BufferIndex> {
    name: String,
    buf: &'a BufferedCsrImpl<I>,
    source: Option<&'a CsrMatrix>,
}

impl<'a, I: BufferIndex> BufferedCheck<'a, I> {
    /// Check the layout alone (internal consistency only).
    pub fn new(name: impl Into<String>, buf: &'a BufferedCsrImpl<I>) -> Self {
        BufferedCheck {
            name: name.into(),
            buf,
            source: None,
        }
    }

    /// Also verify the layout reproduces `source`'s rows exactly.
    pub fn with_source(mut self, source: &'a CsrMatrix) -> Self {
        self.source = Some(source);
        self
    }
}

impl<I: BufferIndex> Check for BufferedCheck<'_, I> {
    fn name(&self) -> String {
        self.name.clone()
    }

    fn run(&self, report: &mut Report) {
        let b = self.buf;
        let name = &self.name;
        let before = report.len();

        if let Some(src) = self.source {
            if b.nrows() != src.nrows() || b.ncols() != src.ncols() || b.nnz() != src.nnz() {
                report.violation(
                    name,
                    Invariant::BufferedShape,
                    "shape",
                    format!(
                        "layout is {}x{} ({} nnz) but source is {}x{} ({} nnz)",
                        b.nrows(),
                        b.ncols(),
                        b.nnz(),
                        src.nrows(),
                        src.ncols(),
                        src.nnz()
                    ),
                    "rebuild with BufferedCsrImpl::try_from_csr",
                );
            }
        }

        if b.partsize() == 0 {
            report.violation(
                name,
                Invariant::PartitionDispl,
                "partsize",
                "partition size is zero",
                "rebuild with a positive partsize",
            );
            return;
        }
        if b.buffsize() == 0 || b.buffsize() > I::MAX_BUFFER {
            report.violation(
                name,
                Invariant::StageFootprint,
                "buffsize",
                format!(
                    "buffer capacity {} outside 1..={} addressable by the index width",
                    b.buffsize(),
                    I::MAX_BUFFER
                ),
                "rebuild with a buffer the index type can address (§3.3.5)",
            );
        }

        // partdispl: per-partition stage ranges.
        let nparts = b.nrows().div_ceil(b.partsize()).max(1);
        let partdispl = b.partdispl();
        let nstages = b.stagedispl().len().saturating_sub(1);
        if partdispl.len() != nparts + 1
            || partdispl.first() != Some(&0)
            || partdispl.last().map(|&s| s as usize) != Some(nstages)
        {
            report.violation(
                name,
                Invariant::PartitionDispl,
                "partdispl",
                format!(
                    "expected {} monotone entries from 0 to {} stages, got {:?}-shaped table",
                    nparts + 1,
                    nstages,
                    partdispl.len()
                ),
                "rebuild with BufferedCsrImpl::try_from_csr",
            );
            return;
        }
        if let Some(p) = partdispl.windows(2).position(|w| w[0] > w[1]) {
            report.violation(
                name,
                Invariant::PartitionDispl,
                format!("partition {p}"),
                format!(
                    "partdispl[{p}]={} > partdispl[{}]={}",
                    partdispl[p],
                    p + 1,
                    partdispl[p + 1]
                ),
                "rebuild with BufferedCsrImpl::try_from_csr",
            );
            return;
        }

        // stagedispl: footprint ranges into `map`.
        let stagedispl = b.stagedispl();
        if stagedispl.first() != Some(&0)
            || stagedispl.last().copied().unwrap_or(0) != b.stage_map().len()
            || stagedispl.windows(2).any(|w| w[0] > w[1])
        {
            report.violation(
                name,
                Invariant::BufferedShape,
                "stagedispl",
                "stage footprint offsets are not a monotone cover of the stage map",
                "rebuild with BufferedCsrImpl::try_from_csr",
            );
            return;
        }
        for s in 0..nstages {
            let footprint = stagedispl[s + 1] - stagedispl[s];
            if footprint > b.buffsize() {
                report.violation(
                    name,
                    Invariant::StageFootprint,
                    format!("stage {s}"),
                    format!(
                        "footprint {footprint} exceeds buffer capacity {}",
                        b.buffsize()
                    ),
                    "split the stage; footprints must gather into the buffer",
                );
            }
        }

        // Stage maps: in-bounds, and strictly ascending across each
        // partition's concatenated footprint (the footprint is the sorted
        // distinct column set, chunked into stages).
        for (k, &col) in b.stage_map().iter().enumerate() {
            if (col as usize) >= b.ncols() {
                report.violation(
                    name,
                    Invariant::StageMapBounds,
                    format!("map slot {k}"),
                    format!("gathers column {col} out of 0..{}", b.ncols()),
                    "rebuild the footprint from the partition's columns",
                );
            }
        }
        for p in 0..nparts {
            let lo = stagedispl[partdispl[p] as usize];
            let hi = stagedispl[partdispl[p + 1] as usize];
            let span = &b.stage_map()[lo..hi];
            if let Some(j) = span.windows(2).position(|w| w[0] >= w[1]) {
                report.violation(
                    name,
                    Invariant::StageMapSorted,
                    format!("partition {p}, footprint slot {j}"),
                    format!(
                        "column {} then {} (must be strictly ascending)",
                        span[j],
                        span[j + 1]
                    ),
                    "sort and dedup the partition footprint (Hilbert rank order)",
                );
            }
        }

        // displ / ind / val: entry table shape.
        let displ = b.entry_displ();
        if displ.len() != 1 + nstages * b.partsize()
            || displ.first() != Some(&0)
            || displ.windows(2).any(|w| w[0] > w[1])
            || displ.last().copied().unwrap_or(0) != b.entry_ind().len()
            || b.entry_ind().len() != b.entry_val().len()
        {
            report.violation(
                name,
                Invariant::BufferedShape,
                "displ/ind/val",
                format!(
                    "entry table is inconsistent: {} displ ({} expected), {} ind, {} val",
                    displ.len(),
                    1 + nstages * b.partsize(),
                    b.entry_ind().len(),
                    b.entry_val().len()
                ),
                "rebuild with BufferedCsrImpl::try_from_csr",
            );
            return;
        }
        for (k, &v) in b.entry_val().iter().enumerate() {
            if !v.is_finite() {
                report.violation(
                    name,
                    Invariant::ValueFinite,
                    format!("entry {k}"),
                    format!("value {v} is not finite"),
                    "check the source matrix values",
                );
            }
        }
        // Buffer-local indices stay inside their stage's occupied window.
        for s in 0..nstages {
            let footprint = stagedispl[s + 1] - stagedispl[s];
            let lo = displ[s * b.partsize()];
            let hi = displ[(s + 1) * b.partsize()];
            for k in lo..hi {
                let local = b.entry_ind()[k].to_usize();
                if local >= footprint {
                    report.violation(
                        name,
                        Invariant::BufferLocalBounds,
                        format!("stage {s}, entry {k}"),
                        format!("buffer-local index {local} outside footprint {footprint}"),
                        "rebuild; indices must address the gathered stage window",
                    );
                }
            }
        }

        // Entry reconstruction against the source (only meaningful once the
        // structure itself is sound).
        if report.len() > before {
            return;
        }
        if let Some(src) = self.source.filter(|s| csr_traversable(s)) {
            for p in 0..nparts {
                let base = p * b.partsize();
                let rows = b.partsize().min(b.nrows().saturating_sub(base));
                for j in 0..rows {
                    let mut got: Vec<(u32, u32)> = Vec::new();
                    for s in partdispl[p] as usize..partdispl[p + 1] as usize {
                        for k in displ[s * b.partsize() + j]..displ[s * b.partsize() + j + 1] {
                            let col = b.stage_map()[stagedispl[s] + b.entry_ind()[k].to_usize()];
                            got.push((col, b.entry_val()[k].to_bits()));
                        }
                    }
                    let mut want: Vec<(u32, u32)> =
                        src.row(base + j).map(|(c, v)| (c, v.to_bits())).collect();
                    got.sort_unstable();
                    want.sort_unstable();
                    if got != want {
                        report.violation(
                            name,
                            Invariant::BufferedEntries,
                            format!("row {}", base + j),
                            format!(
                                "layout reproduces {} entries, source row has {}{}",
                                got.len(),
                                want.len(),
                                if got.len() == want.len() {
                                    " (same count, different content)"
                                } else {
                                    ""
                                }
                            ),
                            "rebuild with BufferedCsrImpl::try_from_csr",
                        );
                        return;
                    }
                }
            }
        }
    }
}

// ---------------------------------------------------------------------------
// ELL padding consistency
// ---------------------------------------------------------------------------

/// ELL partitions must mirror their CSR source: per-partition width is the
/// max row length, payload entries match the source in order, and every
/// padding slot is the (column 0, value 0) sentinel the divergence-free
/// kernel multiplies redundantly (§3.1.4).
pub struct EllCheck<'a> {
    name: String,
    ell: &'a EllMatrix,
    source: &'a CsrMatrix,
    partsize: usize,
}

impl<'a> EllCheck<'a> {
    /// Check `ell` against the CSR matrix and partition size it was built
    /// from.
    pub fn new(
        name: impl Into<String>,
        ell: &'a EllMatrix,
        source: &'a CsrMatrix,
        partsize: usize,
    ) -> Self {
        EllCheck {
            name: name.into(),
            ell,
            source,
            partsize,
        }
    }
}

impl Check for EllCheck<'_> {
    fn name(&self) -> String {
        self.name.clone()
    }

    fn run(&self, report: &mut Report) {
        let (ell, src) = (self.ell, self.source);
        let name = &self.name;
        if !csr_traversable(src) {
            return; // CsrCheck pinpoints the structural breakage
        }
        if self.partsize == 0 {
            report.violation(
                name,
                Invariant::EllShape,
                "partsize",
                "partition size is zero",
                "rebuild with a positive partsize",
            );
            return;
        }
        let expected_parts = src.nrows().div_ceil(self.partsize);
        if ell.nrows() != src.nrows()
            || ell.ncols() != src.ncols()
            || ell.nnz() != src.nnz()
            || ell.num_partitions() != expected_parts
        {
            report.violation(
                name,
                Invariant::EllShape,
                "shape",
                format!(
                    "ELL is {}x{} ({} nnz, {} partitions) but source implies {}x{} ({} nnz, {} partitions)",
                    ell.nrows(),
                    ell.ncols(),
                    ell.nnz(),
                    ell.num_partitions(),
                    src.nrows(),
                    src.ncols(),
                    src.nnz(),
                    expected_parts
                ),
                "rebuild with EllMatrix::from_csr",
            );
            return;
        }
        let mut padded = 0usize;
        for p in 0..expected_parts {
            let base = p * self.partsize;
            let rows = self.partsize.min(src.nrows() - base);
            let want_width = (0..rows)
                .map(|j| src.rowptr()[base + j + 1] - src.rowptr()[base + j])
                .max()
                .unwrap_or(0);
            let part = ell.partition_view(p);
            padded += part.rows * part.width;
            if part.rows != rows || part.width != want_width {
                report.violation(
                    name,
                    Invariant::EllShape,
                    format!("partition {p}"),
                    format!(
                        "{} rows x width {} but source implies {} rows x width {}",
                        part.rows, part.width, rows, want_width
                    ),
                    "pad each partition to its own max row length",
                );
                continue;
            }
            if part.colind.len() != rows * want_width || part.values.len() != rows * want_width {
                report.violation(
                    name,
                    Invariant::EllShape,
                    format!("partition {p}"),
                    format!(
                        "column-major arrays hold {} / {} slots, expected {}",
                        part.colind.len(),
                        part.values.len(),
                        rows * want_width
                    ),
                    "rebuild with EllMatrix::from_csr",
                );
                continue;
            }
            for j in 0..rows {
                let lo = src.rowptr()[base + j];
                let hi = src.rowptr()[base + j + 1];
                for s in 0..part.width {
                    let (col, val) = (part.colind[s * rows + j], part.values[s * rows + j]);
                    if s < hi - lo {
                        let (want_col, want_val) = (src.colind()[lo + s], src.values()[lo + s]);
                        if col != want_col || val.to_bits() != want_val.to_bits() {
                            report.violation(
                                name,
                                Invariant::EllEntries,
                                format!("partition {p}, row {}, slot {s}", base + j),
                                format!("({col}, {val}) but source has ({want_col}, {want_val})"),
                                "rebuild with EllMatrix::from_csr",
                            );
                        }
                    } else if col != 0 || val.to_bits() != 0 {
                        report.violation(
                            name,
                            Invariant::EllPadding,
                            format!("partition {p}, row {}, slot {s}", base + j),
                            format!("padding slot holds ({col}, {val}), expected (0, 0.0)"),
                            "padding must be the redundant-multiply sentinel",
                        );
                    }
                }
            }
        }
        if padded != ell.padded_nnz() {
            report.violation(
                name,
                Invariant::EllShape,
                "padded_nnz",
                format!("{} cached but slots sum to {padded}", ell.padded_nnz()),
                "rebuild with EllMatrix::from_csr",
            );
        }
    }
}

// ---------------------------------------------------------------------------
// Partition coverage
// ---------------------------------------------------------------------------

/// Contiguous rank partitions must cover `0..total` disjointly — every
/// cell owned by exactly one rank.
pub struct PartitionCheck {
    name: String,
    total: usize,
    ranges: Vec<Range<usize>>,
}

impl PartitionCheck {
    /// Check that `ranges` tile `0..total` in order.
    pub fn new(name: impl Into<String>, total: usize, ranges: Vec<Range<usize>>) -> Self {
        PartitionCheck {
            name: name.into(),
            total,
            ranges,
        }
    }
}

impl Check for PartitionCheck {
    fn name(&self) -> String {
        self.name.clone()
    }

    fn run(&self, report: &mut Report) {
        let mut cursor = 0usize;
        for (i, r) in self.ranges.iter().enumerate() {
            if r.start != cursor {
                report.violation(
                    &self.name,
                    Invariant::PartitionCoverage,
                    format!("partition {i}"),
                    format!(
                        "starts at {} but previous partition ended at {cursor} ({})",
                        r.start,
                        if r.start > cursor { "gap" } else { "overlap" }
                    ),
                    "partitions must tile the domain contiguously",
                );
            }
            if r.end < r.start {
                report.violation(
                    &self.name,
                    Invariant::PartitionCoverage,
                    format!("partition {i}"),
                    format!("inverted range {}..{}", r.start, r.end),
                    "partitions must tile the domain contiguously",
                );
            }
            cursor = r.end.max(cursor);
        }
        if cursor != self.total {
            report.violation(
                &self.name,
                Invariant::PartitionCoverage,
                "end",
                format!(
                    "partitions end at {cursor} but the domain has {} cells",
                    self.total
                ),
                "partitions must cover the whole domain",
            );
        }
    }
}

// ---------------------------------------------------------------------------
// Communication schedule
// ---------------------------------------------------------------------------

/// Alltoallv schedule consistency: what rank `s` plans to send to rank `q`
/// must be exactly what `q` plans to receive from `s` — same count, same
/// global rows, ascending, and owned by `s`.
pub struct ScheduleCheck {
    name: String,
    owners: Vec<Range<usize>>,
    sends: Vec<Vec<Vec<u32>>>,
    recvs: Vec<Vec<Vec<u32>>>,
}

impl ScheduleCheck {
    /// `owners[s]` is the global row range owned by rank `s`;
    /// `sends[s][q]` the global rows `s` sends to `q`; `recvs[q][s]` the
    /// global rows `q` expects from `s`.
    pub fn new(
        name: impl Into<String>,
        owners: Vec<Range<usize>>,
        sends: Vec<Vec<Vec<u32>>>,
        recvs: Vec<Vec<Vec<u32>>>,
    ) -> Self {
        ScheduleCheck {
            name: name.into(),
            owners,
            sends,
            recvs,
        }
    }
}

impl Check for ScheduleCheck {
    fn name(&self) -> String {
        self.name.clone()
    }

    fn run(&self, report: &mut Report) {
        let size = self.owners.len();
        if self.sends.len() != size
            || self.recvs.len() != size
            || self.sends.iter().any(|row| row.len() != size)
            || self.recvs.iter().any(|row| row.len() != size)
        {
            report.violation(
                &self.name,
                Invariant::ScheduleSymmetry,
                "shape",
                format!(
                    "{size} ranks but send table is {}x* and recv table {}x*",
                    self.sends.len(),
                    self.recvs.len()
                ),
                "rebuild the plans for a consistent communicator size",
            );
            return;
        }
        for s in 0..size {
            for q in 0..size {
                let send = &self.sends[s][q];
                let recv = &self.recvs[q][s];
                if send.len() != recv.len() {
                    report.violation(
                        &self.name,
                        Invariant::ScheduleSymmetry,
                        format!("pair {s}->{q}"),
                        format!(
                            "rank {s} sends {} rows but rank {q} expects {}",
                            send.len(),
                            recv.len()
                        ),
                        "alltoallv counts must match pairwise",
                    );
                    continue;
                }
                if send != recv {
                    report.violation(
                        &self.name,
                        Invariant::ScheduleRows,
                        format!("pair {s}->{q}"),
                        "sent rows differ from expected rows".to_string(),
                        "both sides must derive the schedule from the same partition",
                    );
                }
                if send.windows(2).any(|w| w[0] >= w[1]) {
                    report.violation(
                        &self.name,
                        Invariant::ScheduleRows,
                        format!("pair {s}->{q}"),
                        "row list is not strictly ascending".to_string(),
                        "keep schedules in Hilbert rank order",
                    );
                }
                let owner = &self.owners[s];
                if let Some(&row) = send
                    .iter()
                    .find(|&&r| (r as usize) < owner.start || (r as usize) >= owner.end)
                {
                    report.violation(
                        &self.name,
                        Invariant::ScheduleRows,
                        format!("pair {s}->{q}"),
                        format!(
                            "row {row} outside rank {s}'s owned range {}..{}",
                            owner.start, owner.end
                        ),
                        "ranks may only send rows they own",
                    );
                }
            }
        }
    }
}

// ---------------------------------------------------------------------------
// Ledger reconciliation
// ---------------------------------------------------------------------------

/// Observed communication bytes (the `xct-obs` `comm/bytes` matrix, fed by
/// the runtime's `CommLedger`) must reconcile with the schedule's predicted
/// data-plane traffic: for every off-diagonal pair the residual
/// `observed - predicted` must be non-negative, a multiple of the
/// collective granularity (allreduce control traffic), and *identical
/// across pairs* — collectives send the same bytes to every peer, so a
/// per-pair discrepancy pins a corrupted schedule or a misrecorded send.
pub struct LedgerCheck {
    name: String,
    size: usize,
    observed: Vec<u64>,
    predicted: Vec<u64>,
    collective_granularity: u64,
}

impl LedgerCheck {
    /// `observed` and `predicted` are row-major `size x size` byte
    /// matrices; `collective_granularity` is the bytes one collective call
    /// contributes per peer (8 for the f64 allreduce).
    pub fn new(
        name: impl Into<String>,
        size: usize,
        observed: Vec<u64>,
        predicted: Vec<u64>,
        collective_granularity: u64,
    ) -> Self {
        LedgerCheck {
            name: name.into(),
            size,
            observed,
            predicted,
            collective_granularity,
        }
    }
}

impl Check for LedgerCheck {
    fn name(&self) -> String {
        self.name.clone()
    }

    fn run(&self, report: &mut Report) {
        let n = self.size;
        if self.observed.len() != n * n || self.predicted.len() != n * n {
            report.violation(
                &self.name,
                Invariant::LedgerReconciliation,
                "shape",
                format!(
                    "expected {n}x{n} byte matrices, got {} observed / {} predicted entries",
                    self.observed.len(),
                    self.predicted.len()
                ),
                "export the comm matrix for the same communicator size",
            );
            return;
        }
        let mut residual: Option<u64> = None;
        for s in 0..n {
            for q in 0..n {
                let (obs, pred) = (self.observed[s * n + q], self.predicted[s * n + q]);
                if s == q {
                    if obs != 0 {
                        report.violation(
                            &self.name,
                            Invariant::LedgerReconciliation,
                            format!("pair {s}->{q}"),
                            format!("ledger records {obs} self-bytes; self-sends are local copies"),
                            "only off-rank traffic may be recorded",
                        );
                    }
                    continue;
                }
                if obs < pred {
                    report.violation(
                        &self.name,
                        Invariant::LedgerReconciliation,
                        format!("pair {s}->{q}"),
                        format!("observed {obs} bytes < predicted data-plane {pred} bytes"),
                        "the schedule predicts traffic the ledger never saw",
                    );
                    continue;
                }
                let r = obs - pred;
                if self.collective_granularity != 0 && r % self.collective_granularity != 0 {
                    report.violation(
                        &self.name,
                        Invariant::LedgerReconciliation,
                        format!("pair {s}->{q}"),
                        format!(
                            "residual {r} bytes is not a multiple of the {}-byte collective granularity",
                            self.collective_granularity
                        ),
                        "non-collective traffic must match the schedule exactly",
                    );
                    continue;
                }
                match residual {
                    None => residual = Some(r),
                    Some(r0) if r0 != r => {
                        report.violation(
                            &self.name,
                            Invariant::LedgerReconciliation,
                            format!("pair {s}->{q}"),
                            format!(
                                "collective residual {r} bytes differs from {r0} on earlier pairs"
                            ),
                            "collectives contribute uniformly; reconcile the schedule",
                        );
                    }
                    Some(_) => {}
                }
            }
        }
    }
}

/// Validate the raw arrays of an `xct-runtime` execution plan: partition
/// `bounds` must tile `0..rows` contiguously ([`Invariant::PartitionCoverage`]),
/// the `weights`/`assign` arrays must have the right lengths, endpoints,
/// and monotonicity ([`Invariant::ExecPlanShape`]), and no worker's
/// assigned weight may exceed the greedy prefix split's guarantee
/// `total/workers + max_unit + 1` ([`Invariant::ExecPlanBalance`]).
///
/// Takes raw arrays rather than the plan type so the mutation suite can
/// corrupt individual fields; production callers pass a plan's accessors
/// straight through.
pub struct ExecPlanCheck {
    name: String,
    rows: usize,
    bounds: Vec<usize>,
    weights: Vec<u64>,
    assign: Vec<usize>,
    max_unit: u64,
}

impl ExecPlanCheck {
    /// Check a plan over `rows` domain rows with partition `bounds`
    /// (length `parts + 1`), per-partition `weights` (length `parts`),
    /// worker partition runs `assign` (length `workers + 1`), and the
    /// plan's recorded maximum indivisible unit weight `max_unit`.
    pub fn new(
        name: impl Into<String>,
        rows: usize,
        bounds: Vec<usize>,
        weights: Vec<u64>,
        assign: Vec<usize>,
        max_unit: u64,
    ) -> Self {
        ExecPlanCheck {
            name: name.into(),
            rows,
            bounds,
            weights,
            assign,
            max_unit,
        }
    }
}

impl Check for ExecPlanCheck {
    fn name(&self) -> String {
        self.name.clone()
    }

    fn run(&self, report: &mut Report) {
        let before = report.len();
        // Partition bounds must tile the row domain — the same coverage
        // invariant the distributed domain partitions obey.
        if self.bounds.first() != Some(&0) {
            report.violation(
                &self.name,
                Invariant::PartitionCoverage,
                "bounds[0]",
                format!("partition bounds start at {:?}, not 0", self.bounds.first()),
                "bounds must begin at row 0",
            );
        }
        if self.bounds.last() != Some(&self.rows) {
            report.violation(
                &self.name,
                Invariant::PartitionCoverage,
                "bounds[last]",
                format!(
                    "partition bounds end at {:?} but the domain has {} rows",
                    self.bounds.last(),
                    self.rows
                ),
                "bounds must end at the domain size",
            );
        }
        for (i, w) in self.bounds.windows(2).enumerate() {
            if w[1] < w[0] {
                report.violation(
                    &self.name,
                    Invariant::PartitionCoverage,
                    format!("bounds[{}]", i + 1),
                    format!("bound {} precedes bound {}", w[1], w[0]),
                    "partition bounds must be non-decreasing",
                );
            }
        }
        let parts = self.bounds.len().saturating_sub(1);
        if self.weights.len() != parts {
            report.violation(
                &self.name,
                Invariant::ExecPlanShape,
                "weights",
                format!("{} weights for {parts} partitions", self.weights.len()),
                "one weight per partition",
            );
        }
        if self.assign.first() != Some(&0) || self.assign.last() != Some(&parts) {
            report.violation(
                &self.name,
                Invariant::ExecPlanShape,
                "assign",
                format!(
                    "worker runs span {:?}..{:?}, expected 0..{parts}",
                    self.assign.first(),
                    self.assign.last()
                ),
                "assign must cover every partition exactly once",
            );
        }
        for (w, run) in self.assign.windows(2).enumerate() {
            if run[1] < run[0] || run[1] > parts {
                report.violation(
                    &self.name,
                    Invariant::ExecPlanShape,
                    format!("assign[{}]", w + 1),
                    format!("worker {w} run {}..{} is invalid", run[0], run[1]),
                    "worker runs must be non-decreasing and within the partitions",
                );
            }
        }
        if report.len() > before {
            // Structure is broken; the balance bound below would read
            // through the corrupted arrays and mask the root cause.
            return;
        }
        let workers = self.assign.len().saturating_sub(1).max(1) as u64;
        let total: u64 = self.weights.iter().sum();
        let bound = total / workers + self.max_unit + 1;
        for (w, run) in self.assign.windows(2).enumerate() {
            let weight: u64 = self.weights[run[0]..run[1]].iter().sum();
            if weight > bound {
                report.violation(
                    &self.name,
                    Invariant::ExecPlanBalance,
                    format!("worker {w}"),
                    format!(
                        "assigned weight {weight} exceeds the balance bound {bound} \
                         (total {total} over {workers} workers, max unit {})",
                        self.max_unit
                    ),
                    "rebuild the plan with the greedy prefix split",
                );
            }
        }
    }
}

// ---------------------------------------------------------------------------
// Checkpoint consistency
// ---------------------------------------------------------------------------

/// One named checkpoint section to reconcile against the workspace it
/// must restore into: the length the solver expects and the length the
/// snapshot actually holds (`None` when the section is absent).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CheckpointSection {
    /// Section name inside the snapshot (e.g. `"x"`, `"resid"`).
    pub name: String,
    /// Vector length the resuming workspace requires.
    pub expected_len: usize,
    /// Vector length found in the snapshot, or `None` if missing.
    pub found_len: Option<usize>,
}

/// Validate a decoded checkpoint against the solve it is resuming:
/// the plan hash must match ([`Invariant::CheckpointHash`]), every
/// required section must exist with the workspace's vector length
/// ([`Invariant::CheckpointShape`]), and the iteration counter must be
/// consistent — within the run's iteration cap and equal to the number
/// of recorded iterations ([`Invariant::CheckpointMonotone`]).
///
/// Takes plain data rather than the snapshot type so the mutation suite
/// can corrupt individual fields and this crate stays free of runtime
/// dependencies; production callers pass a snapshot's accessors through.
pub struct CheckpointCheck {
    name: String,
    expected_plan_hash: u64,
    snapshot_plan_hash: u64,
    max_iters: u64,
    snapshot_iteration: u64,
    records_len: u64,
    batch: Option<(u64, u64)>,
    sections: Vec<CheckpointSection>,
}

impl CheckpointCheck {
    /// Reconcile a snapshot header against the resuming run: the hash of
    /// the plan being resumed, the snapshot's stored hash, the run's
    /// iteration cap, the snapshot's iteration counter, and how many
    /// per-iteration records the snapshot carries.
    pub fn new(
        name: impl Into<String>,
        expected_plan_hash: u64,
        snapshot_plan_hash: u64,
        max_iters: u64,
        snapshot_iteration: u64,
        records_len: u64,
    ) -> Self {
        CheckpointCheck {
            name: name.into(),
            expected_plan_hash,
            snapshot_plan_hash,
            max_iters,
            snapshot_iteration,
            records_len,
            batch: None,
            sections: Vec::new(),
        }
    }

    /// Reconcile the snapshot's batch width against the resuming
    /// configuration's (builder style). On mismatch the check reports
    /// [`Invariant::CheckpointBatch`] and skips the per-section shape
    /// checks — section lengths scale with the batch width, so
    /// comparing them across widths would only produce derivative
    /// noise.
    pub fn batch(mut self, expected: u64, found: u64) -> Self {
        self.batch = Some((expected, found));
        self
    }

    /// Require a section with the given workspace length (builder style).
    pub fn section(
        mut self,
        name: impl Into<String>,
        expected_len: usize,
        found_len: Option<usize>,
    ) -> Self {
        self.sections.push(CheckpointSection {
            name: name.into(),
            expected_len,
            found_len,
        });
        self
    }
}

impl Check for CheckpointCheck {
    fn name(&self) -> String {
        self.name.clone()
    }

    fn run(&self, report: &mut Report) {
        if self.snapshot_plan_hash != self.expected_plan_hash {
            report.violation(
                &self.name,
                Invariant::CheckpointHash,
                "header",
                format!(
                    "snapshot plan hash {:#018x} != resuming plan hash {:#018x}",
                    self.snapshot_plan_hash, self.expected_plan_hash
                ),
                "resume with the geometry/partitioning the checkpoint was taken under",
            );
        }
        let batch_mismatch = match self.batch {
            Some((expected, found)) if expected != found => {
                report.violation(
                    &self.name,
                    Invariant::CheckpointBatch,
                    "header",
                    format!("snapshot batch width {found} != resuming batch width {expected}"),
                    "resume with the batch width the checkpoint was taken under, \
                     or restart the batch from scratch",
                );
                true
            }
            _ => false,
        };
        // Section lengths are per-slice vectors times the batch width;
        // once the widths disagree every shape comparison would fail as
        // a consequence, so only the root cause is reported.
        if !batch_mismatch {
            for s in &self.sections {
                match s.found_len {
                    None => report.violation(
                        &self.name,
                        Invariant::CheckpointShape,
                        format!("section `{}`", s.name),
                        "required section is missing".to_string(),
                        "the snapshot was written by a different solver configuration",
                    ),
                    Some(found) if found != s.expected_len => report.violation(
                        &self.name,
                        Invariant::CheckpointShape,
                        format!("section `{}`", s.name),
                        format!(
                            "snapshot holds {found} elements, workspace requires {}",
                            s.expected_len
                        ),
                        "resume with the problem size the checkpoint was taken under",
                    ),
                    Some(_) => {}
                }
            }
        }
        if self.snapshot_iteration > self.max_iters {
            report.violation(
                &self.name,
                Invariant::CheckpointMonotone,
                "header",
                format!(
                    "snapshot iteration {} exceeds the run's cap {}",
                    self.snapshot_iteration, self.max_iters
                ),
                "the checkpoint is from a longer run; raise max_iters or discard it",
            );
        }
        if self.records_len != self.snapshot_iteration {
            report.violation(
                &self.name,
                Invariant::CheckpointMonotone,
                "records",
                format!(
                    "snapshot carries {} iteration records but claims iteration {}",
                    self.records_len, self.snapshot_iteration
                ),
                "the iteration counter and the record series must advance together",
            );
        }
    }
}

/// Validates that a lock-acquisition-order graph is acyclic.
///
/// The `xct-model` sync facade records directed `held → acquired` edges
/// between named lock classes (`xct_model::lockdep::edges`); a cycle in
/// that graph is a reachable ABBA deadlock even when no observed run ever
/// deadlocked. This check owns its edge list (names, not borrows) so the
/// graph can come from a live process, a metrics export, or a fixture.
pub struct LockOrderCheck {
    name: String,
    edges: Vec<(String, String)>,
}

impl LockOrderCheck {
    /// A lock-order check over `(held, acquired)` class-name pairs.
    pub fn new(name: impl Into<String>, edges: Vec<(String, String)>) -> Self {
        LockOrderCheck {
            name: name.into(),
            edges,
        }
    }

    /// The check over the process-global graph recorded by the facade.
    pub fn from_recorded(name: impl Into<String>) -> Self {
        LockOrderCheck::new(name, xct_model::lockdep::edges())
    }
}

impl Check for LockOrderCheck {
    fn name(&self) -> String {
        self.name.clone()
    }

    fn run(&self, report: &mut Report) {
        use std::collections::HashMap;
        // Intern the class names and build adjacency lists.
        fn intern<'e>(
            ids: &mut HashMap<&'e str, usize>,
            names: &mut Vec<&'e str>,
            adj: &mut Vec<Vec<usize>>,
            n: &'e str,
        ) -> usize {
            match ids.get(n) {
                Some(&i) => i,
                None => {
                    let i = names.len();
                    names.push(n);
                    ids.insert(n, i);
                    adj.push(Vec::new());
                    i
                }
            }
        }
        let mut ids: HashMap<&str, usize> = HashMap::new();
        let mut names: Vec<&str> = Vec::new();
        let mut adj: Vec<Vec<usize>> = Vec::new();
        for (held, acquired) in &self.edges {
            let h = intern(&mut ids, &mut names, &mut adj, held);
            let a = intern(&mut ids, &mut names, &mut adj, acquired);
            adj[h].push(a);
        }
        // Three-color DFS; on hitting a gray node, report the cycle path.
        fn dfs(
            v: usize,
            adj: &[Vec<usize>],
            color: &mut [u8],
            stack: &mut Vec<usize>,
            names: &[&str],
            check: &str,
            report: &mut Report,
        ) {
            color[v] = 1; // gray: on the current DFS path
            stack.push(v);
            for &w in &adj[v] {
                if color[w] == 1 {
                    // Cycle: the stack suffix from w back around to w.
                    let start = stack.iter().position(|&x| x == w).unwrap_or(0);
                    let mut path: Vec<&str> = stack[start..].iter().map(|&i| names[i]).collect();
                    path.push(names[w]);
                    report.violation(
                        check,
                        Invariant::LockOrderAcyclic,
                        path.join(" -> "),
                        "lock classes are acquired in conflicting orders; an \
                         ABBA deadlock is reachable",
                        "impose a total order on these lock classes (acquire \
                         in one fixed order) or split the offending class",
                    );
                } else if color[w] == 0 {
                    dfs(w, adj, color, stack, names, check, report);
                }
            }
            stack.pop();
            color[v] = 2; // black: fully explored
        }
        let mut color = vec![0u8; names.len()];
        let mut stack: Vec<usize> = Vec::new();
        for v in 0..names.len() {
            if color[v] == 0 {
                dfs(v, &adj, &mut color, &mut stack, &names, &self.name, report);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_csr() -> CsrMatrix {
        CsrMatrix::from_rows(
            6,
            &[
                vec![(0, 1.0), (3, 2.0), (5, 1.5)],
                vec![(1, -1.0)],
                vec![],
                vec![(0, 0.5), (2, 0.5), (4, 0.5)],
                vec![(2, 3.0), (1, 1.0)],
            ],
        )
    }

    #[test]
    fn valid_structures_pass() {
        let a = sample_csr();
        let at = a.transpose_scan();
        let buf = xct_sparse::BufferedCsr::from_csr(&a, 2, 4);
        let ell = EllMatrix::from_csr(&a, 2);
        let ord = Ordering2D::two_level_hilbert(5, 4, 2);
        let report = Checker::new()
            .with(CsrCheck::new("csr(A)", &a))
            .with(CsrCheck::new("csr(At)", &at))
            .with(TransposeCheck::new("pair(A,At)", &a, &at))
            .with(BufferedCheck::new("buffered(A)", &buf).with_source(&a))
            .with(EllCheck::new("ell(A)", &ell, &a, 2))
            .with(PermutationCheck::of_ordering("ordering", &ord))
            .run();
        assert!(report.is_ok(), "{report}");
    }

    #[test]
    fn transposed_csr_rows_are_sorted() {
        // The scan transpose sorts each transposed row by original row
        // index, so the sorted-columns option holds for it.
        let at = sample_csr().transpose_scan();
        let report = Checker::new()
            .with(CsrCheck::new("csr(At)", &at).require_sorted_columns())
            .run();
        assert!(report.is_ok(), "{report}");
    }

    #[test]
    fn schedule_and_partition_pass_on_consistent_tables() {
        let owners = vec![0..3, 3..6];
        let sends = vec![
            vec![vec![], vec![0, 2]], //
            vec![vec![4], vec![]],
        ];
        let recvs = vec![
            vec![vec![], vec![4]], //
            vec![vec![0, 2], vec![]],
        ];
        let report = Checker::new()
            .with(PartitionCheck::new("partition", 6, owners.clone()))
            .with(ScheduleCheck::new("schedule", owners, sends, recvs))
            .run();
        assert!(report.is_ok(), "{report}");
    }

    #[test]
    fn ledger_reconciles_with_uniform_collective_residual() {
        // 2 ranks: data-plane predicts 100/60; each pair also carries 3
        // allreduce calls x 8 bytes = 24 bytes of collective traffic.
        let observed = vec![0, 124, 84, 0];
        let predicted = vec![0, 100, 60, 0];
        let report = Checker::new()
            .with(LedgerCheck::new("ledger", 2, observed, predicted, 8))
            .run();
        assert!(report.is_ok(), "{report}");

        let skewed = vec![0, 124, 92, 0]; // 32 != 24 residual
        let report = Checker::new()
            .with(LedgerCheck::new(
                "ledger",
                2,
                skewed,
                vec![0, 100, 60, 0],
                8,
            ))
            .run();
        assert!(report.has(Invariant::LedgerReconciliation), "{report}");
    }

    #[test]
    fn checker_reports_names_in_order() {
        let a = sample_csr();
        let checker = Checker::new()
            .with(CsrCheck::new("first", &a))
            .with(CsrCheck::new("second", &a));
        assert_eq!(checker.names(), vec!["first", "second"]);
        assert_eq!(checker.len(), 2);
        assert!(!checker.is_empty());
    }

    fn owned(edges: &[(&str, &str)]) -> Vec<(String, String)> {
        edges
            .iter()
            .map(|(a, b)| (a.to_string(), b.to_string()))
            .collect()
    }

    #[test]
    fn acyclic_lock_order_passes() {
        // A diamond: strictly ordered, no cycle.
        let check = LockOrderCheck::new(
            "lockdep",
            owned(&[
                ("pool/state", "pool/dispatch"),
                ("pool/state", "comm/barrier"),
                ("pool/dispatch", "serve/job/state"),
                ("comm/barrier", "serve/job/state"),
            ]),
        );
        let mut report = Report::new();
        check.run(&mut report);
        assert!(report.is_ok(), "{report}");
    }

    #[test]
    fn abba_cycle_is_reported_with_its_path() {
        let check = LockOrderCheck::new("lockdep", owned(&[("a", "b"), ("b", "a"), ("a", "c")]));
        let mut report = Report::new();
        check.run(&mut report);
        assert_eq!(report.len(), 1, "exactly the one cycle: {report}");
        assert!(report.has(Invariant::LockOrderAcyclic));
        let text = report.to_string();
        assert!(
            text.contains("a -> b -> a") || text.contains("b -> a -> b"),
            "the cycle path must be spelled out: {text}"
        );
    }

    #[test]
    fn empty_lock_graph_is_trivially_acyclic() {
        let mut report = Report::new();
        LockOrderCheck::new("lockdep", Vec::new()).run(&mut report);
        assert!(report.is_ok());
    }
}

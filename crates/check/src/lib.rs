//! `xct-check`: static invariant analysis for MemXCT's memoized structures
//! plus the in-repo lint gate.
//!
//! MemXCT's premise is that correctness is *memoized up front*: projection
//! matrices, Hilbert permutations, stage buffers, and the communication
//! schedule are built once and then trusted by every SpMV iteration. A
//! single malformed structure therefore corrupts every subsequent
//! iteration with no diagnostic. This crate proves the invariants once, at
//! plan time:
//!
//! - [`Check`] / [`Checker`]: composable structural validation producing
//!   typed [`CheckViolation`]s (structure, invariant, location, fix) —
//!   never panics;
//! - concrete checks for every memoized artifact: [`CsrCheck`],
//!   [`TransposeCheck`], [`PermutationCheck`], [`BufferedCheck`],
//!   [`EllCheck`], [`PartitionCheck`], [`ScheduleCheck`], [`LedgerCheck`];
//! - [`lint`]: the repo-tuned source lint driver behind the `xct-lint`
//!   binary (narrowing casts, panics in public API paths, unsafe policy).
//!
//! Plan-level composition (wiring a whole `Operators` + distributed plan
//! set into a `Checker`) lives in the `memxct` crate
//! (`memxct::plan_check`), which depends on this one.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

mod checks;
pub mod lint;
mod violation;

pub use checks::{
    BufferedCheck, Check, Checker, CheckpointCheck, CheckpointSection, CsrCheck, EllCheck,
    ExecPlanCheck, LedgerCheck, LockOrderCheck, PartitionCheck, PermutationCheck, ScheduleCheck,
    TransposeCheck,
};
pub use violation::{CheckViolation, Invariant, Report};

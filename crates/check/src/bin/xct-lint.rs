//! The in-repo lint gate: `cargo run -p xct-check --bin xct-lint`.
//!
//! Scans the workspace sources for the three repo-tuned rules documented
//! in `xct_check::lint` and exits nonzero when any finding is not waived.
//! An optional argument overrides the workspace root (defaults to the
//! workspace this binary was built from).

#![forbid(unsafe_code)]

use std::path::{Path, PathBuf};
use std::process::ExitCode;

fn main() -> ExitCode {
    let arg = std::env::args().nth(1);
    if arg.as_deref() == Some("--list-rules") {
        // One rule name per line; CI asserts this count matches
        // `LintRule::ALL` so a rule cannot ship unlisted.
        for rule in xct_check::lint::LintRule::ALL {
            println!("{}", rule.name());
        }
        return ExitCode::SUCCESS;
    }
    let root = arg.map(PathBuf::from).unwrap_or_else(|| {
        // CARGO_MANIFEST_DIR is crates/check; the workspace root is two
        // levels up.
        Path::new(env!("CARGO_MANIFEST_DIR"))
            .ancestors()
            .nth(2)
            .expect("crates/check has a workspace root two levels up")
            .to_path_buf()
    });
    let findings = xct_check::lint::lint_tree(&root);
    if findings.is_empty() {
        println!("xct-lint: clean ({})", root.display());
        return ExitCode::SUCCESS;
    }
    eprintln!(
        "xct-lint: {} finding(s) in {}:",
        findings.len(),
        root.display()
    );
    for f in &findings {
        eprintln!("  {f}");
    }
    eprintln!(
        "waive intentional sites with `// lint: allow(<rule>) <why>` \
         (narrow-cast also accepts `// in-range: <why>`)"
    );
    ExitCode::FAILURE
}

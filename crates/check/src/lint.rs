//! In-repo source lint driver (`cargo run -p xct-check --bin xct-lint`).
//!
//! The workspace builds fully offline, so custom lints cannot come from
//! dylint or crates.io plugins; instead this module implements a small,
//! repo-tuned source scanner with three rules:
//!
//! - **narrow-cast** — forbid `as u16` / `as u32` narrowing casts. The
//!   blessed exception is the `BufferIndex` helpers in
//!   `crates/sparse/src/buffered.rs`, whose unchecked path is only reached
//!   after `try_from_usize` validated the plan. Any other site must carry a
//!   `// in-range: <why>` (or `// lint: allow(narrow-cast) <why>`) waiver
//!   stating the range argument.
//! - **no-panic** — forbid `unwrap()` / `expect(` / `panic!` / panicking
//!   asserts in public API paths (`crates/memxct/src`, `crates/cli/src`),
//!   continuing the `BuildError` migration. `debug_assert!` is allowed.
//!   Waive with `// lint: allow(no-panic) <why>`.
//! - **unsafe** — every crate root must declare `#![forbid(unsafe_code)]`
//!   unless the crate actually contains `unsafe`, in which case each
//!   `unsafe` site must carry a `// SAFETY:` comment on or just above it.
//! - **sync-facade** — forbid raw `std::sync::{Mutex, Condvar, RwLock}`
//!   (and the `parking_lot` shim) in the model-checked crates
//!   (`crates/runtime/src`, `crates/serve/src`): concurrency there must go
//!   through the `xct_model::sync` facade so the schedule explorer sees
//!   every preemption point. Waive with
//!   `// lint: allow(sync-facade) <why>`.
//!
//! The scanner strips string literals and comments before matching (so doc
//! examples and messages never fire a rule) and skips `#[cfg(test)]`
//! modules, `tests/`, `benches/`, and `target/` entirely. Waivers are read
//! from the raw line or the line above the finding.

use std::fmt;
use std::path::{Path, PathBuf};

/// Which lint rule fired.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum LintRule {
    /// Unchecked `as u16` / `as u32` narrowing cast.
    NarrowCast,
    /// `unwrap()` / `expect()` / panicking assert in a public API path.
    NoPanic,
    /// Undeclared `unsafe` policy (missing `#![forbid(unsafe_code)]` or
    /// an undocumented `unsafe` site).
    UnsafeCode,
    /// Raw `std::sync` / `parking_lot` primitive in a crate that must use
    /// the `xct_model::sync` facade.
    SyncFacade,
}

impl LintRule {
    /// Every rule the scanner knows, in a stable order. Mirrors
    /// `Invariant::ALL`: coverage tests diff against this list so a new
    /// rule cannot ship without a firing fixture, and CI asserts the
    /// `--list-rules` count matches.
    pub const ALL: &'static [LintRule] = &[
        LintRule::NarrowCast,
        LintRule::NoPanic,
        LintRule::UnsafeCode,
        LintRule::SyncFacade,
    ];

    /// The name used in `// lint: allow(<name>)` waivers.
    pub fn name(self) -> &'static str {
        match self {
            LintRule::NarrowCast => "narrow-cast",
            LintRule::NoPanic => "no-panic",
            LintRule::UnsafeCode => "unsafe",
            LintRule::SyncFacade => "sync-facade",
        }
    }
}

/// One lint finding: file, 1-based line, rule, and message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LintFinding {
    /// Workspace-relative path.
    pub file: String,
    /// 1-based line number (0 for whole-file findings).
    pub line: usize,
    /// The rule that fired.
    pub rule: LintRule,
    /// What was found and how to fix or waive it.
    pub message: String,
}

impl fmt::Display for LintFinding {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}:{}: [{}] {}",
            self.file,
            self.line,
            self.rule.name(),
            self.message
        )
    }
}

/// Strip comments and string/char literals from one line of source,
/// carrying block-comment state across lines. Stripped spans become
/// spaces so byte offsets are preserved.
fn strip_code(line: &str, in_block_comment: &mut bool) -> String {
    let bytes = line.as_bytes();
    let mut out = vec![b' '; bytes.len()];
    let mut i = 0;
    let mut in_str = false;
    while i < bytes.len() {
        if *in_block_comment {
            if bytes[i] == b'*' && i + 1 < bytes.len() && bytes[i + 1] == b'/' {
                *in_block_comment = false;
                i += 2;
            } else {
                i += 1;
            }
            continue;
        }
        if in_str {
            match bytes[i] {
                b'\\' => i += 2, // skip the escaped char
                b'"' => {
                    in_str = false;
                    i += 1;
                }
                _ => i += 1,
            }
            continue;
        }
        match bytes[i] {
            b'/' if i + 1 < bytes.len() && bytes[i + 1] == b'/' => break, // line comment
            b'/' if i + 1 < bytes.len() && bytes[i + 1] == b'*' => {
                *in_block_comment = true;
                i += 2;
            }
            b'"' => {
                in_str = true;
                i += 1;
            }
            b'\'' => {
                // Char literal ('x', '\n', '\'') vs lifetime ('a). A char
                // literal closes with a quote within a few bytes.
                let lit_len = if i + 2 < bytes.len() && bytes[i + 1] == b'\\' {
                    // escaped char; find the closing quote
                    bytes[i + 2..]
                        .iter()
                        .position(|&b| b == b'\'')
                        .map(|p| p + 3)
                } else if i + 2 < bytes.len() && bytes[i + 2] == b'\'' {
                    Some(3)
                } else {
                    None
                };
                match lit_len {
                    Some(len) => i += len, // strip the literal
                    None => {
                        out[i] = bytes[i]; // lifetime tick: keep it
                        i += 1;
                    }
                }
            }
            b => {
                out[i] = b;
                i += 1;
            }
        }
    }
    String::from_utf8(out).unwrap_or_default()
}

/// Find `token` in `code` such that the previous byte is not part of an
/// identifier (so `assert!` does not match inside `debug_assert!`).
fn has_token(code: &str, token: &str) -> bool {
    // Only identifier-leading tokens need a boundary check on the left
    // (`.unwrap()` is already delimited by its dot).
    let first = token.as_bytes()[0];
    let need_boundary = first.is_ascii_alphanumeric() || first == b'_';
    let last = *token.as_bytes().last().unwrap_or(&b' ');
    let tail_boundary = last.is_ascii_alphanumeric() || last == b'_';
    let mut start = 0;
    while let Some(p) = code[start..].find(token) {
        let at = start + p;
        let after = at + token.len();
        let prev_ok = !need_boundary
            || at == 0
            || !code.as_bytes()[at - 1].is_ascii_alphanumeric() && code.as_bytes()[at - 1] != b'_';
        let next_ok = !tail_boundary
            || after >= code.len()
            || !code.as_bytes()[after].is_ascii_alphanumeric() && code.as_bytes()[after] != b'_';
        if prev_ok && next_ok {
            return true;
        }
        start = at + 1;
    }
    false
}

/// True when a narrowing `as u16` / `as u32` cast appears: the `as`
/// keyword followed by the narrow target type as a full token.
fn has_narrow_cast(code: &str) -> bool {
    for target in ["u16", "u32"] {
        let mut start = 0;
        while let Some(p) = code[start..].find(target) {
            let at = start + p;
            let after = at + target.len();
            let after_ok = after >= code.len()
                || !code.as_bytes()[after].is_ascii_alphanumeric()
                    && code.as_bytes()[after] != b'_';
            // Preceded by the `as` keyword?
            let before = code[..at].trim_end();
            if after_ok && before.ends_with("as") {
                let b = before.as_bytes();
                if b.len() == 2 || !b[b.len() - 3].is_ascii_alphanumeric() && b[b.len() - 3] != b'_'
                {
                    return true;
                }
            }
            start = at + 1;
        }
    }
    false
}

/// True when line `i` (0-based) of `raw_lines` carries a waiver for
/// `rule`, on the same line or the immediately preceding one.
fn waived(raw_lines: &[&str], i: usize, rule: LintRule) -> bool {
    let allow = format!("lint: allow({})", rule.name());
    let mut candidates = vec![raw_lines[i]];
    if i > 0 {
        candidates.push(raw_lines[i - 1]);
    }
    candidates
        .iter()
        .any(|l| l.contains(&allow) || (rule == LintRule::NarrowCast && l.contains("in-range:")))
}

/// True when an `unsafe` site at line `i` is documented with a
/// `// SAFETY:` comment on the same line or within the 3 lines above.
fn safety_documented(raw_lines: &[&str], i: usize) -> bool {
    (i.saturating_sub(3)..=i).any(|j| raw_lines[j].contains("SAFETY:"))
}

/// Lint one file's contents under the given rules. `relpath` is only used
/// to label findings.
pub fn lint_file(relpath: &str, content: &str, rules: &[LintRule]) -> Vec<LintFinding> {
    let raw_lines: Vec<&str> = content.lines().collect();
    let mut findings = Vec::new();
    let mut in_block_comment = false;
    let mut depth: i64 = 0;
    let mut skip_depth: Option<i64> = None;
    let mut pending_cfg_test = false;

    for (i, raw) in raw_lines.iter().enumerate() {
        let code = strip_code(raw, &mut in_block_comment);
        let trimmed = code.trim();

        // Track `#[cfg(test)] mod ... { ... }` regions and skip them.
        if skip_depth.is_none() {
            if pending_cfg_test && has_token(&code, "mod") && code.contains('{') {
                skip_depth = Some(depth);
                pending_cfg_test = false;
            } else if trimmed.contains("#[cfg(test)]") {
                pending_cfg_test = true;
            } else if !trimmed.is_empty() && !trimmed.starts_with("#[") {
                pending_cfg_test = false;
            }
        }
        let active = skip_depth.is_none();

        if active {
            for &rule in rules {
                let fired = match rule {
                    LintRule::NarrowCast => has_narrow_cast(&code),
                    LintRule::NoPanic => {
                        has_token(&code, ".unwrap()")
                            || has_token(&code, ".expect(")
                            || has_token(&code, "panic!")
                            || has_token(&code, "unreachable!")
                            || has_token(&code, "todo!")
                            || has_token(&code, "unimplemented!")
                            || has_token(&code, "assert!")
                            || has_token(&code, "assert_eq!")
                            || has_token(&code, "assert_ne!")
                    }
                    LintRule::UnsafeCode => {
                        has_token(&code, "unsafe") && !safety_documented(&raw_lines, i)
                    }
                    LintRule::SyncFacade => {
                        has_token(&code, "parking_lot")
                            || (code.contains("std::sync")
                                && (code.contains("Mutex")
                                    || code.contains("Condvar")
                                    || code.contains("RwLock")))
                    }
                };
                if fired && !waived(&raw_lines, i, rule) {
                    let message = match rule {
                        LintRule::NarrowCast => "unchecked narrowing cast; use a checked \
                            conversion (e.g. BufferIndex::try_from_usize) or waive with \
                            `// in-range: <why>`"
                            .to_string(),
                        LintRule::NoPanic => "panicking call in a public API path; return a \
                            typed error (BuildError/LayoutError) or waive with \
                            `// lint: allow(no-panic) <why>`"
                            .to_string(),
                        LintRule::UnsafeCode => {
                            "`unsafe` without a `// SAFETY:` comment".to_string()
                        }
                        LintRule::SyncFacade => "raw sync primitive in a model-checked crate; \
                            use the xct_model::sync facade so the schedule explorer sees this \
                            lock, or waive with `// lint: allow(sync-facade) <why>`"
                            .to_string(),
                    };
                    findings.push(LintFinding {
                        file: relpath.to_string(),
                        line: i + 1,
                        rule,
                        message,
                    });
                }
            }
        }

        depth += code.matches('{').count() as i64 - code.matches('}').count() as i64;
        if let Some(d) = skip_depth {
            if depth <= d {
                skip_depth = None;
            }
        }
    }
    findings
}

/// Which rules apply to a workspace-relative path, or `None` to skip the
/// file entirely.
fn rules_for(rel: &str) -> Option<Vec<LintRule>> {
    let parts: Vec<&str> = rel.split('/').collect();
    if parts
        .iter()
        .any(|p| *p == "target" || *p == "tests" || *p == "benches")
    {
        return None;
    }
    if parts.first() == Some(&"shims") {
        // Vendored shims: only the unsafe policy applies.
        return Some(vec![LintRule::UnsafeCode]);
    }
    let public_api = rel.starts_with("crates/memxct/src")
        || rel.starts_with("crates/cli/src")
        || rel.starts_with("crates/serve/src");
    let mut rules = vec![LintRule::NarrowCast, LintRule::UnsafeCode];
    if public_api {
        rules.push(LintRule::NoPanic);
    }
    // The model-checked crates must route all locking through the
    // xct_model::sync facade (crates/model itself IS the facade).
    if rel.starts_with("crates/runtime/src") || rel.starts_with("crates/serve/src") {
        rules.push(LintRule::SyncFacade);
    }
    Some(rules)
}

fn walk(dir: &Path, out: &mut Vec<PathBuf>) {
    let Ok(entries) = std::fs::read_dir(dir) else {
        return;
    };
    let mut entries: Vec<_> = entries.flatten().map(|e| e.path()).collect();
    entries.sort();
    for path in entries {
        let name = path.file_name().and_then(|n| n.to_str()).unwrap_or("");
        if path.is_dir() {
            if name == "target" || name == "tests" || name == "benches" {
                continue;
            }
            walk(&path, out);
        } else if name.ends_with(".rs") {
            out.push(path);
        }
    }
}

/// Lint the whole workspace rooted at `root`. Scans `crates/`, `shims/`,
/// `src/`, and `examples/`; returns all findings sorted by path.
pub fn lint_tree(root: &Path) -> Vec<LintFinding> {
    let mut files = Vec::new();
    for top in ["crates", "shims", "src", "examples"] {
        walk(&root.join(top), &mut files);
    }
    let mut findings = Vec::new();
    let mut crate_infos: Vec<(String, bool, bool)> = Vec::new(); // (root file, has_forbid, crate_has_unsafe)

    // Group files by crate directory for the forbid(unsafe_code) rule.
    let mut crate_unsafe: std::collections::HashMap<String, bool> =
        std::collections::HashMap::new();
    let mut contents: Vec<(String, String)> = Vec::new();
    for path in &files {
        let rel = path
            .strip_prefix(root)
            .unwrap_or(path)
            .to_string_lossy()
            .replace('\\', "/");
        let Ok(content) = std::fs::read_to_string(path) else {
            continue;
        };
        if let Some(crate_dir) = crate_dir_of(&rel) {
            let mut in_block = false;
            let has_unsafe = content
                .lines()
                .any(|l| has_token(&strip_code(l, &mut in_block), "unsafe"));
            let entry = crate_unsafe.entry(crate_dir).or_insert(false);
            *entry = *entry || has_unsafe;
        }
        contents.push((rel, content));
    }

    for (rel, content) in &contents {
        if let Some(rules) = rules_for(rel) {
            findings.extend(lint_file(rel, content, &rules));
        }
        // Crate roots must declare the unsafe policy.
        if rel.ends_with("src/lib.rs") || rel.ends_with("src/main.rs") {
            let crate_dir = crate_dir_of(rel).unwrap_or_default();
            let has_forbid = content.contains("#![forbid(unsafe_code)]");
            let has_unsafe = crate_unsafe.get(&crate_dir).copied().unwrap_or(false);
            crate_infos.push((rel.clone(), has_forbid, has_unsafe));
        }
    }

    for (rel, has_forbid, has_unsafe) in crate_infos {
        if !has_forbid && !has_unsafe {
            findings.push(LintFinding {
                file: rel,
                line: 0,
                rule: LintRule::UnsafeCode,
                message: "crate uses no `unsafe`; declare `#![forbid(unsafe_code)]` at the \
                    crate root"
                    .to_string(),
            });
        }
    }

    findings.sort_by(|a, b| (&a.file, a.line).cmp(&(&b.file, b.line)));
    findings
}

/// The `crates/<name>` / `shims/<name>` prefix a path belongs to, or
/// `"."` for the workspace-root `src/`.
fn crate_dir_of(rel: &str) -> Option<String> {
    let parts: Vec<&str> = rel.split('/').collect();
    match parts.first() {
        Some(&"crates") | Some(&"shims") if parts.len() > 2 => {
            Some(format!("{}/{}", parts[0], parts[1]))
        }
        Some(&"src") => Some(".".to_string()),
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const ALL: &[LintRule] = LintRule::ALL;

    /// One minimal mutation fixture per rule: a source snippet whose only
    /// defect is that rule's violation. Coverage is diffed against
    /// [`LintRule::ALL`], so adding a rule without a fixture fails here —
    /// the same closed-loop discipline as `Invariant::ALL`.
    const FIXTURES: &[(LintRule, &str)] = &[
        (LintRule::NarrowCast, "let a = b as u32;\n"),
        (LintRule::NoPanic, "pub fn f() { x.unwrap(); }\n"),
        (LintRule::UnsafeCode, "pub fn f() { unsafe { g() } }\n"),
        (LintRule::SyncFacade, "use std::sync::Mutex;\n"),
    ];

    #[test]
    fn every_rule_fires_exactly_once_on_its_fixture() {
        let covered: std::collections::HashSet<LintRule> =
            FIXTURES.iter().map(|(r, _)| *r).collect();
        let missing: Vec<&LintRule> = LintRule::ALL
            .iter()
            .filter(|r| !covered.contains(r))
            .collect();
        assert!(
            missing.is_empty(),
            "rules without a mutation fixture: {missing:?}"
        );
        assert_eq!(
            FIXTURES.len(),
            LintRule::ALL.len(),
            "one fixture per rule, no extras"
        );
        for (rule, src) in FIXTURES {
            // The fixture trips its own rule exactly once...
            let f = lint_file("fixture.rs", src, &[*rule]);
            assert_eq!(f.len(), 1, "{rule:?} must fire once on its fixture: {f:?}");
            assert_eq!(f[0].rule, *rule);
            // ...and the named waiver silences it.
            let waived_src = format!("// lint: allow({}) fixture\n{}", rule.name(), src);
            let f = lint_file("fixture.rs", &waived_src, &[*rule]);
            assert!(f.is_empty(), "{rule:?} waiver must silence it: {f:?}");
        }
    }

    #[test]
    fn sync_facade_fires_on_raw_primitives_not_the_facade() {
        for bad in [
            "use std::sync::{Arc, Mutex};\n",
            "use std::sync::Condvar;\n",
            "let l: std::sync::RwLock<u8> = std::sync::RwLock::new(0);\n",
            "use parking_lot::Mutex;\n",
        ] {
            let f = lint_file("x.rs", bad, &[LintRule::SyncFacade]);
            assert_eq!(f.len(), 1, "must fire on: {bad}");
        }
        for good in [
            "use xct_model::sync::{Arc, Condvar, Mutex};\n",
            "use std::sync::atomic::{AtomicBool, Ordering};\n",
            "use std::sync::Arc;\n",
            "use std::sync::mpsc;\n",
        ] {
            let f = lint_file("x.rs", good, &[LintRule::SyncFacade]);
            assert!(f.is_empty(), "must not fire on: {good} -> {f:?}");
        }
    }

    #[test]
    fn sync_facade_scopes_to_model_checked_crates() {
        let fire = ["crates/runtime/src/pool.rs", "crates/serve/src/job.rs"];
        let skip = [
            "crates/model/src/sync.rs",
            "crates/memxct/src/lib.rs",
            "crates/obs/src/registry.rs",
        ];
        for rel in fire {
            let rules = rules_for(rel).expect("scanned");
            assert!(rules.contains(&LintRule::SyncFacade), "{rel}: {rules:?}");
        }
        for rel in skip {
            let rules = rules_for(rel).expect("scanned");
            assert!(!rules.contains(&LintRule::SyncFacade), "{rel}: {rules:?}");
        }
    }

    #[test]
    fn narrow_cast_fires_and_waives() {
        let f = lint_file("x.rs", "let a = b as u32;\n", &[LintRule::NarrowCast]);
        assert_eq!(f.len(), 1, "{f:?}");
        assert_eq!(f[0].rule, LintRule::NarrowCast);
        assert_eq!(f[0].line, 1);

        let f = lint_file(
            "x.rs",
            "let a = b as u32; // in-range: b < ncols which fits u32\n",
            &[LintRule::NarrowCast],
        );
        assert!(f.is_empty(), "{f:?}");

        let f = lint_file(
            "x.rs",
            "// lint: allow(narrow-cast) blessed helper\nlet a = b as u16;\n",
            &[LintRule::NarrowCast],
        );
        assert!(f.is_empty(), "{f:?}");
    }

    #[test]
    fn narrow_cast_needs_the_as_keyword() {
        // Mentions of the type alone are fine.
        let f = lint_file(
            "x.rs",
            "let a: u32 = 7;\nfn f(x: u16) {}\n",
            &[LintRule::NarrowCast],
        );
        assert!(f.is_empty(), "{f:?}");
        // `as usize` (widening) is fine.
        let f = lint_file("x.rs", "let a = b as usize;\n", &[LintRule::NarrowCast]);
        assert!(f.is_empty(), "{f:?}");
    }

    #[test]
    fn no_panic_fires_on_unwrap_but_not_debug_assert() {
        let src = "pub fn f() {\n    x.unwrap();\n    debug_assert!(a < b);\n}\n";
        let f = lint_file("x.rs", src, &[LintRule::NoPanic]);
        assert_eq!(f.len(), 1, "{f:?}");
        assert_eq!(f[0].line, 2);

        let src = "assert_eq!(a, b);\n";
        let f = lint_file("x.rs", src, &[LintRule::NoPanic]);
        assert_eq!(f.len(), 1, "{f:?}");

        let src = "x.unwrap(); // lint: allow(no-panic) documented panicking shim\n";
        let f = lint_file("x.rs", src, &[LintRule::NoPanic]);
        assert!(f.is_empty(), "{f:?}");
    }

    #[test]
    fn strings_comments_and_test_modules_are_skipped() {
        let src = r#"
pub fn f() {
    let msg = "do not unwrap() here or panic!";
    // a comment mentioning x as u32 and unwrap()
    /* block comment: panic! as u16 */
}
#[cfg(test)]
mod tests {
    fn g() {
        oops.unwrap();
        let a = b as u32;
    }
}
"#;
        let f = lint_file("x.rs", src, ALL);
        assert!(f.is_empty(), "{f:?}");
    }

    #[test]
    fn unsafe_needs_safety_comment() {
        let src = "pub fn f() {\n    unsafe { g() }\n}\n";
        let f = lint_file("x.rs", src, &[LintRule::UnsafeCode]);
        assert_eq!(f.len(), 1, "{f:?}");

        let src = "pub fn f() {\n    // SAFETY: g has no preconditions\n    unsafe { g() }\n}\n";
        let f = lint_file("x.rs", src, &[LintRule::UnsafeCode]);
        assert!(f.is_empty(), "{f:?}");
    }

    #[test]
    fn doc_examples_do_not_fire() {
        let src =
            "/// ```\n/// let x = v.unwrap();\n/// let y = x as u32;\n/// ```\npub fn f() {}\n";
        let f = lint_file("x.rs", src, ALL);
        assert!(f.is_empty(), "{f:?}");
    }

    #[test]
    fn char_literals_and_lifetimes_survive_stripping() {
        let mut in_block = false;
        let code = strip_code("if c == '\"' { x } else { y }", &mut in_block);
        assert!(!code.contains('"'));
        let code = strip_code("fn f<'a>(x: &'a str) -> &'a str { x }", &mut in_block);
        assert!(code.contains("'a"), "{code}");
    }

    #[test]
    fn whole_workspace_is_clean() {
        // The repository's own acceptance criterion: `xct-lint` passes on
        // the tree. CARGO_MANIFEST_DIR = crates/check, two levels down.
        let root = Path::new(env!("CARGO_MANIFEST_DIR"))
            .ancestors()
            .nth(2)
            .expect("workspace root");
        let findings = lint_tree(root);
        assert!(
            findings.is_empty(),
            "xct-lint found {} issue(s):\n{}",
            findings.len(),
            findings
                .iter()
                .map(|f| f.to_string())
                .collect::<Vec<_>>()
                .join("\n")
        );
    }
}

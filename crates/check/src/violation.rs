//! Typed check violations and the report they accumulate into.
//!
//! MemXCT memoizes every structure a solver touches; a malformed structure
//! therefore corrupts *every* iteration. Violations are data, not panics:
//! the caller decides whether to print them, abort a build
//! (`ReconstructorBuilder::validate_plan`), or exit nonzero (`memxct-cli
//! check`).

use std::fmt;

/// The invariant class a violation belongs to. Mutation tests corrupt one
/// field of a valid plan and assert the checker reports *exactly* this
/// class, so each class must be narrow enough to pinpoint a corruption.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[non_exhaustive]
pub enum Invariant {
    /// CSR arrays have inconsistent lengths / endpoints.
    RowPtrShape,
    /// `rowptr` is not monotonically non-decreasing.
    RowPtrMonotone,
    /// A column index is out of `0..ncols`.
    ColumnBounds,
    /// Columns within a row are not strictly ascending (only enforced on
    /// structures that guarantee sortedness — MemXCT's projection rows
    /// keep ray-traversal order and are exempt).
    ColumnSorted,
    /// A row stores the same column twice.
    DuplicateColumn,
    /// A stored value is NaN or infinite.
    ValueFinite,
    /// Transpose-pair shapes do not line up (`At` must be `ncols × nrows`
    /// of `A` with the same nnz).
    TransposeShape,
    /// `At` is not the order-preserving scan transpose of `A`.
    TransposeEntries,
    /// An ordering's `rank_of`/`pos_of` tables are not inverse bijections.
    PermutationBijection,
    /// Buffered layout disagrees with its CSR source's shape, or its
    /// array lengths are internally inconsistent.
    BufferedShape,
    /// Per-partition stage ranges (`partdispl`) are malformed.
    PartitionDispl,
    /// A stage's buffer footprint exceeds the buffer capacity, or the
    /// capacity exceeds what the index width can address (§3.3.5).
    StageFootprint,
    /// A stage map is not strictly ascending within its partition
    /// footprint (ascending rank order *is* Hilbert traversal order).
    StageMapSorted,
    /// A stage map gathers a column outside the input domain.
    StageMapBounds,
    /// A buffer-local index points outside its stage's occupied footprint
    /// — the silent-truncation bug class `BufferIndex::try_from_usize`
    /// guards against.
    BufferLocalBounds,
    /// The buffered layout does not reproduce the source rows' entries.
    BufferedEntries,
    /// ELL partition structure disagrees with its CSR source.
    EllShape,
    /// An ELL padding slot is not the (column 0, value 0) sentinel.
    EllPadding,
    /// ELL payload entries do not match the CSR source in order.
    EllEntries,
    /// Partition ranges do not cover the domain contiguously and
    /// disjointly.
    PartitionCoverage,
    /// Alltoallv send/recv counts do not match pairwise.
    ScheduleSymmetry,
    /// A schedule's row lists disagree in content, order, or ownership.
    ScheduleRows,
    /// Observed communication bytes do not reconcile with the schedule's
    /// predicted data-plane traffic.
    LedgerReconciliation,
    /// An execution plan's structural arrays are malformed: bounds/assign
    /// endpoints, monotonicity, or length relations are broken.
    ExecPlanShape,
    /// A worker's assigned weight exceeds the greedy prefix split's
    /// guaranteed bound (`total/workers + max_unit + 1`) — the static
    /// partitioning failed to balance the load.
    ExecPlanBalance,
    /// A checkpoint's plan hash does not match the plan being resumed —
    /// the snapshot was taken under different geometry/partitioning.
    CheckpointHash,
    /// A checkpoint section is missing or its vector length disagrees
    /// with the workspace it must restore into.
    CheckpointShape,
    /// A checkpoint's iteration counter is inconsistent: past the run's
    /// iteration cap, or disagreeing with the recorded-iteration count.
    CheckpointMonotone,
    /// A checkpoint's batch width disagrees with the configuration
    /// resuming from it — per-slice sections cannot be mapped onto the
    /// workspace.
    CheckpointBatch,
    /// The lock-acquisition-order graph recorded by the `xct-model` sync
    /// facade contains a cycle — an ABBA deadlock is reachable even if no
    /// observed run ever deadlocked.
    LockOrderAcyclic,
}

impl Invariant {
    /// Every invariant class, in declaration order. The mutation-test
    /// suite iterates this to prove each class has a corruption that
    /// triggers it and nothing else.
    pub const ALL: &'static [Invariant] = &[
        Invariant::RowPtrShape,
        Invariant::RowPtrMonotone,
        Invariant::ColumnBounds,
        Invariant::ColumnSorted,
        Invariant::DuplicateColumn,
        Invariant::ValueFinite,
        Invariant::TransposeShape,
        Invariant::TransposeEntries,
        Invariant::PermutationBijection,
        Invariant::BufferedShape,
        Invariant::PartitionDispl,
        Invariant::StageFootprint,
        Invariant::StageMapSorted,
        Invariant::StageMapBounds,
        Invariant::BufferLocalBounds,
        Invariant::BufferedEntries,
        Invariant::EllShape,
        Invariant::EllPadding,
        Invariant::EllEntries,
        Invariant::PartitionCoverage,
        Invariant::ScheduleSymmetry,
        Invariant::ScheduleRows,
        Invariant::LedgerReconciliation,
        Invariant::ExecPlanShape,
        Invariant::ExecPlanBalance,
        Invariant::CheckpointHash,
        Invariant::CheckpointShape,
        Invariant::CheckpointMonotone,
        Invariant::CheckpointBatch,
        Invariant::LockOrderAcyclic,
    ];
}

impl fmt::Display for Invariant {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        // The debug name doubles as the stable display name; CI greps for
        // `CheckViolation[...]` lines.
        write!(f, "{self:?}")
    }
}

/// One violated invariant: which structure, which invariant, where, and
/// what to do about it.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CheckViolation {
    /// The memoized structure the violation was found in (e.g. `csr(A)`).
    pub structure: String,
    /// The invariant class.
    pub invariant: Invariant,
    /// Where inside the structure (row / stage / rank pair ...).
    pub location: String,
    /// What was observed.
    pub detail: String,
    /// Suggested fix.
    pub fix: String,
}

impl fmt::Display for CheckViolation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "CheckViolation[{}] {} at {}: {} (fix: {})",
            self.invariant, self.structure, self.location, self.detail, self.fix
        )
    }
}

/// Accumulated violations from one or more checks.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Report {
    violations: Vec<CheckViolation>,
}

impl Report {
    /// An empty report.
    pub fn new() -> Self {
        Report::default()
    }

    /// Record a violation.
    pub fn push(&mut self, v: CheckViolation) {
        self.violations.push(v);
    }

    /// Convenience constructor-and-push.
    pub fn violation(
        &mut self,
        structure: &str,
        invariant: Invariant,
        location: impl Into<String>,
        detail: impl Into<String>,
        fix: impl Into<String>,
    ) {
        self.push(CheckViolation {
            structure: structure.to_string(),
            invariant,
            location: location.into(),
            detail: detail.into(),
            fix: fix.into(),
        });
    }

    /// True when no invariant was violated.
    pub fn is_ok(&self) -> bool {
        self.violations.is_empty()
    }

    /// Number of violations.
    pub fn len(&self) -> usize {
        self.violations.len()
    }

    /// True when the report is empty (alias of [`Report::is_ok`]).
    pub fn is_empty(&self) -> bool {
        self.violations.is_empty()
    }

    /// True when some violation belongs to the given invariant class.
    pub fn has(&self, invariant: Invariant) -> bool {
        self.violations.iter().any(|v| v.invariant == invariant)
    }

    /// All violations, in discovery order.
    pub fn violations(&self) -> &[CheckViolation] {
        &self.violations
    }

    /// The distinct invariant classes violated, in discovery order.
    pub fn invariant_classes(&self) -> Vec<Invariant> {
        let mut out: Vec<Invariant> = Vec::new();
        for v in &self.violations {
            if !out.contains(&v.invariant) {
                out.push(v.invariant);
            }
        }
        out
    }
}

impl fmt::Display for Report {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.violations.is_empty() {
            return write!(f, "all invariants hold");
        }
        writeln!(f, "{} invariant violation(s):", self.violations.len())?;
        for v in &self.violations {
            writeln!(f, "  {v}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_carries_the_grep_token() {
        let mut r = Report::new();
        r.violation(
            "csr(A)",
            Invariant::RowPtrMonotone,
            "row 3",
            "rowptr[3]=7 > rowptr[4]=5",
            "rebuild the matrix with CsrMatrix::from_raw",
        );
        let s = r.to_string();
        assert!(s.contains("CheckViolation[RowPtrMonotone]"), "{s}");
        assert!(s.contains("csr(A) at row 3"), "{s}");
        assert!(r.has(Invariant::RowPtrMonotone));
        assert!(!r.has(Invariant::ColumnBounds));
        assert_eq!(r.invariant_classes(), vec![Invariant::RowPtrMonotone]);
    }

    #[test]
    fn empty_report_is_ok() {
        let r = Report::new();
        assert!(r.is_ok());
        assert!(r.is_empty());
        assert_eq!(r.len(), 0);
        assert_eq!(r.to_string(), "all invariants hold");
    }
}

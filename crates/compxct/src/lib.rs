//! CompXCT: the compute-centric baseline (paper §2.3–2.4, Listing 1).
//!
//! This is the strategy of Trace/TomoPy that MemXCT is measured against in
//! Table 4: ray-tracing information (`indices`, `lengths`) is recomputed
//! *on the fly in every iteration* instead of being memoized. Forward
//! projection parallelizes naturally over rays (gathers); backprojection
//! scatters into the tomogram, so the baseline replicates the tomogram per
//! thread and reduces afterwards — the very duplication overhead §3.4.3
//! analyzes (`O(N² log P)`).
//!
//! The solver is SIRT (as in Trace): simultaneous iterative reconstruction
//! with row/column-sum normalization.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

use rayon::prelude::*;
use xct_geometry::{trace_ray, Grid, ScanGeometry, Sinogram};

/// Compute-centric reconstructor.
#[derive(Debug, Clone)]
pub struct CompXct {
    grid: Grid,
    scan: ScanGeometry,
    /// SIRT row normalization 1/Σ_j a_ij (zero rows get weight 0).
    row_weight: Vec<f32>,
    /// SIRT column normalization 1/Σ_i a_ij.
    col_weight: Vec<f32>,
}

/// Convergence/timing record of one SIRT iteration.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct IterationStats {
    /// Iteration number (0-based).
    pub iter: usize,
    /// Residual norm `‖y − A·x‖₂` at the *start* of the iteration.
    pub residual_norm: f64,
    /// Solution norm `‖x‖₂` at the start of the iteration.
    pub solution_norm: f64,
    /// Wall-clock seconds spent in the iteration.
    pub seconds: f64,
}

impl CompXct {
    /// Set up the reconstructor. The SIRT normalization weights need one
    /// extra tracing pass; the per-iteration projections re-trace every
    /// ray (the compute-centric cost this baseline exists to exhibit).
    pub fn new(grid: Grid, scan: ScanGeometry) -> Self {
        let mut row_weight = vec![0f32; scan.num_rays()];
        let mut col_weight = vec![0f32; grid.num_pixels()];
        for p in 0..scan.num_projections() {
            for c in 0..scan.num_channels() {
                let idx = scan.ray_index(p, c) as usize;
                let ray = scan.ray(p, c);
                let mut row_sum = 0f32;
                trace_ray(&grid, &ray, |pixel, len| {
                    row_sum += len;
                    col_weight[pixel as usize] += len;
                });
                row_weight[idx] = row_sum;
            }
        }
        for w in row_weight.iter_mut().chain(col_weight.iter_mut()) {
            *w = if *w > 0.0 { 1.0 / *w } else { 0.0 };
        }
        CompXct {
            grid,
            scan,
            row_weight,
            col_weight,
        }
    }

    /// The tomogram grid.
    pub fn grid(&self) -> Grid {
        self.grid
    }

    /// The scan geometry.
    pub fn scan(&self) -> ScanGeometry {
        self.scan
    }

    /// Forward projection `y = A·x`, tracing every ray on the fly.
    /// Rays only *gather* from the tomogram, so plain data parallelism
    /// over sinogram rows is race-free.
    pub fn forward(&self, x: &[f32]) -> Vec<f32> {
        assert_eq!(x.len(), self.grid.num_pixels());
        let n_ch = self.scan.num_channels();
        let mut y = vec![0f32; self.scan.num_rays()];
        y.par_chunks_mut(n_ch as usize)
            .enumerate()
            .for_each(|(p, row)| {
                for (c, out) in row.iter_mut().enumerate() {
                    // in-range: projection/channel indices are bounded by the u32 scan dims
                    let ray = self.scan.ray(p as u32, c as u32);
                    let mut acc = 0f32;
                    trace_ray(&self.grid, &ray, |pixel, len| {
                        acc += x[pixel as usize] * len;
                    });
                    *out = acc;
                }
            });
        y
    }

    /// Backprojection `x = Aᵀ·r`, tracing every ray on the fly.
    /// Rays *scatter* into the tomogram: each worker accumulates into its
    /// own replica which are then reduced — the compute-centric answer to
    /// the race condition (§2.4 "duplicating the pixel domain across
    /// threads ... and then performing a reduction").
    pub fn backproject(&self, r: &[f32]) -> Vec<f32> {
        assert_eq!(r.len(), self.scan.num_rays());
        let n_ch = self.scan.num_channels() as usize;
        let num_pixels = self.grid.num_pixels();
        (0..self.scan.num_projections() as usize)
            .into_par_iter()
            .fold(
                || vec![0f32; num_pixels],
                |mut local, p| {
                    for c in 0..n_ch {
                        let v = r[p * n_ch + c];
                        if v != 0.0 {
                            // in-range: projection/channel indices are bounded by the u32 scan dims
                            let ray = self.scan.ray(p as u32, c as u32);
                            trace_ray(&self.grid, &ray, |pixel, len| {
                                local[pixel as usize] += v * len;
                            });
                        }
                    }
                    local
                },
            )
            .reduce(
                || vec![0f32; num_pixels],
                |mut a, b| {
                    for (x, y) in a.iter_mut().zip(b) {
                        *x += y;
                    }
                    a
                },
            )
    }

    /// One SIRT update in place: `x += C·Aᵀ·R·(y − A·x)` with `R`/`C` the
    /// inverse row/column sums. Returns the residual norm before the
    /// update.
    pub fn sirt_step(&self, y: &[f32], x: &mut [f32]) -> f64 {
        let mut residual = self.forward(x);
        for (r, &m) in residual.iter_mut().zip(y) {
            *r = m - *r;
        }
        let norm = l2(&residual);
        for (r, &w) in residual.iter_mut().zip(&self.row_weight) {
            *r *= w;
        }
        let update = self.backproject(&residual);
        for ((xi, u), &w) in x.iter_mut().zip(update).zip(&self.col_weight) {
            *xi += u * w;
        }
        norm
    }

    /// Run `iters` SIRT iterations from a zero initial image.
    pub fn sirt(&self, sino: &Sinogram, iters: usize) -> (Vec<f32>, Vec<IterationStats>) {
        let y = sino.data();
        let mut x = vec![0f32; self.grid.num_pixels()];
        let mut stats = Vec::with_capacity(iters);
        for iter in 0..iters {
            let start = std::time::Instant::now();
            let solution_norm = l2(&x);
            let residual_norm = self.sirt_step(y, &mut x);
            stats.push(IterationStats {
                iter,
                residual_norm,
                solution_norm,
                seconds: start.elapsed().as_secs_f64(),
            });
        }
        (x, stats)
    }
}

fn l2(v: &[f32]) -> f64 {
    v.iter()
        .map(|&x| (x as f64) * (x as f64))
        .sum::<f64>()
        .sqrt()
}

#[cfg(test)]
mod tests {
    use super::*;
    use xct_geometry::{disk, simulate_sinogram, NoiseModel};

    fn small_setup() -> (Grid, ScanGeometry, Sinogram, Vec<f32>) {
        let n = 32u32;
        let grid = Grid::new(n);
        let scan = ScanGeometry::new(48, n);
        let img = disk(0.6, 1.0).rasterize(n);
        let sino = simulate_sinogram(&img, &grid, &scan, NoiseModel::None, 0);
        (grid, scan, sino, img)
    }

    #[test]
    fn forward_matches_simulated_sinogram() {
        let (grid, scan, sino, img) = small_setup();
        let cx = CompXct::new(grid, scan);
        let y = cx.forward(&img);
        for (a, b) in y.iter().zip(sino.data()) {
            assert!((a - b).abs() < 1e-4, "{a} vs {b}");
        }
    }

    #[test]
    fn backproject_is_adjoint_of_forward() {
        let (grid, scan, _, img) = small_setup();
        let cx = CompXct::new(grid, scan);
        let y = cx.forward(&img);
        // <A x, A x> == <x, A^T A x>
        let aty = cx.backproject(&y);
        let lhs: f64 = y.iter().map(|&v| v as f64 * v as f64).sum();
        let rhs: f64 = img
            .iter()
            .zip(&aty)
            .map(|(&a, &b)| a as f64 * b as f64)
            .sum();
        assert!(
            (lhs - rhs).abs() / lhs.max(1.0) < 1e-4,
            "adjoint mismatch {lhs} vs {rhs}"
        );
    }

    #[test]
    fn sirt_reduces_residual_monotonically_at_first() {
        let (grid, scan, sino, _) = small_setup();
        let cx = CompXct::new(grid, scan);
        let (_, stats) = cx.sirt(&sino, 8);
        assert_eq!(stats.len(), 8);
        for w in stats.windows(2) {
            assert!(
                w[1].residual_norm < w[0].residual_norm,
                "residual must shrink: {} -> {}",
                w[0].residual_norm,
                w[1].residual_norm
            );
        }
    }

    #[test]
    fn sirt_recovers_disk_roughly() {
        let (grid, scan, sino, img) = small_setup();
        let cx = CompXct::new(grid, scan);
        let (x, _) = cx.sirt(&sino, 40);
        // Relative L2 error after 40 iterations should be modest.
        let num: f64 = x
            .iter()
            .zip(&img)
            .map(|(&a, &b)| ((a - b) as f64).powi(2))
            .sum::<f64>()
            .sqrt();
        let den: f64 = img.iter().map(|&b| (b as f64).powi(2)).sum::<f64>().sqrt();
        assert!(num / den < 0.35, "relative error {}", num / den);
    }

    #[test]
    fn zero_measurements_give_zero_image() {
        let (grid, scan, _, _) = small_setup();
        let cx = CompXct::new(grid, scan);
        let sino = Sinogram::zeros(scan);
        let (x, _) = cx.sirt(&sino, 3);
        assert!(x.iter().all(|&v| v == 0.0));
    }

    #[test]
    fn weights_are_finite_and_nonnegative() {
        let (grid, scan, _, _) = small_setup();
        let cx = CompXct::new(grid, scan);
        assert!(cx.row_weight.iter().all(|w| w.is_finite() && *w >= 0.0));
        assert!(cx.col_weight.iter().all(|w| w.is_finite() && *w >= 0.0));
    }
}

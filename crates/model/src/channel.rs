//! MPSC channel facade mirroring the crossbeam shim's API
//! (`unbounded`, `Sender`, `Receiver`, typed recv errors). Passthrough
//! wraps `std::sync::mpsc`; in a model schedule the queue is a
//! model-visible object, so a receiver blocked on an empty channel is a
//! controller decision point and `recv_timeout` runs on the virtual
//! clock.

use std::collections::VecDeque;
use std::fmt;
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{mpsc, Arc, Mutex as StdMutex};
use std::time::Duration;

use crate::world::{self, Wake, World};

/// Send failed: the receiver is gone. Carries the unsent value.
pub struct SendError<T>(pub T);

impl<T> fmt::Debug for SendError<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("SendError(..)")
    }
}

impl<T> fmt::Display for SendError<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("sending on a disconnected channel")
    }
}

/// Blocking receive failed: all senders are gone.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RecvError;

impl fmt::Display for RecvError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("receiving on an empty and disconnected channel")
    }
}

/// Non-blocking receive outcome when no value is ready.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TryRecvError {
    /// Channel empty, senders still alive.
    Empty,
    /// Channel empty and all senders gone.
    Disconnected,
}

/// Timed receive outcome when no value arrived.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RecvTimeoutError {
    /// Timed out with senders still alive.
    Timeout,
    /// All senders gone.
    Disconnected,
}

struct Chan<T> {
    q: StdMutex<VecDeque<T>>,
    senders: AtomicUsize,
    rx_alive: AtomicBool,
    world: Arc<World>,
    cid: usize,
}

enum TxInner<T> {
    Std(mpsc::Sender<T>),
    Model(Arc<Chan<T>>),
}

/// Sending half; cloneable.
pub struct Sender<T> {
    inner: TxInner<T>,
}

enum RxInner<T> {
    // Mutex-wrapped so the facade Receiver is Sync like crossbeam's.
    Std(StdMutex<mpsc::Receiver<T>>),
    Model(Arc<Chan<T>>),
}

/// Receiving half; sharable across threads (`&self` receive).
pub struct Receiver<T> {
    inner: RxInner<T>,
}

/// An unbounded MPSC channel.
pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
    match world::current() {
        None => {
            let (tx, rx) = mpsc::channel();
            (
                Sender {
                    inner: TxInner::Std(tx),
                },
                Receiver {
                    inner: RxInner::Std(StdMutex::new(rx)),
                },
            )
        }
        Some((w, _)) => {
            let cid = w.register_channel();
            let ch = Arc::new(Chan {
                q: StdMutex::new(VecDeque::new()),
                senders: AtomicUsize::new(1),
                rx_alive: AtomicBool::new(true),
                world: w,
                cid,
            });
            (
                Sender {
                    inner: TxInner::Model(ch.clone()),
                },
                Receiver {
                    inner: RxInner::Model(ch),
                },
            )
        }
    }
}

impl<T> Clone for Sender<T> {
    fn clone(&self) -> Sender<T> {
        match &self.inner {
            TxInner::Std(tx) => Sender {
                inner: TxInner::Std(tx.clone()),
            },
            TxInner::Model(ch) => {
                ch.senders.fetch_add(1, Ordering::AcqRel);
                Sender {
                    inner: TxInner::Model(ch.clone()),
                }
            }
        }
    }
}

impl<T> Drop for Sender<T> {
    fn drop(&mut self) {
        if let TxInner::Model(ch) = &self.inner {
            if ch.senders.fetch_sub(1, Ordering::AcqRel) == 1 {
                // Last sender gone: blocked receivers must observe the
                // disconnect.
                ch.world.chan_wake(ch.cid);
            }
        }
    }
}

impl<T> Drop for Receiver<T> {
    fn drop(&mut self) {
        if let RxInner::Model(ch) = &self.inner {
            ch.rx_alive.store(false, Ordering::Release);
        }
    }
}

impl<T> Sender<T> {
    /// Send a value; fails (returning it) when the receiver is gone.
    pub fn send(&self, value: T) -> Result<(), SendError<T>> {
        match &self.inner {
            TxInner::Std(tx) => tx.send(value).map_err(|mpsc::SendError(v)| SendError(v)),
            TxInner::Model(ch) => {
                if let Some((w, me)) = world::current() {
                    w.yield_point(me);
                }
                if !ch.rx_alive.load(Ordering::Acquire) {
                    return Err(SendError(value));
                }
                ch.q.lock()
                    .unwrap_or_else(|p| p.into_inner())
                    .push_back(value);
                ch.world.chan_wake(ch.cid);
                Ok(())
            }
        }
    }
}

fn dur_ns(d: Duration) -> u64 {
    u64::try_from(d.as_nanos()).unwrap_or(u64::MAX)
}

impl<T> Receiver<T> {
    /// Blocking receive.
    pub fn recv(&self) -> Result<T, RecvError> {
        match &self.inner {
            RxInner::Std(rx) => rx
                .lock()
                .unwrap_or_else(|p| p.into_inner())
                .recv()
                .map_err(|_| RecvError),
            RxInner::Model(_) => self.model_recv(None).map_err(|_| RecvError),
        }
    }

    /// Non-blocking receive.
    pub fn try_recv(&self) -> Result<T, TryRecvError> {
        match &self.inner {
            RxInner::Std(rx) => rx
                .lock()
                .unwrap_or_else(|p| p.into_inner())
                .try_recv()
                .map_err(|e| match e {
                    mpsc::TryRecvError::Empty => TryRecvError::Empty,
                    mpsc::TryRecvError::Disconnected => TryRecvError::Disconnected,
                }),
            RxInner::Model(ch) => {
                if let Some((w, me)) = world::current() {
                    w.yield_point(me);
                }
                match ch.q.lock().unwrap_or_else(|p| p.into_inner()).pop_front() {
                    Some(v) => Ok(v),
                    None if ch.senders.load(Ordering::Acquire) == 0 => {
                        Err(TryRecvError::Disconnected)
                    }
                    None => Err(TryRecvError::Empty),
                }
            }
        }
    }

    /// Receive with a timeout (virtual-clock time in the model).
    pub fn recv_timeout(&self, timeout: Duration) -> Result<T, RecvTimeoutError> {
        match &self.inner {
            RxInner::Std(rx) => rx
                .lock()
                .unwrap_or_else(|p| p.into_inner())
                .recv_timeout(timeout)
                .map_err(|e| match e {
                    mpsc::RecvTimeoutError::Timeout => RecvTimeoutError::Timeout,
                    mpsc::RecvTimeoutError::Disconnected => RecvTimeoutError::Disconnected,
                }),
            RxInner::Model(_) => self.model_recv(Some(timeout)),
        }
    }

    fn model_recv(&self, timeout: Option<Duration>) -> Result<T, RecvTimeoutError> {
        let RxInner::Model(ch) = &self.inner else {
            unreachable!("model_recv on passthrough receiver")
        };
        let (w, me) =
            world::current().expect("model channel received on a non-task thread (facade misuse)");
        w.yield_point(me);
        let expiry = timeout.map(|d| w.now_ns().saturating_add(dur_ns(d)));
        loop {
            if let Some(v) = ch.q.lock().unwrap_or_else(|p| p.into_inner()).pop_front() {
                return Ok(v);
            }
            if ch.senders.load(Ordering::Acquire) == 0 {
                return Err(RecvTimeoutError::Disconnected);
            }
            let wake = w.chan_block(me, ch.cid, expiry);
            if wake == Wake::TimedOut {
                return match ch.q.lock().unwrap_or_else(|p| p.into_inner()).pop_front() {
                    Some(v) => Ok(v),
                    None => Err(RecvTimeoutError::Timeout),
                };
            }
        }
    }
}

//! The model scheduler: one `World` per explored schedule.
//!
//! Tasks are real OS threads, but exactly one holds the *execution baton*
//! at a time — every facade operation is a preemption point where the task
//! parks and the controller (the thread running
//! [`explore`](crate::explore)) picks who runs next. Branch decisions flow
//! through the schedule [`Cursor`], which makes the whole interleaving a
//! pure function of the recorded decision list.
//!
//! Blocked tasks carry *why* they are blocked ([`Block`]); the controller
//! classifies an all-blocked state as a deadlock (some task waits on a
//! lock/join/channel) or a lost wakeup (every blocked task is in an
//! untimed condvar wait — no notify can ever arrive). Timed waits park
//! with a virtual-time expiry; when nothing is runnable but expiries
//! exist, the controller advances the discrete virtual clock to the
//! earliest one instead of failing, so poll/deadline loops terminate
//! without real sleeping.

use std::cell::RefCell;
use std::sync::{Arc, Condvar as StdCondvar, Mutex as StdMutex, MutexGuard as StdMutexGuard};
use std::time::Duration;

use crate::explore::FailureKind;
use crate::trace::{Choice, Cursor};

thread_local! {
    static CURRENT: RefCell<Option<(Arc<World>, usize)>> = const { RefCell::new(None) };
}

/// The current thread's model-task context: `(world, task id)`, or `None`
/// on a plain production thread (passthrough mode).
pub(crate) fn current() -> Option<(Arc<World>, usize)> {
    CURRENT.with(|c| c.borrow().clone())
}

pub(crate) fn set_ctx(ctx: Option<(Arc<World>, usize)>) {
    CURRENT.with(|c| *c.borrow_mut() = ctx);
}

/// What a blocked task is waiting for.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum Block {
    Mutex(usize),
    Condvar(usize),
    Channel(usize),
    Join(usize),
    Sleep,
    RwRead(usize),
    RwWrite(usize),
}

#[derive(Debug)]
enum TaskState {
    Runnable,
    Running,
    Blocked { on: Block, expiry: Option<u64> },
    Finished,
}

/// Why a parked task was handed the baton again.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum Wake {
    Scheduled,
    Notified,
    TimedOut,
}

struct Task {
    name: String,
    state: TaskState,
    wake: Wake,
}

struct RwSt {
    writer: bool,
    readers: usize,
}

struct WorldSt {
    tasks: Vec<Task>,
    /// The task currently holding the baton, if any.
    active: Option<usize>,
    /// The task scheduled last (preemption accounting).
    prev: Option<usize>,
    preemptions: u32,
    steps: u64,
    /// Discrete virtual clock, nanoseconds.
    clock_ns: u64,
    /// Per-mutex "held" flags; waiters are found by scanning task states.
    mutexes: Vec<bool>,
    rwlocks: Vec<RwSt>,
    condvars: usize,
    channels: usize,
    failure: Option<(FailureKind, String)>,
    cursor: Cursor,
}

/// Per-schedule exploration bounds (see [`Config`](crate::Config)).
pub(crate) struct ScheduleLimits {
    pub max_preemptions: u32,
    pub max_steps: u64,
}

/// One schedule's worth of shared scheduler state. Tasks and the
/// controller rendezvous on a single (std) mutex + condvar; the model
/// never holds this lock while a task runs user code.
pub(crate) struct World {
    st: StdMutex<WorldSt>,
    cv: StdCondvar,
    limits: ScheduleLimits,
}

fn dur_ns(d: Duration) -> u64 {
    u64::try_from(d.as_nanos()).unwrap_or(u64::MAX)
}

impl World {
    pub fn new(limits: ScheduleLimits, cursor: Cursor) -> World {
        World {
            st: StdMutex::new(WorldSt {
                tasks: Vec::new(),
                active: None,
                prev: None,
                preemptions: 0,
                steps: 0,
                clock_ns: 0,
                mutexes: Vec::new(),
                rwlocks: Vec::new(),
                condvars: 0,
                channels: 0,
                failure: None,
                cursor,
            }),
            cv: StdCondvar::new(),
            limits,
        }
    }

    fn locked(&self) -> StdMutexGuard<'_, WorldSt> {
        self.st.lock().unwrap_or_else(|p| p.into_inner())
    }

    // ----- registration ---------------------------------------------------

    pub fn register_task(&self, name: String) -> usize {
        let mut s = self.locked();
        s.tasks.push(Task {
            name,
            state: TaskState::Runnable,
            wake: Wake::Scheduled,
        });
        s.tasks.len() - 1
    }

    pub fn register_mutex(&self) -> usize {
        let mut s = self.locked();
        s.mutexes.push(false);
        s.mutexes.len() - 1
    }

    pub fn register_rwlock(&self) -> usize {
        let mut s = self.locked();
        s.rwlocks.push(RwSt {
            writer: false,
            readers: 0,
        });
        s.rwlocks.len() - 1
    }

    pub fn register_condvar(&self) -> usize {
        let mut s = self.locked();
        s.condvars += 1;
        s.condvars - 1
    }

    pub fn register_channel(&self) -> usize {
        let mut s = self.locked();
        s.channels += 1;
        s.channels - 1
    }

    // ----- baton hand-off -------------------------------------------------

    /// Park until the controller schedules this task for the first time.
    pub fn initial_wait(&self, me: usize) {
        let s = self.locked();
        drop(self.wait_scheduled(s, me));
    }

    fn wait_scheduled<'a>(
        &'a self,
        mut s: StdMutexGuard<'a, WorldSt>,
        me: usize,
    ) -> StdMutexGuard<'a, WorldSt> {
        loop {
            if s.active == Some(me) {
                s.tasks[me].state = TaskState::Running;
                return s;
            }
            s = self.cv.wait(s).unwrap_or_else(|p| p.into_inner());
        }
    }

    /// Voluntary preemption point: mark runnable, release the baton, wait
    /// to be scheduled again.
    pub fn yield_point(&self, me: usize) {
        let mut s = self.locked();
        s.tasks[me].state = TaskState::Runnable;
        s.active = None;
        self.cv.notify_all();
        drop(self.wait_scheduled(s, me));
    }

    /// Block on `on` (with an optional virtual-clock expiry) and wait to
    /// be woken and rescheduled; returns the wake reason.
    fn block_on_locked(
        &self,
        mut s: StdMutexGuard<'_, WorldSt>,
        me: usize,
        on: Block,
        expiry: Option<u64>,
    ) -> Wake {
        s.tasks[me].state = TaskState::Blocked { on, expiry };
        s.active = None;
        self.cv.notify_all();
        let s = self.wait_scheduled(s, me);
        s.tasks[me].wake
    }

    fn wake_matching(s: &mut WorldSt, pred: impl Fn(Block) -> bool, only_first: bool) {
        for t in s.tasks.iter_mut() {
            if let TaskState::Blocked { on, .. } = t.state {
                if pred(on) {
                    t.state = TaskState::Runnable;
                    t.wake = Wake::Notified;
                    if only_first {
                        break;
                    }
                }
            }
        }
    }

    pub fn now_ns(&self) -> u64 {
        self.locked().clock_ns
    }

    // ----- mutex ----------------------------------------------------------

    pub fn mutex_lock(&self, me: usize, mid: usize) {
        self.yield_point(me);
        self.mutex_lock_no_yield(me, mid);
    }

    /// Acquire without a leading preemption point (condvar reacquire).
    pub fn mutex_lock_no_yield(&self, me: usize, mid: usize) {
        loop {
            let mut s = self.locked();
            if !s.mutexes[mid] {
                s.mutexes[mid] = true;
                return;
            }
            self.block_on_locked(s, me, Block::Mutex(mid), None);
        }
    }

    pub fn mutex_unlock(&self, mid: usize) {
        let mut s = self.locked();
        s.mutexes[mid] = false;
        Self::wake_matching(&mut s, |b| b == Block::Mutex(mid), false);
    }

    // ----- rwlock ---------------------------------------------------------

    pub fn rw_lock(&self, me: usize, rid: usize, write: bool) {
        self.yield_point(me);
        loop {
            let mut s = self.locked();
            let rw = &mut s.rwlocks[rid];
            if write {
                if !rw.writer && rw.readers == 0 {
                    rw.writer = true;
                    return;
                }
            } else if !rw.writer {
                rw.readers += 1;
                return;
            }
            let on = if write {
                Block::RwWrite(rid)
            } else {
                Block::RwRead(rid)
            };
            self.block_on_locked(s, me, on, None);
        }
    }

    pub fn rw_unlock(&self, rid: usize, write: bool) {
        let mut s = self.locked();
        let rw = &mut s.rwlocks[rid];
        if write {
            rw.writer = false;
        } else {
            rw.readers = rw.readers.saturating_sub(1);
        }
        Self::wake_matching(
            &mut s,
            |b| b == Block::RwRead(rid) || b == Block::RwWrite(rid),
            false,
        );
    }

    // ----- condvar --------------------------------------------------------

    /// Atomically release mutex `mid`, wait on condvar `cvid` (optionally
    /// timed against the virtual clock), then reacquire `mid`. Returns
    /// `true` when the wait timed out. There are no spurious wakeups in
    /// the model — a wakeup means a notify or an expiry — which is exactly
    /// what makes lost wakeups observable instead of masked.
    pub fn condvar_wait(
        &self,
        me: usize,
        cvid: usize,
        mid: usize,
        timeout: Option<Duration>,
    ) -> bool {
        let wake = {
            let mut s = self.locked();
            s.mutexes[mid] = false;
            Self::wake_matching(&mut s, |b| b == Block::Mutex(mid), false);
            let expiry = timeout.map(|d| s.clock_ns.saturating_add(dur_ns(d)));
            self.block_on_locked(s, me, Block::Condvar(cvid), expiry)
        };
        self.mutex_lock_no_yield(me, mid);
        wake == Wake::TimedOut
    }

    /// Notify waiters on `cvid`. `notify_one` deterministically wakes the
    /// lowest-id waiting task.
    pub fn condvar_notify(&self, me: usize, cvid: usize, all: bool) {
        self.yield_point(me);
        let mut s = self.locked();
        Self::wake_matching(&mut s, |b| b == Block::Condvar(cvid), !all);
    }

    // ----- channel --------------------------------------------------------

    pub fn chan_block(&self, me: usize, cid: usize, expiry: Option<u64>) -> Wake {
        let s = self.locked();
        self.block_on_locked(s, me, Block::Channel(cid), expiry)
    }

    /// Wake all receivers parked on channel `cid`. Safe to call from any
    /// thread (sender drops may happen off-schedule).
    pub fn chan_wake(&self, cid: usize) {
        let mut s = self.locked();
        Self::wake_matching(&mut s, |b| b == Block::Channel(cid), false);
    }

    // ----- join / sleep / finish -----------------------------------------

    pub fn join(&self, me: usize, target: usize) {
        self.yield_point(me);
        loop {
            let s = self.locked();
            if matches!(s.tasks[target].state, TaskState::Finished) {
                return;
            }
            self.block_on_locked(s, me, Block::Join(target), None);
        }
    }

    pub fn sleep(&self, me: usize, d: Duration) {
        let s = self.locked();
        let expiry = s.clock_ns.saturating_add(dur_ns(d));
        self.block_on_locked(s, me, Block::Sleep, Some(expiry));
    }

    /// Mark `me` finished, wake joiners, record an unhandled panic as an
    /// assertion-violation failure, and release the baton.
    pub fn finish_task(&self, me: usize, panic_msg: Option<String>) {
        let mut s = self.locked();
        s.tasks[me].state = TaskState::Finished;
        Self::wake_matching(&mut s, |b| b == Block::Join(me), false);
        if let Some(msg) = panic_msg {
            if s.failure.is_none() {
                let name = s.tasks[me].name.clone();
                s.failure = Some((FailureKind::Panic, format!("task '{name}' panicked: {msg}")));
            }
        }
        s.active = None;
        self.cv.notify_all();
    }

    // ----- controller -----------------------------------------------------

    /// Drive the schedule to completion or failure. Runs on the explorer
    /// thread. On failure, parked task threads are deliberately leaked
    /// (exploration stops at the first failure), so user code is never
    /// unwound mid-critical-section.
    pub fn control(&self) -> Option<(FailureKind, String)> {
        let mut s = self.locked();
        loop {
            while s.active.is_some() && s.failure.is_none() {
                s = self.cv.wait(s).unwrap_or_else(|p| p.into_inner());
            }
            if let Some(f) = s.failure.clone() {
                return Some(f);
            }
            if s.tasks
                .iter()
                .all(|t| matches!(t.state, TaskState::Finished))
            {
                return None;
            }
            let runnable: Vec<usize> = s
                .tasks
                .iter()
                .enumerate()
                .filter(|(_, t)| matches!(t.state, TaskState::Runnable))
                .map(|(i, _)| i)
                .collect();
            if runnable.is_empty() {
                // Advance the virtual clock to the earliest expiry, if any.
                let next_expiry = s
                    .tasks
                    .iter()
                    .filter_map(|t| match t.state {
                        TaskState::Blocked {
                            expiry: Some(e), ..
                        } => Some(e),
                        _ => None,
                    })
                    .min();
                if let Some(e) = next_expiry {
                    s.clock_ns = s.clock_ns.max(e);
                    let now = s.clock_ns;
                    for t in s.tasks.iter_mut() {
                        if let TaskState::Blocked {
                            expiry: Some(x), ..
                        } = t.state
                        {
                            if x <= now {
                                t.state = TaskState::Runnable;
                                t.wake = Wake::TimedOut;
                            }
                        }
                    }
                    continue;
                }
                // Genuinely stuck. All-blocked-on-untimed-condvar means no
                // notify is reachable: a lost wakeup. Anything else is a
                // deadlock.
                let mut all_condvar = true;
                let mut desc = Vec::new();
                for t in &s.tasks {
                    if let TaskState::Blocked { on, .. } = t.state {
                        if !matches!(on, Block::Condvar(_)) {
                            all_condvar = false;
                        }
                        desc.push(format!("{} blocked on {:?}", t.name, on));
                    }
                }
                let kind = if all_condvar {
                    FailureKind::LostWakeup
                } else {
                    FailureKind::Deadlock
                };
                return Some((kind, desc.join("; ")));
            }
            s.steps += 1;
            if s.steps > self.limits.max_steps {
                return Some((
                    FailureKind::StepLimit,
                    format!(
                        "exceeded {} scheduling steps (livelock suspect)",
                        self.limits.max_steps
                    ),
                ));
            }
            // Preemption bound: once the budget is spent, a still-runnable
            // previous task keeps running (CHESS-style context bounding).
            let constrained: Vec<usize> = match s.prev {
                Some(p)
                    if runnable.contains(&p) && s.preemptions >= self.limits.max_preemptions =>
                {
                    vec![p]
                }
                _ => runnable.clone(),
            };
            let idx = if constrained.len() > 1 {
                // in-range: task counts are tiny (single digits)
                let c = s.cursor.choose(constrained.len() as u32);
                c as usize
            } else {
                0
            };
            let next = constrained[idx];
            if let Some(p) = s.prev {
                if p != next && runnable.contains(&p) {
                    s.preemptions += 1;
                }
            }
            s.prev = Some(next);
            s.active = Some(next);
            self.cv.notify_all();
        }
    }

    /// The decision list actually taken this schedule (controller-side,
    /// after [`control`](Self::control) returns).
    pub fn take_choices(&self) -> Vec<Choice> {
        let mut s = self.locked();
        std::mem::replace(
            &mut s.cursor,
            Cursor::new(Vec::new(), crate::trace::Pick::First),
        )
        .into_taken()
    }
}

//! Thread facade: `spawn`/`Builder`/`JoinHandle`, scoped threads, `sleep`
//! and `yield_now`. Passthrough delegates to `std::thread`; in a model
//! schedule, spawned closures become model tasks whose scheduling the
//! controller owns, `sleep` parks on the virtual clock, and joins are
//! model-visible blocking points (so join cycles count as deadlocks).

use std::any::Any;
use std::cell::RefCell;
use std::io;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::Arc;
use std::time::Duration;

pub use std::thread::panicking;

use crate::world::{self, World};

type PanicPayload = Box<dyn Any + Send + 'static>;

/// Entry wrapper for every model task thread: installs the task context,
/// waits for the first scheduling grant, runs the closure under
/// `catch_unwind`, and reports completion (or the panic) to the world.
pub(crate) fn task_entry<T>(
    world: Arc<World>,
    id: usize,
    f: impl FnOnce() -> T,
) -> Result<T, PanicPayload> {
    world::set_ctx(Some((world.clone(), id)));
    world.initial_wait(id);
    let r = catch_unwind(AssertUnwindSafe(f));
    let msg = r.as_ref().err().map(payload_msg);
    world.finish_task(id, msg);
    world::set_ctx(None);
    r
}

fn payload_msg(p: &PanicPayload) -> String {
    if let Some(s) = p.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = p.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

enum Inner<T> {
    Std(std::thread::JoinHandle<T>),
    Model {
        handle: std::thread::JoinHandle<Result<T, PanicPayload>>,
        world: Arc<World>,
        id: usize,
    },
}

/// Facade join handle; mirrors `std::thread::JoinHandle`.
pub struct JoinHandle<T> {
    inner: Inner<T>,
}

impl<T> JoinHandle<T> {
    /// Wait for the thread/task to finish.
    pub fn join(self) -> std::thread::Result<T> {
        match self.inner {
            Inner::Std(h) => h.join(),
            Inner::Model { handle, world, id } => {
                if let Some((w, me)) = world::current() {
                    debug_assert!(Arc::ptr_eq(&w, &world));
                    w.join(me, id);
                }
                handle.join().and_then(|r| r)
            }
        }
    }

    /// Whether the thread/task has finished.
    pub fn is_finished(&self) -> bool {
        match &self.inner {
            Inner::Std(h) => h.is_finished(),
            Inner::Model { handle, .. } => handle.is_finished(),
        }
    }
}

/// Facade thread builder; mirrors `std::thread::Builder`.
#[derive(Default)]
pub struct Builder {
    name: Option<String>,
}

impl Builder {
    /// A builder with no name set.
    pub fn new() -> Builder {
        Builder::default()
    }

    /// Name the thread (also used as the model task name).
    pub fn name(mut self, name: String) -> Builder {
        self.name = Some(name);
        self
    }

    /// Spawn the closure as a thread (passthrough) or model task.
    pub fn spawn<F, T>(self, f: F) -> io::Result<JoinHandle<T>>
    where
        F: FnOnce() -> T + Send + 'static,
        T: Send + 'static,
    {
        let name = self.name.unwrap_or_else(|| "xct-task".to_string());
        match world::current() {
            None => {
                let h = std::thread::Builder::new().name(name).spawn(f)?;
                Ok(JoinHandle {
                    inner: Inner::Std(h),
                })
            }
            Some((world, me)) => {
                let id = world.register_task(name.clone());
                let w = world.clone();
                let h = std::thread::Builder::new()
                    .name(name)
                    .spawn(move || task_entry(w, id, f))?;
                // Spawning is itself a preemption point: the child may run
                // before or after the parent's next step.
                world.yield_point(me);
                Ok(JoinHandle {
                    inner: Inner::Model {
                        handle: h,
                        world,
                        id,
                    },
                })
            }
        }
    }
}

/// Spawn a thread/task (see [`Builder::spawn`]).
pub fn spawn<F, T>(f: F) -> JoinHandle<T>
where
    F: FnOnce() -> T + Send + 'static,
    T: Send + 'static,
{
    Builder::new().spawn(f).expect("failed to spawn thread")
}

/// Sleep: real in passthrough, virtual-clock park in the model (the
/// controller advances time when nothing is runnable, so model sleeps
/// cost no wall clock).
pub fn sleep(d: Duration) {
    match world::current() {
        Some((w, me)) => w.sleep(me, d),
        None => std::thread::sleep(d),
    }
}

/// Yield: a bare preemption point in the model, `std::thread::yield_now`
/// otherwise.
pub fn yield_now() {
    match world::current() {
        Some((w, me)) => w.yield_point(me),
        None => std::thread::yield_now(),
    }
}

enum ScopedInner<'scope, T> {
    Std(std::thread::ScopedJoinHandle<'scope, T>),
    Model {
        handle: std::thread::ScopedJoinHandle<'scope, Result<T, PanicPayload>>,
        world: Arc<World>,
        id: usize,
    },
}

/// Facade scoped join handle; mirrors `std::thread::ScopedJoinHandle`.
pub struct ScopedJoinHandle<'scope, T> {
    inner: ScopedInner<'scope, T>,
}

impl<T> ScopedJoinHandle<'_, T> {
    /// Wait for the scoped thread/task to finish.
    pub fn join(self) -> std::thread::Result<T> {
        match self.inner {
            ScopedInner::Std(h) => h.join(),
            ScopedInner::Model { handle, world, id } => {
                if let Some((w, me)) = world::current() {
                    debug_assert!(Arc::ptr_eq(&w, &world));
                    w.join(me, id);
                }
                handle.join().and_then(|r| r)
            }
        }
    }
}

/// Facade scope; mirrors `std::thread::Scope`.
pub struct Scope<'scope, 'env: 'scope> {
    inner: &'scope std::thread::Scope<'scope, 'env>,
    model: Option<(Arc<World>, usize)>,
    tasks: RefCell<Vec<usize>>,
}

impl<'scope, 'env> Scope<'scope, 'env> {
    /// Spawn a scoped thread/task.
    pub fn spawn<F, T>(&self, f: F) -> ScopedJoinHandle<'scope, T>
    where
        F: FnOnce() -> T + Send + 'scope,
        T: Send + 'scope,
    {
        match &self.model {
            None => ScopedJoinHandle {
                inner: ScopedInner::Std(self.inner.spawn(f)),
            },
            Some((world, me)) => {
                let id = world.register_task(format!("scoped-{}", self.tasks.borrow().len()));
                let w = world.clone();
                let handle = self.inner.spawn(move || task_entry(w, id, f));
                self.tasks.borrow_mut().push(id);
                world.yield_point(*me);
                ScopedJoinHandle {
                    inner: ScopedInner::Model {
                        handle,
                        world: world.clone(),
                        id,
                    },
                }
            }
        }
    }
}

/// Facade for `std::thread::scope`. In a model schedule, every scoped
/// task is model-joined before the underlying real scope joins the OS
/// threads, so the implicit join never blocks while holding the baton.
pub fn scope<'env, F, T>(f: F) -> T
where
    F: for<'scope> FnOnce(&Scope<'scope, 'env>) -> T,
{
    std::thread::scope(|s| {
        let wrapper = Scope {
            inner: s,
            model: world::current(),
            tasks: RefCell::new(Vec::new()),
        };
        let r = f(&wrapper);
        if let Some((world, me)) = &wrapper.model {
            for id in wrapper.tasks.borrow().iter() {
                world.join(*me, *id);
            }
        }
        r
    })
}

//! `xct-model`: deterministic concurrency model checking for the MemXCT
//! runtime.
//!
//! The repo's whole value proposition is deterministic, bit-identical
//! reconstruction — but determinism of *results* says nothing about the
//! schedule space of the worker pool, communicator, job scheduler, and
//! plan cache. This crate provides a loom-style checker that explores
//! that space exhaustively (for the small configurations where protocol
//! bugs live) and entirely offline:
//!
//! * A **sync facade** ([`sync`], [`thread`], [`channel`], [`time`]) with
//!   two backends. Outside a model schedule every type passes through to
//!   `std` at the cost of one thread-local read per operation — zero
//!   steady-state allocations. Inside [`explore`], every operation is a
//!   preemption point reported to a controlled cooperative scheduler.
//! * A **schedule explorer** ([`explore`], [`Config`], [`Strategy`]):
//!   bounded depth-first enumeration of thread interleavings (CHESS-style
//!   preemption bounding) or seeded pseudo-random sampling. No wall
//!   clock, no ambient randomness — a run is a pure function of the body
//!   and the explicit seed.
//! * **Failure detection**: deadlocks (all tasks blocked), lost wakeups
//!   (all tasks in untimed condvar waits — the model has no spurious
//!   wakeups to mask them), panics/assertion violations, and livelock
//!   suspects (step-budget exhaustion). Timed waits run against a
//!   discrete virtual clock, so deadline/poll loops terminate instantly.
//! * **Deterministic replay**: every failure carries a [`TraceId`]
//!   (varint-encoded branch decisions, printed as `xm1-<hex>`); feeding
//!   it to [`replay`] re-executes exactly that interleaving.
//! * **Lockdep** ([`lockdep`]): named facade locks record a
//!   lock-acquisition-order graph in debug builds, exported through
//!   `xct-obs` and checked for cycles by `xct-check`'s
//!   `LockOrderAcyclic` invariant.
//!
//! ```
//! use xct_model::{explore, Config, FailureKind};
//! use xct_model::sync::{Arc, Mutex};
//!
//! // Two tasks increment a shared counter; exhaustively verified.
//! let report = explore(&Config::dfs(), || {
//!     let n = Arc::new(Mutex::new(0u32));
//!     let n2 = n.clone();
//!     let t = xct_model::thread::spawn(move || *n2.lock() += 1);
//!     *n.lock() += 1;
//!     t.join().unwrap();
//!     assert_eq!(*n.lock(), 2);
//! });
//! report.assert_clean();
//! assert!(report.complete);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod channel;
mod explore;
pub mod lockdep;
pub mod sync;
pub mod thread;
pub mod time;
mod trace;
mod world;

pub use explore::{explore, replay, Config, Failure, FailureKind, Report, Strategy};
pub use trace::TraceId;

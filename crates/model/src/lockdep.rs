//! Lock-order recording ("lockdep").
//!
//! Facade locks constructed with [`Mutex::named`](crate::sync::Mutex::named)
//! (or [`RwLock::named`](crate::sync::RwLock::named)) belong to a *class*.
//! In debug builds, every acquisition records directed edges `held-class →
//! acquired-class` into a process-global graph; a cycle in that graph is a
//! potential ABBA deadlock even if no single run ever deadlocks. The graph
//! is exported through `xct-obs` ([`export_into`]) and checked by
//! `xct-check`'s `LockOrderAcyclic` invariant.
//!
//! Recording is steady-state allocation-free: class interning, edge
//! insertion, and held-stack growth all allocate only on first occurrence,
//! which a warmup pass covers. Release builds compile the recording out
//! entirely (every class maps to [`ANON`]).

#[cfg(debug_assertions)]
use std::cell::RefCell;
#[cfg(debug_assertions)]
use std::collections::{HashMap, HashSet};
#[cfg(debug_assertions)]
use std::sync::{Mutex as StdMutex, OnceLock};

/// Class id of an unnamed (or release-build) lock: excluded from the
/// graph.
pub(crate) const ANON: usize = usize::MAX;

#[cfg(debug_assertions)]
struct Registry {
    names: Vec<&'static str>,
    ids: HashMap<&'static str, usize>,
    edges: HashSet<(usize, usize)>,
}

#[cfg(debug_assertions)]
fn registry() -> &'static StdMutex<Registry> {
    static REG: OnceLock<StdMutex<Registry>> = OnceLock::new();
    REG.get_or_init(|| {
        StdMutex::new(Registry {
            names: Vec::new(),
            ids: HashMap::new(),
            edges: HashSet::new(),
        })
    })
}

#[cfg(debug_assertions)]
thread_local! {
    /// Stack of class ids held by this thread (ANON entries included so
    /// release order can interleave).
    static HELD: RefCell<Vec<usize>> = const { RefCell::new(Vec::new()) };
}

/// Intern a lock-class name (called once per lock construction).
#[cfg(debug_assertions)]
pub(crate) fn intern(name: &'static str) -> usize {
    let mut reg = registry().lock().unwrap_or_else(|p| p.into_inner());
    if let Some(&id) = reg.ids.get(name) {
        return id;
    }
    let id = reg.names.len();
    reg.names.push(name);
    reg.ids.insert(name, id);
    id
}

#[cfg(not(debug_assertions))]
pub(crate) fn intern(_name: &'static str) -> usize {
    ANON
}

/// Record an acquisition of class `id` (ANON allowed).
#[cfg(debug_assertions)]
pub(crate) fn on_acquire(id: usize) {
    HELD.with(|h| {
        let mut h = h.borrow_mut();
        if id != ANON {
            let mut reg = registry().lock().unwrap_or_else(|p| p.into_inner());
            for &held in h.iter() {
                if held != ANON && held != id {
                    reg.edges.insert((held, id));
                }
            }
        }
        h.push(id);
    });
}

#[cfg(not(debug_assertions))]
pub(crate) fn on_acquire(_id: usize) {}

/// Record a release of class `id` (last matching entry; guards can drop
/// out of acquisition order).
#[cfg(debug_assertions)]
pub(crate) fn on_release(id: usize) {
    HELD.with(|h| {
        let mut h = h.borrow_mut();
        if let Some(pos) = h.iter().rposition(|&x| x == id) {
            h.remove(pos);
        }
    });
}

#[cfg(not(debug_assertions))]
pub(crate) fn on_release(_id: usize) {}

/// The interned lock-class names, in id order. Empty in release builds.
pub fn classes() -> Vec<String> {
    #[cfg(debug_assertions)]
    {
        let reg = registry().lock().unwrap_or_else(|p| p.into_inner());
        reg.names.iter().map(|n| n.to_string()).collect()
    }
    #[cfg(not(debug_assertions))]
    {
        Vec::new()
    }
}

/// The recorded acquisition-order edges as `(held, acquired)` name pairs,
/// sorted. Empty in release builds (recording compiled out).
pub fn edges() -> Vec<(String, String)> {
    #[cfg(debug_assertions)]
    {
        let reg = registry().lock().unwrap_or_else(|p| p.into_inner());
        let mut out: Vec<(String, String)> = reg
            .edges
            .iter()
            .map(|&(a, b)| (reg.names[a].to_string(), reg.names[b].to_string()))
            .collect();
        out.sort();
        out
    }
    #[cfg(not(debug_assertions))]
    {
        Vec::new()
    }
}

/// Export the lock-order graph into a metrics registry as the
/// `lockdep/edges` adjacency matrix (row = held class, column = acquired
/// class, 1 = observed edge), class names in [`classes`] order.
pub fn export_into(metrics: &xct_obs::Metrics) {
    #[cfg(debug_assertions)]
    {
        let reg = registry().lock().unwrap_or_else(|p| p.into_inner());
        let n = reg.names.len();
        if n == 0 {
            return;
        }
        let mut data = vec![0u64; n * n];
        for &(a, b) in reg.edges.iter() {
            data[a * n + b] = 1;
        }
        metrics.matrix_set(xct_obs::LOCKDEP_EDGES, n, data);
    }
    #[cfg(not(debug_assertions))]
    {
        let _ = metrics;
    }
}

/// Clear all recorded classes and edges. Test-only: the registry is
/// process-global, so concurrent tests observing it must serialize.
#[doc(hidden)]
pub fn reset_for_tests() {
    #[cfg(debug_assertions)]
    {
        let mut reg = registry().lock().unwrap_or_else(|p| p.into_inner());
        reg.names.clear();
        reg.ids.clear();
        reg.edges.clear();
    }
}

//! Schedule exploration: bounded DFS / seeded-random enumeration and
//! trace replay.
//!
//! [`explore`] runs the body closure once per schedule, each time under a
//! fresh [`World`]. With [`Strategy::Dfs`] the decision tree is walked
//! depth-first with backtracking: after each schedule, the deepest branch
//! with an unexplored sibling is advanced and everything after it is
//! dropped; exploration is *complete* when the tree is exhausted within
//! the preemption bound. With [`Strategy::Random`] each schedule draws
//! its branches from a SplitMix64 stream seeded as `seed + schedule
//! index`, so the whole run — including which failure is found first — is
//! a pure function of the explicit seed.

use std::sync::Arc;

use crate::trace::{Choice, Cursor, Pick, SplitMix64, TraceId};
use crate::world::{ScheduleLimits, World};

/// How a failing schedule failed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FailureKind {
    /// All live tasks blocked, at least one on a lock/join/channel.
    Deadlock,
    /// All live tasks parked in untimed condvar waits: no notify can ever
    /// arrive.
    LostWakeup,
    /// A task panicked (assertion violation).
    Panic,
    /// The per-schedule step budget was exceeded (livelock suspect).
    StepLimit,
}

/// One failing schedule: what went wrong plus the [`TraceId`] that
/// replays it deterministically.
#[derive(Debug, Clone)]
pub struct Failure {
    /// Classification of the failure.
    pub kind: FailureKind,
    /// Replayable schedule identifier (feed to [`replay`]).
    pub trace: TraceId,
    /// Human-readable description (blocked-task list or panic payload).
    pub message: String,
    /// 1-based index of the failing schedule within the exploration.
    pub schedule: u64,
}

impl std::fmt::Display for Failure {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "model failure [{:?}] in schedule #{}: {}; replay trace {}",
            self.kind, self.schedule, self.message, self.trace
        )
    }
}

/// Outcome of an exploration.
#[derive(Debug)]
pub struct Report {
    /// Number of schedules executed.
    pub schedules: u64,
    /// `true` when DFS exhausted the decision tree within the bounds
    /// (exhaustive up to the preemption bound). Random exploration never
    /// sets this.
    pub complete: bool,
    /// The first failure found, if any (exploration stops there).
    pub failure: Option<Failure>,
}

impl Report {
    /// Panic (with the replay trace) if a failure was found. For tests.
    pub fn assert_clean(&self) {
        if let Some(f) = &self.failure {
            panic!("model check failed: {f}");
        }
    }
}

/// Branch-selection strategy.
#[derive(Debug, Clone, Copy)]
pub enum Strategy {
    /// Exhaustive depth-first enumeration with backtracking.
    Dfs,
    /// Pseudo-random schedules from an explicit seed.
    Random {
        /// Seed for the SplitMix64 stream; schedule `i` uses `seed + i`.
        seed: u64,
    },
}

/// Exploration bounds.
#[derive(Debug, Clone, Copy)]
pub struct Config {
    /// Branch-selection strategy.
    pub strategy: Strategy,
    /// Maximum *preemptions* per schedule: context switches away from a
    /// still-runnable task. Voluntary blocking never counts. Small bounds
    /// (2–3) catch almost all real concurrency bugs (CHESS observation)
    /// while keeping the tree tractable.
    pub max_preemptions: u32,
    /// Maximum number of schedules to run before giving up.
    pub max_schedules: u64,
    /// Per-schedule scheduling-step budget (livelock backstop).
    pub max_steps: u64,
}

impl Default for Config {
    fn default() -> Config {
        Config {
            strategy: Strategy::Dfs,
            max_preemptions: 2,
            max_schedules: 50_000,
            max_steps: 50_000,
        }
    }
}

impl Config {
    /// Default bounds with the DFS strategy.
    pub fn dfs() -> Config {
        Config::default()
    }

    /// Default bounds with seeded random exploration.
    pub fn random(seed: u64) -> Config {
        Config {
            strategy: Strategy::Random { seed },
            ..Config::default()
        }
    }

    /// Set the preemption bound.
    pub fn preemptions(mut self, n: u32) -> Config {
        self.max_preemptions = n;
        self
    }

    /// Set the schedule budget.
    pub fn schedules(mut self, n: u64) -> Config {
        self.max_schedules = n;
        self
    }
}

/// Explore interleavings of `body` under `cfg`, stopping at the first
/// failure. `body` runs once per schedule as the root model task; any
/// facade object it creates (directly or transitively) participates in
/// the model.
pub fn explore<F>(cfg: &Config, body: F) -> Report
where
    F: Fn() + Send + Sync + 'static,
{
    let body = Arc::new(body);
    match cfg.strategy {
        Strategy::Dfs => {
            let mut prefix: Vec<Choice> = Vec::new();
            let mut schedules = 0;
            loop {
                if schedules >= cfg.max_schedules {
                    return Report {
                        schedules,
                        complete: false,
                        failure: None,
                    };
                }
                schedules += 1;
                let (failure, taken) = run_schedule(cfg, &body, Cursor::new(prefix, Pick::First));
                if let Some((kind, message)) = failure {
                    return Report {
                        schedules,
                        complete: false,
                        failure: Some(Failure {
                            kind,
                            trace: TraceId::encode(&taken),
                            message,
                            schedule: schedules,
                        }),
                    };
                }
                // Backtrack: advance the deepest branch with an untried
                // sibling, dropping everything after it.
                let mut next = taken;
                loop {
                    match next.pop() {
                        None => {
                            return Report {
                                schedules,
                                complete: true,
                                failure: None,
                            }
                        }
                        Some(c) if c.chosen + 1 < c.options => {
                            next.push(Choice {
                                chosen: c.chosen + 1,
                                options: c.options,
                            });
                            break;
                        }
                        Some(_) => {}
                    }
                }
                prefix = next;
            }
        }
        Strategy::Random { seed } => {
            let mut schedules = 0;
            while schedules < cfg.max_schedules {
                schedules += 1;
                let rng = SplitMix64::new(seed.wrapping_add(schedules - 1));
                let (failure, taken) =
                    run_schedule(cfg, &body, Cursor::new(Vec::new(), Pick::Random(rng)));
                if let Some((kind, message)) = failure {
                    return Report {
                        schedules,
                        complete: false,
                        failure: Some(Failure {
                            kind,
                            trace: TraceId::encode(&taken),
                            message,
                            schedule: schedules,
                        }),
                    };
                }
            }
            Report {
                schedules,
                complete: false,
                failure: None,
            }
        }
    }
}

/// Re-run exactly the schedule identified by `trace` (as printed in a
/// [`Failure`]). Returns the single-schedule report; the failure (if the
/// bug is still present) carries the same trace.
pub fn replay<F>(trace: &TraceId, cfg: &Config, body: F) -> Report
where
    F: Fn() + Send + Sync + 'static,
{
    let body = Arc::new(body);
    let prefix = trace.decode().unwrap_or_default();
    let (failure, taken) = run_schedule(cfg, &body, Cursor::new(prefix, Pick::First));
    Report {
        schedules: 1,
        complete: false,
        failure: failure.map(|(kind, message)| Failure {
            kind,
            trace: TraceId::encode(&taken),
            message,
            schedule: 1,
        }),
    }
}

fn run_schedule<F>(
    cfg: &Config,
    body: &Arc<F>,
    cursor: Cursor,
) -> (Option<(FailureKind, String)>, Vec<Choice>)
where
    F: Fn() + Send + Sync + 'static,
{
    let world = Arc::new(World::new(
        ScheduleLimits {
            max_preemptions: cfg.max_preemptions,
            max_steps: cfg.max_steps,
        },
        cursor,
    ));
    let main_id = world.register_task("main".to_string());
    let w = world.clone();
    let b = body.clone();
    let handle = std::thread::Builder::new()
        .name("xct-model-root".to_string())
        .spawn(move || crate::thread::task_entry(w, main_id, move || b()))
        .expect("spawn model root task");
    let failure = world.control();
    if failure.is_none() {
        let _ = handle.join();
    } else {
        // Failing schedule: parked task threads are leaked on purpose —
        // never unwind user code mid-critical-section. Exploration stops
        // at the first failure, so the leak is bounded.
        drop(handle);
    }
    (failure, world.take_choices())
}

//! Deterministic schedule traces.
//!
//! Every schedule the explorer runs is fully described by the ordered list
//! of branch decisions the controller made: at each *choice point* (a state
//! with more than one runnable task after the preemption bound is applied)
//! it picked `chosen` out of `options` candidates. That list round-trips
//! through a printable [`TraceId`] (`xm1-<hex>` over a varint encoding), so
//! any failing schedule can be replayed exactly from its ID — no wall
//! clock, no ambient randomness; the only entropy source is the explicit
//! seed of [`Strategy::Random`](crate::Strategy::Random).

use std::fmt;

/// One scheduling decision: index `chosen` out of `options` candidates.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) struct Choice {
    pub chosen: u32,
    pub options: u32,
}

/// How a [`Cursor`] decides branches beyond its recorded prefix.
pub(crate) enum Pick {
    /// Always the first candidate (DFS extends depth-first).
    First,
    /// Seeded pseudo-random candidate.
    Random(SplitMix64),
}

/// Replays a recorded decision prefix, then extends it with fresh picks;
/// records everything actually taken so the schedule can be encoded.
pub(crate) struct Cursor {
    prefix: Vec<Choice>,
    pos: usize,
    pick: Pick,
    taken: Vec<Choice>,
}

impl Cursor {
    pub fn new(prefix: Vec<Choice>, pick: Pick) -> Cursor {
        Cursor {
            prefix,
            pos: 0,
            pick,
            taken: Vec::new(),
        }
    }

    /// Decide a choice point with `options >= 2` candidates.
    pub fn choose(&mut self, options: u32) -> u32 {
        debug_assert!(options >= 2);
        let chosen = if self.pos < self.prefix.len() {
            // Replaying: clamp defensively so a divergent replay (fewer
            // candidates than recorded) still yields a valid schedule.
            self.prefix[self.pos].chosen.min(options - 1)
        } else {
            match &mut self.pick {
                Pick::First => 0,
                // in-range: remainder of `% options` is < options <= u32::MAX
                Pick::Random(rng) => (rng.next() % u64::from(options)) as u32,
            }
        };
        self.pos += 1;
        self.taken.push(Choice { chosen, options });
        chosen
    }

    pub fn into_taken(self) -> Vec<Choice> {
        self.taken
    }
}

/// Replayable identifier of one explored schedule: the branch decisions
/// varint-encoded and rendered as `xm1-<hex>`.
///
/// Printed in every [`Failure`](crate::Failure); feed it back through
/// [`replay`](crate::replay) to re-run exactly that interleaving.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct TraceId(String);

impl TraceId {
    pub(crate) fn encode(choices: &[Choice]) -> TraceId {
        let mut bytes = Vec::new();
        push_varint(&mut bytes, choices.len() as u64);
        for c in choices {
            push_varint(&mut bytes, u64::from(c.chosen));
            push_varint(&mut bytes, u64::from(c.options));
        }
        let mut s = String::with_capacity(4 + bytes.len() * 2);
        s.push_str("xm1-");
        for b in bytes {
            use fmt::Write;
            let _ = write!(s, "{b:02x}");
        }
        TraceId(s)
    }

    /// Parse a printed trace ID; `None` when malformed.
    pub fn parse(s: &str) -> Option<TraceId> {
        let hex = s.strip_prefix("xm1-")?;
        if hex.len() % 2 != 0 || !hex.bytes().all(|b| b.is_ascii_hexdigit()) {
            return None;
        }
        let id = TraceId(s.to_string());
        id.decode()?;
        Some(id)
    }

    /// The decoded decision list; `None` when the payload is truncated.
    pub(crate) fn decode(&self) -> Option<Vec<Choice>> {
        let hex = self.0.strip_prefix("xm1-")?;
        let mut bytes = Vec::with_capacity(hex.len() / 2);
        let raw = hex.as_bytes();
        let mut i = 0;
        while i + 1 < raw.len() + 1 && i + 2 <= raw.len() {
            let hi = hex_val(raw[i])?;
            let lo = hex_val(raw[i + 1])?;
            bytes.push(hi * 16 + lo);
            i += 2;
        }
        let mut pos = 0;
        let count = read_varint(&bytes, &mut pos)?;
        let mut out = Vec::new();
        for _ in 0..count {
            let chosen = read_varint(&bytes, &mut pos)?;
            let options = read_varint(&bytes, &mut pos)?;
            out.push(Choice {
                chosen: u32::try_from(chosen).ok()?,
                options: u32::try_from(options).ok()?,
            });
        }
        Some(out)
    }

    /// The printable form (`xm1-...`).
    pub fn as_str(&self) -> &str {
        &self.0
    }
}

impl fmt::Display for TraceId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

fn hex_val(b: u8) -> Option<u8> {
    match b {
        b'0'..=b'9' => Some(b - b'0'),
        b'a'..=b'f' => Some(b - b'a' + 10),
        b'A'..=b'F' => Some(b - b'A' + 10),
        _ => None,
    }
}

fn push_varint(out: &mut Vec<u8>, mut v: u64) {
    loop {
        // in-range: masked to 7 bits before widening back
        let mut byte = (v & 0x7f) as u8;
        v >>= 7;
        if v != 0 {
            byte |= 0x80;
        }
        out.push(byte);
        if v == 0 {
            return;
        }
    }
}

fn read_varint(bytes: &[u8], pos: &mut usize) -> Option<u64> {
    let mut v: u64 = 0;
    let mut shift = 0;
    loop {
        let b = *bytes.get(*pos)?;
        *pos += 1;
        v |= u64::from(b & 0x7f) << shift;
        if b & 0x80 == 0 {
            return Some(v);
        }
        shift += 7;
        if shift > 63 {
            return None;
        }
    }
}

/// SplitMix64: tiny, deterministic, explicitly seeded PRNG for the random
/// exploration strategy. Not cryptographic; chosen because one u64 of
/// state makes "same seed → same schedule stream" trivially auditable.
pub(crate) struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    pub fn new(seed: u64) -> SplitMix64 {
        SplitMix64 { state: seed }
    }

    pub fn next(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn trace_round_trips() {
        let choices = vec![
            Choice {
                chosen: 0,
                options: 2,
            },
            Choice {
                chosen: 2,
                options: 3,
            },
            Choice {
                chosen: 1,
                options: 200,
            },
        ];
        let id = TraceId::encode(&choices);
        assert!(id.as_str().starts_with("xm1-"));
        let parsed = TraceId::parse(id.as_str()).expect("parses");
        assert_eq!(parsed.decode().expect("decodes"), choices);
    }

    #[test]
    fn malformed_traces_rejected() {
        assert!(TraceId::parse("nope").is_none());
        assert!(TraceId::parse("xm1-zz").is_none());
        assert!(TraceId::parse("xm1-0").is_none());
        // Truncated payload: claims one choice but carries no bytes.
        assert!(TraceId::parse("xm1-01").is_none());
    }

    #[test]
    fn splitmix_is_deterministic() {
        let mut a = SplitMix64::new(42);
        let mut b = SplitMix64::new(42);
        for _ in 0..16 {
            assert_eq!(a.next(), b.next());
        }
        let mut c = SplitMix64::new(43);
        assert_ne!(SplitMix64::new(42).next(), c.next());
    }
}

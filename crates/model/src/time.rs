//! Time facade: `Instant` is a real clock reading in passthrough and a
//! discrete virtual-clock reading inside a model schedule. The virtual
//! clock only advances when the controller has nothing runnable and some
//! task holds a timed wait — so deadline loops (`started.elapsed() >
//! deadline`) terminate in model time without any real sleeping, and the
//! schedule stays a pure function of the decision list.

pub use std::time::Duration;

use crate::world;

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Inner {
    Real(std::time::Instant),
    Virtual(u64),
}

/// Facade instant; mirrors the `std::time::Instant` surface the runtime
/// uses (`now`, `elapsed`, `duration_since`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Instant(Inner);

impl Instant {
    /// The current time (a model preemption point in a schedule).
    pub fn now() -> Instant {
        match world::current() {
            Some((w, me)) => {
                w.yield_point(me);
                Instant(Inner::Virtual(w.now_ns()))
            }
            None => Instant(Inner::Real(std::time::Instant::now())),
        }
    }

    /// Time elapsed since this instant.
    pub fn elapsed(&self) -> Duration {
        match self.0 {
            Inner::Real(t) => t.elapsed(),
            Inner::Virtual(t0) => match world::current() {
                Some((w, me)) => {
                    w.yield_point(me);
                    Duration::from_nanos(w.now_ns().saturating_sub(t0))
                }
                None => Duration::ZERO,
            },
        }
    }

    /// Time between two instants (zero when `earlier` is later or the
    /// instants come from different clocks).
    pub fn duration_since(&self, earlier: Instant) -> Duration {
        match (self.0, earlier.0) {
            (Inner::Real(a), Inner::Real(b)) => a.saturating_duration_since(b),
            (Inner::Virtual(a), Inner::Virtual(b)) => Duration::from_nanos(a.saturating_sub(b)),
            _ => Duration::ZERO,
        }
    }
}

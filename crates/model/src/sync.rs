//! Sync facade: `Mutex`, `Condvar`, `RwLock`, atomics and `Arc`.
//!
//! Outside a model schedule every type is a thin passthrough to
//! `std::sync` — the per-operation overhead is one thread-local read.
//! Inside a model schedule (a closure running under
//! [`explore`](crate::explore)), each operation first reports to the
//! model scheduler: acquisition order, blocking, and wakeups become
//! controller decisions, which is what lets the explorer enumerate
//! interleavings and detect deadlocks/lost wakeups.
//!
//! Two deliberate departures from `std::sync`:
//!
//! * **No `LockResult`** — `lock()` always succeeds. Poisoning is tracked
//!   by the facade itself (a flag set when a guard drops during a panic)
//!   and queried via [`Mutex::is_poisoned`]/[`Mutex::clear_poison`], so
//!   callers can give poisoning a *typed* meaning (e.g. the pool's
//!   `PoolPoisoned`) instead of unwrapping.
//! * **Named locks** — [`Mutex::named`] assigns a lock class for the
//!   [`lockdep`](crate::lockdep) acquisition-order graph.

use std::sync::atomic::Ordering;
use std::sync::{
    Condvar as StdCondvar, Mutex as StdMutex, MutexGuard as StdMutexGuard, RwLock as StdRwLock,
    RwLockReadGuard as StdRwLockReadGuard, RwLockWriteGuard as StdRwLockWriteGuard,
};
use std::time::Duration;

pub use std::sync::Arc;

use crate::lockdep;
use crate::world::{self, World};

struct ModelRef {
    world: Arc<World>,
    id: usize,
}

fn model_mutex() -> Option<ModelRef> {
    world::current().map(|(world, _)| {
        let id = world.register_mutex();
        ModelRef { world, id }
    })
}

/// Facade mutex (see module docs for the differences from `std`).
pub struct Mutex<T> {
    data: StdMutex<T>,
    model: Option<ModelRef>,
    class: usize,
    poisoned: std::sync::atomic::AtomicBool,
}

impl<T> Mutex<T> {
    /// An unnamed mutex (no lockdep class).
    pub fn new(value: T) -> Mutex<T> {
        Mutex {
            data: StdMutex::new(value),
            model: model_mutex(),
            class: lockdep::ANON,
            poisoned: std::sync::atomic::AtomicBool::new(false),
        }
    }

    /// A mutex with a lockdep class name (acquisition-order tracking in
    /// debug builds). Use stable, path-like names: `"pool/state"`.
    pub fn named(class: &'static str, value: T) -> Mutex<T> {
        Mutex {
            data: StdMutex::new(value),
            model: model_mutex(),
            class: lockdep::intern(class),
            poisoned: std::sync::atomic::AtomicBool::new(false),
        }
    }

    /// Acquire the mutex. Never fails: a poisoned inner lock is recovered
    /// (check [`is_poisoned`](Self::is_poisoned) for a typed policy).
    pub fn lock(&self) -> MutexGuard<'_, T> {
        if let Some(m) = &self.model {
            if let Some((_, me)) = world::current() {
                m.world.mutex_lock(me, m.id);
            }
            // A non-task thread touching a model-schedule lock falls
            // through to the real mutex below, which model holders also
            // hold for their critical sections.
        }
        lockdep::on_acquire(self.class);
        let inner = self.data.lock().unwrap_or_else(|p| p.into_inner());
        MutexGuard {
            lock: self,
            inner: Some(inner),
        }
    }

    /// Whether a guard was ever dropped during a panic (facade-level
    /// poisoning; surviving callers decide what that means).
    pub fn is_poisoned(&self) -> bool {
        self.poisoned.load(Ordering::Acquire) || self.data.is_poisoned()
    }

    /// Clear the poison flag (recovery is the caller's policy).
    pub fn clear_poison(&self) {
        self.poisoned.store(false, Ordering::Release);
        self.data.clear_poison();
    }

    /// Mutable access without locking (requires `&mut self`).
    pub fn get_mut(&mut self) -> &mut T {
        // A poisoned std mutex still hands out its data via get_mut.
        match self.data.get_mut() {
            Ok(v) => v,
            Err(p) => p.into_inner(),
        }
    }
}

impl<T: std::fmt::Debug> std::fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Mutex").finish_non_exhaustive()
    }
}

impl<T: Default> Default for Mutex<T> {
    fn default() -> Mutex<T> {
        Mutex::new(T::default())
    }
}

/// Guard for [`Mutex`]; releases (and reports to the model scheduler) on
/// drop.
pub struct MutexGuard<'a, T> {
    lock: &'a Mutex<T>,
    /// `None` only while a condvar wait has disassembled the guard.
    inner: Option<StdMutexGuard<'a, T>>,
}

impl<T> std::ops::Deref for MutexGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        self.inner.as_ref().expect("guard disassembled")
    }
}

impl<T> std::ops::DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        self.inner.as_mut().expect("guard disassembled")
    }
}

impl<T> Drop for MutexGuard<'_, T> {
    fn drop(&mut self) {
        // Drop the real guard first so the next owner can take the inner
        // lock as soon as the model grants it.
        if self.inner.take().is_some() {
            if std::thread::panicking() {
                self.lock.poisoned.store(true, Ordering::Release);
            }
            lockdep::on_release(self.lock.class);
            if let Some(m) = &self.lock.model {
                m.world.mutex_unlock(m.id);
            }
        }
    }
}

/// Result of [`Condvar::wait_timeout`]; mirrors
/// `std::sync::WaitTimeoutResult`.
#[derive(Debug, Clone, Copy)]
pub struct WaitTimeoutResult {
    timed_out: bool,
}

impl WaitTimeoutResult {
    /// Whether the wait ended by timeout rather than notify.
    pub fn timed_out(&self) -> bool {
        self.timed_out
    }
}

struct CvRef {
    world: Arc<World>,
    id: usize,
}

/// Facade condition variable. In the model there are **no spurious
/// wakeups**: a wakeup is always a notify or a timeout, so a protocol
/// that relies on one is reported as a lost wakeup instead of limping
/// through.
pub struct Condvar {
    std: StdCondvar,
    model: Option<CvRef>,
}

impl Default for Condvar {
    fn default() -> Condvar {
        Condvar::new()
    }
}

impl Condvar {
    /// A new condition variable.
    pub fn new() -> Condvar {
        Condvar {
            std: StdCondvar::new(),
            model: world::current().map(|(world, _)| {
                let id = world.register_condvar();
                CvRef { world, id }
            }),
        }
    }

    /// Wait until notified, releasing and reacquiring the guard's mutex.
    pub fn wait<'a, T>(&self, guard: MutexGuard<'a, T>) -> MutexGuard<'a, T> {
        self.wait_inner(guard, None).0
    }

    /// Wait with a timeout (virtual-clock time in the model).
    pub fn wait_timeout<'a, T>(
        &self,
        guard: MutexGuard<'a, T>,
        dur: Duration,
    ) -> (MutexGuard<'a, T>, WaitTimeoutResult) {
        self.wait_inner(guard, Some(dur))
    }

    fn wait_inner<'a, T>(
        &self,
        mut guard: MutexGuard<'a, T>,
        dur: Option<Duration>,
    ) -> (MutexGuard<'a, T>, WaitTimeoutResult) {
        let lock = guard.lock;
        let model_wait = match (&self.model, &lock.model, world::current()) {
            (Some(cv), Some(m), Some((_, me))) => Some((cv, m, me)),
            _ => None,
        };
        if let Some((cv, m, me)) = model_wait {
            drop(guard.inner.take());
            lockdep::on_release(lock.class);
            std::mem::forget(guard); // fully disassembled; Drop must not run
            let timed_out = cv.world.condvar_wait(me, cv.id, m.id, dur);
            lockdep::on_acquire(lock.class);
            let inner = lock.data.lock().unwrap_or_else(|p| p.into_inner());
            (
                MutexGuard {
                    lock,
                    inner: Some(inner),
                },
                WaitTimeoutResult { timed_out },
            )
        } else {
            let inner = guard.inner.take().expect("guard disassembled");
            lockdep::on_release(lock.class);
            std::mem::forget(guard);
            let (inner, timed_out) = match dur {
                None => (
                    self.std.wait(inner).unwrap_or_else(|p| p.into_inner()),
                    false,
                ),
                Some(d) => match self.std.wait_timeout(inner, d) {
                    Ok((g, r)) => (g, r.timed_out()),
                    Err(p) => {
                        let (g, r) = p.into_inner();
                        (g, r.timed_out())
                    }
                },
            };
            lockdep::on_acquire(lock.class);
            (
                MutexGuard {
                    lock,
                    inner: Some(inner),
                },
                WaitTimeoutResult { timed_out },
            )
        }
    }

    /// Wake one waiter (the lowest-id waiting task in the model, which
    /// keeps schedules deterministic).
    pub fn notify_one(&self) {
        match (&self.model, world::current()) {
            (Some(cv), Some((_, me))) => {
                cv.world.condvar_notify(me, cv.id, false);
                // Defensive: also wake any passthrough thread parked on
                // the real condvar.
                self.std.notify_one();
            }
            _ => self.std.notify_one(),
        }
    }

    /// Wake all waiters.
    pub fn notify_all(&self) {
        match (&self.model, world::current()) {
            (Some(cv), Some((_, me))) => {
                cv.world.condvar_notify(me, cv.id, true);
                self.std.notify_all();
            }
            _ => self.std.notify_all(),
        }
    }
}

struct RwRef {
    world: Arc<World>,
    id: usize,
}

/// Facade reader-writer lock (same poisoning policy as [`Mutex`]).
pub struct RwLock<T> {
    data: StdRwLock<T>,
    model: Option<RwRef>,
    class: usize,
}

impl<T> RwLock<T> {
    /// An unnamed rwlock.
    pub fn new(value: T) -> RwLock<T> {
        RwLock {
            data: StdRwLock::new(value),
            model: world::current().map(|(world, _)| {
                let id = world.register_rwlock();
                RwRef { world, id }
            }),
            class: lockdep::ANON,
        }
    }

    /// An rwlock with a lockdep class name.
    pub fn named(class: &'static str, value: T) -> RwLock<T> {
        let mut l = RwLock::new(value);
        l.class = lockdep::intern(class);
        l
    }

    /// Acquire shared read access.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        if let Some(m) = &self.model {
            if let Some((_, me)) = world::current() {
                m.world.rw_lock(me, m.id, false);
            }
        }
        lockdep::on_acquire(self.class);
        let inner = self.data.read().unwrap_or_else(|p| p.into_inner());
        RwLockReadGuard {
            lock: self,
            inner: Some(inner),
        }
    }

    /// Acquire exclusive write access.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        if let Some(m) = &self.model {
            if let Some((_, me)) = world::current() {
                m.world.rw_lock(me, m.id, true);
            }
        }
        lockdep::on_acquire(self.class);
        let inner = self.data.write().unwrap_or_else(|p| p.into_inner());
        RwLockWriteGuard {
            lock: self,
            inner: Some(inner),
        }
    }
}

/// Read guard for [`RwLock`].
pub struct RwLockReadGuard<'a, T> {
    lock: &'a RwLock<T>,
    inner: Option<StdRwLockReadGuard<'a, T>>,
}

impl<T> std::ops::Deref for RwLockReadGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        self.inner.as_ref().expect("guard disassembled")
    }
}

impl<T> Drop for RwLockReadGuard<'_, T> {
    fn drop(&mut self) {
        if self.inner.take().is_some() {
            lockdep::on_release(self.lock.class);
            if let Some(m) = &self.lock.model {
                m.world.rw_unlock(m.id, false);
            }
        }
    }
}

/// Write guard for [`RwLock`].
pub struct RwLockWriteGuard<'a, T> {
    lock: &'a RwLock<T>,
    inner: Option<StdRwLockWriteGuard<'a, T>>,
}

impl<T> std::ops::Deref for RwLockWriteGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        self.inner.as_ref().expect("guard disassembled")
    }
}

impl<T> std::ops::DerefMut for RwLockWriteGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        self.inner.as_mut().expect("guard disassembled")
    }
}

impl<T> Drop for RwLockWriteGuard<'_, T> {
    fn drop(&mut self) {
        if self.inner.take().is_some() {
            lockdep::on_release(self.lock.class);
            if let Some(m) = &self.lock.model {
                m.world.rw_unlock(m.id, true);
            }
        }
    }
}

/// Atomics facade: passthrough values whose every operation is a model
/// preemption point, so interleavings around flag checks get explored.
pub mod atomic {
    pub use std::sync::atomic::Ordering;

    use crate::world;

    fn preempt() {
        if let Some((w, me)) = world::current() {
            w.yield_point(me);
        }
    }

    macro_rules! facade_atomic {
        ($name:ident, $std:ty, $prim:ty) => {
            /// Facade atomic; operations are model preemption points.
            #[derive(Debug, Default)]
            pub struct $name {
                v: $std,
            }

            impl $name {
                /// A new atomic holding `v`.
                pub const fn new(v: $prim) -> $name {
                    $name { v: <$std>::new(v) }
                }

                /// Atomic load.
                pub fn load(&self, o: Ordering) -> $prim {
                    preempt();
                    self.v.load(o)
                }

                /// Atomic store.
                pub fn store(&self, val: $prim, o: Ordering) {
                    preempt();
                    self.v.store(val, o);
                }

                /// Atomic swap.
                pub fn swap(&self, val: $prim, o: Ordering) -> $prim {
                    preempt();
                    self.v.swap(val, o)
                }
            }
        };
    }

    facade_atomic!(AtomicBool, std::sync::atomic::AtomicBool, bool);
    facade_atomic!(AtomicU64, std::sync::atomic::AtomicU64, u64);
    facade_atomic!(AtomicUsize, std::sync::atomic::AtomicUsize, usize);

    impl AtomicU64 {
        /// Atomic fetch-add.
        pub fn fetch_add(&self, val: u64, o: Ordering) -> u64 {
            preempt();
            self.v.fetch_add(val, o)
        }

        /// Atomic fetch-max.
        pub fn fetch_max(&self, val: u64, o: Ordering) -> u64 {
            preempt();
            self.v.fetch_max(val, o)
        }
    }

    impl AtomicUsize {
        /// Atomic fetch-add.
        pub fn fetch_add(&self, val: usize, o: Ordering) -> usize {
            preempt();
            self.v.fetch_add(val, o)
        }

        /// Atomic fetch-sub.
        pub fn fetch_sub(&self, val: usize, o: Ordering) -> usize {
            preempt();
            self.v.fetch_sub(val, o)
        }
    }

    impl AtomicBool {
        /// Atomic fetch-or.
        pub fn fetch_or(&self, val: bool, o: Ordering) -> bool {
            preempt();
            self.v.fetch_or(val, o)
        }
    }
}

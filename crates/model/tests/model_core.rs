//! End-to-end checks of the schedule explorer itself: exhaustive clean
//! protocols, deterministic detection of seeded bugs (lost wakeup, ABBA
//! deadlock, assertion violation), trace-ID replay, and virtual time.

use xct_model::channel;
use xct_model::sync::{Arc, Condvar, Mutex};
use xct_model::time::{Duration, Instant};
use xct_model::{explore, replay, thread, Config, FailureKind};

#[test]
fn clean_counter_protocol_is_exhaustively_verified() {
    let report = explore(&Config::dfs(), || {
        let n = Arc::new(Mutex::new(0u32));
        let n2 = n.clone();
        let t = thread::spawn(move || {
            *n2.lock() += 1;
        });
        *n.lock() += 1;
        t.join().unwrap();
        assert_eq!(*n.lock(), 2);
    });
    report.assert_clean();
    assert!(report.complete, "DFS should exhaust this tiny tree");
    assert!(report.schedules > 1, "must explore more than one schedule");
}

#[test]
fn condvar_handshake_is_clean() {
    // Correct protocol: flag + condvar, waiter re-checks under the lock.
    let report = explore(&Config::dfs(), || {
        let pair = Arc::new((Mutex::new(false), Condvar::new()));
        let p2 = pair.clone();
        let t = thread::spawn(move || {
            let (m, cv) = &*p2;
            *m.lock() = true;
            cv.notify_one();
        });
        let (m, cv) = &*pair;
        let mut g = m.lock();
        while !*g {
            g = cv.wait(g);
        }
        drop(g);
        t.join().unwrap();
    });
    report.assert_clean();
    assert!(report.complete);
}

/// The classic TOCTOU lost wakeup: the waiter checks the flag, *drops the
/// lock*, then re-locks and waits. The notify can land in the gap.
fn lost_wakeup_body() {
    let pair = Arc::new((Mutex::new(false), Condvar::new()));
    let p2 = pair.clone();
    let t = thread::spawn(move || {
        let (m, cv) = &*p2;
        *m.lock() = true;
        cv.notify_one();
    });
    let (m, cv) = &*pair;
    let ready = *m.lock(); // check...
    if !ready {
        let g = m.lock(); // ...re-lock: the notify may already be gone
        let _g = cv.wait(g);
    }
    t.join().unwrap();
}

#[test]
fn toctou_lost_wakeup_is_detected_deterministically() {
    let a = explore(&Config::dfs(), lost_wakeup_body);
    let f1 = a.failure.expect("checker must find the lost wakeup");
    assert_eq!(f1.kind, FailureKind::LostWakeup, "got: {f1}");

    // Same exploration again: identical trace ID (pure function of body).
    let b = explore(&Config::dfs(), lost_wakeup_body);
    let f2 = b.failure.expect("second run must find it too");
    assert_eq!(f1.trace, f2.trace, "trace IDs must be deterministic");

    // Replaying the printed trace reproduces exactly that failure.
    let r = replay(&f1.trace, &Config::dfs(), lost_wakeup_body);
    let fr = r.failure.expect("replay must reproduce the failure");
    assert_eq!(fr.kind, FailureKind::LostWakeup);
    assert_eq!(fr.trace, f1.trace);
}

#[test]
fn seeded_random_exploration_is_deterministic() {
    let cfg = Config::random(0xDECAF).schedules(500);
    let a = explore(&cfg, lost_wakeup_body);
    let b = explore(&cfg, lost_wakeup_body);
    match (&a.failure, &b.failure) {
        (Some(fa), Some(fb)) => {
            assert_eq!(fa.trace, fb.trace);
            assert_eq!(fa.schedule, fb.schedule);
        }
        (None, None) => panic!("seed 0xDECAF should find the lost wakeup within 500 schedules"),
        _ => panic!("same seed must give the same outcome"),
    }
}

#[test]
fn abba_deadlock_is_detected() {
    fn body() {
        let a = Arc::new(Mutex::named("model-test/a", ()));
        let b = Arc::new(Mutex::named("model-test/b", ()));
        let (a2, b2) = (a.clone(), b.clone());
        let t = thread::spawn(move || {
            let _ga = a2.lock();
            let _gb = b2.lock();
        });
        let _gb = b.lock();
        let _ga = a.lock();
        drop((_ga, _gb));
        t.join().unwrap();
    }
    let r1 = explore(&Config::dfs(), body);
    let f1 = r1.failure.expect("ABBA deadlock must be found");
    assert_eq!(f1.kind, FailureKind::Deadlock, "got: {f1}");
    let r2 = explore(&Config::dfs(), body);
    assert_eq!(f1.trace, r2.failure.expect("found again").trace);
}

#[test]
fn assertion_violation_is_reported_with_trace() {
    // Unsynchronized read-modify-write via a mutex released mid-update:
    // some interleaving loses an increment and trips the assert.
    fn body() {
        let n = Arc::new(Mutex::new(0u32));
        let n2 = n.clone();
        let t = thread::spawn(move || {
            let read = *n2.lock(); // lock dropped here: stale read
            *n2.lock() = read + 1;
        });
        let read = *n.lock();
        *n.lock() = read + 1;
        t.join().unwrap();
        assert_eq!(*n.lock(), 2, "lost update");
    }
    let report = explore(&Config::dfs(), body);
    let f = report.failure.expect("lost update must be caught");
    assert_eq!(f.kind, FailureKind::Panic);
    assert!(
        f.message.contains("lost update"),
        "panic payload surfaced: {f}"
    );
    assert!(f.trace.as_str().starts_with("xm1-"));
    // And the trace replays to the same panic.
    let r = replay(&f.trace, &Config::dfs(), body);
    assert_eq!(r.failure.expect("replays").kind, FailureKind::Panic);
}

#[test]
fn virtual_time_makes_timeouts_instant() {
    // A 30-second recv_timeout on a channel nobody sends to: in model
    // time this completes immediately (the controller advances the
    // virtual clock), and the schedule is clean.
    let start = std::time::Instant::now();
    let report = explore(&Config::dfs(), || {
        let (tx, rx) = channel::unbounded::<u8>();
        let begin = Instant::now();
        let got = rx.recv_timeout(Duration::from_secs(30));
        assert_eq!(got, Err(channel::RecvTimeoutError::Timeout));
        assert!(begin.elapsed() >= Duration::from_secs(30));
        drop(tx);
    });
    report.assert_clean();
    assert!(report.complete);
    assert!(
        start.elapsed() < std::time::Duration::from_secs(5),
        "virtual time must not sleep for real"
    );
}

#[test]
fn channel_send_recv_explored_clean() {
    let report = explore(&Config::dfs(), || {
        let (tx, rx) = channel::unbounded::<u32>();
        let t = thread::spawn(move || {
            tx.send(7).unwrap();
        });
        assert_eq!(rx.recv(), Ok(7));
        t.join().unwrap();
    });
    report.assert_clean();
    assert!(report.complete);
}

#[test]
fn disconnected_channel_reports_disconnect_not_deadlock() {
    let report = explore(&Config::dfs(), || {
        let (tx, rx) = channel::unbounded::<u32>();
        drop(tx);
        assert_eq!(rx.recv(), Err(channel::RecvError));
    });
    report.assert_clean();
}

#[test]
fn trace_ids_parse_and_roundtrip() {
    let f = explore(&Config::dfs(), lost_wakeup_body)
        .failure
        .expect("failure");
    let parsed = xct_model::TraceId::parse(f.trace.as_str()).expect("printed trace parses");
    assert_eq!(parsed, f.trace);
    assert!(xct_model::TraceId::parse("garbage").is_none());
}

#[test]
fn passthrough_backend_behaves_like_std() {
    // No explore(): everything below is the production passthrough.
    let n = Arc::new(Mutex::named("model-test/passthrough", 0u64));
    let cv = Arc::new(Condvar::new());
    let mut handles = Vec::new();
    for _ in 0..4 {
        let (n2, cv2) = (n.clone(), cv.clone());
        handles.push(thread::spawn(move || {
            *n2.lock() += 1;
            cv2.notify_all();
        }));
    }
    let mut g = n.lock();
    while *g < 4 {
        g = cv.wait(g);
    }
    drop(g);
    for h in handles {
        h.join().unwrap();
    }
    assert_eq!(*n.lock(), 4);
    assert!(!n.is_poisoned());
}

#[test]
fn facade_poisoning_is_observable_and_clearable() {
    let m = Arc::new(Mutex::new(0u32));
    let m2 = m.clone();
    let t = thread::spawn(move || {
        let _g = m2.lock();
        panic!("die holding the lock");
    });
    assert!(t.join().is_err());
    assert!(m.is_poisoned());
    // lock() still succeeds — poisoning is a flag, not a panic.
    assert_eq!(*m.lock(), 0);
    m.clear_poison();
    assert!(!m.is_poisoned());
}

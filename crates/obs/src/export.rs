//! Human-text and JSON exporters for [`MetricsSnapshot`].
//!
//! The JSON schema (all sections always present, names sorted):
//!
//! ```json
//! {
//!   "counters": {"name": 123},
//!   "gauges":   {"name": 1.5},
//!   "timers":   {"name": {"count": 2, "total_s": 0.5, "min_s": 0.1, "max_s": 0.4}},
//!   "series":   {"name": [3.0, 2.0, 1.0]},
//!   "matrices": {"name": {"size": 2, "data": [[0, 8], [4, 0]]}}
//! }
//! ```

use std::fmt::Write as _;

use crate::registry::MetricsSnapshot;

/// Append a JSON string literal (with escaping) to `out`.
fn json_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            // in-range: a char code point fits u32 by definition
            c if (c as u32) < 0x20 => {
                // in-range: a char code point fits u32 by definition
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Append a JSON number; non-finite values become `null` (JSON has no
/// NaN/Infinity). `Display` for `f64` is shortest-roundtrip, so no
/// precision is lost.
fn json_f64(out: &mut String, v: f64) {
    if v.is_finite() {
        let _ = write!(out, "{v}");
    } else {
        out.push_str("null");
    }
}

fn json_map<K: AsRef<str>, V, F: FnMut(&mut String, &V)>(
    out: &mut String,
    entries: impl Iterator<Item = (K, V)>,
    mut write_value: F,
) {
    out.push('{');
    for (i, (k, v)) in entries.enumerate() {
        if i > 0 {
            out.push(',');
        }
        json_string(out, k.as_ref());
        out.push(':');
        write_value(out, &v);
    }
    out.push('}');
}

impl MetricsSnapshot {
    /// Serialize to a compact, deterministic JSON document (see the module
    /// docs for the schema).
    pub fn to_json(&self) -> String {
        let mut out = String::with_capacity(1024);
        out.push('{');

        out.push_str("\"counters\":");
        json_map(&mut out, self.counters.iter(), |o, v| {
            let _ = write!(o, "{v}");
        });

        out.push_str(",\"gauges\":");
        json_map(&mut out, self.gauges.iter(), |o, v| json_f64(o, **v));

        out.push_str(",\"timers\":");
        json_map(&mut out, self.timers.iter(), |o, t| {
            let _ = write!(o, "{{\"count\":{},\"total_s\":", t.count);
            json_f64(o, t.total_s);
            o.push_str(",\"min_s\":");
            json_f64(o, t.min_s);
            o.push_str(",\"max_s\":");
            json_f64(o, t.max_s);
            o.push('}');
        });

        out.push_str(",\"series\":");
        json_map(&mut out, self.series.iter(), |o, vals| {
            o.push('[');
            for (i, v) in vals.iter().enumerate() {
                if i > 0 {
                    o.push(',');
                }
                json_f64(o, *v);
            }
            o.push(']');
        });

        out.push_str(",\"matrices\":");
        json_map(&mut out, self.matrices.iter(), |o, m| {
            let _ = write!(o, "{{\"size\":{},\"data\":[", m.size);
            for row in 0..m.size {
                if row > 0 {
                    o.push(',');
                }
                o.push('[');
                for col in 0..m.size {
                    if col > 0 {
                        o.push(',');
                    }
                    let _ = write!(o, "{}", m.get(row, col));
                }
                o.push(']');
            }
            o.push_str("]}");
        });

        out.push('}');
        out
    }

    /// Render a human-readable report (one section per metric kind,
    /// skipping empty sections).
    pub fn to_text(&self) -> String {
        let mut out = String::new();
        if !self.counters.is_empty() {
            out.push_str("counters:\n");
            for (k, v) in &self.counters {
                let _ = writeln!(out, "  {k:<40} {v}");
            }
        }
        if !self.gauges.is_empty() {
            out.push_str("gauges:\n");
            for (k, v) in &self.gauges {
                let _ = writeln!(out, "  {k:<40} {v:.6}");
            }
        }
        if !self.timers.is_empty() {
            out.push_str("timers:\n");
            for (k, t) in &self.timers {
                let _ = writeln!(
                    out,
                    "  {k:<40} total {:.6}s  n={}  min {:.6}s  max {:.6}s",
                    t.total_s, t.count, t.min_s, t.max_s
                );
            }
        }
        if !self.series.is_empty() {
            out.push_str("series:\n");
            for (k, vals) in &self.series {
                let _ = write!(out, "  {k:<40} [");
                for (i, v) in vals.iter().enumerate() {
                    if i > 0 {
                        out.push_str(", ");
                    }
                    let _ = write!(out, "{v:.4}");
                }
                out.push_str("]\n");
            }
        }
        if !self.matrices.is_empty() {
            out.push_str("matrices:\n");
            for (k, m) in &self.matrices {
                let _ = writeln!(out, "  {k} ({0}x{0}):", m.size);
                for row in 0..m.size {
                    out.push_str("   ");
                    for col in 0..m.size {
                        let _ = write!(out, " {:>10}", m.get(row, col));
                    }
                    out.push('\n');
                }
            }
        }
        if out.is_empty() {
            out.push_str("(no metrics recorded)\n");
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use crate::Metrics;

    fn sample() -> crate::MetricsSnapshot {
        let m = Metrics::collecting();
        m.counter_add("spmv/calls", 12);
        m.gauge_set("solver/early_terminated", 1.0);
        m.timer_observe("kernel/ap_s", 0.25);
        m.series_push("solver/residual_norm", 2.0);
        m.series_push("solver/residual_norm", 1.0);
        m.matrix_set("comm/bytes", 2, vec![0, 8, 4, 0]);
        m.snapshot()
    }

    #[test]
    fn json_is_deterministic_and_complete() {
        let s = sample();
        let a = s.to_json();
        let b = s.to_json();
        assert_eq!(a, b);
        assert_eq!(
            a,
            "{\"counters\":{\"spmv/calls\":12},\
             \"gauges\":{\"solver/early_terminated\":1},\
             \"timers\":{\"kernel/ap_s\":{\"count\":1,\"total_s\":0.25,\"min_s\":0.25,\"max_s\":0.25}},\
             \"series\":{\"solver/residual_norm\":[2,1]},\
             \"matrices\":{\"comm/bytes\":{\"size\":2,\"data\":[[0,8],[4,0]]}}}"
        );
    }

    #[test]
    fn empty_snapshot_has_all_sections() {
        let s = Metrics::collecting().snapshot();
        assert_eq!(
            s.to_json(),
            "{\"counters\":{},\"gauges\":{},\"timers\":{},\"series\":{},\"matrices\":{}}"
        );
    }

    #[test]
    fn non_finite_values_become_null() {
        let m = Metrics::collecting();
        m.gauge_set("bad", f64::NAN);
        m.gauge_set("worse", f64::INFINITY);
        let j = m.snapshot().to_json();
        assert!(j.contains("\"bad\":null"));
        assert!(j.contains("\"worse\":null"));
    }

    #[test]
    fn keys_are_escaped() {
        let m = Metrics::collecting();
        m.counter_add("we\"ird\\name", 1);
        assert!(m.snapshot().to_json().contains("\"we\\\"ird\\\\name\":1"));
    }

    #[test]
    fn text_report_mentions_every_metric() {
        let t = sample().to_text();
        for name in [
            "spmv/calls",
            "solver/early_terminated",
            "kernel/ap_s",
            "solver/residual_norm",
            "comm/bytes",
        ] {
            assert!(t.contains(name), "missing {name} in:\n{t}");
        }
    }
}

//! Nestable timing spans over monotonic clocks.

use std::time::Instant;

use crate::registry::Metrics;

/// A timing scope. Created by [`Metrics::span`]; dropping it records the
/// elapsed seconds into the timer named by the span's `/`-joined path.
///
/// Spans nest through [`Span::child`]:
///
/// ```
/// use xct_obs::Metrics;
/// let m = Metrics::collecting();
/// {
///     let preprocess = m.span("preprocess");
///     {
///         let _tracing = preprocess.child("tracing");
///     } // records timer "preprocess/tracing"
/// } // records timer "preprocess"
/// let snap = m.snapshot();
/// assert!(snap.timers.contains_key("preprocess"));
/// assert!(snap.timers.contains_key("preprocess/tracing"));
/// ```
///
/// Spans from a no-op handle never read the clock and record nothing.
pub struct Span {
    metrics: Metrics,
    path: String,
    /// `None` on the no-op path — the clock is never consulted.
    started: Option<Instant>,
}

impl Span {
    pub(crate) fn begin(metrics: Metrics, name: &str) -> Span {
        let started = metrics.enabled().then(Instant::now);
        Span {
            metrics,
            path: name.to_owned(),
            started,
        }
    }

    /// Open a nested span recording under `self.path() + "/" + name`.
    pub fn child(&self, name: &str) -> Span {
        let path = format!("{}/{name}", self.path);
        let started = self.metrics.enabled().then(Instant::now);
        Span {
            metrics: self.metrics.clone(),
            path,
            started,
        }
    }

    /// The timer name this span records under.
    pub fn path(&self) -> &str {
        &self.path
    }

    /// Seconds elapsed so far (0 on the no-op path).
    pub fn elapsed_s(&self) -> f64 {
        self.started.map_or(0.0, |t| t.elapsed().as_secs_f64())
    }
}

impl Drop for Span {
    fn drop(&mut self) {
        if let Some(t) = self.started {
            self.metrics
                .timer_observe(&self.path, t.elapsed().as_secs_f64());
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn spans_record_on_drop() {
        let m = Metrics::collecting();
        {
            let _s = m.span("outer");
        }
        let snap = m.snapshot();
        assert_eq!(snap.timers["outer"].count, 1);
        assert!(snap.timers["outer"].total_s >= 0.0);
    }

    #[test]
    fn children_join_paths() {
        let m = Metrics::collecting();
        let outer = m.span("a");
        let inner = outer.child("b");
        assert_eq!(inner.path(), "a/b");
        let leaf = inner.child("c");
        assert_eq!(leaf.path(), "a/b/c");
        drop(leaf);
        drop(inner);
        drop(outer);
        let snap = m.snapshot();
        assert_eq!(
            snap.timers.keys().cloned().collect::<Vec<_>>(),
            vec!["a", "a/b", "a/b/c"]
        );
    }

    #[test]
    fn noop_spans_never_read_the_clock() {
        let m = Metrics::noop();
        let s = m.span("x");
        assert_eq!(s.elapsed_s(), 0.0);
        assert!(s.started.is_none());
    }
}

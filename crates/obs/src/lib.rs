//! Structured observability for the MemXCT pipeline: one metrics registry
//! that every layer — preprocessing, SpMV kernels, the solver engine, and
//! the distributed communicator — records into, so timing and volume
//! reports come from a single instrumented source of truth instead of
//! ad-hoc per-binary stopwatches.
//!
//! Design:
//!
//! - [`Metrics`] is a cheaply clonable handle. [`Metrics::noop`] carries
//!   no registry at all: every record call is a branch on a `None` and
//!   spans never even read the clock, so uninstrumented runs pay nothing.
//!   [`Metrics::collecting`] attaches a shared [`MetricsRegistry`].
//! - Five metric kinds cover the pipeline's signals: monotonically
//!   increasing **counters** (nnz processed, bytes moved, kernel calls),
//!   last-value **gauges** (matrix shape, early-termination decision),
//!   **timers** (count/total/min/max seconds — kernel and phase times),
//!   append-only **series** (per-iteration solver residuals, the L-curve
//!   axes), and square u64 **matrices** (the per-pair communication
//!   volumes of §3.4 / Fig 7).
//! - [`Span`]s are lightweight nestable scopes with monotonic timing:
//!   dropping a span adds its elapsed time to the timer named by its
//!   `/`-joined path (`preprocess/tracing`).
//! - [`MetricsSnapshot`] is an immutable, deterministically ordered copy
//!   of the registry with human-text ([`MetricsSnapshot::to_text`]) and
//!   JSON ([`MetricsSnapshot::to_json`]) exporters.
//!
//! Instrumentation must never perturb numerics: nothing in this crate
//! touches solver data, only observations about it.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

mod export;
mod registry;
mod span;

pub use registry::{
    MatrixSnapshot, Metrics, MetricsRegistry, MetricsSnapshot, TimerSummary, BREAKER_STATE,
    BREAKER_TRIPS, CACHE_EVICT, CACHE_HIT, CACHE_MISS, FAULT_ABORTS, FAULT_INJECTED,
    FAULT_RANK_LOSS, FAULT_RESTARTS, FAULT_RETRIES, FAULT_TIMEOUTS, JOB_COMPLETED, JOB_FAILED,
    JOB_PANICS, JOB_PREEMPTED, JOB_QUEUE_SECONDS, JOB_REJECTED, JOB_RESUMED, JOB_RETRIES,
    JOB_RUN_SECONDS, JOB_SHED, JOB_STOPPED, JOB_SUBMITTED, JOB_TIMEOUTS, KERNEL_AP_SECONDS,
    KERNEL_C_SECONDS, KERNEL_R_SECONDS, LOCKDEP_EDGES,
};
pub use span::Span;

//! The metrics registry and the [`Metrics`] handle layered over it.

use std::collections::BTreeMap;
use std::sync::Arc;

use parking_lot::Mutex;

use crate::span::Span;

/// Timer name the operator layer uses for partial-projection (A_p) time.
/// Shared-memory kernels put *all* SpMV time here.
pub const KERNEL_AP_SECONDS: &str = "kernel/ap_s";
/// Timer name for communication time (C, Cᵀ, scalar allreduces).
pub const KERNEL_C_SECONDS: &str = "kernel/c_s";
/// Timer name for overlap reduction / gather assembly time (R, Rᵀ).
pub const KERNEL_R_SECONDS: &str = "kernel/r_s";

/// Counter of injected faults that actually fired during a run (crashes,
/// drops, delays, bit flips), recorded at the coordinator from the
/// communicator's fault ledger.
pub const FAULT_INJECTED: &str = "fault/injected";
/// Counter of message retransmissions after dropped or corrupt frames.
pub const FAULT_RETRIES: &str = "fault/retries";
/// Counter of collectives that hit their deadline and returned a timeout.
pub const FAULT_TIMEOUTS: &str = "fault/timeouts";
/// Counter of collectives aborted because a peer had already failed.
pub const FAULT_ABORTS: &str = "fault/aborts";
/// Counter of unrecoverable rank losses observed by the fault-tolerant
/// distributed driver (each one triggers a degraded restart or an error).
pub const FAULT_RANK_LOSS: &str = "fault/rank_loss";
/// Counter of degraded restarts: solves rebuilt over the surviving ranks
/// from the last checkpoint after a rank loss.
pub const FAULT_RESTARTS: &str = "fault/restarts";

/// Counter of plan-cache lookups served by an already-built reconstructor
/// (the preprocessing cost was amortized away entirely).
pub const CACHE_HIT: &str = "cache/hit";
/// Counter of plan-cache lookups that had to build (and validate) a new
/// reconstructor.
pub const CACHE_MISS: &str = "cache/miss";
/// Counter of reconstructors evicted from the plan cache to stay within
/// its capacity bound.
pub const CACHE_EVICT: &str = "cache/evict";

/// Counter of jobs accepted into the serving queue.
pub const JOB_SUBMITTED: &str = "job/submitted";
/// Counter of jobs that ran to completion.
pub const JOB_COMPLETED: &str = "job/completed";
/// Counter of jobs that failed with a reconstruction error.
pub const JOB_FAILED: &str = "job/failed";
/// Counter of jobs rejected by admission control (queued measurement
/// bytes would exceed the configured bound).
pub const JOB_REJECTED: &str = "job/rejected";
/// Counter of preemptions: a running job checkpointed at an iteration
/// boundary to yield to a higher-priority arrival.
pub const JOB_PREEMPTED: &str = "job/preempted";
/// Counter of preempted jobs resumed from their checkpoint.
pub const JOB_RESUMED: &str = "job/resumed";
/// Timer of time jobs spent queued before first being scheduled.
pub const JOB_QUEUE_SECONDS: &str = "job/queue_s";
/// Timer of time jobs spent actually solving (across all attempts).
pub const JOB_RUN_SECONDS: &str = "job/run_s";
/// Counter of job attempts that panicked; the payload is captured into a
/// typed `JobError::Panicked` and the runtime keeps serving.
pub const JOB_PANICS: &str = "job/panics";
/// Counter of jobs that exceeded their deadline (admission-time sheds of
/// already-expired jobs included); the last checkpoint is retained.
pub const JOB_TIMEOUTS: &str = "job/timeouts";
/// Counter of job retries: attempts re-queued (with deterministic
/// backoff) after a retryable fault, resuming from the last checkpoint.
pub const JOB_RETRIES: &str = "job/retries";
/// Counter of submissions shed because the runtime circuit breaker was
/// open (typed `SubmitError::Degraded`).
pub const JOB_SHED: &str = "job/shed";
/// Counter of jobs terminated by a `CheckpointAndStop`/`Abort` shutdown
/// before completing.
pub const JOB_STOPPED: &str = "job/stopped";
/// Gauge of the runtime circuit breaker state: 0 = closed (serving),
/// 1 = open (shedding), 2 = half-open (probing).
pub const BREAKER_STATE: &str = "breaker/state";
/// Counter of circuit-breaker trips (closed → open transitions after K
/// consecutive job failures).
pub const BREAKER_TRIPS: &str = "breaker/trips";

/// Matrix of observed lock-acquisition-order edges recorded by the
/// `xct-model` lockdep pass in debug builds: row = held lock class,
/// column = class acquired while holding it, 1 = edge observed. Class
/// names come from `xct_model::lockdep::classes()`.
pub const LOCKDEP_EDGES: &str = "lockdep/edges";

/// Aggregated observations of one timer (or histogram-like metric).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TimerSummary {
    /// Number of observations.
    pub count: u64,
    /// Sum of all observed values (seconds for timers).
    pub total_s: f64,
    /// Smallest observation.
    pub min_s: f64,
    /// Largest observation.
    pub max_s: f64,
}

impl TimerSummary {
    fn observe(&mut self, v: f64) {
        self.count += 1;
        self.total_s += v;
        self.min_s = self.min_s.min(v);
        self.max_s = self.max_s.max(v);
    }

    fn new(v: f64) -> Self {
        TimerSummary {
            count: 1,
            total_s: v,
            min_s: v,
            max_s: v,
        }
    }
}

/// A square matrix of u64 values (row-major), e.g. per-pair communication
/// bytes with `data[src * size + dst]`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MatrixSnapshot {
    /// Edge length (number of ranks).
    pub size: usize,
    /// Row-major `size × size` values.
    pub data: Vec<u64>,
}

impl MatrixSnapshot {
    /// Value at `(row, col)`.
    pub fn get(&self, row: usize, col: usize) -> u64 {
        self.data[row * self.size + col]
    }
}

#[derive(Default)]
struct State {
    counters: BTreeMap<String, u64>,
    gauges: BTreeMap<String, f64>,
    timers: BTreeMap<String, TimerSummary>,
    series: BTreeMap<String, Vec<f64>>,
    matrices: BTreeMap<String, MatrixSnapshot>,
}

/// Thread-safe store for all metric kinds. Usually reached through a
/// [`Metrics`] handle rather than directly.
#[derive(Default)]
pub struct MetricsRegistry {
    state: Mutex<State>,
}

impl MetricsRegistry {
    /// An empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Immutable, deterministically ordered copy of everything recorded.
    pub fn snapshot(&self) -> MetricsSnapshot {
        let st = self.state.lock();
        MetricsSnapshot {
            counters: st.counters.clone(),
            gauges: st.gauges.clone(),
            timers: st.timers.clone(),
            series: st.series.clone(),
            matrices: st.matrices.clone(),
        }
    }
}

/// An immutable copy of a [`MetricsRegistry`], ordered by metric name in
/// every section so exports are deterministic.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct MetricsSnapshot {
    /// Monotonic counters.
    pub counters: BTreeMap<String, u64>,
    /// Last-value gauges.
    pub gauges: BTreeMap<String, f64>,
    /// Timer summaries.
    pub timers: BTreeMap<String, TimerSummary>,
    /// Append-only value series (e.g. per-iteration residuals).
    pub series: BTreeMap<String, Vec<f64>>,
    /// Square u64 matrices (e.g. the communication matrix).
    pub matrices: BTreeMap<String, MatrixSnapshot>,
}

impl MetricsSnapshot {
    /// True when nothing was recorded.
    pub fn is_empty(&self) -> bool {
        self.counters.is_empty()
            && self.gauges.is_empty()
            && self.timers.is_empty()
            && self.series.is_empty()
            && self.matrices.is_empty()
    }

    /// Total seconds of a timer, or 0 when never observed.
    pub fn timer_total(&self, name: &str) -> f64 {
        self.timers.get(name).map_or(0.0, |t| t.total_s)
    }
}

/// Handle for recording metrics. Clones share the underlying registry;
/// the [`noop`](Metrics::noop) handle has no registry and records nothing
/// (each call is a single `None` branch — the zero-cost path).
#[derive(Clone, Default)]
pub struct Metrics {
    inner: Option<Arc<MetricsRegistry>>,
}

impl Metrics {
    /// A handle that records nothing. This is also `Default`.
    pub fn noop() -> Self {
        Metrics { inner: None }
    }

    /// A handle backed by a fresh registry.
    pub fn collecting() -> Self {
        Metrics {
            inner: Some(Arc::new(MetricsRegistry::new())),
        }
    }

    /// Whether this handle actually records.
    pub fn enabled(&self) -> bool {
        self.inner.is_some()
    }

    /// Add `v` to the counter `name`.
    pub fn counter_add(&self, name: &str, v: u64) {
        if let Some(r) = &self.inner {
            let mut st = r.state.lock();
            *st.counters.entry_or_insert(name) += v;
        }
    }

    /// Set the gauge `name` to `v` (last write wins).
    pub fn gauge_set(&self, name: &str, v: f64) {
        if let Some(r) = &self.inner {
            r.state.lock().gauges.insert(name.to_owned(), v);
        }
    }

    /// Record one observation of the timer `name` (seconds).
    pub fn timer_observe(&self, name: &str, seconds: f64) {
        if let Some(r) = &self.inner {
            let mut st = r.state.lock();
            match st.timers.get_mut(name) {
                Some(t) => t.observe(seconds),
                None => {
                    st.timers
                        .insert(name.to_owned(), TimerSummary::new(seconds));
                }
            }
        }
    }

    /// Append `v` to the series `name`.
    pub fn series_push(&self, name: &str, v: f64) {
        if let Some(r) = &self.inner {
            let mut st = r.state.lock();
            match st.series.get_mut(name) {
                Some(s) => s.push(v),
                None => {
                    st.series.insert(name.to_owned(), vec![v]);
                }
            }
        }
    }

    /// Store the square matrix `name` (row-major, `size × size`).
    ///
    /// # Panics
    /// Panics if `data.len() != size * size`.
    pub fn matrix_set(&self, name: &str, size: usize, data: Vec<u64>) {
        assert_eq!(data.len(), size * size, "matrix must be size × size");
        if let Some(r) = &self.inner {
            r.state
                .lock()
                .matrices
                .insert(name.to_owned(), MatrixSnapshot { size, data });
        }
    }

    /// Open a timing span named `name`. Dropping the returned guard adds
    /// the elapsed seconds to the timer of the same name; nested child
    /// spans record under `parent/child` paths. The no-op handle returns
    /// a span that never reads the clock.
    pub fn span(&self, name: &str) -> Span {
        Span::begin(self.clone(), name)
    }

    /// Total seconds of a timer, or `None` for no-op handles / never
    /// observed timers. Cheaper than a full snapshot.
    pub fn timer_total(&self, name: &str) -> Option<f64> {
        self.inner
            .as_ref()
            .map(|r| r.state.lock().timers.get(name).map_or(0.0, |t| t.total_s))
    }

    /// Snapshot the registry (empty snapshot for the no-op handle).
    pub fn snapshot(&self) -> MetricsSnapshot {
        self.inner
            .as_ref()
            .map(|r| r.snapshot())
            .unwrap_or_default()
    }
}

/// `BTreeMap::entry(..).or_insert(0)` without allocating the key when it
/// already exists (counter names are recorded per kernel call).
trait EntryOrInsert {
    fn entry_or_insert(&mut self, name: &str) -> &mut u64;
}

impl EntryOrInsert for BTreeMap<String, u64> {
    fn entry_or_insert(&mut self, name: &str) -> &mut u64 {
        if !self.contains_key(name) {
            self.insert(name.to_owned(), 0);
        }
        self.get_mut(name).expect("inserted above")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate() {
        let m = Metrics::collecting();
        m.counter_add("spmv/calls", 2);
        m.counter_add("spmv/calls", 3);
        assert_eq!(m.snapshot().counters["spmv/calls"], 5);
    }

    #[test]
    fn gauges_keep_last_value() {
        let m = Metrics::collecting();
        m.gauge_set("g", 1.0);
        m.gauge_set("g", 7.5);
        assert_eq!(m.snapshot().gauges["g"], 7.5);
    }

    #[test]
    fn timers_summarize() {
        let m = Metrics::collecting();
        m.timer_observe("t", 0.5);
        m.timer_observe("t", 1.5);
        m.timer_observe("t", 1.0);
        let t = m.snapshot().timers["t"];
        assert_eq!(t.count, 3);
        assert!((t.total_s - 3.0).abs() < 1e-12);
        assert_eq!(t.min_s, 0.5);
        assert_eq!(t.max_s, 1.5);
        assert_eq!(m.timer_total("t"), Some(3.0));
    }

    #[test]
    fn series_preserve_order() {
        let m = Metrics::collecting();
        for v in [3.0, 2.0, 1.0] {
            m.series_push("res", v);
        }
        assert_eq!(m.snapshot().series["res"], vec![3.0, 2.0, 1.0]);
    }

    #[test]
    fn matrices_round_trip() {
        let m = Metrics::collecting();
        m.matrix_set("comm", 2, vec![0, 1, 2, 0]);
        let mat = &m.snapshot().matrices["comm"];
        assert_eq!(mat.get(0, 1), 1);
        assert_eq!(mat.get(1, 0), 2);
    }

    #[test]
    fn noop_records_nothing() {
        let m = Metrics::noop();
        assert!(!m.enabled());
        m.counter_add("c", 1);
        m.gauge_set("g", 1.0);
        m.timer_observe("t", 1.0);
        m.series_push("s", 1.0);
        m.matrix_set("m", 1, vec![9]);
        drop(m.span("span"));
        assert!(m.snapshot().is_empty());
        assert_eq!(m.timer_total("t"), None);
    }

    #[test]
    fn clones_share_the_registry() {
        let m = Metrics::collecting();
        let c = m.clone();
        c.counter_add("shared", 4);
        assert_eq!(m.snapshot().counters["shared"], 4);
    }

    #[test]
    #[should_panic(expected = "size × size")]
    fn matrix_shape_is_checked_even_for_noop() {
        Metrics::noop().matrix_set("m", 2, vec![1, 2, 3]);
    }
}

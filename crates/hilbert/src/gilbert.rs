//! Generalized Hilbert ("gilbert") curve for arbitrary rectangles.
//!
//! MemXCT orders the power-of-two tiles that cover an arbitrary-sized domain
//! with "a Hilbert ordering for rectangular domains" (paper §3.2, citing
//! Zhang et al.). We implement the recursive generalized-Hilbert scheme,
//! which produces a continuous curve (every consecutive pair of cells is
//! 4-adjacent) over any `w × h` rectangle with `w, h ≥ 1`.

/// Enumerate the cells of a `width × height` rectangle along a generalized
/// Hilbert curve. Returns the visit sequence: `result[d] = (x, y)`.
///
/// The curve starts at `(0, 0)`. Every consecutive pair of cells is
/// 8-adjacent; it is fully 4-adjacent (a continuous curve) unless the
/// larger dimension is odd while the smaller is even, in which case a
/// handful of diagonal steps are unavoidable in this construction (the
/// "pseudo" in pseudo-Hilbert).
pub fn gilbert2d(width: u32, height: u32) -> Vec<(u32, u32)> {
    let n = (width as usize) * (height as usize);
    let mut out = Vec::with_capacity(n);
    if n == 0 {
        return out;
    }
    if width >= height {
        generate(&mut out, 0, 0, width as i64, 0, 0, height as i64);
    } else {
        generate(&mut out, 0, 0, 0, height as i64, width as i64, 0);
    }
    debug_assert_eq!(out.len(), n);
    out
}

/// Recursive generator. `(x, y)` is the current corner; `(ax, ay)` is the
/// major axis vector (length = span of the major direction); `(bx, by)` is
/// the minor axis vector.
fn generate(out: &mut Vec<(u32, u32)>, x: i64, y: i64, ax: i64, ay: i64, bx: i64, by: i64) {
    let w = ax.abs() + ay.abs();
    let h = bx.abs() + by.abs();

    // Unit steps in each direction.
    let (dax, day) = (ax.signum(), ay.signum());
    let (dbx, dby) = (bx.signum(), by.signum());

    if h == 1 {
        // Trivial row fill.
        let (mut cx, mut cy) = (x, y);
        for _ in 0..w {
            // in-range: curve coordinates stay inside the u32 w x h rectangle
            out.push((cx as u32, cy as u32));
            cx += dax;
            cy += day;
        }
        return;
    }
    if w == 1 {
        // Trivial column fill.
        let (mut cx, mut cy) = (x, y);
        for _ in 0..h {
            // in-range: curve coordinates stay inside the u32 w x h rectangle
            out.push((cx as u32, cy as u32));
            cx += dbx;
            cy += dby;
        }
        return;
    }

    // Floor division (not truncation): the axis vectors go negative in the
    // recursive calls and the split point must round consistently downward.
    let (mut ax2, mut ay2) = (ax.div_euclid(2), ay.div_euclid(2));
    let (mut bx2, mut by2) = (bx.div_euclid(2), by.div_euclid(2));
    let w2 = ax2.abs() + ay2.abs();
    let h2 = bx2.abs() + by2.abs();

    if 2 * w > 3 * h {
        if (w2 % 2 != 0) && (w > 2) {
            // Prefer even steps.
            ax2 += dax;
            ay2 += day;
        }
        // Long case: split in two pieces only.
        generate(out, x, y, ax2, ay2, bx, by);
        generate(out, x + ax2, y + ay2, ax - ax2, ay - ay2, bx, by);
    } else {
        if (h2 % 2 != 0) && (h > 2) {
            // Prefer even steps.
            bx2 += dbx;
            by2 += dby;
        }
        // Standard case: one step up, one long horizontal, one step down.
        generate(out, x, y, bx2, by2, ax2, ay2);
        generate(out, x + bx2, y + by2, ax, ay, bx - bx2, by - by2);
        generate(
            out,
            x + (ax - dax) + (bx2 - dbx),
            y + (ay - day) + (by2 - dby),
            -bx2,
            -by2,
            -(ax - ax2),
            -(ay - ay2),
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn check_bijection(w: u32, h: u32) {
        let seq = gilbert2d(w, h);
        assert_eq!(seq.len(), (w * h) as usize);
        let mut seen = vec![false; (w * h) as usize];
        for &(x, y) in &seq {
            assert!(x < w && y < h, "({x},{y}) outside {w}x{h}");
            let idx = (y * w + x) as usize;
            assert!(!seen[idx], "cell ({x},{y}) repeated in {w}x{h}");
            seen[idx] = true;
        }
    }

    fn check_continuity(w: u32, h: u32) {
        // Fully continuous unless the larger dimension is odd and the
        // smaller even; in that case diagonal (8-adjacent) steps may occur.
        let diagonal_ok = (w.max(h) % 2 == 1) && w.min(h).is_multiple_of(2);
        let seq = gilbert2d(w, h);
        for pair in seq.windows(2) {
            let (ax, ay) = pair[0];
            let (bx, by) = pair[1];
            let cheb = ax.abs_diff(bx).max(ay.abs_diff(by));
            let manh = ax.abs_diff(bx) + ay.abs_diff(by);
            assert_eq!(
                cheb, 1,
                "non-8-adjacent step in {w}x{h}: {:?} -> {:?}",
                pair[0], pair[1]
            );
            if !diagonal_ok {
                assert_eq!(
                    manh, 1,
                    "discontinuity in {w}x{h}: {:?} -> {:?}",
                    pair[0], pair[1]
                );
            }
        }
    }

    #[test]
    fn bijection_for_many_sizes() {
        for w in 1..=20 {
            for h in 1..=20 {
                check_bijection(w, h);
            }
        }
    }

    #[test]
    fn continuous_for_many_sizes() {
        for w in 1..=20 {
            for h in 1..=20 {
                check_continuity(w, h);
            }
        }
    }

    #[test]
    fn large_rectangles() {
        check_bijection(173, 89);
        check_continuity(173, 89);
        check_bijection(4, 1000);
        check_continuity(4, 1000);
    }

    #[test]
    fn starts_at_origin() {
        for (w, h) in [(5, 3), (16, 16), (3, 13)] {
            assert_eq!(gilbert2d(w, h)[0], (0, 0));
        }
    }

    #[test]
    fn paper_tile_grid_13x11_with_4x4_tiles() {
        // The 13x11 domain of Fig 4 is covered by a 4x3 grid of 4x4 tiles.
        check_bijection(4, 3);
        check_continuity(4, 3);
    }
}

//! Space-filling orderings for 2D domains, as used by MemXCT (SC '19, §3.2).
//!
//! The central export is [`Ordering2D`], a bijection between the cells of a
//! `width × height` domain and the linear indices `0..width*height`. MemXCT
//! stores both the tomogram and the sinogram in *two-level pseudo-Hilbert
//! order*: the domain is tiled with the minimum number of equal power-of-two
//! square tiles, the tiles are laid out along a generalized (rectangular)
//! Hilbert curve, and the cells inside each tile follow a classic Hilbert
//! curve whose orientation is chosen to connect with the neighbouring tiles.
//!
//! The crate also provides row-major, column-major, Morton, and single-level
//! Hilbert orderings for comparison, plus locality metrics used by the
//! evaluation (Fig 5, Fig 9(b) of the paper).

#![warn(missing_docs)]
#![forbid(unsafe_code)]

mod gilbert;
mod hilbert_square;
mod morton;
mod ordering;
mod two_level;

pub use gilbert::gilbert2d;
pub use hilbert_square::{hilbert_d2xy, hilbert_xy2d, Symmetry};
pub use morton::{morton_decode, morton_encode};
pub use ordering::{Ordering2D, OrderingKind};
pub use two_level::{TileLayout, TwoLevelOrdering};

/// Smallest power of two `>= n` (n must be nonzero).
#[inline]
pub fn next_pow2(n: u32) -> u32 {
    n.next_power_of_two()
}

/// Pick the tile size the paper's rule implies: the minimum number of
/// equal-size power-of-two square tiles that cover a `width × height`
/// domain while keeping tiles meaningful (at least 2×2, at most the
/// whole domain padded to a power of two).
///
/// MemXCT sizes tiles so that one tile's worth of data is on the order of a
/// cache line to a small block (Fig 4 uses 4×4 tiles on a 13×11 domain); we
/// default to the power of two closest to `sqrt(max(width, height))`, which
/// reproduces that choice (sqrt(13) ≈ 3.6 → 4).
pub fn default_tile_size(width: u32, height: u32) -> u32 {
    let m = width.max(height).max(1);
    let target = (m as f64).sqrt();
    // in-range: log2 of a tile count is far below u32::MAX
    let lo = (target.log2().floor() as u32).max(1);
    let lo_size = 1u32 << lo;
    let hi_size = lo_size * 2;
    // Choose the closer of the two bracketing powers of two.
    if (target - lo_size as f64).abs() <= (hi_size as f64 - target).abs() {
        lo_size.max(2)
    } else {
        hi_size.max(2)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_tile_size_matches_paper_example() {
        // Fig 4: a 13×11 domain is covered with 4×4 tiles.
        assert_eq!(default_tile_size(13, 11), 4);
    }

    #[test]
    fn default_tile_size_small_domains() {
        assert_eq!(default_tile_size(1, 1), 2);
        assert_eq!(default_tile_size(4, 4), 2);
        assert_eq!(default_tile_size(256, 256), 16);
    }

    #[test]
    fn next_pow2_basics() {
        assert_eq!(next_pow2(1), 1);
        assert_eq!(next_pow2(3), 4);
        assert_eq!(next_pow2(4), 4);
        assert_eq!(next_pow2(1000), 1024);
    }
}

//! Morton (Z-order) encoding, used as a comparison ordering.
//!
//! The paper (§3.2.3) notes that Morton ordering does *not* guarantee that
//! adjacent memory locations are adjacent in the 2D domain, which breaks
//! partition connectivity; we include it so the benchmarks can demonstrate
//! that claim.

/// Interleave the bits of `x` and `y` into a Morton code.
#[inline]
pub fn morton_encode(x: u32, y: u32) -> u64 {
    part1by1(x) | (part1by1(y) << 1)
}

/// Recover `(x, y)` from a Morton code.
#[inline]
pub fn morton_decode(code: u64) -> (u32, u32) {
    (compact1by1(code), compact1by1(code >> 1))
}

#[inline]
fn part1by1(v: u32) -> u64 {
    let mut v = v as u64;
    v &= 0xffff_ffff;
    v = (v | (v << 16)) & 0x0000_ffff_0000_ffff;
    v = (v | (v << 8)) & 0x00ff_00ff_00ff_00ff;
    v = (v | (v << 4)) & 0x0f0f_0f0f_0f0f_0f0f;
    v = (v | (v << 2)) & 0x3333_3333_3333_3333;
    v = (v | (v << 1)) & 0x5555_5555_5555_5555;
    v
}

#[inline]
fn compact1by1(v: u64) -> u32 {
    let mut v = v & 0x5555_5555_5555_5555;
    v = (v | (v >> 1)) & 0x3333_3333_3333_3333;
    v = (v | (v >> 2)) & 0x0f0f_0f0f_0f0f_0f0f;
    v = (v | (v >> 4)) & 0x00ff_00ff_00ff_00ff;
    v = (v | (v >> 8)) & 0x0000_ffff_0000_ffff;
    v = (v | (v >> 16)) & 0x0000_0000_ffff_ffff;
    // in-range: the de-interleave mask keeps only the low 32 bits
    v as u32
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn encode_decode_roundtrip() {
        for x in (0..1024).step_by(37) {
            for y in (0..1024).step_by(41) {
                assert_eq!(morton_decode(morton_encode(x, y)), (x, y));
            }
        }
    }

    #[test]
    fn encode_is_monotone_in_quadrants() {
        // All codes in the lower-left 2x2 quadrant precede the others.
        let max_ll = [(0, 0), (1, 0), (0, 1), (1, 1)]
            .iter()
            .map(|&(x, y)| morton_encode(x, y))
            .max()
            .unwrap();
        assert!(max_ll < morton_encode(2, 0));
        assert!(max_ll < morton_encode(0, 2));
    }

    #[test]
    fn known_values() {
        assert_eq!(morton_encode(0, 0), 0);
        assert_eq!(morton_encode(1, 0), 1);
        assert_eq!(morton_encode(0, 1), 2);
        assert_eq!(morton_encode(1, 1), 3);
        assert_eq!(morton_encode(2, 0), 4);
    }

    #[test]
    fn large_coordinates() {
        let (x, y) = (u32::MAX, u32::MAX / 3);
        assert_eq!(morton_decode(morton_encode(x, y)), (x, y));
    }
}

//! The two-level pseudo-Hilbert ordering of MemXCT (§3.2, Fig 4).
//!
//! Level 1: cover the `width × height` domain with the minimum number of
//! equal `tile × tile` square tiles (`tile` a power of two) and order the
//! tiles along a generalized Hilbert curve for the rectangular tile grid.
//!
//! Level 2: order the cells inside each tile along a classic Hilbert curve,
//! choosing one of the eight square symmetries per tile so the curve enters
//! close to where the previous tile's curve exited ("necessary rotations are
//! performed to provide data connectivity among tiles").
//!
//! Cells of boundary tiles that fall outside the domain are skipped, so the
//! ordering covers arbitrary rectangle sizes (hence *pseudo*-Hilbert).

use crate::gilbert::gilbert2d;
use crate::hilbert_square::{hilbert_d2xy, Symmetry};
use crate::ordering::{Ordering2D, OrderingKind};

/// The tile decomposition that level 1 of the ordering induces. MemXCT
/// reuses it for process-level domain decomposition (§3.4, Fig 4(b)):
/// each MPI rank owns a contiguous run of tiles.
#[derive(Debug, Clone)]
pub struct TileLayout {
    /// Side length of the (square, power-of-two) tiles.
    pub tile_size: u32,
    /// Number of tiles along x.
    pub tiles_x: u32,
    /// Number of tiles along y.
    pub tiles_y: u32,
    /// Tile coordinates in curve order: `tile_order[i] = (tx, ty)`.
    pub tile_order: Vec<(u32, u32)>,
    /// Number of in-domain cells in each tile, in curve order.
    pub tile_cells: Vec<u32>,
    /// Exclusive prefix sum of `tile_cells` (length `tiles + 1`): the rank
    /// range of tile `i` is `tile_offsets[i]..tile_offsets[i + 1]`.
    pub tile_offsets: Vec<u32>,
}

impl TileLayout {
    /// Number of tiles.
    pub fn num_tiles(&self) -> usize {
        self.tile_order.len()
    }

    /// Split the tiles into `parts` contiguous runs with near-equal *cell*
    /// counts and return, for each part, its rank range `lo..hi`.
    ///
    /// This is MemXCT's process-level decomposition: "Each subdomain
    /// consists of a single or several tiles". Load balance improves with
    /// finer tile granularity (§3.4).
    pub fn partition_ranks(&self, parts: usize) -> Vec<std::ops::Range<u32>> {
        assert!(parts > 0);
        let total = *self.tile_offsets.last().unwrap() as u64;
        let mut out = Vec::with_capacity(parts);
        let mut tile = 0usize;
        let ntiles = self.num_tiles();
        for p in 0..parts {
            let start_tile = tile;
            let target_end = (total * (p as u64 + 1)) / parts as u64;
            // Advance while the next tile keeps us at or below the target,
            // but leave enough tiles for the remaining parts.
            let remaining_parts = parts - p - 1;
            while tile < ntiles
                && (self.tile_offsets[tile + 1] as u64) <= target_end
                && ntiles - (tile + 1) >= remaining_parts
            {
                tile += 1;
            }
            // Every part must take at least one tile while tiles remain.
            if tile == start_tile && tile < ntiles && ntiles - tile > remaining_parts {
                tile += 1;
            }
            out.push(self.tile_offsets[start_tile]..self.tile_offsets[tile]);
        }
        debug_assert_eq!(out.last().unwrap().end, *self.tile_offsets.last().unwrap());
        out
    }
}

/// A two-level pseudo-Hilbert ordering together with its tile layout.
#[derive(Debug, Clone)]
pub struct TwoLevelOrdering {
    ordering: Ordering2D,
    layout: TileLayout,
}

impl TwoLevelOrdering {
    /// Build the ordering for a `width × height` domain with `tile × tile`
    /// tiles.
    ///
    /// # Panics
    /// Panics if `tile` is not a power of two or any dimension is zero.
    pub fn new(width: u32, height: u32, tile: u32) -> Self {
        assert!(width > 0 && height > 0, "domain must be non-empty");
        assert!(tile.is_power_of_two(), "tile size must be a power of two");

        let tiles_x = width.div_ceil(tile);
        let tiles_y = height.div_ceil(tile);
        let tile_order = gilbert2d(tiles_x, tiles_y);

        // Base curve for one full tile, reused for every symmetry variant.
        let base: Vec<(u32, u32)> = (0..(tile as u64 * tile as u64))
            // in-range: d < tile*tile with tile a u32 side length
            .map(|d| hilbert_d2xy(tile, d as u32))
            .collect();

        let mut seq: Vec<(u32, u32)> = Vec::with_capacity((width as usize) * (height as usize));
        let mut tile_cells = Vec::with_capacity(tile_order.len());
        let mut tile_offsets = Vec::with_capacity(tile_order.len() + 1);
        tile_offsets.push(0u32);

        let mut prev_exit: Option<(u32, u32)> = None;
        for (i, &(tx, ty)) in tile_order.iter().enumerate() {
            let ox = tx * tile;
            let oy = ty * tile;
            let next_origin = tile_order
                .get(i + 1)
                .map(|&(nx, ny)| (nx * tile, ny * tile));

            // Pick the symmetry whose (first valid cell) is closest to the
            // previous tile's exit, with the exit's distance to the next
            // tile as a tie-breaking lookahead.
            // (score, symmetry, entry cell, exit cell)
            type Candidate = (u64, Symmetry, (u32, u32), (u32, u32));
            let mut best: Option<Candidate> = None;
            for sym in Symmetry::ALL {
                let mut entry = None;
                let mut exit = (0, 0);
                for &(bx, by) in &base {
                    let (sx, sy) = sym.apply(tile, bx, by);
                    let (gx, gy) = (ox + sx, oy + sy);
                    if gx < width && gy < height {
                        if entry.is_none() {
                            entry = Some((gx, gy));
                        }
                        exit = (gx, gy);
                    }
                }
                let Some(entry) = entry else { continue };
                let d_entry = prev_exit
                    .map(|(px, py)| (px.abs_diff(entry.0) + py.abs_diff(entry.1)) as u64)
                    .unwrap_or(0);
                let d_next = next_origin
                    .map(|(nx, ny)| {
                        let cx = exit.0.clamp(nx, (nx + tile - 1).min(width - 1));
                        let cy = exit.1.clamp(ny, (ny + tile - 1).min(height - 1));
                        (exit.0.abs_diff(cx) + exit.1.abs_diff(cy)) as u64
                    })
                    .unwrap_or(0);
                let cost = 4 * d_entry + d_next;
                if best.as_ref().is_none_or(|(c, ..)| cost < *c) {
                    best = Some((cost, sym, entry, exit));
                }
            }

            let Some((_, sym, _, exit)) = best else {
                // Tile entirely outside the domain cannot happen given
                // div_ceil tiling, but keep the bookkeeping consistent.
                tile_cells.push(0);
                tile_offsets.push(*tile_offsets.last().unwrap());
                continue;
            };

            let before = seq.len();
            for &(bx, by) in &base {
                let (sx, sy) = sym.apply(tile, bx, by);
                let (gx, gy) = (ox + sx, oy + sy);
                if gx < width && gy < height {
                    seq.push((gx, gy));
                }
            }
            // in-range: per-tile cell count is at most tile*tile which fits u32
            let count = (seq.len() - before) as u32;
            tile_cells.push(count);
            tile_offsets.push(tile_offsets.last().unwrap() + count);
            prev_exit = Some(exit);
        }

        let ordering = Ordering2D::from_visit_sequence(
            width,
            height,
            OrderingKind::TwoLevelHilbert { tile },
            seq,
        );
        TwoLevelOrdering {
            ordering,
            layout: TileLayout {
                tile_size: tile,
                tiles_x,
                tiles_y,
                tile_order,
                tile_cells,
                tile_offsets,
            },
        }
    }

    /// Build with the paper's default tile-size heuristic.
    pub fn with_default_tile(width: u32, height: u32) -> Self {
        Self::new(width, height, crate::default_tile_size(width, height))
    }

    /// The cell-level ordering.
    pub fn ordering(&self) -> &Ordering2D {
        &self.ordering
    }

    /// The level-1 tile layout (for process decomposition).
    pub fn layout(&self) -> &TileLayout {
        &self.layout
    }

    /// Consume, returning only the cell ordering.
    pub fn into_ordering(self) -> Ordering2D {
        self.ordering
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn covers_paper_example_13x11_with_12_tiles() {
        // Fig 4(a): 13×11 domain, 4×4 tiles, 12 tiles (4×3 grid).
        let two = TwoLevelOrdering::new(13, 11, 4);
        assert_eq!(two.layout().num_tiles(), 12);
        assert_eq!(two.layout().tiles_x, 4);
        assert_eq!(two.layout().tiles_y, 3);
        assert_eq!(two.ordering().len(), 13 * 11);
    }

    #[test]
    fn tile_offsets_sum_to_domain() {
        for (w, h, t) in [(13, 11, 4), (17, 31, 8), (5, 5, 2), (64, 64, 16)] {
            let two = TwoLevelOrdering::new(w, h, t);
            assert_eq!(
                *two.layout().tile_offsets.last().unwrap(),
                w * h,
                "{w}x{h} tile {t}"
            );
        }
    }

    #[test]
    fn ranks_within_tile_are_contiguous() {
        let two = TwoLevelOrdering::new(13, 11, 4);
        let lay = two.layout();
        let ord = two.ordering();
        for (i, &(tx, ty)) in lay.tile_order.iter().enumerate() {
            let lo = lay.tile_offsets[i];
            let hi = lay.tile_offsets[i + 1];
            for rank in lo..hi {
                let (x, y) = ord.cell(rank);
                assert_eq!(x / lay.tile_size, tx);
                assert_eq!(y / lay.tile_size, ty);
            }
        }
    }

    #[test]
    fn high_adjacency_on_pow2_domain() {
        // On an exact power-of-two domain the two-level curve should be
        // nearly continuous: only tile-boundary hops may exceed distance 1,
        // and rotation selection keeps most of those at distance 1.
        let two = TwoLevelOrdering::new(32, 32, 8);
        let adj = two.ordering().adjacency_fraction();
        assert!(adj > 0.95, "adjacency {adj} too low");
    }

    #[test]
    fn better_locality_than_row_major() {
        let two = TwoLevelOrdering::new(13, 11, 4);
        let rm = Ordering2D::row_major(13, 11);
        assert!(two.ordering().mean_step_distance() < rm.mean_step_distance());
    }

    #[test]
    fn partition_ranks_cover_everything() {
        let two = TwoLevelOrdering::new(64, 48, 8);
        for parts in [1, 2, 3, 7, 16] {
            let ranges = two.layout().partition_ranks(parts);
            assert_eq!(ranges.len(), parts);
            assert_eq!(ranges[0].start, 0);
            assert_eq!(ranges.last().unwrap().end, 64 * 48);
            for w in ranges.windows(2) {
                assert_eq!(w[0].end, w[1].start);
            }
        }
    }

    #[test]
    fn partition_ranks_balanced() {
        let two = TwoLevelOrdering::new(256, 256, 16);
        let ranges = two.layout().partition_ranks(16);
        let sizes: Vec<u32> = ranges.iter().map(|r| r.end - r.start).collect();
        let avg = (256 * 256) / 16;
        for s in sizes {
            // Granularity is one 16x16 tile = 256 cells.
            assert!(
                (s as i64 - avg as i64).abs() <= 256,
                "size {s} vs avg {avg}"
            );
        }
    }

    #[test]
    fn process_partitions_are_connected() {
        // Fig 4(b): process subdomains (contiguous tile runs) stay connected.
        let two = TwoLevelOrdering::new(48, 40, 8);
        let ord = two.ordering();
        assert_eq!(ord.connected_partition_count(8), 8);
    }

    #[test]
    fn tile_of_rank_matches_layout() {
        let two = TwoLevelOrdering::new(20, 12, 4);
        let lay = two.layout();
        // tile_cells for interior tiles is 16.
        assert!(lay.tile_cells.iter().all(|&c| c <= 16 && c > 0));
        let sum: u32 = lay.tile_cells.iter().sum();
        assert_eq!(sum, 240);
    }

    #[test]
    fn tile_size_one_is_rejected_when_not_pow2() {
        // tile=1 is a power of two and degenerates to the level-1 curve.
        let two = TwoLevelOrdering::new(6, 5, 1);
        assert_eq!(two.ordering().len(), 30);
        assert_eq!(two.ordering().adjacency_fraction(), 1.0);
    }
}

//! [`Ordering2D`]: a bijection between 2D cells and linear memory ranks,
//! with locality metrics used throughout the MemXCT evaluation.

use crate::gilbert::gilbert2d;
use crate::hilbert_square::hilbert_d2xy;
use crate::morton::morton_encode;
use crate::next_pow2;
use crate::two_level::TwoLevelOrdering;

/// Which layout strategy produced an [`Ordering2D`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum OrderingKind {
    /// Naive row-major (C) layout; the paper's strawman (§3.2.1).
    RowMajor,
    /// Column-major (Fortran) layout.
    ColumnMajor,
    /// Morton / Z-order over the padded power-of-two square.
    Morton,
    /// Single-level Hilbert curve over the padded power-of-two square.
    HilbertSquare,
    /// Generalized Hilbert curve directly on the rectangle.
    Gilbert,
    /// MemXCT's two-level pseudo-Hilbert ordering with the given tile size.
    TwoLevelHilbert {
        /// Side length of the square power-of-two tiles.
        tile: u32,
    },
}

/// A bijection between the cells of a `width × height` domain and the
/// linear indices (`ranks`) `0..width*height`.
///
/// `rank` is the position of a cell in linear memory; `pos` is the cell's
/// linear 2D index `y * width + x`.
#[derive(Debug, Clone)]
pub struct Ordering2D {
    width: u32,
    height: u32,
    kind: OrderingKind,
    /// `rank_of[y * width + x]` = memory rank of cell `(x, y)`.
    rank_of: Vec<u32>,
    /// `pos_of[rank]` = `y * width + x` of the cell at that rank.
    pos_of: Vec<u32>,
}

impl Ordering2D {
    /// Build an ordering from an explicit visit sequence covering every cell
    /// of the domain exactly once.
    ///
    /// # Panics
    /// Panics if the sequence is not a bijection onto the domain.
    pub fn from_visit_sequence<I>(width: u32, height: u32, kind: OrderingKind, seq: I) -> Self
    where
        I: IntoIterator<Item = (u32, u32)>,
    {
        let n = (width as usize) * (height as usize);
        let mut rank_of = vec![u32::MAX; n];
        let mut pos_of = Vec::with_capacity(n);
        for (rank, (x, y)) in seq.into_iter().enumerate() {
            assert!(x < width && y < height, "cell ({x},{y}) outside domain");
            let pos = y * width + x;
            assert_eq!(rank_of[pos as usize], u32::MAX, "cell ({x},{y}) repeated");
            // in-range: rank < width*height which fits u32 by construction
            rank_of[pos as usize] = rank as u32;
            pos_of.push(pos);
        }
        assert_eq!(pos_of.len(), n, "visit sequence does not cover the domain");
        Ordering2D {
            width,
            height,
            kind,
            rank_of,
            pos_of,
        }
    }

    /// Build an ordering directly from raw `rank_of`/`pos_of` tables with
    /// NO bijection validation. Exists so the static invariant analysis
    /// (`xct-check`) and fault-injection paths (`memxct-cli check
    /// --corrupt`) can construct deliberately broken orderings; every
    /// production path goes through [`Ordering2D::from_visit_sequence`],
    /// which validates.
    pub fn from_raw_tables_unchecked(
        width: u32,
        height: u32,
        kind: OrderingKind,
        rank_of: Vec<u32>,
        pos_of: Vec<u32>,
    ) -> Self {
        Ordering2D {
            width,
            height,
            kind,
            rank_of,
            pos_of,
        }
    }

    /// Row-major (naive) ordering.
    pub fn row_major(width: u32, height: u32) -> Self {
        let seq = (0..height).flat_map(move |y| (0..width).map(move |x| (x, y)));
        Self::from_visit_sequence(width, height, OrderingKind::RowMajor, seq)
    }

    /// Column-major ordering.
    pub fn column_major(width: u32, height: u32) -> Self {
        let seq = (0..width).flat_map(move |x| (0..height).map(move |y| (x, y)));
        Self::from_visit_sequence(width, height, OrderingKind::ColumnMajor, seq)
    }

    /// Morton (Z-order) ordering: cells are sorted by Morton code of the
    /// padded power-of-two square, skipping cells outside the domain.
    pub fn morton(width: u32, height: u32) -> Self {
        let mut cells: Vec<(u32, u32)> = (0..height)
            .flat_map(|y| (0..width).map(move |x| (x, y)))
            .collect();
        cells.sort_by_key(|&(x, y)| morton_encode(x, y));
        Self::from_visit_sequence(width, height, OrderingKind::Morton, cells)
    }

    /// Single-level pseudo-Hilbert ordering: the classic Hilbert curve over
    /// the padded power-of-two square, skipping cells outside the domain.
    pub fn hilbert_square(width: u32, height: u32) -> Self {
        let n = next_pow2(width.max(height).max(1));
        let seq = (0..(n as u64 * n as u64))
            // in-range: d < n*n with n a padded u32 side length
            .map(move |d| hilbert_d2xy(n, d as u32))
            .filter(move |&(x, y)| x < width && y < height);
        Self::from_visit_sequence(width, height, OrderingKind::HilbertSquare, seq)
    }

    /// Generalized Hilbert curve directly over the rectangle (continuous,
    /// but no tile structure for process-level decomposition).
    pub fn gilbert(width: u32, height: u32) -> Self {
        Self::from_visit_sequence(
            width,
            height,
            OrderingKind::Gilbert,
            gilbert2d(width, height),
        )
    }

    /// MemXCT's two-level pseudo-Hilbert ordering (§3.2, Fig 4). Prefer
    /// [`TwoLevelOrdering::new`] when the tile layout is needed for domain
    /// decomposition; this convenience returns only the cell ordering.
    ///
    /// ```
    /// use xct_hilbert::Ordering2D;
    /// let ord = Ordering2D::two_level_hilbert(13, 11, 4);
    /// // A bijection between cells and memory ranks:
    /// let r = ord.rank(5, 3);
    /// assert_eq!(ord.cell(r), (5, 3));
    /// // ...with near-perfect curve continuity:
    /// assert!(ord.adjacency_fraction() > 0.9);
    /// ```
    pub fn two_level_hilbert(width: u32, height: u32, tile: u32) -> Self {
        TwoLevelOrdering::new(width, height, tile).into_ordering()
    }

    /// Which strategy produced this ordering.
    pub fn kind(&self) -> OrderingKind {
        self.kind
    }

    /// Domain width in cells.
    pub fn width(&self) -> u32 {
        self.width
    }

    /// Domain height in cells.
    pub fn height(&self) -> u32 {
        self.height
    }

    /// Total number of cells.
    pub fn len(&self) -> usize {
        self.pos_of.len()
    }

    /// True when the domain is empty.
    pub fn is_empty(&self) -> bool {
        self.pos_of.is_empty()
    }

    /// Memory rank of cell `(x, y)`.
    #[inline]
    pub fn rank(&self, x: u32, y: u32) -> u32 {
        debug_assert!(x < self.width && y < self.height);
        self.rank_of[(y * self.width + x) as usize]
    }

    /// Cell `(x, y)` stored at `rank`.
    #[inline]
    pub fn cell(&self, rank: u32) -> (u32, u32) {
        let pos = self.pos_of[rank as usize];
        (pos % self.width, pos / self.width)
    }

    /// The raw `rank -> y*width+x` table (useful for permuting flat images).
    pub fn pos_of(&self) -> &[u32] {
        &self.pos_of
    }

    /// The raw `y*width+x -> rank` table.
    pub fn rank_of(&self) -> &[u32] {
        &self.rank_of
    }

    /// Permute a row-major image into this ordering.
    pub fn gather<T: Copy>(&self, row_major: &[T]) -> Vec<T> {
        assert_eq!(row_major.len(), self.pos_of.len());
        self.pos_of.iter().map(|&p| row_major[p as usize]).collect()
    }

    /// Permute data in this ordering back to row-major.
    pub fn scatter<T: Copy + Default>(&self, ordered: &[T]) -> Vec<T> {
        assert_eq!(ordered.len(), self.pos_of.len());
        let mut out = vec![T::default(); ordered.len()];
        for (rank, &pos) in self.pos_of.iter().enumerate() {
            out[pos as usize] = ordered[rank];
        }
        out
    }

    /// Mean Manhattan distance between consecutively-ranked cells.
    /// 1.0 means the ordering is a continuous curve.
    pub fn mean_step_distance(&self) -> f64 {
        if self.pos_of.len() < 2 {
            return 0.0;
        }
        let total: u64 = self
            .pos_of
            .windows(2)
            .map(|w| {
                let (ax, ay) = (w[0] % self.width, w[0] / self.width);
                let (bx, by) = (w[1] % self.width, w[1] / self.width);
                (ax.abs_diff(bx) + ay.abs_diff(by)) as u64
            })
            .sum();
        total as f64 / (self.pos_of.len() - 1) as f64
    }

    /// Fraction of consecutive rank pairs that are 4-adjacent in 2D.
    pub fn adjacency_fraction(&self) -> f64 {
        if self.pos_of.len() < 2 {
            return 1.0;
        }
        let adj = self
            .pos_of
            .windows(2)
            .filter(|w| {
                let (ax, ay) = (w[0] % self.width, w[0] / self.width);
                let (bx, by) = (w[1] % self.width, w[1] / self.width);
                ax.abs_diff(bx) + ay.abs_diff(by) == 1
            })
            .count();
        adj as f64 / (self.pos_of.len() - 1) as f64
    }

    /// Split ranks into `parts` near-equal contiguous partitions and report
    /// how many of them are connected sets of cells (4-connectivity). The
    /// paper's partition-locality argument (§3.2.3) is that two-level
    /// pseudo-Hilbert keeps partitions connected while Morton does not.
    pub fn connected_partition_count(&self, parts: usize) -> usize {
        assert!(parts > 0);
        let n = self.pos_of.len();
        let mut connected = 0;
        for p in 0..parts {
            let lo = p * n / parts;
            let hi = ((p + 1) * n / parts).min(n);
            if lo >= hi {
                connected += 1; // empty partition is trivially connected
                continue;
            }
            if self.is_connected_range(lo, hi) {
                connected += 1;
            }
        }
        connected
    }

    /// BFS connectivity check for the cells holding ranks `lo..hi`.
    fn is_connected_range(&self, lo: usize, hi: usize) -> bool {
        use std::collections::VecDeque;
        let member: std::collections::HashSet<u32> = self.pos_of[lo..hi].iter().copied().collect();
        let mut seen = std::collections::HashSet::with_capacity(hi - lo);
        let mut queue = VecDeque::new();
        queue.push_back(self.pos_of[lo]);
        seen.insert(self.pos_of[lo]);
        while let Some(pos) = queue.pop_front() {
            let (x, y) = (pos % self.width, pos / self.width);
            let mut push = |nx: i64, ny: i64| {
                // in-range: nx/ny are non-negative and compared against u32 dims
                if nx >= 0 && ny >= 0 && (nx as u32) < self.width && (ny as u32) < self.height {
                    // in-range: bounds-checked against the u32 domain just above
                    let np = (ny as u32) * self.width + nx as u32;
                    if member.contains(&np) && seen.insert(np) {
                        queue.push_back(np);
                    }
                }
            };
            push(x as i64 - 1, y as i64);
            push(x as i64 + 1, y as i64);
            push(x as i64, y as i64 - 1);
            push(x as i64, y as i64 + 1);
        }
        seen.len() == hi - lo
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn assert_bijection(o: &Ordering2D) {
        let n = o.len();
        let mut seen = vec![false; n];
        for rank in 0..n as u32 {
            let (x, y) = o.cell(rank);
            assert_eq!(o.rank(x, y), rank);
            let pos = (y * o.width() + x) as usize;
            assert!(!seen[pos]);
            seen[pos] = true;
        }
    }

    #[test]
    fn all_constructors_are_bijections() {
        for (w, h) in [(1, 1), (7, 5), (13, 11), (16, 16), (33, 9)] {
            assert_bijection(&Ordering2D::row_major(w, h));
            assert_bijection(&Ordering2D::column_major(w, h));
            assert_bijection(&Ordering2D::morton(w, h));
            assert_bijection(&Ordering2D::hilbert_square(w, h));
            assert_bijection(&Ordering2D::gilbert(w, h));
            assert_bijection(&Ordering2D::two_level_hilbert(w, h, 4));
        }
    }

    #[test]
    fn row_major_ranks() {
        let o = Ordering2D::row_major(4, 3);
        assert_eq!(o.rank(0, 0), 0);
        assert_eq!(o.rank(3, 0), 3);
        assert_eq!(o.rank(0, 1), 4);
        assert_eq!(o.cell(5), (1, 1));
    }

    #[test]
    fn gilbert_is_continuous() {
        let o = Ordering2D::gilbert(13, 11);
        assert_eq!(o.mean_step_distance(), 1.0);
        assert_eq!(o.adjacency_fraction(), 1.0);
    }

    #[test]
    fn hilbert_square_on_pow2_is_continuous() {
        let o = Ordering2D::hilbert_square(16, 16);
        assert_eq!(o.mean_step_distance(), 1.0);
    }

    #[test]
    fn hilbert_beats_row_major_locality_on_tall_domain() {
        // For a wide domain, row-major steps are mostly distance 1, but the
        // row-wrap steps are huge; Hilbert stays local.
        let rm = Ordering2D::row_major(64, 64);
        let h = Ordering2D::hilbert_square(64, 64);
        assert!(h.mean_step_distance() < rm.mean_step_distance());
    }

    #[test]
    fn gather_scatter_roundtrip() {
        let o = Ordering2D::two_level_hilbert(13, 11, 4);
        let img: Vec<u32> = (0..(13 * 11)).collect();
        let ordered = o.gather(&img);
        assert_eq!(o.scatter(&ordered), img);
    }

    #[test]
    fn two_level_partitions_are_connected() {
        let o = Ordering2D::two_level_hilbert(32, 32, 8);
        assert_eq!(o.connected_partition_count(16), 16);
    }

    #[test]
    fn morton_partitions_can_be_disconnected() {
        // §3.2.3: Morton ordering yields disconnected partitions on domains
        // where the Z jumps split a partition.
        let o = Ordering2D::morton(32, 24);
        let connected = o.connected_partition_count(16);
        assert!(
            connected < 16,
            "expected some disconnected Morton partitions, got {connected}/16"
        );
    }

    #[test]
    fn column_major_ranks() {
        let o = Ordering2D::column_major(3, 4);
        assert_eq!(o.rank(0, 0), 0);
        assert_eq!(o.rank(0, 3), 3);
        assert_eq!(o.rank(1, 0), 4);
    }
}

//! Classic Hilbert curve on a `2^k × 2^k` square, plus the eight symmetries
//! of the square used to orient per-tile curves for inter-tile connectivity.

/// One of the eight symmetries of the square (4 rotations × optional
/// transpose). Applying a symmetry to every point of a Hilbert curve yields
/// another valid Hilbert curve with different entry/exit corners; the
/// two-level ordering picks the variant that best connects adjacent tiles.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Symmetry(u8);

impl Symmetry {
    /// All eight symmetries, identity first.
    pub const ALL: [Symmetry; 8] = [
        Symmetry(0),
        Symmetry(1),
        Symmetry(2),
        Symmetry(3),
        Symmetry(4),
        Symmetry(5),
        Symmetry(6),
        Symmetry(7),
    ];

    /// The identity symmetry.
    pub const IDENTITY: Symmetry = Symmetry(0);

    /// Apply this symmetry to `(x, y)` within an `n × n` square.
    ///
    /// Encodings 0–3 are rotations by 0/90/180/270 degrees; 4–7 are the same
    /// rotations composed with a transpose (reflection across the main
    /// diagonal).
    #[inline]
    pub fn apply(self, n: u32, x: u32, y: u32) -> (u32, u32) {
        debug_assert!(x < n && y < n);
        let (x, y) = if self.0 >= 4 { (y, x) } else { (x, y) };
        match self.0 & 3 {
            0 => (x, y),
            1 => (n - 1 - y, x),
            2 => (n - 1 - x, n - 1 - y),
            _ => (y, n - 1 - x),
        }
    }
}

/// Map a distance `d` along the Hilbert curve of an `n × n` square
/// (`n` a power of two) to the `(x, y)` cell it visits.
///
/// Standard bit-twiddling formulation: the curve starts at `(0, 0)` and
/// ends at `(n-1, 0)`.
pub fn hilbert_d2xy(n: u32, d: u32) -> (u32, u32) {
    debug_assert!(n.is_power_of_two());
    debug_assert!((d as u64) < (n as u64) * (n as u64));
    let (mut x, mut y) = (0u32, 0u32);
    let mut t = d;
    let mut s = 1u32;
    while s < n {
        let rx = (t / 2) & 1;
        let ry = (t ^ rx) & 1;
        // Rotate the quadrant contents.
        if ry == 0 {
            if rx == 1 {
                x = s - 1 - x;
                y = s - 1 - y;
            }
            core::mem::swap(&mut x, &mut y);
        }
        x += s * rx;
        y += s * ry;
        t /= 4;
        s *= 2;
    }
    (x, y)
}

/// Inverse of [`hilbert_d2xy`]: map a cell `(x, y)` of an `n × n` square
/// to its distance along the Hilbert curve.
pub fn hilbert_xy2d(n: u32, mut x: u32, mut y: u32) -> u32 {
    debug_assert!(n.is_power_of_two());
    debug_assert!(x < n && y < n);
    let mut d: u32 = 0;
    let mut s = n / 2;
    while s > 0 {
        let rx = u32::from((x & s) > 0);
        let ry = u32::from((y & s) > 0);
        d += s * s * ((3 * rx) ^ ry);
        // Rotate the quadrant contents (reflection uses the full square
        // extent, matching the standard formulation).
        if ry == 0 {
            if rx == 1 {
                x = n - 1 - x;
                y = n - 1 - y;
            }
            core::mem::swap(&mut x, &mut y);
        }
        s /= 2;
    }
    d
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn d2xy_visits_every_cell_exactly_once() {
        for k in 0..6u32 {
            let n = 1 << k;
            let mut seen = vec![false; (n * n) as usize];
            for d in 0..n * n {
                let (x, y) = hilbert_d2xy(n, d);
                assert!(x < n && y < n);
                let idx = (y * n + x) as usize;
                assert!(!seen[idx], "cell ({x},{y}) visited twice at n={n}");
                seen[idx] = true;
            }
            assert!(seen.iter().all(|&s| s));
        }
    }

    #[test]
    fn consecutive_cells_are_adjacent() {
        for k in 1..6u32 {
            let n = 1 << k;
            let (mut px, mut py) = hilbert_d2xy(n, 0);
            for d in 1..n * n {
                let (x, y) = hilbert_d2xy(n, d);
                let dist = x.abs_diff(px) + y.abs_diff(py);
                assert_eq!(dist, 1, "non-adjacent step at d={d}, n={n}");
                (px, py) = (x, y);
            }
        }
    }

    #[test]
    fn xy2d_is_inverse_of_d2xy() {
        for k in 0..6u32 {
            let n = 1 << k;
            for d in 0..n * n {
                let (x, y) = hilbert_d2xy(n, d);
                assert_eq!(hilbert_xy2d(n, x, y), d, "n={n} d={d} ({x},{y})");
            }
        }
    }

    #[test]
    fn curve_endpoints() {
        for k in 1..6u32 {
            let n = 1 << k;
            assert_eq!(hilbert_d2xy(n, 0), (0, 0));
            assert_eq!(hilbert_d2xy(n, n * n - 1), (n - 1, 0));
        }
    }

    #[test]
    fn symmetries_are_bijections() {
        let n = 8;
        for sym in Symmetry::ALL {
            let mut seen = vec![false; (n * n) as usize];
            for y in 0..n {
                for x in 0..n {
                    let (sx, sy) = sym.apply(n, x, y);
                    assert!(sx < n && sy < n);
                    let idx = (sy * n + sx) as usize;
                    assert!(!seen[idx]);
                    seen[idx] = true;
                }
            }
        }
    }

    #[test]
    fn symmetries_preserve_adjacency() {
        let n = 8;
        for sym in Symmetry::ALL {
            // Adjacent inputs map to adjacent outputs (isometry).
            for y in 0..n {
                for x in 0..n - 1 {
                    let a = sym.apply(n, x, y);
                    let b = sym.apply(n, x + 1, y);
                    assert_eq!(a.0.abs_diff(b.0) + a.1.abs_diff(b.1), 1);
                }
            }
        }
    }

    #[test]
    fn symmetries_are_distinct() {
        // On a 2x2 square the eight symmetries give eight distinct images
        // of the ordered corner list.
        let n = 2;
        let mut images = std::collections::HashSet::new();
        for sym in Symmetry::ALL {
            let img: Vec<(u32, u32)> = [(0, 0), (1, 0), (0, 1)]
                .iter()
                .map(|&(x, y)| sym.apply(n, x, y))
                .collect();
            images.insert(img);
        }
        assert_eq!(images.len(), 8);
    }
}

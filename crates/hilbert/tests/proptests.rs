//! Property-based tests for the ordering crate: every constructor must be a
//! bijection on arbitrary domain sizes, the two-level layout must tile the
//! domain exactly, and curve transforms must be involutive.

use proptest::prelude::*;
use xct_hilbert::{
    gilbert2d, hilbert_d2xy, hilbert_xy2d, morton_decode, morton_encode, Ordering2D,
    TwoLevelOrdering,
};

fn check_bijection(o: &Ordering2D) {
    let mut seen = vec![false; o.len()];
    for rank in 0..o.len() as u32 {
        let (x, y) = o.cell(rank);
        assert!(x < o.width() && y < o.height());
        assert_eq!(o.rank(x, y), rank);
        let pos = (y * o.width() + x) as usize;
        assert!(!seen[pos], "duplicate cell ({x},{y})");
        seen[pos] = true;
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn gilbert_is_bijection(w in 1u32..48, h in 1u32..48) {
        let seq = gilbert2d(w, h);
        prop_assert_eq!(seq.len(), (w * h) as usize);
        let mut seen = vec![false; (w * h) as usize];
        for (x, y) in seq {
            prop_assert!(x < w && y < h);
            let idx = (y * w + x) as usize;
            prop_assert!(!seen[idx]);
            seen[idx] = true;
        }
    }

    #[test]
    fn gilbert_is_8_connected(w in 1u32..40, h in 1u32..40) {
        let seq = gilbert2d(w, h);
        for p in seq.windows(2) {
            let cheb = p[0].0.abs_diff(p[1].0).max(p[0].1.abs_diff(p[1].1));
            prop_assert_eq!(cheb, 1);
        }
    }

    #[test]
    fn hilbert_roundtrip(k in 0u32..8, seed in any::<u32>()) {
        let n = 1u32 << k;
        let d = seed % (n * n).max(1);
        let (x, y) = hilbert_d2xy(n, d);
        prop_assert_eq!(hilbert_xy2d(n, x, y), d);
    }

    #[test]
    fn morton_roundtrip(x in any::<u32>(), y in any::<u32>()) {
        prop_assert_eq!(morton_decode(morton_encode(x, y)), (x, y));
    }

    #[test]
    fn two_level_is_bijection(w in 1u32..40, h in 1u32..40, tk in 1u32..4) {
        let tile = 1u32 << tk;
        let two = TwoLevelOrdering::new(w, h, tile);
        check_bijection(two.ordering());
        prop_assert_eq!(*two.layout().tile_offsets.last().unwrap(), w * h);
    }

    #[test]
    fn all_orderings_bijective(w in 1u32..32, h in 1u32..32) {
        check_bijection(&Ordering2D::row_major(w, h));
        check_bijection(&Ordering2D::column_major(w, h));
        check_bijection(&Ordering2D::morton(w, h));
        check_bijection(&Ordering2D::hilbert_square(w, h));
        check_bijection(&Ordering2D::gilbert(w, h));
    }

    #[test]
    fn partition_ranks_partition_the_domain(
        w in 4u32..40, h in 4u32..40, parts in 1usize..12
    ) {
        let two = TwoLevelOrdering::new(w, h, 4);
        let ranges = two.layout().partition_ranks(parts);
        prop_assert_eq!(ranges.len(), parts);
        prop_assert_eq!(ranges[0].start, 0);
        prop_assert_eq!(ranges.last().unwrap().end, w * h);
        for win in ranges.windows(2) {
            prop_assert_eq!(win[0].end, win[1].start);
        }
    }

    #[test]
    fn gather_scatter_roundtrip(w in 1u32..24, h in 1u32..24) {
        let o = Ordering2D::two_level_hilbert(w, h, 4);
        let img: Vec<u32> = (0..w * h).collect();
        prop_assert_eq!(o.scatter(&o.gather(&img)), img);
    }
}

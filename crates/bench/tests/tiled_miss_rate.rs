//! Tile-blocked gathers must beat the plain irregular stream on a *real*
//! plan — not just the synthetic scatter patterns of the cachesim unit
//! tests. This preprocesses ADS1 and pushes both access traces through
//! the set-associative LRU model at the KNL L1 size (Table 2).

use xct_cachesim::{spmv_irregular_miss_rate, spmv_tiled_miss_rate, CacheConfig};
use xct_geometry::ADS1;
use xct_sparse::{TiledCsr, TILE_COL_WIDTH, TILE_ROW_BLOCK};

#[test]
fn tile_blocking_lowers_modeled_miss_rate_on_ads1() {
    // Full-scale ADS1: a 256×256 grid, so x is 65536 f32 = 256 KB. The
    // simulated cache is 8 KB — the irregular stream's effective share of
    // an L1 once rowptr/colind/values also stream through it — so x is
    // 32× the cache and the gather order decides the miss rate. (When x
    // nearly fits, Hilbert ordering alone is already near-optimal and
    // blocking is a wash; see DESIGN.md.)
    let ds = ADS1;
    let ops = xct_bench::preprocess(
        ds.grid(),
        ds.scan(),
        &xct_bench::Config {
            build_buffered: false,
            ..xct_bench::Config::default()
        },
    );
    let a = &ops.a;
    assert!(
        a.ncols() * 4 >= 32 * 8 * 1024,
        "x must dwarf the simulated cache for the test to be meaningful"
    );

    let l1 = CacheConfig::new(64, 8 * 1024, 8);
    let plain = spmv_irregular_miss_rate(a.colind(), l1);
    let tiled = spmv_tiled_miss_rate(a.rowptr(), a.colind(), TILE_ROW_BLOCK, TILE_COL_WIDTH, l1);

    // Same accesses, different order: the model charges both streams the
    // identical access count, and blocking must strictly reduce misses.
    assert_eq!(plain.accesses, tiled.accesses);
    assert!(
        tiled.miss_rate() < plain.miss_rate(),
        "tiled {:.4} not below plain {:.4}",
        tiled.miss_rate(),
        plain.miss_rate()
    );

    // The trace the model scores is exactly the gather order the blocked
    // kernel executes.
    let t = TiledCsr::from_csr(a);
    let trace =
        xct_cachesim::spmv_tiled_trace(a.rowptr(), a.colind(), TILE_ROW_BLOCK, TILE_COL_WIDTH);
    assert_eq!(trace.len(), t.gather_order().len());
    assert!(trace
        .iter()
        .zip(t.gather_order())
        .all(|(&addr, &c)| addr == c as u64 * 4));
}

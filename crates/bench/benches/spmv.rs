//! Criterion benchmarks of the SpMV kernel variants (the measured side of
//! Fig 9 / Table 6): baseline CSR, ELL, and the multi-stage buffered
//! kernel, on row-major vs Hilbert-ordered matrices.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use memxct::{preprocess, Config, DomainOrdering};
use xct_geometry::ADS1;
use xct_sparse::{spmv_parallel, BufferedCsr, EllMatrix};

fn bench_spmv(c: &mut Criterion) {
    let ds = ADS1.scaled(2); // 180x128: small enough for quick criterion runs
    let rm = preprocess(
        ds.grid(),
        ds.scan(),
        &Config {
            ordering: DomainOrdering::RowMajor,
            build_buffered: false,
            ..Config::default()
        },
    );
    let hl = preprocess(
        ds.grid(),
        ds.scan(),
        &Config {
            build_buffered: false,
            ..Config::default()
        },
    );
    let x: Vec<f32> = (0..rm.a.ncols()).map(|i| (i % 13) as f32 * 0.3).collect();
    let nnz = rm.a.nnz() as u64;

    let mut g = c.benchmark_group("forward_spmv");
    g.throughput(Throughput::Elements(nnz));
    g.bench_with_input(BenchmarkId::new("csr", "row-major"), &rm.a, |b, a| {
        b.iter(|| spmv_parallel(a, &x, 128))
    });
    g.bench_with_input(BenchmarkId::new("csr", "hilbert"), &hl.a, |b, a| {
        b.iter(|| spmv_parallel(a, &x, 128))
    });
    let ell = EllMatrix::from_csr(&hl.a, 128);
    g.bench_function(BenchmarkId::new("ell", "hilbert"), |b| {
        b.iter(|| ell.spmv(&x))
    });
    let buf = BufferedCsr::from_csr(&hl.a, 128, 2048);
    g.bench_function(BenchmarkId::new("buffered", "hilbert"), |b| {
        b.iter(|| buf.spmv_parallel(&x))
    });
    g.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10).measurement_time(std::time::Duration::from_secs(3));
    targets = bench_spmv
}
criterion_main!(benches);

//! Criterion benchmarks of ordering construction — part of MemXCT's
//! preprocessing step (1) cost in §3.5 / Table 4.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use xct_hilbert::{gilbert2d, Ordering2D, TwoLevelOrdering};

fn bench_orderings(c: &mut Criterion) {
    let mut g = c.benchmark_group("ordering_construction");
    for n in [256u32, 512] {
        g.throughput(Throughput::Elements(n as u64 * n as u64));
        g.bench_with_input(BenchmarkId::new("two_level_hilbert", n), &n, |b, &n| {
            b.iter(|| TwoLevelOrdering::with_default_tile(n, n))
        });
        g.bench_with_input(BenchmarkId::new("gilbert", n), &n, |b, &n| {
            b.iter(|| gilbert2d(n, n))
        });
        g.bench_with_input(BenchmarkId::new("morton", n), &n, |b, &n| {
            b.iter(|| Ordering2D::morton(n, n))
        });
        g.bench_with_input(BenchmarkId::new("row_major", n), &n, |b, &n| {
            b.iter(|| Ordering2D::row_major(n, n))
        });
    }
    g.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10).measurement_time(std::time::Duration::from_secs(3));
    targets = bench_orderings
}
criterion_main!(benches);

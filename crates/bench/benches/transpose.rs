//! Criterion benchmark of the scan-based sparse transpose — preprocessing
//! step (3) in §3.5, chosen over an atomic transpose because it preserves
//! data ordering.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use memxct::{preprocess, Config};
use xct_geometry::ADS1;

fn bench_transpose(c: &mut Criterion) {
    let ds = ADS1.scaled(2);
    let ops = preprocess(
        ds.grid(),
        ds.scan(),
        &Config {
            build_buffered: false,
            ..Config::default()
        },
    );
    let mut g = c.benchmark_group("transpose");
    g.throughput(Throughput::Elements(ops.a.nnz() as u64));
    g.bench_function("scan_transpose", |b| b.iter(|| ops.a.transpose_scan()));
    g.finish();

    let mut g = c.benchmark_group("buffered_construction");
    g.throughput(Throughput::Elements(ops.a.nnz() as u64));
    g.bench_function("from_csr_128_8KB", |b| {
        b.iter(|| xct_sparse::BufferedCsr::from_csr(&ops.a, 128, 2048))
    });
    g.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10).measurement_time(std::time::Duration::from_secs(3));
    targets = bench_transpose
}
criterion_main!(benches);

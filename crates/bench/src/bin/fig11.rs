//! Fig 11: weak and strong scaling with the A_p / C / R kernel breakdown
//! (modeled from exact volumes + calibrated communication constants; see
//! DESIGN.md's substitution note).
//!
//! Weak scaling (a/b): the root dataset's dimensions double per step while
//! nodes grow 8× (compute per step grows 8×). Strong scaling (c/d): fixed
//! datasets, node counts swept. A_p should scale ~1/P (super-linearly
//! where working sets drop into fast memory); C follows O(√P) relative
//! growth.
//!
//! ```text
//! cargo run --release -p xct-bench --bin fig11 [scale_divisor]
//! ```

use memxct::{DistConfig, DistSolver, ReconstructorBuilder, StopRule};
use xct_bench::{analytic_volumes, calibrate_comm, scale_from_args, simulate};
use xct_geometry::{Dataset, SampleKind, ADS2, ADS3, RDS1, RDS2};
use xct_runtime::{iteration_time, MachineSpec, BLUE_WATERS, THETA};

fn grown(root: &Dataset, k: u32) -> Dataset {
    Dataset {
        name: root.name,
        projections: root.projections << k,
        channels: root.channels << k,
        sample: SampleKind::Artificial,
    }
}

fn print_series(title: &str, spec: &MachineSpec, points: &[(usize, Dataset)], cal_div: u32) {
    println!("{title}");
    println!(
        "{:>6} {:>14} {:>10} {:>10} {:>10} {:>10}",
        "nodes", "sinogram", "total s", "A_p s", "C s", "R s"
    );
    // One calibration per series: the communication constants are a
    // property of the decomposition shape, not the absolute size.
    let cal = calibrate_comm(&points[0].1, cal_div, 16);
    for (nodes, ds) in points {
        let v = analytic_volumes(ds, *nodes, &cal);
        match iteration_time(spec, &v, *nodes) {
            Some(t) => {
                let scale = 30.0; // full solve: 30 CG iterations
                println!(
                    "{:>6} {:>7}x{:<6} {:>10.3} {:>10.3} {:>10.4} {:>10.4}",
                    nodes,
                    ds.projections,
                    ds.channels,
                    scale * t.total(),
                    scale * t.ap,
                    scale * t.c,
                    scale * t.r
                );
            }
            None => println!(
                "{:>6} {:>7}x{:<6} {:>10}",
                nodes, ds.projections, ds.channels, "no fit"
            ),
        }
    }
    println!();
}

fn main() {
    let div = scale_from_args().max(8);

    println!("Fig 11: scaling with per-kernel breakdown (modeled, 30 CG iterations)\n");

    // (a) ADS3 weak scaling on Theta: 1500x1024 root, 1 -> 4096 nodes.
    let weak_theta: Vec<(usize, Dataset)> =
        (0..5).map(|k| (8usize.pow(k), grown(&ADS3, k))).collect();
    print_series(
        "(a) ADS3 weak scaling, Theta (paper: good scaling, C grows as O(sqrt P))",
        &THETA,
        &weak_theta,
        div,
    );

    // (b) ADS2 weak scaling on Blue Waters: 750x512 root.
    let weak_bw: Vec<(usize, Dataset)> = (0..5).map(|k| (8usize.pow(k), grown(&ADS2, k))).collect();
    print_series(
        "(b) ADS2 weak scaling, Blue Waters (paper: comm-bound from 512 nodes up)",
        &BLUE_WATERS,
        &weak_bw,
        div,
    );

    // (c) RDS2 strong scaling on Theta: 128 -> 4096 nodes.
    let strong_theta: Vec<(usize, Dataset)> = [128usize, 256, 512, 1024, 2048, 4096]
        .iter()
        .map(|&n| (n, RDS2))
        .collect();
    print_series(
        "(c) RDS2 strong scaling, Theta (paper: scales to 2048 nodes, ~10 s best)",
        &THETA,
        &strong_theta,
        div * 4,
    );

    // (d) RDS1 strong scaling on Blue Waters: 32 -> 4096 nodes.
    let strong_bw: Vec<(usize, Dataset)> = [32usize, 64, 128, 256, 512, 1024, 4096]
        .iter()
        .map(|&n| (n, RDS1))
        .collect();
    print_series(
        "(d) RDS1 strong scaling, Blue Waters (paper: scales to 128 nodes, then comm-bound)",
        &BLUE_WATERS,
        &strong_bw,
        div,
    );

    println!("reading the curves: A_p drops ~1/P (super-linear where the per-node working");
    println!("set falls into MCDRAM/HBM); C shrinks only as 1/sqrt(P) and eventually");
    println!("dominates — the crossover is the strong-scaling limit, as in the paper.");

    // (e) Measured reference: the same A_p / C / R split, actually executed
    // on this host. These numbers come from the operator layer's
    // `KernelBreakdown` — the one timing code path shared by the serial
    // `Reconstructor`, the distributed ranks, and fig9.
    let ds = ADS2.scaled_projections(div.max(8));
    let (_truth, sino) = simulate(&ds, true);
    let rec = ReconstructorBuilder::new(ds.grid(), ds.scan())
        .build()
        .expect("valid dataset geometry");
    let out = rec
        .run(
            &memxct::ReconRequest::cg(memxct::ReconInput::Slice(sino), StopRule::Fixed(30)).mode(
                memxct::ExecMode::Distributed {
                    config: DistConfig {
                        ranks: 4,
                        use_buffered: true,
                        stop: StopRule::Fixed(30),
                        solver: DistSolver::Cg,
                    },
                    ft: None,
                },
            ),
        )
        .expect("distributed reconstruction failed");
    let dist = out.dist.as_ref().expect("distributed runs report detail");
    let n = dist.breakdowns.len() as f64;
    let (ap, c, r) = dist
        .breakdowns
        .iter()
        .fold((0.0, 0.0, 0.0), |(a, b, cc), kb| {
            (a + kb.ap_s, b + kb.c_s, cc + kb.r_s)
        });
    println!(
        "\n(e) measured reference ({}x{}, 4 thread-ranks, 30 CG iterations on this host):",
        ds.projections, ds.channels
    );
    println!(
        "    mean per-rank A_p {:.4} s, C {:.4} s, R {:.4} s (KernelBreakdown schema)",
        ap / n,
        c / n,
        r / n
    );
}

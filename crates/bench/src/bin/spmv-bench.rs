//! SpMV roofline benchmark: vectorized kernels against a measured
//! bandwidth ceiling, across datasets, thread counts, and layouts.
//!
//! Emits `BENCH_spmv.json` (hand-rolled, schema below) so the repo keeps
//! a perf trajectory across PRs. Every production variant must be
//! bit-identical to its family's serial kernel — the determinism
//! contract of the lane-order kernels (`xct_sparse::lanes`).
//!
//! ```text
//! cargo run --release -p xct-bench --bin spmv-bench -- \
//!     [--dataset ads1,ads2,...] [--scale D[,D...]] [--reps N]
//! cargo run --release -p xct-bench --bin spmv-bench [scale_divisor] [reps]   # legacy: ADS1 only
//! ```
//!
//! JSON schema (one object, `schema_version` 2):
//! - `bench`: `"spmv"`, `generated_by`: binary name
//! - `reps`: timed repetitions per variant (median reported)
//! - `stream`: `{triad_gbs, gbs_by_threads, array_mb}` — a STREAM-style
//!   triad (`a = b + q·c` over three DRAM-sized arrays) measuring the
//!   sustainable bandwidth ceiling; `triad_gbs` is the best across the
//!   thread counts.
//! - `retired`: variants dropped from the schema and why (`scoped`: per-
//!   call thread spawns, strictly dominated by `pooled_*` in every
//!   committed measurement — kept only as prose in DESIGN.md).
//! - `datasets`: one block per swept dataset:
//!   - `matrix`: `{dataset, scale, nrows, ncols, nnz}`
//!   - `bit_identical`: every variant matched its family's serial kernel
//!     bitwise (CSR-lane, buffered, tiled are distinct deterministic
//!     orders; `serial` — the scalar Listing 2 chain — is the roofline
//!     baseline and is only checked to tolerance)
//!   - `results`: `{variant, threads, median_seconds, gflops,
//!     bytes_per_second, fraction_of_peak, speedup_vs_serial, imbalance}`
//!     with `variant` ∈ `serial | vector | pooled_equal | pooled_nnz |
//!     pooled_buf | pooled_tiled`. `bytes_per_second` is the variant's
//!     regular-data stream (8 B/nnz CSR, 6 B/nnz + 4 B/slot buffered, ELL
//!     padding excluded here) over the median time; `fraction_of_peak` is
//!     that rate over the triad ceiling, clamped to 1.0 (cache-resident
//!     matrices can stream faster than DRAM).
//!   - `spmm_results`: the batched sweep, batch ∈ 1/4/16/64:
//!     `{variant, threads, batch, median_seconds, gflops,
//!     bytes_per_second, fraction_of_peak, matrix_bytes_per_slice}` —
//!     the matrix is streamed once per call regardless of batch width, so
//!     `matrix_bytes_per_slice` falls as 1/batch.

use std::fmt::Write as _;
use std::time::Instant;
use xct_bench::{bandwidth_gbs, gflops, simulate};
use xct_geometry::{Dataset, ADS1, ADS2, ADS3, ADS4};
use xct_runtime::{ExecPlan, WorkerPool};
use xct_sparse::{
    csr_plan, csr_plan_equal, spmm_into, spmm_pooled_into, spmv_into, spmv_pooled_into,
    spmv_scalar_into, BufferedCsr, CsrMatrix, TiledCsr,
};

const THREAD_COUNTS: [usize; 3] = [1, 2, 4];
const BATCHES: [usize; 4] = [1, 4, 16, 64];
/// STREAM array length: 16 Mi f32 = 64 MB per array, 3 arrays — far past
/// any cache, so the triad measures DRAM, not LLC.
const STREAM_ELEMS: usize = 16 << 20;
/// Buffered-layout parameters: the preprocessing defaults (partitions of
/// 128 rows staged through a 2048-element / 8 KB buffer).
const BUF_PARTSIZE: usize = 128;
const BUF_BUFFSIZE: usize = 2048;

/// Default sweep: every ADS dataset, scaled so the per-dataset nonzero
/// count stays laptop-tractable while the footprints still span
/// cache-resident (ADS1) to DRAM-streaming (ADS3/ADS4) regimes.
const DEFAULT_SWEEP: [(&str, u32); 4] = [("ads1", 4), ("ads2", 4), ("ads3", 8), ("ads4", 16)];

fn dataset_by_name(name: &str) -> Option<(&'static Dataset, u32)> {
    match name.to_ascii_lowercase().as_str() {
        "ads1" => Some((&ADS1, 4)),
        "ads2" => Some((&ADS2, 4)),
        "ads3" => Some((&ADS3, 8)),
        "ads4" => Some((&ADS4, 16)),
        _ => None,
    }
}

struct Args {
    sweep: Vec<(&'static Dataset, u32)>,
    reps: usize,
}

fn usage() -> ! {
    eprintln!(
        "usage: spmv-bench [--dataset ads1,ads2,...] [--scale D[,D...]] [--reps N]\n\
         \u{20}      spmv-bench [scale_divisor] [reps]    (legacy: ADS1 only)"
    );
    std::process::exit(2);
}

fn parse_args() -> Args {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let mut names: Option<Vec<String>> = None;
    let mut scales: Option<Vec<u32>> = None;
    let mut reps = 33usize;
    let mut positional: Vec<u32> = Vec::new();
    let mut i = 0;
    while i < argv.len() {
        match argv[i].as_str() {
            "--dataset" | "-d" => {
                i += 1;
                let v = argv.get(i).unwrap_or_else(|| usage());
                names = Some(v.split(',').map(|s| s.to_string()).collect());
            }
            "--scale" | "-s" => {
                i += 1;
                let v = argv.get(i).unwrap_or_else(|| usage());
                let list: Option<Vec<u32>> = v
                    .split(',')
                    .map(|s| s.parse().ok().filter(|&d| d > 0))
                    .collect();
                scales = Some(list.unwrap_or_else(|| usage()));
            }
            "--reps" | "-r" => {
                i += 1;
                let v = argv.get(i).unwrap_or_else(|| usage());
                reps = v.parse().ok().filter(|&r| r > 0).unwrap_or_else(|| usage());
            }
            a => match a.parse::<u32>() {
                Ok(v) if v > 0 && positional.len() < 2 => positional.push(v),
                _ => usage(),
            },
        }
        i += 1;
    }
    if !positional.is_empty() {
        if names.is_some() || scales.is_some() {
            usage();
        }
        // Legacy single-dataset mode: `spmv-bench [scale] [reps]` on ADS1.
        if positional.len() == 2 {
            reps = positional[1] as usize;
        }
        return Args {
            sweep: vec![(&ADS1, positional[0])],
            reps,
        };
    }
    let sweep: Vec<(&'static Dataset, u32)> = match names {
        None => DEFAULT_SWEEP
            .iter()
            .map(|&(n, _)| dataset_by_name(n).expect("default dataset"))
            .collect(),
        Some(list) => list
            .iter()
            .map(|n| dataset_by_name(n).unwrap_or_else(|| usage()))
            .collect(),
    };
    let sweep = match scales {
        None => sweep,
        Some(s) if s.len() == 1 => sweep.into_iter().map(|(d, _)| (d, s[0])).collect(),
        Some(s) if s.len() == sweep.len() => sweep
            .into_iter()
            .zip(&s)
            .map(|((d, _), &sc)| (d, sc))
            .collect(),
        Some(_) => usage(),
    };
    Args { sweep, reps }
}

/// Best triad bandwidth (GB/s) over `reps` passes at one pool size.
/// STREAM convention: 12 bytes move per element (two reads, one write).
fn stream_triad_gbs(pool: &WorkerPool, threads: usize, a: &mut [f32], b: &[f32], c: &[f32]) -> f64 {
    let plan = ExecPlan::equal_rows(a.len(), threads);
    let q = 1.5f32;
    let mut best = f64::MAX;
    for _ in 0..8 {
        let t = Instant::now();
        pool.run(&plan, a, |_parts, range, out| {
            let bs = &b[range.start..range.end];
            let cs = &c[range.start..range.end];
            for ((o, &bb), &cc) in out.iter_mut().zip(bs).zip(cs) {
                *o = bb + q * cc;
            }
        });
        best = best.min(t.elapsed().as_secs_f64());
    }
    12.0 * a.len() as f64 / best / 1e9
}

/// One measured execution strategy: its kernel plus collected samples.
/// All variants are timed **interleaved** (round-robin within each rep)
/// so slow drift — frequency scaling, background load — lands evenly on
/// every variant instead of biasing whichever block ran last.
struct Variant<'a> {
    name: &'static str,
    threads: usize,
    /// Regular-data bytes one call streams (the roofline numerator).
    bytes: u64,
    imbalance: f64,
    times: Vec<f64>,
    f: Box<dyn FnMut() + 'a>,
}

fn median(times: &mut [f64]) -> f64 {
    times.sort_by(f64::total_cmp);
    times[times.len() / 2]
}

struct Row {
    variant: &'static str,
    threads: usize,
    seconds: f64,
    gflops: f64,
    bytes_per_second: f64,
    fraction_of_peak: f64,
    speedup: f64,
    imbalance: f64,
}

struct SpmmRow {
    variant: &'static str,
    threads: usize,
    batch: usize,
    seconds: f64,
    gflops: f64,
    bytes_per_second: f64,
    fraction_of_peak: f64,
    bytes_per_slice: f64,
}

struct DatasetBlock {
    name: &'static str,
    scale: u32,
    nrows: usize,
    ncols: usize,
    nnz: usize,
    bit_identical: bool,
    rows: Vec<Row>,
    spmm_rows: Vec<SpmmRow>,
}

/// One SpMM kernel under test: fills the slice-major output slab from
/// the slice-major input slab.
type SpmmKernel<'a> = Box<dyn FnMut(&[f32], &mut [f32]) + 'a>;

fn bits_match(a: &[f32], b: &[f32]) -> bool {
    a.len() == b.len() && a.iter().zip(b).all(|(x, y)| x.to_bits() == y.to_bits())
}

fn frac(bytes_per_second: f64, peak_gbs: f64) -> f64 {
    (bytes_per_second / (peak_gbs * 1e9)).min(1.0)
}

fn run_dataset(
    ds: &Dataset,
    div: u32,
    reps: usize,
    pools: &[WorkerPool],
    peak_gbs: f64,
) -> DatasetBlock {
    let sds = ds.scaled(div);
    let ops = xct_bench::preprocess(
        sds.grid(),
        sds.scan(),
        &xct_bench::Config {
            build_buffered: false,
            ..xct_bench::Config::default()
        },
    );
    let a: &CsrMatrix = &ops.a;
    let (_, sino) = simulate(&sds, false);
    // A realistic input: one backprojection of the simulated sinogram.
    let mut x = vec![0f32; a.ncols()];
    spmv_into(&ops.at, ops.order_sinogram(&sino).as_slice(), &mut x);
    let x: &[f32] = &x;

    let buf = BufferedCsr::from_csr(a, BUF_PARTSIZE, BUF_BUFFSIZE);
    let tiled = TiledCsr::from_csr(a);

    println!(
        "\n=== {} (scale 1/{div}): {} rows x {} cols, {} nnz ===",
        sds.name,
        a.nrows(),
        a.ncols(),
        a.nnz()
    );
    println!(
        "{:<14} {:>8} {:>12} {:>8} {:>8} {:>6} {:>9} {:>10}",
        "variant", "threads", "median", "gflops", "GB/s", "peak", "speedup", "imbalance"
    );

    // Family references for the bit-identity round.
    let mut want_vec = vec![0f32; a.nrows()];
    spmv_into(a, x, &mut want_vec);
    let mut want_scalar = vec![0f32; a.nrows()];
    spmv_scalar_into(a, x, &mut want_scalar);
    let want_buf = buf.spmv(x);
    let want_tiled = tiled.spmv(x);
    // The scalar baseline sums in a different order — same values to
    // tolerance, rarely the same bits.
    for (s, v) in want_scalar.iter().zip(&want_vec) {
        let scale = s.abs().max(v.abs()).max(1.0);
        assert!((s - v).abs() <= 1e-4 * scale, "scalar vs lane: {s} vs {v}");
    }

    // Pools and plans are built once outside the timed region — that is
    // the whole point of the execution layer.
    let mut variants: Vec<Variant> = Vec::new();
    variants.push(Variant {
        name: "serial",
        threads: 1,
        bytes: a.regular_bytes(),
        imbalance: 1.0,
        times: Vec::new(),
        f: {
            let mut y = vec![0f32; a.nrows()];
            Box::new(move || spmv_scalar_into(a, x, &mut y))
        },
    });
    variants.push(Variant {
        name: "vector",
        threads: 1,
        bytes: a.regular_bytes(),
        imbalance: 1.0,
        times: Vec::new(),
        f: {
            let mut y = vec![0f32; a.nrows()];
            Box::new(move || spmv_into(a, x, &mut y))
        },
    });
    for (i, &threads) in THREAD_COUNTS.iter().enumerate() {
        let pool = &pools[i];
        for (name, plan) in [
            ("pooled_equal", csr_plan_equal(a, threads)),
            ("pooled_nnz", csr_plan(a, threads)),
        ] {
            let mut y = vec![0f32; a.nrows()];
            variants.push(Variant {
                name,
                threads,
                bytes: a.regular_bytes(),
                imbalance: plan.imbalance(),
                times: Vec::new(),
                f: Box::new(move || spmv_pooled_into(a, x, &mut y, &plan, pool)),
            });
        }
        // The u16 buffered kernel through the same pooled dispatch path:
        // staging + lane-split accumulation, persistent worker scratch.
        {
            let plan = buf.exec_plan(threads);
            let imbalance = plan.imbalance();
            let mut y = vec![0f32; a.nrows()];
            let b = &buf;
            variants.push(Variant {
                name: "pooled_buf",
                threads,
                bytes: buf.regular_bytes(),
                imbalance,
                times: Vec::new(),
                f: Box::new(move || b.spmv_pooled_into(x, &mut y, &plan, pool)),
            });
        }
        // Cache-blocked gathers over the Hilbert tile structure.
        {
            let plan = tiled.exec_plan(threads);
            let imbalance = plan.imbalance();
            let mut y = vec![0f32; a.nrows()];
            let t = &tiled;
            variants.push(Variant {
                name: "pooled_tiled",
                threads,
                bytes: a.regular_bytes(),
                imbalance,
                times: Vec::new(),
                f: Box::new(move || t.spmv_pooled_into(x, &mut y, &plan, pool)),
            });
        }
    }

    // Interleaved measurement: warmup round, then `reps` rounds timing
    // every variant back to back.
    for v in &mut variants {
        (v.f)();
    }
    for _ in 0..reps {
        for v in &mut variants {
            let t = Instant::now();
            (v.f)();
            v.times.push(t.elapsed().as_secs_f64());
        }
    }

    let rows: Vec<Row> = variants
        .iter_mut()
        .map(|v| {
            let seconds = median(&mut v.times);
            let bps = bandwidth_gbs(v.bytes, seconds) * 1e9;
            Row {
                variant: v.name,
                threads: v.threads,
                seconds,
                gflops: gflops(a.nnz(), seconds),
                bytes_per_second: bps,
                fraction_of_peak: frac(bps, peak_gbs),
                speedup: 0.0, // filled below
                imbalance: v.imbalance,
            }
        })
        .collect();
    let serial_s = rows[0].seconds;
    let mut rows: Vec<Row> = rows
        .into_iter()
        .map(|mut r| {
            r.speedup = serial_s / r.seconds;
            r
        })
        .collect();
    rows.iter_mut().for_each(|r| {
        println!(
            "{:<14} {:>8} {:>9.1} us {:>8.2} {:>8.2} {:>5.0}% {:>8.2}x {:>10.3}",
            r.variant,
            r.threads,
            r.seconds * 1e6,
            r.gflops,
            r.bytes_per_second / 1e9,
            r.fraction_of_peak * 100.0,
            r.speedup,
            r.imbalance
        );
    });

    // Bit-identity: rerun each strategy once into a fresh buffer and
    // compare against its family's serial reference.
    let mut bit_identical = true;
    for (i, &threads) in THREAD_COUNTS.iter().enumerate() {
        let mut y = vec![0f32; a.nrows()];
        for plan in [csr_plan_equal(a, threads), csr_plan(a, threads)] {
            y.fill(0.0);
            spmv_pooled_into(a, x, &mut y, &plan, &pools[i]);
            bit_identical &= bits_match(&y, &want_vec);
        }
        y.fill(0.0);
        buf.spmv_pooled_into(x, &mut y, &buf.exec_plan(threads), &pools[i]);
        bit_identical &= bits_match(&y, &want_buf);
        y.fill(0.0);
        tiled.spmv_pooled_into(x, &mut y, &tiled.exec_plan(threads), &pools[i]);
        bit_identical &= bits_match(&y, &want_tiled);
    }
    assert!(bit_identical, "a variant diverged from its serial kernel");
    println!("bit-identical within every kernel family: {bit_identical}");

    // Batched (SpMM) sweep: one call streams the matrix once for `batch`
    // distinct right-hand sides, so the matrix traffic charged to each
    // slice shrinks by 1/batch — the memory-centric payoff of batching.
    let spmm_threads = *THREAD_COUNTS.last().unwrap();
    let spmm_pool = pools.last().unwrap();
    let spmm_plan = csr_plan(a, spmm_threads);
    let mut spmm_rows: Vec<SpmmRow> = Vec::new();
    let mut spmm_identical = true;
    println!(
        "{:<14} {:>8} {:>6} {:>12} {:>8} {:>8} {:>12}",
        "spmm variant", "threads", "batch", "median", "gflops", "GB/s", "KB/slice"
    );
    for &k in &BATCHES {
        let mut xk = Vec::with_capacity(a.ncols() * k);
        for j in 0..k {
            let scale = 1.0 + 0.01 * j as f32;
            xk.extend(x.iter().map(|&v| v * scale));
        }
        let mut yk = vec![0f32; a.nrows() * k];
        let mut yj = vec![0f32; a.nrows()];
        let runs: [(&'static str, usize, SpmmKernel); 2] = [
            ("serial", 1, Box::new(|xk, yk| spmm_into(a, xk, yk, k))),
            (
                "pooled_nnz",
                spmm_threads,
                Box::new(|xk, yk| spmm_pooled_into(a, xk, yk, k, &spmm_plan, spmm_pool)),
            ),
        ];
        for (name, threads, mut f) in runs {
            f(&xk, &mut yk); // warmup
            let mut times = Vec::with_capacity(reps);
            for _ in 0..reps {
                let t = Instant::now();
                f(&xk, &mut yk);
                times.push(t.elapsed().as_secs_f64());
            }
            // Every column must be bit-identical to its own serial SpMV.
            for j in 0..k {
                spmv_into(a, &xk[j * a.ncols()..(j + 1) * a.ncols()], &mut yj);
                spmm_identical &= bits_match(&yk[j * a.nrows()..(j + 1) * a.nrows()], &yj);
            }
            let seconds = median(&mut times);
            let bps = bandwidth_gbs(a.regular_bytes(), seconds) * 1e9;
            println!(
                "{:<14} {:>8} {:>6} {:>9.1} us {:>8.2} {:>8.2} {:>12.1}",
                name,
                threads,
                k,
                seconds * 1e6,
                gflops(a.nnz() * k, seconds),
                bps / 1e9,
                a.regular_bytes() as f64 / k as f64 / 1e3
            );
            spmm_rows.push(SpmmRow {
                variant: name,
                threads,
                batch: k,
                seconds,
                gflops: gflops(a.nnz() * k, seconds),
                bytes_per_second: bps,
                fraction_of_peak: frac(bps, peak_gbs),
                bytes_per_slice: a.regular_bytes() as f64 / k as f64,
            });
        }
    }
    assert!(
        spmm_identical,
        "an SpMM column diverged from the serial SpMV kernel"
    );

    DatasetBlock {
        name: sds.name,
        scale: div,
        nrows: a.nrows(),
        ncols: a.ncols(),
        nnz: a.nnz(),
        bit_identical: bit_identical && spmm_identical,
        rows,
        spmm_rows,
    }
}

fn main() {
    let args = parse_args();
    let pools: Vec<WorkerPool> = THREAD_COUNTS.iter().map(|&t| WorkerPool::new(t)).collect();

    // The roofline ceiling: best sustainable triad bandwidth.
    let mut sa = vec![0f32; STREAM_ELEMS];
    let sb: Vec<f32> = (0..STREAM_ELEMS).map(|i| (i % 17) as f32).collect();
    let sc: Vec<f32> = (0..STREAM_ELEMS).map(|i| (i % 13) as f32 * 0.5).collect();
    let gbs_by_threads: Vec<f64> = THREAD_COUNTS
        .iter()
        .zip(&pools)
        .map(|(&t, pool)| stream_triad_gbs(pool, t, &mut sa, &sb, &sc))
        .collect();
    drop(sa);
    let peak_gbs = gbs_by_threads.iter().copied().fold(0.0, f64::max);
    println!(
        "STREAM triad ceiling: {peak_gbs:.2} GB/s (by threads {THREAD_COUNTS:?}: {:?})",
        gbs_by_threads
            .iter()
            .map(|g| (g * 100.0).round() / 100.0)
            .collect::<Vec<_>>()
    );

    let blocks: Vec<DatasetBlock> = args
        .sweep
        .iter()
        .map(|&(ds, div)| run_dataset(ds, div, args.reps, &pools, peak_gbs))
        .collect();

    // The regression gate: the vectorized pooled kernel must beat the
    // scalar serial baseline at 2 and 4 threads on every swept dataset.
    let mut won = true;
    for b in &blocks {
        for threads in [2usize, 4] {
            let r = b
                .rows
                .iter()
                .find(|r| r.variant == "pooled_nnz" && r.threads == threads)
                .expect("pooled_nnz measured");
            println!(
                "{} pooled_nnz vs serial at {threads} threads: {:.2}x",
                b.name, r.speedup
            );
            won &= r.speedup > 1.0;
        }
    }

    let json = render_json(args.reps, peak_gbs, &gbs_by_threads, &blocks);
    std::fs::write("BENCH_spmv.json", &json).expect("write BENCH_spmv.json");
    println!("wrote BENCH_spmv.json");
    assert!(
        won,
        "vectorized pooled_nnz did not beat the serial baseline at every thread count >= 2"
    );
}

fn render_json(
    reps: usize,
    peak_gbs: f64,
    gbs_by_threads: &[f64],
    blocks: &[DatasetBlock],
) -> String {
    let mut s = String::new();
    s.push_str("{\n");
    s.push_str("  \"bench\": \"spmv\",\n");
    s.push_str("  \"generated_by\": \"spmv-bench\",\n");
    s.push_str("  \"schema_version\": 2,\n");
    let _ = writeln!(s, "  \"reps\": {reps},");
    let _ = writeln!(
        s,
        "  \"stream\": {{\"triad_gbs\": {:.4}, \"gbs_by_threads\": [{}], \"array_mb\": {}}},",
        peak_gbs,
        gbs_by_threads
            .iter()
            .map(|g| format!("{g:.4}"))
            .collect::<Vec<_>>()
            .join(", "),
        STREAM_ELEMS * 4 / (1 << 20)
    );
    s.push_str(
        "  \"retired\": {\"scoped\": \"per-call thread spawns; strictly dominated by pooled_* in every committed measurement\"},\n",
    );
    s.push_str("  \"datasets\": [\n");
    for (bi, b) in blocks.iter().enumerate() {
        s.push_str("    {\n");
        let _ = writeln!(
            s,
            "      \"matrix\": {{\"dataset\": \"{}\", \"scale\": {}, \"nrows\": {}, \"ncols\": {}, \"nnz\": {}}},",
            b.name, b.scale, b.nrows, b.ncols, b.nnz
        );
        let _ = writeln!(s, "      \"bit_identical\": {},", b.bit_identical);
        s.push_str("      \"results\": [\n");
        for (i, r) in b.rows.iter().enumerate() {
            let _ = write!(
                s,
                "        {{\"variant\": \"{}\", \"threads\": {}, \"median_seconds\": {:.9}, \"gflops\": {:.4}, \"bytes_per_second\": {:.0}, \"fraction_of_peak\": {:.4}, \"speedup_vs_serial\": {:.4}, \"imbalance\": {:.4}}}",
                r.variant,
                r.threads,
                r.seconds,
                r.gflops,
                r.bytes_per_second,
                r.fraction_of_peak,
                r.speedup,
                r.imbalance
            );
            s.push_str(if i + 1 < b.rows.len() { ",\n" } else { "\n" });
        }
        s.push_str("      ],\n");
        s.push_str("      \"spmm_results\": [\n");
        for (i, r) in b.spmm_rows.iter().enumerate() {
            let _ = write!(
                s,
                "        {{\"variant\": \"{}\", \"threads\": {}, \"batch\": {}, \"median_seconds\": {:.9}, \"gflops\": {:.4}, \"bytes_per_second\": {:.0}, \"fraction_of_peak\": {:.4}, \"matrix_bytes_per_slice\": {:.1}}}",
                r.variant,
                r.threads,
                r.batch,
                r.seconds,
                r.gflops,
                r.bytes_per_second,
                r.fraction_of_peak,
                r.bytes_per_slice
            );
            s.push_str(if i + 1 < b.spmm_rows.len() {
                ",\n"
            } else {
                "\n"
            });
        }
        s.push_str("      ]\n");
        s.push_str(if bi + 1 < blocks.len() {
            "    },\n"
        } else {
            "    }\n"
        });
    }
    s.push_str("  ]\n}\n");
    s
}

//! SpMV execution-layer benchmark: serial vs per-call scoped threads vs
//! the persistent worker pool, across thread counts and partition
//! strategies, on the memoized forward operator of a scaled dataset.
//!
//! Emits `BENCH_spmv.json` (hand-rolled, schema below) so the repo keeps
//! a perf trajectory across PRs, and asserts that every variant's output
//! is bit-identical to the serial kernel — the determinism contract the
//! pooled execution layer guarantees.
//!
//! ```text
//! cargo run --release -p xct-bench --bin spmv-bench [scale_divisor] [reps]
//! ```
//!
//! JSON schema (one object):
//! - `bench`: `"spmv"`, `generated_by`: binary name
//! - `matrix`: `{dataset, scale, nrows, ncols, nnz}`
//! - `reps`: timed repetitions per variant (median reported)
//! - `bit_identical`: all variants × thread counts matched serial bitwise
//! - `results`: array of `{variant, threads, median_seconds, gflops,
//!   speedup_vs_serial, imbalance}` — `variant` ∈ `serial | scoped |
//!   pooled_equal | pooled_nnz`, `imbalance` is the plan's max/ideal nnz
//!   ratio (1.0 for serial/scoped).
//! - `spmm_results`: the batched (SpMM) sweep over `batch` ∈ 1/4/16/64,
//!   serial and pooled: `{variant, threads, batch, median_seconds,
//!   gflops, matrix_bytes_per_slice}` — the matrix is streamed once per
//!   call regardless of the batch width, so `matrix_bytes_per_slice`
//!   (regular bytes ÷ batch) falls as the batch widens; that is the
//!   memory-centric payoff of batching.

use std::fmt::Write as _;
use std::time::Instant;
use xct_bench::{gflops, scale_from_args, simulate};
use xct_geometry::ADS1;
use xct_runtime::WorkerPool;
use xct_sparse::{
    csr_plan, csr_plan_equal, spmm_into, spmm_pooled_into, spmv_into, spmv_pooled_into, CsrMatrix,
};

/// The per-call scoped-thread baseline the old rayon shim implemented:
/// equal row chunks, `threads` fresh OS threads spawned for every single
/// call, joined before returning.
fn spmv_scoped(a: &CsrMatrix, x: &[f32], y: &mut [f32], threads: usize) {
    let chunk = a.nrows().div_ceil(threads.max(1)).max(1);
    let rowptr = a.rowptr();
    let colind = a.colind();
    let values = a.values();
    std::thread::scope(|s| {
        for (p, out) in y.chunks_mut(chunk).enumerate() {
            s.spawn(move || {
                let base = p * chunk;
                for (j, slot) in out.iter_mut().enumerate() {
                    let i = base + j;
                    let mut acc = 0f32;
                    for k in rowptr[i]..rowptr[i + 1] {
                        acc += x[colind[k] as usize] * values[k];
                    }
                    *slot = acc;
                }
            });
        }
    });
}

/// One measured execution strategy: its kernel plus collected samples.
/// All variants are timed **interleaved** (round-robin within each rep)
/// so slow drift — frequency scaling, background load — lands evenly on
/// every variant instead of biasing whichever block ran last.
struct Variant<'a> {
    name: &'static str,
    threads: usize,
    imbalance: f64,
    times: Vec<f64>,
    f: Box<dyn FnMut() + 'a>,
}

fn median(times: &mut [f64]) -> f64 {
    times.sort_by(f64::total_cmp);
    times[times.len() / 2]
}

struct Row {
    variant: &'static str,
    threads: usize,
    seconds: f64,
    imbalance: f64,
}

struct SpmmRow {
    variant: &'static str,
    threads: usize,
    batch: usize,
    seconds: f64,
}

/// One SpMM kernel under test: fills the slice-major output slab from
/// the slice-major input slab.
type SpmmKernel<'a> = Box<dyn FnMut(&[f32], &mut [f32]) + 'a>;

fn main() {
    let div = scale_from_args();
    let reps: usize = std::env::args()
        .nth(2)
        .and_then(|s| s.parse().ok())
        .filter(|&r| r > 0)
        .unwrap_or(33);
    let ds = ADS1.scaled(div);
    let ops = xct_bench::preprocess(
        ds.grid(),
        ds.scan(),
        &xct_bench::Config {
            build_buffered: false,
            ..xct_bench::Config::default()
        },
    );
    let a = &ops.a;
    let (_, sino) = simulate(&ds, false);
    // A realistic input: one backprojection of the simulated sinogram.
    let mut x = vec![0f32; a.ncols()];
    spmv_into(&ops.at, ops.order_sinogram(&sino).as_slice(), &mut x);

    println!(
        "spmv-bench: {} (scale 1/{div}), {} rows x {} cols, {} nnz, {reps} reps\n",
        ds.name,
        a.nrows(),
        a.ncols(),
        a.nnz()
    );
    println!(
        "{:<14} {:>8} {:>12} {:>8} {:>10} {:>10}",
        "variant", "threads", "median", "gflops", "speedup", "imbalance"
    );

    let mut want = vec![0f32; a.nrows()];
    spmv_into(a, &x, &mut want);
    let x: &[f32] = &x;

    let thread_counts = [1usize, 2, 4];
    // Pools and plans are built once outside the timed region — that is
    // the whole point of the execution layer.
    let pools: Vec<WorkerPool> = thread_counts.iter().map(|&t| WorkerPool::new(t)).collect();
    let mut variants: Vec<Variant> = Vec::new();
    variants.push(Variant {
        name: "serial",
        threads: 1,
        imbalance: 1.0,
        times: Vec::new(),
        f: {
            let mut y = vec![0f32; a.nrows()];
            Box::new(move || spmv_into(a, x, &mut y))
        },
    });
    for (i, &threads) in thread_counts.iter().enumerate() {
        // Per-call scoped threads, equal rows: the pre-pool cost model.
        let mut y = vec![0f32; a.nrows()];
        variants.push(Variant {
            name: "scoped",
            threads,
            imbalance: 1.0,
            times: Vec::new(),
            f: Box::new(move || spmv_scoped(a, x, &mut y, threads)),
        });
        let pool = &pools[i];
        for (name, plan) in [
            ("pooled_equal", csr_plan_equal(a, threads)),
            ("pooled_nnz", csr_plan(a, threads)),
        ] {
            let mut y = vec![0f32; a.nrows()];
            variants.push(Variant {
                name,
                threads,
                imbalance: plan.imbalance(),
                times: Vec::new(),
                f: Box::new(move || spmv_pooled_into(a, x, &mut y, &plan, pool)),
            });
        }
    }

    // Interleaved measurement: warmup round, bit-identity round, then
    // `reps` rounds timing every variant back to back.
    for v in &mut variants {
        (v.f)();
    }
    for _ in 0..reps {
        for v in &mut variants {
            let t = Instant::now();
            (v.f)();
            v.times.push(t.elapsed().as_secs_f64());
        }
    }

    let rows: Vec<Row> = variants
        .iter_mut()
        .map(|v| Row {
            variant: v.name,
            threads: v.threads,
            seconds: median(&mut v.times),
            imbalance: v.imbalance,
        })
        .collect();
    let serial_s = rows[0].seconds;

    // Bit-identity: rerun each strategy once into a fresh buffer and
    // compare against the serial kernel.
    let mut bit_identical = true;
    for (i, &threads) in thread_counts.iter().enumerate() {
        let mut y = vec![0f32; a.nrows()];
        spmv_scoped(a, x, &mut y, threads);
        bit_identical &= bits_match(&y, &want);
        for plan in [csr_plan_equal(a, threads), csr_plan(a, threads)] {
            y.fill(0.0);
            spmv_pooled_into(a, x, &mut y, &plan, &pools[i]);
            bit_identical &= bits_match(&y, &want);
        }
    }

    for r in &rows {
        println!(
            "{:<14} {:>8} {:>9.1} us {:>8.2} {:>9.2}x {:>10.3}",
            r.variant,
            r.threads,
            r.seconds * 1e6,
            gflops(a.nnz(), r.seconds),
            serial_s / r.seconds,
            r.imbalance
        );
    }
    assert!(bit_identical, "a variant diverged from the serial kernel");

    let mut won = true;
    for threads in [2usize, 4] {
        let scoped = find(&rows, "scoped", threads);
        let pooled = find(&rows, "pooled_nnz", threads);
        let ratio = scoped / pooled;
        println!("\npooled_nnz vs scoped at {threads} threads: {ratio:.2}x");
        won &= ratio > 1.0;
    }
    println!(
        "bit-identical across all variants and thread counts: {}",
        bit_identical
    );

    // Batched (SpMM) sweep: one call streams the matrix once for `batch`
    // distinct right-hand sides, so the matrix traffic charged to each
    // slice shrinks by 1/batch — the memory-centric payoff of batching.
    let spmm_threads = *thread_counts.last().unwrap();
    let spmm_pool = pools.last().unwrap();
    let spmm_plan = csr_plan(a, spmm_threads);
    let ks = [1usize, 4, 16, 64];
    let mut spmm_rows: Vec<SpmmRow> = Vec::new();
    let mut spmm_identical = true;
    println!(
        "\n{:<14} {:>8} {:>6} {:>12} {:>8} {:>12}",
        "spmm variant", "threads", "batch", "median", "gflops", "KB/slice"
    );
    for &k in &ks {
        let mut xk = Vec::with_capacity(a.ncols() * k);
        for j in 0..k {
            let scale = 1.0 + 0.01 * j as f32;
            xk.extend(x.iter().map(|&v| v * scale));
        }
        let mut yk = vec![0f32; a.nrows() * k];
        let mut yj = vec![0f32; a.nrows()];
        let runs: [(&'static str, usize, SpmmKernel); 2] = [
            ("serial", 1, Box::new(|xk, yk| spmm_into(a, xk, yk, k))),
            (
                "pooled_nnz",
                spmm_threads,
                Box::new(|xk, yk| spmm_pooled_into(a, xk, yk, k, &spmm_plan, spmm_pool)),
            ),
        ];
        for (name, threads, mut f) in runs {
            f(&xk, &mut yk); // warmup
            let mut times = Vec::with_capacity(reps);
            for _ in 0..reps {
                let t = Instant::now();
                f(&xk, &mut yk);
                times.push(t.elapsed().as_secs_f64());
            }
            // Every column must be bit-identical to its own serial SpMV.
            for j in 0..k {
                spmv_into(a, &xk[j * a.ncols()..(j + 1) * a.ncols()], &mut yj);
                spmm_identical &= bits_match(&yk[j * a.nrows()..(j + 1) * a.nrows()], &yj);
            }
            let seconds = median(&mut times);
            println!(
                "{:<14} {:>8} {:>6} {:>9.1} us {:>8.2} {:>12.1}",
                name,
                threads,
                k,
                seconds * 1e6,
                gflops(a.nnz() * k, seconds),
                a.regular_bytes() as f64 / k as f64 / 1e3
            );
            spmm_rows.push(SpmmRow {
                variant: name,
                threads,
                batch: k,
                seconds,
            });
        }
    }
    assert!(
        spmm_identical,
        "an SpMM column diverged from the serial SpMV kernel"
    );
    println!("spmm columns bit-identical to serial spmv: {spmm_identical}");

    let json = render_json(ds.name, div, a, reps, bit_identical, &rows, &spmm_rows);
    std::fs::write("BENCH_spmv.json", &json).expect("write BENCH_spmv.json");
    println!("wrote BENCH_spmv.json");
    assert!(
        won,
        "pooled_nnz did not beat the scoped baseline at every thread count >= 2"
    );
}

fn bits_match(a: &[f32], b: &[f32]) -> bool {
    a.len() == b.len() && a.iter().zip(b).all(|(x, y)| x.to_bits() == y.to_bits())
}

fn find(rows: &[Row], variant: &str, threads: usize) -> f64 {
    rows.iter()
        .find(|r| r.variant == variant && r.threads == threads)
        .map(|r| r.seconds)
        .expect("variant measured")
}

fn render_json(
    dataset: &str,
    scale: u32,
    a: &CsrMatrix,
    reps: usize,
    bit_identical: bool,
    rows: &[Row],
    spmm_rows: &[SpmmRow],
) -> String {
    let serial = rows[0].seconds;
    let mut s = String::new();
    s.push_str("{\n");
    s.push_str("  \"bench\": \"spmv\",\n");
    s.push_str("  \"generated_by\": \"spmv-bench\",\n");
    let _ = writeln!(
        s,
        "  \"matrix\": {{\"dataset\": \"{dataset}\", \"scale\": {scale}, \"nrows\": {}, \"ncols\": {}, \"nnz\": {}}},",
        a.nrows(),
        a.ncols(),
        a.nnz()
    );
    let _ = writeln!(s, "  \"reps\": {reps},");
    let _ = writeln!(s, "  \"bit_identical\": {bit_identical},");
    s.push_str("  \"results\": [\n");
    for (i, r) in rows.iter().enumerate() {
        let _ = write!(
            s,
            "    {{\"variant\": \"{}\", \"threads\": {}, \"median_seconds\": {:.9}, \"gflops\": {:.4}, \"speedup_vs_serial\": {:.4}, \"imbalance\": {:.4}}}",
            r.variant,
            r.threads,
            r.seconds,
            gflops(a.nnz(), r.seconds),
            serial / r.seconds,
            r.imbalance
        );
        s.push_str(if i + 1 < rows.len() { ",\n" } else { "\n" });
    }
    s.push_str("  ],\n");
    s.push_str("  \"spmm_results\": [\n");
    for (i, r) in spmm_rows.iter().enumerate() {
        let _ = write!(
            s,
            "    {{\"variant\": \"{}\", \"threads\": {}, \"batch\": {}, \"median_seconds\": {:.9}, \"gflops\": {:.4}, \"matrix_bytes_per_slice\": {:.1}}}",
            r.variant,
            r.threads,
            r.batch,
            r.seconds,
            gflops(a.nnz() * r.batch, r.seconds),
            a.regular_bytes() as f64 / r.batch as f64
        );
        s.push_str(if i + 1 < spmm_rows.len() { ",\n" } else { "\n" });
    }
    s.push_str("  ]\n}\n");
    s
}

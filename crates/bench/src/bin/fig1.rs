//! Fig 1: the headline result — a large mouse-brain slice reconstructed
//! with 30 CG iterations, "the largest iterative reconstruction achieved
//! in near-real time" (~10 s on 4096 KNL nodes for 11293²).
//!
//! This binary (a) *executes* the full pipeline on a scaled brain-like
//! phantom, distributed across thread-ranks, writing a viewable PGM; and
//! (b) *models* the full-size run on Theta from exact work volumes — the
//! reproduction of the 10-second claim.
//!
//! ```text
//! cargo run --release -p xct-bench --bin fig1 [scale_divisor] [ranks]
//! ```

use memxct::{DistConfig, ReconstructorBuilder};
use xct_bench::{analytic_volumes, calibrate_comm, fmt_secs, simulate};
use xct_geometry::{io, RDS2};
use xct_runtime::{iteration_time, THETA};

fn main() {
    let mut args = std::env::args().skip(1);
    let div: u32 = args.next().and_then(|s| s.parse().ok()).unwrap_or(32);
    let ranks: usize = args.next().and_then(|s| s.parse().ok()).unwrap_or(4);

    // (a) Executed: scaled RDS2, distributed CG, PGM output.
    let ds = RDS2.scaled(div);
    println!(
        "Fig 1 (executed at scale 1/{div}): {}x{} sinogram -> {n}x{n} brain slice, {ranks} ranks",
        ds.projections,
        ds.channels,
        n = ds.channels
    );
    let (truth, sino) = simulate(&ds, true);
    let t = std::time::Instant::now();
    let rec = ReconstructorBuilder::new(ds.grid(), ds.scan())
        .build()
        .expect("valid dataset geometry");
    let pre = t.elapsed().as_secs_f64();
    let t = std::time::Instant::now();
    let out = rec
        .run(
            &memxct::ReconRequest::cg(memxct::ReconInput::Slice(sino), memxct::StopRule::Fixed(30))
                .mode(memxct::ExecMode::Distributed {
                    config: DistConfig {
                        ranks,
                        use_buffered: true,
                        stop: memxct::StopRule::Fixed(30),
                        solver: memxct::DistSolver::Cg,
                    },
                    ft: None,
                }),
        )
        .expect("distributed reconstruction failed");
    let solve = t.elapsed().as_secs_f64();
    let err = rel_err(&out.images[0], &truth);
    println!(
        "preprocess {:.2}s, 30 CG iterations {:.2}s, relative L2 error {err:.4}",
        pre, solve
    );
    let path = std::path::Path::new("fig1_brain.pgm");
    let n = ds.channels as usize;
    match io::write_pgm(path, n, n, &out.images[0]) {
        Ok(()) => println!("wrote {} ({n}x{n})", path.display()),
        Err(e) => println!("could not write {}: {e}", path.display()),
    }

    // (b) Modeled at full scale: the 10-second claim.
    println!("\nFig 1 (modeled at full scale): RDS2 = 4501x11283 -> 11293^2 slice");
    let cal = calibrate_comm(&RDS2, (div * 4).max(32), 16);
    for nodes in [2048usize, 4096] {
        let v = analytic_volumes(&RDS2, nodes, &cal);
        match iteration_time(&THETA, &v, nodes) {
            Some(t) => println!(
                "  {nodes} KNL nodes: 30 CG iterations in {} (paper: ~10 s on 4096 nodes)",
                fmt_secs(30.0 * t.total())
            ),
            None => println!("  {nodes} nodes: does not fit"),
        }
    }
    println!(
        "  application memory footprint at full size: {:.1} TiB (paper: 10.2 TiB)",
        2.0 * RDS2.footprint().regular_forward as f64 / 1024f64.powi(4)
    );
}

fn rel_err(a: &[f32], b: &[f32]) -> f64 {
    let num: f64 = a
        .iter()
        .zip(b)
        .map(|(&x, &y)| ((x - y) as f64).powi(2))
        .sum::<f64>()
        .sqrt();
    let den: f64 = b.iter().map(|&y| (y as f64).powi(2)).sum::<f64>().sqrt();
    num / den
}

//! Ablation: tile granularity (§3.4): "While processes are not perfectly
//! load balanced, it can be improved by finer tile granularity at the
//! cost of more preprocessing."
//!
//! Sweeps the level-1 tile size and reports process load imbalance,
//! communication volume, ordering-construction cost, and curve adjacency.
//!
//! ```text
//! cargo run --release -p xct-bench --bin ablation_tile [scale_divisor]
//! ```

use memxct::dist::build_plans;
use memxct::{preprocess, Config, DomainOrdering};
use std::time::Instant;
use xct_bench::scale_from_args;
use xct_geometry::ADS2;
use xct_hilbert::TwoLevelOrdering;

fn main() {
    let div = scale_from_args();
    let ds = ADS2.scaled(div);
    let n = ds.channels;
    let ranks = 16;
    println!(
        "tile-size ablation on {} scaled 1/{div} ({}x{}), {ranks} ranks\n",
        ds.name, ds.projections, ds.channels
    );
    println!(
        "{:<6} {:>10} {:>14} {:>14} {:>12} {:>14}",
        "tile", "tiles", "imbalance", "comm KB", "adjacency", "ordering ms"
    );

    for k in 1..=6u32 {
        let tile = 1 << k;
        if tile > n {
            break;
        }
        let t0 = Instant::now();
        let two = TwoLevelOrdering::new(n, n, tile);
        let ordering_ms = t0.elapsed().as_secs_f64() * 1e3;
        let adjacency = two.ordering().adjacency_fraction();
        let num_tiles = two.layout().num_tiles();

        // Load imbalance of the rank decomposition: max/mean cells.
        let ranges = two.layout().partition_ranks(ranks);
        let sizes: Vec<f64> = ranges.iter().map(|r| (r.end - r.start) as f64).collect();
        let mean = sizes.iter().sum::<f64>() / ranks as f64;
        let imbalance = sizes.iter().cloned().fold(0.0, f64::max) / mean;

        let ops = preprocess(
            ds.grid(),
            ds.scan(),
            &Config {
                ordering: DomainOrdering::TwoLevelHilbert(Some(tile)),
                build_buffered: false,
                ..Config::default()
            },
        );
        let plans = build_plans(&ops, ranks, false);
        let comm: f64 = plans.iter().map(|p| p.volumes().comm_bytes).sum();

        println!(
            "{:<6} {:>10} {:>13.3}x {:>14.1} {:>11.1}% {:>14.2}",
            tile,
            num_tiles,
            imbalance,
            comm / 1024.0,
            adjacency * 100.0,
            ordering_ms
        );
    }
    println!("\nfiner tiles => near-perfect load balance (imbalance -> 1.0) and finer");
    println!("communication granularity, at more level-1 curve overhead; coarse tiles");
    println!("cheapen preprocessing but skew rank loads — exactly the trade §3.4 states.");
}

//! Motivation study (paper §1): "Analytical methods such as the filtered
//! backprojection (FBP) algorithm are computationally efficient, but
//! reconstruction quality is often poor when measurements are noisy or
//! undersampled. Iterative methods ... can use advanced optimization and
//! regularization techniques to handle inherent noise."
//!
//! Sweeps (a) angular undersampling and (b) photon dose, comparing FBP
//! against CG with early termination on image error — quantifying where
//! the iterative machinery MemXCT accelerates actually pays off.
//!
//! ```text
//! cargo run --release -p xct-bench --bin fbp_vs_iterative [grid_size]
//! ```

use memxct::{fbp, preprocess, Config, FbpConfig, Kernel, StopRule};
use xct_geometry::{shepp_logan, simulate_sinogram, Grid, NoiseModel, ScanGeometry};

fn rel_err(a: &[f32], b: &[f32]) -> f64 {
    let num: f64 = a
        .iter()
        .zip(b)
        .map(|(&x, &y)| ((x - y) as f64).powi(2))
        .sum::<f64>()
        .sqrt();
    let den: f64 = b.iter().map(|&y| (y as f64).powi(2)).sum::<f64>().sqrt();
    num / den
}

fn run_case(n: u32, projections: u32, noise: NoiseModel) -> (f64, f64, usize) {
    let grid = Grid::new(n);
    let scan = ScanGeometry::new(projections, n);
    let truth = shepp_logan().rasterize(n);
    let sino = simulate_sinogram(&truth, &grid, &scan, noise, 0xd05e);
    let ops = preprocess(grid, scan, &Config::default());

    let img_fbp = fbp(&ops, &sino, &FbpConfig::default());

    let y = ops.order_sinogram(&sino);
    let (x, recs) = memxct::cgls(
        &y,
        ops.a.ncols(),
        |p| ops.forward(Kernel::Buffered, p),
        |r| ops.back(Kernel::Buffered, r),
        StopRule::EarlyTermination {
            max_iters: 50,
            min_decrease: 0.02,
        },
    );
    let img_cg = ops.unorder_tomogram(&x);
    (
        rel_err(&img_fbp, &truth),
        rel_err(&img_cg, &truth),
        recs.len(),
    )
}

fn main() {
    let n: u32 = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(96);

    println!("FBP vs iterative CG on the Shepp-Logan phantom ({n}x{n})\n");

    println!("(a) angular undersampling (noise-free):");
    println!(
        "{:>12} {:>12} {:>12} {:>10} {:>10}",
        "projections", "FBP error", "CG error", "CG iters", "CG wins by"
    );
    for projections in [(3 * n) / 2, n, n / 2, n / 4, n / 8] {
        let (e_fbp, e_cg, iters) = run_case(n, projections.max(4), NoiseModel::None);
        println!(
            "{:>12} {:>12.4} {:>12.4} {:>10} {:>9.2}x",
            projections.max(4),
            e_fbp,
            e_cg,
            iters,
            e_fbp / e_cg
        );
    }

    println!("\n(b) photon dose (fully sampled, 1.5N projections):");
    println!(
        "{:>12} {:>12} {:>12} {:>10} {:>10}",
        "photons/ray", "FBP error", "CG error", "CG iters", "CG wins by"
    );
    for incident in [1e6, 1e5, 1e4, 1e3] {
        let noise = NoiseModel::Poisson {
            incident,
            scale: 0.05,
        };
        let (e_fbp, e_cg, iters) = run_case(n, 3 * n / 2, noise);
        println!(
            "{:>12.0e} {:>12.4} {:>12.4} {:>10} {:>9.2}x",
            incident,
            e_fbp,
            e_cg,
            iters,
            e_fbp / e_cg
        );
    }
    println!("\nthe iterative advantage grows exactly where the paper says it does:");
    println!("few views and low dose. FBP stays competitive only on clean, dense scans —");
    println!("which is why making iterative reconstruction fast (MemXCT's goal) matters.");
}

//! Table 3: dataset details and memory footprints.
//!
//! Footprints are computed exactly from the ray geometry (O(M·N) per
//! dataset, no tracing): irregular data is the gathered-from domain
//! (tomogram for forward, sinogram for backprojection); regular data is
//! 8 bytes per stored nonzero per direction.
//!
//! ```text
//! cargo run --release -p xct-bench --bin table3
//! ```

use xct_bench::fmt_bytes;
use xct_geometry::{SampleKind, ALL_DATASETS};

fn main() {
    // Paper's reported values for side-by-side comparison.
    let paper: [(&str, &str, &str); 6] = [
        ("ADS1", "256 KB/360 KB", "215 MB/215 MB"),
        ("ADS2", "1.0 MB/1.5 MB", "1.8 GB/1.8 GB"),
        ("ADS3", "4.0 MB/6.0 MB", "14 GB/14 GB"),
        ("ADS4", "16 MB/19 MB", "90 GB/90 GB"),
        ("RDS1", "16 MB/12 MB", "56 GB/56 GB"),
        ("RDS2", "500 MB/198 MB", "5.1 TB/5.1 TB"),
    ];

    println!("Table 3: Dataset Details and Memory Footprints");
    println!(
        "{:<6} {:>12} {:<12} {:>22} {:>22} {:>16}",
        "Name", "Sinogram", "Sample", "Irregular (fwd/back)", "Regular (fwd/back)", "nnz"
    );
    for (ds, (_, p_irr, p_reg)) in ALL_DATASETS.iter().zip(&paper) {
        let f = ds.footprint();
        let sample = match ds.sample {
            SampleKind::Artificial => "Artificial",
            SampleKind::ShaleRock => "Shale Rock",
            SampleKind::MouseBrain => "Mouse Brain",
        };
        println!(
            "{:<6} {:>5}x{:<6} {:<12} {:>10}/{:<11} {:>10}/{:<11} {:>14.2}M",
            ds.name,
            ds.projections,
            ds.channels,
            sample,
            fmt_bytes(f.irregular_forward),
            fmt_bytes(f.irregular_backward),
            fmt_bytes(f.regular_forward),
            fmt_bytes(f.regular_backward),
            f.nnz as f64 / 1e6,
        );
        println!(
            "{:<6} {:>12} {:<12} {:>22} {:>22}",
            "", "", "(paper)", p_irr, p_reg
        );
    }
    println!(
        "\nirregular = gathered-from domain sizes (tomogram N²·4B fwd, sinogram M·N·4B back);"
    );
    println!("regular = nnz·(4B index + 4B value) per direction; nnz counted exactly per ray.");
}

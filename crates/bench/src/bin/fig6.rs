//! Fig 6: partition footprints, data reuse, and multi-stage buffer shapes.
//!
//! The paper's example: 256×256 tomogram and sinogram domains, 64×64
//! partitions (4096 rows). The tomogram partition (backprojection rows)
//! reads the sinogram domain with average data reuse 64.73; the sinogram
//! partition (forward rows) reads the tomogram domain with reuse 46.63.
//! With a 32 KB buffer (8192 f32), the two partitions need 3 and 4 stages.
//!
//! ```text
//! cargo run --release -p xct-bench --bin fig6
//! ```

use xct_bench::{preprocess, Config};
use xct_geometry::{Grid, ScanGeometry};
use xct_sparse::partition_stats;

fn main() {
    let n = 256u32;
    let grid = Grid::new(n);
    let scan = ScanGeometry::new(n, n); // 256x256 sinogram domain
    let ops = preprocess(
        grid,
        scan,
        &Config {
            build_buffered: false,
            ..Config::default()
        },
    );

    let partsize = 64 * 64; // one 64x64 subdomain worth of rows
    let buffsize_f32 = 32 * 1024 / 4; // 32 KB buffer

    println!("Fig 6: partition footprints and buffer stages");
    println!("256x256 domains, 64x64 partitions ({partsize} rows), 32 KB buffer\n");
    println!(
        "{:<22} {:>8} {:>11} {:>12} {:>8} {:>14}",
        "partition (reads from)", "nnz", "footprint", "avg reuse", "stages", "paper reuse"
    );

    // Sinogram partition -> reads tomogram domain (rows of A).
    let fwd = partition_stats(&ops.a, partsize, buffsize_f32);
    let mid = fwd.len() / 2;
    let s = &fwd[mid];
    println!(
        "{:<22} {:>8} {:>11} {:>12.2} {:>8} {:>14}",
        "sinogram (tomogram)",
        s.nnz,
        s.footprint,
        s.reuse(),
        s.stages,
        "46.63 / 4 stg"
    );

    // Tomogram partition -> reads sinogram domain (rows of A^T).
    let back = partition_stats(&ops.at, partsize, buffsize_f32);
    let mid = back.len() / 2;
    let s = &back[mid];
    println!(
        "{:<22} {:>8} {:>11} {:>12.2} {:>8} {:>14}",
        "tomogram (sinogram)",
        s.nnz,
        s.footprint,
        s.reuse(),
        s.stages,
        "64.73 / 3 stg"
    );

    // Whole-matrix view: reuse and stage distribution across partitions.
    println!("\nper-partition distribution (all partitions):");
    for (name, stats) in [("forward", &fwd), ("backprojection", &back)] {
        let reuse: Vec<f64> = stats.iter().map(|s| s.reuse()).collect();
        let stages: Vec<usize> = stats.iter().map(|s| s.stages).collect();
        let mean_reuse = reuse.iter().sum::<f64>() / reuse.len() as f64;
        let max_stage = stages.iter().max().unwrap();
        let min_stage = stages.iter().min().unwrap();
        println!(
            "  {name:<16} partitions {:>3}  mean reuse {:>7.2}  stages {}..{}",
            stats.len(),
            mean_reuse,
            min_stage,
            max_stage
        );
    }
    println!("\nhigher reuse on the backprojection side matches the paper: sinogram data");
    println!("is reused more, which is why MemXCT communicates sinograms (§3.4.2).");
}

//! Fig 10: tuning the buffered kernel — GFLOPS heat map over partition
//! size × buffer size for ADS2.
//!
//! The paper's sweet spot on KNL is partition size 128 with an 8 KB
//! buffer; too-small buffers stage too often, too-large partitions blow
//! the footprint, too-large buffers leak out of L1.
//!
//! ```text
//! cargo run --release -p xct-bench --bin fig10 [scale_divisor]
//! ```

use memxct::{preprocess, Config};
use xct_bench::{gflops, scale_from_args, time_median};
use xct_geometry::ADS2;
use xct_sparse::BufferedCsr;

fn main() {
    let div = scale_from_args();
    let ds = ADS2.scaled(div);
    println!(
        "Fig 10: buffered-kernel tuning heat map, {} scaled 1/{div} ({}x{})\n",
        ds.name, ds.projections, ds.channels
    );

    let ops = preprocess(
        ds.grid(),
        ds.scan(),
        &Config {
            build_buffered: false,
            ..Config::default()
        },
    );
    let x: Vec<f32> = (0..ops.a.ncols()).map(|i| (i % 13) as f32 * 0.3).collect();
    let nnz = ops.a.nnz();

    let partsizes = [16usize, 32, 64, 128, 256, 512, 1024];
    let buffsizes_kb = [1usize, 2, 4, 8, 16, 32, 64];

    println!("GFLOPS (rows: partition size, cols: buffer size in KB):");
    print!("{:>6}", "");
    for kb in buffsizes_kb {
        print!("{kb:>8}");
    }
    println!();
    let mut best = (0.0f64, 0usize, 0usize);
    for ps in partsizes {
        print!("{ps:>6}");
        for kb in buffsizes_kb {
            let buff = kb * 1024 / 4;
            let m = BufferedCsr::from_csr(&ops.a, ps, buff);
            let t = time_median(
                || {
                    std::hint::black_box(m.spmv_parallel(&x));
                },
                3,
            );
            let g = gflops(nnz, t);
            if g > best.0 {
                best = (g, ps, kb);
            }
            print!("{g:>8.2}");
        }
        println!();
    }
    println!(
        "\nbest: {:.2} GFLOPS at partition {} / buffer {} KB (paper's KNL peak: partition 128, 8 KB)",
        best.0, best.1, best.2
    );
}

//! Table 1: empirical verification of the computational-complexity model.
//!
//! The paper's claims, per process: memory `O(M·N²/P + M·N/√P)`, compute
//! `O(M·N²/P + M·N/√P)`, communication `O(M·N/√P + P)` — i.e. "when P
//! quadruples, total communication footprint on sinogram domain doubles".
//! This binary builds real rank plans at increasing P and checks those
//! growth rates.
//!
//! ```text
//! cargo run --release -p xct-bench --bin table1 [scale_divisor]
//! ```

use memxct::dist::build_plans;
use xct_bench::{preprocess, scale_from_args, Config};
use xct_geometry::ADS2;

fn main() {
    let div = scale_from_args();
    let ds = ADS2.scaled(div);
    println!(
        "Table 1: complexity verification on {} scaled 1/{div} ({}x{})\n",
        ds.name, ds.projections, ds.channels
    );
    let ops = preprocess(
        ds.grid(),
        ds.scan(),
        &Config {
            build_buffered: false,
            ..Config::default()
        },
    );
    let nnz = ops.a.nnz();
    println!("matrix nonzeroes (M·N² term): {:.2}M\n", nnz as f64 / 1e6);

    println!(
        "{:>5} {:>14} {:>14} {:>14} {:>12} {:>12}",
        "P", "max nnz/rank", "total comm", "comm/rank", "comm vs √P", "peers/rank"
    );
    let mut base_comm: Option<f64> = None;
    for p in [1usize, 4, 16, 64] {
        let plans = build_plans(&ops, p, false);
        let max_nnz = plans.iter().map(|pl| pl.a_local.nnz()).max().unwrap();
        let total_comm: f64 = plans.iter().map(|pl| pl.volumes().comm_bytes).sum();
        let per_rank = total_comm / p as f64;
        let peers: f64 = plans.iter().map(|pl| pl.volumes().comm_peers).sum::<f64>() / p as f64;
        // Normalize total comm by √P: a flat column verifies O(M·N·√P).
        let sqrt_norm = total_comm / (p as f64).sqrt();
        if base_comm.is_none() && p > 1 {
            base_comm = Some(sqrt_norm);
        }
        let flat = base_comm.map_or(1.0, |b| sqrt_norm / b);
        println!(
            "{:>5} {:>14} {:>13.1}K {:>13.1}K {:>12.2} {:>12.1}",
            p,
            max_nnz,
            total_comm / 1024.0,
            per_rank / 1024.0,
            flat,
            peers
        );
    }
    println!("\nreading the table:");
    println!("- max nnz/rank halves as P doubles: compute is O(M·N²/P)  ✓");
    println!("- 'comm vs √P' stays near 1: total communication is O(M·N·√P), so");
    println!("  per-rank communication is O(M·N/√P) — quadrupling P doubles total comm  ✓");
    println!("- the compute-centric alternative would Allreduce the whole N² tomogram");
    println!(
        "  per iteration: {} KB per rank regardless of P (O(N² log P) total).",
        (ops.a.ncols() * 4) / 1024
    );
}

//! Seeded chaos soak for the supervised serving runtime.
//!
//! One `JobRuntime` is driven through a fleet of jobs that mixes every
//! supervised failure mode — contained panics, chaos-injected
//! crash/drop/delay communication faults with deterministic retry, and a
//! deadline overrun — and the harness then proves the acceptance
//! criteria of DESIGN.md "Supervised serving":
//!
//! - every job ends in a terminal **typed** status (no lost jobs),
//! - every waiter returns within its bound (no hung waiters),
//! - retried and resumed outputs are **bit-identical** to direct
//!   unfaulted runs (nondeterministic retry output fails the soak),
//! - the `job/*` / `breaker/*` metric families reconcile exactly with
//!   the result ledger,
//! - the breaker resets and the runtime serves new jobs afterward.
//!
//! Usage: `chaos_soak [seed]` (default seed 42). The seed feeds the
//! simulated sinograms and the retry jitter, so a given seed replays the
//! same soak.

use std::sync::Arc;
use std::time::Duration;

use memxct::{
    CheckpointPolicy, DistConfig, DistSolver, ExecMode, FaultTolerance, ReconInput, ReconRequest,
    ReconResponse, ReconstructorBuilder, StopRule,
};
use xct_geometry::{disk, simulate_sinogram, Grid, NoiseModel, ScanGeometry, Sinogram};
use xct_obs::{
    BREAKER_STATE, BREAKER_TRIPS, JOB_COMPLETED, JOB_FAILED, JOB_PANICS, JOB_RETRIES,
    JOB_SUBMITTED, JOB_TIMEOUTS,
};
use xct_runtime::{FaultKind, FaultPlan, MemoryCheckpointSink};
use xct_serve::{
    BreakerConfig, JobError, JobId, JobResult, JobRuntime, JobSpec, PlanSpec, RetryPolicy,
    RuntimeConfig,
};

/// Generous per-job waiter bound: a supervised job must reach a terminal
/// status well within this; hitting it means a hung waiter or lost job.
const WAIT_BOUND: Duration = Duration::from_secs(120);

fn geometry(n: u32, m: u32) -> (Grid, ScanGeometry) {
    (Grid::new(n), ScanGeometry::new(m, n))
}

fn sino(grid: Grid, scan: ScanGeometry, n: u32, seed: u64) -> Sinogram {
    let truth = disk(
        0.3 + 0.03 * (seed % 9) as f64,
        1.0 + 0.25 * (seed % 5) as f32,
    )
    .rasterize(n);
    simulate_sinogram(&truth, &grid, &scan, NoiseModel::None, seed)
}

fn bits(image: &[f32]) -> Vec<u32> {
    image.iter().map(|v| v.to_bits()).collect()
}

fn assert_bit_identical(label: &str, got: &ReconResponse, want: &ReconResponse) {
    assert_eq!(
        bits(&got.images[0]),
        bits(&want.images[0]),
        "{label}: output differs from the direct unfaulted run"
    );
}

/// Bounded wait that treats a missed bound as a soak failure.
fn must_finish(runtime: &JobRuntime, label: &str, id: JobId) -> JobResult {
    match runtime.wait_timeout(id, WAIT_BOUND) {
        Some(result) => result,
        None => panic!("{label} (job {id:?}): waiter hung or job lost"),
    }
}

fn main() {
    let seed: u64 = std::env::args()
        .nth(1)
        .map(|s| s.parse().expect("seed must be a u64"))
        .unwrap_or(42);
    println!("chaos-soak: seed {seed}");

    // The panic drills are contained by the runtime's catch_unwind, but
    // the default hook would still splat their backtraces into the CI
    // log; silence exactly those, keep everything else loud.
    let default_hook = std::panic::take_hook();
    std::panic::set_hook(Box::new(move |info| {
        let drill = info
            .payload()
            .downcast_ref::<String>()
            .is_some_and(|s| s.contains("chaos panic drill"));
        if !drill {
            default_hook(info);
        }
    }));

    let (grid_s, scan_s) = geometry(16, 12);
    let (grid_d, scan_d) = geometry(24, 36);
    let plan_s = PlanSpec::new(grid_s, scan_s);
    let plan_d = PlanSpec::new(grid_d, scan_d);
    let dist = DistConfig {
        ranks: 2,
        use_buffered: true,
        stop: StopRule::Fixed(8),
        solver: DistSolver::Cg,
    };

    // Direct unfaulted golden runs for every bit-identity check.
    let direct_s = ReconstructorBuilder::new(grid_s, scan_s)
        .validate_plan(true)
        .build()
        .unwrap();
    let direct_d = ReconstructorBuilder::new(grid_d, scan_d)
        .validate_plan(true)
        .build()
        .unwrap();
    let serial_req =
        |s: Sinogram, iters| ReconRequest::cg(ReconInput::Slice(s), StopRule::Fixed(iters));
    let dist_req = |s: Sinogram, ft| {
        ReconRequest::cg(ReconInput::Slice(s), StopRule::Fixed(8))
            .mode(ExecMode::Distributed { config: dist, ft })
    };

    let runtime = JobRuntime::new(RuntimeConfig {
        breaker: BreakerConfig {
            trip_after: 2,
            cooldown: Duration::ZERO,
        },
        ..RuntimeConfig::default()
    });
    let mut submitted = 0u64;

    // Phase 1 — panic storm: two contained panics trip the breaker; the
    // zero cooldown means the next submission is the half-open probe,
    // whose success must reset the breaker.
    for i in 0..2 {
        let id = runtime
            .submit(
                JobSpec::new(
                    format!("panic{i}"),
                    plan_s,
                    serial_req(sino(grid_s, scan_s, 16, seed + i), 2),
                )
                .chaos_panic(format!("chaos panic drill {i}")),
            )
            .unwrap();
        submitted += 1;
        let r = must_finish(&runtime, "panic drill", id);
        assert!(
            matches!(r.outcome, Err(JobError::Panicked { .. })),
            "panic drill must end Panicked, got {:?}",
            r.outcome
        );
    }
    let probe_sino = sino(grid_s, scan_s, 16, seed + 2);
    let want_probe = direct_s.run(&serial_req(probe_sino.clone(), 4)).unwrap();
    let probe = runtime
        .submit(JobSpec::new("probe", plan_s, serial_req(probe_sino, 4)))
        .unwrap();
    submitted += 1;
    let r = must_finish(&runtime, "half-open probe", probe);
    assert_bit_identical("probe", &r.outcome.expect("probe completed"), &want_probe);
    println!("chaos-soak: breaker tripped by panic storm and reset by probe");

    // Phase 2 — mixed chaos fleet, submitted together.
    // Crash: rank 1 dies mid-solve, no inner restart budget; recovery is
    // the runtime's own seeded retry, resuming from the job checkpoint.
    let crash_sino = sino(grid_d, scan_d, 24, seed + 3);
    let want_crash = direct_d.run(&dist_req(crash_sino.clone(), None)).unwrap();
    let crash_ft = FaultTolerance {
        faults: Arc::new(FaultPlan::new().with(1, 4, FaultKind::Crash)),
        max_restarts: 0,
        ..FaultTolerance::default()
    };
    let crash = runtime
        .submit(
            JobSpec::new("crash", plan_d, dist_req(crash_sino, Some(crash_ft)))
                .retry(
                    RetryPolicy::retries(2)
                        .base(Duration::from_millis(1))
                        .seed(seed),
                )
                .checkpoint_every(1),
        )
        .unwrap();
    submitted += 1;

    // Drop: the transport loses one delivery attempt; the communicator's
    // bounded resend recovers it transparently inside the attempt.
    let drop_sino = sino(grid_d, scan_d, 24, seed + 4);
    let want_drop = direct_d.run(&dist_req(drop_sino.clone(), None)).unwrap();
    let drop_ft = FaultTolerance {
        faults: Arc::new(FaultPlan::new().with(1, 3, FaultKind::Drop { attempts: 1 })),
        ..FaultTolerance::default()
    };
    let dropped = runtime
        .submit(JobSpec::new(
            "drop",
            plan_d,
            dist_req(drop_sino, Some(drop_ft)),
        ))
        .unwrap();
    submitted += 1;

    // Delay: added delivery latency under the receive deadline is
    // invisible to the numerics.
    let delay_sino = sino(grid_d, scan_d, 24, seed + 5);
    let want_delay = direct_d.run(&dist_req(delay_sino.clone(), None)).unwrap();
    let delay_ft = FaultTolerance {
        faults: Arc::new(FaultPlan::new().with(0, 2, FaultKind::Delay { micros: 200 })),
        ..FaultTolerance::default()
    };
    let delayed = runtime
        .submit(JobSpec::new(
            "delay",
            plan_d,
            dist_req(delay_sino, Some(delay_ft)),
        ))
        .unwrap();
    submitted += 1;

    // Deadline overrun: a zero budget over a pre-seeded snapshot (3 of 8
    // iterations) must end TimedOut with the snapshot retained.
    let tight_sino = sino(grid_s, scan_s, 16, seed + 6);
    let want_tight = direct_s.run(&serial_req(tight_sino.clone(), 8)).unwrap();
    let seed_sink = Arc::new(MemoryCheckpointSink::new());
    direct_s
        .run(
            &serial_req(tight_sino.clone(), 3)
                .checkpoint(CheckpointPolicy::new(seed_sink.clone(), 1)),
        )
        .unwrap();
    let tight = runtime
        .submit(
            JobSpec::new("tight", plan_s, serial_req(tight_sino.clone(), 8))
                .deadline(Duration::ZERO)
                .resume_from(seed_sink),
        )
        .unwrap();
    submitted += 1;

    // Plain jobs riding along, one at a higher priority.
    let plain_sino = sino(grid_s, scan_s, 16, seed + 7);
    let want_plain = direct_s.run(&serial_req(plain_sino.clone(), 5)).unwrap();
    let plain = runtime
        .submit(JobSpec::new("plain", plan_s, serial_req(plain_sino, 5)))
        .unwrap();
    submitted += 1;
    let vip_sino = sino(grid_s, scan_s, 16, seed + 8);
    let want_vip = direct_s.run(&serial_req(vip_sino.clone(), 5)).unwrap();
    let vip = runtime
        .submit(JobSpec::new("vip", plan_s, serial_req(vip_sino, 5)).priority(2))
        .unwrap();
    submitted += 1;

    // Drain the fleet within the waiter bound.
    let r_crash = must_finish(&runtime, "crash", crash);
    let crash_out = r_crash.outcome.expect("retry must recover the crash");
    assert_eq!(r_crash.report.retries, 1, "exactly one retry recovered it");
    assert_bit_identical("crash+retry", &crash_out, &want_crash);

    let r_drop = must_finish(&runtime, "drop", dropped);
    assert_bit_identical(
        "drop",
        &r_drop.outcome.expect("drop is transparent"),
        &want_drop,
    );
    assert_eq!(r_drop.report.retries, 0, "drop recovers inside the attempt");

    let r_delay = must_finish(&runtime, "delay", delayed);
    assert_bit_identical(
        "delay",
        &r_delay.outcome.expect("delay is transparent"),
        &want_delay,
    );

    let r_tight = must_finish(&runtime, "tight", tight);
    let retained = match r_tight.outcome {
        Err(JobError::TimedOut { checkpointed, .. }) => {
            assert!(checkpointed, "deadline stop must retain its snapshot");
            r_tight.checkpoint.expect("retained checkpoint")
        }
        other => panic!("tight job must time out, got {other:?}"),
    };

    let r_plain = must_finish(&runtime, "plain", plain);
    assert_bit_identical("plain", &r_plain.outcome.expect("completed"), &want_plain);
    let r_vip = must_finish(&runtime, "vip", vip);
    assert_bit_identical("vip", &r_vip.outcome.expect("completed"), &want_vip);
    println!(
        "chaos-soak: mixed fleet drained (crash retried, drop/delay transparent, deadline overran)"
    );

    // Phase 3 — the runtime still serves: resume the timed-out job from
    // its retained snapshot (bit-identical finish), then a final fresh
    // job.
    let resume = runtime
        .submit(JobSpec::new("resume", plan_s, serial_req(tight_sino, 8)).resume_from(retained))
        .unwrap();
    submitted += 1;
    let r_resume = must_finish(&runtime, "resume", resume);
    assert_bit_identical(
        "deadline+resume",
        &r_resume.outcome.expect("resume completed"),
        &want_tight,
    );

    let final_sino = sino(grid_s, scan_s, 16, seed + 9);
    let want_final = direct_s.run(&serial_req(final_sino.clone(), 3)).unwrap();
    let fin = runtime
        .submit(JobSpec::new("final", plan_s, serial_req(final_sino, 3)))
        .unwrap();
    submitted += 1;
    let r_fin = must_finish(&runtime, "final", fin);
    assert_bit_identical("final", &r_fin.outcome.expect("completed"), &want_final);

    // Reconcile the metric families against the result ledger.
    let completed = 7u64; // probe, drop, delay, plain, vip, resume, final
    let completed_with_retry = 1u64; // crash
    let panicked = 2u64;
    let timed_out = 1u64;
    assert!(submitted >= 8, "soak must cover at least 8 jobs");
    let snap = runtime.metrics();
    let counter = |name: &str| snap.counters.get(name).copied().unwrap_or(0);
    assert_eq!(counter(JOB_SUBMITTED), submitted, "submitted reconciles");
    assert_eq!(
        counter(JOB_COMPLETED),
        completed + completed_with_retry,
        "completed reconciles"
    );
    assert_eq!(counter(JOB_FAILED), panicked, "failed reconciles");
    assert_eq!(counter(JOB_PANICS), panicked, "panics reconcile");
    assert_eq!(counter(JOB_TIMEOUTS), timed_out, "timeouts reconcile");
    assert_eq!(counter(JOB_RETRIES), 1, "retries reconcile");
    assert!(counter(BREAKER_TRIPS) >= 1, "the panic storm must trip");
    assert_eq!(
        snap.gauges.get(BREAKER_STATE).copied(),
        Some(0.0),
        "the breaker must be closed at the end"
    );

    let leftovers = runtime.finish();
    assert!(leftovers.is_empty(), "every result was claimed by a waiter");
    println!(
        "chaos-soak: OK — {submitted} jobs, {} completed, {panicked} panicked, \
         {timed_out} timed out, 1 retried, breaker reset",
        completed + completed_with_retry
    );
}

//! Ablation: which properties of the two-level pseudo-Hilbert ordering
//! matter? (§3.2's design rationale.)
//!
//! Compares six orderings of both domains on four axes: curve continuity,
//! partition connectivity (thread/process locality), simulated L2 miss
//! rate of the irregular SpMV stream, and total communication volume of a
//! 16-rank decomposition. The paper argues Morton fails on partition
//! connectivity (§3.2.3) and row-major fails on cache locality (§3.2.1);
//! this makes both failure modes measurable.
//!
//! ```text
//! cargo run --release -p xct-bench --bin ablation_ordering [scale_divisor]
//! ```

use memxct::dist::build_plans;
use memxct::{preprocess, Config, DomainOrdering};
use xct_bench::scale_from_args;
use xct_cachesim::{spmv_irregular_miss_rate, CacheConfig};
use xct_geometry::ADS2;
use xct_hilbert::Ordering2D;

fn ordering_2d(ordering: DomainOrdering, w: u32, h: u32) -> Ordering2D {
    match ordering {
        DomainOrdering::RowMajor => Ordering2D::row_major(w, h),
        DomainOrdering::ColumnMajor => Ordering2D::column_major(w, h),
        DomainOrdering::HilbertSquare => Ordering2D::hilbert_square(w, h),
        DomainOrdering::Gilbert => Ordering2D::gilbert(w, h),
        DomainOrdering::Morton => Ordering2D::morton(w, h),
        DomainOrdering::TwoLevelHilbert(t) => Ordering2D::two_level_hilbert(
            w,
            h,
            t.unwrap_or_else(|| xct_hilbert::default_tile_size(w, h)),
        ),
    }
}

fn main() {
    let div = scale_from_args();
    let ds = ADS2.scaled(div);
    let n = ds.channels;
    println!(
        "ordering ablation on {} scaled 1/{div} ({}x{}), 16 ranks\n",
        ds.name, ds.projections, ds.channels
    );
    println!(
        "{:<18} {:>10} {:>12} {:>12} {:>14} {:>12}",
        "ordering", "adjacency", "conn parts", "L2 miss", "comm total KB", "comm pairs"
    );

    let orderings = [
        ("row-major", DomainOrdering::RowMajor),
        ("column-major", DomainOrdering::ColumnMajor),
        ("morton", DomainOrdering::Morton),
        ("hilbert-square", DomainOrdering::HilbertSquare),
        ("gilbert", DomainOrdering::Gilbert),
        ("two-level", DomainOrdering::TwoLevelHilbert(None)),
    ];

    // Cache small enough that the scaled tomogram exercises capacity
    // misses (footprint/capacity ratio comparable to the paper's).
    let cache = CacheConfig::new(
        64,
        (n as usize * n as usize / 8).next_power_of_two().max(4096),
        8,
    );

    for (name, ordering) in orderings {
        let ord2d = ordering_2d(ordering, n, n);
        let adjacency = ord2d.adjacency_fraction();
        let connected = ord2d.connected_partition_count(16);

        let ops = preprocess(
            ds.grid(),
            ds.scan(),
            &Config {
                ordering,
                build_buffered: false,
                ..Config::default()
            },
        );
        let miss = spmv_irregular_miss_rate(ops.a.colind(), cache).miss_rate();
        let plans = build_plans(&ops, 16, false);
        let comm_total: f64 = plans.iter().map(|p| p.volumes().comm_bytes).sum();
        let pairs: usize = plans
            .iter()
            .flat_map(|p| {
                p.dest_ranges
                    .iter()
                    .enumerate()
                    .filter(move |(q, r)| *q != p.rank && !r.is_empty())
            })
            .count();
        println!(
            "{:<18} {:>9.1}% {:>9}/16 {:>11.1}% {:>14.1} {:>9}/240",
            name,
            adjacency * 100.0,
            connected,
            miss * 100.0,
            comm_total / 1024.0,
            pairs
        );
    }
    println!("\nreading the table: two-level hilbert is the only ordering that wins on");
    println!("*both* cache locality (low miss rate) and partition structure (connected");
    println!("partitions, low communication) — the paper's justification for the");
    println!("two-level construction over Morton (§3.2.3) and row-major (§3.2.1).");
}

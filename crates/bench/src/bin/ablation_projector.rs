//! Ablation: projection model — Siddon's exact intersection lengths (the
//! paper's choice, §2.3) vs Joseph's linear interpolation (TomoPy's
//! default). Compares matrix size, preprocessing cost, kernel throughput,
//! and reconstruction accuracy.
//!
//! ```text
//! cargo run --release -p xct-bench --bin ablation_projector [scale_divisor]
//! ```

use memxct::{cgls, preprocess, Config, Kernel, Projector, StopRule};
use xct_bench::{gflops, scale_from_args, time_median};
use xct_geometry::{simulate_sinogram, NoiseModel, ADS2};

fn rel_err(a: &[f32], b: &[f32]) -> f64 {
    let num: f64 = a
        .iter()
        .zip(b)
        .map(|(&x, &y)| ((x - y) as f64).powi(2))
        .sum::<f64>()
        .sqrt();
    let den: f64 = b.iter().map(|&y| (y as f64).powi(2)).sum::<f64>().sqrt();
    num / den
}

fn main() {
    let div = scale_from_args();
    let ds = ADS2.scaled(div);
    println!(
        "projector ablation on {} scaled 1/{div} ({}x{})\n",
        ds.name, ds.projections, ds.channels
    );
    let truth = ds.phantom().rasterize(ds.channels);
    let sino = simulate_sinogram(&truth, &ds.grid(), &ds.scan(), NoiseModel::None, 7);

    println!(
        "{:<10} {:>10} {:>12} {:>12} {:>10} {:>12}",
        "projector", "nnz (M)", "nnz/row", "preproc ms", "GFLOPS", "recon err"
    );
    for (name, projector) in [("siddon", Projector::Siddon), ("joseph", Projector::Joseph)] {
        let t0 = std::time::Instant::now();
        let ops = preprocess(
            ds.grid(),
            ds.scan(),
            &Config {
                projector,
                ..Config::default()
            },
        );
        let pre_ms = t0.elapsed().as_secs_f64() * 1e3;

        let x: Vec<f32> = (0..ops.a.ncols()).map(|i| (i % 9) as f32 * 0.25).collect();
        let buf = ops.a_buf.as_ref().unwrap();
        let t = time_median(
            || {
                std::hint::black_box(buf.spmv_parallel(&x));
            },
            3,
        );

        let y = ops.order_sinogram(&sino);
        let (rec, _) = cgls(
            &y,
            ops.a.ncols(),
            |p| ops.forward(Kernel::Buffered, p),
            |r| ops.back(Kernel::Buffered, r),
            StopRule::Fixed(30),
        );
        let img = ops.unorder_tomogram(&rec);

        println!(
            "{:<10} {:>10.2} {:>12.1} {:>12.1} {:>10.2} {:>12.4}",
            name,
            ops.a.nnz() as f64 / 1e6,
            ops.a.nnz() as f64 / ops.a.nrows() as f64,
            pre_ms,
            gflops(ops.a.nnz(), t),
            rel_err(&img, &truth)
        );
    }
    println!("\nnote: the simulated measurement uses Siddon, so the Siddon reconstruction");
    println!("benefits from an exactly-matched (\"inverse crime\") forward model; Joseph's");
    println!("error includes genuine model mismatch, as it would against real data.");
}

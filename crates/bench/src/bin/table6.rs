//! Table 6: comparison with general-purpose SpMV libraries (MKL on KNL,
//! cuSPARSE on GPU) for ADS2.
//!
//! Substitution: a deliberately *generic* parallel CSR SpMV (static equal
//! row chunks, 32-bit indices, no application-specific tuning) plays the
//! role of the vendor library; a matrix-level-padded ELL plays cuSPARSE's
//! ELL. MemXCT's variants then stack its application-specific choices:
//! tuned dynamic partitions → pseudo-Hilbert ordering → multi-stage
//! buffering.
//!
//! ```text
//! cargo run --release -p xct-bench --bin table6 [scale_divisor]
//! ```

use memxct::{preprocess, Config, DomainOrdering};
use xct_bench::{gflops, scale_from_args, spmv_library, time_median};
use xct_geometry::ADS2;
use xct_sparse::{spmv_parallel, BufferedCsr};

fn main() {
    let div = scale_from_args();
    let ds = ADS2.scaled_projections(div);
    println!(
        "Table 6: comparison with a generic SpMV library for {} (projections/{div}: {}x{})\n",
        ds.name, ds.projections, ds.channels
    );

    // Library baseline + MemXCT baseline run on the row-major matrix
    // (no ordering assumption); the optimized variants use Hilbert.
    let rm = preprocess(
        ds.grid(),
        ds.scan(),
        &Config {
            ordering: DomainOrdering::RowMajor,
            build_buffered: false,
            ..Config::default()
        },
    );
    let hl = preprocess(ds.grid(), ds.scan(), &Config::default());

    let x_rm: Vec<f32> = (0..rm.a.ncols()).map(|i| (i % 17) as f32 * 0.1).collect();
    let x_hl: Vec<f32> = (0..hl.a.ncols()).map(|i| (i % 17) as f32 * 0.1).collect();
    let reps = 5;
    let nnz = rm.a.nnz();

    let t_lib = time_median(
        || std::hint::black_box(spmv_library(&rm.a, &x_rm)).truncate(0),
        reps,
    );
    let t_base = time_median(
        || std::hint::black_box(spmv_parallel(&rm.a, &x_rm, 128)).truncate(0),
        reps,
    );
    let t_hil = time_median(
        || std::hint::black_box(spmv_parallel(&hl.a, &x_hl, 128)).truncate(0),
        reps,
    );
    let buf = BufferedCsr::from_csr(&hl.a, 128, 2048);
    let t_buf = time_median(
        || std::hint::black_box(buf.spmv_parallel(&x_hl)).truncate(0),
        reps,
    );

    println!(
        "{:<26} {:>10} {:>10} {:>9} {:>20}",
        "variant", "time", "GFLOPS", "speedup", "paper speedup (KNL)"
    );
    let rows = [
        ("library SpMV (MKL analog)", t_lib, "1x"),
        ("MemXCT baseline", t_base, "1.42x"),
        ("+ pseudo-Hilbert ordering", t_hil, "4.99x"),
        ("+ multi-stage buffering", t_buf, "6.55x"),
    ];
    for (name, t, paper) in rows {
        println!(
            "{:<26} {:>8.1}ms {:>10.2} {:>8.2}x {:>20}",
            name,
            t * 1e3,
            gflops(nnz, t),
            t_lib / t,
            paper
        );
    }
    println!("\nGPU column (cuSPARSE ELL vs partition-padded ELL): the padding economics —");
    let ell_part = xct_sparse::EllMatrix::from_csr(&hl.a, 128);
    let max_row = (0..hl.a.nrows())
        .map(|i| hl.a.rowptr()[i + 1] - hl.a.rowptr()[i])
        .max()
        .unwrap_or(0);
    let matrix_padded = hl.a.nrows() * max_row;
    println!(
        "  matrix-level padding (cuSPARSE style): {:>12} slots ({:.2}x nnz)",
        matrix_padded,
        matrix_padded as f64 / nnz as f64
    );
    println!(
        "  partition-level padding (MemXCT):      {:>12} slots ({:.2}x nnz)",
        ell_part.padded_nnz(),
        ell_part.padded_nnz() as f64 / nnz as f64
    );
}

//! Table 5: RDS1 reconstruction on various node counts and machines —
//! modeled from exact work volumes and the Table 2 machine rates (this
//! box has one core; see DESIGN.md's substitution note).
//!
//! Paper rows: 1-Theta 63.3 s recon (1×), 8-Theta 3.33 s (19×,
//! super-linear from MCDRAM), 8-Cooley 2.89 s, 32-Blue Waters 1.82 s,
//! 32-Theta 1.37 s (46.2×), 32-Cooley 1.22 s; all-slices time drops from
//! 1.44 days to under an hour.
//!
//! ```text
//! cargo run --release -p xct-bench --bin table5 [scale_divisor]
//! ```

use xct_bench::{analytic_volumes, calibrate_comm, fmt_secs, scale_from_args};
use xct_geometry::RDS1;
use xct_runtime::{iteration_time, MachineSpec, BLUE_WATERS, COOLEY, THETA};

fn main() {
    let div = scale_from_args().max(8);
    let cal = calibrate_comm(&RDS1, div, 16);
    let iters = 30.0;
    let slices = RDS1.channels as f64; // full 3D volume = N slices

    // Preprocessing model: tracing + transpose + buffers stream the full
    // matrix a handful of times; charge 6 passes over the regular data at
    // the machine's slow-tier bandwidth, split across devices.
    let preproc = |spec: &MachineSpec, devices: f64| -> f64 {
        let nnz = RDS1.footprint().nnz as f64;
        6.0 * (nnz * 8.0) / (spec.slow_bandwidth * spec.bandwidth_utilization) / devices
    };

    struct Row {
        label: &'static str,
        spec: MachineSpec,
        nodes: usize,
        paper_recon: &'static str,
        paper_all: &'static str,
    }
    let rows = [
        Row {
            label: "1-Theta (1 KNL)",
            spec: THETA,
            nodes: 1,
            paper_recon: "63.3 s",
            paper_all: "1.44 d",
        },
        Row {
            label: "8-Theta (8 KNL)",
            spec: THETA,
            nodes: 8,
            paper_recon: "3.33 s",
            paper_all: "1.89 h",
        },
        Row {
            label: "8-Cooley (16 K80)",
            spec: COOLEY,
            nodes: 8,
            paper_recon: "2.89 s",
            paper_all: "1.64 h",
        },
        Row {
            label: "32-Blue W. (32 K20X)",
            spec: BLUE_WATERS,
            nodes: 32,
            paper_recon: "1.82 s",
            paper_all: "62.1 m",
        },
        Row {
            label: "32-Theta (32 KNL)",
            spec: THETA,
            nodes: 32,
            paper_recon: "1.37 s",
            paper_all: "46.8 m",
        },
        Row {
            label: "32-Cooley (64 K80)",
            spec: COOLEY,
            nodes: 32,
            paper_recon: "1.22 s",
            paper_all: "41.6 m",
        },
    ];

    println!("Table 5: RDS1 reconstruction on various nodes-machines (modeled; calibration scale 1/{div})\n");
    println!(
        "{:<22} {:>9} {:>8} {:>9} {:>8} {:>10} {:>9} {:>9}",
        "nodes-machine",
        "preproc",
        "speedup",
        "recon",
        "speedup",
        "all slices",
        "paper",
        "paper all"
    );
    let mut base: Option<(f64, f64)> = None;
    for row in &rows {
        let devices = row.nodes * row.spec.devices_per_node as usize;
        let v = analytic_volumes(&RDS1, devices, &cal);
        let Some(t) = iteration_time(&row.spec, &v, devices) else {
            println!("{:<22} {:>9}", row.label, "does not fit");
            continue;
        };
        let recon = iters * t.total();
        let pre = preproc(&row.spec, devices as f64);
        if base.is_none() {
            base = Some((pre, recon));
        }
        let (pre0, rec0) = base.unwrap();
        let all = pre + slices * recon;
        println!(
            "{:<22} {:>9} {:>7.1}x {:>9} {:>7.1}x {:>10} {:>9} {:>9}",
            row.label,
            fmt_secs(pre),
            pre0 / pre,
            fmt_secs(recon),
            rec0 / recon,
            fmt_secs(all),
            row.paper_recon,
            row.paper_all,
        );
    }
    println!("\nthe super-linear recon speedup at 8+ Theta nodes comes from the per-node");
    println!("working set (56 GB/P) dropping under the 16 GB MCDRAM capacity — the same");
    println!("mechanism the paper credits (§4.1.3).");
}

//! Table 7: cross-comparison of Theta and Blue Waters at their fastest
//! configurations (modeled; see DESIGN.md's substitution note).
//!
//! Paper: RDS1 — 805 ms on 128 K20X vs 474 ms on 128 KNL (Theta ≈1.7×);
//! RDS2 — 74 s on 4096 K20X vs 10 s on 2048 KNL (≈7.4×); the 12000×8192
//! weak-scaled dataset — 24.4 s vs 3.25 s on 4096 nodes (≈7.5×).
//!
//! ```text
//! cargo run --release -p xct-bench --bin table7 [scale_divisor]
//! ```

use xct_bench::{analytic_volumes, calibrate_comm, fmt_secs, scale_from_args};
use xct_geometry::{Dataset, SampleKind, RDS1, RDS2};
use xct_runtime::{iteration_time, BLUE_WATERS, THETA};

fn main() {
    let div = scale_from_args().max(8);
    let iters = 30.0;

    /// The 12000×8192 dataset from the ADS2 weak-scaling chain.
    const W12K: Dataset = Dataset {
        name: "12000x8192",
        projections: 12000,
        channels: 8192,
        sample: SampleKind::Artificial,
    };

    println!("Table 7: Theta vs Blue Waters at their fastest configurations (modeled)\n");
    println!(
        "{:<12} {:<22} {:>10} {:>10} {:>8} {:>12}",
        "dataset", "configuration", "modeled", "paper", "ratio", "paper ratio"
    );

    // (dataset, calibration divisor, theta nodes, bw nodes, paper theta, paper bw, paper ratio)
    let cases = [
        (RDS1, div, 128usize, 128usize, "474 ms", "805 ms", "1.7x"),
        (RDS2, div * 4, 2048, 4096, "10 s", "74 s", "7.4x"),
        (W12K, div * 4, 4096, 4096, "3.25 s", "24.4 s", "7.5x"),
    ];

    for (ds, cdiv, theta_nodes, bw_nodes, p_theta, p_bw, p_ratio) in cases {
        let cal = calibrate_comm(&ds, cdiv, 16);
        let vt = analytic_volumes(&ds, theta_nodes, &cal);
        let vb = analytic_volumes(&ds, bw_nodes, &cal);
        let tt = iteration_time(&THETA, &vt, theta_nodes).map(|t| iters * t.total());
        let tb = iteration_time(&BLUE_WATERS, &vb, bw_nodes).map(|t| iters * t.total());
        match (tt, tb) {
            (Some(tt), Some(tb)) => {
                println!(
                    "{:<12} {:<22} {:>10} {:>10} {:>8} {:>12}",
                    ds.name,
                    format!("{theta_nodes} KNL"),
                    fmt_secs(tt),
                    p_theta,
                    "",
                    ""
                );
                println!(
                    "{:<12} {:<22} {:>10} {:>10} {:>7.1}x {:>12}",
                    "",
                    format!("{bw_nodes} K20X"),
                    fmt_secs(tb),
                    p_bw,
                    tb / tt,
                    p_ratio
                );
            }
            _ => println!("{:<12} does not fit at these node counts", ds.name),
        }
    }
    println!("\nTheta's advantage compounds: higher per-device bandwidth once data fits");
    println!("MCDRAM, and K20X per-node working sets exceeding 6 GB HBM spill to the");
    println!("PCIe-attached host tier on Blue Waters.");
}

//! Fig 8: L-curves for CG and SIRT on the shale sample (RDS1), with the
//! early-termination point.
//!
//! The paper runs up to 500 iterations and terminates CG at 30, where the
//! L-curve's corner indicates overfitting onset; SIRT "does not converge
//! even with 500 iterations".
//!
//! ```text
//! cargo run --release -p xct-bench --bin fig8 [scale_divisor] [iters]
//! ```

use memxct::{ReconstructorBuilder, StopRule};
use xct_bench::simulate;
use xct_geometry::RDS1;

fn main() {
    let mut args = std::env::args().skip(1);
    let div: u32 = args.next().and_then(|s| s.parse().ok()).unwrap_or(16);
    let iters: usize = args.next().and_then(|s| s.parse().ok()).unwrap_or(500);

    let ds = RDS1.scaled(div);
    println!(
        "Fig 8: L-curves for CG and SIRT, RDS1 scaled 1/{div} ({}x{}), up to {iters} iterations\n",
        ds.projections, ds.channels
    );
    let (truth, sino) = simulate(&ds, true);
    let rec = ReconstructorBuilder::new(ds.grid(), ds.scan())
        .build()
        .expect("valid dataset geometry");

    let cg = rec
        .run(&memxct::ReconRequest::cg(
            memxct::ReconInput::Slice(sino.clone()),
            StopRule::Fixed(iters),
        ))
        .expect("CG reconstruction failed");
    let si = rec
        .run(&memxct::ReconRequest::sirt(
            memxct::ReconInput::Slice(sino.clone()),
            iters,
        ))
        .expect("SIRT reconstruction failed");

    println!(
        "{:>6} {:>14} {:>14} {:>14} {:>14}",
        "iter", "CG ||y-Ax||", "CG ||x||", "SIRT ||y-Ax||", "SIRT ||x||"
    );
    // Log-spaced sample points, like reading values off the L-curve.
    let mut marks: Vec<usize> = vec![1, 2, 3, 5, 8, 12, 20, 30, 45, 70, 100, 150, 250, 400, 500];
    marks.retain(|&m| m <= iters);
    for m in marks {
        let c = &cg.slice_records[0][m - 1];
        let s = &si.slice_records[0][m - 1];
        println!(
            "{:>6} {:>14.6e} {:>14.6e} {:>14.6e} {:>14.6e}",
            m, c.residual_norm, c.solution_norm, s.residual_norm, s.solution_norm
        );
    }

    // Overfitting check: does the CG image at 30 iterations beat later
    // iterates against the ground truth? (The L-curve corner argument.)
    println!("\nimage error vs ground truth at matched iteration counts:");
    for m in [10usize, 30, 100, iters] {
        if m > iters {
            continue;
        }
        let cg_m = rec
            .run(&memxct::ReconRequest::cg(
                memxct::ReconInput::Slice(sino.clone()),
                StopRule::Fixed(m),
            ))
            .expect("CG reconstruction failed");
        println!(
            "  CG@{m:<4} rel L2 error {:.4}",
            rel_err(&cg_m.images[0], &truth)
        );
    }
    let si_final = rel_err(&si.images[0], &truth);
    println!("  SIRT@{iters:<3} rel L2 error {si_final:.4}");

    let early = rec
        .run(&memxct::ReconRequest::cg(
            memxct::ReconInput::Slice(sino),
            StopRule::EarlyTermination {
                max_iters: iters,
                min_decrease: 0.02,
            },
        ))
        .expect("CG reconstruction failed");
    println!(
        "\nearly-termination heuristic stops CG at iteration {} (paper terminates at 30)",
        early.slice_records[0].len()
    );
}

fn rel_err(a: &[f32], b: &[f32]) -> f64 {
    let num: f64 = a
        .iter()
        .zip(b)
        .map(|(&x, &y)| ((x - y) as f64).powi(2))
        .sum::<f64>()
        .sqrt();
    let den: f64 = b.iter().map(|&y| (y as f64).powi(2)).sum::<f64>().sqrt();
    num / den
}

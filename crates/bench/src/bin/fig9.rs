//! Fig 9: single-device performance of the three optimization stages —
//! baseline SpMV, + two-level pseudo-Hilbert ordering, + multi-stage
//! buffering — across the artificial datasets: GFLOPS, L2 miss rate
//! (simulated against a KNL-like L2), and effective memory bandwidth.
//!
//! Datasets keep their **full tomogram width** (so the irregular footprint
//! is the real one; the ordering optimizations are pointless on a
//! footprint that fits in cache) and scale the projection count instead,
//! which shrinks the matrix without changing per-row locality.
//!
//! Paper reference (KNL): Hilbert ordering gives 1.59× (ADS1, small) to
//! 4.62× (ADS2); buffering adds up to ~1.3× more on ADS2+ and nothing on
//! ADS1; L2 miss rates drop from tens of percent to single digits.
//!
//! ```text
//! cargo run --release -p xct-bench --bin fig9 [extra_projection_divisor]
//! ```

use memxct::{
    preprocess, BufferedOperator, Config, DomainOrdering, Operators, ParallelOperator,
    ProjectionOperator,
};
use xct_bench::{bandwidth_gbs, gflops};
use xct_cachesim::{spmv_irregular_miss_rate, CacheConfig};
use xct_geometry::{Dataset, ADS1, ADS2, ADS3, ADS4};
use xct_sparse::BufferedCsr;

struct Variant {
    name: &'static str,
    gflops: f64,
    miss_rate: f64,
    bandwidth: f64,
}

/// Median per-call kernel seconds, read from the operator's own
/// [`memxct::KernelBreakdown`] instrumentation — the same timing path the
/// solvers and the distributed ranks use.
fn median_kernel_time(
    op: &dyn ProjectionOperator,
    reps: usize,
    mut call: impl FnMut(&dyn ProjectionOperator),
) -> f64 {
    let mut t = Vec::with_capacity(reps);
    for _ in 0..reps {
        let before = op.breakdown().expect("instrumented operator").total();
        call(op);
        t.push(op.breakdown().expect("instrumented operator").total() - before);
    }
    t.sort_by(f64::total_cmp);
    t[t.len() / 2]
}

/// Forward+backprojection GFLOPS/bandwidth of one configuration, timed
/// through the [`ProjectionOperator`] layer.
fn run(ops: &Operators, buffered: bool, reps: usize) -> (f64, f64) {
    let partsize = 128;
    let buffsize = 2048; // 8 KB, the paper's tuned KNL value
    let x: Vec<f32> = (0..ops.a.ncols()).map(|i| (i % 13) as f32 * 0.3).collect();
    let y: Vec<f32> = (0..ops.a.nrows()).map(|i| (i % 11) as f32 * 0.2).collect();
    let mut yo = vec![0f32; ops.a.nrows()];
    let mut xo = vec![0f32; ops.a.ncols()];
    let nnz = ops.a.nnz();
    if buffered {
        let fa = BufferedCsr::from_csr(&ops.a, partsize, buffsize);
        let fb = BufferedCsr::from_csr(&ops.at, partsize, buffsize);
        let op = BufferedOperator::from_parts(&fa, &fb);
        let t_f = median_kernel_time(&op, reps, |o| {
            o.forward_into(&x, std::hint::black_box(&mut yo))
        });
        let t_b = median_kernel_time(&op, reps, |o| {
            o.back_into(&y, std::hint::black_box(&mut xo))
        });
        let t = (t_f + t_b) / 2.0;
        let bytes = (fa.regular_bytes() + fb.regular_bytes()) / 2;
        (gflops(nnz, t), bandwidth_gbs(bytes, t))
    } else {
        let op = ParallelOperator::from_parts(&ops.a, &ops.at, partsize);
        let t_f = median_kernel_time(&op, reps, |o| {
            o.forward_into(&x, std::hint::black_box(&mut yo))
        });
        let t_b = median_kernel_time(&op, reps, |o| {
            o.back_into(&y, std::hint::black_box(&mut xo))
        });
        let t = (t_f + t_b) / 2.0;
        (gflops(nnz, t), bandwidth_gbs(ops.a.regular_bytes(), t))
    }
}

fn measure(ds: &Dataset, reps: usize) -> Vec<Variant> {
    // The simulated L2 sees the real footprint (full tomogram width).
    let l2 = CacheConfig::knl_l2();
    let mut out = Vec::new();

    // Build configurations one at a time to bound peak memory.
    {
        let base = preprocess(
            ds.grid(),
            ds.scan(),
            &Config {
                ordering: DomainOrdering::RowMajor,
                build_buffered: false,
                ..Config::default()
            },
        );
        let (g, b) = run(&base, false, reps);
        let m = spmv_irregular_miss_rate(base.a.colind(), l2).miss_rate();
        out.push(Variant {
            name: "baseline",
            gflops: g,
            miss_rate: m,
            bandwidth: b,
        });
    }
    {
        let hil = preprocess(
            ds.grid(),
            ds.scan(),
            &Config {
                build_buffered: false,
                ..Config::default()
            },
        );
        let (g, b) = run(&hil, false, reps);
        let m = spmv_irregular_miss_rate(hil.a.colind(), l2).miss_rate();
        out.push(Variant {
            name: "+hilbert",
            gflops: g,
            miss_rate: m,
            bandwidth: b,
        });
        let (g, b) = run(&hil, true, reps);
        out.push(Variant {
            name: "+buffering",
            gflops: g,
            miss_rate: m,
            bandwidth: b,
        });
    }
    out
}

fn main() {
    let extra: u32 = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .filter(|&s| s > 0)
        .unwrap_or(1);
    // Per-dataset projection divisors keep every matrix around or below
    // ~250M nonzeroes at full tomogram width.
    let cases = [(ADS1, 1u32), (ADS2, 4), (ADS3, 16), (ADS4, 48)];
    println!(
        "Fig 9: optimization stages per dataset (full tomogram width, projections/{extra} extra)\n"
    );
    println!(
        "{:<6} {:>11} {:<12} {:>8} {:>12} {:>10} {:>16}",
        "data", "sinogram", "variant", "GFLOPS", "L2 miss", "BW GB/s", "speedup vs base"
    );
    for (ds, base_div) in cases {
        let small = ds.scaled_projections(base_div * extra);
        let variants = measure(&small, 2);
        let base = variants[0].gflops;
        for v in &variants {
            println!(
                "{:<6} {:>4}x{:<6} {:<12} {:>8.2} {:>11.1}% {:>10.1} {:>15.2}x",
                small.name,
                small.projections,
                small.channels,
                v.name,
                v.gflops,
                v.miss_rate * 100.0,
                v.bandwidth,
                v.gflops / base
            );
        }
        println!();
    }
    println!("paper (KNL): hilbert speedups 1.59x (ADS1) to 4.62x (ADS2); buffering adds");
    println!("up to ~1.3x more on ADS2+ and nothing on ADS1; miss rates drop to single");
    println!("digits. on this host a 260 MB L3 softens the penalty the orderings remove,");
    println!("so measured speedups are compressed relative to KNL; the simulated L2 miss");
    println!("rates show the KNL-faithful picture.");
}

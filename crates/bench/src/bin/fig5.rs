//! Fig 5: data access patterns on 2D domains — cache behaviour of one
//! ray's tomogram footprint (forward projection) and one pixel's sinusoid
//! (backprojection) under row-major vs Hilbert ordering.
//!
//! The paper's worked example uses 16×16 domains with one 64 B cache line
//! per row (row-major) or per 4×4 block (Hilbert): 25 tomogram accesses
//! miss 16 times (64%) row-major vs 6 times (24%) Hilbert; 30 sinogram
//! accesses miss 16 (53%) vs 7 (23%).
//!
//! ```text
//! cargo run --release -p xct-bench --bin fig5
//! ```

use xct_bench::{preprocess, Config};
use xct_cachesim::{CacheConfig, CacheSim};
use xct_geometry::{Grid, ScanGeometry};

/// Compulsory-miss count of an index sequence under a given ordering:
/// a huge cache isolates spatial locality (distinct lines touched).
fn misses(indices: &[u32], ranks: &dyn Fn(u32) -> u32) -> (usize, usize) {
    let mut sim = CacheSim::new(CacheConfig::new(64, 1 << 22, 16));
    for &i in indices {
        sim.access(ranks(i) as u64 * 4);
    }
    (sim.stats().accesses as usize, sim.stats().misses as usize)
}

fn main() {
    let n = 16u32;
    let grid = Grid::new(n);
    let scan = ScanGeometry::new(n, n);

    // Build A twice: row-major and two-level Hilbert (4x4 tiles = one
    // cache line per tile, the paper's configuration).
    let rm = preprocess(
        grid,
        scan,
        &Config {
            ordering: memxct::preprocess::DomainOrdering::RowMajor,
            build_buffered: false,
            ..Config::default()
        },
    );
    let hl = preprocess(
        grid,
        scan,
        &Config {
            ordering: memxct::preprocess::DomainOrdering::TwoLevelHilbert(Some(4)),
            build_buffered: false,
            ..Config::default()
        },
    );

    println!("Fig 5: cache behaviour of single-row footprints (16x16 domains, 64 B lines)");
    println!("paper reference: tomogram 64% row-major vs 24% Hilbert; sinogram 53% vs 23%\n");

    // Forward projection: one sinogram row (ray) gathers a linear footprint
    // from the tomogram domain. Pick an oblique ray (structure like the
    // figure's diagonal line). Row indices differ between the two
    // orderings, so locate the same physical ray in each.
    let pick_proj = n / 3;
    let pick_chan = n / 2;
    println!("forward projection: ray (projection {pick_proj}, channel {pick_chan}) over the tomogram domain");
    println!(
        "{:<14} {:>9} {:>7} {:>10}",
        "ordering", "accesses", "misses", "miss rate"
    );
    for (name, ops) in [("row-major", &rm), ("hilbert", &hl)] {
        let row = ops.sino_ord.rank(pick_chan, pick_proj) as usize;
        // Columns of this row are already in that ordering's ranks.
        let cols: Vec<u32> = ops.a.row(row).map(|(c, _)| c).collect();
        let (acc, miss) = misses(&cols, &|c| c);
        println!(
            "{:<14} {:>9} {:>7} {:>9.0}%",
            name,
            acc,
            miss,
            100.0 * miss as f64 / acc as f64
        );
    }

    // Backprojection: one tomogram pixel gathers a sinusoidal footprint
    // from the sinogram domain (a row of Aᵀ).
    let (px, py) = (n / 4, n / 3);
    println!("\nbackprojection: pixel ({px},{py}) over the sinogram domain");
    println!(
        "{:<14} {:>9} {:>7} {:>10}",
        "ordering", "accesses", "misses", "miss rate"
    );
    for (name, ops) in [("row-major", &rm), ("hilbert", &hl)] {
        let row = ops.tomo_ord.rank(px, py) as usize;
        let cols: Vec<u32> = ops.at.row(row).map(|(c, _)| c).collect();
        let (acc, miss) = misses(&cols, &|c| c);
        println!(
            "{:<14} {:>9} {:>7} {:>9.0}%",
            name,
            acc,
            miss,
            100.0 * miss as f64 / acc as f64
        );
    }

    // Aggregate over the full matrices: the average story, not one row.
    println!("\naggregate over all rows (mean compulsory miss rate per row):");
    println!(
        "{:<14} {:>16} {:>16}",
        "ordering", "forward", "backprojection"
    );
    for (name, ops) in [("row-major", &rm), ("hilbert", &hl)] {
        let fwd = aggregate(&ops.a);
        let back = aggregate(&ops.at);
        println!(
            "{:<14} {:>15.1}% {:>15.1}%",
            name,
            fwd * 100.0,
            back * 100.0
        );
    }
}

/// Mean per-row miss rate with a cold cache per row (spatial locality of
/// each row's footprint in isolation).
fn aggregate(a: &xct_sparse::CsrMatrix) -> f64 {
    let mut total = 0f64;
    let mut rows = 0usize;
    for i in 0..a.nrows() {
        let cols: Vec<u32> = a.row(i).map(|(c, _)| c).collect();
        if cols.is_empty() {
            continue;
        }
        let mut sim = CacheSim::new(CacheConfig::new(64, 1 << 22, 16));
        for &c in &cols {
            sim.access(c as u64 * 4);
        }
        total += sim.stats().miss_rate();
        rows += 1;
    }
    total / rows as f64
}

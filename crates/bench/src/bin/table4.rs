//! Table 4: MemXCT vs the compute-centric approach (Trace), 45 SIRT
//! iterations each, on ADS2 and RDS1.
//!
//! The paper reports 49.2× per-iteration speedup when MemXCT fits in
//! MCDRAM and 6.86× when DRAM-bound. On this machine both codes see the
//! same memory system, so the measured ratio isolates the *algorithmic*
//! gain of memoization (no repeated ray tracing, vectorizable SpMV).
//!
//! ```text
//! cargo run --release -p xct-bench --bin table4 [scale_divisor]
//! ```

use memxct::{
    run_engine, CompOperator, Config, Constraint, ReconstructorBuilder, SirtRule, StopRule,
};
use std::time::Instant;
use xct_bench::{fmt_secs, scale_from_args, simulate};
use xct_compxct::CompXct;
use xct_geometry::{ADS2, RDS1};

fn main() {
    let div = scale_from_args();
    let iters = 45;
    println!("Table 4: comparison with the compute-centric approach (scale 1/{div}, {iters} SIRT iterations)\n");
    println!(
        "{:<8} {:<10} {:>10} {:>10} {:>10} {:>9} {:>14}",
        "dataset", "code", "preproc", "recon", "per-iter", "speedup", "paper speedup"
    );

    for (ds, paper) in [(ADS2, "49.2x"), (RDS1, "6.86x")] {
        let small = ds.scaled(div);
        let (_, sino) = simulate(&small, false);

        // Compute-centric: setup (normalization pass) + 45 on-the-fly
        // iterations, run through the same generic engine as MemXCT —
        // only the ProjectionOperator behind it differs.
        let t = Instant::now();
        let cx = CompXct::new(small.grid(), small.scan());
        let _cx_setup = t.elapsed().as_secs_f64();
        let t = Instant::now();
        let (_, cx_stats) = run_engine(
            &CompOperator::new(&cx),
            sino.data(),
            &mut SirtRule::new(1.0),
            Constraint::None,
            StopRule::Fixed(iters),
        );
        let cx_recon = t.elapsed().as_secs_f64();
        let cx_iter = cx_stats.iter().map(|s| s.seconds).sum::<f64>() / iters as f64;

        // MemXCT: preprocessing memoizes, iterations are buffered SpMV.
        let t = Instant::now();
        let rec = ReconstructorBuilder::new(small.grid(), small.scan())
            .config(Config::default())
            .build()
            .expect("valid dataset geometry");
        let mem_pre = t.elapsed().as_secs_f64();
        let t = Instant::now();
        let mem_stats = {
            let mut resp = rec
                .run(&memxct::ReconRequest::sirt(
                    memxct::ReconInput::Slice(sino.clone()),
                    iters,
                ))
                .expect("SIRT reconstruction failed");
            resp.slice_records.swap_remove(0)
        };
        let mem_recon = t.elapsed().as_secs_f64();
        let mem_iter = mem_stats.iter().map(|s| s.seconds).sum::<f64>() / iters as f64;

        let speedup = cx_iter / mem_iter;
        println!(
            "{:<8} {:<10} {:>10} {:>10} {:>10} {:>9} {:>14}",
            small.name,
            "CompXCT",
            "n/a",
            fmt_secs(cx_recon),
            fmt_secs(cx_iter),
            "1x",
            "1x"
        );
        println!(
            "{:<8} {:<10} {:>10} {:>10} {:>10} {:>8.1}x {:>14}",
            small.name,
            "MemXCT",
            fmt_secs(mem_pre),
            fmt_secs(mem_recon),
            fmt_secs(mem_iter),
            speedup,
            paper
        );
    }
    println!("\npreprocessing is paid once per geometry and amortized over all slices (Table 5).");
}

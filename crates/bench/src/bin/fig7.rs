//! Fig 7: communication footprints and the sparse communication matrix
//! for 16 processes on a 256×256 reconstruction.
//!
//! ```text
//! cargo run --release -p xct-bench --bin fig7 [ranks]
//! ```

use memxct::dist::build_plans;
use xct_bench::{preprocess, Config};
use xct_geometry::{Grid, ScanGeometry};

fn main() {
    let ranks: usize = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(16);
    let n = 256u32;
    let ops = preprocess(
        Grid::new(n),
        ScanGeometry::new(n, n),
        &Config {
            build_buffered: false,
            ..Config::default()
        },
    );
    let plans = build_plans(&ops, ranks, false);

    println!("Fig 7: sparse communication matrix, {ranks} processes, {n}x{n} domains");
    println!("(entries: KB sent per forward projection, row = sender, col = receiver)\n");

    // Forward-projection communication: rank r sends its partial sinogram
    // values in q's range to q.
    let mut matrix = vec![vec![0u64; ranks]; ranks];
    for plan in &plans {
        for (q, range) in plan.dest_ranges.iter().enumerate() {
            if q != plan.rank {
                matrix[plan.rank][q] = (range.len() * 4) as u64;
            }
        }
    }

    print!("{:>5}", "");
    for d in 0..ranks {
        print!("{d:>7}");
    }
    println!();
    for (s, row) in matrix.iter().enumerate() {
        print!("{s:>5}");
        for &b in row {
            if b == 0 {
                print!("{:>7}", ".");
            } else {
                print!("{:>7.1}", b as f64 / 1024.0);
            }
        }
        println!();
    }

    let nonzero: usize = matrix.iter().flatten().filter(|&&b| b > 0).count();
    println!(
        "\n{nonzero} of {} off-diagonal pairs communicate ({}% sparse)",
        ranks * ranks - ranks,
        100 - 100 * nonzero / (ranks * ranks - ranks).max(1)
    );

    // Fig 7(d): pairwise traffic of process 7.
    if ranks > 7 {
        println!("\npairwise communication of process 7 (KB):");
        println!("{:>6} {:>10} {:>10}", "pair", "send", "recv");
        for (q, (&sent, row)) in matrix[7].iter().zip(&matrix).enumerate() {
            if q == 7 {
                continue;
            }
            let send = sent as f64 / 1024.0;
            let recv = row[7] as f64 / 1024.0;
            if send > 0.0 || recv > 0.0 {
                println!("{q:>6} {send:>10.2} {recv:>10.2}");
            }
        }
    }

    // Fig 7(e): total incoming/outgoing per process.
    println!("\ntotal communication per process (KB):");
    println!("{:>6} {:>10} {:>10}", "proc", "send", "recv");
    for (p, row) in matrix.iter().enumerate() {
        let send: u64 = row.iter().sum();
        let recv: u64 = matrix.iter().map(|r| r[p]).sum();
        println!(
            "{p:>6} {:>10.1} {:>10.1}",
            send as f64 / 1024.0,
            recv as f64 / 1024.0
        );
    }
    println!("\nthe backprojection matrix is the transpose of the forward one (§3.4.2).");
}

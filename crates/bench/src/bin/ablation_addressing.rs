//! Ablation: 16-bit vs 32-bit buffer addressing (§3.3.5).
//!
//! "We use 16-bit addressing to access input buffer, rather than 32-bit
//! addressing. ... This saves 25 % of total bandwidth consumption of
//! regular data, and provides additional speedup."
//!
//! Both variants run the *identical* multi-stage kernel; only the stored
//! index width differs, so any time difference is pure bandwidth.
//!
//! ```text
//! cargo run --release -p xct-bench --bin ablation_addressing [scale_divisor]
//! ```

use memxct::{preprocess, Config};
use xct_bench::{bandwidth_gbs, gflops, scale_from_args, time_median};
use xct_geometry::ADS2;
use xct_sparse::{BufferedCsr, BufferedCsr32};

fn main() {
    let div = scale_from_args();
    let ds = ADS2.scaled_projections(div);
    println!(
        "buffer-addressing ablation on {} (projections/{div}: {}x{})\n",
        ds.name, ds.projections, ds.channels
    );
    let ops = preprocess(
        ds.grid(),
        ds.scan(),
        &Config {
            build_buffered: false,
            ..Config::default()
        },
    );
    let x: Vec<f32> = (0..ops.a.ncols()).map(|i| (i % 13) as f32 * 0.3).collect();
    let nnz = ops.a.nnz();
    let reps = 5;

    let m16 = BufferedCsr::from_csr(&ops.a, 128, 2048);
    let m32 = BufferedCsr32::from_csr(&ops.a, 128, 2048);

    // Same layout, same stages — only the index bytes differ.
    assert_eq!(m16.num_stages(), m32.num_stages());
    assert_eq!(m16.map_len(), m32.map_len());

    let t16 = time_median(
        || {
            std::hint::black_box(m16.spmv_parallel(&x));
        },
        reps,
    );
    let t32 = time_median(
        || {
            std::hint::black_box(m32.spmv_parallel(&x));
        },
        reps,
    );

    println!(
        "{:<16} {:>14} {:>10} {:>10} {:>12}",
        "index width", "regular B/nnz", "time ms", "GFLOPS", "BW GB/s"
    );
    for (name, t, bytes) in [
        ("u16 (paper)", t16, m16.regular_bytes()),
        ("u32", t32, m32.regular_bytes()),
    ] {
        println!(
            "{:<16} {:>14.2} {:>10.1} {:>10.2} {:>12.1}",
            name,
            bytes as f64 / nnz as f64,
            t * 1e3,
            gflops(nnz, t),
            bandwidth_gbs(bytes, t)
        );
    }
    let saving = 1.0 - m16.regular_bytes() as f64 / m32.regular_bytes() as f64;
    println!(
        "\nbytes saved by 16-bit addressing: {:.1}% (paper: 25% of ind+val stream);",
        saving * 100.0
    );
    println!("measured speedup u32 -> u16: {:.2}x", t32 / t16);
    println!("(on a bandwidth-bound machine like KNL the byte saving converts ~1:1 to");
    println!("speedup; a latency-tolerant host converts less of it)");
}

//! Shared harness utilities for the experiment binaries that regenerate
//! every table and figure of the MemXCT paper's evaluation (§4).
//!
//! Each `src/bin/<id>.rs` binary reproduces one artifact; see DESIGN.md's
//! per-experiment index. Conventions:
//!
//! - Datasets run **scaled down** by a divisor (default in
//!   [`bench_scale`], override with the `XCT_BENCH_SCALE` env var or a CLI
//!   argument) because this is a laptop-class reproduction; the *shape*
//!   of each result (who wins, by what factor, where crossovers fall) is
//!   the target, not the absolute numbers.
//! - Paper reference values are printed next to measured/modeled values
//!   wherever the paper states them.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

use std::time::Instant;
use xct_geometry::{simulate_sinogram, Dataset, NoiseModel, Sinogram};
use xct_runtime::KernelVolumes;

pub use memxct::{preprocess, Config, Kernel, Operators};

/// Default dataset scale divisor (1 = paper-size). Override with
/// `XCT_BENCH_SCALE` or a CLI argument.
pub fn bench_scale() -> u32 {
    std::env::var("XCT_BENCH_SCALE")
        .ok()
        .and_then(|s| s.parse().ok())
        .filter(|&s| s > 0)
        .unwrap_or(4)
}

/// First CLI argument as a scale divisor, else [`bench_scale`].
pub fn scale_from_args() -> u32 {
    std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .filter(|&s| s > 0)
        .unwrap_or_else(bench_scale)
}

/// Phantom + simulated measurement for a (scaled) dataset.
pub fn simulate(ds: &Dataset, noisy: bool) -> (Vec<f32>, Sinogram) {
    let truth = ds.phantom().rasterize(ds.channels);
    let noise = if noisy {
        NoiseModel::Poisson {
            incident: 1e5,
            scale: 0.02,
        }
    } else {
        NoiseModel::None
    };
    let sino = simulate_sinogram(&truth, &ds.grid(), &ds.scan(), noise, 0xfeed);
    (truth, sino)
}

/// Median seconds of `reps` timed runs of `f` (after one warmup run).
pub fn time_median<F: FnMut()>(mut f: F, reps: usize) -> f64 {
    f(); // warmup
    let mut times: Vec<f64> = (0..reps.max(1))
        .map(|_| {
            let t = Instant::now();
            f();
            t.elapsed().as_secs_f64()
        })
        .collect();
    times.sort_by(f64::total_cmp);
    times[times.len() / 2]
}

/// GFLOPS of one projection: two FLOPs (one FMA) per nonzero (§4.2).
pub fn gflops(nnz: usize, seconds: f64) -> f64 {
    2.0 * nnz as f64 / seconds / 1e9
}

/// Effective memory bandwidth for regular data, GB/s (§4.2's metric).
pub fn bandwidth_gbs(regular_bytes: u64, seconds: f64) -> f64 {
    regular_bytes as f64 / seconds / 1e9
}

/// Human-readable byte count (KiB/MiB/GiB/TiB like Table 3).
pub fn fmt_bytes(bytes: u64) -> String {
    const UNITS: [&str; 5] = ["B", "KB", "MB", "GB", "TB"];
    let mut v = bytes as f64;
    let mut u = 0;
    while v >= 1000.0 && u < UNITS.len() - 1 {
        v /= 1024.0;
        u += 1;
    }
    if v >= 100.0 {
        format!("{v:.0} {}", UNITS[u])
    } else if v >= 10.0 {
        format!("{v:.1} {}", UNITS[u])
    } else {
        format!("{v:.2} {}", UNITS[u])
    }
}

/// Human-readable seconds (matching the paper's "1.44 d / 1.89 h / 41.6 m"
/// style in Table 5).
pub fn fmt_secs(s: f64) -> String {
    if s >= 86400.0 {
        format!("{:.2} d", s / 86400.0)
    } else if s >= 3600.0 {
        format!("{:.2} h", s / 3600.0)
    } else if s >= 60.0 {
        format!("{:.1} m", s / 60.0)
    } else if s >= 1.0 {
        format!("{:.2} s", s)
    } else {
        format!("{:.0} ms", s * 1e3)
    }
}

/// Exact full-size and scaled work volumes for projecting measured plans
/// up to paper-size datasets (used by the machine-model experiments:
/// Tables 5/7, Fig 11).
pub struct ScaledVolumes {
    /// Per-rank volumes, scaled to the full dataset.
    pub per_rank: Vec<KernelVolumes>,
    /// The nnz ratio used for compute/regular streams.
    pub nnz_ratio: f64,
    /// The sinogram-size ratio used for communication streams.
    pub sino_ratio: f64,
}

/// Build rank plans on `ds.scaled(divisor)` and scale the resulting
/// per-rank volumes up to the full dataset: compute and regular-data
/// streams scale with the nonzero count (`O(M·N²)`), communication and
/// reduction streams with the sinogram size (`O(M·N)`), both computed
/// exactly from the dataset geometry.
pub fn modeled_volumes(ds: &Dataset, divisor: u32, ranks: usize) -> ScaledVolumes {
    let small = ds.scaled(divisor);
    let ops = preprocess(
        small.grid(),
        small.scan(),
        &Config {
            build_buffered: false,
            ..Config::default()
        },
    );
    let plans = memxct::dist::build_plans(&ops, ranks, false);

    let nnz_full = ds.footprint().nnz as f64;
    let nnz_small = ops.a.nnz() as f64;
    let nnz_ratio = nnz_full / nnz_small;
    let sino_full = (ds.projections as f64) * (ds.channels as f64);
    let sino_small = (small.projections as f64) * (small.channels as f64);
    let sino_ratio = sino_full / sino_small;

    let per_rank = plans
        .iter()
        .map(|p| {
            let v = p.volumes();
            KernelVolumes {
                flops: v.flops * nnz_ratio,
                regular_bytes: v.regular_bytes * nnz_ratio,
                footprint_bytes: v.footprint_bytes * sino_ratio,
                comm_bytes: v.comm_bytes * sino_ratio,
                comm_peers: v.comm_peers,
                reduce_bytes: v.reduce_bytes * sino_ratio,
            }
        })
        .collect();
    ScaledVolumes {
        per_rank,
        nnz_ratio,
        sino_ratio,
    }
}

/// The bottleneck (max per-kernel) volumes across ranks.
pub fn bottleneck(volumes: &[KernelVolumes]) -> KernelVolumes {
    let mut out = KernelVolumes::default();
    for v in volumes {
        out.flops = out.flops.max(v.flops);
        out.regular_bytes = out.regular_bytes.max(v.regular_bytes);
        out.footprint_bytes = out.footprint_bytes.max(v.footprint_bytes);
        out.comm_bytes = out.comm_bytes.max(v.comm_bytes);
        out.comm_peers = out.comm_peers.max(v.comm_peers);
        out.reduce_bytes = out.reduce_bytes.max(v.reduce_bytes);
    }
    out
}

/// L2 miss rate of the forward-projection irregular stream at **full
/// dataset size**, computed by streaming: rays are traced in
/// sinogram-ordered sequence and each touched tomogram rank feeds the
/// cache simulator directly — no matrix is materialized, so paper-size
/// datasets fit in memory (time is O(nnz)).
pub fn streamed_miss_rate(
    ds: &Dataset,
    ordering: memxct::DomainOrdering,
    cache: xct_cachesim::CacheConfig,
) -> f64 {
    use xct_hilbert::Ordering2D;
    let n = ds.channels;
    let m = ds.projections;
    let build = |w: u32, h: u32| -> Ordering2D {
        match ordering {
            memxct::DomainOrdering::RowMajor => Ordering2D::row_major(w, h),
            memxct::DomainOrdering::ColumnMajor => Ordering2D::column_major(w, h),
            memxct::DomainOrdering::HilbertSquare => Ordering2D::hilbert_square(w, h),
            memxct::DomainOrdering::Gilbert => Ordering2D::gilbert(w, h),
            memxct::DomainOrdering::Morton => Ordering2D::morton(w, h),
            memxct::DomainOrdering::TwoLevelHilbert(t) => Ordering2D::two_level_hilbert(
                w,
                h,
                t.unwrap_or_else(|| xct_hilbert::default_tile_size(w, h)),
            ),
        }
    };
    let tomo_ord = build(n, n);
    let sino_ord = build(n, m);
    let grid = ds.grid();
    let scan = ds.scan();
    let mut sim = xct_cachesim::CacheSim::new(cache);
    // in-range: ray count is bounded by the u32 scan geometry
    for rank in 0..scan.num_rays() as u32 {
        let (chan, proj) = sino_ord.cell(rank);
        let ray = scan.ray(proj, chan);
        xct_geometry::trace_ray(&grid, &ray, |pixel, _| {
            let (i, j) = grid.pixel_coords(pixel);
            sim.access(tomo_ord.rank(i, j) as u64 * 4);
        });
    }
    sim.stats().miss_rate()
}

/// Communication-model constants calibrated from real rank plans.
///
/// Table 1 gives the complexity law — per-rank communication is
/// `O(M·N/√P)` on the sinogram domain, with `O(√P)`-ish peer counts — and
/// the `table1` binary verifies it empirically. These constants anchor
/// that law to measured plan footprints at a reference rank count, so the
/// scaling experiments (Tables 5/7, Fig 11) can extrapolate to node
/// counts whose plans would be degenerate on a scaled dataset.
#[derive(Debug, Clone, Copy)]
pub struct CommCalibration {
    /// comm bytes per rank = `coeff · (M·N) / √P`.
    pub bytes_coeff: f64,
    /// reduce bytes per rank = `coeff · (M·N) / √P`.
    pub reduce_coeff: f64,
    /// peers per rank (roughly constant with P for tile decompositions).
    pub peers: f64,
}

/// Measure the communication constants on `ds.scaled(divisor)` at
/// `p_ref` ranks.
pub fn calibrate_comm(ds: &Dataset, divisor: u32, p_ref: usize) -> CommCalibration {
    let small = ds.scaled(divisor);
    let ops = preprocess(
        small.grid(),
        small.scan(),
        &Config {
            build_buffered: false,
            ..Config::default()
        },
    );
    let plans = memxct::dist::build_plans(&ops, p_ref, false);
    let bott = bottleneck(&plans.iter().map(|p| p.volumes()).collect::<Vec<_>>());
    let mn = (small.projections as f64) * (small.channels as f64);
    let unit = mn / (p_ref as f64).sqrt();
    CommCalibration {
        bytes_coeff: bott.comm_bytes / unit,
        reduce_coeff: bott.reduce_bytes / unit,
        peers: bott.comm_peers,
    }
}

/// Analytic per-rank (bottleneck) volumes for the *full-size* dataset at
/// `p` ranks, anchored by [`calibrate_comm`]: compute/regular streams from
/// the exact nonzero count, communication from the verified `O(M·N/√P)`
/// law.
pub fn analytic_volumes(ds: &Dataset, p: usize, cal: &CommCalibration) -> KernelVolumes {
    let nnz = ds.footprint().nnz as f64 / p as f64;
    let mn = (ds.projections as f64) * (ds.channels as f64);
    let comm_unit = mn / (p as f64).sqrt();
    KernelVolumes {
        flops: 4.0 * nnz,
        regular_bytes: 2.0 * nnz * 8.0,
        footprint_bytes: 4.0 * ((ds.channels as f64).powi(2) + mn) / p as f64,
        comm_bytes: if p == 1 {
            0.0
        } else {
            cal.bytes_coeff * comm_unit
        },
        comm_peers: if p == 1 { 0.0 } else { cal.peers },
        reduce_bytes: cal.reduce_coeff * comm_unit,
    }
}

/// A generic "library" CSR SpMV standing in for MKL/cuSPARSE in Table 6:
/// statically-scheduled equal row chunks, 32-bit indices, no
/// application-specific partitioning or padding decisions.
pub fn spmv_library(a: &xct_sparse::CsrMatrix, x: &[f32]) -> Vec<f32> {
    use rayon::prelude::*;
    let nrows = a.nrows();
    let threads = rayon::current_num_threads().max(1);
    let chunk = nrows.div_ceil(threads);
    let mut y = vec![0f32; nrows];
    let rowptr = a.rowptr();
    let colind = a.colind();
    let values = a.values();
    y.par_chunks_mut(chunk.max(1))
        .enumerate()
        .for_each(|(p, out)| {
            let base = p * chunk;
            for (j, o) in out.iter_mut().enumerate() {
                let i = base + j;
                let mut acc = 0f32;
                for k in rowptr[i]..rowptr[i + 1] {
                    acc += x[colind[k] as usize] * values[k];
                }
                *o = acc;
            }
        });
    y
}

#[cfg(test)]
mod tests {
    use super::*;
    use xct_geometry::ADS1;

    #[test]
    fn fmt_bytes_matches_table3_style() {
        assert_eq!(fmt_bytes(256 * 1024), "256 KB");
        assert_eq!(fmt_bytes(1024 * 1024 * 1024 * 5 + 1024), "5.00 GB");
    }

    #[test]
    fn fmt_secs_ranges() {
        assert_eq!(fmt_secs(0.0103), "10 ms");
        assert_eq!(fmt_secs(62.0), "1.0 m");
        assert_eq!(fmt_secs(2.0 * 86400.0), "2.00 d");
    }

    #[test]
    fn gflops_math() {
        assert!((gflops(500_000_000, 1.0) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn modeled_volumes_scale_up() {
        let sv = modeled_volumes(&ADS1, 8, 2);
        assert_eq!(sv.per_rank.len(), 2);
        assert!(sv.nnz_ratio > 100.0, "nnz ratio {}", sv.nnz_ratio);
        assert!(sv.sino_ratio > 30.0, "sino ratio {}", sv.sino_ratio);
    }

    #[test]
    fn library_spmv_matches_reference() {
        let ds = ADS1.scaled(16);
        let ops = preprocess(ds.grid(), ds.scan(), &Config::default());
        let x: Vec<f32> = (0..ops.a.ncols()).map(|i| (i % 3) as f32).collect();
        let want = xct_sparse::spmv(&ops.a, &x);
        let got = spmv_library(&ops.a, &x);
        for (g, w) in got.iter().zip(&want) {
            assert!((g - w).abs() < 1e-4);
        }
    }

    #[test]
    fn bottleneck_takes_maxima() {
        let a = KernelVolumes {
            flops: 1.0,
            regular_bytes: 10.0,
            ..Default::default()
        };
        let b = KernelVolumes {
            flops: 2.0,
            regular_bytes: 5.0,
            ..Default::default()
        };
        let m = bottleneck(&[a, b]);
        assert_eq!(m.flops, 2.0);
        assert_eq!(m.regular_bytes, 10.0);
    }
}

//! Model-checked concurrency suite for the serving layer: the
//! `xct-model` explorer drives the plan cache and the job runtime
//! (scheduler thread + submitters) through the interleavings of small
//! configurations, including the supervision paths — shutdown racing a
//! running job, a deadline firing during a preemption drill, and the
//! circuit breaker tripping under a concurrent submission.

use std::time::Duration;

use memxct::{ReconInput, ReconRequest, StopRule};
use xct_geometry::{disk, simulate_sinogram, Grid, NoiseModel, ScanGeometry, Sinogram};
use xct_model::sync::Arc;
use xct_model::{explore, replay, Config, FailureKind};
use xct_serve::{
    BreakerConfig, JobError, JobRuntime, JobSpec, PlanCache, PlanSpec, RuntimeConfig, Shutdown,
};

fn geometry(n: u32, m: u32) -> (Grid, ScanGeometry) {
    (Grid::new(n), ScanGeometry::new(m, n))
}

fn sino(grid: Grid, scan: ScanGeometry, n: u32, seed: u64) -> Sinogram {
    let truth = disk(0.3 + 0.05 * seed as f64, 1.0 + 0.5 * seed as f32).rasterize(n);
    simulate_sinogram(&truth, &grid, &scan, NoiseModel::None, seed)
}

/// Concurrent get / insert / evict on a capacity-1 cache, explored
/// exhaustively: two threads requesting *different* plans chase one
/// slot, so every interleaving exercises insert-evict-insert churn. No
/// deadlock, no lost wakeup, and each caller always gets a working
/// reconstructor for its own key.
#[test]
fn capacity_one_cache_churn_is_exhaustively_clean() {
    let (grid, scan) = geometry(8, 6);
    let spec_a = PlanSpec::new(grid, scan);
    let (grid_b, scan_b) = geometry(8, 4);
    let spec_b = PlanSpec::new(grid_b, scan_b);
    let report = explore(&Config::dfs(), move || {
        let cache = Arc::new(PlanCache::new(1));
        let c2 = cache.clone();
        let t = xct_model::thread::spawn(move || {
            let (_rec, hit) = c2.get_detailed(&spec_b).expect("build b");
            assert!(!hit, "first lookup of key b in a fresh cache");
        });
        let (_rec, hit) = cache.get_detailed(&spec_a).expect("build a");
        assert!(!hit, "first lookup of key a in a fresh cache");
        t.join().unwrap();
        // Capacity 1: exactly one of the two keys survived the churn.
        assert_eq!(cache.len(), 1);
        assert!(cache.contains(&spec_a) ^ cache.contains(&spec_b));
    });
    report.assert_clean();
    assert!(report.complete, "cache tree must be fully explored");
}

/// Submit racing a self-preempting job: the scheduler thread is mid
/// preempt/requeue while a second (higher-priority) submission lands.
/// Every interleaving must drain both jobs to completion — no lost
/// scheduler wakeup, no stuck waiter.
#[test]
fn submit_during_preempt_drains_clean() {
    let (grid, scan) = geometry(8, 6);
    let plan = PlanSpec::new(grid, scan);
    let s0 = sino(grid, scan, 8, 0);
    let s1 = sino(grid, scan, 8, 1);
    let report = explore(&Config::dfs().preemptions(1), move || {
        let runtime = JobRuntime::new(RuntimeConfig {
            cache_capacity: 2,
            ..RuntimeConfig::default()
        });
        let req0 = ReconRequest::cg(ReconInput::Slice(s0.clone()), StopRule::Fixed(3));
        let req1 = ReconRequest::cg(ReconInput::Slice(s1.clone()), StopRule::Fixed(2));
        // Job 0 checkpoints and yields at its first iteration boundary.
        let id0 = runtime
            .submit(JobSpec::new("drill", plan, req0).preempt_at(1))
            .unwrap();
        // Racing submission at a strictly higher priority: depending on
        // the interleaving it lands before, during, or after job 0's
        // preemption window.
        let id1 = runtime
            .submit(JobSpec::new("vip", plan, req1).priority(2))
            .unwrap();
        let r0 = runtime.wait(id0).expect("job 0 result");
        let r1 = runtime.wait(id1).expect("job 1 result");
        let resp0 = r0.outcome.expect("job 0 completed");
        let resp1 = r1.outcome.expect("job 1 completed");
        assert_eq!(resp0.slice_records[0].len(), 3, "all job-0 iterations ran");
        assert_eq!(resp1.slice_records[0].len(), 2, "all job-1 iterations ran");
        assert_eq!(r0.report.preemptions, 1, "the drill preempted once");
        drop(runtime);
    });
    report.assert_clean();
}

/// `CheckpointAndStop` racing a running job: depending on the
/// interleaving the shutdown lands before the job is picked, mid-run
/// (the job checkpoints at its next boundary), or after it completed.
/// Every interleaving must end in a terminal typed status with the
/// checkpoint flag telling the truth about the retained snapshot — and
/// the scheduler thread must always join (no stuck wind-down).
#[test]
fn shutdown_during_run_is_exhaustively_clean() {
    let (grid, scan) = geometry(8, 6);
    let plan = PlanSpec::new(grid, scan);
    let s = sino(grid, scan, 8, 0);
    let report = explore(&Config::dfs().preemptions(1), move || {
        let runtime = JobRuntime::new(RuntimeConfig::default());
        let req = ReconRequest::cg(ReconInput::Slice(s.clone()), StopRule::Fixed(3));
        let id = runtime
            .submit(JobSpec::new("wind-down", plan, req))
            .unwrap();
        let mut results = runtime.shutdown(Shutdown::CheckpointAndStop);
        assert_eq!(results.len(), 1, "the job must not be lost");
        let r = results.pop().unwrap();
        assert_eq!(r.report.id, id);
        match r.outcome {
            Ok(resp) => {
                assert_eq!(resp.slice_records[0].len(), 3, "completed runs are whole");
            }
            Err(JobError::Stopped { checkpointed }) => {
                assert_eq!(
                    checkpointed,
                    r.checkpoint.is_some(),
                    "the stop must report exactly the snapshot it retained"
                );
            }
            other => panic!("expected Completed or Stopped, got {other:?}"),
        }
    });
    report.assert_clean();
}

/// A zero deadline armed together with the preempt drill: under the
/// virtual clock the job is never shed from the queue (strictly-greater
/// queue check), so it always reaches the in-run deadline latch — which
/// wins over the drill's checkpoint-and-requeue in every interleaving.
/// The result is always `TimedOut` with the snapshot retained.
#[test]
fn deadline_fires_during_preempt_drill_always_times_out() {
    let (grid, scan) = geometry(8, 6);
    let plan = PlanSpec::new(grid, scan);
    let s = sino(grid, scan, 8, 1);
    let report = explore(&Config::dfs().preemptions(1), move || {
        let runtime = JobRuntime::new(RuntimeConfig::default());
        let req = ReconRequest::cg(ReconInput::Slice(s.clone()), StopRule::Fixed(3));
        let id = runtime
            .submit(
                JobSpec::new("doomed", plan, req)
                    .preempt_at(1)
                    .deadline(Duration::ZERO),
            )
            .unwrap();
        let r = runtime.wait(id).expect("result");
        match r.outcome {
            Err(JobError::TimedOut {
                deadline,
                checkpointed,
            }) => {
                assert_eq!(deadline, Duration::ZERO);
                assert!(checkpointed, "the deadline stop retains its snapshot");
            }
            other => panic!("the deadline must win over the drill, got {other:?}"),
        }
        assert!(r.checkpoint.is_some(), "snapshot available for resume");
        drop(runtime);
    });
    report.assert_clean();
}

fn breaker_race_body() {
    let (grid, scan) = geometry(8, 6);
    let plan = PlanSpec::new(grid, scan);
    let s0 = sino(grid, scan, 8, 0);
    let s1 = sino(grid, scan, 8, 1);
    let runtime = Arc::new(JobRuntime::new(RuntimeConfig {
        breaker: BreakerConfig {
            trip_after: 1,
            cooldown: Duration::from_secs(3600),
        },
        ..RuntimeConfig::default()
    }));
    let r2 = runtime.clone();
    let t = xct_model::thread::spawn(move || {
        // The seeded wrong claim: a concurrent submitter never observes
        // the breaker trip. The checker must find the interleaving where
        // the panic job's failure lands first and this submit is shed.
        let req = ReconRequest::cg(ReconInput::Slice(s1.clone()), StopRule::Fixed(2));
        r2.submit(JobSpec::new("concurrent", plan, req))
            .expect("seeded claim: breaker never observed open");
    });
    let req = ReconRequest::cg(ReconInput::Slice(s0.clone()), StopRule::Fixed(2));
    let id = runtime
        .submit(JobSpec::new("bang", plan, req).chaos_panic("trip"))
        .unwrap();
    let _ = runtime.wait(id);
    t.join().unwrap();
}

/// Breaker trip under a concurrent submission: with `trip_after: 1`, one
/// contained panic opens the breaker, and a concurrent submitter racing
/// that failure is shed in some interleavings. The checker must find the
/// shedding schedule, report the same `xm1-` trace ID on every run, and
/// the trace must replay to the same failure.
#[test]
fn breaker_trip_under_concurrent_submit_is_caught_deterministically() {
    let cfg = Config::dfs();
    let a = explore(&cfg, breaker_race_body);
    let f1 = a
        .failure
        .expect("the checker must catch the shed concurrent submit");
    println!("seeded breaker-trip race caught: {f1}");
    assert_eq!(f1.kind, FailureKind::Panic);
    assert!(
        f1.message.contains("breaker never observed open"),
        "the failure must name the seeded claim: {f1}"
    );
    assert!(f1.trace.as_str().starts_with("xm1-"));

    let b = explore(&cfg, breaker_race_body);
    let f2 = b.failure.expect("found again on the second run");
    assert_eq!(f1.trace, f2.trace, "trace IDs must be deterministic");
    assert_eq!(f1.schedule, f2.schedule);

    let r = replay(&f1.trace, &cfg, breaker_race_body);
    let fr = r.failure.expect("replay must reproduce the failure");
    assert_eq!(fr.kind, f1.kind);
}

//! Model-checked concurrency suite for the serving layer: the
//! `xct-model` explorer drives the plan cache and the job runtime
//! (scheduler thread + submitters) through the interleavings of small
//! configurations.

use memxct::{ReconInput, ReconRequest, StopRule};
use xct_geometry::{disk, simulate_sinogram, Grid, NoiseModel, ScanGeometry, Sinogram};
use xct_model::sync::Arc;
use xct_model::{explore, Config};
use xct_serve::{JobRuntime, JobSpec, PlanCache, PlanSpec, RuntimeConfig};

fn geometry(n: u32, m: u32) -> (Grid, ScanGeometry) {
    (Grid::new(n), ScanGeometry::new(m, n))
}

fn sino(grid: Grid, scan: ScanGeometry, n: u32, seed: u64) -> Sinogram {
    let truth = disk(0.3 + 0.05 * seed as f64, 1.0 + 0.5 * seed as f32).rasterize(n);
    simulate_sinogram(&truth, &grid, &scan, NoiseModel::None, seed)
}

/// Concurrent get / insert / evict on a capacity-1 cache, explored
/// exhaustively: two threads requesting *different* plans chase one
/// slot, so every interleaving exercises insert-evict-insert churn. No
/// deadlock, no lost wakeup, and each caller always gets a working
/// reconstructor for its own key.
#[test]
fn capacity_one_cache_churn_is_exhaustively_clean() {
    let (grid, scan) = geometry(8, 6);
    let spec_a = PlanSpec::new(grid, scan);
    let (grid_b, scan_b) = geometry(8, 4);
    let spec_b = PlanSpec::new(grid_b, scan_b);
    let report = explore(&Config::dfs(), move || {
        let cache = Arc::new(PlanCache::new(1));
        let c2 = cache.clone();
        let t = xct_model::thread::spawn(move || {
            let (_rec, hit) = c2.get_detailed(&spec_b).expect("build b");
            assert!(!hit, "first lookup of key b in a fresh cache");
        });
        let (_rec, hit) = cache.get_detailed(&spec_a).expect("build a");
        assert!(!hit, "first lookup of key a in a fresh cache");
        t.join().unwrap();
        // Capacity 1: exactly one of the two keys survived the churn.
        assert_eq!(cache.len(), 1);
        assert!(cache.contains(&spec_a) ^ cache.contains(&spec_b));
    });
    report.assert_clean();
    assert!(report.complete, "cache tree must be fully explored");
}

/// Submit racing a self-preempting job: the scheduler thread is mid
/// preempt/requeue while a second (higher-priority) submission lands.
/// Every interleaving must drain both jobs to completion — no lost
/// scheduler wakeup, no stuck waiter.
#[test]
fn submit_during_preempt_drains_clean() {
    let (grid, scan) = geometry(8, 6);
    let plan = PlanSpec::new(grid, scan);
    let s0 = sino(grid, scan, 8, 0);
    let s1 = sino(grid, scan, 8, 1);
    let report = explore(&Config::dfs().preemptions(1), move || {
        let runtime = JobRuntime::new(RuntimeConfig {
            cache_capacity: 2,
            ..RuntimeConfig::default()
        });
        let req0 = ReconRequest::cg(ReconInput::Slice(s0.clone()), StopRule::Fixed(3));
        let req1 = ReconRequest::cg(ReconInput::Slice(s1.clone()), StopRule::Fixed(2));
        // Job 0 checkpoints and yields at its first iteration boundary.
        let id0 = runtime
            .submit(JobSpec::new("drill", plan, req0).preempt_at(1))
            .unwrap();
        // Racing submission at a strictly higher priority: depending on
        // the interleaving it lands before, during, or after job 0's
        // preemption window.
        let id1 = runtime
            .submit(JobSpec::new("vip", plan, req1).priority(2))
            .unwrap();
        let r0 = runtime.wait(id0).expect("job 0 result");
        let r1 = runtime.wait(id1).expect("job 1 result");
        let resp0 = r0.outcome.expect("job 0 completed");
        let resp1 = r1.outcome.expect("job 1 completed");
        assert_eq!(resp0.slice_records[0].len(), 3, "all job-0 iterations ran");
        assert_eq!(resp1.slice_records[0].len(), 2, "all job-1 iterations ran");
        assert_eq!(r0.report.preemptions, 1, "the drill preempted once");
        drop(runtime);
    });
    report.assert_clean();
}
